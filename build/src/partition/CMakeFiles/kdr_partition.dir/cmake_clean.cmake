file(REMOVE_RECURSE
  "CMakeFiles/kdr_partition.dir/partition.cpp.o"
  "CMakeFiles/kdr_partition.dir/partition.cpp.o.d"
  "CMakeFiles/kdr_partition.dir/projection.cpp.o"
  "CMakeFiles/kdr_partition.dir/projection.cpp.o.d"
  "CMakeFiles/kdr_partition.dir/relation.cpp.o"
  "CMakeFiles/kdr_partition.dir/relation.cpp.o.d"
  "libkdr_partition.a"
  "libkdr_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
