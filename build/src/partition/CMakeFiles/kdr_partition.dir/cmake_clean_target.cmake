file(REMOVE_RECURSE
  "libkdr_partition.a"
)
