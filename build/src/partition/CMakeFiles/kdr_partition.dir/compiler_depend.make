# Empty compiler generated dependencies file for kdr_partition.
# This may be replaced when dependencies are built.
