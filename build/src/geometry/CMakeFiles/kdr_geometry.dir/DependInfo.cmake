
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/index_space.cpp" "src/geometry/CMakeFiles/kdr_geometry.dir/index_space.cpp.o" "gcc" "src/geometry/CMakeFiles/kdr_geometry.dir/index_space.cpp.o.d"
  "/root/repo/src/geometry/interval_set.cpp" "src/geometry/CMakeFiles/kdr_geometry.dir/interval_set.cpp.o" "gcc" "src/geometry/CMakeFiles/kdr_geometry.dir/interval_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/kdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
