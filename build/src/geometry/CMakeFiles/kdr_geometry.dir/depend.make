# Empty dependencies file for kdr_geometry.
# This may be replaced when dependencies are built.
