file(REMOVE_RECURSE
  "libkdr_geometry.a"
)
