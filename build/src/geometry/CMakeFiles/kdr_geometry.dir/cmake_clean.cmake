file(REMOVE_RECURSE
  "CMakeFiles/kdr_geometry.dir/index_space.cpp.o"
  "CMakeFiles/kdr_geometry.dir/index_space.cpp.o.d"
  "CMakeFiles/kdr_geometry.dir/interval_set.cpp.o"
  "CMakeFiles/kdr_geometry.dir/interval_set.cpp.o.d"
  "libkdr_geometry.a"
  "libkdr_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
