# Empty compiler generated dependencies file for kdr_mpisim.
# This may be replaced when dependencies are built.
