file(REMOVE_RECURSE
  "libkdr_mpisim.a"
)
