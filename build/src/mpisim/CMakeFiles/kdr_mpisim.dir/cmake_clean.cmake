file(REMOVE_RECURSE
  "CMakeFiles/kdr_mpisim.dir/bsp.cpp.o"
  "CMakeFiles/kdr_mpisim.dir/bsp.cpp.o.d"
  "libkdr_mpisim.a"
  "libkdr_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
