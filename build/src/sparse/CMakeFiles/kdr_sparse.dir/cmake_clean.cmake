file(REMOVE_RECURSE
  "CMakeFiles/kdr_sparse.dir/matrix_market.cpp.o"
  "CMakeFiles/kdr_sparse.dir/matrix_market.cpp.o.d"
  "CMakeFiles/kdr_sparse.dir/relations.cpp.o"
  "CMakeFiles/kdr_sparse.dir/relations.cpp.o.d"
  "libkdr_sparse.a"
  "libkdr_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
