# Empty dependencies file for kdr_sparse.
# This may be replaced when dependencies are built.
