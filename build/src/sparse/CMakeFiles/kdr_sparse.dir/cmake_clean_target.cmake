file(REMOVE_RECURSE
  "libkdr_sparse.a"
)
