file(REMOVE_RECURSE
  "CMakeFiles/kdr_runtime.dir/region.cpp.o"
  "CMakeFiles/kdr_runtime.dir/region.cpp.o.d"
  "CMakeFiles/kdr_runtime.dir/runtime.cpp.o"
  "CMakeFiles/kdr_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/kdr_runtime.dir/trace_export.cpp.o"
  "CMakeFiles/kdr_runtime.dir/trace_export.cpp.o.d"
  "libkdr_runtime.a"
  "libkdr_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
