# Empty dependencies file for kdr_runtime.
# This may be replaced when dependencies are built.
