file(REMOVE_RECURSE
  "libkdr_runtime.a"
)
