# Empty compiler generated dependencies file for kdr_simcluster.
# This may be replaced when dependencies are built.
