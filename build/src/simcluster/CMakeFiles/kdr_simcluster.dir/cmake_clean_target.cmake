file(REMOVE_RECURSE
  "libkdr_simcluster.a"
)
