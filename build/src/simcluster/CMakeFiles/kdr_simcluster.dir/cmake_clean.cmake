file(REMOVE_RECURSE
  "CMakeFiles/kdr_simcluster.dir/cluster.cpp.o"
  "CMakeFiles/kdr_simcluster.dir/cluster.cpp.o.d"
  "libkdr_simcluster.a"
  "libkdr_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
