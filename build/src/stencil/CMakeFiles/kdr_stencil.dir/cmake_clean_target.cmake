file(REMOVE_RECURSE
  "libkdr_stencil.a"
)
