file(REMOVE_RECURSE
  "CMakeFiles/kdr_stencil.dir/stencil.cpp.o"
  "CMakeFiles/kdr_stencil.dir/stencil.cpp.o.d"
  "libkdr_stencil.a"
  "libkdr_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
