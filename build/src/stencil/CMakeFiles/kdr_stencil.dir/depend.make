# Empty dependencies file for kdr_stencil.
# This may be replaced when dependencies are built.
