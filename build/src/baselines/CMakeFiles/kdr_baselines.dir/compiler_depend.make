# Empty compiler generated dependencies file for kdr_baselines.
# This may be replaced when dependencies are built.
