file(REMOVE_RECURSE
  "libkdr_baselines.a"
)
