file(REMOVE_RECURSE
  "CMakeFiles/kdr_baselines.dir/ksp.cpp.o"
  "CMakeFiles/kdr_baselines.dir/ksp.cpp.o.d"
  "CMakeFiles/kdr_baselines.dir/stencil_baseline.cpp.o"
  "CMakeFiles/kdr_baselines.dir/stencil_baseline.cpp.o.d"
  "libkdr_baselines.a"
  "libkdr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
