# Empty compiler generated dependencies file for kdr_support.
# This may be replaced when dependencies are built.
