file(REMOVE_RECURSE
  "CMakeFiles/kdr_support.dir/cli.cpp.o"
  "CMakeFiles/kdr_support.dir/cli.cpp.o.d"
  "CMakeFiles/kdr_support.dir/table.cpp.o"
  "CMakeFiles/kdr_support.dir/table.cpp.o.d"
  "libkdr_support.a"
  "libkdr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
