file(REMOVE_RECURSE
  "libkdr_support.a"
)
