# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "-n" "24" "-pieces" "4")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_boundary_coupling]=] "/root/repo/build/examples/boundary_coupling" "-n" "6")
set_tests_properties([=[example_boundary_coupling]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multiple_rhs]=] "/root/repo/build/examples/multiple_rhs" "-n" "32" "-systems" "2")
set_tests_properties([=[example_multiple_rhs]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_custom_format]=] "/root/repo/build/examples/custom_format" "-n" "24")
set_tests_properties([=[example_custom_format]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_mixed_formats]=] "/root/repo/build/examples/mixed_formats" "-n" "16")
set_tests_properties([=[example_mixed_formats]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_matrix_market]=] "/root/repo/build/examples/matrix_market_solve")
set_tests_properties([=[example_matrix_market]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_dynamic_load_balance]=] "/root/repo/build/examples/dynamic_load_balance" "-nodes" "2" "-windows" "3")
set_tests_properties([=[example_dynamic_load_balance]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
