# Empty dependencies file for multiple_rhs.
# This may be replaced when dependencies are built.
