file(REMOVE_RECURSE
  "CMakeFiles/multiple_rhs.dir/multiple_rhs.cpp.o"
  "CMakeFiles/multiple_rhs.dir/multiple_rhs.cpp.o.d"
  "multiple_rhs"
  "multiple_rhs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiple_rhs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
