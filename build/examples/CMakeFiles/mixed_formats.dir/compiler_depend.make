# Empty compiler generated dependencies file for mixed_formats.
# This may be replaced when dependencies are built.
