file(REMOVE_RECURSE
  "CMakeFiles/mixed_formats.dir/mixed_formats.cpp.o"
  "CMakeFiles/mixed_formats.dir/mixed_formats.cpp.o.d"
  "mixed_formats"
  "mixed_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
