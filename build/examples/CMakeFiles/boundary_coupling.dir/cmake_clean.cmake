file(REMOVE_RECURSE
  "CMakeFiles/boundary_coupling.dir/boundary_coupling.cpp.o"
  "CMakeFiles/boundary_coupling.dir/boundary_coupling.cpp.o.d"
  "boundary_coupling"
  "boundary_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
