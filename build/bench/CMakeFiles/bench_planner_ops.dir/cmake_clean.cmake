file(REMOVE_RECURSE
  "CMakeFiles/bench_planner_ops.dir/bench_planner_ops.cpp.o"
  "CMakeFiles/bench_planner_ops.dir/bench_planner_ops.cpp.o.d"
  "bench_planner_ops"
  "bench_planner_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planner_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
