# Empty compiler generated dependencies file for bench_planner_ops.
# This may be replaced when dependencies are built.
