file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_multiop.dir/bench_fig9_multiop.cpp.o"
  "CMakeFiles/bench_fig9_multiop.dir/bench_fig9_multiop.cpp.o.d"
  "bench_fig9_multiop"
  "bench_fig9_multiop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_multiop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
