
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_tracing.cpp" "bench/CMakeFiles/bench_ablation_tracing.dir/bench_ablation_tracing.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_tracing.dir/bench_ablation_tracing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/kdr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/kdr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/kdr_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/kdr_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/kdr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/kdr_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/kdr_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/kdr_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
