file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_loadbalance.dir/bench_fig10_loadbalance.cpp.o"
  "CMakeFiles/bench_fig10_loadbalance.dir/bench_fig10_loadbalance.cpp.o.d"
  "bench_fig10_loadbalance"
  "bench_fig10_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
