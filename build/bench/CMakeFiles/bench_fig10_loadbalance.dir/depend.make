# Empty dependencies file for bench_fig10_loadbalance.
# This may be replaced when dependencies are built.
