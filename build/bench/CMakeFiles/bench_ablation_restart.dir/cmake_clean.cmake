file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_restart.dir/bench_ablation_restart.cpp.o"
  "CMakeFiles/bench_ablation_restart.dir/bench_ablation_restart.cpp.o.d"
  "bench_ablation_restart"
  "bench_ablation_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
