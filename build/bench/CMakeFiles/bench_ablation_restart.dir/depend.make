# Empty dependencies file for bench_ablation_restart.
# This may be replaced when dependencies are built.
