# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_simcluster[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_stencil[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_bench_harness[1]_include.cmake")
