file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/runtime/test_dependence.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_dependence.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_dependence_fuzz.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_dependence_fuzz.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_mapper.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_mapper.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_regions.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_regions.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_trace_export.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_trace_export.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_tracing.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_tracing.cpp.o.d"
  "CMakeFiles/test_runtime.dir/runtime/test_transfers.cpp.o"
  "CMakeFiles/test_runtime.dir/runtime/test_transfers.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
  "test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
