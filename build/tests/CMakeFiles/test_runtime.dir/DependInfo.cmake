
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/test_dependence.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_dependence.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_dependence.cpp.o.d"
  "/root/repo/tests/runtime/test_dependence_fuzz.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_dependence_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_dependence_fuzz.cpp.o.d"
  "/root/repo/tests/runtime/test_mapper.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_mapper.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_mapper.cpp.o.d"
  "/root/repo/tests/runtime/test_regions.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_regions.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_regions.cpp.o.d"
  "/root/repo/tests/runtime/test_trace_export.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_trace_export.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_trace_export.cpp.o.d"
  "/root/repo/tests/runtime/test_tracing.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_tracing.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_tracing.cpp.o.d"
  "/root/repo/tests/runtime/test_transfers.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_transfers.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_transfers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/kdr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/kdr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/kdr_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/kdr_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
