file(REMOVE_RECURSE
  "CMakeFiles/test_geometry.dir/geometry/test_index_space.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_index_space.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_interval_set.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_interval_set.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_point.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_point.cpp.o.d"
  "test_geometry"
  "test_geometry.pdb"
  "test_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
