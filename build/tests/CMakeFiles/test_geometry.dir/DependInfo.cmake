
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geometry/test_index_space.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_index_space.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_index_space.cpp.o.d"
  "/root/repo/tests/geometry/test_interval_set.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_interval_set.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_interval_set.cpp.o.d"
  "/root/repo/tests/geometry/test_point.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_point.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/kdr_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
