
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bench_harness/test_harness.cpp" "tests/CMakeFiles/test_bench_harness.dir/bench_harness/test_harness.cpp.o" "gcc" "tests/CMakeFiles/test_bench_harness.dir/bench_harness/test_harness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/kdr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/kdr_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/kdr_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/kdr_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/kdr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/kdr_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
