# Empty dependencies file for test_bench_harness.
# This may be replaced when dependencies are built.
