
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_load_balancer.cpp" "tests/CMakeFiles/test_core.dir/core/test_load_balancer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_load_balancer.cpp.o.d"
  "/root/repo/tests/core/test_monitor.cpp" "tests/CMakeFiles/test_core.dir/core/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_monitor.cpp.o.d"
  "/root/repo/tests/core/test_multiop.cpp" "tests/CMakeFiles/test_core.dir/core/test_multiop.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_multiop.cpp.o.d"
  "/root/repo/tests/core/test_multiop_fuzz.cpp" "tests/CMakeFiles/test_core.dir/core/test_multiop_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_multiop_fuzz.cpp.o.d"
  "/root/repo/tests/core/test_planner.cpp" "tests/CMakeFiles/test_core.dir/core/test_planner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_planner.cpp.o.d"
  "/root/repo/tests/core/test_preconditioners.cpp" "tests/CMakeFiles/test_core.dir/core/test_preconditioners.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_preconditioners.cpp.o.d"
  "/root/repo/tests/core/test_rebalance_integration.cpp" "tests/CMakeFiles/test_core.dir/core/test_rebalance_integration.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rebalance_integration.cpp.o.d"
  "/root/repo/tests/core/test_solvers.cpp" "tests/CMakeFiles/test_core.dir/core/test_solvers.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_solvers.cpp.o.d"
  "/root/repo/tests/core/test_solvers_extra.cpp" "tests/CMakeFiles/test_core.dir/core/test_solvers_extra.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_solvers_extra.cpp.o.d"
  "/root/repo/tests/core/test_solvers_preconditioned.cpp" "tests/CMakeFiles/test_core.dir/core/test_solvers_preconditioned.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_solvers_preconditioned.cpp.o.d"
  "/root/repo/tests/core/test_timing_mode.cpp" "tests/CMakeFiles/test_core.dir/core/test_timing_mode.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_timing_mode.cpp.o.d"
  "/root/repo/tests/core/test_umbrella.cpp" "tests/CMakeFiles/test_core.dir/core/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_umbrella.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/kdr_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/kdr_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/kdr_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/kdr_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/kdr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/kdr_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
