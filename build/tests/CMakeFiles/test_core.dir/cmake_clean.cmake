file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_load_balancer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_load_balancer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_monitor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_monitor.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_multiop.cpp.o"
  "CMakeFiles/test_core.dir/core/test_multiop.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_multiop_fuzz.cpp.o"
  "CMakeFiles/test_core.dir/core/test_multiop_fuzz.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_planner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_planner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_preconditioners.cpp.o"
  "CMakeFiles/test_core.dir/core/test_preconditioners.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_rebalance_integration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_rebalance_integration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_solvers.cpp.o"
  "CMakeFiles/test_core.dir/core/test_solvers.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_solvers_extra.cpp.o"
  "CMakeFiles/test_core.dir/core/test_solvers_extra.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_solvers_preconditioned.cpp.o"
  "CMakeFiles/test_core.dir/core/test_solvers_preconditioned.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_timing_mode.cpp.o"
  "CMakeFiles/test_core.dir/core/test_timing_mode.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_umbrella.cpp.o"
  "CMakeFiles/test_core.dir/core/test_umbrella.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
