
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sparse/test_adapters.cpp" "tests/CMakeFiles/test_sparse.dir/sparse/test_adapters.cpp.o" "gcc" "tests/CMakeFiles/test_sparse.dir/sparse/test_adapters.cpp.o.d"
  "/root/repo/tests/sparse/test_conversion_matrix.cpp" "tests/CMakeFiles/test_sparse.dir/sparse/test_conversion_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_sparse.dir/sparse/test_conversion_matrix.cpp.o.d"
  "/root/repo/tests/sparse/test_formats.cpp" "tests/CMakeFiles/test_sparse.dir/sparse/test_formats.cpp.o" "gcc" "tests/CMakeFiles/test_sparse.dir/sparse/test_formats.cpp.o.d"
  "/root/repo/tests/sparse/test_matrix_market.cpp" "tests/CMakeFiles/test_sparse.dir/sparse/test_matrix_market.cpp.o" "gcc" "tests/CMakeFiles/test_sparse.dir/sparse/test_matrix_market.cpp.o.d"
  "/root/repo/tests/sparse/test_projection_formats.cpp" "tests/CMakeFiles/test_sparse.dir/sparse/test_projection_formats.cpp.o" "gcc" "tests/CMakeFiles/test_sparse.dir/sparse/test_projection_formats.cpp.o.d"
  "/root/repo/tests/sparse/test_relations.cpp" "tests/CMakeFiles/test_sparse.dir/sparse/test_relations.cpp.o" "gcc" "tests/CMakeFiles/test_sparse.dir/sparse/test_relations.cpp.o.d"
  "/root/repo/tests/sparse/test_sell_blockdiag.cpp" "tests/CMakeFiles/test_sparse.dir/sparse/test_sell_blockdiag.cpp.o" "gcc" "tests/CMakeFiles/test_sparse.dir/sparse/test_sell_blockdiag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/kdr_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/kdr_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/kdr_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/kdr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
