file(REMOVE_RECURSE
  "CMakeFiles/test_sparse.dir/sparse/test_adapters.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_adapters.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_conversion_matrix.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_conversion_matrix.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_formats.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_formats.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_matrix_market.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_matrix_market.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_projection_formats.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_projection_formats.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_relations.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_relations.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_sell_blockdiag.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_sell_blockdiag.cpp.o.d"
  "test_sparse"
  "test_sparse.pdb"
  "test_sparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
