/// External matrices: read a Matrix Market (.mtx) file, pick a storage
/// format at runtime, solve, and dump the runtime's task timeline as a
/// Chrome-trace JSON (open in chrome://tracing or Perfetto to see the
/// schedule). If no file is given, a built-in SPD sample is written to a
/// temporary .mtx first — so the example is self-contained.
///
/// Usage: matrix_market_solve [-file path.mtx] [-format csr|coo|ell|dia]
///                            [-pieces 4] [-trace /tmp/kdr_timeline.json]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "runtime/trace_export.hpp"
#include "sparse/convert.hpp"
#include "sparse/matrix_market.hpp"
#include "stencil/stencil.hpp"
#include "support/cli.hpp"

namespace {

using namespace kdr;

std::string write_sample(const std::string& dir) {
    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = 24;
    spec.ny = 24;
    const IndexSpace D = IndexSpace::create(spec.unknowns());
    const auto A = stencil::laplacian_csr(spec, D, D);
    const std::string path = dir + "/kdr_sample_poisson.mtx";
    mm::write_matrix_market_file(path, A);
    return path;
}

std::shared_ptr<LinearOperator<double>> build_as(const std::string& format,
                                                 const IndexSpace& D, const IndexSpace& R,
                                                 std::vector<Triplet<double>> ts) {
    if (format == "csr") {
        return std::make_shared<CsrMatrix<double>>(
            CsrMatrix<double>::from_triplets(D, R, std::move(ts)));
    }
    if (format == "coo") {
        return std::make_shared<CooMatrix<double>>(CooMatrix<double>::from_triplets(D, R, ts));
    }
    if (format == "ell") {
        return std::make_shared<EllMatrix<double>>(
            EllMatrix<double>::from_triplets(D, R, std::move(ts)));
    }
    if (format == "dia") {
        return std::make_shared<DiaMatrix<double>>(
            DiaMatrix<double>::from_triplets(D, R, std::move(ts)));
    }
    KDR_REQUIRE(false, "unknown -format '", format, "' (csr|coo|ell|dia)");
    return nullptr;
}

} // namespace

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    const std::string format = args.get_string("format", "csr");
    const Color pieces = args.get_int("pieces", 4);
    std::string path = args.get_string("file", "");
    if (path.empty()) {
        path = write_sample("/tmp");
        std::cout << "no -file given; wrote sample Poisson system to " << path << "\n";
    }

    const mm::MatrixMarketData data = mm::read_matrix_market_file(path);
    KDR_REQUIRE(data.rows == data.cols, "matrix_market_solve: need a square matrix, got ",
                data.rows, "x", data.cols);
    std::cout << "read " << path << ": " << data.rows << "x" << data.cols << ", "
              << data.triplets.size() << " entries"
              << (data.was_symmetric ? " (symmetric, expanded)" : "") << "\n";

    rt::Runtime runtime(sim::MachineDesc::lassen(2), {.materialize = true, .profiling = true});
    const IndexSpace D = IndexSpace::create(data.rows, "D");
    auto A = build_as(format, D, D, data.triplets);
    std::cout << "storage format: " << A->format_name() << " (" << A->kernel().size()
              << " kernel points)\n";

    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    {
        const auto b = stencil::random_rhs(data.rows, 31);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }

    core::Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, Partition::equal(D, pieces));
    planner.add_rhs_vector(br, bf, Partition::equal(D, pieces));
    planner.add_operator(A, 0, 0);

    const auto cg_owner = core::make_solver<double>("cg", planner);
    core::Solver<double>& cg = *cg_owner;
    const int iters = core::solve_to_tolerance(cg, 1e-8, 10000);
    std::cout << "CG: " << iters << " iterations, residual "
              << cg.get_convergence_measure().value << "\n";

    const std::string trace_path = args.get_string("trace", "/tmp/kdr_timeline.json");
    rt::write_chrome_trace(trace_path, runtime.take_profiles());
    std::cout << "task timeline written to " << trace_path
              << " (open in chrome://tracing)\n";
    return 0;
}
