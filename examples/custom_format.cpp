/// Format extensibility (paper P2 and §3): a *user-defined*, matrix-free
/// storage format plugs into KDRSolvers with no library changes. The format
/// below stores no matrix entries at all — values are computed on the fly
/// from the stencil geometry — yet the universal co-partitioning operators
/// (image/preimage along its row/col relations, §3.1) and every solver work
/// on it unchanged, because the format only has to answer two questions:
/// "which grid cell does kernel point k read?" and "which does it write?".
///
/// The relations here are supplied through the generic MaterializedRelation
/// fallback (built from an enumeration of the stencil pattern). A production
/// format could implement the Relation interface directly with closed-form
/// fast paths, as the built-in formats do — also without touching library
/// code.
///
/// Usage: custom_format [-n 32] [-tol 1e-9]

#include <iostream>
#include <memory>

#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "partition/projection.hpp"
#include "support/cli.hpp"

namespace {

using namespace kdr;

/// Matrix-free 1-D 3-point Laplacian: K = {0..3n-1} with kernel point
/// k = 3i + s encoding (row i, stencil offset s-1). No stored values.
class MatrixFree1dLaplacian final : public LinearOperator<double> {
public:
    explicit MatrixFree1dLaplacian(IndexSpace space)
        : space_(std::move(space)),
          kernel_(IndexSpace::create(3 * space_.size(), "mf_kernel")) {
        // Relations via the generic fallback: enumerate (k, grid index).
        std::vector<std::pair<gidx, gidx>> row_pairs, col_pairs;
        const gidx n = space_.size();
        for (gidx i = 0; i < n; ++i) {
            for (gidx s = 0; s < 3; ++s) {
                const gidx j = i + s - 1;
                if (j < 0 || j >= n) continue; // boundary clipping
                row_pairs.emplace_back(3 * i + s, i);
                col_pairs.emplace_back(3 * i + s, j);
            }
        }
        row_rel_ = std::make_shared<MaterializedRelation>(kernel_, space_, row_pairs);
        col_rel_ = std::make_shared<MaterializedRelation>(kernel_, space_, col_pairs);
    }

    const IndexSpace& domain() const override { return space_; }
    const IndexSpace& range() const override { return space_; }
    const IndexSpace& kernel() const override { return kernel_; }
    std::shared_ptr<const Relation> col_relation() const override { return col_rel_; }
    std::shared_ptr<const Relation> row_relation() const override { return row_rel_; }
    const char* format_name() const override { return "matrix-free-1d"; }

    static double entry(gidx s) { return s == 1 ? 2.0 : -1.0; } // computed, not stored

    void multiply_add_piece(const IntervalSet& piece, VecView<const double> x,
                            VecView<double> y) const override {
        const gidx n = space_.size();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const gidx i = k / 3;
                const gidx j = i + (k % 3) - 1;
                if (j < 0 || j >= n) continue;
                y[static_cast<std::size_t>(i)] +=
                    entry(k % 3) * x[static_cast<std::size_t>(j)];
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const double> x,
                                      VecView<double> y) const override {
        const gidx n = space_.size();
        piece.for_each_interval([&](const Interval& iv) {
            for (gidx k = iv.lo; k < iv.hi; ++k) {
                const gidx i = k / 3;
                const gidx j = i + (k % 3) - 1;
                if (j < 0 || j >= n) continue;
                y[static_cast<std::size_t>(j)] +=
                    entry(k % 3) * x[static_cast<std::size_t>(i)];
            }
        });
    }

    std::vector<Triplet<double>> to_triplets() const override {
        std::vector<Triplet<double>> ts;
        const gidx n = space_.size();
        for (gidx k = 0; k < kernel_.size(); ++k) {
            const gidx i = k / 3;
            const gidx j = i + (k % 3) - 1;
            if (j >= 0 && j < n) ts.push_back({i, j, entry(k % 3)});
        }
        return ts;
    }

private:
    IndexSpace space_;
    IndexSpace kernel_;
    std::shared_ptr<MaterializedRelation> row_rel_;
    std::shared_ptr<MaterializedRelation> col_rel_;
};

} // namespace

int main(int argc, char** argv) {
    const kdr::CliArgs args(argc, argv);
    const kdr::gidx n = args.get_int("n", 32);
    const double tol = args.get_double("tol", 1e-9);

    kdr::rt::Runtime runtime(kdr::sim::MachineDesc::lassen(2));
    const kdr::IndexSpace D = kdr::IndexSpace::create(n, "D");
    auto A = std::make_shared<MatrixFree1dLaplacian>(D);

    // The universal co-partitioning operators work on the custom format out
    // of the box: derive the kernel and halo partitions from a row partition.
    const kdr::Partition rows = kdr::Partition::equal(D, 4);
    const kdr::Partition pk = kdr::preimage(rows, *A->row_relation());
    const kdr::Partition halo = kdr::image(pk, *A->col_relation());
    std::cout << "custom format '" << A->format_name() << "': " << A->kernel().size()
              << " kernel points, 0 stored entries\n";
    for (kdr::Color c = 0; c < 4; ++c) {
        std::cout << "  piece " << c << ": rows " << rows.piece(c) << ", needs x "
                  << halo.piece(c) << "\n";
    }

    const kdr::rt::RegionId xr = runtime.create_region(D, "x");
    const kdr::rt::RegionId br = runtime.create_region(D, "b");
    const kdr::rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const kdr::rt::FieldId bf = runtime.add_field<double>(br, "v");
    {
        auto bd = runtime.field_data<double>(br, bf);
        for (kdr::gidx i = 0; i < n; ++i)
            bd[static_cast<std::size_t>(i)] = 1.0 / static_cast<double>(i + 1);
    }

    kdr::core::Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, rows);
    planner.add_rhs_vector(br, bf, kdr::Partition::equal(D, 4));
    planner.add_operator(A, 0, 0);

    const auto cg_owner = kdr::core::make_solver<double>("cg", planner);
    kdr::core::Solver<double>& cg = *cg_owner;
    const int iters = kdr::core::solve_to_tolerance(cg, tol, 1000);
    std::cout << "CG on the matrix-free format: " << iters << " iterations, residual "
              << cg.get_convergence_measure().value << "\n";

    // Verify against the dense interpretation of the same operator.
    auto xd = runtime.field_data<double>(xr, xf);
    std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
    kdr::reference_multiply_add(A->to_triplets(), std::vector<double>(xd.begin(), xd.end()),
                                ax);
    auto bd = runtime.field_data<double>(br, bf);
    double err = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i) err = std::max(err, std::abs(ax[i] - bd[i]));
    std::cout << "max |Ax - b| = " << err << " -> " << (err < 1e-6 ? "PASS" : "FAIL") << "\n";
    return err < 1e-6 ? 0 : 1;
}
