/// Mixing storage formats inside one linear system — the paper's §7 future-
/// work item ("multi-operator systems allow KDRSolvers to process pieces of
/// a matrix stored in multiple formats within a single linear system"),
/// realized: the 2-D Poisson matrix is decomposed into
///
///   * its three main diagonals       → DIA  (regular, diagonal-friendly),
///   * the ±ny off-diagonal couplings → CSR  (general sparse),
///
/// registered as two operator slots on the same component pair. The solver
/// neither knows nor cares; per-slot tasks dispatch each piece with its own
/// format's kernel (§4.1: "an optimized computational kernel can be
/// dispatched for every combination of matrix and vector storage formats").
///
/// Usage: mixed_formats [-n 32] [-tol 1e-9]

#include <iostream>
#include <memory>

#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "sparse/convert.hpp"
#include "stencil/stencil.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const gidx n_side = args.get_int("n", 32);
    const double tol = args.get_double("tol", 1e-9);

    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = n_side;
    spec.ny = n_side;
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");

    // Split the stencil by structure: tridiagonal part vs ±ny couplings.
    std::vector<Triplet<double>> tri_part, far_part;
    for (const auto& t : stencil::laplacian_triplets(spec)) {
        if (std::abs(t.col - t.row) <= 1) {
            tri_part.push_back(t);
        } else {
            far_part.push_back(t);
        }
    }
    auto A_dia = std::make_shared<DiaMatrix<double>>(
        DiaMatrix<double>::from_triplets(D, D, std::move(tri_part)));
    auto A_csr = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(D, D, std::move(far_part)));
    std::cout << "one logical matrix, two formats:\n"
              << "  " << A_dia->format_name() << " slot: "
              << A_dia->diagonal_offsets().size() << " diagonals, "
              << A_dia->kernel().size() << " slots\n"
              << "  " << A_csr->format_name() << " slot: " << A_csr->kernel().size()
              << " entries\n";

    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    const auto b = stencil::random_rhs(n, 77);
    {
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }

    core::Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, Partition::equal(D, 4));
    planner.add_rhs_vector(br, bf, Partition::equal(D, 4));
    planner.add_operator(A_dia, 0, 0); // same pair, different formats:
    planner.add_operator(A_csr, 0, 0); // contributions sum per eq. (8)

    const auto cg_owner = core::make_solver<double>("cg", planner);
    core::Solver<double>& cg = *cg_owner;
    const int iters = core::solve_to_tolerance(cg, tol, 5000);
    std::cout << "CG on the mixed-format system: " << iters << " iterations, residual "
              << cg.get_convergence_measure().value << "\n";

    // Verify against the single-format matrix.
    const auto whole = stencil::laplacian_csr(spec, D, D);
    auto xd = runtime.field_data<double>(xr, xf);
    std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
    whole.multiply_add(std::vector<double>(xd.begin(), xd.end()), ax);
    double err = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i)
        err = std::max(err, std::abs(ax[i] - b[i]));
    std::cout << "max |Ax - b| against the monolithic CSR matrix: " << err << " -> "
              << (err < 1e-6 ? "PASS" : "FAIL") << "\n";
    return err < 1e-6 ? 0 : 1;
}
