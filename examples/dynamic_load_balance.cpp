/// Dynamic load balancing demo (paper §6.3, small scale): CG runs while a
/// background application occupies a varying number of CPU cores on each
/// node; a tile-table mapper plus the thermodynamic giveaway rule migrate
/// matrix tiles away from overloaded nodes between iterations — a capability
/// the paper demonstrates precisely because MPI-based libraries cannot
/// express it (the mapping is fixed at matrix distribution time).
///
/// This is the miniature, interactive version of bench_fig10_loadbalance:
/// watch the per-window times and tile ownership react to load changes.
///
/// Usage: dynamic_load_balance [-nodes 4] [-windows 8]

#include <iostream>

#include "core/load_balancer.hpp"
#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const int nodes = static_cast<int>(args.get_int("nodes", 4));
    const int windows = static_cast<int>(args.get_int("windows", 8));
    const int pieces = 2 * nodes;
    const gidx elems_per_piece = 1 << 16;

    const sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
    rt::Runtime runtime(machine, rt::RuntimeOptions{.materialize = false});
    auto table = std::make_shared<std::unordered_map<Color, int>>();
    runtime.set_mapper(std::make_unique<core::TileTableMapper>(table, sim::ProcKind::CPU));

    core::PlannerOptions opts;
    opts.proc_kind = sim::ProcKind::CPU;
    opts.per_operator_task_colors = true;
    core::Planner<double> planner(runtime, opts);

    std::vector<core::CompId> sols, rhss;
    for (int i = 0; i < pieces; ++i) {
        const IndexSpace Di = IndexSpace::create(elems_per_piece, "D" + std::to_string(i));
        const rt::RegionId xr = runtime.create_region(Di, "x" + std::to_string(i));
        const rt::RegionId br = runtime.create_region(Di, "b" + std::to_string(i));
        sols.push_back(planner.add_sol_vector(xr, runtime.add_field<double>(xr, "v")));
        rhss.push_back(planner.add_rhs_vector(br, runtime.add_field<double>(br, "v")));
    }

    std::vector<core::Tile> tiles;
    for (int i = 0; i < pieces; ++i) {
        for (int dj : {0, -1, 1}) {
            const int j = (i + dj + pieces) % pieces;
            const gidx nnz = (dj == 0 ? 1 : 2) * elems_per_piece;
            const IndexSpace K = IndexSpace::create(nnz, "K");
            core::OperatorPlan plan;
            plan.kernel_pieces = Partition::single(K);
            plan.domain_needs =
                Partition::single(planner.sol_component(static_cast<std::size_t>(j)).space);
            plan.row_pieces =
                Partition::single(planner.rhs_component(static_cast<std::size_t>(i)).space);
            plan.nnz = {nnz};
            planner.add_operator(nullptr, sols[static_cast<std::size_t>(j)],
                                 rhss[static_cast<std::size_t>(i)], std::move(plan));
            const std::size_t op = planner.operator_count() - 1;
            const Color color = planner.matmul_color(op, 0);
            (*table)[color] = i % nodes;
            if (dj != 0 && i % nodes != j % nodes) {
                tiles.push_back({op, color, i % nodes, j % nodes, i % nodes});
            }
        }
    }

    const auto cg_owner = core::make_solver<double>("cg", planner);
    core::Solver<double>& cg = *cg_owner;
    auto& cluster = runtime.cluster();
    // Reference time under half load.
    for (int n = 0; n < nodes; ++n) cluster.set_cpu_occupancy(n, 20);
    double t0 = runtime.current_time();
    for (int k = 0; k < 5; ++k) cg.step();
    const double t_ref = (runtime.current_time() - t0) / 5.0;
    core::ThermodynamicBalancer balancer(0.3 / t_ref, t_ref, 99);
    balancer.set_metrics(&runtime.metrics());

    std::cout << "window | per-node occupancy | ms/iter | tiles per node\n";
    Rng load(7);
    std::vector<double> busy_prev(static_cast<std::size_t>(nodes));
    for (int w = 0; w < windows; ++w) {
        std::string occ_str;
        for (int n = 0; n < nodes; ++n) {
            const int occ = static_cast<int>(load.uniform_int(0, 39));
            cluster.set_cpu_occupancy(n, occ);
            occ_str += (n ? "," : "") + std::to_string(occ);
        }
        for (int n = 0; n < nodes; ++n)
            busy_prev[static_cast<std::size_t>(n)] =
                cluster.proc_busy({n, sim::ProcKind::CPU, 0});
        t0 = runtime.current_time();
        for (int k = 0; k < 10; ++k) cg.step();
        const double per_iter = (runtime.current_time() - t0) / 10.0;

        std::vector<double> times(static_cast<std::size_t>(nodes));
        for (int n = 0; n < nodes; ++n)
            times[static_cast<std::size_t>(n)] =
                (cluster.proc_busy({n, sim::ProcKind::CPU, 0}) -
                 busy_prev[static_cast<std::size_t>(n)]) /
                10.0;
        balancer.rebalance(tiles, times);
        std::vector<int> owned(static_cast<std::size_t>(nodes), 0);
        for (core::Tile& t : tiles) {
            (*table)[t.task_color] = t.current;
            ++owned[static_cast<std::size_t>(t.current)];
        }
        std::string tile_str;
        for (int n = 0; n < nodes; ++n)
            tile_str += (n ? "," : "") + std::to_string(owned[static_cast<std::size_t>(n)]);
        std::cout << "  " << w << "    | [" << occ_str << "] | "
                  << Table::num(per_iter * 1e3, 3) << " | [" << tile_str << "]\n";
    }
    std::cout << "\ntiles drift toward the less-loaded owner of each pair; per-iteration\n"
                 "time tracks the background load instead of its worst case.\n";
    return 0;
}
