/// Application-aware solving (paper §4.2): the aliasing capability of
/// multi-operator systems.
///
///  1. Multiple right-hand sides — eq. (10): {(K, A, 1, 1), …, (K, A, n, n)}.
///     One matrix object is registered once per system; the physical data is
///     stored once ("avoid needless n-fold duplication of the matrix A").
///     PETSc has no equivalent (paper: "unsupported in PETSc").
///  2. Related systems — eq. (12): (A₀ + ΔA_i) x_i = b_i with the base
///     matrix shared and only the small perturbations distinct.
///
/// Both run as a single CG solve over the combined multi-operator system.
///
/// Usage: multiple_rhs [-n 48] [-systems 3] [-tol 1e-9]

#include <iostream>
#include <memory>

#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "stencil/stencil.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    const gidx n = args.get_int("n", 48);
    const int systems = static_cast<int>(args.get_int("systems", 3));
    const double tol = args.get_double("tol", 1e-9);

    stencil::Spec spec;
    spec.kind = stencil::Kind::D1P3;
    spec.nx = n;

    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    const IndexSpace D = IndexSpace::create(n, "D");
    auto A = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D));

    core::Planner<double> planner(runtime);
    std::vector<rt::RegionId> xr(static_cast<std::size_t>(systems));
    std::vector<rt::FieldId> xf(static_cast<std::size_t>(systems));
    std::vector<std::vector<double>> rhs(static_cast<std::size_t>(systems));
    std::vector<std::shared_ptr<CsrMatrix<double>>> deltas;

    for (int s = 0; s < systems; ++s) {
        const auto su = static_cast<std::size_t>(s);
        xr[su] = runtime.create_region(D, "x" + std::to_string(s));
        const rt::RegionId br = runtime.create_region(D, "b" + std::to_string(s));
        xf[su] = runtime.add_field<double>(xr[su], "v");
        const rt::FieldId bf = runtime.add_field<double>(br, "v");
        rhs[su] = stencil::random_rhs(n, 1000 + static_cast<std::uint64_t>(s));
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(rhs[su].begin(), rhs[su].end(), bd.begin());

        const core::CompId sol = planner.add_sol_vector(xr[su], xf[su], Partition::equal(D, 2));
        const core::CompId rr = planner.add_rhs_vector(br, bf, Partition::equal(D, 2));
        // Eq. (10): the same matrix object, registered per system.
        planner.add_operator(A, sol, rr);
        // Eq. (12): a tiny per-system SPD perturbation sharing the pair.
        auto dA = std::make_shared<CsrMatrix<double>>(CsrMatrix<double>::from_triplets(
            D, D, {{gidx(s) % n, gidx(s) % n, 0.5 + 0.25 * s}}));
        deltas.push_back(dA);
        planner.add_operator(dA, sol, rr);
    }
    std::cout << systems << " systems share one base matrix: A.use_count() = " << A.use_count()
              << " (1 caller + " << systems << " operator slots — stored once)\n";

    const auto cg_owner = core::make_solver<double>("cg", planner);
    core::Solver<double>& cg = *cg_owner;
    const int iters = core::solve_to_tolerance(cg, tol, 2000);
    std::cout << "combined CG converged in " << iters << " iterations\n";

    // Verify every system independently: (A + ΔA_s) x_s = b_s.
    bool ok = true;
    for (int s = 0; s < systems; ++s) {
        const auto su = static_cast<std::size_t>(s);
        auto xd = runtime.field_data<double>(xr[su], xf[su]);
        std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
        const std::vector<double> x(xd.begin(), xd.end());
        A->multiply_add(x, ax);
        deltas[su]->multiply_add(x, ax);
        double err = 0.0;
        for (std::size_t i = 0; i < ax.size(); ++i)
            err = std::max(err, std::abs(ax[i] - rhs[su][i]));
        std::cout << "system " << s << ": max |(A+dA)x - b| = " << err << "\n";
        ok = ok && err < 1e-6;
    }
    std::cout << (ok ? "PASS" : "FAIL") << ": all systems solved from one shared matrix\n";
    return ok ? 0 : 1;
}
