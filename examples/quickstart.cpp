/// Quickstart: solve a 2-D Poisson problem with conjugate gradients.
///
/// The workflow is the paper's Fig 5-7 pattern:
///   1. create regions for x and b and fill b;
///   2. register them with a Planner together with a canonical partition
///      (how the data splits into pieces — a pure performance choice);
///   3. register the matrix (any storage format with row/col relations);
///   4. construct a solver from the planner and step it to tolerance.
///
/// Usage: quickstart [-n 64] [-pieces 8] [-tol 1e-8] [-solver cg]
///        [-format csr] [-matfree] [-legacy] [-help]
///
/// -solver takes any solver-registry spec: cg, pcg, bicg, bicgstab, minres,
/// gmres[/m], ca_cg[/s[/basis]], ca_gmres[/m[/s[/basis]]]. The
/// communication-avoiding variants batch s iterations between global
/// reductions; -ca_s / -ca_basis set defaults the spec leaves open.
///
/// -format picks the storage layout from the level-description catalog
/// (sparse/described_formats.hpp): csr, csc, coo, coot, dense, ell, ellt,
/// sell. The operator is *derived* from the two-level description — no
/// format class exists for e.g. coot (column-major COO); it solves this
/// system purely from its description. -legacy swaps the default csr back
/// to the hand-written CsrMatrix class (bitwise-identical residuals — the
/// described engine replicates legacy assembly and accumulation order).
///
/// -matfree swaps the materialized matrix for a matrix-free stencil
/// operator (stencil/matrix_free.hpp): same Planner lines, same solver, same
/// residuals bitwise — only the operator registration changes. The kernel
/// space is computed from the five stencil coefficients instead of stored.
///        plus the whole unified option surface of core::CommonOptions
///        (-validate, -report, -report_json, -trace, -fault_rate,
///        -comm_plan, -eager_threshold, ...), each with a matching KDR_*
///        environment override — `quickstart -help` lists them all.
///
/// -report prints the structured solve report (per-task-kind virtual time,
/// node utilization, transfer matrix, phase totals, convergence history,
/// classified solve status, fault/recovery tallies); -report_json writes the
/// same report as JSON; -trace exports a Chrome trace (chrome://tracing)
/// with per-processor task rows and a solver-phase span track; -fault_rate
/// attaches a seeded fault model injecting transient task failures at that
/// per-task probability (the runtime retries them transparently); -validate
/// turns on validation mode — every element access in every kernel is
/// checked against its declared subset and privilege, actual touched sets
/// feed a shadow race detector, and over-declared requirements are linted
/// (also enabled by the KDR_VALIDATE environment variable); -profile turns
/// on the event profiler and writes its Chrome trace (Perfetto /
/// chrome://tracing: one pid per node, one tid per processor and NIC lane,
/// dependence edges in event args) to the given path, and folds critical-
/// path attribution and per-node comm fractions into the solve report
/// (KDR_PROFILE=<path> does the same from the environment).

#include <cstdint>
#include <iostream>
#include <memory>

#include "core/monitor.hpp"
#include "core/options.hpp"
#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "runtime/trace_export.hpp"
#include "sparse/described_formats.hpp"
#include "stencil/matrix_free.hpp"
#include "stencil/stencil.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
    using namespace kdr;
    const CliArgs args(argc, argv);
    if (args.get_flag("help")) {
        std::cout << "quickstart [-n 64] [-pieces 8] [-tol 1e-8] [-solver cg] "
                     "[-format csr] [-matfree] [-legacy] plus:\n"
                  << core::CommonOptions::help();
        return 0;
    }
    const gidx n_side = args.get_int("n", 64);
    const Color pieces = args.get_int("pieces", 8);
    const double tol = args.get_double("tol", 1e-8);
    const bool matfree = args.get_flag("matfree");
    const bool legacy = args.get_flag("legacy");
    const std::string format = args.get_string("format", "csr");
    const core::CommonOptions common = core::CommonOptions::parse(args);

    // The simulated machine the virtual-time schedule runs on; the numerics
    // are computed for real on the host either way.
    sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    common.apply(machine);
    rt::Runtime runtime(machine, common.runtime);
    runtime.set_profiling(common.wants_profiling());
    if (auto fm = common.make_fault_model()) runtime.cluster().set_fault_model(std::move(fm));

    // Problem: Δu = f on an n x n grid, 5-point stencil, SPD.
    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = n_side;
    spec.ny = n_side;
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "domain");
    const IndexSpace R = IndexSpace::create(n, "range");

    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(R, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "values");
    const rt::FieldId bf = runtime.add_field<double>(br, "values");
    {
        const auto b = stencil::random_rhs(n, 12345);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }

    // Planner setup (paper Fig 5). The canonical partition is the only place
    // the distribution strategy appears; change `pieces` freely — no other
    // line of this program is affected (P3).
    core::Planner<double> planner(runtime, common.planner);
    planner.add_sol_vector(xr, xf, Partition::equal(D, pieces));
    planner.add_rhs_vector(br, bf, Partition::equal(R, pieces));
    // Any LinearOperator with row/col relations slots in here: -matfree picks
    // the computed (matrix-free) kernel, which stores five coefficients
    // instead of ~5n entries and yields the same residual history bitwise;
    // -format builds the matrix in any catalog layout *derived from its
    // level description* (-legacy keeps the hand-written CSR class, again
    // bitwise identical).
    if (matfree) {
        planner.add_operator(stencil::make_matrix_free_laplacian(spec, D, R), 0, 0);
    } else if (legacy) {
        planner.add_operator(
            std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, R)), 0, 0);
    } else {
        planner.add_operator(
            sparse::make_described<double>(format, D, R, stencil::laplacian_triplets(spec)),
            0, 0);
    }

    // Solve (paper Fig 7's CG behind the drop-in Solver interface). -solver
    // takes any registry spec — cg, gmres/30, ca_cg, ca_gmres/20/4/newton —
    // with -ca_s/-ca_basis filling in unspecified CA parameters. The monitor
    // records the residual history the solve report embeds; the solve()
    // driver classifies the outcome (converged, breakdown, ...).
    const std::string solver_name = args.get_string("solver", "cg");
    std::unique_ptr<core::Solver<double>> inner =
        core::make_solver<double>(solver_name, planner, common);
    core::SolverMonitor<double> cg(*inner);
    const core::SolveResult result = core::solve(cg, tol, static_cast<int>(10 * n));
    std::cout << "iter   residual\n";
    for (const auto& s : cg.history()) {
        if (s.iteration % 10 == 0) std::cout << s.iteration << "   " << s.residual << "\n";
    }
    std::cout << "status: " << core::to_string(result.status) << " after "
              << result.iterations << " iterations, residual = " << result.residual << "\n"
              << "virtual time on the simulated cluster: "
              << runtime.current_time() * 1e3 << " ms, " << runtime.tasks_launched()
              << " tasks\n";
    if (runtime.validating()) {
        const rt::Validator& v = *runtime.validator();
        std::cout << "validation: " << v.tasks_checked() << " tasks checked, "
                  << v.violations() << " privilege violations, " << v.race_pairs()
                  << " race pairs, " << v.overdeclared() << " over-declared requirements\n";
        for (const std::string& w : v.warnings()) std::cout << "  " << w << "\n";
    }

    if (common.report || !common.report_json.empty()) {
        const obs::SolveReport report = runtime.build_solve_report(
            cg.report_samples(), core::to_string(result.status));
        if (common.report) report.print(std::cout);
        if (!common.report_json.empty()) {
            obs::write_solve_report(common.report_json, report);
            std::cout << "solve report written to " << common.report_json << "\n";
        }
    }
    if (!common.trace_file.empty()) {
        rt::write_chrome_trace(common.trace_file, runtime.take_profiles(),
                               runtime.spans().completed());
        std::cout << "chrome trace written to " << common.trace_file << "\n";
    }
    if (!common.profile_file.empty() && runtime.profiler() != nullptr) {
        const obs::Profiler& prof = *runtime.profiler();
        prof.write_chrome_trace(common.profile_file);
        std::cout << "profiler trace written to " << common.profile_file << " ("
                  << prof.events_recorded() << " events, " << prof.events_dropped()
                  << " dropped)\n";
    }

    // Spot-check the solution against the matrix directly.
    const auto A = stencil::laplacian_csr(spec, D, R);
    auto xd = runtime.field_data<double>(xr, xf);
    std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
    A.multiply_add(std::vector<double>(xd.begin(), xd.end()), ax);
    auto bd = runtime.field_data<double>(br, bf);
    double err = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i) err = std::max(err, std::abs(ax[i] - bd[i]));
    std::cout << "max |Ax - b| = " << err << "\n";
    return 0;
}
