/// Solver-as-a-service engine: bounded-queue admission control, weighted
/// fair ordering, the shared-trace cache (warm jobs replay a
/// structurally-identical job's captured schedule, bitwise-identically),
/// arrival gating in virtual time, and SLO classification.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace kdr::service {
namespace {

/// Validation mode pins traced launches to full dependence analysis (the
/// shadow race detector audits resolved edges), so assertions about the
/// analysis-skipping fast path cannot hold under KDR_VALIDATE.
bool validation_forced() {
    const char* e = std::getenv("KDR_VALIDATE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

SolveRequest small_job(std::uint64_t id, const std::string& tenant = "default",
                       double arrival = 0.0) {
    SolveRequest req;
    req.id = id;
    req.tenant = tenant;
    req.arrival = arrival;
    req.spec.kind = stencil::Kind::D2P5;
    req.spec.nx = 16;
    req.spec.ny = 16;
    req.rhs_seed = 100 + id;
    req.tol = 1e-8;
    req.max_iterations = 100;
    return req;
}

TEST(Service, BoundedQueueRejectsOverflow) {
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    ServiceOptions opts;
    opts.slots = 1;
    opts.max_queue = 2;
    ServiceEngine engine(runtime, opts);
    // Five simultaneous arrivals into a queue of two on one lane: the first
    // two are admitted, the other three are shed before anything runs.
    for (std::uint64_t i = 0; i < 5; ++i) engine.submit(small_job(i));
    const std::vector<JobResult>& results = engine.run();
    ASSERT_EQ(results.size(), 5u);

    int completed = 0;
    int rejected = 0;
    for (const JobResult& r : results) {
        if (r.state == JobState::rejected) {
            ++rejected;
            EXPECT_EQ(r.slot, -1);
            EXPECT_TRUE(r.outcome.history.empty());
        } else {
            EXPECT_EQ(r.state, JobState::completed);
            ++completed;
        }
    }
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(rejected, 3);

    const obs::ServiceReport rep = engine.report();
    EXPECT_EQ(rep.submitted, 5u);
    EXPECT_EQ(rep.completed, 2u);
    EXPECT_EQ(rep.rejected, 3u);
    EXPECT_GT(rep.solves_per_second, 0.0);
    EXPECT_GT(rep.utilization, 0.0);
}

TEST(Service, WeightedFairOrderingFavorsHeavierTenant) {
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    ServiceOptions opts;
    opts.slots = 1;
    opts.max_queue = 64;
    opts.tenant_weights = {{"gold", 3.0}, {"bronze", 1.0}};
    ServiceEngine engine(runtime, opts);
    // Interleaved submissions, all arriving at once: with equal-cost jobs,
    // weighted fair ordering should give gold roughly three dispatches per
    // bronze dispatch while the queue is contended.
    for (std::uint64_t i = 0; i < 6; ++i) {
        engine.submit(small_job(2 * i, "bronze"));
        engine.submit(small_job(2 * i + 1, "gold"));
    }
    const std::vector<JobResult>& results = engine.run();
    ASSERT_EQ(results.size(), 12u);

    int gold_in_first_8 = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        if (results[i].request.tenant == "gold") ++gold_in_first_8;
    }
    EXPECT_GE(gold_in_first_8, 5);

    const obs::ServiceReport rep = engine.report();
    ASSERT_EQ(rep.tenants.size(), 2u);
    double gold_service = 0.0;
    double bronze_service = 0.0;
    for (const obs::TenantStats& t : rep.tenants) {
        EXPECT_EQ(t.jobs, 6u);
        if (t.tenant == "gold") {
            EXPECT_EQ(t.weight, 3.0);
            gold_service = t.service_seconds;
        } else {
            bronze_service = t.service_seconds;
        }
    }
    EXPECT_GT(gold_service, 0.0);
    EXPECT_GT(bronze_service, 0.0);
}

TEST(Service, WarmContextReplaysSharedTrace) {
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    ServiceOptions opts;
    opts.slots = 1;
    ServiceEngine engine(runtime, opts);
    // Three structurally-identical jobs on one lane: the first records the
    // schedule (cold), the rest replay it from the shared-trace cache.
    for (std::uint64_t i = 0; i < 3; ++i) engine.submit(small_job(i));
    const std::vector<JobResult>& results = engine.run();
    ASSERT_EQ(results.size(), 3u);

    EXPECT_FALSE(results[0].trace_cache_hit);
    EXPECT_TRUE(results[1].trace_cache_hit);
    EXPECT_TRUE(results[2].trace_cache_hit);

    const obs::ServiceReport rep = engine.report();
    EXPECT_NEAR(rep.trace_cache_hit_rate, 2.0 / 3.0, 1e-12);

    if (!validation_forced()) {
        // Warm jobs re-verify each pinned trace once (the untraced admit
        // task makes them stale), then ride the fast path.
        EXPECT_GE(runtime.metrics().counter_value("trace_pinned_verifies"), 2.0);
        // The point of the cache: warm jobs skip the analysis pipeline
        // entirely, so their charged analysis stall drops to zero.
        EXPECT_GT(results[0].analysis_seconds, 0.0);
        EXPECT_EQ(results[1].analysis_seconds, 0.0);
        EXPECT_EQ(results[2].analysis_seconds, 0.0);
        EXPECT_GT(runtime.metrics().counter_value("trace_depanalysis_skipped"), 0.0);
    }
}

TEST(Service, WarmAndColdHistoriesBitwiseIdentical) {
    // Replay is a scheduling optimization only: the same request stream
    // through pooled contexts (warm) and per-job contexts (cold) must yield
    // bitwise-identical residual histories job for job.
    const auto run_arm = [](bool share) {
        rt::Runtime runtime(sim::MachineDesc::lassen(2));
        ServiceOptions opts;
        opts.slots = 2;
        opts.max_queue = 64;
        opts.share_contexts = share;
        ServiceEngine engine(runtime, opts);
        for (std::uint64_t i = 0; i < 6; ++i) {
            SolveRequest req = small_job(i);
            if (i % 2 == 1) req.spec.nx = 24; // two structures in the mix
            req.solver = i % 3 == 0 ? "cg" : "bicgstab";
            engine.submit(req);
        }
        return engine.run();
    };
    const std::vector<JobResult> warm = run_arm(true);
    const std::vector<JobResult> cold = run_arm(false);
    ASSERT_EQ(warm.size(), cold.size());
    for (const JobResult& w : warm) {
        const JobResult* c = nullptr;
        for (const JobResult& x : cold) {
            if (x.request.id == w.request.id) c = &x;
        }
        ASSERT_NE(c, nullptr);
        ASSERT_EQ(w.outcome.history.size(), c->outcome.history.size())
            << "job " << w.request.id;
        for (std::size_t i = 0; i < w.outcome.history.size(); ++i) {
            EXPECT_EQ(w.outcome.history[i].residual, c->outcome.history[i].residual)
                << "job " << w.request.id << " sample " << i;
        }
    }
}

TEST(Service, ArrivalGatesVirtualStart) {
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    ServiceOptions opts;
    opts.slots = 2;
    ServiceEngine engine(runtime, opts);
    engine.submit(small_job(0, "default", /*arrival=*/0.0));
    engine.submit(small_job(1, "default", /*arrival=*/5.0));
    const std::vector<JobResult>& results = engine.run();
    ASSERT_EQ(results.size(), 2u);
    for (const JobResult& r : results) {
        EXPECT_GE(r.start, r.request.arrival);
        EXPECT_GT(r.finish, r.start);
        EXPECT_NEAR(r.latency, r.finish - r.request.arrival, 1e-15);
        // The admit task's not_before pushes the whole solve past the
        // arrival instant in virtual time.
        for (const obs::ConvergenceSample& s : r.outcome.history) {
            EXPECT_GE(s.virtual_time, r.request.arrival);
        }
    }
    EXPECT_GE(runtime.current_time(), 5.0);
}

TEST(Service, SloClassification) {
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    ServiceOptions opts;
    opts.slots = 1;
    ServiceEngine engine(runtime, opts);
    SolveRequest tight = small_job(0);
    tight.deadline = 1e-9; // virtually impossible latency SLO
    SolveRequest loose = small_job(1);
    loose.deadline = 1e9;
    SolveRequest hopeless = small_job(2);
    hopeless.tol = 1e-30; // unreachable tolerance
    hopeless.max_iterations = 5;
    engine.submit(tight);
    engine.submit(loose);
    engine.submit(hopeless);
    const std::vector<JobResult>& results = engine.run();
    ASSERT_EQ(results.size(), 3u);
    for (const JobResult& r : results) {
        switch (r.request.id) {
        case 0: EXPECT_EQ(r.state, JobState::deadline_miss); break;
        case 1: EXPECT_EQ(r.state, JobState::completed); break;
        default:
            EXPECT_EQ(r.state, JobState::aborted);
            EXPECT_EQ(r.outcome.status, core::SolveStatus::max_iter);
        }
    }
    const obs::ServiceReport rep = engine.report();
    EXPECT_EQ(rep.deadline_misses, 1u);
    EXPECT_EQ(rep.completed, 1u);
    EXPECT_EQ(rep.aborted, 1u);
}

TEST(Service, ReportRoundTripsThroughJson) {
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    ServiceOptions opts;
    opts.slots = 2;
    opts.tenant_weights = {{"a", 2.0}};
    ServiceEngine engine(runtime, opts);
    engine.submit(small_job(0, "a"));
    engine.submit(small_job(1, "b"));
    engine.run();
    const obs::ServiceReport rep = engine.report();
    const obs::ServiceReport back = obs::ServiceReport::from_json(rep.to_json());
    EXPECT_EQ(back.submitted, rep.submitted);
    EXPECT_EQ(back.completed, rep.completed);
    EXPECT_EQ(back.rejected, rep.rejected);
    EXPECT_EQ(back.makespan, rep.makespan);
    EXPECT_EQ(back.solves_per_second, rep.solves_per_second);
    EXPECT_EQ(back.latency_p50, rep.latency_p50);
    EXPECT_EQ(back.latency_p99, rep.latency_p99);
    EXPECT_EQ(back.trace_cache_hit_rate, rep.trace_cache_hit_rate);
    ASSERT_EQ(back.tenants.size(), rep.tenants.size());
    for (std::size_t i = 0; i < back.tenants.size(); ++i) {
        EXPECT_EQ(back.tenants[i].tenant, rep.tenants[i].tenant);
        EXPECT_EQ(back.tenants[i].weight, rep.tenants[i].weight);
        EXPECT_EQ(back.tenants[i].jobs, rep.tenants[i].jobs);
        EXPECT_EQ(back.tenants[i].share, rep.tenants[i].share);
    }
}

} // namespace
} // namespace kdr::service
