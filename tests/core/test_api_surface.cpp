/// Compile-level API-surface checks: the deprecated `add_operator_planned`
/// shim (a PR-5 compatibility spelling) has been removed, and nothing
/// in-tree may reference it again. The detector is pure SFINAE — if someone
/// reintroduces a member with that name, the static_assert below fails the
/// build of this (always-compiled) test translation unit.
///
/// Also the solver-construction surface: make_solver / SolverRegistry is the
/// single construction path, every built-in spec must resolve, and no
/// non-core call site may construct solver classes directly (checked by a
/// source scan over the repo's layers — see RegistryIsTheOnlyConstructionPath).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/planner.hpp"
#include "core/preconditioners.hpp"
#include "core/solver_registry.hpp"
#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

template <typename P, typename = void>
struct has_add_operator_planned : std::false_type {};

template <typename P>
struct has_add_operator_planned<P, std::void_t<decltype(&P::add_operator_planned)>>
    : std::true_type {};

static_assert(!has_add_operator_planned<Planner<double>>::value,
              "the deprecated add_operator_planned shim was removed in the level-description "
              "PR; use add_operator(op, sol_comp, rhs_comp, plan)");

// The supported spellings must still be present: expression-based detection
// so the optional-plan default argument participates (member-pointer traits
// would not see it).
using Op = std::shared_ptr<const LinearOperator<double>>;

template <typename P, typename = void>
struct add_operator_defaults_plan : std::false_type {};
template <typename P>
struct add_operator_defaults_plan<
    P, std::void_t<decltype(std::declval<P&>().add_operator(std::declval<Op>(), CompId{},
                                                            CompId{}))>> : std::true_type {};

template <typename P, typename = void>
struct add_operator_takes_plan : std::false_type {};
template <typename P>
struct add_operator_takes_plan<
    P, std::void_t<decltype(std::declval<P&>().add_operator(
           std::declval<Op>(), CompId{}, CompId{}, std::declval<OperatorPlan>()))>>
    : std::true_type {};

template <typename P, typename = void>
struct add_preconditioner_takes_plan : std::false_type {};
template <typename P>
struct add_preconditioner_takes_plan<
    P, std::void_t<decltype(std::declval<P&>().add_preconditioner(
           std::declval<Op>(), CompId{}, CompId{}, std::declval<OperatorPlan>()))>>
    : std::true_type {};

static_assert(add_operator_defaults_plan<Planner<double>>::value,
              "add_operator(op, sol, rhs) must remain callable without an explicit plan");
static_assert(add_operator_takes_plan<Planner<double>>::value,
              "add_operator must keep accepting an explicit OperatorPlan");
static_assert(add_preconditioner_takes_plan<Planner<double>>::value,
              "add_preconditioner must keep accepting an explicit OperatorPlan");

TEST(ApiSurface, DeprecatedShimsAreGone) {
    // The real checks are the static_asserts above; this test exists so the
    // suite reports the property by name.
    EXPECT_FALSE(has_add_operator_planned<Planner<double>>::value);
}

// ---------------------------------------------------------------------------
// Solver registry: the single construction surface.

TEST(ApiSurface, RegistryKnowsEveryBuiltin) {
    for (const char* name :
         {"cg", "pcg", "bicg", "bicgstab", "minres", "gmres", "ca_cg", "ca_gmres"}) {
        EXPECT_TRUE(is_known_solver<double>(name)) << name;
    }
    EXPECT_FALSE(is_known_solver<double>("sor"));
    EXPECT_FALSE(is_known_solver<double>(""));
    // names() is the user-facing error-message inventory; it must cover the
    // same set.
    const std::vector<std::string> names = SolverRegistry<double>::instance().names();
    EXPECT_EQ(names.size(), 8u);
}

/// A small functional Poisson planner for construction-level checks.
struct RegistryFixture {
    rt::Runtime runtime{sim::MachineDesc::lassen(1)};
    std::unique_ptr<Planner<double>> planner;
    std::shared_ptr<CsrMatrix<double>> A;

    RegistryFixture() {
        stencil::Spec spec;
        spec.kind = stencil::Kind::D2P5;
        spec.nx = 8;
        spec.ny = 8;
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const rt::RegionId xr = runtime.create_region(D, "x");
        const rt::RegionId br = runtime.create_region(D, "b");
        const rt::FieldId xf = runtime.add_field<double>(xr, "v");
        const rt::FieldId bf = runtime.add_field<double>(br, "v");
        {
            const auto b = stencil::random_rhs(n, 7);
            auto bd = runtime.field_data<double>(br, bf);
            std::copy(b.begin(), b.end(), bd.begin());
        }
        planner = std::make_unique<Planner<double>>(runtime);
        planner->add_sol_vector(xr, xf, Partition::equal(D, 2));
        planner->add_rhs_vector(br, bf, Partition::equal(D, 2));
        A = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D));
        planner->add_operator(A, 0, 0);
        add_jacobi_preconditioner<double>(*planner, {{A}});
    }
};

TEST(ApiSurface, EverySpecBuildsAndSteps) {
    for (const char* spec : {"cg", "pcg", "bicg", "bicgstab", "minres", "gmres",
                             "gmres/5", "ca_cg", "ca_cg/2", "ca_cg/4/newton", "ca_gmres",
                             "ca_gmres/8", "ca_gmres/8/2", "ca_gmres/8/2/newton"}) {
        SCOPED_TRACE(spec);
        RegistryFixture f;
        std::unique_ptr<Solver<double>> s = make_solver<double>(spec, *f.planner);
        ASSERT_NE(s, nullptr);
        s->step();
        EXPECT_TRUE(std::isfinite(s->get_convergence_measure().value));
    }
}

TEST(ApiSurface, ParamsFillUnspecifiedArguments) {
    RegistryFixture f;
    SolverParams params;
    params.ca_s = 2;
    params.ca_basis = CaBasis::newton;
    params.gmres_restart = 5;
    // Bare names pick the params up; spec arguments override them.
    auto ca = make_solver<double>("ca_cg", *f.planner, params);
    EXPECT_EQ(ca->iterations_per_step(), 2);
    auto ca4 = make_solver<double>("ca_cg/4", *f.planner, params);
    EXPECT_EQ(ca4->iterations_per_step(), 4);
    auto g = make_solver<double>("gmres", *f.planner, params);
    ASSERT_NE(g, nullptr);
}

TEST(ApiSurface, MalformedSpecsAreRejected) {
    RegistryFixture f;
    for (const char* spec :
         {"notasolver", "cg/2", "gmres/0", "gmres/x", "gmres/5/3", "ca_cg/0",
          "ca_cg/4/fourier", "ca_gmres/8/0", "ca_gmres/8/2/what", "ca_cg/4/", "/cg"}) {
        SCOPED_TRACE(spec);
        EXPECT_THROW((void)make_solver<double>(spec, *f.planner), Error);
    }
}

TEST(ApiSurface, FactoryDefersConstruction) {
    const auto factory = make_solver_factory<double>("ca_cg/2");
    RegistryFixture f;
    std::unique_ptr<Solver<double>> s = factory(*f.planner);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->iterations_per_step(), 2);
    EXPECT_THROW((void)make_solver_factory<double>("notasolver"), Error);
}

// ---------------------------------------------------------------------------
// Source scan: no call site outside src/core (and the test tree, which owns
// the golden fixtures) may construct a solver class directly — everything
// routes through make_solver / the registry. KDR_SOURCE_DIR is injected by
// the test build.

#ifdef KDR_SOURCE_DIR
TEST(ApiSurface, RegistryIsTheOnlyConstructionPath) {
    const std::vector<std::string> files = {
        "examples/quickstart.cpp",
        "examples/matrix_market_solve.cpp",
        "examples/multiple_rhs.cpp",
        "examples/dynamic_load_balance.cpp",
        "examples/custom_format.cpp",
        "examples/mixed_formats.cpp",
        "examples/boundary_coupling.cpp",
        "bench/bench_fig8_stencil.cpp",
        "bench/bench_fig9_multiop.cpp",
        "bench/bench_fig10_loadbalance.cpp",
        "bench/bench_ablation_tracing.cpp",
        "bench/bench_ablation_overhead.cpp",
        "bench/bench_ablation_partition.cpp",
        "bench/bench_ablation_restart.cpp",
        "bench/bench_ablation_faults.cpp",
        "bench/bench_ablation_comm.cpp",
        "bench/bench_scaling.cpp",
        "bench/bench_service.cpp",
        "bench/bench_planner_ops.cpp",
        "bench/harness.hpp",
        "src/service/service.hpp",
    };
    const std::vector<std::string> tokens = {
        "CgSolver<",      "PcgSolver<",    "BiCgSolver<",   "BiCgStabSolver<",
        "MinresSolver<",  "GmresSolver<",  "CaCgSolver<",   "CaGmresSolver<",
    };
    for (const std::string& rel : files) {
        const std::string path = std::string(KDR_SOURCE_DIR) + "/" + rel;
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << "cannot open " << path
                               << " (file list out of date?)";
        std::ostringstream ss;
        ss << in.rdbuf();
        const std::string text = ss.str();
        for (const std::string& tok : tokens) {
            EXPECT_EQ(text.find(tok), std::string::npos)
                << rel << " names " << tok
                << " directly; construct solvers via core::make_solver";
        }
    }
}
#endif

} // namespace
} // namespace kdr::core
