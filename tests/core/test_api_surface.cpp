/// Compile-level API-surface checks: the deprecated `add_operator_planned`
/// shim (a PR-5 compatibility spelling) has been removed, and nothing
/// in-tree may reference it again. The detector is pure SFINAE — if someone
/// reintroduces a member with that name, the static_assert below fails the
/// build of this (always-compiled) test translation unit.

#include <gtest/gtest.h>

#include <type_traits>

#include "core/planner.hpp"

namespace kdr::core {
namespace {

template <typename P, typename = void>
struct has_add_operator_planned : std::false_type {};

template <typename P>
struct has_add_operator_planned<P, std::void_t<decltype(&P::add_operator_planned)>>
    : std::true_type {};

static_assert(!has_add_operator_planned<Planner<double>>::value,
              "the deprecated add_operator_planned shim was removed in the level-description "
              "PR; use add_operator(op, sol_comp, rhs_comp, plan)");

// The supported spellings must still be present: expression-based detection
// so the optional-plan default argument participates (member-pointer traits
// would not see it).
using Op = std::shared_ptr<const LinearOperator<double>>;

template <typename P, typename = void>
struct add_operator_defaults_plan : std::false_type {};
template <typename P>
struct add_operator_defaults_plan<
    P, std::void_t<decltype(std::declval<P&>().add_operator(std::declval<Op>(), CompId{},
                                                            CompId{}))>> : std::true_type {};

template <typename P, typename = void>
struct add_operator_takes_plan : std::false_type {};
template <typename P>
struct add_operator_takes_plan<
    P, std::void_t<decltype(std::declval<P&>().add_operator(
           std::declval<Op>(), CompId{}, CompId{}, std::declval<OperatorPlan>()))>>
    : std::true_type {};

template <typename P, typename = void>
struct add_preconditioner_takes_plan : std::false_type {};
template <typename P>
struct add_preconditioner_takes_plan<
    P, std::void_t<decltype(std::declval<P&>().add_preconditioner(
           std::declval<Op>(), CompId{}, CompId{}, std::declval<OperatorPlan>()))>>
    : std::true_type {};

static_assert(add_operator_defaults_plan<Planner<double>>::value,
              "add_operator(op, sol, rhs) must remain callable without an explicit plan");
static_assert(add_operator_takes_plan<Planner<double>>::value,
              "add_operator must keep accepting an explicit OperatorPlan");
static_assert(add_preconditioner_takes_plan<Planner<double>>::value,
              "add_preconditioner must keep accepting an explicit OperatorPlan");

TEST(ApiSurface, DeprecatedShimsAreGone) {
    // The real checks are the static_asserts above; this test exists so the
    // suite reports the property by name.
    EXPECT_FALSE(has_add_operator_planned<Planner<double>>::value);
}

} // namespace
} // namespace kdr::core
