/// Solver breakdown classification: each Krylov method must surface a
/// terminal SolveStatus — and keep its iterate at the last healthy state —
/// instead of emitting NaNs or looping, when fed degenerate systems (zero
/// pivots, indefinite matrices, non-finite data, singular operators).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/monitor.hpp"
#include "core/solvers.hpp"
#include "core/solvers_extra.hpp"
#include "sparse/csr.hpp"

namespace kdr::core {
namespace {

struct TinySystem {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<Planner<double>> planner;
    rt::RegionId xr{}, br{};
    rt::FieldId xf{}, bf{};

    [[nodiscard]] std::vector<double> solution() const {
        auto x = runtime->field_data<double>(xr, xf);
        return {x.begin(), x.end()};
    }
};

/// Square n-vector system with the given matrix triplets and rhs.
TinySystem make_system(gidx n, std::vector<Triplet<double>> ts,
                       const std::vector<double>& b) {
    TinySystem s;
    s.runtime = std::make_unique<rt::Runtime>(sim::MachineDesc::lassen(1));
    const IndexSpace D = IndexSpace::create(n, "D");
    const IndexSpace R = IndexSpace::create(n, "R");
    s.xr = s.runtime->create_region(D, "x");
    s.br = s.runtime->create_region(R, "b");
    s.xf = s.runtime->add_field<double>(s.xr, "v");
    s.bf = s.runtime->add_field<double>(s.br, "v");
    auto bd = s.runtime->field_data<double>(s.br, s.bf);
    std::copy(b.begin(), b.end(), bd.begin());
    s.planner = std::make_unique<Planner<double>>(*s.runtime);
    s.planner->add_sol_vector(s.xr, s.xf, Partition::equal(D, 1));
    s.planner->add_rhs_vector(s.br, s.bf, Partition::equal(R, 1));
    s.planner->add_operator(
        std::make_shared<CsrMatrix<double>>(
            CsrMatrix<double>::from_triplets(D, R, std::move(ts))),
        0, 0);
    return s;
}

TEST(Breakdown, CgZeroPivotOnFirstStep) {
    // A = [[0,1],[1,0]]: pᵀAp = 0 on the very first CG step (ρ != 0).
    TinySystem s = make_system(2, {{0, 1, 1.0}, {1, 0, 1.0}}, {1.0, 0.0});
    CgSolver<double> cg(*s.planner);
    const SolveResult r = solve(cg, 1e-10, 50);
    EXPECT_EQ(r.status, SolveStatus::breakdown_pivot_zero);
    EXPECT_EQ(r.iterations, 1); // the attempted (aborted) step is counted
    // Iterate untouched by the aborted update.
    for (double x : s.solution()) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Breakdown, CgIndefiniteMatrixClassified) {
    // A = diag(1, -1): CG's pᵀAp goes negative once the second component
    // dominates — indefinite, not a zero pivot.
    TinySystem s = make_system(2, {{0, 0, 1.0}, {1, 1, -1.0}}, {2.0, 1.0});
    CgSolver<double> cg(*s.planner);
    const SolveResult r = solve(cg, 1e-12, 50);
    EXPECT_TRUE(r.status == SolveStatus::breakdown_indefinite ||
                r.status == SolveStatus::converged)
        << "got " << to_string(r.status);
    // This particular system is indefinite from step one (pᵀAp = 3 > 0
    // initially, but the recurrence collapses); accept converged only if the
    // solution is actually right.
    if (r.status == SolveStatus::converged) {
        const auto x = s.solution();
        EXPECT_NEAR(x[0], 2.0, 1e-8);
        EXPECT_NEAR(x[1], -1.0, 1e-8);
    }
}

TEST(Breakdown, MinresHandlesIndefiniteMatrix) {
    // MINRES is built for symmetric indefinite systems: same matrix, no
    // breakdown, correct solution.
    TinySystem s = make_system(2, {{0, 0, 1.0}, {1, 1, -1.0}}, {2.0, 1.0});
    MinresSolver<double> minres(*s.planner);
    const SolveResult r = solve(minres, 1e-10, 50);
    EXPECT_EQ(r.status, SolveStatus::converged);
    const auto x = s.solution();
    EXPECT_NEAR(x[0], 2.0, 1e-8);
    EXPECT_NEAR(x[1], -1.0, 1e-8);
}

TEST(Breakdown, NonfiniteRhsClassifiedNotPropagated) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    TinySystem s = make_system(2, {{0, 0, 2.0}, {1, 1, 2.0}}, {nan, 1.0});
    CgSolver<double> cg(*s.planner);
    const SolveResult r = solve(cg, 1e-10, 50);
    EXPECT_EQ(r.status, SolveStatus::breakdown_nonfinite);
    EXPECT_EQ(r.iterations, 0);
}

TEST(Breakdown, ZeroRhsConvergesImmediately) {
    TinySystem s = make_system(2, {{0, 0, 2.0}, {1, 1, 2.0}}, {0.0, 0.0});
    CgSolver<double> cg(*s.planner);
    const SolveResult r = solve(cg, 1e-10, 50);
    EXPECT_EQ(r.status, SolveStatus::converged);
    EXPECT_EQ(r.iterations, 0);
    for (double x : s.solution()) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Breakdown, SingularOperatorDetected) {
    // A = diag(1, 0) with b touching the null space: no solution exists;
    // the run must end in a classified breakdown, not spin to max_iter with
    // NaNs. (CG's pivot pᵀAp vanishes once the live component converges.)
    TinySystem s = make_system(2, {{0, 0, 1.0}, {1, 1, 0.0}}, {1.0, 1.0});
    CgSolver<double> cg(*s.planner);
    const SolveResult r = solve(cg, 1e-14, 50);
    EXPECT_TRUE(is_breakdown(r.status)) << "got " << to_string(r.status);
    EXPECT_TRUE(std::isfinite(r.residual));
}

TEST(Breakdown, BiCgStabRhoZeroPastConvergence) {
    // Stepping BiCGStab far past convergence drives ρ = (r̂, r) to exact
    // zero; the solver must classify instead of dividing by it.
    TinySystem s = make_system(2, {{0, 0, 1.0}, {1, 1, 1.0}}, {3.0, 4.0});
    BiCgStabSolver<double> solver(*s.planner);
    for (int i = 0; i < 20 && solver.status() == SolveStatus::running; ++i) {
        solver.step();
    }
    EXPECT_NE(solver.status(), SolveStatus::running);
    EXPECT_TRUE(is_breakdown(solver.status()))
        << "got " << to_string(solver.status());
    // The iterate still carries the converged solution.
    const auto x = s.solution();
    EXPECT_NEAR(x[0], 3.0, 1e-10);
    EXPECT_NEAR(x[1], 4.0, 1e-10);
}

TEST(Breakdown, GmresHappyBreakdownIsConvergence) {
    // A = diag(2, 2): the Krylov space is 1-dimensional, so the Arnoldi
    // vector h(j+1, j) vanishes on the first step — the "lucky" breakdown,
    // which must be reported as convergence with the exact solution.
    TinySystem s = make_system(2, {{0, 0, 2.0}, {1, 1, 2.0}}, {2.0, 4.0});
    GmresSolver<double> gmres(*s.planner, 5);
    const SolveResult r = solve(gmres, 1e-10, 50);
    EXPECT_EQ(r.status, SolveStatus::converged);
    const auto x = s.solution();
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(Breakdown, StepIsNoOpAfterTerminalStatus) {
    TinySystem s = make_system(2, {{0, 1, 1.0}, {1, 0, 1.0}}, {1.0, 0.0});
    CgSolver<double> cg(*s.planner);
    cg.step(); // trips breakdown_pivot_zero
    ASSERT_NE(cg.status(), SolveStatus::running);
    const SolveStatus st = cg.status();
    const std::uint64_t launched = s.runtime->tasks_launched();
    cg.step();
    cg.step();
    EXPECT_EQ(cg.status(), st);
    EXPECT_EQ(s.runtime->tasks_launched(), launched)
        << "step() after a terminal status must not launch tasks";
}

TEST(Breakdown, MonitorForwardsStatusAndKeepsHistory) {
    TinySystem s = make_system(2, {{0, 1, 1.0}, {1, 0, 1.0}}, {1.0, 0.0});
    CgSolver<double> inner(*s.planner);
    SolverMonitor<double> mon(inner);
    const SolveResult r = solve(mon, 1e-10, 50);
    EXPECT_EQ(r.status, SolveStatus::breakdown_pivot_zero);
    EXPECT_EQ(mon.status(), inner.status());
    ASSERT_FALSE(mon.history().empty());
    EXPECT_TRUE(std::isfinite(mon.history().back().residual));
}

TEST(Breakdown, DivergenceGuardTriggers) {
    // Richardson with a huge damping factor on an SPD system diverges
    // geometrically; the driver must cut it off as `diverged`.
    TinySystem s = make_system(2, {{0, 0, 1.0}, {1, 1, 2.0}}, {1.0, 1.0});
    RichardsonSolver<double> rich(*s.planner, 10.0);
    SolveOptions opts;
    opts.divergence_factor = 1e4;
    const SolveResult r = solve(rich, 1e-10, 10000, opts);
    EXPECT_EQ(r.status, SolveStatus::diverged);
}

TEST(Breakdown, StagnationGuardTriggers) {
    // diag(1, 3) converges in two CG steps to rounding level but never to an
    // exact zero residual: with tol = 0 the stagnation window must end the
    // run (or a guard must classify the dead pivot) instead of spinning.
    TinySystem s = make_system(2, {{0, 0, 1.0}, {1, 1, 3.0}}, {1.0, 2.0});
    CgSolver<double> cg(*s.planner);
    SolveOptions opts;
    opts.stagnation_window = 3;
    // tol = 0 is unreachable, so the only exits are stagnation or breakdown.
    const SolveResult r = solve(cg, 0.0, 10000, opts);
    EXPECT_TRUE(r.status == SolveStatus::stagnated || is_breakdown(r.status))
        << "got " << to_string(r.status);
}

} // namespace
} // namespace kdr::core
