/// Validation-mode runs of the shipped solver stack: every kernel the
/// planner launches (BLAS-1 pieces, fused update+reduce, SpMV dispatch,
/// Jacobi preconditioner application, multi-operator Reduce accumulation)
/// must honor its declared (subset, privilege) contract exactly — zero
/// privilege violations, zero shadow races, zero over-declared requirements
/// — and produce bitwise-identical residual histories to release mode.
/// These are the positive controls for tests/runtime/test_validation.cpp.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "golden_setup.hpp"

namespace kdr::core {
namespace {

rt::RuntimeOptions validating_options() {
    rt::RuntimeOptions o;
    // warn-only: a contract bug fails the assertions below with the full
    // diagnostic list instead of aborting the solve at the first violation.
    o.validate_warn_only = true;
    return o;
}

void expect_clean(rt::Runtime& runtime, const std::string& what) {
    ASSERT_TRUE(runtime.validating());
    const rt::Validator& v = *runtime.validator();
    std::ostringstream diag;
    for (const std::string& w : v.warnings()) diag << "  " << w << "\n";
    EXPECT_EQ(v.violations(), 0u) << what << " privilege violations:\n" << diag.str();
    EXPECT_EQ(v.race_pairs(), 0u) << what << " races:\n" << diag.str();
    EXPECT_EQ(v.overdeclared(), 0u) << what << " over-declarations:\n" << diag.str();
    EXPECT_GT(v.tasks_checked(), 0u) << what << ": validation never saw a task body";
}

struct Config {
    bool trace;
    bool fused;
};

void run_validated(const std::string& solver, Config cfg) {
    SCOPED_TRACE(solver + (cfg.trace ? " traced" : " untraced") +
                 (cfg.fused ? " fused" : " unfused"));
    rt::Runtime runtime(sim::MachineDesc::lassen(2), validating_options());
    const std::vector<double> validated =
        golden::run_history_on(runtime, solver, cfg.trace, cfg.fused);
    expect_clean(runtime, solver);

    // Element-checked accessors must not perturb the arithmetic: the
    // validated history is bitwise-identical to the release-mode run.
    const std::vector<double> plain = golden::run_history(solver, cfg.trace, cfg.fused);
    ASSERT_EQ(validated.size(), plain.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(validated[i], plain[i]) << solver << " diverged at iteration " << i;
    }
}

TEST(ValidationSolvers, AllGoldenSolversRunCleanTracedFused) {
    for (const std::string& solver : golden::solver_names()) {
        run_validated(solver, {/*trace=*/true, /*fused=*/true});
    }
}

TEST(ValidationSolvers, CgRunsCleanInEveryPlannerConfig) {
    run_validated("cg", {false, false});
    run_validated("cg", {false, true});
    run_validated("cg", {true, false});
}

TEST(ValidationSolvers, PreconditionedSolverRunsCleanUnfused) {
    // PCG unfused exercises the separate apply-preconditioner + dot kernels.
    run_validated("pcg", {true, false});
}

TEST(ValidationSolvers, MultiOperatorImplicitSumRunsClean) {
    // Two operators feeding the same rhs component: the second SpMV
    // dispatches with Reduce privilege and folds into the first result.
    // This is the path where a fetch-for-Reduce or an over-wide reducer
    // declaration would surface.
    const gidx n = 24;
    std::vector<Triplet<double>> base;
    for (gidx i = 0; i < n; ++i) {
        if (i > 0) base.push_back({i, i - 1, -1.0});
        base.push_back({i, i, 4.0});
        if (i < n - 1) base.push_back({i, i + 1, -1.0});
    }
    const std::vector<Triplet<double>> delta = {{3, 3, 1.5}, {10, 11, -0.5}, {11, 10, -0.5}};

    rt::Runtime runtime(sim::MachineDesc::lassen(2), validating_options());
    const IndexSpace D = IndexSpace::create(n, "D");
    auto A0 = std::make_shared<CsrMatrix<double>>(CsrMatrix<double>::from_triplets(D, D, base));
    auto dA = std::make_shared<CsrMatrix<double>>(CsrMatrix<double>::from_triplets(D, D, delta));

    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    const auto b = stencil::random_rhs(n, 300);
    {
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }

    Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, Partition::equal(D, 2));
    planner.add_rhs_vector(br, bf, Partition::equal(D, 2));
    planner.add_operator(A0, 0, 0);
    planner.add_operator(dA, 0, 0); // implicit sum: Reduce-privilege SpMV

    CgSolver<double> cg(planner);
    const int iters = solve_to_tolerance(cg, 1e-10, 300);
    EXPECT_LT(iters, 300);
    expect_clean(runtime, "multi-op cg");
}

} // namespace
} // namespace kdr::core
