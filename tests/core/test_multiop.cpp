/// Multi-operator system tests (paper §4): a logical system assembled from
/// several non-contiguous component matrices/vectors must behave exactly
/// like the amalgamated single-operator system — including the aliasing
/// patterns of §4.2 (multiple right-hand sides, related systems) where one
/// matrix object backs several components without duplication.

#include <gtest/gtest.h>

#include <memory>

#include "core/solvers.hpp"
#include "stencil/stencil.hpp"
#include "support/rng.hpp"

namespace kdr::core {
namespace {

sim::MachineDesc machine() {
    sim::MachineDesc m = sim::MachineDesc::lassen(2);
    m.gpus_per_node = 2;
    return m;
}

/// Split a square matrix over [0, n) into the four blocks induced by halving
/// the index range — the Fig 9 formulation.
struct FourBlocks {
    std::shared_ptr<CsrMatrix<double>> a11, a12, a21, a22;
    IndexSpace d1, d2;
};

FourBlocks split_in_half(const std::vector<Triplet<double>>& ts, gidx n) {
    const gidx h = n / 2;
    FourBlocks fb;
    fb.d1 = IndexSpace::create(h, "D1");
    fb.d2 = IndexSpace::create(n - h, "D2");
    std::vector<Triplet<double>> t11, t12, t21, t22;
    for (const auto& t : ts) {
        if (t.row < h && t.col < h) {
            t11.push_back(t);
        } else if (t.row < h) {
            t12.push_back({t.row, t.col - h, t.value});
        } else if (t.col < h) {
            t21.push_back({t.row - h, t.col, t.value});
        } else {
            t22.push_back({t.row - h, t.col - h, t.value});
        }
    }
    fb.a11 = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(fb.d1, fb.d1, std::move(t11)));
    fb.a12 = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(fb.d2, fb.d1, std::move(t12)));
    fb.a21 = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(fb.d1, fb.d2, std::move(t21)));
    fb.a22 = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(fb.d2, fb.d2, std::move(t22)));
    return fb;
}

TEST(MultiOperator, SplitSystemMatchesWholeSystemCg) {
    // Solve the same 2-D Poisson problem as (a) one operator over one domain
    // space, (b) four operators over two domain spaces (Fig 9). Iterates
    // must agree to roundoff.
    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = 16;
    spec.ny = 16;
    const gidx n = spec.unknowns();
    const auto ts = stencil::laplacian_triplets(spec);
    const auto b = stencil::random_rhs(n, 17);

    // (a) single-operator reference.
    std::vector<double> x_single;
    {
        rt::Runtime runtime(machine());
        const IndexSpace D = IndexSpace::create(n, "D");
        const rt::RegionId xr = runtime.create_region(D, "x");
        const rt::RegionId br = runtime.create_region(D, "b");
        const rt::FieldId xf = runtime.add_field<double>(xr, "v");
        const rt::FieldId bf = runtime.add_field<double>(br, "v");
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
        Planner<double> planner(runtime);
        planner.add_sol_vector(xr, xf, Partition::equal(D, 4));
        planner.add_rhs_vector(br, bf, Partition::equal(D, 4));
        planner.add_operator(std::make_shared<CsrMatrix<double>>(
                                 CsrMatrix<double>::from_triplets(D, D, ts)),
                             0, 0);
        CgSolver<double> cg(planner);
        for (int i = 0; i < 40; ++i) cg.step();
        auto xd = runtime.field_data<double>(xr, xf);
        x_single.assign(xd.begin(), xd.end());
    }

    // (b) multi-operator formulation: two domain spaces, four matrices.
    std::vector<double> x_multi;
    {
        rt::Runtime runtime(machine());
        FourBlocks fb = split_in_half(ts, n);
        const rt::RegionId x1r = runtime.create_region(fb.d1, "x1");
        const rt::RegionId x2r = runtime.create_region(fb.d2, "x2");
        const rt::RegionId b1r = runtime.create_region(fb.d1, "b1");
        const rt::RegionId b2r = runtime.create_region(fb.d2, "b2");
        const rt::FieldId x1f = runtime.add_field<double>(x1r, "v");
        const rt::FieldId x2f = runtime.add_field<double>(x2r, "v");
        const rt::FieldId b1f = runtime.add_field<double>(b1r, "v");
        const rt::FieldId b2f = runtime.add_field<double>(b2r, "v");
        const gidx h = n / 2;
        {
            auto b1 = runtime.field_data<double>(b1r, b1f);
            auto b2 = runtime.field_data<double>(b2r, b2f);
            std::copy(b.begin(), b.begin() + h, b1.begin());
            std::copy(b.begin() + h, b.end(), b2.begin());
        }
        Planner<double> planner(runtime);
        const CompId s1 = planner.add_sol_vector(x1r, x1f, Partition::equal(fb.d1, 2));
        const CompId s2 = planner.add_sol_vector(x2r, x2f, Partition::equal(fb.d2, 2));
        const CompId r1 = planner.add_rhs_vector(b1r, b1f, Partition::equal(fb.d1, 2));
        const CompId r2 = planner.add_rhs_vector(b2r, b2f, Partition::equal(fb.d2, 2));
        planner.add_operator(fb.a11, s1, r1);
        planner.add_operator(fb.a12, s2, r1);
        planner.add_operator(fb.a21, s1, r2);
        planner.add_operator(fb.a22, s2, r2);
        EXPECT_TRUE(planner.is_square());
        EXPECT_EQ(planner.total_domain_size(), n);
        CgSolver<double> cg(planner);
        for (int i = 0; i < 40; ++i) cg.step();
        auto x1 = runtime.field_data<double>(x1r, x1f);
        auto x2 = runtime.field_data<double>(x2r, x2f);
        x_multi.assign(x1.begin(), x1.end());
        x_multi.insert(x_multi.end(), x2.begin(), x2.end());
    }

    ASSERT_EQ(x_single.size(), x_multi.size());
    for (std::size_t i = 0; i < x_single.size(); ++i) {
        EXPECT_NEAR(x_single[i], x_multi[i], 1e-9 + 1e-9 * std::abs(x_single[i])) << i;
    }
}

TEST(MultiOperator, AliasedOperatorSolvesMultipleRhs) {
    // Paper §4.2 eq. (10): {(K, A, 1, 1), (K, A, 2, 2)} — one matrix object
    // added twice solves two independent systems in a single CG run; the
    // physical matrix data exists once.
    const gidx n = 32;
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < n; ++i) {
        if (i > 0) ts.push_back({i, i - 1, -1.0});
        ts.push_back({i, i, 3.0});
        if (i < n - 1) ts.push_back({i, i + 1, -1.0});
    }
    rt::Runtime runtime(machine());
    const IndexSpace D = IndexSpace::create(n, "D");
    auto A = std::make_shared<CsrMatrix<double>>(CsrMatrix<double>::from_triplets(D, D, ts));

    const rt::RegionId x1r = runtime.create_region(D, "x1");
    const rt::RegionId x2r = runtime.create_region(D, "x2");
    const rt::RegionId b1r = runtime.create_region(D, "b1");
    const rt::RegionId b2r = runtime.create_region(D, "b2");
    const rt::FieldId x1f = runtime.add_field<double>(x1r, "v");
    const rt::FieldId x2f = runtime.add_field<double>(x2r, "v");
    const rt::FieldId b1f = runtime.add_field<double>(b1r, "v");
    const rt::FieldId b2f = runtime.add_field<double>(b2r, "v");
    const auto b1 = stencil::random_rhs(n, 100);
    const auto b2 = stencil::random_rhs(n, 200);
    {
        auto d1 = runtime.field_data<double>(b1r, b1f);
        auto d2 = runtime.field_data<double>(b2r, b2f);
        std::copy(b1.begin(), b1.end(), d1.begin());
        std::copy(b2.begin(), b2.end(), d2.begin());
    }

    Planner<double> planner(runtime);
    const CompId s1 = planner.add_sol_vector(x1r, x1f, Partition::equal(D, 2));
    const CompId s2 = planner.add_sol_vector(x2r, x2f, Partition::equal(D, 2));
    const CompId r1 = planner.add_rhs_vector(b1r, b1f, Partition::equal(D, 2));
    const CompId r2 = planner.add_rhs_vector(b2r, b2f, Partition::equal(D, 2));
    planner.add_operator(A, s1, r1); // same object, two slots: aliasing
    planner.add_operator(A, s2, r2);
    EXPECT_EQ(A.use_count(), 3) << "one physical matrix backs both slots";

    CgSolver<double> cg(planner);
    const int iters = solve_to_tolerance(cg, 1e-10, 300);
    EXPECT_LT(iters, 300);

    // Both component solutions satisfy their own system.
    auto check = [&](rt::RegionId xr, rt::FieldId xf, const std::vector<double>& b) {
        auto xd = runtime.field_data<double>(xr, xf);
        std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
        A->multiply_add(std::vector<double>(xd.begin(), xd.end()), ax);
        for (gidx i = 0; i < n; ++i) {
            EXPECT_NEAR(ax[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-7);
        }
    };
    check(x1r, x1f, b1);
    check(x2r, x2f, b2);
}

TEST(MultiOperator, RelatedSystemsSharedBasePlusPerturbation) {
    // Paper §4.2 eq. (12): (A0 + ΔA) x = b expressed as two operator slots on
    // the same component pair — A0 stored once, ΔA tiny.
    const gidx n = 24;
    std::vector<Triplet<double>> base;
    for (gidx i = 0; i < n; ++i) {
        if (i > 0) base.push_back({i, i - 1, -1.0});
        base.push_back({i, i, 4.0});
        if (i < n - 1) base.push_back({i, i + 1, -1.0});
    }
    std::vector<Triplet<double>> delta = {{3, 3, 1.5}, {10, 11, -0.5}, {11, 10, -0.5}};

    rt::Runtime runtime(machine());
    const IndexSpace D = IndexSpace::create(n, "D");
    auto A0 = std::make_shared<CsrMatrix<double>>(CsrMatrix<double>::from_triplets(D, D, base));
    auto dA = std::make_shared<CsrMatrix<double>>(CsrMatrix<double>::from_triplets(D, D, delta));

    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    const auto b = stencil::random_rhs(n, 300);
    {
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }

    Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, Partition::equal(D, 2));
    planner.add_rhs_vector(br, bf, Partition::equal(D, 2));
    planner.add_operator(A0, 0, 0);
    planner.add_operator(dA, 0, 0); // implicit sum per eq. (8)

    CgSolver<double> cg(planner);
    const int iters = solve_to_tolerance(cg, 1e-10, 300);
    EXPECT_LT(iters, 300);

    // Verify against (A0 + ΔA) x = b computed directly.
    auto xd = runtime.field_data<double>(xr, xf);
    std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
    const std::vector<double> x(xd.begin(), xd.end());
    A0->multiply_add(x, ax);
    dA->multiply_add(x, ax);
    for (gidx i = 0; i < n; ++i) {
        EXPECT_NEAR(ax[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-7);
    }
}

TEST(MultiOperator, NonContiguousComponentsViaStridedPieces) {
    // P4: a component's canonical partition may be non-contiguous (strided
    // tiles); the solve is unaffected.
    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = 8;
    spec.ny = 8;
    const gidx n = spec.unknowns();
    rt::Runtime runtime(machine());
    const IndexSpace D = IndexSpace::create_grid({spec.nx, spec.ny}, "grid");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    const auto b = stencil::random_rhs(n, 7);
    {
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }
    Planner<double> planner(runtime);
    const Partition tiles = Partition::tiles2d(D, 2, 2); // strided pieces
    planner.add_sol_vector(xr, xf, tiles);
    planner.add_rhs_vector(br, bf, tiles);
    auto A = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D));
    planner.add_operator(A, 0, 0);
    CgSolver<double> cg(planner);
    const int iters = solve_to_tolerance(cg, 1e-9, 400);
    EXPECT_LT(iters, 400);
}

} // namespace
} // namespace kdr::core
