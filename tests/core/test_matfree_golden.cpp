/// Golden residual histories for matrix-free operators: CG and GMRES(10) on
/// a `MatrixFreeStencilOperator` must produce *bitwise-identical* convergence
/// histories to the materialized CSR twin built from the same coefficients —
/// per-row accumulation order is offset-ascending in both kernels — and the
/// matrix-free runs must come out of validation mode with zero privilege
/// violations, zero shadow races, and zero over-declarations.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/solvers.hpp"
#include "stencil/matrix_free.hpp"
#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

constexpr int kIters = 20;
constexpr std::uint64_t kRhsSeed = 20250806;

rt::RuntimeOptions validating_options() {
    rt::RuntimeOptions o;
    o.validate_warn_only = true;
    return o;
}

void expect_clean(rt::Runtime& runtime, const std::string& what) {
    ASSERT_TRUE(runtime.validating());
    const rt::Validator& v = *runtime.validator();
    std::ostringstream diag;
    for (const std::string& w : v.warnings()) diag << "  " << w << "\n";
    EXPECT_EQ(v.violations(), 0u) << what << " privilege violations:\n" << diag.str();
    EXPECT_EQ(v.race_pairs(), 0u) << what << " races:\n" << diag.str();
    EXPECT_EQ(v.overdeclared(), 0u) << what << " over-declarations:\n" << diag.str();
    EXPECT_GT(v.tasks_checked(), 0u) << what << ": validation never saw a task body";
}

/// Run `kIters` steps of cg/gmres10 on the spec's Dirichlet Laplacian with a
/// fixed-seed rhs and 4 canonical pieces; the operator is either the
/// matrix-free stencil or its materialized CSR twin.
std::vector<double> run_history(rt::Runtime& runtime, const stencil::Spec& spec,
                                const std::string& solver, bool matfree) {
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    {
        const auto b = stencil::random_rhs(n, kRhsSeed);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }

    Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, Partition::equal(D, 4));
    planner.add_rhs_vector(br, bf, Partition::equal(D, 4));
    std::shared_ptr<const LinearOperator<double>> A;
    if (matfree) {
        A = stencil::make_matrix_free_laplacian(spec, D, D);
    } else {
        A = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D));
    }
    planner.add_operator(A, 0, 0);

    std::unique_ptr<Solver<double>> s;
    if (solver == "cg") {
        s = std::make_unique<CgSolver<double>>(planner);
    } else {
        s = std::make_unique<GmresSolver<double>>(planner, 10);
    }
    std::vector<double> history;
    for (int i = 0; i < kIters && s->status() == SolveStatus::running; ++i) {
        s->step();
        history.push_back(s->get_convergence_measure().value);
    }
    return history;
}

std::vector<stencil::Spec> golden_specs() {
    return {{stencil::Kind::D1P3, 64, 1, 1},
            {stencil::Kind::D2P5, 32, 32, 1},
            {stencil::Kind::D3P7, 8, 8, 8},
            {stencil::Kind::D3P27, 6, 6, 6}};
}

void run_twins(const std::string& solver) {
    for (const stencil::Spec& spec : golden_specs()) {
        SCOPED_TRACE(solver + " on " + spec.describe());
        // Matrix-free arm under full validation (KDR_VALIDATE semantics):
        // privilege-checked accessors, shadow race detector, the lot.
        rt::Runtime vrt(sim::MachineDesc::lassen(2), validating_options());
        const std::vector<double> mf = run_history(vrt, spec, solver, /*matfree=*/true);
        expect_clean(vrt, solver + " matfree " + spec.describe());

        rt::Runtime crt(sim::MachineDesc::lassen(2));
        const std::vector<double> csr = run_history(crt, spec, solver, /*matfree=*/false);

        ASSERT_EQ(mf.size(), csr.size());
        ASSERT_FALSE(mf.empty());
        for (std::size_t i = 0; i < csr.size(); ++i) {
            EXPECT_EQ(mf[i], csr[i])
                << "history diverged at iteration " << i << " (not bitwise identical)";
        }
    }
}

TEST(MatfreeGolden, CgHistoriesAreBitwiseTwinsUnderValidation) { run_twins("cg"); }

TEST(MatfreeGolden, GmresHistoriesAreBitwiseTwinsUnderValidation) {
    run_twins("gmres10");
}

} // namespace
} // namespace kdr::core
