#include "core/load_balancer.hpp"

#include <gtest/gtest.h>

namespace kdr::core {
namespace {

TEST(ThermodynamicBalancer, NoGiveawayAtOrBelowReference) {
    const ThermodynamicBalancer b(1.0, 0.010, 42);
    EXPECT_DOUBLE_EQ(b.giveaway_probability(0.010), 0.0);
    EXPECT_DOUBLE_EQ(b.giveaway_probability(0.005), 0.0);
}

TEST(ThermodynamicBalancer, ProbabilityGrowsWithOverloadAndSaturates) {
    const ThermodynamicBalancer b(1.0, 0.010, 42);
    const double p1 = b.giveaway_probability(0.011);
    const double p2 = b.giveaway_probability(0.10);
    const double p3 = b.giveaway_probability(10.0);
    EXPECT_GT(p1, 0.0);
    EXPECT_GT(p2, p1);
    EXPECT_DOUBLE_EQ(p3, 1.0);
}

TEST(ThermodynamicBalancer, BetaControlsAdaptationRate) {
    const ThermodynamicBalancer slow(0.1, 0.010, 1);
    const ThermodynamicBalancer fast(10.0, 0.010, 1);
    EXPECT_LT(slow.giveaway_probability(0.05), fast.giveaway_probability(0.05));
}

TEST(ThermodynamicBalancer, RejectsBadParameters) {
    EXPECT_THROW(ThermodynamicBalancer(0.0, 1.0, 1), Error);
    EXPECT_THROW(ThermodynamicBalancer(1.0, 0.0, 1), Error);
}

TEST(ThermodynamicBalancer, RebalanceMovesOverloadedTilesOnly) {
    ThermodynamicBalancer b(1000.0, 0.010, 7); // steep: overload => certain giveaway
    std::vector<Tile> tiles = {
        {0, 100, /*owner_a=*/0, /*owner_b=*/1, /*current=*/0},
        {1, 101, 0, 2, 0},
        {2, 102, 1, 3, 3},
    };
    // Node 0 badly overloaded; nodes 1..3 healthy.
    const std::vector<double> times = {10.0, 0.005, 0.005, 0.005};
    const int moved = b.rebalance(tiles, times);
    EXPECT_EQ(moved, 2);
    EXPECT_EQ(tiles[0].current, 1) << "tile 0 given to its alternate owner";
    EXPECT_EQ(tiles[1].current, 2);
    EXPECT_EQ(tiles[2].current, 3) << "healthy node keeps its tile";
}

TEST(ThermodynamicBalancer, GiveawayTargetAlternates) {
    // A tile bounced twice returns to its first owner — only two legal
    // owners exist (paper §6.3: "the target node of each giveaway is
    // uniquely determined").
    Tile t{0, 0, 4, 9, 4};
    EXPECT_EQ(t.other_owner(), 9);
    t.current = 9;
    EXPECT_EQ(t.other_owner(), 4);
}

TEST(TileTableMapper, RoutesTaggedColorsThroughTable) {
    auto table = std::make_shared<std::unordered_map<Color, int>>();
    (*table)[500] = 3;
    TileTableMapper mapper(table, sim::ProcKind::CPU);
    sim::MachineDesc m = sim::MachineDesc::lassen(8);

    rt::TaskLaunch tagged;
    tagged.color = 500;
    tagged.proc_kind = sim::ProcKind::CPU;
    const sim::ProcId p = mapper.select_processor(tagged, m);
    EXPECT_EQ(p.node, 3);
    EXPECT_EQ(p.kind, sim::ProcKind::CPU);

    rt::TaskLaunch untagged;
    untagged.color = 5;
    untagged.proc_kind = sim::ProcKind::CPU;
    const sim::ProcId q = mapper.select_processor(untagged, m);
    EXPECT_EQ(q.node, 5) << "fallback round-robin";
}

TEST(TileTableMapper, TableUpdatesAreSeenByMapper) {
    auto table = std::make_shared<std::unordered_map<Color, int>>();
    (*table)[7] = 1;
    TileTableMapper mapper(table, sim::ProcKind::CPU);
    sim::MachineDesc m = sim::MachineDesc::lassen(4);
    rt::TaskLaunch l;
    l.color = 7;
    l.proc_kind = sim::ProcKind::CPU;
    EXPECT_EQ(mapper.select_processor(l, m).node, 1);
    (*table)[7] = 2; // the balancer mutates the shared table
    EXPECT_EQ(mapper.select_processor(l, m).node, 2);
}

TEST(ThermodynamicBalancer, StochasticGiveawayRespectsProbability) {
    ThermodynamicBalancer b(1.0, 0.010, 123);
    // Overload chosen so probability is ~e^{0.04}-1 ≈ 0.0408.
    const double p = b.giveaway_probability(0.050);
    ASSERT_GT(p, 0.03);
    ASSERT_LT(p, 0.06);
    int moved_total = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<Tile> tiles = {{0, 0, 0, 1, 0}};
        moved_total += b.rebalance(tiles, {0.050, 0.0});
    }
    EXPECT_NEAR(static_cast<double>(moved_total) / 2000.0, p, 0.02);
}

} // namespace
} // namespace kdr::core
