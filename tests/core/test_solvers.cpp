/// Solver convergence tests: every KSM must drive the true residual of a
/// stencil system to tolerance, matching a directly computed residual (the
/// solvers only ever see the planner interface).

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/preconditioners.hpp"
#include "core/solvers.hpp"
#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

struct SolveSetup {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<Planner<double>> planner;
    std::shared_ptr<CsrMatrix<double>> A;
    rt::RegionId xr{}, br{};
    rt::FieldId xf{}, bf{};
    gidx n = 0;

    /// True residual ‖b − A x‖ computed outside the planner.
    double true_residual() {
        auto x = runtime->field_data<double>(xr, xf);
        auto b = runtime->field_data<double>(br, bf);
        std::vector<double> r(b.begin(), b.end());
        std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
        A->multiply_add(std::vector<double>(x.begin(), x.end()), ax);
        double s = 0.0;
        for (std::size_t i = 0; i < r.size(); ++i) {
            r[i] -= ax[i];
            s += r[i] * r[i];
        }
        return std::sqrt(s);
    }
};

SolveSetup make_setup(stencil::Kind kind, gidx target, Color pieces, bool nonsymmetric,
                      std::uint64_t seed, PlannerOptions popts = {}) {
    SolveSetup s;
    sim::MachineDesc m = sim::MachineDesc::lassen(2);
    m.gpus_per_node = 2;
    s.runtime = std::make_unique<rt::Runtime>(m);
    const stencil::Spec spec = stencil::Spec::cube(kind, target);
    s.n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(s.n, "D");
    const IndexSpace R = IndexSpace::create(s.n, "R");
    auto ts = stencil::laplacian_triplets(spec);
    if (nonsymmetric) {
        // Add a convection-like skew term that keeps the system well posed.
        for (auto& t : ts) {
            if (t.col == t.row + 1) t.value += 0.3;
            if (t.col == t.row - 1) t.value -= 0.3;
        }
    }
    s.A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(D, R, std::move(ts)));
    s.xr = s.runtime->create_region(D, "x");
    s.br = s.runtime->create_region(R, "b");
    s.xf = s.runtime->add_field<double>(s.xr, "v");
    s.bf = s.runtime->add_field<double>(s.br, "v");
    auto b = stencil::random_rhs(s.n, seed);
    auto bd = s.runtime->field_data<double>(s.br, s.bf);
    std::copy(b.begin(), b.end(), bd.begin());

    s.planner = std::make_unique<Planner<double>>(*s.runtime, popts);
    const Partition dp = Partition::equal(D, pieces);
    const Partition rp = Partition::equal(R, pieces);
    s.planner->add_sol_vector(s.xr, s.xf, dp);
    s.planner->add_rhs_vector(s.br, s.bf, rp);
    s.planner->add_operator(s.A, 0, 0);
    return s;
}

struct SolverCase {
    std::string name;
    bool nonsymmetric;
    std::function<std::unique_ptr<Solver<double>>(Planner<double>&)> make;
};

std::vector<SolverCase> solver_cases() {
    return {
        {"cg", false,
         [](Planner<double>& p) { return std::make_unique<CgSolver<double>>(p); }},
        {"bicg", true,
         [](Planner<double>& p) { return std::make_unique<BiCgSolver<double>>(p); }},
        {"bicgstab", true,
         [](Planner<double>& p) { return std::make_unique<BiCgStabSolver<double>>(p); }},
        {"gmres", true,
         [](Planner<double>& p) { return std::make_unique<GmresSolver<double>>(p, 10); }},
        {"minres", false,
         [](Planner<double>& p) { return std::make_unique<MinresSolver<double>>(p); }},
    };
}

class SolverTest : public ::testing::TestWithParam<SolverCase> {};

TEST_P(SolverTest, Converges1dToTolerance) {
    SolveSetup s = make_setup(stencil::Kind::D1P3, 64, 4, GetParam().nonsymmetric, 1);
    auto solver = GetParam().make(*s.planner);
    const int iters = solve_to_tolerance(*solver, 1e-8, 500);
    EXPECT_LT(iters, 500) << "did not converge";
    EXPECT_LT(s.true_residual(), 1e-6) << "reported convergence but true residual is large";
}

TEST_P(SolverTest, Converges2dToTolerance) {
    SolveSetup s = make_setup(stencil::Kind::D2P5, 256, 4, GetParam().nonsymmetric, 2);
    auto solver = GetParam().make(*s.planner);
    const int iters = solve_to_tolerance(*solver, 1e-8, 1000);
    EXPECT_LT(iters, 1000);
    EXPECT_LT(s.true_residual(), 1e-6);
}

TEST_P(SolverTest, ConvergenceMeasureTracksTrueResidual) {
    SolveSetup s = make_setup(stencil::Kind::D2P5, 64, 2, GetParam().nonsymmetric, 3);
    auto solver = GetParam().make(*s.planner);
    for (int it = 0; it < 30; ++it) solver->step();
    const double reported = solver->get_convergence_measure().value;
    const double actual = s.true_residual();
    // Recurrence-based residuals drift slightly; GMRES reports the projected
    // residual of the *current cycle*, which matches at cycle boundaries.
    EXPECT_NEAR(reported, actual, 1e-6 + 0.05 * actual) << GetParam().name;
}

TEST_P(SolverTest, PieceCountDoesNotChangeMath) {
    // The same problem partitioned 1 / 3 / 8 ways must produce identical
    // iterates (paper P3: partitioning is a performance choice, not a
    // semantic one).
    std::vector<double> residuals;
    for (Color pieces : {1, 3, 8}) {
        SolveSetup s =
            make_setup(stencil::Kind::D1P3, 64, pieces, GetParam().nonsymmetric, 4);
        auto solver = GetParam().make(*s.planner);
        for (int i = 0; i < 12; ++i) solver->step();
        residuals.push_back(s.true_residual());
    }
    EXPECT_NEAR(residuals[0], residuals[1], 1e-9 + 1e-9 * std::abs(residuals[0]));
    EXPECT_NEAR(residuals[0], residuals[2], 1e-9 + 1e-9 * std::abs(residuals[0]));
}

TEST_P(SolverTest, NonzeroInitialGuessSupported) {
    SolveSetup s = make_setup(stencil::Kind::D1P3, 64, 2, GetParam().nonsymmetric, 5);
    {
        auto x = s.runtime->field_data<double>(s.xr, s.xf);
        for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.1 * static_cast<double>(i % 7);
    }
    auto solver = GetParam().make(*s.planner);
    const int iters = solve_to_tolerance(*solver, 1e-8, 500);
    EXPECT_LT(iters, 500);
    EXPECT_LT(s.true_residual(), 1e-6);
}

TEST_P(SolverTest, VirtualTimeAdvancesPerStep) {
    SolveSetup s = make_setup(stencil::Kind::D1P3, 64, 2, GetParam().nonsymmetric, 6);
    auto solver = GetParam().make(*s.planner);
    const double t0 = s.runtime->current_time();
    solver->step();
    const double t1 = s.runtime->current_time();
    solver->step();
    const double t2 = s.runtime->current_time();
    EXPECT_GT(t1, t0);
    EXPECT_GT(t2, t1);
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SolverTest, ::testing::ValuesIn(solver_cases()),
                         [](const ::testing::TestParamInfo<SolverCase>& pinfo) {
                             return pinfo.param.name;
                         });

TEST(FusedKernels, ResidualHistoryIsBitwiseIdenticalToUnfused) {
    // axpy_dot / xpay_norm2 interleave the update with the reduction but
    // perform the same arithmetic on the same elements in the same order, so
    // fusing must not change a single bit of the convergence history.
    auto history = [](const SolverCase& sc, bool fused) {
        PlannerOptions popts;
        popts.fused_kernels = fused;
        SolveSetup s =
            make_setup(stencil::Kind::D2P5, 256, 4, sc.nonsymmetric, 11, popts);
        auto solver = sc.make(*s.planner);
        std::vector<double> res;
        for (int i = 0; i < 25; ++i) {
            solver->step();
            res.push_back(solver->get_convergence_measure().value);
        }
        return res;
    };
    for (const SolverCase& sc : solver_cases()) {
        if (sc.name != "cg" && sc.name != "bicgstab") continue; // the fused users
        const std::vector<double> unfused = history(sc, false);
        const std::vector<double> fused = history(sc, true);
        for (std::size_t i = 0; i < unfused.size(); ++i) {
            EXPECT_EQ(unfused[i], fused[i])
                << sc.name << " diverged at iteration " << i;
        }
    }
}

TEST(FusedKernels, PcgResidualHistoryIsBitwiseIdenticalToUnfused) {
    // Jacobi needs domain == range, so this builds its own square system.
    auto history = [](bool fused) {
        rt::Runtime runtime(sim::MachineDesc::lassen(2));
        const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 256);
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        auto A = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D));
        const rt::RegionId xr = runtime.create_region(D, "x");
        const rt::RegionId br = runtime.create_region(D, "b");
        const rt::FieldId xf = runtime.add_field<double>(xr, "v");
        const rt::FieldId bf = runtime.add_field<double>(br, "v");
        const auto b = stencil::random_rhs(n, 12);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
        PlannerOptions popts;
        popts.fused_kernels = fused;
        Planner<double> planner(runtime, popts);
        planner.add_sol_vector(xr, xf, Partition::equal(D, 4));
        planner.add_rhs_vector(br, bf, Partition::equal(D, 4));
        planner.add_operator(A, 0, 0);
        add_jacobi_preconditioner<double>(planner, {{A}});
        PcgSolver<double> pcg(planner);
        std::vector<double> res;
        for (int i = 0; i < 25; ++i) {
            pcg.step();
            res.push_back(pcg.get_convergence_measure().value);
        }
        return res;
    };
    const std::vector<double> unfused = history(false);
    const std::vector<double> fused = history(true);
    for (std::size_t i = 0; i < unfused.size(); ++i) {
        EXPECT_EQ(unfused[i], fused[i]) << "PCG diverged at iteration " << i;
    }
}

TEST(FusedKernels, FusedLaunchesAreCounted) {
    SolveSetup s = make_setup(stencil::Kind::D2P5, 256, 4, false, 13);
    CgSolver<double> cg(*s.planner);
    for (int i = 0; i < 3; ++i) cg.step();
    EXPECT_GT(s.runtime->metrics().counter_total("fused_kernel_launches"), 0.0);
}

TEST(CgSolver, RequiresSquareSystem) {
    rt::Runtime runtime(sim::MachineDesc::lassen(1));
    const IndexSpace D = IndexSpace::create(8, "D");
    const IndexSpace R = IndexSpace::create(12, "R");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(R, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf);
    planner.add_rhs_vector(br, bf);
    EXPECT_THROW(CgSolver<double> solver(planner), Error);
}

TEST(GmresSolver, RestartLengthValidated) {
    rt::Runtime runtime(sim::MachineDesc::lassen(1));
    const IndexSpace D = IndexSpace::create(8, "D");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf);
    planner.add_rhs_vector(br, bf);
    EXPECT_THROW(GmresSolver<double>(planner, 0), Error);
}

} // namespace
} // namespace kdr::core
