#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

struct MonitorSetup {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<Planner<double>> planner;

    MonitorSetup() {
        runtime = std::make_unique<rt::Runtime>(sim::MachineDesc::lassen(1));
        stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 256);
        const IndexSpace D = IndexSpace::create(spec.unknowns(), "D");
        const rt::RegionId xr = runtime->create_region(D, "x");
        const rt::RegionId br = runtime->create_region(D, "b");
        const rt::FieldId xf = runtime->add_field<double>(xr, "v");
        const rt::FieldId bf = runtime->add_field<double>(br, "v");
        const auto b = stencil::random_rhs(spec.unknowns(), 8);
        auto bd = runtime->field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
        planner = std::make_unique<Planner<double>>(*runtime);
        planner->add_sol_vector(xr, xf, Partition::equal(D, 2));
        planner->add_rhs_vector(br, bf, Partition::equal(D, 2));
        planner->add_operator(
            std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D)), 0, 0);
    }
};

TEST(SolverMonitor, RecordsOneSamplePerIteration) {
    MonitorSetup s;
    CgSolver<double> cg(*s.planner);
    SolverMonitor<double> mon(cg);
    for (int i = 0; i < 10; ++i) mon.step();
    ASSERT_EQ(mon.history().size(), 11u) << "initial sample + 10 steps";
    EXPECT_EQ(mon.history().front().iteration, 0);
    EXPECT_EQ(mon.history().back().iteration, 10);
    EXPECT_GT(mon.history().front().residual, mon.history().back().residual);
}

TEST(SolverMonitor, VirtualTimesAreMonotone) {
    MonitorSetup s;
    CgSolver<double> cg(*s.planner);
    SolverMonitor<double> mon(cg);
    for (int i = 0; i < 5; ++i) mon.step();
    for (std::size_t i = 1; i < mon.history().size(); ++i) {
        EXPECT_GE(mon.history()[i].virtual_time, mon.history()[i - 1].virtual_time);
    }
    EXPECT_GT(mon.history().back().virtual_time, 0.0);
}

TEST(SolverMonitor, IterationsToReduction) {
    MonitorSetup s;
    CgSolver<double> cg(*s.planner);
    SolverMonitor<double> mon(cg);
    for (int i = 0; i < 100; ++i) mon.step();
    const int k = mon.iterations_to_reduction(1e-3);
    ASSERT_GT(k, 0);
    EXPECT_LE(mon.history()[static_cast<std::size_t>(k)].residual,
              mon.history().front().residual * 1e-3);
    EXPECT_EQ(mon.iterations_to_reduction(1e-300), -1) << "unreached target";
    EXPECT_THROW((void)mon.iterations_to_reduction(2.0), Error);
}

TEST(SolverMonitor, AverageConvergenceRateBelowOne) {
    MonitorSetup s;
    CgSolver<double> cg(*s.planner);
    SolverMonitor<double> mon(cg);
    for (int i = 0; i < 50; ++i) mon.step();
    const double rate = mon.average_convergence_rate();
    EXPECT_GT(rate, 0.0);
    EXPECT_LT(rate, 1.0);
}

TEST(SolverMonitor, DelegatesInterface) {
    MonitorSetup s;
    CgSolver<double> cg(*s.planner);
    SolverMonitor<double> mon(cg);
    EXPECT_STREQ(mon.name(), "cg");
    const int iters = solve_to_tolerance<double>(mon, 1e-8, 1000);
    EXPECT_LT(iters, 1000);
    EXPECT_DOUBLE_EQ(mon.get_convergence_measure().value,
                     cg.get_convergence_measure().value);
}

/// Stands in for a solver handed an already-converged system (zero RHS with
/// a zero initial guess): the reported residual is exactly 0 from the start.
struct ConvergedSolver final : Solver<double> {
    void step() override {}
    [[nodiscard]] Scalar get_convergence_measure() const override { return {0.0, 0.0}; }
    [[nodiscard]] const char* name() const override { return "converged"; }
};

TEST(SolverMonitor, ZeroInitialResidualIsNotAnError) {
    ConvergedSolver inner;
    SolverMonitor<double> mon(inner);
    // Regression: both statistics used to divide by the initial residual and
    // abort; a converged start must report "done at iteration 0, no decay".
    EXPECT_EQ(mon.iterations_to_reduction(0.5), 0);
    EXPECT_EQ(mon.iterations_to_reduction(1e-12), 0);
    EXPECT_DOUBLE_EQ(mon.average_convergence_rate(), 0.0);
    EXPECT_THROW((void)mon.iterations_to_reduction(2.0), Error)
        << "factor validation still precedes the zero-residual early-out";
    mon.step();
    EXPECT_EQ(mon.iterations_to_reduction(0.5), 0);
    EXPECT_DOUBLE_EQ(mon.average_convergence_rate(), 0.0);
}

TEST(SolverMonitor, PrintHistoryEmitsRows) {
    MonitorSetup s;
    CgSolver<double> cg(*s.planner);
    SolverMonitor<double> mon(cg);
    for (int i = 0; i < 4; ++i) mon.step();
    std::ostringstream os;
    mon.print_history(os, 2);
    int lines = 0;
    std::string line;
    std::istringstream is(os.str());
    while (std::getline(is, line)) ++lines;
    EXPECT_EQ(lines, 3) << "iterations 0, 2, 4";
}

} // namespace
} // namespace kdr::core
