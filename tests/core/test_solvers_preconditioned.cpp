#include "core/solvers_preconditioned.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/preconditioners.hpp"
#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

/// Graded-diagonal SPD system where Jacobi genuinely matters.
struct PreconSetup {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<Planner<double>> planner;
    std::shared_ptr<CsrMatrix<double>> A;
    rt::RegionId xr{}, br{};
    rt::FieldId xf{}, bf{};
    static constexpr gidx kN = 128;

    explicit PreconSetup(bool add_jacobi = true) {
        sim::MachineDesc m = sim::MachineDesc::lassen(2);
        runtime = std::make_unique<rt::Runtime>(m);
        const IndexSpace D = IndexSpace::create(kN, "D");
        std::vector<Triplet<double>> ts;
        auto scale = [](gidx i) {
            return std::pow(10.0, 2.0 * static_cast<double>(i) / (kN - 1));
        };
        for (gidx i = 0; i < kN; ++i) {
            if (i > 0) ts.push_back({i, i - 1, -0.1 * std::sqrt(scale(i) * scale(i - 1))});
            ts.push_back({i, i, scale(i)});
            if (i < kN - 1) ts.push_back({i, i + 1, -0.1 * std::sqrt(scale(i) * scale(i + 1))});
        }
        A = std::make_shared<CsrMatrix<double>>(
            CsrMatrix<double>::from_triplets(D, D, std::move(ts)));
        xr = runtime->create_region(D, "x");
        br = runtime->create_region(D, "b");
        xf = runtime->add_field<double>(xr, "v");
        bf = runtime->add_field<double>(br, "v");
        const auto b = stencil::random_rhs(kN, 4);
        auto bd = runtime->field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
        planner = std::make_unique<Planner<double>>(*runtime);
        planner->add_sol_vector(xr, xf, Partition::equal(D, 2));
        planner->add_rhs_vector(br, bf, Partition::equal(D, 2));
        planner->add_operator(A, 0, 0);
        if (add_jacobi) add_jacobi_preconditioner<double>(*planner, {{A}});
    }

    double true_residual() {
        auto x = runtime->field_data<double>(xr, xf);
        auto b = runtime->field_data<double>(br, bf);
        std::vector<double> ax(static_cast<std::size_t>(kN), 0.0);
        A->multiply_add(std::vector<double>(x.begin(), x.end()), ax);
        double s = 0.0;
        for (std::size_t i = 0; i < ax.size(); ++i) {
            const double d = b[i] - ax[i];
            s += d * d;
        }
        return std::sqrt(s);
    }
};

TEST(FGmres, ConvergesWithJacobi) {
    PreconSetup s;
    FGmresSolver<double> fgmres(*s.planner, 10);
    const int iters = solve_to_tolerance(fgmres, 1e-8, 2000);
    EXPECT_LT(iters, 2000);
    EXPECT_LT(s.true_residual(), 1e-5);
}

TEST(FGmres, BeatsUnpreconditionedGmresHere) {
    PreconSetup pre;
    PreconSetup plain(false);
    FGmresSolver<double> fgmres(*pre.planner, 10);
    GmresSolver<double> gmres(*plain.planner, 10);
    const int f_iters = solve_to_tolerance(fgmres, 1e-8, 4000);
    const int g_iters = solve_to_tolerance(gmres, 1e-8, 4000);
    EXPECT_LT(f_iters, g_iters);
}

TEST(FGmres, ToleratesIterationVaryingPreconditioner) {
    // The "flexible" part: psolve that changes every call. Plain right-
    // preconditioned GMRES would lose the Arnoldi relation; FGMRES stores
    // Z explicitly and stays consistent.
    PreconSetup s(false);
    std::vector<double> diag(PreconSetup::kN, 0.0);
    s.A->add_diagonal(diag);
    int call = 0;
    s.planner->set_matrix_free_psolve([&, diag](VecId dst, VecId src) {
        // Alternate between exact Jacobi and damped Jacobi.
        const double damp = (call++ % 2 == 0) ? 1.0 : 0.5;
        s.planner->copy(dst, src);
        // elementwise scaling via scal is uniform; emulate variable scaling
        // through two half-steps: dst = damp * D^{-1} src, done on the host
        // via a uniform scal of a Jacobi-applied vector is not expressible,
        // so use the uniform damping on top of a true Jacobi matrix apply.
        // Build once: a DIA inverse-diagonal operator applied through a
        // second planner op would be overkill here; a damped copy suffices
        // to exercise the varying-psolve path.
        s.planner->scal(dst, make_scalar(damp * 0.1));
    });
    FGmresSolver<double> fgmres(*s.planner, 10);
    const int iters = solve_to_tolerance(fgmres, 1e-8, 4000);
    EXPECT_LT(iters, 4000);
    EXPECT_LT(s.true_residual(), 1e-5);
}

TEST(FGmres, RequiresPreconditionerAndSquare) {
    PreconSetup s(false);
    EXPECT_THROW(FGmresSolver<double> solver(*s.planner), Error);
}

TEST(PBiCgStab, ConvergesWithJacobi) {
    PreconSetup s;
    PBiCgStabSolver<double> solver(*s.planner);
    const int iters = solve_to_tolerance(solver, 1e-8, 2000);
    EXPECT_LT(iters, 2000);
    EXPECT_LT(s.true_residual(), 1e-5);
}

TEST(PBiCgStab, BeatsPlainBiCgStabHere) {
    PreconSetup pre;
    PreconSetup plain(false);
    PBiCgStabSolver<double> p(*pre.planner);
    BiCgStabSolver<double> u(*plain.planner);
    const int p_iters = solve_to_tolerance(p, 1e-8, 4000);
    const int u_iters = solve_to_tolerance(u, 1e-8, 4000);
    EXPECT_LT(p_iters, u_iters);
}

TEST(PBiCgStab, RequiresPreconditioner) {
    PreconSetup s(false);
    EXPECT_THROW(PBiCgStabSolver<double> solver(*s.planner), Error);
}

} // namespace
} // namespace kdr::core
