#include "core/solvers_extra.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string_view>

#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

/// See test_timing_mode.cpp: KDR_VALIDATE forces the full-analysis replay
/// path, so fast-path timing comparisons do not apply.
bool validation_forced() {
    const char* e = std::getenv("KDR_VALIDATE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

struct ExtraSetup {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<Planner<double>> planner;
    std::shared_ptr<CsrMatrix<double>> A;
    rt::RegionId xr{}, br{};
    rt::FieldId xf{}, bf{};
    gidx n = 0;

    explicit ExtraSetup(gidx target = 256, Color pieces = 4, std::uint64_t seed = 11) {
        sim::MachineDesc m = sim::MachineDesc::lassen(2);
        m.gpus_per_node = 2;
        runtime = std::make_unique<rt::Runtime>(m);
        stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, target);
        n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        A = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D));
        xr = runtime->create_region(D, "x");
        br = runtime->create_region(D, "b");
        xf = runtime->add_field<double>(xr, "v");
        bf = runtime->add_field<double>(br, "v");
        const auto b = stencil::random_rhs(n, seed);
        auto bd = runtime->field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
        planner = std::make_unique<Planner<double>>(*runtime);
        planner->add_sol_vector(xr, xf, Partition::equal(D, pieces));
        planner->add_rhs_vector(br, bf, Partition::equal(D, pieces));
        planner->add_operator(A, 0, 0);
    }

    double true_residual() {
        auto x = runtime->field_data<double>(xr, xf);
        auto b = runtime->field_data<double>(br, bf);
        std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
        A->multiply_add(std::vector<double>(x.begin(), x.end()), ax);
        double s = 0.0;
        for (std::size_t i = 0; i < ax.size(); ++i) {
            const double d = b[i] - ax[i];
            s += d * d;
        }
        return std::sqrt(s);
    }
};

TEST(CgsSolver, ConvergesOnPoisson) {
    ExtraSetup s;
    CgsSolver<double> cgs(*s.planner);
    const int iters = solve_to_tolerance(cgs, 1e-8, 1000);
    EXPECT_LT(iters, 1000);
    EXPECT_LT(s.true_residual(), 1e-6);
}

TEST(PipelinedCg, ConvergesOnPoisson) {
    ExtraSetup s;
    PipelinedCgSolver<double> pcg(*s.planner);
    const int iters = solve_to_tolerance(pcg, 1e-8, 2000);
    EXPECT_LT(iters, 2000);
    EXPECT_LT(s.true_residual(), 1e-6);
}

TEST(PipelinedCg, MatchesCgIterateCount) {
    // In exact arithmetic pipelined CG is CG; iteration counts agree closely.
    ExtraSetup s1, s2;
    CgSolver<double> cg(*s1.planner);
    PipelinedCgSolver<double> pipe(*s2.planner);
    const int cg_iters = solve_to_tolerance(cg, 1e-8, 2000);
    const int pipe_iters = solve_to_tolerance(pipe, 1e-8, 2000);
    EXPECT_NEAR(cg_iters, pipe_iters, 3);
}

TEST(PipelinedCg, HidesReductionLatencyAtSmallSizes) {
    if (validation_forced()) GTEST_SKIP() << "validation disables the trace fast path";
    // The structural point of pipelining: at latency-bound sizes, the two
    // reductions overlap the matvec, so virtual time per iteration drops
    // below standard CG on the same machine. Measure with exaggerated
    // collective latency to make the effect unambiguous.
    auto measure = [](bool pipelined) {
        sim::MachineDesc m = sim::MachineDesc::lassen(4);
        m.collective_hop_latency = 2.0e-5; // 10x: latency-dominated dots
        rt::Runtime runtime(m, rt::RuntimeOptions{.materialize = false});
        stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 14);
        const IndexSpace D = IndexSpace::create(spec.unknowns(), "D");
        const rt::RegionId xr = runtime.create_region(D, "x");
        const rt::RegionId br = runtime.create_region(D, "b");
        const rt::FieldId xf = runtime.add_field<double>(xr, "v");
        const rt::FieldId bf = runtime.add_field<double>(br, "v");
        // This test wraps iterations in its own trace below, so turn the
        // solvers' built-in loop tracing off.
        PlannerOptions popts;
        popts.trace_solver_loops = false;
        Planner<double> planner(runtime, popts);
        const Color pieces = 16;
        const stencil::CoPartition cp = stencil::co_partition(spec, D, D, pieces);
        planner.add_sol_vector(xr, xf, Partition::equal(D, pieces));
        planner.add_rhs_vector(br, bf, cp.rows);
        const IndexSpace K = IndexSpace::create(spec.total_nnz(), "K");
        std::vector<IntervalSet> kp;
        gidx cursor = 0;
        for (Color c = 0; c < pieces; ++c) {
            const gidx take =
                std::min(cp.nnz[static_cast<std::size_t>(c)], spec.total_nnz() - cursor);
            kp.emplace_back(cursor, cursor + take);
            cursor += take;
        }
        OperatorPlan plan;
        plan.kernel_pieces = Partition(K, std::move(kp));
        plan.domain_needs = cp.halo;
        plan.row_pieces = cp.rows;
        plan.nnz = cp.nnz;
        planner.add_operator(nullptr, 0, 0, std::move(plan));

        std::unique_ptr<Solver<double>> solver;
        if (pipelined) {
            solver = std::make_unique<PipelinedCgSolver<double>>(planner);
        } else {
            solver = std::make_unique<CgSolver<double>>(planner);
        }
        // Trace the iterations so the analysis pipeline is not the floor —
        // the point is the *reduction latency*, which pipelining hides.
        auto one = [&] {
            runtime.begin_trace(1);
            solver->step();
            runtime.end_trace();
        };
        for (int i = 0; i < 5; ++i) one();
        const double t0 = runtime.current_time();
        for (int i = 0; i < 10; ++i) one();
        return (runtime.current_time() - t0) / 10.0;
    };
    const double cg_time = measure(false);
    const double pipe_time = measure(true);
    EXPECT_LT(pipe_time, cg_time)
        << "pipelined CG must hide reduction latency behind the matvec";
}

TEST(TfqmrSolver, ConvergesOnPoisson) {
    ExtraSetup s;
    TfqmrSolver<double> tfqmr(*s.planner);
    const int iters = solve_to_tolerance(tfqmr, 1e-9, 2000);
    EXPECT_LT(iters, 2000);
    EXPECT_LT(s.true_residual(), 1e-6);
}

TEST(TfqmrSolver, ConvergesOnNonsymmetricSystem) {
    ExtraSetup s;
    // Make it nonsymmetric through a skew perturbation slot (aliases the
    // same component pair — contributions sum per eq. 8).
    const gidx n = s.n;
    std::vector<Triplet<double>> skew;
    for (gidx i = 0; i + 1 < n; ++i) {
        skew.push_back({i, i + 1, 0.2});
        skew.push_back({i + 1, i, -0.2});
    }
    auto S = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(s.A->domain(), s.A->range(), std::move(skew)));
    s.planner->add_operator(S, 0, 0);
    TfqmrSolver<double> tfqmr(*s.planner);
    const int iters = solve_to_tolerance(tfqmr, 1e-9, 3000);
    EXPECT_LT(iters, 3000);
    // True residual of the PERTURBED system.
    auto x = s.runtime->field_data<double>(s.xr, s.xf);
    auto b = s.runtime->field_data<double>(s.br, s.bf);
    std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
    const std::vector<double> xv(x.begin(), x.end());
    s.A->multiply_add(xv, ax);
    S->multiply_add(xv, ax);
    double r2 = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
        const double d = b[i] - ax[i];
        r2 += d * d;
    }
    EXPECT_LT(std::sqrt(r2), 1e-6);
}

TEST(TfqmrSolver, QuasiResidualDecreasesMonotonically) {
    // τ is nonincreasing by construction — the "smoothed" property that
    // distinguishes TFQMR from CGS.
    ExtraSetup s;
    TfqmrSolver<double> tfqmr(*s.planner);
    double prev = tfqmr.get_convergence_measure().value;
    for (int i = 0; i < 40; ++i) {
        tfqmr.step();
        const double cur = tfqmr.get_convergence_measure().value;
        EXPECT_LE(cur, prev * (1.0 + 1e-12)) << "iteration " << i;
        prev = cur;
    }
}

TEST(ChebyshevSolver, ConvergesWithTrueBounds) {
    ExtraSetup s;
    // 2-D Laplacian spectrum is inside (0, 8); use safe bounds.
    ChebyshevSolver<double> cheb(*s.planner, 0.01, 8.0);
    const int iters = solve_to_tolerance(cheb, 1e-8, 5000);
    EXPECT_LT(iters, 5000);
    EXPECT_LT(s.true_residual(), 1e-6);
}

TEST(ChebyshevSolver, NoDotsBetweenMeasurements) {
    ExtraSetup s;
    ChebyshevSolver<double> cheb(*s.planner, 0.01, 8.0, /*measure_every=*/10);
    const auto tasks_before = s.runtime->tasks_launched();
    for (int i = 0; i < 9; ++i) cheb.step();
    // 9 steps, no measurement: only axpy/scal/matmul tasks, no "dot".
    // Verify indirectly: a 10th step adds the measurement dot.
    const auto tasks_9 = s.runtime->tasks_launched() - tasks_before;
    cheb.step();
    const auto tasks_10 = s.runtime->tasks_launched() - tasks_before - tasks_9;
    EXPECT_GT(tasks_10, tasks_9 / 9) << "measurement step launches extra dot tasks";
}

TEST(ChebyshevSolver, RejectsBadBounds) {
    ExtraSetup s;
    EXPECT_THROW(ChebyshevSolver<double>(*s.planner, 0.0, 8.0), Error);
    EXPECT_THROW(ChebyshevSolver<double>(*s.planner, 8.0, 1.0), Error);
    EXPECT_THROW(ChebyshevSolver<double>(*s.planner, 0.1, 8.0, 0), Error);
}

TEST(RichardsonSolver, ConvergesWithSafeDamping) {
    ExtraSetup s;
    RichardsonSolver<double> rich(*s.planner, 0.2); // < 2/8
    const int iters = solve_to_tolerance(rich, 1e-6, 20000);
    EXPECT_LT(iters, 20000);
    EXPECT_LT(s.true_residual(), 1e-4);
}

TEST(RichardsonSolver, RejectsNonpositiveDamping) {
    ExtraSetup s;
    EXPECT_THROW(RichardsonSolver<double>(*s.planner, 0.0), Error);
}

TEST(EstimateLambdaMax, ApproachesSpectralRadius) {
    ExtraSetup s;
    const double est = estimate_lambda_max(*s.planner, 50);
    // 2-D 5pt Laplacian: λmax = 4(sin² + sin²) < 8, approaching 8 for large n.
    EXPECT_GT(est, 6.0);
    EXPECT_LT(est, 8.0 + 1e-9);
}

TEST(EstimateLambdaMax, FeedsChebyshev) {
    ExtraSetup s;
    const double lmax = estimate_lambda_max(*s.planner, 30);
    ChebyshevSolver<double> cheb(*s.planner, lmax / 200.0, lmax * 1.05);
    const int iters = solve_to_tolerance(cheb, 1e-8, 5000);
    EXPECT_LT(iters, 5000);
}

TEST(ExtraSolvers, AllExposeDropInInterface) {
    ExtraSetup s1, s2, s3, s4;
    std::vector<std::unique_ptr<Solver<double>>> solvers;
    solvers.push_back(std::make_unique<CgsSolver<double>>(*s1.planner));
    solvers.push_back(std::make_unique<PipelinedCgSolver<double>>(*s2.planner));
    solvers.push_back(std::make_unique<ChebyshevSolver<double>>(*s3.planner, 0.01, 8.0));
    solvers.push_back(std::make_unique<RichardsonSolver<double>>(*s4.planner, 0.2));
    for (auto& s : solvers) {
        const double before = s->get_convergence_measure().value;
        // CG-family residual 2-norms may oscillate over a step or two (only
        // the A-norm of the error is monotone); 25 steps must show progress.
        for (int i = 0; i < 25; ++i) s->step();
        EXPECT_LT(s->get_convergence_measure().value, before) << s->name();
    }
}

} // namespace
} // namespace kdr::core
