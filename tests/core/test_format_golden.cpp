/// Format differential golden suite (`ctest -L formats`): every catalog
/// format's description-derived implementation must reproduce the checked-in
/// reference residual history *bitwise* — and its legacy hand-written twin
/// must reproduce the same history, proving the derived engine and the
/// battle-tested classes are numerically interchangeable. Each format runs
/// all five golden solvers; the described arm additionally repeats under a
/// validating runtime (KDR_VALIDATE semantics: privilege-checked accessors,
/// shadow race detector, over-declaration lint) and must come out clean with
/// an unchanged history.
///
/// "coot" — the column-major COO that exists only as a level description —
/// has no legacy arm; its golden pin is what guards it instead.
/// Regenerate format_histories.inc with format_histories_gen after an
/// *intentional* numerical change.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "format_golden_setup.hpp"

namespace kdr::core::format_golden {
namespace {

struct GoldenEntry {
    const char* format;
    const char* solver;
    std::vector<double> history;
};

const std::vector<GoldenEntry>& golden_histories() {
    static const std::vector<GoldenEntry> entries = {
#include "format_histories.inc"
    };
    return entries;
}

const GoldenEntry* find_golden(const std::string& format, const std::string& solver) {
    for (const GoldenEntry& e : golden_histories()) {
        if (format == e.format && solver == e.solver) return &e;
    }
    return nullptr;
}

rt::RuntimeOptions validating_options() {
    rt::RuntimeOptions o;
    o.validate_warn_only = true;
    return o;
}

void expect_clean(rt::Runtime& runtime, const std::string& what) {
    ASSERT_TRUE(runtime.validating());
    const rt::Validator& v = *runtime.validator();
    std::ostringstream diag;
    for (const std::string& w : v.warnings()) diag << "  " << w << "\n";
    EXPECT_EQ(v.violations(), 0u) << what << " privilege violations:\n" << diag.str();
    EXPECT_EQ(v.race_pairs(), 0u) << what << " races:\n" << diag.str();
    EXPECT_EQ(v.overdeclared(), 0u) << what << " over-declarations:\n" << diag.str();
    EXPECT_GT(v.tasks_checked(), 0u) << what << ": validation never saw a task body";
}

void expect_bitwise(const std::vector<double>& got, const std::vector<double>& want,
                    const std::string& what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    ASSERT_FALSE(got.empty()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], want[i]) << what << " diverged at iteration " << i << ": got "
                                   << std::hexfloat << got[i] << ", want " << want[i];
    }
}

class FormatGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(FormatGolden, DescribedMatchesGoldenAndLegacyTwin) {
    const std::string format = GetParam();
    const bool has_twin = std::find(twinned_formats().begin(), twinned_formats().end(),
                                    format) != twinned_formats().end();
    for (const std::string& solver : solver_names()) {
        SCOPED_TRACE(format + "/" + solver);
        const GoldenEntry* golden = find_golden(format, solver);
        ASSERT_NE(golden, nullptr)
            << "no golden history for " << format << "/" << solver
            << "; regenerate format_histories.inc";
        ASSERT_EQ(golden->history.size(), static_cast<std::size_t>(kIters));

        const std::vector<double> described = run_history(format, /*described=*/true, solver);
        expect_bitwise(described, golden->history, "described " + format);

        if (has_twin) {
            const std::vector<double> legacy =
                run_history(format, /*described=*/false, solver);
            expect_bitwise(legacy, golden->history, "legacy " + format);
        }
    }
}

TEST_P(FormatGolden, DescribedIsBitwiseStableAndCleanUnderValidation) {
    const std::string format = GetParam();
    // CG and GMRES(10) exercise forward and (via the solver internals)
    // normalization-heavy paths; running all five under validation would
    // triple the suite's cost for no extra kernel coverage.
    for (const std::string& solver : {std::string("cg"), std::string("gmres10")}) {
        SCOPED_TRACE(format + "/" + solver);
        const GoldenEntry* golden = find_golden(format, solver);
        ASSERT_NE(golden, nullptr);
        rt::Runtime vrt(sim::MachineDesc::lassen(2), validating_options());
        const std::vector<double> h = run_history(vrt, format, /*described=*/true, solver);
        expect_clean(vrt, format + "/" + solver);
        expect_bitwise(h, golden->history, "validated described " + format);
    }
}

INSTANTIATE_TEST_SUITE_P(Catalog, FormatGolden, ::testing::ValuesIn(all_formats()),
                         [](const ::testing::TestParamInfo<std::string>& pi) {
                             return pi.param;
                         });

} // namespace
} // namespace kdr::core::format_golden
