/// Golden residual-history regression suite: for each reference solver the
/// first 20 convergence measures on a fixed Poisson system must match the
/// checked-in histories *bitwise*, under all four {trace, fused} planner
/// configurations. This pins three invariants at once:
///
///  * solver arithmetic is stable across refactors (no silent reordering);
///  * tracing is a pure scheduling optimization — identical numerics;
///  * fused reduction kernels produce bit-identical reductions;
///
/// and, since the breakdown-guard layer landed with this suite, that guards
/// never perturb a healthy solve. Regenerate golden_histories.inc with the
/// golden_histories_gen tool after an *intentional* numerical change.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "golden_setup.hpp"

namespace kdr::core::golden {
namespace {

struct GoldenEntry {
    const char* solver;
    std::vector<double> history;
};

const std::vector<GoldenEntry>& golden_histories() {
    static const std::vector<GoldenEntry> entries = {
#include "golden_histories.inc"
    };
    return entries;
}

struct Config {
    bool trace;
    bool fused;
};

std::string config_name(Config c) {
    return std::string("trace_") + (c.trace ? "on" : "off") + "_fused_" +
           (c.fused ? "on" : "off");
}

class GoldenHistory : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenHistory, BitwiseStableAcrossConfigs) {
    const std::string solver = GetParam();
    const GoldenEntry* golden = nullptr;
    for (const GoldenEntry& e : golden_histories()) {
        if (solver == e.solver) golden = &e;
    }
    ASSERT_NE(golden, nullptr) << "no golden history for " << solver
                               << "; regenerate golden_histories.inc";
    ASSERT_EQ(golden->history.size(), static_cast<std::size_t>(kGoldenIters));

    for (const Config c : {Config{false, false}, Config{false, true}, Config{true, false},
                           Config{true, true}}) {
        SCOPED_TRACE(config_name(c));
        const std::vector<double> h = run_history(solver, c.trace, c.fused);
        ASSERT_EQ(h.size(), golden->history.size());
        for (std::size_t i = 0; i < h.size(); ++i) {
            // Bitwise: EXPECT_EQ on doubles is exact equality, and the
            // hexfloat message pinpoints the first diverging ulp.
            EXPECT_EQ(h[i], golden->history[i])
                << "iteration " << i << ": got " << std::hexfloat << h[i] << ", golden "
                << golden->history[i];
        }
    }
}

TEST_P(GoldenHistory, ZeroRateFaultModelLeavesHistoryUntouched) {
    // ISSUE acceptance: fault rate 0 => golden histories bitwise unchanged.
    // run_history attaches no model; FaultFuzz.ZeroRateModelIsBitwiseNoOp
    // covers the attached-but-inactive case. Here we pin the golden data
    // itself: histories must be finite and strictly meaningful (no zeros
    // from phantom scalars).
    const std::string solver = GetParam();
    const std::vector<double> h = run_history(solver, false, false);
    for (double r : h) {
        EXPECT_TRUE(std::isfinite(r));
        EXPECT_GT(r, 0.0);
    }
}

TEST(GoldenRecovery, RecoveredSolveHistoryBitwiseStableAcrossConfigs) {
    const GoldenEntry* golden = nullptr;
    for (const GoldenEntry& e : golden_histories()) {
        if (std::string("recovery") == e.solver) golden = &e;
    }
    ASSERT_NE(golden, nullptr)
        << "no golden recovery history; regenerate golden_histories.inc";
    ASSERT_FALSE(golden->history.empty());

    for (const Config c : {Config{false, false}, Config{false, true}, Config{true, false},
                           Config{true, true}}) {
        SCOPED_TRACE(config_name(c));
        const std::vector<double> h = run_recovery_history(c.trace, c.fused);
        ASSERT_EQ(h.size(), golden->history.size());
        for (std::size_t i = 0; i < h.size(); ++i) {
            EXPECT_EQ(h[i], golden->history[i])
                << "sample " << i << ": got " << std::hexfloat << h[i] << ", golden "
                << golden->history[i];
        }
    }
}

TEST(GoldenRecovery, PostRestoreSampleEqualsInitialResidual) {
    // The phantom-sample regression: after the restore the history must jump
    // back to the restored iterate's residual — here the initial residual,
    // since the checkpoint never advanced — not repeat the failed attempt's
    // last pre-restore value.
    const std::vector<double> h = run_recovery_history(false, false);
    ASSERT_GE(h.size(), 6u);
    // CG records: initial sample, then one per step until stagnation; the
    // recovery sample follows and must be bitwise the initial residual.
    const double r0 = h.front();
    bool found = false;
    for (std::size_t i = 1; i < h.size() && !found; ++i) {
        found = h[i] == r0;
    }
    EXPECT_TRUE(found) << "no history sample returns to the restored residual";
}

INSTANTIATE_TEST_SUITE_P(Solvers, GoldenHistory, ::testing::ValuesIn(solver_names()),
                         [](const ::testing::TestParamInfo<std::string>& pi) {
                             return pi.param;
                         });

} // namespace
} // namespace kdr::core::golden
