/// Randomized property tests for multi-operator systems: arbitrary component
/// structures, random formats per block, random aliasing and piece counts —
/// matmul through the planner must always equal the assembled reference
/// product, and matmul_transpose its adjoint. This is the semantic core of
/// §4 (eq. 8) exercised far beyond the hand-written cases.

#include <gtest/gtest.h>

#include <memory>

#include "core/planner.hpp"
#include "sparse/convert.hpp"
#include "support/rng.hpp"

namespace kdr::core {
namespace {

std::shared_ptr<LinearOperator<double>> random_operator(const IndexSpace& D,
                                                        const IndexSpace& R, Rng& rng) {
    std::vector<Triplet<double>> ts;
    const gidx entries = 1 + static_cast<gidx>(rng.uniform_index(
                                 static_cast<std::uint64_t>(2 * D.size())));
    for (gidx k = 0; k < entries; ++k) {
        ts.push_back({static_cast<gidx>(rng.uniform_index(static_cast<std::uint64_t>(R.size()))),
                      static_cast<gidx>(rng.uniform_index(static_cast<std::uint64_t>(D.size()))),
                      rng.uniform(-2.0, 2.0)});
    }
    switch (rng.uniform_index(4)) {
        case 0:
            return std::make_shared<CsrMatrix<double>>(
                CsrMatrix<double>::from_triplets(D, R, std::move(ts)));
        case 1:
            return std::make_shared<CooMatrix<double>>(
                CooMatrix<double>::from_triplets(D, R, ts));
        case 2:
            return std::make_shared<CscMatrix<double>>(
                CscMatrix<double>::from_triplets(D, R, std::move(ts)));
        default:
            return std::make_shared<EllMatrix<double>>(
                EllMatrix<double>::from_triplets(D, R, std::move(ts)));
    }
}

class MultiOpFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiOpFuzz, MatmulEqualsAssembledReference) {
    Rng rng(GetParam());
    sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    machine.gpus_per_node = 2;
    rt::Runtime runtime(machine);

    // Random component structure: 1-3 sol components, 1-3 rhs components.
    const std::size_t nsol = 1 + rng.uniform_index(3);
    const std::size_t nrhs = 1 + rng.uniform_index(3);
    std::vector<IndexSpace> dspaces, rspaces;
    std::vector<rt::RegionId> xregions, bregions;
    std::vector<rt::FieldId> xfields, bfields;
    Planner<double> planner(runtime);

    for (std::size_t i = 0; i < nsol; ++i) {
        const gidx size = 4 + static_cast<gidx>(rng.uniform_index(20));
        dspaces.push_back(IndexSpace::create(size, "D" + std::to_string(i)));
        xregions.push_back(runtime.create_region(dspaces.back(), "x" + std::to_string(i)));
        xfields.push_back(runtime.add_field<double>(xregions.back(), "v"));
        const Color pieces = 1 + static_cast<Color>(rng.uniform_index(3));
        planner.add_sol_vector(xregions.back(), xfields.back(),
                               Partition::equal(dspaces.back(), pieces));
    }
    for (std::size_t j = 0; j < nrhs; ++j) {
        const gidx size = 4 + static_cast<gidx>(rng.uniform_index(20));
        rspaces.push_back(IndexSpace::create(size, "R" + std::to_string(j)));
        bregions.push_back(runtime.create_region(rspaces.back(), "b" + std::to_string(j)));
        bfields.push_back(runtime.add_field<double>(bregions.back(), "v"));
        const Color pieces = 1 + static_cast<Color>(rng.uniform_index(3));
        planner.add_rhs_vector(bregions.back(), bfields.back(),
                               Partition::equal(rspaces.back(), pieces));
    }

    // Random operators: 1-6 slots, pairs chosen at random, possibly several
    // on the same (i, j) pair (aliasing), random formats.
    const std::size_t nops = 1 + rng.uniform_index(6);
    std::vector<std::shared_ptr<LinearOperator<double>>> ops;
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t k = 0; k < nops; ++k) {
        const std::size_t i = rng.uniform_index(nsol);
        const std::size_t j = rng.uniform_index(nrhs);
        auto op = random_operator(dspaces[i], rspaces[j], rng);
        planner.add_operator(op, i, j);
        ops.push_back(std::move(op));
        pairs.emplace_back(i, j);
    }

    // Random x; run matmul through the planner.
    std::vector<std::vector<double>> x(nsol);
    for (std::size_t i = 0; i < nsol; ++i) {
        x[i].resize(static_cast<std::size_t>(dspaces[i].size()));
        for (double& v : x[i]) v = rng.uniform(-1.0, 1.0);
        auto data = runtime.field_data<double>(xregions[i], xfields[i]);
        std::copy(x[i].begin(), x[i].end(), data.begin());
    }
    const VecId y = planner.allocate_workspace_vector(VecKind::RHS);
    planner.matmul(y, Planner<double>::SOL);

    // Reference: eq. (8) — sum of per-slot products per rhs component.
    for (std::size_t j = 0; j < nrhs; ++j) {
        std::vector<double> expect(static_cast<std::size_t>(rspaces[j].size()), 0.0);
        for (std::size_t k = 0; k < nops; ++k) {
            if (pairs[k].second != j) continue;
            ops[k]->multiply_add(x[pairs[k].first], expect);
        }
        auto got = runtime.field_data<double>(bregions[j], planner.vector_field(y, j));
        for (std::size_t e = 0; e < expect.size(); ++e) {
            EXPECT_NEAR(got[e], expect[e], 1e-10)
                << "seed " << GetParam() << " comp " << j << " elem " << e;
        }
    }

    // Adjoint: matmul_transpose must be the exact transpose of the above.
    std::vector<std::vector<double>> w(nrhs);
    for (std::size_t j = 0; j < nrhs; ++j) {
        w[j].resize(static_cast<std::size_t>(rspaces[j].size()));
        for (double& v : w[j]) v = rng.uniform(-1.0, 1.0);
        auto data = runtime.field_data<double>(bregions[j], bfields[j]);
        std::copy(w[j].begin(), w[j].end(), data.begin());
    }
    const VecId z = planner.allocate_workspace_vector(VecKind::SOL);
    planner.matmul_transpose(z, Planner<double>::RHS);
    for (std::size_t i = 0; i < nsol; ++i) {
        std::vector<double> expect(static_cast<std::size_t>(dspaces[i].size()), 0.0);
        for (std::size_t k = 0; k < nops; ++k) {
            if (pairs[k].first != i) continue;
            ops[k]->multiply_add_transpose(w[pairs[k].second], expect);
        }
        auto got = runtime.field_data<double>(xregions[i], planner.vector_field(z, i));
        for (std::size_t e = 0; e < expect.size(); ++e) {
            EXPECT_NEAR(got[e], expect[e], 1e-10)
                << "transpose, seed " << GetParam() << " comp " << i << " elem " << e;
        }
    }

    // Adjoint identity: <y, w> == <x, A^T w> with y = A x.
    double lhs = 0.0;
    for (std::size_t j = 0; j < nrhs; ++j) {
        auto yv = runtime.field_data<double>(bregions[j], planner.vector_field(y, j));
        for (std::size_t e = 0; e < w[j].size(); ++e) lhs += yv[e] * w[j][e];
    }
    double rhs = 0.0;
    for (std::size_t i = 0; i < nsol; ++i) {
        auto zv = runtime.field_data<double>(xregions[i], planner.vector_field(z, i));
        for (std::size_t e = 0; e < x[i].size(); ++e) rhs += x[i][e] * zv[e];
    }
    EXPECT_NEAR(lhs, rhs, 1e-8 + 1e-8 * std::abs(lhs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiOpFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 77u,
                                           1234u));

} // namespace
} // namespace kdr::core
