/// Timing-mode gate for the matrix-free arm: at scale (2^33 unknowns, 16
/// Lassen nodes, 64 pieces) the matrix-free SpMV phase must beat the
/// materialized CSR arm by ≥2× for all four stencils, and whole CG
/// iterations must beat CSR by ≥2× wherever the roofline permits it.
///
/// Amdahl bound (DESIGN.md "Matrix-Free Operators"): a CG iteration moves
/// ~88 B/element of vector traffic regardless of the operator arm, while the
/// SpMV drops from (24·points + 24) to 24 B/row — a per-iteration ceiling of
/// (24p + 112)/112, about 1.64× for D1P3 even with a *free* SpMV phase. The
/// 3-D kinds additionally pay a plane-sized halo exchange (~n^(2/3) per
/// piece, identical in both arms) that dilutes the ratio at small n; the
/// gate runs at 2^33 where the O(n) SpMV stream dominates it. Floors: ≥2×
/// for the 3-D stencils, ≥1.8× for D2P5 (ceiling 2.07×), ≥1.4× for D1P3.

#include <gtest/gtest.h>

#include <iostream>
#include <string>
#include <vector>

#include "harness.hpp"

namespace kdr::core {
namespace {

constexpr gidx kTarget = gidx{1} << 33;
constexpr int kNodes = 16;

const std::vector<stencil::Kind>& kinds() {
    static const std::vector<stencil::Kind> k = {
        stencil::Kind::D1P3, stencil::Kind::D2P5, stencil::Kind::D3P7,
        stencil::Kind::D3P27};
    return k;
}

/// Average virtual seconds of one matmul across the piece set (untraced,
/// 5 warmup + `timed` measured launches) — the SpMV-phase clock.
double spmv_phase(stencil::Kind kind, bench::OperatorArm arm) {
    const sim::MachineDesc machine = sim::MachineDesc::lassen(kNodes);
    const stencil::Spec spec = stencil::Spec::cube(kind, kTarget);
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), bench::TraceMode::None,
        core::PlannerOptions{}, /*profile=*/false, arm);
    using P = core::Planner<double>;
    for (int i = 0; i < 5; ++i) sys.planner->matmul(P::RHS, P::SOL);
    const double t0 = sys.runtime->current_time();
    constexpr int kTimed = 15;
    for (int i = 0; i < kTimed; ++i) sys.planner->matmul(P::RHS, P::SOL);
    return (sys.runtime->current_time() - t0) / kTimed;
}

/// Steady-state virtual seconds per traced CG iteration.
double cg_per_iteration(stencil::Kind kind, bench::OperatorArm arm) {
    const sim::MachineDesc machine = sim::MachineDesc::lassen(kNodes);
    const stencil::Spec spec = stencil::Spec::cube(kind, kTarget);
    bench::LegionStencilSystem sys = bench::make_legion_stencil(
        spec, machine, static_cast<Color>(machine.total_gpus()), bench::TraceMode::Fast,
        core::PlannerOptions{}, /*profile=*/false, arm);
    auto solver = bench::make_solver("cg", *sys.planner);
    return bench::measure_per_iteration(*sys.runtime, *solver, /*warmup=*/7,
                                        /*timed=*/10);
}

TEST(MatfreeTiming, SpmvPhaseAtLeastTwiceCsrForAllStencils) {
    for (const stencil::Kind kind : kinds()) {
        const double csr = spmv_phase(kind, bench::OperatorArm::Csr);
        const double mf = spmv_phase(kind, bench::OperatorArm::MatFree);
        ASSERT_GT(mf, 0.0);
        const double ratio = csr / mf;
        std::cout << "[spmv-phase] " << stencil::kind_name(kind) << ": csr " << csr * 1e6
                  << " us, matfree " << mf * 1e6 << " us, " << ratio << "x\n";
        EXPECT_GE(ratio, 2.0) << stencil::kind_name(kind) << ": csr " << csr * 1e6
                              << " us vs matfree " << mf * 1e6 << " us per SpMV";
    }
}

TEST(MatfreeTiming, CgIterationSpeedupMeetsRooflineGates) {
    // Per-iteration floors: the 3-D stencils must clear 2×; D2P5's vector-
    // traffic ceiling is 2.07× (gate 1.8×) and D1P3's is 1.64× (gate 1.4×).
    for (const stencil::Kind kind : kinds()) {
        double floor = 2.0;
        if (kind == stencil::Kind::D2P5) floor = 1.8;
        if (kind == stencil::Kind::D1P3) floor = 1.4;
        const double csr = cg_per_iteration(kind, bench::OperatorArm::Csr);
        const double mf = cg_per_iteration(kind, bench::OperatorArm::MatFree);
        ASSERT_GT(mf, 0.0);
        const double ratio = csr / mf;
        std::cout << "[cg-per-it] " << stencil::kind_name(kind) << ": csr " << csr * 1e6
                  << " us/it, matfree " << mf * 1e6 << " us/it, " << ratio << "x\n";
        EXPECT_GE(ratio, floor)
            << stencil::kind_name(kind) << ": csr " << csr * 1e6 << " us/it vs matfree "
            << mf * 1e6 << " us/it (" << ratio << "x)";
    }
}

TEST(MatfreeTiming, SellArmSitsBetweenCsrAndMatfree) {
    // SELL-C-σ trims the rowptr stream but still moves matrix bytes (padded
    // to full stencil width): faster than CSR, slower than matrix-free.
    const double csr = spmv_phase(stencil::Kind::D3P7, bench::OperatorArm::Csr);
    const double sell = spmv_phase(stencil::Kind::D3P7, bench::OperatorArm::Sell);
    const double mf = spmv_phase(stencil::Kind::D3P7, bench::OperatorArm::MatFree);
    EXPECT_LT(sell, csr);
    EXPECT_LT(mf, sell);
}

} // namespace
} // namespace kdr::core
