/// Communication-avoiding solver layer (ctest -L ca):
///
///  * s = 1 degeneracy: CA-CG and CA-GMRES with a one-column block are
///    *bitwise* twins of classic CG / GMRES across the whole {trace, fused}
///    grid — same launches, same reductions, same doubles;
///  * s >= 2 convergence for both basis flavors (monomial and Newton);
///  * the sync-reduction claim itself, measured on the "global_syncs"
///    counter: CA-CG(s) completes >= 3x (in fact s·2x) fewer global
///    reductions per iteration than classic CG;
///  * the batched planner primitives (dot_batch / gram_batch /
///    block_update) against their scalar-op references;
///  * allreduce completion semantics: blocking vs nonblocking is
///    timing-only — histories bitwise identical, non-overlapped wait larger
///    under blocking;
///  * option-surface validation for -ca_s / -ca_basis / -allreduce;
///  * recovery integration: checkpoint cadence counts *iterations*, so with
///    an s-step primary every checkpoint lands on an s-block boundary, and
///    randomized fault schedules always terminate classified.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/recovery.hpp"
#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "core/solvers_ca.hpp"
#include "golden_setup.hpp"
#include "simcluster/fault_model.hpp"
#include "stencil/stencil.hpp"
#include "support/rng.hpp"

namespace kdr::core {
namespace {

// ---------------------------------------------------------------------------
// s = 1 bitwise degeneracy.

void expect_bitwise(const std::vector<double>& a, const std::vector<double>& b,
                    const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << what << " diverged at sample " << i;
    }
}

TEST(CaSolvers, S1CaCgBitwiseMatchesClassicCg) {
    for (const bool trace : {false, true}) {
        for (const bool fused : {false, true}) {
            const std::string arm =
                "trace=" + std::to_string(trace) + " fused=" + std::to_string(fused);
            const std::vector<double> classic = golden::run_history("cg", trace, fused);
            for (const char* spec : {"ca_cg/1", "ca_cg/1/newton"}) {
                expect_bitwise(classic, golden::run_history(spec, trace, fused),
                               std::string(spec) + " vs cg, " + arm);
            }
        }
    }
}

TEST(CaSolvers, S1CaGmresBitwiseMatchesClassicGmres) {
    for (const bool trace : {false, true}) {
        for (const bool fused : {false, true}) {
            const std::string arm =
                "trace=" + std::to_string(trace) + " fused=" + std::to_string(fused);
            const std::vector<double> classic =
                golden::run_history("gmres10", trace, fused);
            expect_bitwise(classic, golden::run_history("ca_gmres/10/1", trace, fused),
                           "ca_gmres/10/1 vs gmres10, " + arm);
        }
    }
}

TEST(CaSolvers, S1BitwiseUnderValidation) {
    // The KDR_VALIDATE CI job reruns this: privilege-checked accessors and the
    // race detector see the s-block task graph, and the histories still match.
    for (const char* pair : {"cg", "gmres10"}) {
        const std::string classic = pair;
        const std::string ca = classic == "cg" ? "ca_cg/1" : "ca_gmres/10/1";
        rt::RuntimeOptions vopts;
        vopts.validate = true;
        rt::Runtime vrt(sim::MachineDesc::lassen(2), vopts);
        const std::vector<double> validated =
            golden::run_history_on(vrt, ca, /*trace=*/true, /*fused=*/true);
        expect_bitwise(golden::run_history(classic, true, true), validated,
                       ca + " under validation vs " + classic);
    }
}

// ---------------------------------------------------------------------------
// s >= 2: the block variants must still converge on the golden Poisson
// system, for both basis flavors.

TEST(CaSolvers, BlockVariantsConverge) {
    for (const char* spec : {"ca_cg/2", "ca_cg/4", "ca_cg/4/newton", "ca_cg/8/newton",
                             "ca_gmres/10/2", "ca_gmres/10/4/newton"}) {
        SCOPED_TRACE(spec);
        rt::Runtime runtime(sim::MachineDesc::lassen(2));
        golden::GoldenSystem sys = golden::build_system(runtime, PlannerOptions{});
        auto s = make_solver<double>(spec, *sys.planner);
        const double r0 = s->get_convergence_measure().value;
        ASSERT_TRUE(std::isfinite(r0));
        const SolveResult out = solve(*s, r0 * 1e-8, 2000);
        EXPECT_EQ(out.status, SolveStatus::converged) << to_string(out.status);
        EXPECT_LE(out.residual, r0 * 1e-8);
    }
}

// ---------------------------------------------------------------------------
// The tentpole claim, measured: global synchronizations per iteration.

double syncs_per_iteration(const std::string& spec, int steps) {
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    PlannerOptions popts;
    popts.trace_solver_loops = true;
    golden::GoldenSystem sys = golden::build_system(runtime, popts);
    auto s = make_solver<double>(spec, *sys.planner);
    const double before = runtime.metrics().counter_value("global_syncs");
    int iters = 0;
    for (int i = 0; i < steps; ++i) {
        s->step();
        iters += s->iterations_per_step();
    }
    const double after = runtime.metrics().counter_value("global_syncs");
    return (after - before) / iters;
}

TEST(CaSolvers, SyncReductionIsAtLeastThreeFold) {
    const double classic = syncs_per_iteration("cg", 16);
    EXPECT_DOUBLE_EQ(classic, 2.0); // one per dot: (r,r) and (p,Ap)
    for (const int s : {4, 8}) {
        const double ca = syncs_per_iteration("ca_cg/" + std::to_string(s), 4);
        EXPECT_GE(classic / ca, 3.0) << "s=" << s;
        // The design point: ONE fused Gram reduction per s-block.
        EXPECT_DOUBLE_EQ(ca, 1.0 / s) << "s=" << s;
    }
}

TEST(CaSolvers, AllreduceWaitIsAttributed) {
    // The report counters the bench gate reads must actually move.
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    golden::GoldenSystem sys = golden::build_system(runtime, PlannerOptions{});
    auto s = make_solver<double>("ca_cg/4", *sys.planner);
    for (int i = 0; i < 4; ++i) s->step();
    EXPECT_GT(runtime.metrics().counter_value("global_syncs"), 0.0);
    EXPECT_GT(runtime.metrics().counter_value("allreduce_wait_seconds"), 0.0);
}

// ---------------------------------------------------------------------------
// Batched planner primitives against their scalar references.

struct PrimitiveFixture {
    rt::Runtime runtime{sim::MachineDesc::lassen(1)};
    golden::GoldenSystem sys = golden::build_system(runtime, PlannerOptions{});
    Planner<double>& planner() { return *sys.planner; }
};

TEST(CaSolvers, DotBatchMatchesIndividualDots) {
    PrimitiveFixture f;
    Planner<double>& p = f.planner();
    const VecId r = p.allocate_workspace_vector();
    const VecId q = p.allocate_workspace_vector();
    p.copy(r, Planner<double>::RHS);
    p.matmul(q, r);
    const std::vector<Scalar> batch = p.dot_batch({{r, r}, {r, q}, {q, q}});
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].value, p.dot(r, r).value);
    EXPECT_EQ(batch[1].value, p.dot(r, q).value);
    EXPECT_EQ(batch[2].value, p.dot(q, q).value);
    // All three scalars completed at the one shared reduction's finish time.
    EXPECT_EQ(batch[0].ready_time, batch[1].ready_time);
    EXPECT_EQ(batch[1].ready_time, batch[2].ready_time);
}

TEST(CaSolvers, GramBatchMatchesDots) {
    PrimitiveFixture f;
    Planner<double>& p = f.planner();
    const VecId v0 = p.allocate_workspace_vector();
    const VecId v1 = p.allocate_workspace_vector();
    const VecId v2 = p.allocate_workspace_vector();
    p.copy(v0, Planner<double>::RHS);
    p.matmul(v1, v0);
    p.matmul(v2, v1);
    const std::vector<VecId> basis = {v0, v1, v2};
    const std::vector<std::pair<int, int>> pairs = {{0, 0}, {0, 1}, {1, 1},
                                                    {1, 2}, {2, 2}, {0, 2}};
    const std::vector<Scalar> gram = p.gram_batch(basis, pairs);
    ASSERT_EQ(gram.size(), pairs.size());
    for (std::size_t k = 0; k < pairs.size(); ++k) {
        const double ref =
            p.dot(basis[static_cast<std::size_t>(pairs[k].first)],
                  basis[static_cast<std::size_t>(pairs[k].second)])
                .value;
        // Same element order inside each piece, same cross-piece summation
        // order as dot(): the fused kernel is bitwise, not just close.
        EXPECT_EQ(gram[k].value, ref) << "pair " << k;
    }
}

TEST(CaSolvers, BlockUpdateMatchesAxpyChainAndAllowsAliasing) {
    PrimitiveFixture f;
    Planner<double>& p = f.planner();
    const VecId b0 = p.allocate_workspace_vector();
    const VecId b1 = p.allocate_workspace_vector();
    const VecId ref = p.allocate_workspace_vector();
    p.copy(b0, Planner<double>::RHS);
    p.matmul(b1, b0);
    // Reference: ref <- 2 b0 - 0.5 b1 via scalar ops.
    p.zero(ref);
    p.axpy(ref, Scalar{2.0, 0.0}, b0);
    p.axpy(ref, Scalar{-0.5, 0.0}, b1);
    const double want = p.dot(ref, ref).value;
    // Fused: out aliases a basis column (the CA-CG p/r rewrite pattern).
    p.block_update({b0, b1}, {b0}, {{Scalar{2.0, 0.0}, Scalar{-0.5, 0.0}}}, {false});
    EXPECT_EQ(p.dot(b0, b0).value, want);
}

// ---------------------------------------------------------------------------
// Allreduce completion semantics: timing-only.

TEST(CaSolvers, BlockingAllreduceIsBitwiseTimingOnly) {
    std::vector<double> hist[2];
    double wait[2] = {0.0, 0.0};
    for (int arm = 0; arm < 2; ++arm) {
        rt::Runtime runtime(sim::MachineDesc::lassen(2));
        PlannerOptions popts;
        popts.allreduce =
            arm == 0 ? sim::AllreduceMode::nonblocking : sim::AllreduceMode::blocking;
        hist[arm] = golden::run_history_opts(runtime, "ca_cg/4", popts, 8);
        wait[arm] = runtime.metrics().counter_value("allreduce_wait_seconds");
    }
    expect_bitwise(hist[0], hist[1], "nonblocking vs blocking allreduce");
    // Blocking stalls every subsequent task on the reduction; nonblocking
    // only the scalar's consumers. The non-overlapped wait must show it.
    EXPECT_GT(wait[1], wait[0]);
}

// ---------------------------------------------------------------------------
// Option-surface validation.

CliArgs make_args(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "prog");
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CaSolvers, OptionKnobsParseAndValidate) {
    const CommonOptions ok =
        CommonOptions::parse(make_args({"-ca_s", "8", "-ca_basis", "newton",
                                        "-allreduce", "blocking"}));
    EXPECT_EQ(ok.ca_s, 8);
    EXPECT_EQ(ok.ca_basis, "newton");
    EXPECT_EQ(ok.planner.allreduce, sim::AllreduceMode::blocking);
    const SolverParams params = SolverParams::from(ok);
    EXPECT_EQ(params.ca_s, 8);
    EXPECT_EQ(params.ca_basis, CaBasis::newton);

    EXPECT_THROW((void)CommonOptions::parse(make_args({"-ca_s", "0"})), Error);
    EXPECT_THROW((void)CommonOptions::parse(make_args({"-ca_s", "-4"})), Error);
    EXPECT_THROW((void)CommonOptions::parse(make_args({"-ca_s", "four"})), Error);
    EXPECT_THROW((void)CommonOptions::parse(make_args({"-ca_basis", "fourier"})), Error);
    EXPECT_THROW((void)CommonOptions::parse(make_args({"-allreduce", "eventual"})),
                 Error);
}

// ---------------------------------------------------------------------------
// Recovery integration: s-block checkpoint alignment + fault fuzz.

TEST(CaSolvers, CheckpointsLandOnBlockBoundaries) {
    // checkpoint_every = 6 with s = 4: the cadence counter advances 4 per
    // step, so checkpoints fire after 8, 16, 24, ... healthy iterations —
    // always on a block boundary, never mid-block.
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    golden::GoldenSystem sys = golden::build_system(runtime, PlannerOptions{});
    RecoveryOptions ropts;
    ropts.checkpoint_every = 6;
    const SolveOutcome out = solve_with_recovery<double>(
        *sys.planner, make_solver_factory<double>("ca_cg/4"), 1e-8, 400, ropts);
    EXPECT_EQ(out.status, SolveStatus::converged) << to_string(out.status);
    EXPECT_EQ(out.iterations % 4, 0) << "iteration budget must advance in s-blocks";
    // One initial checkpoint + one per ceil(6/4)=2 completed healthy steps.
    EXPECT_EQ(out.checkpoints, 1 + out.iterations / 8);
    // Every recorded sample sits on a block boundary too.
    for (const obs::ConvergenceSample& s : out.history) {
        EXPECT_EQ(s.iteration % 4, 0);
    }
}

TEST(CaSolvers, FaultFuzzTerminatesClassified) {
    // The CA arms of the fault-fuzz property: randomized schedules against
    // the s-step solvers (recovered and bare) always end classified, and the
    // recovered runs only ever advance in whole s-blocks.
    const std::vector<std::string> specs = {"ca_cg/2", "ca_cg/4", "ca_cg/4/newton",
                                            "ca_gmres/10/2", "ca_gmres/10/4/newton"};
    Rng rng(0xca5017e5ULL);
    int converged = 0;
    for (int round = 0; round < 60; ++round) {
        const std::size_t which = rng.uniform_index(specs.size());
        const std::string& spec = specs[which];
        constexpr int s_of[] = {2, 4, 4, 2, 4};
        const int s = s_of[which];
        const bool recover = rng.uniform() < 0.5;
        sim::FaultSpec fs;
        fs.seed = rng.next();
        fs.task_fail_prob = rng.uniform(0.0, 0.25);
        fs.slowdown_prob = rng.uniform(0.0, 0.2);
        SCOPED_TRACE("round " + std::to_string(round) + " " + spec +
                     " fail_prob=" + std::to_string(fs.task_fail_prob) +
                     (recover ? " recovered" : ""));
        SolveStatus status = SolveStatus::running;
        try {
            rt::RuntimeOptions o;
            o.max_task_retries = static_cast<int>(rng.uniform_int(0, 3));
            rt::Runtime runtime(sim::MachineDesc::lassen(2), o);
            PlannerOptions popts;
            popts.trace_solver_loops = rng.uniform() < 0.5;
            popts.fused_kernels = rng.uniform() < 0.5;
            golden::GoldenSystem sys = golden::build_system(runtime, popts);
            runtime.cluster().set_fault_model(std::make_shared<sim::FaultModel>(fs));
            SolveOptions sopts;
            sopts.stagnation_window = 40;
            if (recover) {
                RecoveryOptions ropts;
                ropts.solve = sopts;
                ropts.checkpoint_every = 10;
                const SolveOutcome out = solve_with_recovery<double>(
                    *sys.planner, make_solver_factory<double>(spec), 1e-8, 400, ropts,
                    make_solver_factory<double>("gmres/10"));
                status = out.status;
                // The classic-GMRES fallback advances one iteration per step;
                // until it engages, the budget moves in whole s-blocks only.
                if (out.fallbacks == 0) {
                    EXPECT_EQ(out.iterations % s, 0)
                        << "recovered CA budget must advance in s-blocks";
                }
            } else {
                auto solver = make_solver<double>(spec, *sys.planner);
                status = solve(*solver, 1e-8, 400, sopts).status;
            }
        } catch (const rt::TaskFailedError&) {
            status = SolveStatus::fault_aborted;
        }
        ASSERT_TRUE(is_terminal(status)) << to_string(status);
        if (status == SolveStatus::converged) ++converged;
    }
    // Mix sanity: the restarted ca_gmres/10 arms legitimately exhaust the
    // 400-iteration budget on this system, but healthy ca_cg schedules must
    // still mostly make it through.
    EXPECT_GT(converged, 4);
}

} // namespace
} // namespace kdr::core
