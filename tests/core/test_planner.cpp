/// Planner unit tests: Fig 5 setup API, Fig 6 operation API, numerics of
/// every vector operation, and the dependent-partitioning-derived operator
/// plans.

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace kdr::core {
namespace {

sim::MachineDesc quiet_machine(int nodes = 2, int gpus = 2) {
    sim::MachineDesc m = sim::MachineDesc::lassen(nodes);
    m.gpus_per_node = gpus;
    return m;
}

std::vector<Triplet<double>> tridiag(gidx n) {
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < n; ++i) {
        if (i > 0) ts.push_back({i, i - 1, -1.0});
        ts.push_back({i, i, 2.0});
        if (i < n - 1) ts.push_back({i, i + 1, -1.0});
    }
    return ts;
}

struct PlannerFixture : ::testing::Test {
    static constexpr gidx kN = 32;

    rt::Runtime runtime{quiet_machine()};
    IndexSpace space = IndexSpace::create(kN, "D");
    rt::RegionId xr = runtime.create_region(space, "x");
    rt::RegionId br = runtime.create_region(space, "b");
    rt::FieldId xf = runtime.add_field<double>(xr, "v");
    rt::FieldId bf = runtime.add_field<double>(br, "v");
    Planner<double> planner{runtime};

    void register_square(Color pieces = 4) {
        const Partition part = Partition::equal(space, pieces);
        planner.add_sol_vector(xr, xf, part);
        planner.add_rhs_vector(br, bf, part);
    }

    void set_x(const std::vector<double>& v) {
        auto d = runtime.field_data<double>(xr, xf);
        std::copy(v.begin(), v.end(), d.begin());
    }
    void set_b(const std::vector<double>& v) {
        auto d = runtime.field_data<double>(br, bf);
        std::copy(v.begin(), v.end(), d.begin());
    }
    std::vector<double> get(rt::RegionId r, rt::FieldId f) {
        auto d = runtime.field_data<double>(r, f);
        return {d.begin(), d.end()};
    }
};

TEST_F(PlannerFixture, SpacesInferredFromComponents) {
    register_square();
    EXPECT_TRUE(planner.is_square());
    EXPECT_FALSE(planner.has_preconditioner());
    EXPECT_EQ(planner.total_domain_size(), kN);
    EXPECT_EQ(planner.total_range_size(), kN);
    EXPECT_EQ(planner.sol_components(), 1u);
    EXPECT_EQ(planner.rhs_components(), 1u);
}

TEST_F(PlannerFixture, CanonicalPartitionMustBeCompleteAndDisjoint) {
    const Partition aliased(space, {IntervalSet(0, 20), IntervalSet(10, 32)});
    EXPECT_THROW(planner.add_sol_vector(xr, xf, aliased), Error);
    const Partition incomplete(space, {IntervalSet(0, 10)});
    EXPECT_THROW(planner.add_sol_vector(xr, xf, incomplete), Error);
}

TEST_F(PlannerFixture, CopyMovesValuesBetweenVectors) {
    register_square();
    std::vector<double> b(kN);
    for (gidx i = 0; i < kN; ++i) b[static_cast<std::size_t>(i)] = 0.5 * static_cast<double>(i);
    set_b(b);
    planner.copy(Planner<double>::SOL, Planner<double>::RHS);
    EXPECT_EQ(get(xr, xf), b);
}

TEST_F(PlannerFixture, AxpyXpayScalZeroSemantics) {
    register_square();
    std::vector<double> x(kN, 2.0);
    std::vector<double> b(kN, 3.0);
    set_x(x);
    set_b(b);
    planner.axpy(Planner<double>::SOL, make_scalar(2.0), Planner<double>::RHS);
    EXPECT_DOUBLE_EQ(get(xr, xf)[5], 8.0); // 2 + 2*3
    planner.xpay(Planner<double>::SOL, make_scalar(0.5), Planner<double>::RHS);
    EXPECT_DOUBLE_EQ(get(xr, xf)[5], 7.0); // 3 + 0.5*8
    planner.scal(Planner<double>::SOL, make_scalar(-1.0));
    EXPECT_DOUBLE_EQ(get(xr, xf)[5], -7.0);
    planner.zero(Planner<double>::SOL);
    EXPECT_DOUBLE_EQ(get(xr, xf)[5], 0.0);
}

TEST_F(PlannerFixture, DotComputesInnerProduct) {
    register_square();
    std::vector<double> x(kN);
    std::vector<double> b(kN);
    Rng rng(11);
    double expect = 0.0;
    for (gidx i = 0; i < kN; ++i) {
        x[static_cast<std::size_t>(i)] = rng.uniform(-1, 1);
        b[static_cast<std::size_t>(i)] = rng.uniform(-1, 1);
        expect += x[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    }
    set_x(x);
    set_b(b);
    const Scalar d = planner.dot(Planner<double>::SOL, Planner<double>::RHS);
    EXPECT_NEAR(d.value, expect, 1e-12);
    EXPECT_GT(d.ready_time, 0.0) << "dot carries the reduction's virtual time";
}

TEST_F(PlannerFixture, WorkspaceVectorsAreIndependent) {
    register_square();
    const VecId w1 = planner.allocate_workspace_vector();
    const VecId w2 = planner.allocate_workspace_vector();
    EXPECT_NE(w1, w2);
    std::vector<double> b(kN, 4.0);
    set_b(b);
    planner.copy(w1, Planner<double>::RHS);
    planner.zero(w2);
    const Scalar d11 = planner.dot(w1, w1);
    EXPECT_NEAR(d11.value, 16.0 * kN, 1e-9);
    const Scalar d12 = planner.dot(w1, w2);
    EXPECT_NEAR(d12.value, 0.0, 1e-12);
}

TEST_F(PlannerFixture, MatmulMatchesDirectMultiply) {
    register_square();
    auto A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(space, space, tridiag(kN)));
    planner.add_operator(A, 0, 0);

    std::vector<double> x(kN);
    Rng rng(3);
    for (double& v : x) v = rng.uniform(-1, 1);
    set_x(x);
    const VecId y = planner.allocate_workspace_vector(VecKind::RHS);
    planner.matmul(y, Planner<double>::SOL);

    std::vector<double> expect(kN, 0.0);
    A->multiply_add(x, expect);
    const auto got = get(br, planner.vector_field(y));
    for (gidx i = 0; i < kN; ++i)
        EXPECT_NEAR(got[static_cast<std::size_t>(i)], expect[static_cast<std::size_t>(i)],
                    1e-12);
}

TEST_F(PlannerFixture, MatmulTransposeMatchesDirect) {
    register_square();
    // Non-symmetric matrix so the transpose is distinguishable.
    auto ts = tridiag(kN);
    ts.push_back({0, kN - 1, 5.0});
    auto A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(space, space, std::move(ts)));
    planner.add_operator(A, 0, 0);

    std::vector<double> b(kN);
    Rng rng(5);
    for (double& v : b) v = rng.uniform(-1, 1);
    set_b(b);
    const VecId y = planner.allocate_workspace_vector();
    planner.matmul_transpose(y, Planner<double>::RHS);

    std::vector<double> expect(kN, 0.0);
    A->multiply_add_transpose(b, expect);
    const auto got = get(xr, planner.vector_field(y));
    for (gidx i = 0; i < kN; ++i)
        EXPECT_NEAR(got[static_cast<std::size_t>(i)], expect[static_cast<std::size_t>(i)],
                    1e-12);
}

TEST_F(PlannerFixture, OperatorSpaceMismatchRejected) {
    register_square();
    const IndexSpace other = IndexSpace::create(kN + 1, "other");
    auto A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(other, other, tridiag(kN + 1)));
    EXPECT_THROW(planner.add_operator(A, 0, 0), Error);
    EXPECT_THROW(planner.add_operator(nullptr, 0, 0), Error);
}

TEST_F(PlannerFixture, PsolveWithoutPreconditionerRejected) {
    register_square();
    const VecId w = planner.allocate_workspace_vector();
    EXPECT_THROW(planner.psolve(w, Planner<double>::RHS), Error);
}

TEST_F(PlannerFixture, MatrixPiecesAreCachedAcrossMatmuls) {
    register_square();
    auto A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(space, space, tridiag(kN)));
    planner.add_operator(A, 0, 0);
    const VecId y = planner.allocate_workspace_vector(VecKind::RHS);
    planner.matmul(y, Planner<double>::SOL);
    const double after_first = runtime.transfer_bytes();
    planner.matmul(y, Planner<double>::SOL);
    planner.matmul(y, Planner<double>::SOL);
    // Matrix pieces are homed with their tasks' nodes and x was not rewritten
    // between matmuls, so steady-state repeats move no bytes at all: matrix
    // pieces never move after startup, x halo pieces stay cached.
    EXPECT_DOUBLE_EQ(runtime.transfer_bytes(), after_first);
}

TEST(PlannerMultiComponent, TwoComponentsFormTotalSpaces) {
    rt::Runtime runtime(quiet_machine());
    const IndexSpace d1 = IndexSpace::create(8, "D1");
    const IndexSpace d2 = IndexSpace::create(12, "D2");
    const rt::RegionId r1 = runtime.create_region(d1, "x1");
    const rt::RegionId r2 = runtime.create_region(d2, "x2");
    const rt::FieldId f1 = runtime.add_field<double>(r1, "v");
    const rt::FieldId f2 = runtime.add_field<double>(r2, "v");
    Planner<double> planner(runtime);
    planner.add_sol_vector(r1, f1);
    planner.add_sol_vector(r2, f2);
    EXPECT_EQ(planner.total_domain_size(), 20);
    EXPECT_EQ(planner.sol_components(), 2u);
    EXPECT_FALSE(planner.is_square()) << "no rhs components yet";
}

} // namespace
} // namespace kdr::core
