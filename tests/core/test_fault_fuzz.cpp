/// Fault-fuzz property suite: randomized fault schedules against every
/// solver must always terminate with a *classified* SolveStatus — never a
/// silent NaN, an unbounded loop, or an escaped exception. Runs in
/// functional mode so sanitizers see real data paths.
///
/// Compile with KDR_LONG_FUZZ=1 for the extended nightly round count.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/preconditioners.hpp"
#include "core/recovery.hpp"
#include "core/solvers.hpp"
#include "core/solvers_extra.hpp"
#include "core/solvers_preconditioned.hpp"
#include "simcluster/fault_model.hpp"
#include "stencil/stencil.hpp"
#include "support/rng.hpp"

namespace kdr::core {
namespace {

#ifdef KDR_LONG_FUZZ
constexpr int kRounds = 2000;
#else
constexpr int kRounds = 220;
#endif

struct FuzzSystem {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<Planner<double>> planner;
    std::shared_ptr<CsrMatrix<double>> A;
};

FuzzSystem make_poisson(std::uint64_t rhs_seed, bool trace, bool fused,
                        int max_task_retries, bool preconditioned) {
    FuzzSystem s;
    rt::RuntimeOptions ropts;
    ropts.max_task_retries = max_task_retries;
    s.runtime = std::make_unique<rt::Runtime>(sim::MachineDesc::lassen(2), ropts);

    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = 8;
    spec.ny = 8;
    const gidx n = spec.unknowns();
    // Shared index space: required by the preconditioned cases (partition
    // projection through the operator relation).
    const IndexSpace D = IndexSpace::create(n, "D");
    const rt::RegionId xr = s.runtime->create_region(D, "x");
    const rt::RegionId br = s.runtime->create_region(D, "b");
    const rt::FieldId xf = s.runtime->add_field<double>(xr, "v");
    const rt::FieldId bf = s.runtime->add_field<double>(br, "v");
    {
        const auto b = stencil::random_rhs(n, rhs_seed);
        auto bd = s.runtime->field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }
    PlannerOptions popts;
    popts.trace_solver_loops = trace;
    popts.fused_kernels = fused;
    s.planner = std::make_unique<Planner<double>>(*s.runtime, popts);
    s.planner->add_sol_vector(xr, xf, Partition::equal(D, 4));
    s.planner->add_rhs_vector(br, bf, Partition::equal(D, 4));
    s.A = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D));
    s.planner->add_operator(s.A, 0, 0);
    if (preconditioned) {
        add_jacobi_preconditioner<double>(*s.planner, {{s.A}});
    }
    return s;
}

struct FuzzCase {
    std::string name;
    bool preconditioned;
    std::function<std::unique_ptr<Solver<double>>(Planner<double>&)> make;
};

std::vector<FuzzCase> fuzz_cases() {
    return {
        {"cg", false, [](Planner<double>& p) { return std::make_unique<CgSolver<double>>(p); }},
        {"pcg", true, [](Planner<double>& p) { return std::make_unique<PcgSolver<double>>(p); }},
        {"bicg", false, [](Planner<double>& p) { return std::make_unique<BiCgSolver<double>>(p); }},
        {"bicgstab", false,
         [](Planner<double>& p) { return std::make_unique<BiCgStabSolver<double>>(p); }},
        {"gmres", false,
         [](Planner<double>& p) { return std::make_unique<GmresSolver<double>>(p, 10); }},
        {"minres", false,
         [](Planner<double>& p) { return std::make_unique<MinresSolver<double>>(p); }},
        {"cgs", false, [](Planner<double>& p) { return std::make_unique<CgsSolver<double>>(p); }},
        {"pipecg", false,
         [](Planner<double>& p) { return std::make_unique<PipelinedCgSolver<double>>(p); }},
        {"tfqmr", false,
         [](Planner<double>& p) { return std::make_unique<TfqmrSolver<double>>(p); }},
        {"fgmres", true,
         [](Planner<double>& p) { return std::make_unique<FGmresSolver<double>>(p, 10); }},
        {"pbicgstab", true,
         [](Planner<double>& p) { return std::make_unique<PBiCgStabSolver<double>>(p); }},
    };
}

TEST(FaultFuzz, EveryScheduleTerminatesClassified) {
    const std::vector<FuzzCase> cases = fuzz_cases();
    Rng rng(0xfa17f422ULL);
    int converged = 0;
    int aborted = 0;
    int other = 0;
    for (int round = 0; round < kRounds; ++round) {
        const FuzzCase& c = cases[rng.uniform_index(cases.size())];
        const bool trace = rng.uniform() < 0.5;
        const bool fused = rng.uniform() < 0.5;
        const int retries = static_cast<int>(rng.uniform_int(0, 4));
        const bool recover = rng.uniform() < 0.3;

        sim::FaultSpec fs;
        fs.seed = rng.next();
        fs.task_fail_prob = rng.uniform(0.0, 0.4);
        fs.slowdown_prob = rng.uniform(0.0, 0.2);
        fs.nic_degrade_prob = rng.uniform(0.0, 0.2);
        fs.nic_drop_prob = rng.uniform(0.0, 0.2);

        SCOPED_TRACE("round " + std::to_string(round) + " solver=" + c.name +
                     " fail_prob=" + std::to_string(fs.task_fail_prob) +
                     " retries=" + std::to_string(retries) + (recover ? " recovered" : ""));

        SolveStatus status = SolveStatus::running;
        double residual = 0.0;
        try {
            FuzzSystem s =
                make_poisson(1000 + static_cast<std::uint64_t>(round), trace, fused,
                             retries, c.preconditioned);
            s.runtime->cluster().set_fault_model(std::make_shared<sim::FaultModel>(fs));
            SolveOptions sopts;
            sopts.stagnation_window = 40;
            if (recover) {
                RecoveryOptions ropts;
                ropts.solve = sopts;
                ropts.checkpoint_every = 10;
                const SolveOutcome out = solve_with_recovery<double>(
                    *s.planner, c.make, 1e-8, 400, ropts,
                    [](Planner<double>& p) {
                        return std::make_unique<GmresSolver<double>>(p, 10);
                    });
                status = out.status;
                residual = out.residual;
            } else {
                auto solver = c.make(*s.planner);
                const SolveResult out = solve(*solver, 1e-8, 400, sopts);
                status = out.status;
                residual = out.residual;
            }
        } catch (const rt::TaskFailedError&) {
            // Faults during solver *construction* (initial residual tasks)
            // are outside any driver; classifying them is the caller's job.
            status = SolveStatus::fault_aborted;
        }
        // Property 1: the run terminated with a classified, terminal status.
        ASSERT_TRUE(is_terminal(status)) << "status=" << to_string(status);
        // Property 2: convergence claims are backed by a finite residual.
        if (status == SolveStatus::converged) {
            ASSERT_TRUE(std::isfinite(residual));
            ASSERT_LE(residual, 1e-6);
            ++converged;
        } else if (status == SolveStatus::fault_aborted) {
            ++aborted;
        } else {
            ++other;
        }
    }
    // Sanity on the mix: healthy schedules must mostly converge.
    EXPECT_GT(converged, kRounds / 4)
        << "converged=" << converged << " aborted=" << aborted << " other=" << other;
}

TEST(FaultFuzz, ZeroRateModelIsBitwiseNoOp) {
    // Attaching an all-zero fault model must not perturb a single bit of the
    // convergence history (the model samples nothing).
    std::vector<double> baseline;
    std::vector<double> modeled;
    for (int variant = 0; variant < 2; ++variant) {
        FuzzSystem s = make_poisson(77, true, true, 3, false);
        if (variant == 1) {
            s.runtime->cluster().set_fault_model(
                std::make_shared<sim::FaultModel>(sim::FaultSpec{}));
        }
        CgSolver<double> cg(*s.planner);
        std::vector<double>& hist = variant == 0 ? baseline : modeled;
        for (int i = 0; i < 15; ++i) {
            cg.step();
            hist.push_back(cg.get_convergence_measure().value);
        }
    }
    ASSERT_EQ(baseline.size(), modeled.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(baseline[i], modeled[i]) << "iteration " << i;
    }
}

} // namespace
} // namespace kdr::core
