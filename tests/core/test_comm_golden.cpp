/// Exchange plans are a pure timing-layer mechanism: they change *when* halo
/// bytes move on the simulated network, never *which* values the kernels
/// compute. These tests pin that invariant — every solver's residual history
/// must be bitwise identical across the whole comm-plan configuration grid.

#include <gtest/gtest.h>

#include "golden_setup.hpp"

namespace kdr::core {
namespace {

using golden::kGoldenIters;
using golden::run_history_opts;
using golden::solver_names;

PlannerOptions comm_config(bool plan, bool coalesce, bool eager) {
    PlannerOptions popts;
    popts.comm_plan = plan;
    popts.comm_coalesce = coalesce;
    popts.comm_eager = eager;
    return popts;
}

std::vector<double> history_with(const std::string& solver, const PlannerOptions& popts) {
    rt::Runtime runtime(sim::MachineDesc::lassen(2));
    return run_history_opts(runtime, solver, popts);
}

TEST(CommGolden, HistoriesBitwiseStableAcrossCommConfigs) {
    for (const std::string& solver : solver_names()) {
        const std::vector<double> off = history_with(solver, comm_config(false, false, false));
        ASSERT_FALSE(off.empty());
        for (const bool coalesce : {false, true}) {
            for (const bool eager : {false, true}) {
                const std::vector<double> on =
                    history_with(solver, comm_config(true, coalesce, eager));
                ASSERT_EQ(on.size(), off.size()) << solver;
                for (std::size_t i = 0; i < off.size(); ++i) {
                    EXPECT_EQ(on[i], off[i])
                        << solver << " iteration " << i << " diverges with coalesce="
                        << coalesce << " eager=" << eager;
                }
            }
        }
    }
}

TEST(CommGolden, CoalescedEagerTracedMatchesPlainTraced) {
    // The shipped default (traced loops + fused kernels + comm plans) against
    // the same configuration with plans disabled: virtual time may differ,
    // arithmetic may not.
    for (const std::string& solver : solver_names()) {
        PlannerOptions on = comm_config(true, true, true);
        on.trace_solver_loops = true;
        PlannerOptions off = comm_config(false, false, false);
        off.trace_solver_loops = true;
        const std::vector<double> a = history_with(solver, on);
        const std::vector<double> b = history_with(solver, off);
        ASSERT_EQ(a.size(), b.size()) << solver;
        for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << solver << " @" << i;
    }
}

} // namespace
} // namespace kdr::core
