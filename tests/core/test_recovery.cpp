/// Recovery-controller correctness: restart budget is not burned on
/// guaranteed-identical reruns, budget exhaustion follows the documented
/// order (primary restarts, then fallback with a fresh restart budget, then
/// terminal), and the history sample pushed after a recovery reflects the
/// restored iterate rather than the failed attempt's last residual.

#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/solvers.hpp"
#include "simcluster/fault_model.hpp"
#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

struct System {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<Planner<double>> planner;
    std::shared_ptr<CsrMatrix<double>> A;
};

System make_poisson(int max_task_retries = 2) {
    System s;
    rt::RuntimeOptions ropts;
    ropts.max_task_retries = max_task_retries;
    s.runtime = std::make_unique<rt::Runtime>(sim::MachineDesc::lassen(2), ropts);

    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = 8;
    spec.ny = 8;
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const rt::RegionId xr = s.runtime->create_region(D, "x");
    const rt::RegionId br = s.runtime->create_region(D, "b");
    const rt::FieldId xf = s.runtime->add_field<double>(xr, "v");
    const rt::FieldId bf = s.runtime->add_field<double>(br, "v");
    {
        const auto b = stencil::random_rhs(n, 11);
        auto bd = s.runtime->field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }
    s.planner = std::make_unique<Planner<double>>(*s.runtime);
    s.planner->add_sol_vector(xr, xf, Partition::equal(D, 4));
    s.planner->add_rhs_vector(br, bf, Partition::equal(D, 4));
    s.A = std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D));
    s.planner->add_operator(s.A, 0, 0);
    return s;
}

/// Stagnation options that no solver can satisfy: any residual that fails to
/// shrink to zero within `window` steps classifies as stagnated. With
/// checkpoint_every past the horizon, the checkpoint never moves off the
/// initial iterate, so every rerun is provably identical.
RecoveryOptions stagnating_options(int window, int checkpoint_every = 1000) {
    RecoveryOptions ropts;
    ropts.checkpoint_every = checkpoint_every;
    ropts.solve.stagnation_window = window;
    ropts.solve.stagnation_rtol = 1.0;
    return ropts;
}

TEST(Recovery, IdenticalRerunSkipsRestartBudget) {
    System s = make_poisson();
    int primary_attempts = 0;
    SolverFactory<double> primary = [&](Planner<double>& p) {
        ++primary_attempts;
        return std::make_unique<CgSolver<double>>(p);
    };

    // No faults, no fallback: a stagnation-classified attempt whose rerun
    // would replay identically must terminate immediately, not burn
    // max_restarts reruns of the same trajectory.
    const SolveOutcome out = solve_with_recovery<double>(*s.planner, primary, 1e-30, 50,
                                                         stagnating_options(/*window=*/3));
    EXPECT_EQ(out.status, SolveStatus::stagnated);
    EXPECT_EQ(primary_attempts, 1);
    EXPECT_EQ(out.restarts, 0);
    EXPECT_EQ(out.restores, 0);
}

TEST(Recovery, IdenticalRerunEscalatesStraightToFallback) {
    System s = make_poisson();
    int primary_attempts = 0;
    int fallback_attempts = 0;
    SolverFactory<double> primary = [&](Planner<double>& p) {
        ++primary_attempts;
        return std::make_unique<CgSolver<double>>(p);
    };
    SolverFactory<double> fallback = [&](Planner<double>& p) {
        ++fallback_attempts;
        return std::make_unique<GmresSolver<double>>(p, 5);
    };

    const SolveOutcome out = solve_with_recovery<double>(
        *s.planner, primary, 1e-30, 50, stagnating_options(/*window=*/3), fallback);
    // One primary attempt, zero restarts, one fallback attempt; the fallback
    // stagnates the same way (its rerun is identical too) so the run ends
    // after exactly two attempts.
    EXPECT_EQ(out.status, SolveStatus::stagnated);
    EXPECT_EQ(primary_attempts, 1);
    EXPECT_EQ(fallback_attempts, 1);
    EXPECT_EQ(out.restarts, 0);
    EXPECT_EQ(out.fallbacks, 1);
    EXPECT_EQ(out.restores, 1);
}

TEST(Recovery, CheckpointAheadOfAttemptStartReenablesRestart) {
    System s = make_poisson();
    int primary_attempts = 0;
    SolverFactory<double> primary = [&](Planner<double>& p) {
        ++primary_attempts;
        return std::make_unique<CgSolver<double>>(p);
    };

    // checkpoint_every below the stagnation window: by the time stagnation
    // is classified, the checkpoint holds a later iterate than the attempt's
    // start, so a restart is a genuinely different trajectory and the budget
    // applies again.
    RecoveryOptions ropts = stagnating_options(/*window=*/4, /*checkpoint_every=*/2);
    ropts.max_restarts = 2;
    const SolveOutcome out =
        solve_with_recovery<double>(*s.planner, primary, 1e-30, 60, ropts);
    EXPECT_EQ(out.status, SolveStatus::stagnated);
    EXPECT_GE(out.restarts, 1);
    EXPECT_EQ(primary_attempts, 1 + out.restarts);
}

struct ExhaustionRun {
    SolveOutcome out;
    int primary_attempts = 0;
    int fallback_attempts = 0;
    int first_fallback_at = -1;
    RecoveryOptions ropts;
};

ExhaustionRun run_exhaustion(std::uint64_t seed) {
    ExhaustionRun r;
    System s = make_poisson(/*max_task_retries=*/0);
    // A seeded fault model with zero task retries: any injected fault kills
    // the attempt with a TaskFailedError. The rate is low enough that (for
    // the pinned seed) faults land inside solver steps, never inside the
    // controller's own checkpoint / restore / rebuild launches.
    sim::FaultSpec fs;
    fs.seed = seed;
    fs.task_fail_prob = 0.005;
    s.runtime->cluster().set_fault_model(std::make_shared<sim::FaultModel>(fs));

    SolverFactory<double> primary = [&](Planner<double>& p) {
        ++r.primary_attempts;
        return std::make_unique<CgSolver<double>>(p);
    };
    SolverFactory<double> fallback = [&](Planner<double>& p) {
        if (r.first_fallback_at < 0) r.first_fallback_at = r.primary_attempts;
        ++r.fallback_attempts;
        return std::make_unique<CgSolver<double>>(p);
    };

    r.ropts.checkpoint_every = 1000; // only the initial checkpoint
    r.ropts.max_restarts = 2;
    r.ropts.max_fallbacks = 1;
    r.out = solve_with_recovery<double>(*s.planner, primary, 1e-30, 100000, r.ropts,
                                        fallback);
    return r;
}


TEST(Recovery, BudgetExhaustionOrderUnderFaults) {
    const ExhaustionRun r = run_exhaustion(/*seed=*/1);

    // Deterministic ordering: the primary burns its full restart budget
    // first, then the single fallback switch, then the fallback burns a
    // FRESH restart budget of its own, then the terminal classification.
    ASSERT_EQ(r.out.status, SolveStatus::fault_aborted);
    EXPECT_EQ(r.primary_attempts, 1 + r.ropts.max_restarts);
    EXPECT_EQ(r.first_fallback_at, r.primary_attempts);
    EXPECT_EQ(r.fallback_attempts, 1 + r.ropts.max_restarts);
    EXPECT_EQ(r.out.restarts, 2 * r.ropts.max_restarts);
    EXPECT_EQ(r.out.fallbacks, 1);
    EXPECT_EQ(r.out.restores, r.out.restarts + r.out.fallbacks);
}

TEST(Recovery, PostRecoverySampleReflectsRestoredIterate) {
    // Run the identical-rerun-escalation scenario with a fallback and look
    // at the history around the recovery point: the sample pushed after the
    // restore must equal the restored iterate's true residual (= the initial
    // residual, since the checkpoint never moved), not the failed attempt's
    // last residual.
    System s = make_poisson();
    SolverFactory<double> primary = [](Planner<double>& p) {
        return std::make_unique<CgSolver<double>>(p);
    };
    SolverFactory<double> fallback = [](Planner<double>& p) {
        return std::make_unique<GmresSolver<double>>(p, 5);
    };
    const SolveOutcome out = solve_with_recovery<double>(
        *s.planner, primary, 1e-30, 50, stagnating_options(/*window=*/3), fallback);
    ASSERT_EQ(out.restores, 1);
    ASSERT_GE(out.history.size(), 3u);

    const double r0 = out.history.front().residual;
    // Locate the recovery sample: first sample whose iteration index repeats
    // its predecessor's (the restore does not advance the iteration count).
    std::size_t rec = 0;
    for (std::size_t i = 1; i < out.history.size(); ++i) {
        if (out.history[i].iteration == out.history[i - 1].iteration) {
            rec = i;
            break;
        }
    }
    ASSERT_GT(rec, 0u) << "no post-recovery sample found";
    // The failed attempt wandered off r0 (CG's L2 residual is not monotone,
    // so it may sit above or below — just not at r0); the restored iterate
    // is the initial guess, so the recovery sample must be back at exactly
    // its residual, not the failed attempt's last one.
    EXPECT_GT(std::abs(out.history[rec - 1].residual - r0), 1e-6 * r0);
    EXPECT_NEAR(out.history[rec].residual, r0, 1e-12 * r0);
    // Virtual time keeps advancing monotonically through the restore.
    for (std::size_t i = 1; i < out.history.size(); ++i) {
        EXPECT_GE(out.history[i].virtual_time, out.history[i - 1].virtual_time);
    }
}

} // namespace
} // namespace kdr::core
