/// Timing-mode integration: the benchmark harness path. Phantom regions +
/// analytically planned operators must drive solvers through full virtual-
/// time schedules without touching (nonexistent) data, and dynamic tracing
/// must shrink steady-state per-iteration time.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string_view>

#include "core/solvers.hpp"
#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

/// Validation mode forces traces onto the full-analysis replay path (the
/// shadow race detector audits resolved dependence edges), so assertions
/// about fast-path timing cannot hold under KDR_VALIDATE.
bool validation_forced() {
    const char* e = std::getenv("KDR_VALIDATE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

struct TimingSetup {
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<Planner<double>> planner;

    TimingSetup(stencil::Kind kind, gidx target, int nodes, Color pieces,
                PlannerOptions popts = {}, rt::RuntimeOptions ropts = {.materialize = false},
                const sim::MachineDesc* machine = nullptr) {
        const sim::MachineDesc m = machine ? *machine : sim::MachineDesc::lassen(nodes);
        ropts.materialize = false;
        runtime = std::make_unique<rt::Runtime>(m, ropts);
        const stencil::Spec spec = stencil::Spec::cube(kind, target);
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const IndexSpace R = IndexSpace::create(n, "R");
        const rt::RegionId xr = runtime->create_region(D, "x");
        const rt::RegionId br = runtime->create_region(R, "b");
        const rt::FieldId xf = runtime->add_field<double>(xr, "v");
        const rt::FieldId bf = runtime->add_field<double>(br, "v");

        const stencil::CoPartition cp = stencil::co_partition(spec, D, R, pieces);
        planner = std::make_unique<Planner<double>>(*runtime, popts);
        planner->add_sol_vector(xr, xf, Partition::equal(D, pieces));
        planner->add_rhs_vector(br, bf, cp.rows);

        // Kernel pieces: contiguous nnz blocks matching the row pieces.
        const IndexSpace K = IndexSpace::create(spec.total_nnz(), "K");
        std::vector<IntervalSet> kpieces;
        gidx cursor = 0;
        for (Color c = 0; c < pieces; ++c) {
            const gidx take = std::min(cp.nnz[static_cast<std::size_t>(c)],
                                       spec.total_nnz() - cursor);
            kpieces.emplace_back(cursor, cursor + take);
            cursor += take;
        }
        OperatorPlan plan;
        plan.kernel_pieces = Partition(K, std::move(kpieces));
        plan.domain_needs = cp.halo;
        plan.row_pieces = cp.rows;
        plan.nnz = cp.nnz;
        planner->add_operator(nullptr, 0, 0, std::move(plan));
    }
};

TEST(TimingMode, CgAdvancesVirtualTimeWithoutData) {
    TimingSetup s(stencil::Kind::D2P5, 1 << 16, 4, 16);
    CgSolver<double> cg(*s.planner);
    const double t0 = s.runtime->current_time();
    for (int i = 0; i < 5; ++i) cg.step();
    EXPECT_GT(s.runtime->current_time(), t0);
    EXPECT_GT(s.runtime->tasks_launched(), 100u);
}

TEST(TimingMode, AllSolversRunInTimingMode) {
    {
        TimingSetup s(stencil::Kind::D2P5, 1 << 12, 2, 8);
        BiCgStabSolver<double> solver(*s.planner);
        for (int i = 0; i < 3; ++i) solver.step();
        EXPECT_GT(s.runtime->current_time(), 0.0);
    }
    {
        TimingSetup s(stencil::Kind::D2P5, 1 << 12, 2, 8);
        GmresSolver<double> solver(*s.planner, 10);
        for (int i = 0; i < 12; ++i) solver.step(); // crosses a restart
        EXPECT_GT(s.runtime->current_time(), 0.0);
    }
    {
        TimingSetup s(stencil::Kind::D2P5, 1 << 12, 2, 8);
        MinresSolver<double> solver(*s.planner);
        for (int i = 0; i < 3; ++i) solver.step();
        EXPECT_GT(s.runtime->current_time(), 0.0);
    }
}

TEST(TimingMode, SteadyStateIterationTimeIsStable) {
    TimingSetup s(stencil::Kind::D2P5, 1 << 16, 4, 16);
    CgSolver<double> cg(*s.planner);
    // Warm up (matrix transfers, cache fills).
    for (int i = 0; i < 3; ++i) cg.step();
    std::vector<double> per_iter;
    for (int i = 0; i < 6; ++i) {
        const double t0 = s.runtime->current_time();
        cg.step();
        per_iter.push_back(s.runtime->current_time() - t0);
    }
    for (std::size_t i = 1; i < per_iter.size(); ++i) {
        EXPECT_NEAR(per_iter[i], per_iter[0], per_iter[0] * 0.05)
            << "steady-state iterations should cost the same";
    }
}

TEST(TimingMode, TracingReducesIterationTime) {
    if (validation_forced()) GTEST_SKIP() << "validation disables the trace fast path";
    // Solvers trace their own iteration loops by default; the untraced run
    // opts out through PlannerOptions.
    PlannerOptions untraced_opts;
    untraced_opts.trace_solver_loops = false;
    TimingSetup traced(stencil::Kind::D2P5, 1 << 14, 2, 8);
    TimingSetup dynamic(stencil::Kind::D2P5, 1 << 14, 2, 8, untraced_opts);
    CgSolver<double> cg_t(*traced.planner);
    CgSolver<double> cg_d(*dynamic.planner);

    auto run = [](rt::Runtime& rt, CgSolver<double>& cg) {
        // Warmup (covers the record and capture instances when tracing).
        for (int i = 0; i < 3; ++i) cg.step();
        const double t0 = rt.current_time();
        for (int i = 0; i < 10; ++i) cg.step();
        return (rt.current_time() - t0) / 10.0;
    };

    const double with_trace = run(*traced.runtime, cg_t);
    const double without = run(*dynamic.runtime, cg_d);
    EXPECT_LT(with_trace, without)
        << "replayed traces must beat dynamic analysis at this small size";
    EXPECT_GT(traced.runtime->metrics().counter_value("trace_depanalysis_skipped"), 0.0)
        << "steady-state iterations must ride the fast path";
    EXPECT_DOUBLE_EQ(
        dynamic.runtime->metrics().counter_value("trace_depanalysis_skipped"), 0.0);
}

TEST(TimingMode, FastPathReproducesAnalysisPathSchedule) {
    if (validation_forced()) GTEST_SKIP() << "validation disables the trace fast path";
    // With launch overheads zeroed, skipping dependence analysis must be a
    // pure no-op on the schedule: the captured event edges have to resolve
    // to exactly the dependence times full analysis would compute.
    sim::MachineDesc m = sim::MachineDesc::lassen(2);
    m.task_launch_overhead = 0.0;
    m.traced_launch_overhead = 0.0;
    rt::RuntimeOptions fast_opts{.materialize = false, .trace_fast_path = true};
    rt::RuntimeOptions verify_opts{.materialize = false, .trace_fast_path = false};
    TimingSetup fast(stencil::Kind::D2P5, 1 << 14, 2, 8, {}, fast_opts, &m);
    TimingSetup verify(stencil::Kind::D2P5, 1 << 14, 2, 8, {}, verify_opts, &m);
    CgSolver<double> cg_f(*fast.planner);
    CgSolver<double> cg_v(*verify.planner);
    for (int i = 0; i < 12; ++i) {
        cg_f.step();
        cg_v.step();
        EXPECT_DOUBLE_EQ(fast.runtime->current_time(), verify.runtime->current_time())
            << "schedules diverged at iteration " << i;
    }
    EXPECT_GT(fast.runtime->metrics().counter_value("trace_depanalysis_skipped"), 0.0);
    EXPECT_DOUBLE_EQ(
        verify.runtime->metrics().counter_value("trace_depanalysis_skipped"), 0.0);
}

TEST(TimingMode, MatrixMovesOnceVectorsMoveEveryIteration) {
    TimingSetup s(stencil::Kind::D2P5, 1 << 16, 4, 16);
    CgSolver<double> cg(*s.planner);
    cg.step();
    cg.step();
    const double warm = s.runtime->transfer_bytes();
    const auto count_warm = s.runtime->transfer_count();
    cg.step();
    const double delta1 = s.runtime->transfer_bytes() - warm;
    const auto xfers1 = s.runtime->transfer_count() - count_warm;
    cg.step();
    const double delta2 = s.runtime->transfer_bytes() - warm - delta1;
    EXPECT_GT(delta1, 0.0) << "vector halos move every iteration";
    EXPECT_DOUBLE_EQ(delta1, delta2) << "steady-state traffic is periodic";
    EXPECT_GT(xfers1, 0u);
}

TEST(TimingMode, MorePiecesMoreParallelism) {
    // Same problem, same machine: 16 pieces across 16 GPUs must beat 4
    // pieces in virtual time per iteration (the canonical-partition
    // parallelism knob, paper §5).
    auto time_with_pieces = [](Color pieces) {
        TimingSetup s(stencil::Kind::D2P5, 1 << 20, 4, pieces);
        CgSolver<double> cg(*s.planner);
        for (int i = 0; i < 3; ++i) cg.step();
        const double t0 = s.runtime->current_time();
        for (int i = 0; i < 5; ++i) cg.step();
        return (s.runtime->current_time() - t0) / 5.0;
    };
    EXPECT_LT(time_with_pieces(16), time_with_pieces(4));
}

TEST(TimingMode, FunctionalRuntimeRejectsNullPlannedOperator) {
    rt::Runtime runtime(sim::MachineDesc::lassen(1)); // functional
    const IndexSpace D = IndexSpace::create(8, "D");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf);
    planner.add_rhs_vector(br, bf);
    OperatorPlan plan;
    const IndexSpace K = IndexSpace::create(8, "K");
    plan.kernel_pieces = Partition::single(K);
    plan.domain_needs = Partition::single(D);
    plan.row_pieces = Partition::single(D);
    plan.nnz = {8};
    EXPECT_THROW(planner.add_operator(nullptr, 0, 0, std::move(plan)), Error);
}

} // namespace
} // namespace kdr::core
