/// Integration: dynamic load balancing during a *functional* solve. Tiles
/// migrate between their two owners mid-CG (mapper table updates + matrix
/// home moves) while the iteration stream continues — the solution must be
/// exactly the usual one, migrations must actually occur, and virtual time
/// must reflect the changing mapping. This is the correctness backbone of
/// the Fig 10 experiment.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "core/load_balancer.hpp"
#include "core/solvers.hpp"
#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

TEST(RebalanceIntegration, MigrationDuringSolvePreservesCorrectness) {
    const int nodes = 4;
    const int pieces = 8;
    const gidx n = 64; // per-component size
    sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
    rt::Runtime runtime(machine);
    auto table = std::make_shared<std::unordered_map<Color, int>>();
    runtime.set_mapper(std::make_unique<TileTableMapper>(table, sim::ProcKind::CPU));

    PlannerOptions opts;
    opts.proc_kind = sim::ProcKind::CPU;
    opts.per_operator_task_colors = true;
    Planner<double> planner(runtime, opts);

    // Components: a block-tridiagonal chain of `pieces` components.
    std::vector<rt::RegionId> xr(pieces), br(pieces);
    std::vector<rt::FieldId> xf(pieces), bf(pieces);
    std::vector<std::vector<double>> rhs(pieces);
    for (int i = 0; i < pieces; ++i) {
        const IndexSpace Di = IndexSpace::create(n, "D" + std::to_string(i));
        xr[static_cast<std::size_t>(i)] = runtime.create_region(Di, "x" + std::to_string(i));
        br[static_cast<std::size_t>(i)] = runtime.create_region(Di, "b" + std::to_string(i));
        xf[static_cast<std::size_t>(i)] =
            runtime.add_field<double>(xr[static_cast<std::size_t>(i)], "v");
        bf[static_cast<std::size_t>(i)] =
            runtime.add_field<double>(br[static_cast<std::size_t>(i)], "v");
        rhs[static_cast<std::size_t>(i)] =
            stencil::random_rhs(n, 500 + static_cast<std::uint64_t>(i));
        auto bd = runtime.field_data<double>(br[static_cast<std::size_t>(i)],
                                             bf[static_cast<std::size_t>(i)]);
        std::copy(rhs[static_cast<std::size_t>(i)].begin(),
                  rhs[static_cast<std::size_t>(i)].end(), bd.begin());
        planner.add_sol_vector(xr[static_cast<std::size_t>(i)],
                               xf[static_cast<std::size_t>(i)]);
        planner.add_rhs_vector(br[static_cast<std::size_t>(i)],
                               bf[static_cast<std::size_t>(i)]);
    }

    // Operators: strong diagonal blocks + weak chain coupling (SPD).
    std::vector<std::shared_ptr<CsrMatrix<double>>> ops;
    std::vector<std::pair<int, int>> op_pairs;
    std::vector<Tile> tiles;
    auto add_op = [&](int i, int j, const std::vector<Triplet<double>>& ts) {
        const IndexSpace& D = planner.sol_component(static_cast<std::size_t>(j)).space;
        const IndexSpace& R = planner.rhs_component(static_cast<std::size_t>(i)).space;
        auto A = std::make_shared<CsrMatrix<double>>(
            CsrMatrix<double>::from_triplets(D, R, ts));
        planner.add_operator(A, static_cast<std::size_t>(j), static_cast<std::size_t>(i));
        ops.push_back(A);
        op_pairs.emplace_back(i, j);
        const std::size_t op_index = planner.operator_count() - 1;
        const Color color = planner.matmul_color(op_index, 0);
        (*table)[color] = i % nodes;
        if (i != j && i % nodes != j % nodes) {
            tiles.push_back({op_index, color, i % nodes, j % nodes, i % nodes});
        }
    };
    std::vector<Triplet<double>> diag, off;
    for (gidx k = 0; k < n; ++k) {
        diag.push_back({k, k, 4.0});
        off.push_back({k, k, -1.0});
    }
    for (int i = 0; i < pieces; ++i) {
        add_op(i, i, diag);
        if (i + 1 < pieces) {
            add_op(i, i + 1, off);
            add_op(i + 1, i, off);
        }
    }
    ASSERT_FALSE(tiles.empty());

    CgSolver<double> cg(planner);
    ThermodynamicBalancer balancer(1000.0, 1e-9, 99); // hot: always migrate over-ref tiles
    Rng flip(3);
    int migrations = 0;
    int iters = 0;
    while (cg.get_convergence_measure().value > 1e-10 && iters < 500) {
        cg.step();
        ++iters;
        if (iters % 5 == 0) {
            // Force stochastic migrations regardless of timing state.
            for (Tile& t : tiles) {
                if (flip.uniform() < 0.5) {
                    t.current = t.other_owner();
                    (*table)[t.task_color] = t.current;
                    const auto [region, field] = planner.operator_storage(t.op_index);
                    runtime.move_home(region, field,
                                      runtime.region(region).space().universe(), t.current);
                    ++migrations;
                }
            }
        }
    }
    EXPECT_LT(iters, 500) << "solver must converge despite migrations";
    EXPECT_GE(migrations, 3);
    EXPECT_GT(runtime.transfer_bytes(), 0.0) << "migrations moved matrix bytes";
    (void)balancer;

    // Solution check: the assembled block system, solved directly per row.
    for (int i = 0; i < pieces; ++i) {
        std::vector<double> ax(static_cast<std::size_t>(n), 0.0);
        for (std::size_t k = 0; k < ops.size(); ++k) {
            if (op_pairs[k].first != i) continue;
            auto xd = runtime.field_data<double>(
                xr[static_cast<std::size_t>(op_pairs[k].second)],
                xf[static_cast<std::size_t>(op_pairs[k].second)]);
            ops[k]->multiply_add(std::vector<double>(xd.begin(), xd.end()), ax);
        }
        for (gidx e = 0; e < n; ++e) {
            EXPECT_NEAR(ax[static_cast<std::size_t>(e)],
                        rhs[static_cast<std::size_t>(i)][static_cast<std::size_t>(e)], 1e-7)
                << "component " << i << " element " << e;
        }
    }
}

TEST(RebalanceIntegration, MigrationDelaysNextReaderInVirtualTime) {
    // A migrated tile's next matmul must wait for the migration transfer.
    sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    machine.nic_bandwidth = 1.0e6; // slow wire: migration clearly visible
    rt::Runtime runtime(machine, rt::RuntimeOptions{.materialize = false});
    auto table = std::make_shared<std::unordered_map<Color, int>>();
    runtime.set_mapper(std::make_unique<TileTableMapper>(table, sim::ProcKind::CPU));
    PlannerOptions opts;
    opts.proc_kind = sim::ProcKind::CPU;
    opts.per_operator_task_colors = true;
    Planner<double> planner(runtime, opts);

    const gidx n = 1000;
    const IndexSpace D = IndexSpace::create(n, "D");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    planner.add_sol_vector(xr, xf);
    planner.add_rhs_vector(br, bf);
    const IndexSpace K = IndexSpace::create(3 * n, "K");
    OperatorPlan plan;
    plan.kernel_pieces = Partition::single(K);
    plan.domain_needs = Partition::single(D);
    plan.row_pieces = Partition::single(D);
    plan.nnz = {3 * n};
    planner.add_operator(nullptr, 0, 0, std::move(plan));
    (*table)[planner.matmul_color(0, 0)] = 0;

    const VecId y = planner.allocate_workspace_vector(VecKind::RHS);
    planner.matmul(y, Planner<double>::SOL); // warm: matrix cached on node 0
    const double t0 = runtime.current_time();
    planner.matmul(y, Planner<double>::SOL);
    const double steady = runtime.current_time() - t0;

    // Migrate the tile to node 1 and re-run: the migration itself moves
    // 3n · 16 bytes over the slow wire and the next matmul waits for it.
    const double t1 = runtime.current_time();
    const auto [region, field] = planner.operator_storage(0);
    runtime.move_home(region, field, K.universe(), 1);
    (*table)[planner.matmul_color(0, 0)] = 1;
    planner.matmul(y, Planner<double>::SOL);
    const double migrated = runtime.current_time() - t1;
    EXPECT_GT(migrated, steady + 3.0 * n * 16.0 / 1.0e6 * 0.5)
        << "post-migration matmul pays the matrix movement";
}

} // namespace
} // namespace kdr::core
