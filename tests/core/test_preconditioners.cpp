#include <gtest/gtest.h>

#include <memory>

#include "core/preconditioners.hpp"
#include "core/solvers.hpp"
#include "stencil/stencil.hpp"

namespace kdr::core {
namespace {

sim::MachineDesc machine() {
    sim::MachineDesc m = sim::MachineDesc::lassen(1);
    m.gpus_per_node = 2;
    return m;
}

/// SPD system with a diagonal graded over three orders of magnitude and weak
/// symmetric coupling: plain CG sees condition ~1e3, Jacobi scaling removes
/// it almost entirely.
std::vector<Triplet<double>> scaled_tridiag(gidx n) {
    auto scale = [n](gidx i) {
        return std::pow(10.0, 3.0 * static_cast<double>(i) / static_cast<double>(n - 1));
    };
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < n; ++i) {
        const double s = scale(i);
        if (i > 0) ts.push_back({i, i - 1, -0.1 * std::sqrt(s * scale(i - 1))});
        ts.push_back({i, i, s});
        if (i < n - 1) ts.push_back({i, i + 1, -0.1 * std::sqrt(s * scale(i + 1))});
    }
    return ts;
}

struct PreconFixture : ::testing::Test {
    static constexpr gidx kN = 256;
    rt::Runtime runtime{machine()};
    IndexSpace D = IndexSpace::create(kN, "D");
    rt::RegionId xr = runtime.create_region(D, "x");
    rt::RegionId br = runtime.create_region(D, "b");
    rt::FieldId xf = runtime.add_field<double>(xr, "v");
    rt::FieldId bf = runtime.add_field<double>(br, "v");
    Planner<double> planner{runtime};
    std::shared_ptr<CsrMatrix<double>> A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(D, D, scaled_tridiag(kN)));

    void setup() {
        const auto b = stencil::random_rhs(kN, 9);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
        planner.add_sol_vector(xr, xf, Partition::equal(D, 2));
        planner.add_rhs_vector(br, bf, Partition::equal(D, 2));
        planner.add_operator(A, 0, 0);
    }
};

TEST_F(PreconFixture, MultiOperatorDiagonalSumsAcrossOperators) {
    std::vector<std::shared_ptr<const LinearOperator<double>>> ops = {A, A};
    const auto diag = multi_operator_diagonal(ops);
    std::vector<double> expect(kN, 0.0);
    A->add_diagonal(expect);
    for (gidx i = 0; i < kN; ++i) {
        EXPECT_DOUBLE_EQ(diag[static_cast<std::size_t>(i)],
                         2.0 * expect[static_cast<std::size_t>(i)]);
    }
}

TEST_F(PreconFixture, JacobiPsolveAppliesInverseDiagonal) {
    setup();
    add_jacobi_preconditioner(planner, {{A}});
    EXPECT_TRUE(planner.has_preconditioner());
    const VecId z = planner.allocate_workspace_vector();
    planner.psolve(z, Planner<double>::RHS);
    std::vector<double> diag(kN, 0.0);
    A->add_diagonal(diag);
    auto b = runtime.field_data<double>(br, bf);
    auto zd = runtime.field_data<double>(xr, planner.vector_field(z));
    for (gidx i = 0; i < kN; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        EXPECT_NEAR(zd[iu], b[iu] / diag[iu], 1e-12);
    }
}

TEST_F(PreconFixture, PcgConvergesFasterThanCgOnIllScaledSystem) {
    setup();
    add_jacobi_preconditioner(planner, {{A}});

    // Fresh parallel setup for the unpreconditioned run.
    rt::Runtime runtime2{machine()};
    const rt::RegionId xr2 = runtime2.create_region(D, "x2");
    const rt::RegionId br2 = runtime2.create_region(D, "b2");
    const rt::FieldId xf2 = runtime2.add_field<double>(xr2, "v");
    const rt::FieldId bf2 = runtime2.add_field<double>(br2, "v");
    {
        const auto b = stencil::random_rhs(kN, 9);
        auto bd = runtime2.field_data<double>(br2, bf2);
        std::copy(b.begin(), b.end(), bd.begin());
    }
    Planner<double> plain(runtime2);
    plain.add_sol_vector(xr2, xf2, Partition::equal(D, 2));
    plain.add_rhs_vector(br2, bf2, Partition::equal(D, 2));
    plain.add_operator(A, 0, 0);

    PcgSolver<double> pcg(planner);
    CgSolver<double> cg(plain);
    const int pcg_iters = solve_to_tolerance(pcg, 1e-8, 2000);
    const int cg_iters = solve_to_tolerance(cg, 1e-8, 2000);
    EXPECT_LT(pcg_iters, cg_iters) << "Jacobi must help on this diagonal scaling";
    EXPECT_LT(pcg_iters, 100);
}

TEST_F(PreconFixture, JacobiRejectsZeroDiagonal) {
    setup();
    auto singular = std::make_shared<CsrMatrix<double>>(CsrMatrix<double>::from_triplets(
        D, D, {{0, 1, 1.0}, {1, 0, 1.0}})); // zero diagonal everywhere
    EXPECT_THROW(add_jacobi_preconditioner<double>(planner, {{singular}}), Error);
}

TEST_F(PreconFixture, NeumannPreconditionerAcceleratesCg) {
    setup();
    add_neumann_preconditioner(planner, /*order=*/3, /*omega=*/0.0005);
    EXPECT_TRUE(planner.has_preconditioner());
    PcgSolver<double> pcg(planner);
    const int iters = solve_to_tolerance(pcg, 1e-8, 3000);
    EXPECT_LT(iters, 3000);
}

TEST_F(PreconFixture, PcgRequiresPreconditioner) {
    setup();
    EXPECT_THROW(PcgSolver<double> solver(planner), Error);
}

TEST_F(PreconFixture, BlockJacobiPsolveInvertsPieceBlocks) {
    setup();
    add_block_jacobi_preconditioner<double>(planner, {{A}});
    EXPECT_TRUE(planner.has_preconditioner());
    // z = P b must satisfy: restricted to each piece, A_piece z_piece = b_piece.
    const VecId z = planner.allocate_workspace_vector();
    planner.psolve(z, Planner<double>::RHS);
    auto zd = runtime.field_data<double>(xr, planner.vector_field(z));
    auto bd = runtime.field_data<double>(br, bf);
    const Partition pieces = Partition::equal(D, 2);
    const auto ts = A->to_triplets();
    for (Color c = 0; c < 2; ++c) {
        const IntervalSet& piece = pieces.piece(c);
        std::vector<double> az(static_cast<std::size_t>(kN), 0.0);
        for (const auto& t : ts) {
            if (piece.contains(t.row) && piece.contains(t.col)) {
                az[static_cast<std::size_t>(t.row)] +=
                    t.value * zd[static_cast<std::size_t>(t.col)];
            }
        }
        piece.for_each([&](gidx i) {
            EXPECT_NEAR(az[static_cast<std::size_t>(i)], bd[static_cast<std::size_t>(i)],
                        1e-9)
                << "piece " << c << " row " << i;
        });
    }
}

TEST_F(PreconFixture, BlockJacobiAtLeastAsGoodAsPointJacobi) {
    // Block-Jacobi subsumes point Jacobi (the blocks include the coupling),
    // so PCG with block-Jacobi converges in no more iterations.
    setup();
    add_block_jacobi_preconditioner<double>(planner, {{A}});
    PcgSolver<double> block(planner);
    const int block_iters = solve_to_tolerance(block, 1e-8, 2000);

    rt::Runtime runtime2{machine()};
    const rt::RegionId xr2 = runtime2.create_region(D, "x2");
    const rt::RegionId br2 = runtime2.create_region(D, "b2");
    const rt::FieldId xf2 = runtime2.add_field<double>(xr2, "v");
    const rt::FieldId bf2 = runtime2.add_field<double>(br2, "v");
    {
        const auto b = stencil::random_rhs(kN, 9);
        auto bd = runtime2.field_data<double>(br2, bf2);
        std::copy(b.begin(), b.end(), bd.begin());
    }
    Planner<double> point(runtime2);
    point.add_sol_vector(xr2, xf2, Partition::equal(D, 2));
    point.add_rhs_vector(br2, bf2, Partition::equal(D, 2));
    point.add_operator(A, 0, 0);
    add_jacobi_preconditioner<double>(point, {{A}});
    PcgSolver<double> pj(point);
    const int point_iters = solve_to_tolerance(pj, 1e-8, 2000);

    EXPECT_LE(block_iters, point_iters);
    EXPECT_LT(block_iters, 2000);
}

} // namespace
} // namespace kdr::core
