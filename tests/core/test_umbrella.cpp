/// Compile-and-use check of the umbrella header: everything a downstream
/// user reaches through #include "kdr.hpp" is present and consistent.

#include "kdr.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
    kdr::rt::Runtime runtime(kdr::sim::MachineDesc::lassen(1));
    kdr::stencil::Spec spec;
    spec.kind = kdr::stencil::Kind::D1P3;
    spec.nx = 32;
    const kdr::IndexSpace D = kdr::IndexSpace::create(32, "D");
    const kdr::rt::RegionId xr = runtime.create_region(D, "x");
    const kdr::rt::RegionId br = runtime.create_region(D, "b");
    const kdr::rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const kdr::rt::FieldId bf = runtime.add_field<double>(br, "v");
    {
        auto bd = runtime.field_data<double>(br, bf);
        for (auto& v : bd) v = 1.0;
    }
    kdr::core::Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, kdr::Partition::equal(D, 2));
    planner.add_rhs_vector(br, bf, kdr::Partition::equal(D, 2));
    planner.add_operator(std::make_shared<kdr::CsrMatrix<double>>(
                             kdr::stencil::laplacian_csr(spec, D, D)),
                         0, 0);
    kdr::core::CgSolver<double> cg(planner);
    kdr::core::SolverMonitor<double> mon(cg);
    EXPECT_LT(kdr::core::solve_to_tolerance<double>(mon, 1e-10, 200), 200);
    EXPECT_GE(mon.history().size(), 2u);
}

} // namespace
