/// Data-movement tests: remote reads charge transfers, read-only pieces are
/// cached until invalidated by writes, off-home writes charge write-backs,
/// and piece migration (move_home) charges and redirects. These mechanisms
/// produce the steady-state communication pattern of the paper's solvers:
/// the matrix moves once, vector halos move every iteration.

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"

namespace kdr::rt {
namespace {

struct XferFixture : ::testing::Test {
    static constexpr double kBw = 1.0e6;  // 1 MB/s: transfers clearly visible
    static constexpr gidx kN = 1000;      // 8 KB per field

    sim::MachineDesc machine = [] {
        sim::MachineDesc m = sim::MachineDesc::lassen(2);
        m.gpus_per_node = 1;
        m.task_launch_overhead = 0.0;
        m.gpu_launch_overhead = 0.0;
        m.nic_latency = 0.0;
        m.nic_message_overhead = 0.0;
        m.nic_bandwidth = kBw;
        return m;
    }();
    Runtime rt{machine};
    IndexSpace space = IndexSpace::create(kN, "D");
    RegionId r = rt.create_region(space, "vec");
    FieldId f = rt.add_field<double>(r, "v");

    static constexpr double kFullXfer = static_cast<double>(kN) * 8.0 / kBw; // 8 ms

    FutureScalar run_on(Color color, Privilege priv, IntervalSet subset) {
        TaskLaunch l;
        l.name = "t";
        l.requirements.push_back({r, f, priv, std::move(subset)});
        l.color = color; // with 1 GPU/node, color == node
        return rt.launch(std::move(l));
    }
};

TEST_F(XferFixture, LocalReadIsFree) {
    const FutureScalar local = run_on(0, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_DOUBLE_EQ(local.ready_time, 0.0);
    EXPECT_EQ(rt.transfer_count(), 0u);
}

TEST_F(XferFixture, RemoteReadChargesTransfer) {
    const FutureScalar remote = run_on(1, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_NEAR(remote.ready_time, kFullXfer, 1e-12);
    EXPECT_EQ(rt.transfer_count(), 1u);
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), kN * 8.0);
}

TEST_F(XferFixture, ReadOnlyPieceIsCachedAcrossReads) {
    run_on(1, Privilege::ReadOnly, IntervalSet(0, kN));
    const auto count_after_first = rt.transfer_count();
    const FutureScalar second = run_on(1, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), count_after_first) << "second read hits the cache";
    EXPECT_NEAR(second.ready_time, kFullXfer, 1e-12) << "no new transfer delay";
}

TEST_F(XferFixture, WriteInvalidatesRemoteCaches) {
    run_on(1, Privilege::ReadOnly, IntervalSet(0, kN));
    run_on(0, Privilege::WriteOnly, IntervalSet(0, kN)); // bump version locally
    run_on(1, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), 2u) << "post-write read must re-fetch";
}

TEST_F(XferFixture, PartialRemoteReadMovesOnlyTheOverlap) {
    const Partition p = Partition::equal(space, 2);
    rt.set_home_from_partition(r, f, p, {0, 1});
    // Node 0 reads [400, 600): [400,500) is local, [500,600) lives on node 1.
    run_on(0, Privilege::ReadOnly, IntervalSet(400, 600));
    EXPECT_EQ(rt.transfer_count(), 1u);
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), 100 * 8.0);
}

TEST_F(XferFixture, OffHomeWriteChargesWriteBack) {
    // Node 1 writes data homed on node 0: the result must flow back.
    const FutureScalar w = run_on(1, Privilege::WriteOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), 1u);
    EXPECT_NEAR(w.ready_time, 0.0, 1e-12) << "task itself finishes immediately";
    // A subsequent local read on node 0 must wait for the write-back arrival.
    const FutureScalar rd = run_on(0, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_NEAR(rd.ready_time, kFullXfer, 1e-12);
}

TEST_F(XferFixture, NonReadingPrivilegesNeverFetch) {
    // WriteOnly produces fresh data and a Reduce instance starts from the
    // reduction identity, folding its contribution in via write-back — so a
    // remote task holding either privilege issues exactly one transfer (the
    // write-back), never a fetch. Fetching for Reduce used to double-charge
    // every reduction task with a halo it never reads.
    TaskLaunch red;
    red.name = "reduce";
    red.color = 1; // remote: field homed on node 0
    red.requirements.push_back({r, f, Privilege::Reduce, IntervalSet(0, kN), kSumReduction});
    rt.launch(std::move(red));
    EXPECT_EQ(rt.transfer_count(), 1u) << "Reduce must write back without fetching";
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), kN * 8.0);

    const auto after_reduce = rt.transfer_count();
    run_on(1, Privilege::WriteOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), after_reduce + 1)
        << "WriteOnly must write back without fetching";
}

TEST_F(XferFixture, DisjointWriteKeepsCachedPieces) {
    // Regression: invalidation used to clear the whole per-field cache on any
    // write, forcing every consumer to re-fetch halos that were never touched.
    const Partition p = Partition::equal(space, 2);
    rt.set_home_from_partition(r, f, p, {0, 1});
    run_on(1, Privilege::ReadOnly, IntervalSet(0, 500)); // cache node 0's half on node 1
    EXPECT_EQ(rt.transfer_count(), 1u);
    run_on(1, Privilege::WriteOnly, IntervalSet(500, 1000)); // disjoint write
    run_on(1, Privilege::ReadOnly, IntervalSet(0, 500));
    EXPECT_EQ(rt.transfer_count(), 1u) << "disjoint write must not evict the cached halo";
    // An overlapping write invalidates — but only the overlap re-fetches.
    run_on(0, Privilege::WriteOnly, IntervalSet(0, 100));
    run_on(1, Privilege::ReadOnly, IntervalSet(0, 500));
    EXPECT_EQ(rt.transfer_count(), 2u);
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), 500 * 8.0 + 100 * 8.0);
}

TEST_F(XferFixture, MoveHomeChargesMigrationAndRedirects) {
    run_on(0, Privilege::WriteOnly, IntervalSet(0, kN));
    const auto before = rt.transfer_bytes();
    rt.move_home(r, f, IntervalSet(0, kN), 1);
    EXPECT_DOUBLE_EQ(rt.transfer_bytes() - before, kN * 8.0);
    EXPECT_EQ(rt.home_node(r, f, IntervalSet(0, kN)), 1);
    // Now node 1 reads locally...
    const auto count = rt.transfer_count();
    run_on(1, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), count);
    // ...and node 0 reads remotely.
    run_on(0, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), count + 1);
}

TEST_F(XferFixture, MoveHomeToSameNodeIsFree) {
    const auto before = rt.transfer_bytes();
    rt.move_home(r, f, IntervalSet(0, kN), 0);
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), before);
}

TEST_F(XferFixture, MatrixLikeSteadyState) {
    // Read-only data referenced every "iteration" from two nodes: transferred
    // exactly once, then cached forever — matrices don't move after startup.
    for (int iter = 0; iter < 10; ++iter) {
        run_on(0, Privilege::ReadOnly, IntervalSet(0, kN));
        run_on(1, Privilege::ReadOnly, IntervalSet(0, kN));
    }
    EXPECT_EQ(rt.transfer_count(), 1u);
}

TEST_F(XferFixture, VectorLikeSteadyState) {
    // Write-then-read-remotely each iteration: one halo transfer per
    // iteration, like the solver's x vector.
    const Partition p = Partition::equal(space, 2);
    rt.set_home_from_partition(r, f, p, {0, 1});
    for (int iter = 0; iter < 10; ++iter) {
        run_on(0, Privilege::WriteOnly, IntervalSet(0, 500));
        run_on(1, Privilege::ReadOnly, IntervalSet(400, 600)); // needs [400,500) from node 0
    }
    EXPECT_EQ(rt.transfer_count(), 10u);
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), 10 * 100 * 8.0);
}

} // namespace
} // namespace kdr::rt
