/// Randomized dependence-analysis property test: for an arbitrary stream of
/// tasks with random subsets and privileges, the virtual-time schedule must
/// satisfy the fundamental guarantee — every task starts no earlier than the
/// finish of every earlier task it conflicts with (intersecting subsets,
/// incompatible privileges). Checked against an independently computed
/// conflict relation, not the runtime's own bookkeeping.

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace kdr::rt {
namespace {

struct Issued {
    Privilege priv;
    ReductionOp op;
    IntervalSet subset;
    double start;
    double finish;
};

bool conflicts(const Issued& a, const Issued& b) {
    if (!a.subset.intersects(b.subset)) return false;
    const bool a_reads_only = a.priv == Privilege::ReadOnly;
    const bool b_reads_only = b.priv == Privilege::ReadOnly;
    if (a_reads_only && b_reads_only) return false;
    if (a.priv == Privilege::Reduce && b.priv == Privilege::Reduce && a.op == b.op)
        return false;
    return true;
}

class DependenceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DependenceFuzz, ConflictingTasksNeverOverlapInVirtualTime) {
    Rng rng(GetParam());
    sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    machine.gpus_per_node = 2;
    machine.task_launch_overhead = 0.0; // schedule shape only
    machine.gpu_launch_overhead = 1e-6; // nonzero durations
    Runtime rt(machine);
    const RegionId r = rt.create_region(IndexSpace::create(200), "fuzz");
    const FieldId f = rt.add_field<double>(r, "v");

    std::vector<Issued> history;
    for (int t = 0; t < 120; ++t) {
        const gidx lo = static_cast<gidx>(rng.uniform_index(180));
        const gidx hi = lo + 1 + static_cast<gidx>(rng.uniform_index(20));
        Privilege priv = Privilege::ReadOnly;
        ReductionOp op = kNoReduction;
        switch (rng.uniform_index(4)) {
            case 0: priv = Privilege::ReadOnly; break;
            case 1: priv = Privilege::WriteOnly; break;
            case 2: priv = Privilege::ReadWrite; break;
            default:
                priv = Privilege::Reduce;
                op = kSumReduction + static_cast<ReductionOp>(rng.uniform_index(2));
        }
        TaskLaunch l;
        l.name = "fuzz";
        l.color = static_cast<Color>(rng.uniform_index(4));
        l.requirements.push_back({r, f, priv, IntervalSet(lo, hi), op});
        l.cost = {machine.gpu_flops * rng.uniform(1e-6, 1e-4), 0.0};
        const FutureScalar fut = rt.launch(std::move(l));

        // Reconstruct the task's duration from the cluster's roofline to get
        // its start time.
        const double finish = fut.ready_time;
        history.push_back({priv, op, IntervalSet(lo, hi), -1.0, finish});
    }

    // Validate pairwise: conflicting tasks are fully ordered by finish times;
    // since each task's finish ≥ its dependencies' finishes plus its own
    // duration, it suffices that finishes of conflicting pairs are strictly
    // increasing in program order (durations are nonzero).
    for (std::size_t i = 0; i < history.size(); ++i) {
        for (std::size_t j = i + 1; j < history.size(); ++j) {
            if (conflicts(history[i], history[j])) {
                EXPECT_GT(history[j].finish, history[i].finish)
                    << "seed " << GetParam() << ": task " << j
                    << " must serialize after conflicting task " << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DependenceFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

} // namespace
} // namespace kdr::rt
