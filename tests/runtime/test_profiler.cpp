/// Integration tests for the task-level event profiler: critical-path
/// reconstruction against the simulated horizon, Chrome-trace export on a
/// multi-node eager-coalesced solve, agreement between the profiler's
/// communication matrix and the metrics registry, golden-history bitwise
/// stability with profiling on, and the BSP substrate's collective events.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "golden_setup.hpp"
#include "mpisim/bsp.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "runtime/runtime.hpp"
#include "simcluster/fault_model.hpp"
#include "stencil/stencil.hpp"

namespace kdr {
namespace {

using core::golden::run_history_opts;

/// Bitwise comparison of two residual histories (EXPECT_EQ on doubles would
/// accept -0.0 == +0.0 and reject NaN == NaN; the golden layer means bits).
void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                          const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << what << ": history diverges at step " << i << " (" << a[i] << " vs "
            << b[i] << ")";
    }
}

TEST(ProfilerIntegration, CriticalPathMatchesHorizonOnSerialRun) {
    // One node, untraced: every task chains through the single analysis
    // pipeline and processor set, so the longest dependent chain must account
    // for the whole makespan, and its category segments must tile it.
    rt::RuntimeOptions ropts;
    ropts.profile = true;
    rt::Runtime runtime(sim::MachineDesc::lassen(1), ropts);
    core::PlannerOptions popts;
    popts.trace_solver_loops = false;
    const auto history = run_history_opts(runtime, "cg", popts);
    ASSERT_FALSE(history.empty());

    ASSERT_NE(runtime.profiler(), nullptr);
    const obs::CriticalPath path = runtime.profiler()->critical_path();
    EXPECT_NEAR(path.total, runtime.current_time(), 1e-9)
        << "critical path must end at the simulated horizon";
    EXPECT_NEAR(path.category_sum(), path.total, 1e-9)
        << "on-path category costs must sum to the path total";
    EXPECT_GT(path.category_seconds(obs::EventCategory::Kernel), 0.0);
    EXPECT_FALSE(path.by_kind.empty());
}

TEST(ProfilerIntegration, EagerCoalescedTraceExportsNicLanes) {
    // 16 nodes, 64 pieces, coalesced eager exchange plans: inter-node
    // messages must appear on both NIC lanes and survive the JSON round trip.
    rt::RuntimeOptions ropts;
    ropts.profile = true;
    rt::Runtime runtime(sim::MachineDesc::lassen(16), ropts);
    core::PlannerOptions popts;
    popts.comm_plan = true;
    popts.comm_coalesce = true;
    popts.comm_eager = true;

    stencil::Spec spec;
    spec.kind = stencil::Kind::D2P5;
    spec.nx = 32;
    spec.ny = 32;
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(D, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    {
        const auto b = stencil::random_rhs(n, core::golden::kRhsSeed);
        auto bd = runtime.field_data<double>(br, bf);
        std::copy(b.begin(), b.end(), bd.begin());
    }
    core::Planner<double> planner(runtime, popts);
    planner.add_sol_vector(xr, xf, Partition::equal(D, 64));
    planner.add_rhs_vector(br, bf, Partition::equal(D, 64));
    planner.add_operator(
        std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, D)), 0, 0);
    core::CgSolver<double> cg(planner);
    for (int i = 0; i < 10 && cg.status() == core::SolveStatus::running; ++i) cg.step();

    ASSERT_NE(runtime.profiler(), nullptr);
    const obs::Profiler& prof = *runtime.profiler();
    ASSERT_GT(runtime.transfer_count(), 0u) << "test needs inter-node traffic";

    // The emitted document survives the repo's own parser (round trip).
    const obs::json::Value doc = obs::json::Value::parse(prof.to_chrome_trace_json());
    ASSERT_TRUE(doc.has("traceEvents"));
    const obs::json::Value& events = doc["traceEvents"];
    std::set<int> nic_tids;
    std::set<std::pair<int, int>> nic_lanes;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const obs::json::Value& e = events.at(i);
        if (e["ph"].as_string() != "X") continue;
        const int tid = static_cast<int>(e["tid"].as_number());
        if (!prof.is_nic_lane(tid)) continue;
        nic_tids.insert(tid);
        nic_lanes.insert({static_cast<int>(e["pid"].as_number()), tid});
    }
    EXPECT_GE(nic_tids.size(), 2u) << "send and recv NIC lanes must both appear";
    EXPECT_GE(nic_lanes.size(), 2u);

    // write_chrome_trace self-validates the text before writing.
    const std::string path = testing::TempDir() + "kdr_profiler_trace.json";
    EXPECT_NO_THROW(prof.write_chrome_trace(path));

    // The profiler's communication matrix and the metrics registry count the
    // same traffic: totals and every per-edge counter agree.
    double prof_bytes = 0.0;
    std::uint64_t prof_msgs = 0;
    for (const obs::CommEdge& e : prof.comm_matrix()) {
        prof_bytes += e.bytes;
        prof_msgs += e.messages;
        const obs::Labels labels = {{"src", std::to_string(e.src)},
                                    {"dst", std::to_string(e.dst)}};
        EXPECT_DOUBLE_EQ(runtime.metrics().counter_value("transfer_bytes", labels), e.bytes)
            << "edge " << e.src << " -> " << e.dst;
        EXPECT_DOUBLE_EQ(runtime.metrics().counter_value("transfer_count", labels),
                         static_cast<double>(e.messages))
            << "edge " << e.src << " -> " << e.dst;
    }
    EXPECT_DOUBLE_EQ(prof_bytes, runtime.transfer_bytes());
    EXPECT_EQ(prof_msgs, runtime.transfer_count());

    // The solve report folds the same analyses in.
    const obs::SolveReport report = runtime.build_solve_report({}, "running");
    EXPECT_TRUE(report.critical_path.enabled);
    EXPECT_NEAR(report.critical_path.total, prof.critical_path().total, 1e-12);
    EXPECT_NEAR(report.critical_path.category_sum(), report.critical_path.total, 1e-9);
}

TEST(ProfilerIntegration, GoldenHistoriesBitwiseIdenticalWithProfilingOn) {
    // Observation-only by construction: enabling the profiler must not move a
    // single residual bit for any solver, traced or untraced.
    for (const std::string& solver : core::golden::solver_names()) {
        for (const bool traced : {false, true}) {
            core::PlannerOptions popts;
            popts.trace_solver_loops = traced;

            rt::Runtime plain(sim::MachineDesc::lassen(2));
            const auto base = run_history_opts(plain, solver, popts);

            rt::RuntimeOptions ropts;
            ropts.profile = true;
            rt::Runtime profiled(sim::MachineDesc::lassen(2), ropts);
            const auto prof = run_history_opts(profiled, solver, popts);

            expect_bitwise_equal(base, prof,
                                 solver + (traced ? " traced" : " untraced"));
            EXPECT_EQ(plain.current_time(), profiled.current_time())
                << solver << ": profiling must not move virtual time";
            ASSERT_NE(profiled.profiler(), nullptr);
            EXPECT_GT(profiled.profiler()->events_recorded(), 0u);
        }
    }
}

TEST(ProfilerIntegration, FailedAttemptsAreRecorded) {
    rt::RuntimeOptions ropts;
    ropts.profile = true;
    ropts.max_task_retries = 10;
    rt::Runtime runtime(sim::MachineDesc::lassen(2), ropts);
    sim::FaultSpec fs;
    fs.seed = 7;
    fs.task_fail_prob = 0.1;
    runtime.cluster().set_fault_model(std::make_shared<sim::FaultModel>(fs));

    core::PlannerOptions popts;
    popts.trace_solver_loops = false;
    (void)run_history_opts(runtime, "cg", popts);

    std::uint64_t failed = 0;
    runtime.profiler()->for_each_event([&failed](const obs::ProfileEvent& e) {
        if (e.name.find("(failed attempt)") != std::string::npos) ++failed;
    });
    EXPECT_GT(failed, 0u) << "retried attempts must appear as their own events";
}

TEST(ProfilerIntegration, BspSubstrateRecordsComputeAndCollectives) {
    const sim::MachineDesc machine = sim::MachineDesc::lassen(4);
    sim::SimCluster cluster(machine);
    obs::Profiler prof(machine.nodes, machine.gpus_per_node);
    cluster.set_profiler(&prof);

    bsp::BspWorld world(cluster, sim::ProcKind::GPU);
    world.compute_uniform_phase({1e9, 1e9}, 1e-6);
    world.allreduce_phase();
    world.barrier_phase();

    std::uint64_t computes = 0;
    std::uint64_t collectives = 0;
    prof.for_each_event([&](const obs::ProfileEvent& e) {
        if (e.category == obs::EventCategory::Kernel && e.name == "bsp_compute") ++computes;
        if (e.category == obs::EventCategory::Allreduce) {
            ++collectives;
            EXPECT_EQ(e.node, 0) << "collectives live on node 0's collective lane";
            EXPECT_EQ(e.lane, prof.lane_collective());
        }
    });
    EXPECT_EQ(computes, static_cast<std::uint64_t>(world.nranks()));
    EXPECT_EQ(collectives, 2u) << "allreduce + barrier";
    EXPECT_DOUBLE_EQ(prof.profiled_horizon(), world.now());
}

} // namespace
} // namespace kdr
