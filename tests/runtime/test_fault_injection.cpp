/// Runtime-layer fault handling: transient task failures are retried in
/// place against the pre-task region versions, exhaustion surfaces as
/// TaskFailedError with the failed attempt's writes never visible, and a
/// fault during a trace capture/replay drops the captured schedule while
/// keeping the verified prefix.

#include <gtest/gtest.h>

#include <memory>

#include "runtime/runtime.hpp"
#include "simcluster/fault_model.hpp"

namespace kdr::rt {
namespace {

sim::FaultSpec fail_spec(double prob, std::uint64_t seed = 7) {
    sim::FaultSpec s;
    s.seed = seed;
    s.task_fail_prob = prob;
    return s;
}

struct FaultFixture : ::testing::Test {
    Runtime* make_runtime(RuntimeOptions opts = {}) {
        rt = std::make_unique<Runtime>(sim::MachineDesc::lassen(1), opts);
        r = rt->create_region(IndexSpace::create(16), "vec");
        f = rt->add_field<double>(r, "v");
        return rt.get();
    }

    TaskLaunch writing_task(double value) {
        TaskLaunch l;
        l.name = "fill";
        l.cost.flops = 1e6;
        l.requirements.push_back({r, f, Privilege::ReadWrite, IntervalSet(0, 16)});
        l.body = [this, value](TaskContext& ctx) {
            auto span = ctx.field<double>(r, f);
            for (double& x : span) x = value;
        };
        return l;
    }

    std::unique_ptr<Runtime> rt;
    RegionId r{};
    FieldId f{};
};

TEST_F(FaultFixture, TransientFailureIsRetriedAndCounted) {
    make_runtime();
    // fail_prob = 0.3: with 20 tasks some attempts fail, but a retry budget
    // of 3 makes four consecutive failures of one task (p < 1%) unlikely;
    // the seed fixes the schedule so the assertions are deterministic.
    rt->cluster().set_fault_model(std::make_shared<sim::FaultModel>(fail_spec(0.3)));
    for (int i = 0; i < 20; ++i) rt->launch(writing_task(1.0));
    EXPECT_GT(rt->metrics().counter_value("task_faults_injected"), 0.0);
    EXPECT_EQ(rt->metrics().counter_value("task_faults_injected"),
              rt->metrics().counter_value("task_retries"));
    EXPECT_EQ(rt->metrics().counter_value("task_retries_exhausted"), 0.0);
    // Every failed attempt held a write requirement -> rolled back.
    EXPECT_EQ(rt->metrics().counter_value("region_rollbacks"),
              rt->metrics().counter_value("task_faults_injected"));
    // The retried work still ran: data is as a fault-free run would leave it.
    auto data = rt->field_data<double>(r, f);
    for (double x : data) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST_F(FaultFixture, RetriesChargeVirtualTime) {
    make_runtime();
    const double healthy = [this] {
        Runtime clean(sim::MachineDesc::lassen(1));
        const RegionId cr = clean.create_region(IndexSpace::create(16), "vec");
        const FieldId cf = clean.add_field<double>(cr, "v");
        for (int i = 0; i < 20; ++i) {
            TaskLaunch l;
            l.name = "fill";
            l.cost.flops = 1e6;
            l.requirements.push_back({cr, cf, Privilege::ReadWrite, IntervalSet(0, 16)});
            clean.launch(std::move(l));
        }
        return clean.current_time();
    }();
    rt->cluster().set_fault_model(std::make_shared<sim::FaultModel>(fail_spec(0.3)));
    for (int i = 0; i < 20; ++i) {
        TaskLaunch l;
        l.name = "fill";
        l.cost.flops = 1e6;
        l.requirements.push_back({r, f, Privilege::ReadWrite, IntervalSet(0, 16)});
        rt->launch(std::move(l));
    }
    ASSERT_GT(rt->metrics().counter_value("task_faults_injected"), 0.0);
    EXPECT_GT(rt->current_time(), healthy) << "wasted attempts must cost virtual time";
}

TEST_F(FaultFixture, ExhaustedRetriesThrowAndWritesStayInvisible) {
    RuntimeOptions opts;
    opts.max_task_retries = 2;
    make_runtime(opts);
    {
        auto data = rt->field_data<double>(r, f);
        for (double& x : data) x = -3.0; // pre-fault contents
    }
    rt->cluster().set_fault_model(
        std::make_shared<sim::FaultModel>(fail_spec(1.0))); // every attempt dies
    EXPECT_THROW(rt->launch(writing_task(9.0)), TaskFailedError);
    EXPECT_EQ(rt->metrics().counter_value("task_retries_exhausted"), 1.0);
    EXPECT_EQ(rt->metrics().counter_value("task_retries"), 2.0);
    auto data = rt->field_data<double>(r, f);
    for (double x : data) {
        EXPECT_DOUBLE_EQ(x, -3.0) << "failed task's writes must never be visible";
    }
}

TEST_F(FaultFixture, ZeroRetryBudgetFailsFast) {
    RuntimeOptions opts;
    opts.max_task_retries = 0;
    make_runtime(opts);
    rt->cluster().set_fault_model(std::make_shared<sim::FaultModel>(fail_spec(1.0)));
    EXPECT_THROW(rt->launch(writing_task(1.0)), TaskFailedError);
    EXPECT_EQ(rt->metrics().counter_value("task_retries"), 0.0);
    EXPECT_EQ(rt->metrics().counter_value("task_retries_exhausted"), 1.0);
}

TEST_F(FaultFixture, StragglersSlowTasksWithoutFailingThem) {
    make_runtime();
    sim::FaultSpec s;
    s.seed = 11;
    s.slowdown_prob = 1.0;
    s.slowdown_factor = 5.0;
    rt->cluster().set_fault_model(std::make_shared<sim::FaultModel>(s));
    rt->launch(writing_task(2.0));
    EXPECT_EQ(rt->metrics().counter_value("task_stragglers"), 1.0);
    EXPECT_EQ(rt->metrics().counter_value("task_faults_injected"), 0.0);
    auto data = rt->field_data<double>(r, f);
    for (double x : data) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST_F(FaultFixture, FaultDuringCaptureInvalidatesTraceButRunContinues) {
    if (rt == nullptr) make_runtime({});
    if (rt->validating())
        GTEST_SKIP() << "validation forces the full-analysis replay path; no captured schedule exists to invalidate";
    // A generous retry budget: this test is about trace invalidation, not
    // exhaustion, and the fail_prob below is high enough that the default
    // budget occasionally runs out.
    RuntimeOptions opts;
    opts.max_task_retries = 10;
    make_runtime(opts);
    // Record and capture a healthy trace first.
    for (int i = 0; i < 2; ++i) {
        rt->begin_trace(5);
        rt->launch(writing_task(static_cast<double>(i)));
        rt->end_trace();
    }
    const double invalid_before = rt->metrics().counter_value("trace_invalidations");

    // Now inject a guaranteed fault inside the next (fast-replay) instance.
    rt->cluster().set_fault_model(std::make_shared<sim::FaultModel>(fail_spec(0.5, 3)));
    double faults = 0.0;
    for (int i = 0; i < 10 && faults == 0.0; ++i) {
        rt->begin_trace(5);
        rt->launch(writing_task(7.0));
        rt->end_trace();
        faults = rt->metrics().counter_value("task_faults_injected");
    }
    ASSERT_GT(faults, 0.0) << "seeded schedule must inject at least one fault";
    EXPECT_GT(rt->metrics().counter_value("trace_invalidations"), invalid_before)
        << "a fault inside a captured instance must drop the schedule";

    // The trace re-records and the runtime keeps working.
    rt->cluster().set_fault_model(nullptr);
    for (int i = 0; i < 3; ++i) {
        rt->begin_trace(5);
        rt->launch(writing_task(8.0));
        rt->end_trace();
    }
    auto data = rt->field_data<double>(r, f);
    for (double x : data) EXPECT_DOUBLE_EQ(x, 8.0);
}

} // namespace
} // namespace kdr::rt

