/// Dynamic-tracing tests (paper §5 / Lee et al. [12]): a repeated launch
/// sequence is recorded, then verified + captured (both still run — and pay
/// for — full dependence analysis); from the third instance on, the captured
/// dependence schedule replays without any dependence analysis at all, and
/// only that fast path earns the reduced traced overhead. Divergence from
/// the recorded sequence is not an error — the trace gracefully re-records
/// and resumes replay once the new sequence repeats.

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace kdr::rt {
namespace {

/// Validation mode pins every trace to the full-analysis replay path (the
/// shadow race detector audits resolved dependence edges), so assertions
/// about capture/fast-path phases cannot hold under KDR_VALIDATE.
#define KDR_SKIP_IF_VALIDATING()                                                   \
    if (rt.validating()) GTEST_SKIP() << "validation forces the full-analysis replay path"

struct TraceFixture : ::testing::Test {
    sim::MachineDesc machine = [] {
        sim::MachineDesc m = sim::MachineDesc::lassen(1);
        m.gpus_per_node = 1;
        m.task_launch_overhead = 1.0;   // exaggerated so effects are visible
        m.traced_launch_overhead = 0.25;
        m.gpu_launch_overhead = 0.0;
        return m;
    }();
    Runtime rt{machine};
    RegionId r = rt.create_region(IndexSpace::create(100), "vec");
    FieldId f = rt.add_field<double>(r, "v");

    double iteration(const std::string& tag) {
        const double before = rt.current_time();
        TaskLaunch l;
        l.name = tag;
        l.requirements.push_back({r, f, Privilege::ReadWrite, IntervalSet(0, 100)});
        rt.launch(std::move(l));
        return rt.current_time() - before;
    }

    double skipped() { return rt.metrics().counter_value("trace_depanalysis_skipped"); }
    double invalidations() { return rt.metrics().counter_value("trace_invalidations"); }
    double stall() { return rt.metrics().counter_value("analysis_stall_seconds"); }
};

TEST_F(TraceFixture, OverheadDropsOnceScheduleIsCaptured) {
    KDR_SKIP_IF_VALIDATING();
    rt.begin_trace(1);
    const double recording = iteration("step");
    rt.end_trace();
    EXPECT_DOUBLE_EQ(recording, 1.0) << "recording pays full dynamic overhead";

    rt.begin_trace(1);
    EXPECT_TRUE(rt.replaying());
    const double capturing = iteration("step");
    rt.end_trace();
    EXPECT_DOUBLE_EQ(capturing, 1.0)
        << "the capture instance still runs — and pays for — full analysis";

    rt.begin_trace(1);
    const double fast = iteration("step");
    rt.end_trace();
    EXPECT_DOUBLE_EQ(fast, 0.25) << "fast replay pays only the traced overhead";
}

TEST_F(TraceFixture, ReplayRepeatsManyTimes) {
    KDR_SKIP_IF_VALIDATING();
    rt.begin_trace(7);
    iteration("step");
    rt.end_trace();
    for (int i = 0; i < 5; ++i) {
        rt.begin_trace(7);
        // i == 0 is the capture instance (full analysis); fast from then on.
        EXPECT_DOUBLE_EQ(iteration("step"), i == 0 ? 1.0 : 0.25);
        rt.end_trace();
    }
}

TEST_F(TraceFixture, ThirdInstanceSkipsDependenceAnalysis) {
    KDR_SKIP_IF_VALIDATING();
    for (int i = 0; i < 2; ++i) { // record, then capture (analysis still runs)
        rt.begin_trace(1);
        iteration("step");
        rt.end_trace();
        EXPECT_DOUBLE_EQ(skipped(), 0.0);
    }
    const double stall_before = stall();
    rt.begin_trace(1);
    EXPECT_DOUBLE_EQ(iteration("step"), 0.25) << "fast path still pays traced overhead";
    rt.end_trace();
    EXPECT_DOUBLE_EQ(skipped(), 1.0) << "fast path skips analysis per launch";
    EXPECT_DOUBLE_EQ(stall(), stall_before) << "no analysis pipeline, no stall";
}

TEST_F(TraceFixture, FastPathDisabledStillReplays) {
    RuntimeOptions opts;
    opts.trace_fast_path = false;
    Runtime verify(machine, opts);
    const RegionId vr = verify.create_region(IndexSpace::create(100), "vec");
    const FieldId vf = verify.add_field<double>(vr, "v");
    auto step = [&] {
        const double before = verify.current_time();
        TaskLaunch l;
        l.name = "step";
        l.requirements.push_back({vr, vf, Privilege::ReadWrite, IntervalSet(0, 100)});
        verify.launch(std::move(l));
        return verify.current_time() - before;
    };
    for (int i = 0; i < 4; ++i) {
        verify.begin_trace(1);
        const double dt = step();
        verify.end_trace();
        EXPECT_DOUBLE_EQ(dt, 1.0) << "verify-only replay re-analyzes at full cost";
    }
    EXPECT_DOUBLE_EQ(verify.metrics().counter_value("trace_depanalysis_skipped"), 0.0)
        << "verify-only replay runs analysis for every launch";
}

TEST_F(TraceFixture, OutsideTracePaysDynamicOverhead) {
    EXPECT_DOUBLE_EQ(iteration("solo"), 1.0);
    EXPECT_FALSE(rt.replaying());
}

TEST_F(TraceFixture, DivergentReplayRerecordsGracefully) {
    KDR_SKIP_IF_VALIDATING();
    rt.begin_trace(2);
    iteration("a");
    rt.end_trace();

    rt.begin_trace(2);
    EXPECT_DOUBLE_EQ(iteration("b"), 1.0)
        << "a diverging launch drops back to dynamic analysis, not an error";
    rt.end_trace();
    EXPECT_GE(invalidations(), 1.0);

    // The new sequence became the trace: one capture instance, then fast.
    rt.begin_trace(2);
    EXPECT_DOUBLE_EQ(iteration("b"), 1.0);
    rt.end_trace();
    rt.begin_trace(2);
    EXPECT_DOUBLE_EQ(iteration("b"), 0.25);
    rt.end_trace();
}

TEST_F(TraceFixture, ShortReplayAdoptsVerifiedPrefix) {
    KDR_SKIP_IF_VALIDATING();
    rt.begin_trace(3);
    iteration("a");
    iteration("a2");
    rt.end_trace();

    rt.begin_trace(3);
    iteration("a");
    rt.end_trace(); // shorter instance: the verified prefix becomes the trace
    EXPECT_GE(invalidations(), 1.0);

    rt.begin_trace(3);
    EXPECT_DOUBLE_EQ(iteration("a"), 1.0) << "prefix re-captures its schedule";
    rt.end_trace();
    rt.begin_trace(3);
    EXPECT_DOUBLE_EQ(iteration("a"), 0.25);
    rt.end_trace();
}

TEST_F(TraceFixture, ExtraLaunchExtendsTheTrace) {
    KDR_SKIP_IF_VALIDATING();
    rt.begin_trace(4);
    iteration("a");
    rt.end_trace();

    rt.begin_trace(4);
    iteration("a");
    EXPECT_DOUBLE_EQ(iteration("a"), 1.0) << "past the recorded end: re-records";
    rt.end_trace();

    rt.begin_trace(4);
    EXPECT_DOUBLE_EQ(iteration("a"), 1.0); // capture of the extended sequence
    EXPECT_DOUBLE_EQ(iteration("a"), 1.0);
    rt.end_trace();

    rt.begin_trace(4);
    EXPECT_DOUBLE_EQ(iteration("a"), 0.25);
    EXPECT_DOUBLE_EQ(iteration("a"), 0.25);
    rt.end_trace();
}

TEST_F(TraceFixture, StructureChangeInvalidatesCapturedSchedule) {
    KDR_SKIP_IF_VALIDATING();
    for (int i = 0; i < 3; ++i) { // through to a fast instance
        rt.begin_trace(6);
        iteration("step");
        rt.end_trace();
    }
    EXPECT_DOUBLE_EQ(skipped(), 1.0);
    rt.create_region(IndexSpace::create(10), "other"); // moves the structure epoch
    const double inv_before = invalidations();
    rt.begin_trace(6);
    iteration("step"); // re-captures: signatures still match, schedule does not
    rt.end_trace();
    EXPECT_GE(invalidations(), inv_before + 1.0);
    EXPECT_DOUBLE_EQ(skipped(), 1.0) << "the re-capture instance must not skip analysis";

    rt.begin_trace(6);
    iteration("step");
    rt.end_trace();
    EXPECT_DOUBLE_EQ(skipped(), 2.0) << "fast path resumes after one re-capture";
}

TEST_F(TraceFixture, UntracedLaunchBetweenInstancesForcesRecapture) {
    KDR_SKIP_IF_VALIDATING();
    for (int i = 0; i < 3; ++i) {
        rt.begin_trace(8);
        iteration("step");
        rt.end_trace();
    }
    EXPECT_DOUBLE_EQ(skipped(), 1.0);
    iteration("interloper"); // untraced launch: cached relative edges misalign
    rt.begin_trace(8);
    iteration("step");
    rt.end_trace();
    EXPECT_DOUBLE_EQ(skipped(), 1.0) << "instance after an untraced launch re-captures";
}

TEST_F(TraceFixture, NestedTracesRejected) {
    rt.begin_trace(5);
    EXPECT_THROW(rt.begin_trace(6), Error);
    rt.end_trace();
    EXPECT_THROW(rt.end_trace(), Error);
}

TEST_F(TraceFixture, TraceIdZeroRejected) { EXPECT_THROW(rt.begin_trace(0), Error); }

TEST_F(TraceFixture, CancelDropsPartialRecording) {
    rt.begin_trace(9);
    iteration("a");
    rt.cancel_trace();
    EXPECT_FALSE(rt.trace_active());
    rt.begin_trace(9);
    EXPECT_DOUBLE_EQ(iteration("a"), 1.0) << "cancelled recording was discarded";
    rt.end_trace();
}

TEST_F(TraceFixture, DistinctTraceIdsAreIndependent) {
    rt.begin_trace(10);
    iteration("x");
    rt.end_trace();
    rt.begin_trace(11);
    const double other = iteration("y"); // different trace: records, not replays
    rt.end_trace();
    EXPECT_DOUBLE_EQ(other, 1.0);
}

} // namespace
} // namespace kdr::rt
