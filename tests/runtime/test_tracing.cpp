/// Dynamic-tracing tests (paper §5 / Lee et al. [12]): a repeated launch
/// sequence recorded once replays with reduced per-task overhead; divergence
/// from the recorded sequence is an error.

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace kdr::rt {
namespace {

struct TraceFixture : ::testing::Test {
    sim::MachineDesc machine = [] {
        sim::MachineDesc m = sim::MachineDesc::lassen(1);
        m.gpus_per_node = 1;
        m.task_launch_overhead = 1.0;   // exaggerated so effects are visible
        m.traced_launch_overhead = 0.25;
        m.gpu_launch_overhead = 0.0;
        return m;
    }();
    Runtime rt{machine};
    RegionId r = rt.create_region(IndexSpace::create(100), "vec");
    FieldId f = rt.add_field<double>(r, "v");

    double iteration(const std::string& tag) {
        const double before = rt.current_time();
        TaskLaunch l;
        l.name = tag;
        l.requirements.push_back({r, f, Privilege::ReadWrite, IntervalSet(0, 100)});
        rt.launch(std::move(l));
        return rt.current_time() - before;
    }
};

TEST_F(TraceFixture, FirstIterationRecordsSecondReplays) {
    rt.begin_trace(1);
    const double recording = iteration("step");
    rt.end_trace();
    EXPECT_DOUBLE_EQ(recording, 1.0) << "recording pays full dynamic overhead";

    rt.begin_trace(1);
    EXPECT_TRUE(rt.replaying());
    const double replaying = iteration("step");
    rt.end_trace();
    EXPECT_DOUBLE_EQ(replaying, 0.25) << "replay pays traced overhead";
}

TEST_F(TraceFixture, ReplayRepeatsManyTimes) {
    rt.begin_trace(7);
    iteration("step");
    rt.end_trace();
    for (int i = 0; i < 5; ++i) {
        rt.begin_trace(7);
        EXPECT_DOUBLE_EQ(iteration("step"), 0.25);
        rt.end_trace();
    }
}

TEST_F(TraceFixture, OutsideTracePaysDynamicOverhead) {
    EXPECT_DOUBLE_EQ(iteration("solo"), 1.0);
    EXPECT_FALSE(rt.replaying());
}

TEST_F(TraceFixture, DivergentReplayThrows) {
    rt.begin_trace(2);
    iteration("a");
    rt.end_trace();
    rt.begin_trace(2);
    EXPECT_THROW(iteration("b"), Error) << "different task name diverges from the trace";
}

TEST_F(TraceFixture, ShortReplayThrowsAtEnd) {
    rt.begin_trace(3);
    iteration("a");
    iteration("a2");
    rt.end_trace();
    rt.begin_trace(3);
    iteration("a");
    EXPECT_THROW(rt.end_trace(), Error) << "replay must run the full recorded sequence";
}

TEST_F(TraceFixture, ExtraLaunchInReplayThrows) {
    rt.begin_trace(4);
    iteration("a");
    rt.end_trace();
    rt.begin_trace(4);
    iteration("a");
    EXPECT_THROW(iteration("a"), Error);
}

TEST_F(TraceFixture, NestedTracesRejected) {
    rt.begin_trace(5);
    EXPECT_THROW(rt.begin_trace(6), Error);
    rt.end_trace();
    EXPECT_THROW(rt.end_trace(), Error);
}

TEST_F(TraceFixture, DistinctTraceIdsAreIndependent) {
    rt.begin_trace(10);
    iteration("x");
    rt.end_trace();
    rt.begin_trace(11);
    const double other = iteration("y"); // different trace: records, not replays
    rt.end_trace();
    EXPECT_DOUBLE_EQ(other, 1.0);
}

} // namespace
} // namespace kdr::rt
