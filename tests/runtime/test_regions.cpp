#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace kdr::rt {
namespace {

sim::MachineDesc machine4() {
    sim::MachineDesc m = sim::MachineDesc::lassen(4);
    m.gpus_per_node = 1;
    return m;
}

TEST(Regions, CreateAndAccessFields) {
    Runtime rt(machine4());
    const IndexSpace space = IndexSpace::create(100, "D");
    const RegionId r = rt.create_region(space, "x_region");
    const FieldId f = rt.add_field<double>(r, "values");
    auto data = rt.field_data<double>(r, f);
    EXPECT_EQ(data.size(), 100u);
    data[42] = 3.5;
    EXPECT_DOUBLE_EQ(rt.field_data<double>(r, f)[42], 3.5);
    EXPECT_EQ(rt.region(r).name(), "x_region");
    EXPECT_EQ(rt.region(r).space(), space);
}

TEST(Regions, FieldsZeroInitialized) {
    Runtime rt(machine4());
    const RegionId r = rt.create_region(IndexSpace::create(10), "r");
    const FieldId f = rt.add_field<double>(r, "v");
    for (double v : rt.field_data<double>(r, f)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Regions, MultipleFieldsIndependent) {
    Runtime rt(machine4());
    const RegionId r = rt.create_region(IndexSpace::create(8), "r");
    const FieldId a = rt.add_field<double>(r, "a");
    const FieldId b = rt.add_field<double>(r, "b");
    rt.field_data<double>(r, a)[0] = 1.0;
    EXPECT_DOUBLE_EQ(rt.field_data<double>(r, b)[0], 0.0);
    EXPECT_EQ(rt.region(r).field_count(), 2u);
}

TEST(Regions, TypedAccessChecksElementSize) {
    Runtime rt(machine4());
    const RegionId r = rt.create_region(IndexSpace::create(8), "r");
    const FieldId f = rt.add_field<double>(r, "v");
    EXPECT_THROW((void)rt.field_data<float>(r, f), Error);
}

TEST(Regions, PhantomFieldsRefuseDataAccess) {
    Runtime rt(machine4(), {.materialize = false});
    const RegionId r = rt.create_region(IndexSpace::create(1 << 20), "big");
    const FieldId f = rt.add_field<double>(r, "v");
    EXPECT_THROW((void)rt.field_data<double>(r, f), Error);
    EXPECT_FALSE(rt.functional());
}

TEST(Regions, UnknownIdsThrow) {
    Runtime rt(machine4());
    EXPECT_THROW((void)rt.region(0), Error);
    const RegionId r = rt.create_region(IndexSpace::create(4), "r");
    EXPECT_THROW((void)rt.region(r).field(0), Error);
}

TEST(Regions, DefaultHomeIsNodeZero) {
    Runtime rt(machine4());
    const RegionId r = rt.create_region(IndexSpace::create(16), "r");
    const FieldId f = rt.add_field<double>(r, "v");
    EXPECT_EQ(rt.home_node(r, f, IntervalSet(0, 16)), 0);
}

TEST(Regions, SetHomeFromPartition) {
    Runtime rt(machine4());
    const IndexSpace space = IndexSpace::create(16);
    const RegionId r = rt.create_region(space, "r");
    const FieldId f = rt.add_field<double>(r, "v");
    const Partition p = Partition::equal(space, 4);
    rt.set_home_from_partition(r, f, p, {0, 1, 2, 3});
    EXPECT_EQ(rt.home_node(r, f, p.piece(0)), 0);
    EXPECT_EQ(rt.home_node(r, f, p.piece(2)), 2);
    EXPECT_EQ(rt.home_node(r, f, IntervalSet(4, 8)), 1);
}

TEST(Regions, SetHomeValidatesNodes) {
    Runtime rt(machine4());
    const IndexSpace space = IndexSpace::create(16);
    const RegionId r = rt.create_region(space, "r");
    const FieldId f = rt.add_field<double>(r, "v");
    EXPECT_THROW(rt.set_home(r, f, {{IntervalSet(0, 16), 9}}), Error);
    EXPECT_THROW(rt.set_home(r, f, {}), Error);
    const Partition p = Partition::equal(space, 2);
    EXPECT_THROW(rt.set_home_from_partition(r, f, p, {0}), Error);
}

} // namespace
} // namespace kdr::rt
