#include <gtest/gtest.h>

#include "runtime/runtime.hpp"

namespace kdr::rt {
namespace {

TEST(RoundRobinMapper, GpuColorsCycleNodeMajor) {
    RoundRobinMapper m;
    sim::MachineDesc machine = sim::MachineDesc::lassen(2); // 2 nodes x 4 GPUs
    TaskLaunch l;
    l.proc_kind = sim::ProcKind::GPU;
    for (Color c = 0; c < 16; ++c) {
        l.color = c;
        const sim::ProcId p = m.select_processor(l, machine);
        EXPECT_EQ(p.kind, sim::ProcKind::GPU);
        EXPECT_EQ(p.node, static_cast<int>((c % 8) / 4));
        EXPECT_EQ(p.index, static_cast<int>(c % 4));
    }
}

TEST(RoundRobinMapper, CpuColorsCycleNodes) {
    RoundRobinMapper m;
    sim::MachineDesc machine = sim::MachineDesc::lassen(3);
    TaskLaunch l;
    l.proc_kind = sim::ProcKind::CPU;
    for (Color c = 0; c < 9; ++c) {
        l.color = c;
        const sim::ProcId p = m.select_processor(l, machine);
        EXPECT_EQ(p.kind, sim::ProcKind::CPU);
        EXPECT_EQ(p.node, static_cast<int>(c % 3));
        EXPECT_EQ(p.index, 0);
    }
}

TEST(RoundRobinMapper, GpuRequestFallsBackToCpuWhenNoGpus) {
    RoundRobinMapper m;
    sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    machine.gpus_per_node = 0;
    TaskLaunch l;
    l.proc_kind = sim::ProcKind::GPU;
    l.color = 1;
    const sim::ProcId p = m.select_processor(l, machine);
    EXPECT_EQ(p.kind, sim::ProcKind::CPU);
}

/// Custom mapper: all tasks on one processor — verifies the runtime honors
/// mapper decisions (and that a bad mapping serializes everything, which is
/// exactly what the Fig 10 experiment exploits in reverse).
class PinningMapper final : public Mapper {
public:
    explicit PinningMapper(sim::ProcId p) : pin_(p) {}
    sim::ProcId select_processor(const TaskLaunch&, const sim::MachineDesc&) override {
        return pin_;
    }

private:
    sim::ProcId pin_;
};

TEST(CustomMapper, PinningSerializesIndependentTasks) {
    sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    machine.gpus_per_node = 2;
    machine.task_launch_overhead = 0.0;
    machine.gpu_launch_overhead = 0.0;
    Runtime rt(machine);
    const RegionId r = rt.create_region(IndexSpace::create(100), "v");
    const FieldId f = rt.add_field<double>(r, "x");

    auto launch_piece = [&](Color c, gidx lo, gidx hi) {
        TaskLaunch l;
        l.name = "w";
        l.requirements.push_back({r, f, Privilege::WriteOnly, IntervalSet(lo, hi)});
        l.cost = {machine.gpu_flops, 0.0}; // 1 second
        l.color = c;
        return rt.launch(std::move(l));
    };

    // Default round-robin: disjoint pieces in parallel.
    const FutureScalar a = launch_piece(0, 0, 50);
    const FutureScalar b = launch_piece(1, 50, 100);
    EXPECT_DOUBLE_EQ(a.ready_time, 1.0);
    EXPECT_DOUBLE_EQ(b.ready_time, 1.0);

    // Pinned: the same pattern serializes on one GPU.
    rt.set_mapper(std::make_unique<PinningMapper>(sim::ProcId{0, sim::ProcKind::GPU, 0}));
    const FutureScalar c = launch_piece(0, 0, 50);
    const FutureScalar d = launch_piece(1, 50, 100);
    EXPECT_DOUBLE_EQ(c.ready_time, 2.0);
    EXPECT_DOUBLE_EQ(d.ready_time, 3.0);
}

TEST(Profiling, RecordsTaskTimeline) {
    sim::MachineDesc machine = sim::MachineDesc::lassen(1);
    machine.task_launch_overhead = 0.0;
    machine.gpu_launch_overhead = 0.0;
    Runtime rt(machine, {.materialize = true, .profiling = true});
    const RegionId r = rt.create_region(IndexSpace::create(10), "v");
    const FieldId f = rt.add_field<double>(r, "x");
    TaskLaunch l;
    l.name = "probe";
    l.requirements.push_back({r, f, Privilege::WriteOnly, IntervalSet(0, 10)});
    l.cost = {machine.gpu_flops, 0.0};
    rt.launch(std::move(l));
    auto profiles = rt.take_profiles();
    ASSERT_EQ(profiles.size(), 1u);
    EXPECT_EQ(profiles[0].name, "probe");
    EXPECT_DOUBLE_EQ(profiles[0].start, 0.0);
    EXPECT_DOUBLE_EQ(profiles[0].finish, 1.0);
    EXPECT_TRUE(rt.take_profiles().empty()) << "take_profiles drains the buffer";
}

} // namespace
} // namespace kdr::rt
