/// Validation-mode tests: typed requirement-scoped accessors must reject
/// every access outside the declared (subset, privilege) contract with a
/// diagnostic naming the task, requirement, and index; the shadow race
/// detector must flag conflicting actual accesses between DAG-unordered
/// tasks; over-declared subsets must be linted; and the field type tag must
/// reject same-size reinterpretation. Deliberately broken kernels here are
/// the negative controls for the clean solver runs in
/// tests/core/test_validation_solvers.cpp.

#include "runtime/validation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace kdr::rt {
namespace {

struct ValidationFixture : ::testing::Test {
    static RuntimeOptions strict() {
        RuntimeOptions o;
        o.validate = true;
        return o;
    }
    static RuntimeOptions warn_only() {
        RuntimeOptions o;
        o.validate_warn_only = true;
        return o;
    }

    void make(const RuntimeOptions& opts) {
        rt = std::make_unique<Runtime>(sim::MachineDesc::lassen(1), opts);
        r = rt->create_region(IndexSpace::create(16, "D"), "vec");
        f = rt->add_field<double>(r, "v");
    }

    TaskLaunch task(std::string name, Privilege priv, IntervalSet subset,
                    std::function<void(TaskContext&)> body, ReductionOp redop = kNoReduction) {
        TaskLaunch l;
        l.name = std::move(name);
        l.requirements.push_back({r, f, priv, std::move(subset), redop});
        l.body = std::move(body);
        return l;
    }

    /// Launch and return the PrivilegeError message the body triggers.
    std::string launch_expect_violation(TaskLaunch l) {
        try {
            rt->launch(std::move(l));
        } catch (const PrivilegeError& e) {
            return e.what();
        }
        ADD_FAILURE() << "expected a PrivilegeError";
        return {};
    }

    std::unique_ptr<Runtime> rt;
    RegionId r{};
    FieldId f{};
};

// --------------------------------------------------------- subset contract

TEST_F(ValidationFixture, WriteOutsideDeclaredSubsetNamesTaskReqAndIndex) {
    make(strict());
    const std::string msg =
        launch_expect_violation(task("under", Privilege::ReadWrite, IntervalSet(0, 8),
                                     [](TaskContext& ctx) {
                                         auto v = ctx.accessor<double>(0);
                                         v[12] = 1.0; // declared [0,8), touches 12
                                     }));
    EXPECT_NE(msg.find("privilege violation"), std::string::npos) << msg;
    EXPECT_NE(msg.find("task 'under' req 0 (region 'vec' field 'v', ReadWrite)"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("write at index 12"), std::string::npos) << msg;
    EXPECT_NE(msg.find("outside the declared subset {[0,8)}"), std::string::npos) << msg;
    EXPECT_EQ(rt->metrics().counter_value("privilege_violations"), 1.0);
}

TEST_F(ValidationFixture, ReadOutsideDeclaredSubsetIsRejected) {
    make(strict());
    const std::string msg = launch_expect_violation(
        task("reader", Privilege::ReadOnly, IntervalSet(4, 8), [](TaskContext& ctx) {
            auto v = ctx.accessor<const double>(0);
            (void)v[2];
        }));
    EXPECT_NE(msg.find("read at index 2 outside the declared subset {[4,8)}"),
              std::string::npos)
        << msg;
}

TEST_F(ValidationFixture, InSubsetAccessesPassCleanly) {
    make(strict());
    rt->launch(task("ok", Privilege::ReadWrite, IntervalSet(0, 8), [](TaskContext& ctx) {
        auto v = ctx.accessor<double>(0);
        for (std::size_t i = 0; i < 8; ++i) v[i] = static_cast<double>(i);
        for (std::size_t i = 0; i < 8; ++i) v[i] += 1.0;
    }));
    EXPECT_EQ(rt->metrics().counter_value("privilege_violations"), 0.0);
    EXPECT_EQ(rt->metrics().counter_value("validated_tasks"), 1.0);
    auto data = rt->field_data<double>(r, f);
    EXPECT_DOUBLE_EQ(data[3], 4.0);
}

// ------------------------------------------------------ privilege contract

TEST_F(ValidationFixture, WriteThroughReadOnlyIsRejected) {
    make(strict());
    const std::string msg = launch_expect_violation(
        task("ro_writer", Privilege::ReadOnly, IntervalSet(0, 16), [](TaskContext& ctx) {
            auto v = ctx.accessor<double>(0); // mutable view over a ReadOnly req
            v[3] = 7.0;
        }));
    EXPECT_NE(msg.find("write at index 3 violates ReadOnly"), std::string::npos) << msg;
}

TEST_F(ValidationFixture, RmwThroughReadOnlyIsRejected) {
    make(strict());
    const std::string msg = launch_expect_violation(
        task("ro_rmw", Privilege::ReadOnly, IntervalSet(0, 16), [](TaskContext& ctx) {
            auto v = ctx.accessor<double>(0);
            v[5] += 1.0;
        }));
    EXPECT_NE(msg.find("read-modify-write at index 5 violates ReadOnly"), std::string::npos)
        << msg;
}

TEST_F(ValidationFixture, ReadOfWriteOnlyDataBeforeWritingIsRejected) {
    make(strict());
    const std::string msg = launch_expect_violation(
        task("wo_reader", Privilege::WriteOnly, IntervalSet(0, 16), [](TaskContext& ctx) {
            auto v = ctx.accessor<double>(0);
            (void)static_cast<double>(v[9]); // read-before-write
        }));
    EXPECT_NE(msg.find("read at index 9 of WriteOnly data not yet written by this task"),
              std::string::npos)
        << msg;
}

TEST_F(ValidationFixture, WriteOnlyMayReadBackItsOwnWrites) {
    // The matmul β=0 pattern: zero-initialize, then accumulate. Reading or
    // RMW-ing an element this task already wrote is legal under WriteOnly.
    make(strict());
    rt->launch(task("wo_accum", Privilege::WriteOnly, IntervalSet(0, 16),
                    [](TaskContext& ctx) {
                        auto v = ctx.accessor<double>(0);
                        for (std::size_t i = 0; i < 16; ++i) v[i] = 0.0;
                        for (std::size_t i = 0; i < 16; ++i) v[i] += 2.0;
                    }));
    EXPECT_EQ(rt->metrics().counter_value("privilege_violations"), 0.0);
}

TEST_F(ValidationFixture, ReducePermitsRmwButRejectsPlainReadAndWrite) {
    make(strict());
    rt->launch(task("red_ok", Privilege::Reduce, IntervalSet(0, 16),
                    [](TaskContext& ctx) {
                        auto v = ctx.accessor<double>(0);
                        v[1] += 0.5; // the reduction combine is exactly an RMW
                    },
                    kSumReduction));
    EXPECT_EQ(rt->metrics().counter_value("privilege_violations"), 0.0);

    const std::string wmsg = launch_expect_violation(
        task("red_writer", Privilege::Reduce, IntervalSet(0, 16),
             [](TaskContext& ctx) {
                 auto v = ctx.accessor<double>(0);
                 v[2] = 1.0;
             },
             kSumReduction));
    EXPECT_NE(wmsg.find("non-reduction write at index 2 violates Reduce"), std::string::npos)
        << wmsg;
}

// -------------------------------------------------- undeclared and bounds

TEST_F(ValidationFixture, UndeclaredFieldAccessIsRejected) {
    make(strict());
    const FieldId g = rt->add_field<double>(r, "other");
    TaskLaunch l = task("sneaky", Privilege::ReadWrite, IntervalSet(0, 16),
                        [this, g](TaskContext& ctx) {
                            (void)ctx.field<double>(r, g); // not in any requirement
                        });
    const std::string msg = launch_expect_violation(std::move(l));
    EXPECT_NE(msg.find("task 'sneaky' accesses region 'vec' field 'other' with no declared "
                       "requirement"),
              std::string::npos)
        << msg;
}

TEST_F(ValidationFixture, AccessorForMissingRequirementThrows) {
    make(strict());
    EXPECT_THROW(rt->launch(task("overreach", Privilege::ReadOnly, IntervalSet(0, 16),
                                 [](TaskContext& ctx) {
                                     (void)ctx.accessor<const double>(3);
                                 })),
                 PrivilegeError);
}

TEST_F(ValidationFixture, OutOfStorageAccessThrowsEvenInWarnOnlyMode) {
    make(warn_only());
    // Warn-only downgrades contract violations, but an index outside the
    // field storage cannot be continued: the load/store itself is unsafe.
    EXPECT_THROW(rt->launch(task("oob", Privilege::ReadWrite, IntervalSet(0, 16),
                                 [](TaskContext& ctx) {
                                     auto v = ctx.accessor<double>(0);
                                     v[20] = 1.0;
                                 })),
                 PrivilegeError);
}

// ------------------------------------------------------------- warn-only

TEST_F(ValidationFixture, WarnOnlyRecordsViolationAndContinues) {
    make(warn_only());
    rt->launch(task("warned", Privilege::ReadOnly, IntervalSet(0, 8), [](TaskContext& ctx) {
        auto v = ctx.accessor<double>(0);
        v[2] = 9.0; // violates ReadOnly — warned, then performed
    }));
    ASSERT_NE(rt->validator(), nullptr);
    EXPECT_EQ(rt->validator()->violations(), 1u);
    ASSERT_FALSE(rt->validator()->warnings().empty());
    EXPECT_NE(rt->validator()->warnings().front().find("violates ReadOnly"),
              std::string::npos);
    auto data = rt->field_data<double>(r, f);
    EXPECT_DOUBLE_EQ(data[2], 9.0) << "warn-only performs the access after recording";
}

// -------------------------------------------------------- race detection

TEST_F(ValidationFixture, ShadowDetectorFlagsUnorderedConflictingAccesses) {
    make(warn_only());
    // Task A declares and writes [0,4). Task B declares the disjoint [8,12)
    // — so dependence analysis orders them with no edge — but actually also
    // writes index 2. The under-declaration is a warned violation, and the
    // recorded touched sets overlap with no DAG path: a race pair.
    rt->launch(task("writerA", Privilege::WriteOnly, IntervalSet(0, 4),
                    [](TaskContext& ctx) {
                        auto v = ctx.accessor<double>(0);
                        for (std::size_t i = 0; i < 4; ++i) v[i] = 1.0;
                    }));
    rt->launch(task("writerB", Privilege::WriteOnly, IntervalSet(8, 12),
                    [](TaskContext& ctx) {
                        auto v = ctx.accessor<double>(0);
                        for (std::size_t i = 8; i < 12; ++i) v[i] = 2.0;
                        v[2] = 2.0; // out of subset: invisible to the analysis
                    }));
    ASSERT_NE(rt->validator(), nullptr);
    EXPECT_EQ(rt->validator()->race_pairs(), 1u);
    EXPECT_EQ(rt->metrics().counter_value("race_pairs"), 1.0);
    bool saw = false;
    for (const std::string& w : rt->validator()->warnings()) {
        if (w.find("possible race") != std::string::npos &&
            w.find("writerA") != std::string::npos &&
            w.find("writerB") != std::string::npos &&
            w.find("{[2,3)}") != std::string::npos) {
            saw = true;
        }
    }
    EXPECT_TRUE(saw) << "race warning must name both tasks and the overlap";
}

TEST_F(ValidationFixture, OrderedConflictingAccessesAreNotRaces) {
    make(strict());
    // Overlapping declared subsets: the analysis orders the tasks, so the
    // same actual overlap is not a race.
    rt->launch(task("first", Privilege::WriteOnly, IntervalSet(0, 8), [](TaskContext& ctx) {
        auto v = ctx.accessor<double>(0);
        for (std::size_t i = 0; i < 8; ++i) v[i] = 1.0;
    }));
    rt->launch(task("second", Privilege::ReadWrite, IntervalSet(0, 8), [](TaskContext& ctx) {
        auto v = ctx.accessor<double>(0);
        for (std::size_t i = 0; i < 8; ++i) v[i] += 1.0;
    }));
    EXPECT_EQ(rt->validator()->race_pairs(), 0u);
}

// ------------------------------------------------- over-declaration lint

TEST_F(ValidationFixture, OverDeclaredSubsetIsLinted) {
    make(strict());
    rt->launch(task("fat", Privilege::ReadWrite, IntervalSet(0, 16), [](TaskContext& ctx) {
        auto v = ctx.accessor<double>(0);
        for (std::size_t i = 0; i < 8; ++i) v[i] = 1.0; // half the declaration
    }));
    ASSERT_NE(rt->validator(), nullptr);
    EXPECT_EQ(rt->validator()->overdeclared(), 1u);
    EXPECT_EQ(rt->metrics().counter_value("overdeclared_reqs"), 1.0);
    ASSERT_FALSE(rt->validator()->warnings().empty());
    const std::string& w = rt->validator()->warnings().front();
    EXPECT_NE(w.find("over-declaration"), std::string::npos) << w;
    EXPECT_NE(w.find("declared {[0,16)} but touched only {[0,8)}"), std::string::npos) << w;
    EXPECT_NE(w.find("8 elements never accessed"), std::string::npos) << w;
}

TEST_F(ValidationFixture, UnusedRequirementIsNotLinted) {
    make(strict());
    // A requirement the body never takes an accessor for models cost or
    // dependence only (phantom matrix entries) — not an over-declaration.
    rt->launch(task("modeling", Privilege::ReadOnly, IntervalSet(0, 16),
                    [](TaskContext&) { /* no data access */ }));
    EXPECT_EQ(rt->validator()->overdeclared(), 0u);
}

// --------------------------------------------------------- field type tag

TEST_F(ValidationFixture, FieldTypeTagRejectsSameSizeReinterpretation) {
    make(strict());
    // double and int64 have the same size; reinterpreting used to be silent.
    EXPECT_THROW((void)rt->field_data<std::int64_t>(r, f), Error);
    // The declared type keeps working.
    auto ok = rt->field_data<double>(r, f);
    EXPECT_EQ(ok.size(), 16u);
}

TEST_F(ValidationFixture, FieldTypeTagAppliesInsideTaskBodies) {
    make(strict());
    TaskLaunch l = task("typed", Privilege::ReadWrite, IntervalSet(0, 16),
                        [this](TaskContext& ctx) {
                            (void)ctx.field<std::uint64_t>(r, f);
                        });
    EXPECT_THROW(rt->launch(std::move(l)), Error);
}

// ---------------------------------------------------- traces + reporting

TEST_F(ValidationFixture, TracedLoopsStayOnAnalysisPathAndKeepValidating) {
    make(strict());
    for (int i = 0; i < 4; ++i) {
        rt->begin_trace(1);
        rt->launch(task("loop", Privilege::ReadWrite, IntervalSet(0, 16),
                        [](TaskContext& ctx) {
                            auto v = ctx.accessor<double>(0);
                            for (std::size_t k = 0; k < 16; ++k) v[k] += 1.0;
                        }));
        rt->end_trace();
    }
    EXPECT_EQ(rt->metrics().counter_value("trace_depanalysis_skipped"), 0.0)
        << "validation must pin traces to the full-analysis replay path";
    EXPECT_EQ(rt->metrics().counter_value("validated_tasks"), 4.0);
    EXPECT_EQ(rt->validator()->violations(), 0u);
}

TEST_F(ValidationFixture, SolveReportCarriesValidationStats) {
    make(warn_only());
    rt->launch(task("warned", Privilege::ReadOnly, IntervalSet(0, 8), [](TaskContext& ctx) {
        auto v = ctx.accessor<double>(0);
        v[1] = 1.0;
    }));
    const obs::SolveReport rep = rt->build_solve_report({});
    EXPECT_TRUE(rep.validation.enabled);
    EXPECT_EQ(rep.validation.tasks_checked, 1u);
    EXPECT_EQ(rep.validation.violations, 1u);
    EXPECT_TRUE(rep.validation.any());

    // With no options asked for, the section is enabled exactly when the
    // KDR_VALIDATE environment variable forces validation on.
    Runtime plain(sim::MachineDesc::lassen(1));
    EXPECT_EQ(plain.build_solve_report({}).validation.enabled, plain.validating());
}

TEST_F(ValidationFixture, ValidationOffHandsOutHookFreeViews) {
    RuntimeOptions o; // validation off (unless KDR_VALIDATE forces it)
    make(o);
    rt->launch(task("plain", Privilege::ReadWrite, IntervalSet(0, 16),
                    [this](TaskContext& ctx) {
                        auto v = ctx.accessor<double>(0);
                        EXPECT_EQ(v.hook() != nullptr, rt->validating())
                            << "hooks must exist exactly when validating";
                        v[0] = 1.0;
                    }));
}

} // namespace
} // namespace kdr::rt
