#include "runtime/trace_export.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace kdr::rt {
namespace {

std::vector<TaskProfile> sample_profiles() {
    return {
        {"matmul", {0, sim::ProcKind::GPU, 1}, 0.0, 1.5e-3, 5},
        {"dot \"quoted\"\n", {1, sim::ProcKind::CPU, 0}, 2.0e-3, 2.5e-3, 7},
    };
}

TEST(ChromeTrace, EmitsCompleteEventsWithVirtualMicroseconds) {
    const std::string json = to_chrome_trace(sample_profiles());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"matmul\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1500"), std::string::npos) << "1.5 ms -> 1500 us";
    EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(json.find("gpu1"), std::string::npos);
    EXPECT_NE(json.find("cpu0"), std::string::npos);
}

TEST(ChromeTrace, EscapesJsonSpecials) {
    const std::string json = to_chrome_trace(sample_profiles());
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_EQ(json.find("\"quoted\"\n\""), std::string::npos);
}

TEST(ChromeTrace, EmptyProfileIsValidJson) {
    const std::string json = to_chrome_trace({});
    EXPECT_EQ(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(ChromeTrace, WritesFileAndRejectsBadPath) {
    const std::string path = ::testing::TempDir() + "/kdr_trace.json";
    write_chrome_trace(path, sample_profiles());
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, to_chrome_trace(sample_profiles()));
    EXPECT_THROW(write_chrome_trace("/nonexistent/dir/x.json", {}), Error);
}

TEST(ChromeTrace, EndToEndFromRuntimeProfiles) {
    sim::MachineDesc m = sim::MachineDesc::lassen(1);
    Runtime rt(m, {.materialize = true, .profiling = true});
    const RegionId r = rt.create_region(IndexSpace::create(64), "v");
    const FieldId f = rt.add_field<double>(r, "x");
    for (int i = 0; i < 3; ++i) {
        TaskLaunch l;
        l.name = "step" + std::to_string(i);
        l.requirements.push_back({r, f, Privilege::ReadWrite, IntervalSet(0, 64)});
        l.cost = {1e6, 1e6};
        rt.launch(std::move(l));
    }
    const auto profiles = rt.take_profiles();
    ASSERT_EQ(profiles.size(), 3u);
    const std::string json = to_chrome_trace(profiles);
    EXPECT_NE(json.find("step0"), std::string::npos);
    EXPECT_NE(json.find("step2"), std::string::npos);
    // Events are ordered and non-overlapping on the single GPU row.
    EXPECT_LT(profiles[0].finish, profiles[1].start + 1e-12);
    EXPECT_LT(profiles[1].finish, profiles[2].start + 1e-12);
}

} // namespace
} // namespace kdr::rt
