/// Dependence-analysis tests: the runtime must serialize conflicting
/// accesses and parallelize independent ones in virtual time — Legion's
/// privilege/coherence rules (paper §5).

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"

namespace kdr::rt {
namespace {

struct Fixture : ::testing::Test {
    sim::MachineDesc machine = [] {
        sim::MachineDesc m = sim::MachineDesc::lassen(2);
        m.gpus_per_node = 2;
        m.task_launch_overhead = 0.0; // keep arithmetic exact in these tests
        m.gpu_launch_overhead = 0.0;
        m.nic_latency = 0.0;
        m.nic_message_overhead = 0.0;
        m.nic_bandwidth = 1e30; // make data movement negligible here;
        m.intra_node_bandwidth = 1e30; // transfer costs get their own tests
        return m;
    }();
    Runtime rt{machine};
    IndexSpace space = IndexSpace::create(1000, "D");
    RegionId r = rt.create_region(space, "vec");
    FieldId f = rt.add_field<double>(r, "v");

    /// Launch a no-op task with a fixed 1-second duration on a chosen color.
    FutureScalar run(Privilege priv, IntervalSet subset, Color color,
                     std::vector<double> scalar_deps = {}) {
        TaskLaunch l;
        l.name = "t";
        l.requirements.push_back({r, f, priv, std::move(subset)});
        // flops chosen so each task takes exactly 1s on a V100.
        l.cost = {machine.gpu_flops, 0.0};
        l.color = color;
        l.scalar_deps = std::move(scalar_deps);
        return rt.launch(std::move(l));
    }
};

TEST_F(Fixture, ReadAfterWriteSerializes) {
    const FutureScalar w = run(Privilege::WriteOnly, IntervalSet(0, 1000), 0);
    const FutureScalar rd = run(Privilege::ReadOnly, IntervalSet(0, 1000), 1);
    EXPECT_DOUBLE_EQ(w.ready_time, 1.0);
    EXPECT_DOUBLE_EQ(rd.ready_time, 2.0) << "reader must wait for the writer";
}

TEST_F(Fixture, WriteAfterReadSerializes) {
    run(Privilege::WriteOnly, IntervalSet(0, 1000), 0);
    const FutureScalar rd = run(Privilege::ReadOnly, IntervalSet(0, 1000), 1);
    const FutureScalar w2 = run(Privilege::WriteOnly, IntervalSet(0, 1000), 2);
    EXPECT_DOUBLE_EQ(w2.ready_time, rd.ready_time + 1.0);
}

TEST_F(Fixture, WriteAfterWriteSerializes) {
    const FutureScalar w1 = run(Privilege::WriteOnly, IntervalSet(0, 1000), 0);
    const FutureScalar w2 = run(Privilege::WriteOnly, IntervalSet(0, 1000), 1);
    EXPECT_DOUBLE_EQ(w2.ready_time, w1.ready_time + 1.0);
}

TEST_F(Fixture, IndependentReadsRunConcurrently) {
    run(Privilege::WriteOnly, IntervalSet(0, 1000), 0);
    const FutureScalar r1 = run(Privilege::ReadOnly, IntervalSet(0, 1000), 1);
    const FutureScalar r2 = run(Privilege::ReadOnly, IntervalSet(0, 1000), 2);
    EXPECT_DOUBLE_EQ(r1.ready_time, 2.0);
    EXPECT_DOUBLE_EQ(r2.ready_time, 2.0) << "readers on distinct GPUs overlap";
}

TEST_F(Fixture, DisjointWritesRunConcurrently) {
    const FutureScalar w1 = run(Privilege::WriteOnly, IntervalSet(0, 500), 0);
    const FutureScalar w2 = run(Privilege::WriteOnly, IntervalSet(500, 1000), 1);
    EXPECT_DOUBLE_EQ(w1.ready_time, 1.0);
    EXPECT_DOUBLE_EQ(w2.ready_time, 1.0) << "disjoint subsets do not conflict";
}

TEST_F(Fixture, OverlappingWritesSerialize) {
    const FutureScalar w1 = run(Privilege::WriteOnly, IntervalSet(0, 600), 0);
    const FutureScalar w2 = run(Privilege::WriteOnly, IntervalSet(400, 1000), 1);
    EXPECT_DOUBLE_EQ(w2.ready_time, w1.ready_time + 1.0);
}

TEST_F(Fixture, SameOpReductionsCommute) {
    const auto reduce = [&](Color c, ReductionOp op) {
        TaskLaunch l;
        l.name = "red";
        l.requirements.push_back({r, f, Privilege::Reduce, IntervalSet(0, 1000), op});
        l.cost = {machine.gpu_flops, 0.0};
        l.color = c;
        return rt.launch(std::move(l));
    };
    const FutureScalar a = reduce(0, kSumReduction);
    const FutureScalar b = reduce(1, kSumReduction);
    EXPECT_DOUBLE_EQ(a.ready_time, 1.0);
    EXPECT_DOUBLE_EQ(b.ready_time, 1.0) << "same-op reductions run concurrently";
    // A different op conflicts with both.
    const FutureScalar c = reduce(2, kSumReduction + 1);
    EXPECT_DOUBLE_EQ(c.ready_time, 2.0);
    // A read conflicts with all pending reductions.
    const FutureScalar rd = run(Privilege::ReadOnly, IntervalSet(0, 1000), 3);
    EXPECT_DOUBLE_EQ(rd.ready_time, 3.0);
}

TEST_F(Fixture, WriteSupersedesCoveredAccesses) {
    // After a full overwrite, a new reader depends only on the overwrite —
    // the access lists must not keep growing across solver iterations.
    for (int iter = 0; iter < 50; ++iter) {
        run(Privilege::WriteOnly, IntervalSet(0, 1000), 0);
        run(Privilege::ReadOnly, IntervalSet(0, 1000), 1);
    }
    const FutureScalar last = run(Privilege::ReadOnly, IntervalSet(0, 1000), 1);
    // 50 write/read rounds serialized = 100s; the final read piggybacks on
    // the last write only (and runs on an idle GPU at t=100).
    EXPECT_DOUBLE_EQ(last.ready_time, 101.0);
}

TEST_F(Fixture, ScalarDepsDelayStart) {
    const FutureScalar w = run(Privilege::WriteOnly, IntervalSet(0, 10), 0);
    const FutureScalar dep =
        run(Privilege::WriteOnly, IntervalSet(500, 510), 1, {w.ready_time + 5.0});
    EXPECT_DOUBLE_EQ(dep.ready_time, w.ready_time + 5.0 + 1.0);
}

TEST_F(Fixture, ReadWriteActsAsBoth) {
    const FutureScalar w = run(Privilege::WriteOnly, IntervalSet(0, 1000), 0);
    const FutureScalar rw = run(Privilege::ReadWrite, IntervalSet(0, 1000), 1);
    const FutureScalar rd = run(Privilege::ReadOnly, IntervalSet(0, 1000), 2);
    EXPECT_DOUBLE_EQ(rw.ready_time, w.ready_time + 1.0);
    EXPECT_DOUBLE_EQ(rd.ready_time, rw.ready_time + 1.0);
}

TEST_F(Fixture, FunctionalBodyRunsAtSubmission) {
    TaskLaunch l;
    l.name = "fill";
    l.requirements.push_back({r, f, Privilege::WriteOnly, IntervalSet(0, 1000)});
    l.body = [this](TaskContext& ctx) {
        auto v = ctx.field<double>(r, f);
        v[7] = 4.25;
        ctx.set_scalar(99.0);
    };
    const FutureScalar fut = rt.launch(std::move(l));
    EXPECT_DOUBLE_EQ(fut.value, 99.0);
    EXPECT_DOUBLE_EQ(rt.field_data<double>(r, f)[7], 4.25);
}

TEST(FieldKey, FieldIdsBeyond16BitsDoNotAliasAcrossRegions) {
    // Regression: the old field key was (region << 16) | field, so
    // (region 0, field 65536) and (region 1, field 0) shared a key and their
    // writers were falsely serialized. Timing-only mode keeps the 65537
    // phantom fields free.
    sim::MachineDesc m = sim::MachineDesc::lassen(2);
    m.gpus_per_node = 2;
    m.task_launch_overhead = 0.0;
    m.gpu_launch_overhead = 0.0;
    m.nic_latency = 0.0;
    m.nic_message_overhead = 0.0;
    m.nic_bandwidth = 1e30;
    m.intra_node_bandwidth = 1e30;
    Runtime rt(m, {.materialize = false, .profiling = false});
    const IndexSpace space = IndexSpace::create(8, "D");
    const RegionId a = rt.create_region(space, "a");
    const RegionId b = rt.create_region(space, "b");
    FieldId high = 0;
    for (int i = 0; i <= 65536; ++i) {
        high = rt.add_field<double>(a, "f" + std::to_string(i));
    }
    ASSERT_EQ(high, 65536u);
    const FieldId low = rt.add_field<double>(b, "v");
    ASSERT_EQ(low, 0u);

    const auto write = [&](RegionId reg, FieldId f, Color color) {
        TaskLaunch l;
        l.name = "w";
        l.requirements.push_back({reg, f, Privilege::WriteOnly, IntervalSet(0, 8)});
        l.cost = {m.gpu_flops, 0.0};
        l.color = color;
        return rt.launch(std::move(l));
    };
    const FutureScalar w1 = write(a, high, 0);
    const FutureScalar w2 = write(b, low, 1);
    EXPECT_DOUBLE_EQ(w1.ready_time, 1.0);
    EXPECT_DOUBLE_EQ(w2.ready_time, 1.0)
        << "independent (region, field) pairs must not conflict";
}

TEST_F(Fixture, TaskCounterAdvances) {
    EXPECT_EQ(rt.tasks_launched(), 0u);
    run(Privilege::WriteOnly, IntervalSet(0, 10), 0);
    run(Privilege::ReadOnly, IntervalSet(0, 10), 0);
    EXPECT_EQ(rt.tasks_launched(), 2u);
}

} // namespace
} // namespace kdr::rt
