/// Exchange-plan tests: plan construction (coalesced messages cover exactly
/// the union of the per-piece fetches), the lazy plan path (fewer, larger
/// messages for the same bytes), the eager push path (transfers issued at
/// producer-commit time, satisfied from cache at consume time), and the plan
/// lifecycle against placement changes.

#include "runtime/exchange.hpp"

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace kdr::rt {
namespace {

std::vector<HomePiece> four_piece_home() {
    // Two home pieces per node: coalescing has something to merge.
    return {{IntervalSet(0, 250), 0},
            {IntervalSet(250, 500), 0},
            {IntervalSet(500, 750), 1},
            {IntervalSet(750, 1000), 1}};
}

TEST(BuildExchangePlan, CoalescesPerNodePair) {
    const auto home = four_piece_home();
    const ExchangePlan plan =
        build_exchange_plan(home, {{2, IntervalSet(100, 900)}}, /*coalesce=*/true,
                            /*eager=*/true);
    // One message per (src, dst) node pair, covering the union of the
    // per-piece fetches that pair would otherwise issue.
    ASSERT_EQ(plan.message_count(), 2u);
    for (const ExchangeMessage& m : plan.messages) {
        EXPECT_EQ(m.dst, 2);
        if (m.src == 0) {
            EXPECT_EQ(m.elems, IntervalSet(100, 500));
        } else {
            EXPECT_EQ(m.src, 1);
            EXPECT_EQ(m.elems, IntervalSet(500, 900));
        }
    }
}

TEST(BuildExchangePlan, MergesConsumersOfTheSamePair) {
    const auto home = four_piece_home();
    const ExchangePlan plan = build_exchange_plan(
        home, {{2, IntervalSet(0, 200)}, {2, IntervalSet(150, 400)}}, true, true);
    ASSERT_EQ(plan.message_count(), 1u);
    EXPECT_EQ(plan.messages[0].src, 0);
    EXPECT_EQ(plan.messages[0].dst, 2);
    EXPECT_EQ(plan.messages[0].elems, IntervalSet(0, 400));
}

TEST(BuildExchangePlan, PerPieceWhenNotCoalesced) {
    const auto home = four_piece_home();
    const ExchangePlan plan =
        build_exchange_plan(home, {{2, IntervalSet(100, 900)}}, /*coalesce=*/false, true);
    // One message per (home piece, consumer node): 4 pieces all overlap.
    EXPECT_EQ(plan.message_count(), 4u);
    IntervalSet covered;
    for (const ExchangeMessage& m : plan.messages) covered = covered.set_union(m.elems);
    EXPECT_EQ(covered, IntervalSet(100, 900)) << "same coverage either way";
}

TEST(BuildExchangePlan, SkipsLocalElements) {
    const auto home = four_piece_home();
    // Node 0 already owns [0,500): only [500,600) needs a message.
    const ExchangePlan plan = build_exchange_plan(home, {{0, IntervalSet(0, 600)}}, true, true);
    ASSERT_EQ(plan.message_count(), 1u);
    EXPECT_EQ(plan.messages[0].src, 1);
    EXPECT_EQ(plan.messages[0].dst, 0);
    EXPECT_EQ(plan.messages[0].elems, IntervalSet(500, 600));
    // A fully-local consumer contributes nothing.
    EXPECT_EQ(build_exchange_plan(home, {{0, IntervalSet(0, 500)}}, true, true)
                  .message_count(),
              0u);
}

struct ExchangeFixture : ::testing::Test {
    static constexpr double kBw = 1.0e6;
    static constexpr gidx kN = 1000;

    sim::MachineDesc machine = [] {
        sim::MachineDesc m = sim::MachineDesc::lassen(3);
        m.gpus_per_node = 1;
        m.task_launch_overhead = 0.0;
        m.gpu_launch_overhead = 0.0;
        m.nic_latency = 0.0;
        m.nic_message_overhead = 0.0;
        m.nic_bandwidth = kBw;
        return m;
    }();
    Runtime rt{machine};
    IndexSpace space = IndexSpace::create(kN, "D");
    RegionId r = rt.create_region(space, "vec");
    FieldId f = rt.add_field<double>(r, "v");

    ExchangeFixture() { rt.set_home(r, f, four_piece_home()); }

    FutureScalar run_on(Color color, Privilege priv, IntervalSet subset) {
        TaskLaunch l;
        l.name = "t";
        l.requirements.push_back({r, f, priv, std::move(subset)});
        l.color = color; // 1 GPU/node: color == node
        return rt.launch(std::move(l));
    }

    void install_plan(bool coalesce, bool eager) {
        rt.set_exchange_plan(
            r, f,
            build_exchange_plan(rt.region(r).field(f).home, {{2, IntervalSet(0, kN)}},
                                coalesce, eager));
    }

    [[nodiscard]] double counter(const char* name) const {
        return rt.metrics().counter_value(name);
    }
};

TEST_F(ExchangeFixture, PerPieceFallbackIssuesOneTransferPerHomePiece) {
    run_on(2, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), 4u);
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), kN * 8.0);
    EXPECT_DOUBLE_EQ(counter("coalesced_messages"), 0.0);
}

TEST_F(ExchangeFixture, LazyCoalescedPlanReducesMessageCount) {
    install_plan(/*coalesce=*/true, /*eager=*/false);
    EXPECT_TRUE(rt.has_exchange_plan(r, f));
    EXPECT_DOUBLE_EQ(counter("exchange_plans_built"), 1.0);
    run_on(2, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), 2u) << "one message per (src,dst) pair";
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), kN * 8.0) << "same bytes, fewer messages";
    EXPECT_DOUBLE_EQ(counter("coalesced_messages"), 2.0);
}

TEST_F(ExchangeFixture, EagerPlanPushesAtWriteCommit) {
    install_plan(/*coalesce=*/true, /*eager=*/true);
    run_on(0, Privilege::WriteOnly, IntervalSet(0, 500));
    run_on(1, Privilege::WriteOnly, IntervalSet(500, kN));
    EXPECT_EQ(rt.transfer_count(), 2u) << "pushes happen before any consumer launches";
    EXPECT_DOUBLE_EQ(counter("coalesced_messages"), 2.0);
    // The consumer finds both halves already cached: no new transfers.
    run_on(2, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), 2u);
    EXPECT_DOUBLE_EQ(rt.transfer_bytes(), kN * 8.0);
}

TEST_F(ExchangeFixture, EagerPushRepeatsEachProducerRound) {
    install_plan(true, true);
    for (int iter = 1; iter <= 3; ++iter) {
        run_on(0, Privilege::WriteOnly, IntervalSet(0, 500));
        run_on(1, Privilege::WriteOnly, IntervalSet(500, kN));
        run_on(2, Privilege::ReadOnly, IntervalSet(0, kN));
        EXPECT_EQ(rt.transfer_count(), 2u * static_cast<unsigned>(iter))
            << "exactly two pushed messages per iteration, no consumer fetches";
    }
}

TEST_F(ExchangeFixture, PartialWriteDoesNotPushEarly) {
    install_plan(true, true);
    run_on(0, Privilege::WriteOnly, IntervalSet(0, 100));
    EXPECT_EQ(rt.transfer_count(), 0u) << "message fires only when fully produced";
    run_on(0, Privilege::WriteOnly, IntervalSet(100, 500));
    EXPECT_EQ(rt.transfer_count(), 1u) << "second write completes the 0->2 message";
}

TEST_F(ExchangeFixture, PlacementChangeDropsThePlan) {
    install_plan(true, true);
    ASSERT_TRUE(rt.has_exchange_plan(r, f));
    rt.set_home(r, f, {{IntervalSet(0, kN), 0}});
    EXPECT_FALSE(rt.has_exchange_plan(r, f)) << "plan was built from the old placement";
    install_plan(true, true);
    rt.move_home(r, f, IntervalSet(0, 250), 2);
    EXPECT_FALSE(rt.has_exchange_plan(r, f));
}

TEST_F(ExchangeFixture, ClearExchangePlanRestoresFallback) {
    install_plan(true, false);
    rt.clear_exchange_plan(r, f);
    EXPECT_FALSE(rt.has_exchange_plan(r, f));
    run_on(2, Privilege::ReadOnly, IntervalSet(0, kN));
    EXPECT_EQ(rt.transfer_count(), 4u);
}

TEST_F(ExchangeFixture, RejectsBadPlans) {
    ExchangePlan bad;
    bad.messages.push_back({0, 0, IntervalSet(0, 10)}); // src == dst
    EXPECT_THROW(rt.set_exchange_plan(r, f, bad), Error);
    bad.messages[0] = {0, 99, IntervalSet(0, 10)}; // node out of range
    EXPECT_THROW(rt.set_exchange_plan(r, f, bad), Error);
    bad.messages[0] = {0, 1, IntervalSet()}; // empty payload
    EXPECT_THROW(rt.set_exchange_plan(r, f, bad), Error);
}

} // namespace
} // namespace kdr::rt
