#include "geometry/point.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace kdr {
namespace {

TEST(Point, ArithmeticAndComparison) {
    const Point2 a{{1, 2}};
    const Point2 b{{3, 4}};
    EXPECT_EQ((a + b), (Point2{{4, 6}}));
    EXPECT_EQ((b - a), (Point2{{2, 2}}));
    EXPECT_NE(a, b);
    EXPECT_EQ(a, (Point2{{1, 2}}));
}

TEST(Rect, VolumeAndEmpty) {
    const Rect2 r{{{0, 0}}, {{4, 3}}};
    EXPECT_EQ(r.volume(), 12);
    EXPECT_FALSE(r.empty());
    const Rect2 e{{{2, 2}}, {{2, 5}}};
    EXPECT_TRUE(e.empty());
    EXPECT_EQ(e.volume(), 0);
}

TEST(Rect, ContainsIsHalfOpen) {
    const Rect1 r{{{2}}, {{5}}};
    EXPECT_FALSE(r.contains(Point1{{1}}));
    EXPECT_TRUE(r.contains(Point1{{2}}));
    EXPECT_TRUE(r.contains(Point1{{4}}));
    EXPECT_FALSE(r.contains(Point1{{5}}));
}

TEST(Rect, Intersection) {
    const Rect2 a{{{0, 0}}, {{4, 4}}};
    const Rect2 b{{{2, 1}}, {{6, 3}}};
    const Rect2 c = a.intersection(b);
    EXPECT_EQ(c, (Rect2{{{2, 1}}, {{4, 3}}}));
    const Rect2 d{{{10, 10}}, {{12, 12}}};
    EXPECT_TRUE(a.intersection(d).empty());
}

TEST(Linearize, RowMajorOrder) {
    const Rect2 bounds{{{0, 0}}, {{3, 4}}}; // 3 rows of 4
    EXPECT_EQ(linearize(bounds, Point2{{0, 0}}), 0);
    EXPECT_EQ(linearize(bounds, Point2{{0, 3}}), 3);
    EXPECT_EQ(linearize(bounds, Point2{{1, 0}}), 4);
    EXPECT_EQ(linearize(bounds, Point2{{2, 3}}), 11);
}

TEST(Linearize, RoundTripsWithDelinearize) {
    const Rect3 bounds{{{1, 2, 3}}, {{4, 6, 8}}};
    for (gidx i = 0; i < bounds.volume(); ++i) {
        EXPECT_EQ(linearize(bounds, delinearize(bounds, i)), i);
    }
}

TEST(ForEachPoint, VisitsAllInOrder) {
    const Rect2 r{{{0, 0}}, {{2, 3}}};
    std::vector<gidx> seen;
    for_each_point(r, [&](const Point2& p) { seen.push_back(linearize(r, p)); });
    ASSERT_EQ(seen.size(), 6u);
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], static_cast<gidx>(i));
}

TEST(ForEachPoint, EmptyRectVisitsNothing) {
    const Rect1 r{{{3}}, {{3}}};
    int count = 0;
    for_each_point(r, [&](const Point1&) { ++count; });
    EXPECT_EQ(count, 0);
}

} // namespace
} // namespace kdr
