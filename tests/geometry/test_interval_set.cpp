#include "geometry/interval_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace kdr {
namespace {

TEST(IntervalSet, DefaultIsEmpty) {
    const IntervalSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.volume(), 0);
    EXPECT_EQ(s.interval_count(), 0u);
}

TEST(IntervalSet, SingleInterval) {
    const IntervalSet s(3, 8);
    EXPECT_EQ(s.volume(), 5);
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(7));
    EXPECT_FALSE(s.contains(8));
    EXPECT_FALSE(s.contains(2));
}

TEST(IntervalSet, DegenerateIntervalIsEmpty) {
    const IntervalSet s(5, 5);
    EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, RejectsInvertedInterval) { EXPECT_THROW(IntervalSet(5, 3), Error); }

TEST(IntervalSet, FromIntervalsCoalescesOverlaps) {
    const IntervalSet s = IntervalSet::from_intervals({{0, 3}, {2, 5}, {7, 9}, {5, 7}});
    EXPECT_EQ(s.interval_count(), 1u); // [0,5)+[5,7)+[7,9) merge to [0,9)
    EXPECT_EQ(s.volume(), 9);
}

TEST(IntervalSet, FromIntervalsKeepsGaps) {
    const IntervalSet s = IntervalSet::from_intervals({{0, 2}, {4, 6}});
    EXPECT_EQ(s.interval_count(), 2u);
    EXPECT_FALSE(s.contains(2));
    EXPECT_FALSE(s.contains(3));
    EXPECT_TRUE(s.contains(4));
}

TEST(IntervalSet, FromPointsMergesRunsAndDuplicates) {
    const IntervalSet s = IntervalSet::from_points({5, 1, 2, 3, 5, 9});
    EXPECT_EQ(s.volume(), 5);
    EXPECT_EQ(s.interval_count(), 3u); // [1,4) [5,6) [9,10)
    EXPECT_EQ(s, IntervalSet::from_intervals({{1, 4}, {5, 6}, {9, 10}}));
}

TEST(IntervalSet, UnionBasic) {
    const IntervalSet a(0, 4);
    const IntervalSet b(6, 8);
    const IntervalSet u = a.set_union(b);
    EXPECT_EQ(u.volume(), 6);
    EXPECT_EQ(u.interval_count(), 2u);
}

TEST(IntervalSet, UnionMergesAdjacent) {
    const IntervalSet u = IntervalSet(0, 4).set_union(IntervalSet(4, 8));
    EXPECT_EQ(u.interval_count(), 1u);
    EXPECT_EQ(u, IntervalSet(0, 8));
}

TEST(IntervalSet, IntersectionBasic) {
    const IntervalSet a = IntervalSet::from_intervals({{0, 5}, {10, 15}});
    const IntervalSet b = IntervalSet::from_intervals({{3, 12}});
    const IntervalSet i = a.set_intersection(b);
    EXPECT_EQ(i, IntervalSet::from_intervals({{3, 5}, {10, 12}}));
}

TEST(IntervalSet, IntersectionDisjointIsEmpty) {
    EXPECT_TRUE(IntervalSet(0, 3).set_intersection(IntervalSet(5, 9)).empty());
}

TEST(IntervalSet, DifferencePunchesHoles) {
    const IntervalSet a(0, 10);
    const IntervalSet b = IntervalSet::from_intervals({{2, 4}, {6, 7}});
    const IntervalSet d = a.set_difference(b);
    EXPECT_EQ(d, IntervalSet::from_intervals({{0, 2}, {4, 6}, {7, 10}}));
}

TEST(IntervalSet, DifferenceWithSelfIsEmpty) {
    const IntervalSet a = IntervalSet::from_intervals({{1, 4}, {9, 20}});
    EXPECT_TRUE(a.set_difference(a).empty());
}

TEST(IntervalSet, IntersectsDetectsTouching) {
    const IntervalSet a(0, 5);
    EXPECT_TRUE(a.intersects(IntervalSet(4, 9)));
    EXPECT_FALSE(a.intersects(IntervalSet(5, 9))); // half-open: [0,5) vs [5,9)
}

TEST(IntervalSet, ContainsAll) {
    const IntervalSet big = IntervalSet::from_intervals({{0, 10}, {20, 30}});
    EXPECT_TRUE(big.contains_all(IntervalSet::from_intervals({{2, 5}, {25, 28}})));
    EXPECT_FALSE(big.contains_all(IntervalSet(8, 12)));
    EXPECT_TRUE(big.contains_all(IntervalSet{}));
}

TEST(IntervalSet, BoundsSpanTheSet) {
    const IntervalSet s = IntervalSet::from_intervals({{3, 5}, {11, 20}});
    EXPECT_EQ(s.bounds(), (Interval{3, 20}));
    EXPECT_EQ(IntervalSet{}.bounds(), (Interval{0, 0}));
}

TEST(IntervalSet, ShiftedTranslates) {
    const IntervalSet s = IntervalSet::from_intervals({{0, 2}, {5, 6}});
    EXPECT_EQ(s.shifted(10), IntervalSet::from_intervals({{10, 12}, {15, 16}}));
    EXPECT_EQ(s.shifted(-0), s);
}

TEST(IntervalSet, RankAndSelectRoundTrip) {
    const IntervalSet s = IntervalSet::from_intervals({{2, 5}, {8, 10}});
    // members: 2 3 4 8 9
    EXPECT_EQ(s.rank_of(2), 0);
    EXPECT_EQ(s.rank_of(4), 2);
    EXPECT_EQ(s.rank_of(8), 3);
    EXPECT_EQ(s.select(0), 2);
    EXPECT_EQ(s.select(3), 8);
    EXPECT_EQ(s.select(4), 9);
    for (gidx r = 0; r < s.volume(); ++r) EXPECT_EQ(s.rank_of(s.select(r)), r);
}

TEST(IntervalSet, RankOfMissingThrows) {
    const IntervalSet s(2, 5);
    EXPECT_THROW((void)s.rank_of(7), Error);
    EXPECT_THROW((void)s.rank_of(1), Error);
}

TEST(IntervalSet, SelectOutOfRangeThrows) {
    const IntervalSet s(0, 3);
    EXPECT_THROW((void)s.select(3), Error);
    EXPECT_THROW((void)s.select(-1), Error);
}

TEST(IntervalSet, ToPointsEnumeratesAscending) {
    const IntervalSet s = IntervalSet::from_intervals({{7, 9}, {1, 3}});
    EXPECT_EQ(s.to_points(), (std::vector<gidx>{1, 2, 7, 8}));
}

/// Property test: interval-set algebra agrees with std::set algebra on random
/// inputs (the IntervalSet is the foundation of dependence analysis, so this
/// must be watertight).
class IntervalSetPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetPropertyTest, AlgebraMatchesReferenceSets) {
    Rng rng(GetParam());
    auto random_set = [&](int max_intervals, gidx universe) {
        std::vector<Interval> ivs;
        const int n = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(max_intervals)) + 1);
        for (int i = 0; i < n; ++i) {
            const gidx lo = static_cast<gidx>(rng.uniform_index(static_cast<std::uint64_t>(universe)));
            const gidx len = static_cast<gidx>(rng.uniform_index(12));
            ivs.push_back({lo, std::min(lo + len, universe)});
        }
        return IntervalSet::from_intervals(std::move(ivs));
    };
    auto as_std_set = [](const IntervalSet& s) {
        std::set<gidx> out;
        s.for_each([&](gidx i) { out.insert(i); });
        return out;
    };

    for (int trial = 0; trial < 50; ++trial) {
        const IntervalSet a = random_set(6, 80);
        const IntervalSet b = random_set(6, 80);
        const std::set<gidx> sa = as_std_set(a);
        const std::set<gidx> sb = as_std_set(b);

        std::set<gidx> expect_union = sa;
        expect_union.insert(sb.begin(), sb.end());
        EXPECT_EQ(as_std_set(a.set_union(b)), expect_union);

        std::set<gidx> expect_inter;
        std::ranges::set_intersection(sa, sb, std::inserter(expect_inter, expect_inter.end()));
        EXPECT_EQ(as_std_set(a.set_intersection(b)), expect_inter);

        std::set<gidx> expect_diff;
        std::ranges::set_difference(sa, sb, std::inserter(expect_diff, expect_diff.end()));
        EXPECT_EQ(as_std_set(a.set_difference(b)), expect_diff);

        EXPECT_EQ(a.intersects(b), !expect_inter.empty());
        EXPECT_EQ(a.volume(), static_cast<gidx>(sa.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 42u, 1337u, 9001u));

} // namespace
} // namespace kdr
