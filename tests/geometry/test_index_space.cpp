#include "geometry/index_space.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace kdr {
namespace {

TEST(IndexSpace, DefaultIsInvalid) {
    const IndexSpace s;
    EXPECT_FALSE(s.valid());
    EXPECT_EQ(s.size(), 0);
}

TEST(IndexSpace, CreateAssignsUniqueIds) {
    const IndexSpace a = IndexSpace::create(10);
    const IndexSpace b = IndexSpace::create(10);
    EXPECT_TRUE(a.valid());
    EXPECT_NE(a.id(), b.id());
    EXPECT_NE(a, b) << "same size but distinct spaces";
    EXPECT_EQ(a, a);
}

TEST(IndexSpace, CopyPreservesIdentity) {
    const IndexSpace a = IndexSpace::create(5, "D");
    const IndexSpace c = a;
    EXPECT_EQ(a, c);
    EXPECT_EQ(c.name(), "D");
}

TEST(IndexSpace, RejectsNegativeSize) { EXPECT_THROW(IndexSpace::create(-1), Error); }

TEST(IndexSpace, GridShapeAndSize) {
    const IndexSpace g = IndexSpace::create_grid({4, 8});
    EXPECT_TRUE(g.structured());
    EXPECT_EQ(g.dims(), 2);
    EXPECT_EQ(g.size(), 32);
    EXPECT_EQ(g.extent(0), 4);
    EXPECT_EQ(g.extent(1), 8);
}

TEST(IndexSpace, UnstructuredHasNoDims) {
    const IndexSpace s = IndexSpace::create(7);
    EXPECT_FALSE(s.structured());
    EXPECT_EQ(s.dims(), 0);
    EXPECT_THROW((void)s.extent(0), Error);
}

TEST(IndexSpace, GridRejectsBadExtents) {
    EXPECT_THROW(IndexSpace::create_grid({}), Error);
    EXPECT_THROW(IndexSpace::create_grid({4, 0}), Error);
    EXPECT_THROW(IndexSpace::create_grid({1, 2, 3, 4}), Error);
}

TEST(IndexSpace, LinearizeRowMajor) {
    const IndexSpace g = IndexSpace::create_grid({3, 5});
    EXPECT_EQ(g.linearize(Point2{{0, 0}}), 0);
    EXPECT_EQ(g.linearize(Point2{{0, 4}}), 4);
    EXPECT_EQ(g.linearize(Point2{{1, 0}}), 5);
    EXPECT_EQ(g.linearize(Point2{{2, 4}}), 14);
}

TEST(IndexSpace, LinearizeRoundTrip3d) {
    const IndexSpace g = IndexSpace::create_grid({2, 3, 4});
    for (gidx i = 0; i < g.size(); ++i) {
        EXPECT_EQ(g.linearize(g.delinearize<3>(i)), i);
    }
}

TEST(IndexSpace, LinearizeRejectsDimMismatch) {
    const IndexSpace g = IndexSpace::create_grid({3, 5});
    EXPECT_THROW((void)g.linearize(Point1{{0}}), Error);
}

TEST(IndexSpace, UniverseCoversWholeSpace) {
    const IndexSpace s = IndexSpace::create(12);
    const IntervalSet u = s.universe();
    EXPECT_EQ(u.volume(), 12);
    EXPECT_TRUE(u.contains(0));
    EXPECT_TRUE(u.contains(11));
    EXPECT_FALSE(u.contains(12));
}

} // namespace
} // namespace kdr
