#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace kdr {
namespace {

TEST(Partition, EqualSplitsEvenly) {
    const IndexSpace s = IndexSpace::create(12);
    const Partition p = Partition::equal(s, 4);
    EXPECT_EQ(p.color_count(), 4);
    for (Color c = 0; c < 4; ++c) EXPECT_EQ(p.piece(c).volume(), 3);
    EXPECT_TRUE(p.is_complete());
    EXPECT_TRUE(p.is_disjoint());
}

TEST(Partition, EqualDistributesRemainderToLeadingColors) {
    const IndexSpace s = IndexSpace::create(10);
    const Partition p = Partition::equal(s, 4);
    EXPECT_EQ(p.piece(0).volume(), 3);
    EXPECT_EQ(p.piece(1).volume(), 3);
    EXPECT_EQ(p.piece(2).volume(), 2);
    EXPECT_EQ(p.piece(3).volume(), 2);
    EXPECT_TRUE(p.is_complete());
    EXPECT_TRUE(p.is_disjoint());
}

TEST(Partition, EqualMoreColorsThanPoints) {
    const IndexSpace s = IndexSpace::create(2);
    const Partition p = Partition::equal(s, 5);
    EXPECT_EQ(p.color_count(), 5);
    EXPECT_EQ(p.total_assignments(), 2);
    EXPECT_TRUE(p.is_complete());
    EXPECT_TRUE(p.is_disjoint());
}

TEST(Partition, EqualRejectsZeroColors) {
    const IndexSpace s = IndexSpace::create(4);
    EXPECT_THROW(Partition::equal(s, 0), Error);
}

TEST(Partition, BlockedSplitsByBlockSize) {
    const IndexSpace s = IndexSpace::create(10);
    const Partition p = Partition::blocked(s, 4);
    EXPECT_EQ(p.color_count(), 3);
    EXPECT_EQ(p.piece(0), IntervalSet(0, 4));
    EXPECT_EQ(p.piece(2), IntervalSet(8, 10));
    EXPECT_TRUE(p.is_complete());
    EXPECT_TRUE(p.is_disjoint());
}

TEST(Partition, SingleIsTrivial) {
    const IndexSpace s = IndexSpace::create(9);
    const Partition p = Partition::single(s);
    EXPECT_EQ(p.color_count(), 1);
    EXPECT_EQ(p.piece(0), s.universe());
}

TEST(Partition, Tiles2dCoversGridDisjointly) {
    const IndexSpace g = IndexSpace::create_grid({8, 6});
    const Partition p = Partition::tiles2d(g, 2, 3);
    EXPECT_EQ(p.color_count(), 6);
    EXPECT_TRUE(p.is_complete());
    EXPECT_TRUE(p.is_disjoint());
    // Tile (0,0) holds rows 0-3 of columns 0-1: strided runs.
    const IntervalSet& t00 = p.piece(0);
    EXPECT_EQ(t00.volume(), 4 * 2);
    EXPECT_TRUE(t00.contains(g.linearize(Point2{{0, 0}})));
    EXPECT_TRUE(t00.contains(g.linearize(Point2{{3, 1}})));
    EXPECT_FALSE(t00.contains(g.linearize(Point2{{0, 2}})));
    EXPECT_FALSE(t00.contains(g.linearize(Point2{{4, 0}})));
}

TEST(Partition, Tiles2dUnevenSizes) {
    const IndexSpace g = IndexSpace::create_grid({5, 5});
    const Partition p = Partition::tiles2d(g, 2, 2);
    EXPECT_TRUE(p.is_complete());
    EXPECT_TRUE(p.is_disjoint());
    EXPECT_EQ(p.total_assignments(), 25);
}

TEST(Partition, Tiles3dCoversGridDisjointly) {
    const IndexSpace g = IndexSpace::create_grid({4, 4, 4});
    const Partition p = Partition::tiles3d(g, 2, 2, 2);
    EXPECT_EQ(p.color_count(), 8);
    EXPECT_TRUE(p.is_complete());
    EXPECT_TRUE(p.is_disjoint());
    for (Color c = 0; c < 8; ++c) EXPECT_EQ(p.piece(c).volume(), 8);
}

TEST(Partition, TilesRejectUnstructuredSpace) {
    const IndexSpace s = IndexSpace::create(16);
    EXPECT_THROW(Partition::tiles2d(s, 2, 2), Error);
    EXPECT_THROW(Partition::tiles3d(s, 2, 2, 2), Error);
}

TEST(Partition, IncompletePartitionDetected) {
    const IndexSpace s = IndexSpace::create(10);
    const Partition p(s, {IntervalSet(0, 4), IntervalSet(6, 10)});
    EXPECT_FALSE(p.is_complete());
    EXPECT_TRUE(p.is_disjoint());
}

TEST(Partition, AliasedPartitionDetected) {
    const IndexSpace s = IndexSpace::create(10);
    const Partition p(s, {IntervalSet(0, 6), IntervalSet(4, 10)});
    EXPECT_TRUE(p.is_complete());
    EXPECT_FALSE(p.is_disjoint());
    EXPECT_EQ(p.total_assignments(), 12);
}

TEST(Partition, PieceOutOfRangeThrows) {
    const IndexSpace s = IndexSpace::create(4);
    const Partition p = Partition::equal(s, 2);
    EXPECT_THROW((void)p.piece(2), Error);
    EXPECT_THROW((void)p.piece(-1), Error);
}

TEST(Partition, RejectsPieceBeyondSpace) {
    const IndexSpace s = IndexSpace::create(4);
    EXPECT_THROW(Partition(s, {IntervalSet(0, 5)}), Error);
}

TEST(Partition, PiecewiseUnionAndIntersection) {
    const IndexSpace s = IndexSpace::create(10);
    const Partition a(s, {IntervalSet(0, 4), IntervalSet(4, 8)});
    const Partition b(s, {IntervalSet(2, 6), IntervalSet(6, 10)});
    const Partition u = a.piecewise_union(b);
    EXPECT_EQ(u.piece(0), IntervalSet(0, 6));
    EXPECT_EQ(u.piece(1), IntervalSet(4, 10));
    const Partition i = a.piecewise_intersection(b);
    EXPECT_EQ(i.piece(0), IntervalSet(2, 4));
    EXPECT_EQ(i.piece(1), IntervalSet(6, 8));
}

TEST(Partition, PiecewiseOpsRejectMismatchedSpaces) {
    const IndexSpace s = IndexSpace::create(10);
    const IndexSpace t = IndexSpace::create(10);
    const Partition a = Partition::equal(s, 2);
    const Partition b = Partition::equal(t, 2);
    EXPECT_THROW(a.piecewise_union(b), Error);
    const Partition c = Partition::equal(s, 3);
    EXPECT_THROW(a.piecewise_union(c), Error);
}

} // namespace
} // namespace kdr
