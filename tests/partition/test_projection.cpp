#include "partition/projection.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/error.hpp"

namespace kdr {
namespace {

/// Build the COO-style relations of a 1-D 3-point stencil matrix on n rows:
/// kernel points enumerate (row, col) with col ∈ {row-1, row, row+1} ∩ [0,n).
struct Stencil3 {
    IndexSpace D;
    IndexSpace R;
    IndexSpace K;
    std::shared_ptr<MaterializedRelation> col; // K -> D
    std::shared_ptr<MaterializedRelation> row; // K -> R

    explicit Stencil3(gidx n)
        : D(IndexSpace::create(n, "D")), R(IndexSpace::create(n, "R")) {
        std::vector<std::pair<gidx, gidx>> col_pairs;
        std::vector<std::pair<gidx, gidx>> row_pairs;
        gidx k = 0;
        for (gidx i = 0; i < n; ++i) {
            for (gidx j = i - 1; j <= i + 1; ++j) {
                if (j < 0 || j >= n) continue;
                col_pairs.emplace_back(k, j);
                row_pairs.emplace_back(k, i);
                ++k;
            }
        }
        K = IndexSpace::create(k, "K");
        col = std::make_shared<MaterializedRelation>(K, D, std::move(col_pairs));
        row = std::make_shared<MaterializedRelation>(K, R, std::move(row_pairs));
    }
};

TEST(Projection, ImagePartitionHasMatchingColors) {
    const Stencil3 s(16);
    const Partition pk = Partition::equal(s.K, 4);
    const Partition pd = image(pk, *s.col);
    EXPECT_EQ(pd.color_count(), 4);
    EXPECT_EQ(pd.space(), s.D);
    EXPECT_TRUE(pd.is_complete());
}

TEST(Projection, RowPartitionPreimageGivesKernelPieces) {
    // Paper §3.1: given a partition P of R, row_{R→K}[P] selects the matrix
    // pieces needed to compute each piece of y = A x.
    const Stencil3 s(16);
    const Partition pr = Partition::equal(s.R, 4);
    const Partition pk = preimage(pr, *s.row);
    EXPECT_EQ(pk.space(), s.K);
    EXPECT_TRUE(pk.is_complete()) << "every kernel entry belongs to some row piece";
    EXPECT_TRUE(pk.is_disjoint()) << "rows are disjoint, so kernel pieces are too";
}

TEST(Projection, DomainImageAliasesAtStencilBoundaries) {
    // col_{K→D}[row_{R→K}[P]] is the finest partition of D from which the
    // pieces of y can be computed independently; for a 3-point stencil the
    // pieces overlap by one halo point on each side.
    const Stencil3 s(16);
    const Partition pr = Partition::equal(s.R, 4);
    const Partition pd = image(preimage(pr, *s.row), *s.col);
    EXPECT_TRUE(pd.is_complete());
    EXPECT_FALSE(pd.is_disjoint()) << "halo points are shared between colors";
    // Color 0 owns rows 0..3 and needs domain points 0..4 (one halo).
    EXPECT_EQ(pd.piece(0), IntervalSet(0, 5));
    // Color 1 owns rows 4..7 and needs domain points 3..8.
    EXPECT_EQ(pd.piece(1), IntervalSet(3, 9));
}

TEST(Projection, Equation5GrowsHaloTwice) {
    // Eq. (5): col[row[col[row[P]]]] yields the finest partition of D needed
    // to compute A²x — the halo grows to two points per side.
    const Stencil3 s(32);
    const Partition pr = Partition::equal(s.R, 4);
    const Partition once = image(preimage(pr, *s.row), *s.col);
    const Partition twice = image(preimage(once, *s.col), *s.row);
    // One application: rows 8..15 -> domain 7..16. Note: `twice` projects
    // back through col/row, giving range rows reachable in two hops.
    EXPECT_EQ(once.piece(1), IntervalSet(7, 17));
    EXPECT_EQ(twice.piece(1), IntervalSet(6, 18));
    for (Color c = 0; c < 4; ++c) {
        EXPECT_TRUE(twice.piece(c).contains_all(once.piece(c)))
            << "two-hop reach includes one-hop reach";
    }
}

TEST(Projection, RejectsMismatchedSpaces) {
    const Stencil3 s(8);
    const Partition pd = Partition::equal(s.D, 2);
    // image() expects a partition of the relation's source (K), not D.
    EXPECT_THROW(image(pd, *s.col), Error);
    const Partition pk = Partition::equal(s.K, 2);
    // preimage() expects a partition of the relation's target (D), not K.
    EXPECT_THROW(preimage(pk, *s.col), Error);
}

TEST(Projection, EmptyPiecesProjectToEmpty) {
    const Stencil3 s(8);
    const Partition pk(s.K, {IntervalSet{}, s.K.universe()});
    const Partition pd = image(pk, *s.col);
    EXPECT_TRUE(pd.piece(0).empty());
    EXPECT_EQ(pd.piece(1), s.D.universe());
}

TEST(Projection, ImageAndPreimageAreAdjoint) {
    // Galois-connection sanity: S ⊆ preimage(image(S)) for every piece when
    // the relation is total on S.
    const Stencil3 s(12);
    const Partition pk = Partition::equal(s.K, 3);
    const Partition pd = image(pk, *s.col);
    const Partition pk2 = preimage(pd, *s.col);
    for (Color c = 0; c < 3; ++c) {
        EXPECT_TRUE(pk2.piece(c).contains_all(pk.piece(c)));
    }
}

} // namespace
} // namespace kdr
