#include "partition/relation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/error.hpp"

namespace kdr {
namespace {

class MaterializedRelationTest : public ::testing::Test {
protected:
    IndexSpace src = IndexSpace::create(6, "I");
    IndexSpace dst = IndexSpace::create(4, "J");
    // rel = {(0,1),(1,1),(2,3),(3,0),(3,2),(5,3)} — many-to-many.
    MaterializedRelation rel{src, dst, {{0, 1}, {1, 1}, {2, 3}, {3, 0}, {3, 2}, {5, 3}}};
};

TEST_F(MaterializedRelationTest, ImageOfSubset) {
    EXPECT_EQ(rel.image_of(IntervalSet(0, 2)), IntervalSet(1, 2));            // {1}
    EXPECT_EQ(rel.image_of(IntervalSet(3, 4)), IntervalSet::from_points({0, 2}));
    EXPECT_EQ(rel.image_of(IntervalSet(4, 5)), IntervalSet{}); // 4 unrelated
}

TEST_F(MaterializedRelationTest, PreimageOfSubset) {
    EXPECT_EQ(rel.preimage_of(IntervalSet(1, 2)), IntervalSet(0, 2));             // {0,1}
    EXPECT_EQ(rel.preimage_of(IntervalSet(3, 4)), IntervalSet::from_points({2, 5}));
    EXPECT_EQ(rel.preimage_of(IntervalSet(0, 1)), IntervalSet(3, 4)); // {3}
}

TEST_F(MaterializedRelationTest, ImageOfEmptyIsEmpty) {
    EXPECT_TRUE(rel.image_of(IntervalSet{}).empty());
    EXPECT_TRUE(rel.preimage_of(IntervalSet{}).empty());
}

TEST_F(MaterializedRelationTest, ImageOfUniverse) {
    EXPECT_EQ(rel.image_of(src.universe()), dst.universe());
    EXPECT_EQ(rel.preimage_of(dst.universe()), IntervalSet::from_points({0, 1, 2, 3, 5}));
}

TEST_F(MaterializedRelationTest, EnumerateReturnsAllPairsSorted) {
    auto pairs = rel.enumerate();
    EXPECT_EQ(pairs.size(), 6u);
    EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
    EXPECT_EQ(pairs.front(), (std::pair<gidx, gidx>{0, 1}));
    EXPECT_EQ(pairs.back(), (std::pair<gidx, gidx>{5, 3}));
}

TEST_F(MaterializedRelationTest, InverseSwapsDirections) {
    auto base = std::make_shared<MaterializedRelation>(rel);
    InverseRelation inv(base);
    EXPECT_EQ(inv.source(), dst);
    EXPECT_EQ(inv.target(), src);
    EXPECT_EQ(inv.image_of(IntervalSet(1, 2)), rel.preimage_of(IntervalSet(1, 2)));
    EXPECT_EQ(inv.preimage_of(IntervalSet(0, 2)), rel.image_of(IntervalSet(0, 2)));
    auto pairs = inv.enumerate();
    for (const auto& [j, i] : pairs) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, src.size());
        EXPECT_GE(j, 0);
        EXPECT_LT(j, dst.size());
    }
}

TEST(MaterializedRelation, RejectsOutOfRangePairs) {
    const IndexSpace src = IndexSpace::create(3);
    const IndexSpace dst = IndexSpace::create(3);
    EXPECT_THROW(MaterializedRelation(src, dst, {{3, 0}}), Error);
    EXPECT_THROW(MaterializedRelation(src, dst, {{0, 3}}), Error);
    EXPECT_THROW(MaterializedRelation(src, dst, {{-1, 0}}), Error);
}

TEST(MaterializedRelation, EmptyRelation) {
    const IndexSpace src = IndexSpace::create(3);
    const IndexSpace dst = IndexSpace::create(3);
    const MaterializedRelation rel(src, dst, {});
    EXPECT_TRUE(rel.image_of(src.universe()).empty());
    EXPECT_TRUE(rel.preimage_of(dst.universe()).empty());
    EXPECT_EQ(rel.pair_count(), 0u);
}

TEST(MaterializedRelation, DuplicatePairsHandled) {
    const IndexSpace src = IndexSpace::create(2);
    const IndexSpace dst = IndexSpace::create(2);
    const MaterializedRelation rel(src, dst, {{0, 1}, {0, 1}});
    EXPECT_EQ(rel.image_of(IntervalSet(0, 1)), IntervalSet(1, 2));
}

} // namespace
} // namespace kdr
