#include "support/cli.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace kdr {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
    std::vector<const char*> v{"prog"};
    v.insert(v.end(), argv.begin(), argv.end());
    return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, ParsesKeyValuePairs) {
    const CliArgs args = make({"-dim", "2", "-solver", "1", "-nx", "4096"});
    EXPECT_EQ(args.get_int("dim", 0), 2);
    EXPECT_EQ(args.get_int("solver", 0), 1);
    EXPECT_EQ(args.get_int("nx", 0), 4096);
}

TEST(CliArgs, FallbackWhenMissing) {
    const CliArgs args = make({"-dim", "2"});
    EXPECT_EQ(args.get_int("ny", 128), 128);
    EXPECT_EQ(args.get_string("solver", "cg"), "cg");
    EXPECT_DOUBLE_EQ(args.get_double("beta", 1e-3), 1e-3);
}

TEST(CliArgs, ParsesDoubles) {
    const CliArgs args = make({"-beta", "0.001"});
    EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 0.001);
}

TEST(CliArgs, BareFlagIsTrue) {
    const CliArgs args = make({"-verbose", "-nx", "8"});
    EXPECT_TRUE(args.get_flag("verbose"));
    EXPECT_FALSE(args.get_flag("quiet"));
    EXPECT_EQ(args.get_int("nx", 0), 8);
}

TEST(CliArgs, HasDetectsPresence) {
    const CliArgs args = make({"-x", "1"});
    EXPECT_TRUE(args.has("x"));
    EXPECT_FALSE(args.has("y"));
}

TEST(CliArgs, RejectsMalformedInt) {
    const CliArgs args = make({"-nx", "abc"});
    EXPECT_THROW((void)args.get_int("nx", 0), Error);
}

TEST(CliArgs, NegativeNumbersAreValuesNotFlags) {
    // Regression: "-shift -1.5" used to parse as two bare flags because the
    // value starts with '-'.
    const CliArgs args = make({"-shift", "-1.5", "-seed", "-1", "-nx", "8"});
    EXPECT_DOUBLE_EQ(args.get_double("shift", 0.0), -1.5);
    EXPECT_EQ(args.get_int("seed", 0), -1);
    EXPECT_EQ(args.get_int("nx", 0), 8);
    EXPECT_FALSE(args.has("1.5")) << "-1.5 must not register as a flag";
}

TEST(CliArgs, NegativeScientificNotationIsAValue) {
    const CliArgs args = make({"-tol", "-1e-8"});
    EXPECT_DOUBLE_EQ(args.get_double("tol", 0.0), -1e-8);
}

TEST(CliArgs, NonNumericDashTokenStaysAFlag) {
    // "-verbose -quiet": the token after -verbose is not a number, so both
    // remain bare flags.
    const CliArgs args = make({"-verbose", "-quiet"});
    EXPECT_TRUE(args.get_flag("verbose"));
    EXPECT_TRUE(args.get_flag("quiet"));
}

TEST(CliArgs, StringValues) {
    const CliArgs args = make({"-solver", "bicgstab"});
    EXPECT_EQ(args.get_string("solver", ""), "bicgstab");
}

TEST(CliArgs, EqualsSyntaxBindsInlineValue) {
    // Regression: "-nx=4096" used to register the literal key "nx=4096" and
    // the flag was silently ignored.
    const CliArgs args = make({"-nx=4096", "-solver=cg", "-beta=-1.5"});
    EXPECT_EQ(args.get_int("nx", 0), 4096);
    EXPECT_EQ(args.get_string("solver", ""), "cg");
    EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), -1.5);
    EXPECT_FALSE(args.has("nx=4096"));
}

TEST(CliArgs, EqualsSyntaxEmptyValueIsFalsyFlag) {
    // "-flag=" carries an empty value: present, but false as a flag — the
    // same falsy set ("", "0", absent) OptionSet uses for KDR_* env vars.
    const CliArgs args = make({"-verbose=", "-trace=0", "-fused=1"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_FALSE(args.get_flag("verbose"));
    EXPECT_FALSE(args.get_flag("trace"));
    EXPECT_TRUE(args.get_flag("fused"));
    EXPECT_EQ(args.get_string("verbose", "x"), "");
}

TEST(CliArgs, RepeatedFlagLastOccurrenceWins) {
    const CliArgs args = make({"-nx", "8", "-nx", "16", "-solver=cg", "-solver", "gmres"});
    EXPECT_EQ(args.get_int("nx", 0), 16);
    EXPECT_EQ(args.get_string("solver", ""), "gmres");
    // Mixed spellings in the other order too.
    const CliArgs rev = make({"-solver", "gmres", "-solver=cg"});
    EXPECT_EQ(rev.get_string("solver", ""), "cg");
}

TEST(CliArgs, DegenerateEqualsTokensAreIgnored) {
    // "-=x" has no key; "-" is too short to be a flag at all.
    const CliArgs args = make({"-=x", "-", "-nx", "8"});
    EXPECT_FALSE(args.has(""));
    EXPECT_EQ(args.get_int("nx", 0), 8);
}

} // namespace
} // namespace kdr
