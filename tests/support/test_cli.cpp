#include "support/cli.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace kdr {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
    std::vector<const char*> v{"prog"};
    v.insert(v.end(), argv.begin(), argv.end());
    return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, ParsesKeyValuePairs) {
    const CliArgs args = make({"-dim", "2", "-solver", "1", "-nx", "4096"});
    EXPECT_EQ(args.get_int("dim", 0), 2);
    EXPECT_EQ(args.get_int("solver", 0), 1);
    EXPECT_EQ(args.get_int("nx", 0), 4096);
}

TEST(CliArgs, FallbackWhenMissing) {
    const CliArgs args = make({"-dim", "2"});
    EXPECT_EQ(args.get_int("ny", 128), 128);
    EXPECT_EQ(args.get_string("solver", "cg"), "cg");
    EXPECT_DOUBLE_EQ(args.get_double("beta", 1e-3), 1e-3);
}

TEST(CliArgs, ParsesDoubles) {
    const CliArgs args = make({"-beta", "0.001"});
    EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 0.001);
}

TEST(CliArgs, BareFlagIsTrue) {
    const CliArgs args = make({"-verbose", "-nx", "8"});
    EXPECT_TRUE(args.get_flag("verbose"));
    EXPECT_FALSE(args.get_flag("quiet"));
    EXPECT_EQ(args.get_int("nx", 0), 8);
}

TEST(CliArgs, HasDetectsPresence) {
    const CliArgs args = make({"-x", "1"});
    EXPECT_TRUE(args.has("x"));
    EXPECT_FALSE(args.has("y"));
}

TEST(CliArgs, RejectsMalformedInt) {
    const CliArgs args = make({"-nx", "abc"});
    EXPECT_THROW((void)args.get_int("nx", 0), Error);
}

TEST(CliArgs, NegativeNumbersAreValuesNotFlags) {
    // Regression: "-shift -1.5" used to parse as two bare flags because the
    // value starts with '-'.
    const CliArgs args = make({"-shift", "-1.5", "-seed", "-1", "-nx", "8"});
    EXPECT_DOUBLE_EQ(args.get_double("shift", 0.0), -1.5);
    EXPECT_EQ(args.get_int("seed", 0), -1);
    EXPECT_EQ(args.get_int("nx", 0), 8);
    EXPECT_FALSE(args.has("1.5")) << "-1.5 must not register as a flag";
}

TEST(CliArgs, NegativeScientificNotationIsAValue) {
    const CliArgs args = make({"-tol", "-1e-8"});
    EXPECT_DOUBLE_EQ(args.get_double("tol", 0.0), -1e-8);
}

TEST(CliArgs, NonNumericDashTokenStaysAFlag) {
    // "-verbose -quiet": the token after -verbose is not a number, so both
    // remain bare flags.
    const CliArgs args = make({"-verbose", "-quiet"});
    EXPECT_TRUE(args.get_flag("verbose"));
    EXPECT_TRUE(args.get_flag("quiet"));
}

TEST(CliArgs, StringValues) {
    const CliArgs args = make({"-solver", "bicgstab"});
    EXPECT_EQ(args.get_string("solver", ""), "bicgstab");
}

} // namespace
} // namespace kdr
