#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace kdr {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, ReproducibleAcrossReseed) {
    Rng r(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 32; ++i) first.push_back(r.next());
    r.reseed(7);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(r.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(123);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIndexCoversRange) {
    Rng r(55);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = r.uniform_index(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u) << "all 10 values should appear in 2000 draws";
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng r(77);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = r.uniform_int(0, 39); // Fig 10 background-load range
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 39);
        saw_lo |= (v == 0);
        saw_hi |= (v == 39);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIndexZeroIsZero) {
    Rng r(3);
    EXPECT_EQ(r.uniform_index(0), 0u);
}

TEST(Rng, MeanOfUniformApproachesHalf) {
    Rng r(2024);
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) sum += r.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

} // namespace
} // namespace kdr
