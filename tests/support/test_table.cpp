#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace kdr {
namespace {

TEST(Table, PrintsHeaderAndRows) {
    Table t({"size", "time"});
    t.add_row({"1024", "0.5"});
    t.add_row({"2048", "1.1"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("size"), std::string::npos);
    EXPECT_NE(out.find("2048"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), Error); }

TEST(Table, NumFormatsFixedPrecision) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Table, EngScalesUnits) {
    EXPECT_EQ(Table::eng(1500.0, 1), "1.5k");
    EXPECT_EQ(Table::eng(2.5e6, 1), "2.5M");
    EXPECT_EQ(Table::eng(999.0, 0), "999");
    EXPECT_EQ(Table::eng(1.0e9, 0), "1G");
}

TEST(Table, ColumnsAlign) {
    Table t({"x", "longheader"});
    t.add_row({"verylongcell", "1"});
    std::ostringstream os;
    t.print(os);
    // All lines between rules have equal length.
    std::istringstream is(os.str());
    std::string line;
    std::size_t len = 0;
    while (std::getline(is, line)) {
        if (len == 0) len = line.size();
        EXPECT_EQ(line.size(), len);
    }
}

} // namespace
} // namespace kdr
