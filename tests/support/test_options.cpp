/// OptionSet: one declaration per knob yields an env override, a CLI flag,
/// and a help line, with CLI taking precedence over the environment.

#include "support/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "support/error.hpp"

namespace kdr::support {
namespace {

struct Knobs {
    bool flag = false;
    int small = 3;
    std::int64_t big = 7;
    std::uint64_t seed = 42;
    double rate = 0.5;
    std::string path;

    void bind(OptionSet& opts) {
        opts.add_flag("flag", flag, "a flag");
        opts.add_int("small", small, "an int");
        opts.add_int("big", big, "a 64-bit int");
        opts.add_uint("seed", seed, "a seed");
        opts.add_double("rate", rate, "a rate");
        opts.add_string("path", path, "a path");
    }
};

CliArgs make_args(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "test");
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionSet, CliOverridesEveryKind) {
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    opts.apply_cli(make_args({"-flag", "-small", "11", "-big", "1099511627776", "-seed",
                              "99", "-rate", "0.25", "-path", "out.json"}));
    EXPECT_TRUE(k.flag);
    EXPECT_EQ(k.small, 11);
    EXPECT_EQ(k.big, 1099511627776LL);
    EXPECT_EQ(k.seed, 99u);
    EXPECT_DOUBLE_EQ(k.rate, 0.25);
    EXPECT_EQ(k.path, "out.json");
}

TEST(OptionSet, EnvAppliesAndCliWins) {
    ::setenv("KDR_SMALL", "5", 1);
    ::setenv("KDR_FLAG", "1", 1);
    ::setenv("KDR_RATE", "0.75", 1);
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    opts.parse(make_args({"-rate", "0.125"}));
    ::unsetenv("KDR_SMALL");
    ::unsetenv("KDR_FLAG");
    ::unsetenv("KDR_RATE");
    EXPECT_EQ(k.small, 5) << "env-only knob takes the env value";
    EXPECT_TRUE(k.flag);
    EXPECT_DOUBLE_EQ(k.rate, 0.125) << "CLI beats env";
}

TEST(OptionSet, FlagSpellings) {
    for (const char* spelling : {"0", ""}) {
        ::setenv("KDR_FLAG", spelling, 1);
        Knobs k;
        k.flag = true;
        OptionSet opts;
        k.bind(opts);
        opts.apply_env();
        EXPECT_FALSE(k.flag) << "'" << spelling << "' must read as false";
    }
    ::unsetenv("KDR_FLAG");
}

TEST(OptionSet, RejectsMalformedValuesAndDuplicates) {
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    EXPECT_THROW(opts.apply_cli(make_args({"-small", "abc"})), Error);
    EXPECT_THROW(opts.apply_cli(make_args({"-rate", "fast"})), Error);
    EXPECT_THROW(opts.apply_cli(make_args({"-seed", "-3"})), Error);
    bool dup = false;
    EXPECT_THROW(opts.add_flag("flag", dup, "again"), Error);
}

TEST(OptionSet, RejectsNamesCollidingOnTheEnvKey) {
    // "-flag" and "-FLAG" both uppercase to KDR_FLAG: registration used to
    // succeed silently and the later knob won every env override. Now it is
    // a structured error naming both flags and the shared key.
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    bool shouty = false;
    try {
        opts.add_flag("FLAG", shouty, "case-colliding twin");
        FAIL() << "expected a structured error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("-flag"), std::string::npos) << what;
        EXPECT_NE(what.find("-FLAG"), std::string::npos) << what;
        EXPECT_NE(what.find("KDR_FLAG"), std::string::npos) << what;
    }
}

TEST(OptionSet, RejectsRebindingTheSameVariable) {
    // Registering one variable under two names makes the later flag's
    // override silently win; must be rejected at registration time.
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    EXPECT_THROW(opts.add_flag("flag2", k.flag, "alias of -flag"), Error);
    EXPECT_THROW(opts.add_int("small2", k.small, "alias of -small"), Error);
}

TEST(OptionSet, EqualsSpellingMatchesSpaceSpellingOnEverySurface) {
    // "-key=value" (the KDR_KEY=value env spelling, accepted on the command
    // line) must be indistinguishable from "-key value".
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    opts.apply_cli(make_args({"-small=11", "-rate=0.25", "-path=out.json", "-flag=1"}));
    EXPECT_EQ(k.small, 11);
    EXPECT_DOUBLE_EQ(k.rate, 0.25);
    EXPECT_EQ(k.path, "out.json");
    EXPECT_TRUE(k.flag);
}

TEST(OptionSet, CliFalsyFlagSpellingsMatchEnv) {
    // "-flag=0" and "-flag=" must read as false on the CLI, exactly like
    // KDR_FLAG=0 / KDR_FLAG= in the environment.
    for (const char* arg : {"-flag=0", "-flag="}) {
        Knobs k;
        k.flag = true;
        OptionSet opts;
        k.bind(opts);
        opts.apply_cli(make_args({arg}));
        EXPECT_FALSE(k.flag) << "'" << arg << "' must read as false";
    }
}

TEST(OptionSet, ExplicitPrecedenceCliOverEnvOverDefault) {
    // All three sources set `small`; CLI wins. Only env sets `big`; env wins
    // over the default. Nothing sets `seed`; the default survives.
    ::setenv("KDR_SMALL", "5", 1);
    ::setenv("KDR_BIG", "21", 1);
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    opts.parse(make_args({"-small=9"}));
    ::unsetenv("KDR_SMALL");
    ::unsetenv("KDR_BIG");
    EXPECT_EQ(k.small, 9) << "CLI > env";
    EXPECT_EQ(k.big, 21) << "env > default";
    EXPECT_EQ(k.seed, 42u) << "default survives";
}

TEST(OptionSet, RepeatedCliFlagLastWins) {
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    opts.apply_cli(make_args({"-small", "4", "-small=6"}));
    EXPECT_EQ(k.small, 6);
}

TEST(OptionSet, HelpListsEveryKnobWithEnvAndDefault) {
    Knobs k;
    OptionSet opts;
    k.bind(opts);
    const std::string h = opts.help();
    EXPECT_NE(h.find("-small (env KDR_SMALL, default 3)"), std::string::npos) << h;
    EXPECT_NE(h.find("-flag (env KDR_FLAG, default 0)"), std::string::npos) << h;
    EXPECT_NE(h.find("a rate"), std::string::npos);
}

} // namespace
} // namespace kdr::support
