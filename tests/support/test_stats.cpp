#include "support/stats.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace kdr {
namespace {

TEST(RunningStat, EmptyHasZeroCount) {
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
    RunningStat s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
}

TEST(RunningStat, NegativeValues) {
    RunningStat s;
    s.add(-3.0);
    s.add(-1.0);
    EXPECT_DOUBLE_EQ(s.mean(), -2.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), -1.0);
}

TEST(GeometricMean, SingleValue) { EXPECT_DOUBLE_EQ(geometric_mean({8.0}), 8.0); }

TEST(GeometricMean, TwoValues) { EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12); }

TEST(GeometricMean, RejectsEmpty) { EXPECT_THROW((void)geometric_mean({}), Error); }

TEST(GeometricMean, RejectsNonpositive) {
    EXPECT_THROW((void)geometric_mean({1.0, 0.0}), Error);
    EXPECT_THROW((void)geometric_mean({1.0, -2.0}), Error);
}

TEST(MinOf, PicksMinimum) { EXPECT_DOUBLE_EQ(min_of({3.0, 1.5, 2.0}), 1.5); }

TEST(MinOf, RejectsEmpty) { EXPECT_THROW((void)min_of({}), Error); }

} // namespace
} // namespace kdr
