#include "mpisim/bsp.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace kdr::bsp {
namespace {

sim::MachineDesc machine2x2() {
    sim::MachineDesc m = sim::MachineDesc::lassen(2);
    m.gpus_per_node = 2;
    m.gpu_launch_overhead = 0.0;
    m.nic_latency = 0.0;
    m.nic_message_overhead = 0.0;
    return m;
}

TEST(BspWorld, GpuRanksEnumerateNodeMajor) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    EXPECT_EQ(world.nranks(), 4);
    EXPECT_EQ(world.proc_of(0).node, 0);
    EXPECT_EQ(world.proc_of(1).node, 0);
    EXPECT_EQ(world.proc_of(1).index, 1);
    EXPECT_EQ(world.proc_of(3).node, 1);
    EXPECT_THROW((void)world.proc_of(4), Error);
}

TEST(BspWorld, CpuRanksAreOnePerNode) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::CPU);
    EXPECT_EQ(world.nranks(), 2);
    EXPECT_EQ(world.proc_of(1).kind, sim::ProcKind::CPU);
    EXPECT_EQ(world.proc_of(1).node, 1);
}

TEST(BspWorld, ComputePhaseAdvancesToSlowestRank) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    const double f = cluster.machine().gpu_flops;
    // Rank 2 does 2 seconds of flops; everyone else 1 second.
    std::vector<sim::TaskCost> costs(4, {f, 0.0});
    costs[2] = {2.0 * f, 0.0};
    world.compute_phase(costs, 0.0);
    EXPECT_DOUBLE_EQ(world.now(), 2.0) << "bulk-synchronous: the phase ends with the slowest";
}

TEST(BspWorld, ComputePhaseRejectsWrongArity) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    EXPECT_THROW(world.compute_phase({{1.0, 0.0}}, 0.0), Error);
}

TEST(BspWorld, OverheadChargedPerRank) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    world.compute_uniform_phase({0.0, 0.0}, 0.5);
    EXPECT_DOUBLE_EQ(world.now(), 0.5);
}

TEST(BspWorld, ExchangePhaseMovesBytesAndAccumulates) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    const double bytes = cluster.machine().nic_bandwidth; // 1 second of wire
    world.exchange_phase({{0, 3, bytes}}); // rank 0 (node 0) -> rank 3 (node 1)
    EXPECT_NEAR(world.now(), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(world.comm_bytes(), bytes);
    // Same-node messages move over the intra-node path (faster).
    const double t = world.now();
    world.exchange_phase({{0, 1, cluster.machine().intra_node_bandwidth}});
    EXPECT_NEAR(world.now() - t, 1.0, 1e-9);
}

TEST(BspWorld, AllreduceCostsLog2TreeLatency) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    const double hop = cluster.machine().collective_hop_latency;
    world.allreduce_phase();
    EXPECT_DOUBLE_EQ(world.now(), 2.0 * 2.0 * hop) << "4 ranks: 2 levels, up+down";
    const double t = world.now();
    world.barrier_phase();
    EXPECT_DOUBLE_EQ(world.now() - t, 2.0 * hop);
}

TEST(BspWorld, ClockNeverGoesBackwards) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    world.advance_to(5.0);
    EXPECT_THROW(world.advance_to(4.0), Error);
    EXPECT_DOUBLE_EQ(world.now(), 5.0);
}

TEST(BspWorld, ExplicitPrimitivesAllowOverlapComposition) {
    // The *_at primitives let a baseline express PETSc-style overlap: a
    // compute starting at t and an exchange starting at t finish
    // independently; the caller advances to the max.
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    const double f = cluster.machine().gpu_flops;
    const double compute_done =
        world.compute_uniform_at(0.0, {2.0 * f, 0.0}, 0.0); // 2 s
    const double comm_done =
        world.exchange_at(0.0, {{0, 3, cluster.machine().nic_bandwidth}}); // 1 s
    EXPECT_DOUBLE_EQ(compute_done, 2.0);
    EXPECT_NEAR(comm_done, 1.0, 1e-9);
    world.advance_to(std::max(compute_done, comm_done));
    EXPECT_DOUBLE_EQ(world.now(), 2.0) << "communication fully hidden under compute";
}

TEST(BspWorld, PhasesSerializeOnTheSameRanks) {
    sim::SimCluster cluster(machine2x2());
    BspWorld world(cluster, sim::ProcKind::GPU);
    const double f = cluster.machine().gpu_flops;
    world.compute_uniform_phase({f, 0.0}, 0.0);
    world.compute_uniform_phase({f, 0.0}, 0.0);
    EXPECT_DOUBLE_EQ(world.now(), 2.0);
}

} // namespace
} // namespace kdr::bsp
