#include <gtest/gtest.h>

#include "baselines/ksp.hpp"
#include "stencil/stencil.hpp"

namespace kdr::baselines {
namespace {

struct BaselineFixture {
    sim::SimCluster cluster;
    bsp::BspWorld world;
    StencilBaseline engine;

    BaselineFixture(stencil::Kind kind, gidx target, Profile profile, int nodes = 2,
                    bool functional = true)
        : cluster([&] {
              sim::MachineDesc m = sim::MachineDesc::lassen(nodes);
              m.gpus_per_node = 2;
              return m;
          }()),
          world(cluster, sim::ProcKind::GPU),
          engine(world, stencil::Spec::cube(kind, target), profile, functional) {}
};

TEST(StencilBaseline, VectorOpsComputeCorrectly) {
    BaselineFixture f(stencil::Kind::D1P3, 64, Profile::petsc());
    auto& e = f.engine;
    auto& b = e.data(StencilBaseline::B);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<double>(i);
    e.copy(StencilBaseline::X, StencilBaseline::B);
    EXPECT_DOUBLE_EQ(e.data(StencilBaseline::X)[10], 10.0);
    e.scal(StencilBaseline::X, 2.0);
    EXPECT_DOUBLE_EQ(e.data(StencilBaseline::X)[10], 20.0);
    e.axpy(StencilBaseline::X, -1.0, StencilBaseline::B);
    EXPECT_DOUBLE_EQ(e.data(StencilBaseline::X)[10], 10.0);
    e.xpay(StencilBaseline::X, 0.0, StencilBaseline::B);
    EXPECT_DOUBLE_EQ(e.data(StencilBaseline::X)[10], 10.0);
    e.zero(StencilBaseline::X);
    EXPECT_DOUBLE_EQ(e.data(StencilBaseline::X)[10], 0.0);
}

TEST(StencilBaseline, DotMatchesDirectSum) {
    BaselineFixture f(stencil::Kind::D1P3, 64, Profile::petsc());
    auto& e = f.engine;
    auto& b = e.data(StencilBaseline::B);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0;
    e.copy(StencilBaseline::X, StencilBaseline::B);
    EXPECT_DOUBLE_EQ(e.dot(StencilBaseline::X, StencilBaseline::B), 64.0);
}

TEST(StencilBaseline, MatvecMatchesCsrReference) {
    BaselineFixture f(stencil::Kind::D2P5, 256, Profile::trilinos());
    auto& e = f.engine;
    const auto b = stencil::random_rhs(e.unknowns(), 3);
    e.data(StencilBaseline::B) = b;
    const auto y = e.allocate_vector();
    e.matvec(y, StencilBaseline::B);
    const stencil::Spec spec = e.spec();
    const IndexSpace D = IndexSpace::create(e.unknowns());
    const IndexSpace R = IndexSpace::create(e.unknowns());
    const auto csr = stencil::laplacian_csr(spec, D, R);
    std::vector<double> expect(static_cast<std::size_t>(e.unknowns()), 0.0);
    csr.multiply_add(b, expect);
    for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_NEAR(e.data(y)[i], expect[i], 1e-12);
    }
}

TEST(StencilBaseline, ClockAdvancesAndCommBytesAccumulate) {
    BaselineFixture f(stencil::Kind::D2P5, 1024, Profile::petsc());
    auto& e = f.engine;
    const double t0 = e.now();
    const auto y = e.allocate_vector();
    e.matvec(y, StencilBaseline::B);
    EXPECT_GT(e.now(), t0);
    EXPECT_GT(e.comm_bytes(), 0.0) << "halo exchange crosses node boundaries";
}

TEST(StencilBaseline, TimingModeRefusesDataAccess) {
    BaselineFixture f(stencil::Kind::D2P5, 1 << 14, Profile::petsc(), 2, /*functional=*/false);
    EXPECT_THROW((void)f.engine.data(StencilBaseline::X), Error);
    // Timing-only operations still advance the clock.
    const auto y = f.engine.allocate_vector();
    f.engine.matvec(y, StencilBaseline::B);
    EXPECT_GT(f.engine.now(), 0.0);
}

TEST(StencilBaseline, OverlapProfileBeatsBlockingProfileOnSameWork) {
    // PETSc's overlapped MatMult must be no slower than a Trilinos-style
    // blocking import for identical workload and machine.
    Profile overlap = Profile::petsc();
    Profile blocking = Profile::petsc();
    blocking.overlap_spmv = false;
    blocking.split_offdiag = false;
    double t_overlap;
    double t_blocking;
    {
        BaselineFixture f(stencil::Kind::D2P5, 1 << 16, overlap, 4, false);
        const auto y = f.engine.allocate_vector();
        for (int i = 0; i < 10; ++i) f.engine.matvec(y, StencilBaseline::B);
        t_overlap = f.engine.now();
    }
    {
        BaselineFixture f(stencil::Kind::D2P5, 1 << 16, blocking, 4, false);
        const auto y = f.engine.allocate_vector();
        for (int i = 0; i < 10; ++i) f.engine.matvec(y, StencilBaseline::B);
        t_blocking = f.engine.now();
    }
    EXPECT_LT(t_overlap, t_blocking);
}

class KspMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(KspMethodTest, ConvergesOnPoisson2d) {
    BaselineFixture f(stencil::Kind::D2P5, 256, Profile::petsc());
    auto& e = f.engine;
    e.data(StencilBaseline::B) = stencil::random_rhs(e.unknowns(), 5);
    KspSolver solver(e, GetParam(), 10);
    int iters = 0;
    while (solver.residual_norm() > 1e-8 && iters < 1500) {
        solver.step();
        ++iters;
    }
    solver.finalize(); // restarted methods apply their partial update on stop
    EXPECT_LT(iters, 1500) << method_name(GetParam());

    // True residual check.
    const IndexSpace D = IndexSpace::create(e.unknowns());
    const IndexSpace R = IndexSpace::create(e.unknowns());
    const auto csr = stencil::laplacian_csr(e.spec(), D, R);
    std::vector<double> ax(static_cast<std::size_t>(e.unknowns()), 0.0);
    csr.multiply_add(e.data(StencilBaseline::X), ax);
    double r2 = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i) {
        const double d = e.data(StencilBaseline::B)[i] - ax[i];
        r2 += d * d;
    }
    EXPECT_LT(std::sqrt(r2), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Methods, KspMethodTest,
                         ::testing::Values(Method::CG, Method::BiCGStab, Method::GmresStatic,
                                           Method::GmresDynamic),
                         [](const ::testing::TestParamInfo<Method>& pinfo) {
                             std::string n = method_name(pinfo.param);
                             for (char& c : n)
                                 if (c == '-') c = '_';
                             return n;
                         });

TEST(KspSolver, DynamicRestartShortCircuitsCycles) {
    // The dynamic policy restarts earlier than the static one on a fast-
    // converging system — the behavioral difference that makes PETSc's GMRES
    // incomparable in the paper's Fig 8.
    // 8x8 Poisson: well enough conditioned that GMRES(10) converges quickly
    // and the dynamic policy's early restarts are visible.
    BaselineFixture fs(stencil::Kind::D2P5, 64, Profile::petsc());
    BaselineFixture fd(stencil::Kind::D2P5, 64, Profile::petsc());
    fs.engine.data(StencilBaseline::B) = stencil::random_rhs(64, 6);
    fd.engine.data(StencilBaseline::B) = stencil::random_rhs(64, 6);
    KspSolver stat(fs.engine, Method::GmresStatic, 10);
    KspSolver dyn(fd.engine, Method::GmresDynamic, 10);
    int stat_iters = 0;
    int dyn_iters = 0;
    while (stat.residual_norm() > 1e-8 && stat_iters < 500) {
        stat.step();
        ++stat_iters;
    }
    while (dyn.residual_norm() > 1e-8 && dyn_iters < 500) {
        dyn.step();
        ++dyn_iters;
    }
    EXPECT_LT(stat_iters, 500);
    EXPECT_LT(dyn_iters, 500);
    EXPECT_NE(stat_iters, dyn_iters) << "policies must actually differ";
}

} // namespace
} // namespace kdr::baselines
