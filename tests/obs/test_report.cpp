/// Solve-report tests: JSON round-trip, file output, table rendering, and the
/// end-to-end accounting invariants on a real CG solve — per-task-kind
/// virtual times must sum to the cluster's total busy time (within 1%), node
/// rows must be consistent with utilization and imbalance, and the Chrome
/// trace must carry the solver-phase span track next to the task rows.

#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>

#include "core/monitor.hpp"
#include "core/solvers.hpp"
#include "obs/json.hpp"
#include "runtime/trace_export.hpp"
#include "stencil/stencil.hpp"
#include "support/error.hpp"

namespace kdr::obs {
namespace {

SolveReport sample_report() {
    SolveReport r;
    r.makespan = 1.25;
    r.tasks = 42;
    r.busy_total = 3.5;
    r.task_kinds = {{"spmv", 10, 2.0, 0.2, 0.4}, {"dot", 20, 1.5, 0.075, 0.1}};
    r.nodes = {{0, 2.0, 0.8}, {1, 1.5, 0.6}};
    r.load_imbalance = 2.0 / 1.75;
    r.transfers = {{0, 1, 4096.0, 3}, {1, 0, 128.0, 1}};
    r.transfer_bytes = 4224.0;
    r.transfer_count = 4;
    r.phases = {{"spmv", 10, 0.9}, {"setup", 1, 0.1}};
    r.convergence = {{0, 1.0, 0.0}, {1, 0.25, 0.5}};
    r.validation = {/*enabled=*/true, /*tasks_checked=*/40, /*violations=*/1,
                    /*race_pairs=*/2, /*overdeclared=*/3};
    return r;
}

TEST(SolveReport, JsonRoundTripPreservesEveryField) {
    const SolveReport r = sample_report();
    const SolveReport back = SolveReport::from_json(r.to_json());

    EXPECT_DOUBLE_EQ(back.makespan, r.makespan);
    EXPECT_EQ(back.tasks, r.tasks);
    EXPECT_DOUBLE_EQ(back.busy_total, r.busy_total);
    EXPECT_DOUBLE_EQ(back.load_imbalance, r.load_imbalance);
    EXPECT_DOUBLE_EQ(back.transfer_bytes, r.transfer_bytes);
    EXPECT_EQ(back.transfer_count, r.transfer_count);

    EXPECT_EQ(back.validation.enabled, r.validation.enabled);
    EXPECT_EQ(back.validation.tasks_checked, r.validation.tasks_checked);
    EXPECT_EQ(back.validation.violations, r.validation.violations);
    EXPECT_EQ(back.validation.race_pairs, r.validation.race_pairs);
    EXPECT_EQ(back.validation.overdeclared, r.validation.overdeclared);

    ASSERT_EQ(back.task_kinds.size(), r.task_kinds.size());
    for (std::size_t i = 0; i < r.task_kinds.size(); ++i) {
        EXPECT_EQ(back.task_kinds[i].name, r.task_kinds[i].name);
        EXPECT_EQ(back.task_kinds[i].count, r.task_kinds[i].count);
        EXPECT_DOUBLE_EQ(back.task_kinds[i].total, r.task_kinds[i].total);
        EXPECT_DOUBLE_EQ(back.task_kinds[i].mean, r.task_kinds[i].mean);
        EXPECT_DOUBLE_EQ(back.task_kinds[i].max, r.task_kinds[i].max);
    }
    ASSERT_EQ(back.nodes.size(), r.nodes.size());
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        EXPECT_EQ(back.nodes[i].node, r.nodes[i].node);
        EXPECT_DOUBLE_EQ(back.nodes[i].busy, r.nodes[i].busy);
        EXPECT_DOUBLE_EQ(back.nodes[i].utilization, r.nodes[i].utilization);
    }
    ASSERT_EQ(back.transfers.size(), r.transfers.size());
    for (std::size_t i = 0; i < r.transfers.size(); ++i) {
        EXPECT_EQ(back.transfers[i].src, r.transfers[i].src);
        EXPECT_EQ(back.transfers[i].dst, r.transfers[i].dst);
        EXPECT_DOUBLE_EQ(back.transfers[i].bytes, r.transfers[i].bytes);
        EXPECT_EQ(back.transfers[i].count, r.transfers[i].count);
    }
    ASSERT_EQ(back.phases.size(), r.phases.size());
    for (std::size_t i = 0; i < r.phases.size(); ++i) {
        EXPECT_EQ(back.phases[i].name, r.phases[i].name);
        EXPECT_EQ(back.phases[i].count, r.phases[i].count);
        EXPECT_DOUBLE_EQ(back.phases[i].total, r.phases[i].total);
    }
    ASSERT_EQ(back.convergence.size(), r.convergence.size());
    for (std::size_t i = 0; i < r.convergence.size(); ++i) {
        EXPECT_EQ(back.convergence[i].iteration, r.convergence[i].iteration);
        EXPECT_DOUBLE_EQ(back.convergence[i].residual, r.convergence[i].residual);
        EXPECT_DOUBLE_EQ(back.convergence[i].virtual_time, r.convergence[i].virtual_time);
    }
}

TEST(SolveReport, WriteSolveReportProducesParseableFile) {
    const std::string path = "test_report_tmp.json";
    write_solve_report(path, sample_report());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream text;
    text << in.rdbuf();
    const SolveReport back = SolveReport::from_json(text.str());
    EXPECT_EQ(back.tasks, 42u);
    std::remove(path.c_str());

    EXPECT_THROW(write_solve_report("no_such_dir/x/report.json", sample_report()), Error);
}

TEST(SolveReport, PrintRendersAllSections) {
    std::ostringstream os;
    sample_report().print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("makespan"), std::string::npos);
    EXPECT_NE(text.find("spmv"), std::string::npos);
    EXPECT_NE(text.find("imbalance"), std::string::npos);
    EXPECT_NE(text.find("node"), std::string::npos);
    EXPECT_NE(text.find("validation:"), std::string::npos);
    EXPECT_NE(text.find("race pairs"), std::string::npos);
}

// ------------------------------------------------------------- integration

/// A small functional CG solve with profiling on, everything retained.
struct CgRun {
    std::unique_ptr<rt::Runtime> runtime;
    SolveReport report;
    std::vector<rt::TaskProfile> profiles;
    std::vector<SpanRecord> spans;
    int iterations = 0;
    int procs_per_node = 0;
};

CgRun run_small_cg() {
    CgRun out;
    sim::MachineDesc m = sim::MachineDesc::lassen(2);
    m.gpus_per_node = 2;
    out.procs_per_node = 1 + m.gpus_per_node;
    out.runtime = std::make_unique<rt::Runtime>(m);
    out.runtime->set_profiling(true);

    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, gidx{256});
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const IndexSpace R = IndexSpace::create(n, "R");
    const rt::RegionId xr = out.runtime->create_region(D, "x");
    const rt::RegionId br = out.runtime->create_region(R, "b");
    const rt::FieldId xf = out.runtime->add_field<double>(xr, "v");
    const rt::FieldId bf = out.runtime->add_field<double>(br, "v");
    const auto b = stencil::random_rhs(n, 7);
    auto bd = out.runtime->field_data<double>(br, bf);
    std::copy(b.begin(), b.end(), bd.begin());

    core::Planner<double> planner(*out.runtime);
    planner.add_sol_vector(xr, xf, Partition::equal(D, 4));
    planner.add_rhs_vector(br, bf, Partition::equal(R, 4));
    planner.add_operator(
        std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, R)), 0, 0);

    core::CgSolver<double> inner(planner);
    core::SolverMonitor<double> cg(inner);
    while (cg.get_convergence_measure().value > 1e-8 && out.iterations < 500) {
        cg.step();
        ++out.iterations;
    }
    out.report = out.runtime->build_solve_report(cg.report_samples());
    out.spans = out.runtime->spans().completed();
    out.profiles = out.runtime->take_profiles();
    return out;
}

TEST(SolveReportIntegration, TaskKindTimesSumToBusyTotalWithinOnePercent) {
    const CgRun run = run_small_cg();
    const SolveReport& r = run.report;
    ASSERT_GT(run.iterations, 0);
    ASSERT_FALSE(r.task_kinds.empty());
    ASSERT_GT(r.busy_total, 0.0);

    // The acceptance invariant: profiling accounts for every busy second.
    double kinds_total = 0.0;
    for (const TaskKindStats& k : r.task_kinds) {
        kinds_total += k.total;
        EXPECT_GT(k.count, 0u);
        EXPECT_NEAR(k.mean * static_cast<double>(k.count), k.total, 1e-9 * k.total);
        EXPECT_GE(k.max, k.mean);
    }
    EXPECT_NEAR(kinds_total, r.busy_total, 0.01 * r.busy_total);

    // Task-kind rows are sorted by total time, descending.
    for (std::size_t i = 1; i < r.task_kinds.size(); ++i) {
        EXPECT_GE(r.task_kinds[i - 1].total, r.task_kinds[i].total);
    }

    EXPECT_EQ(r.tasks, run.runtime->tasks_launched());
    EXPECT_DOUBLE_EQ(r.makespan, run.runtime->current_time());
}

TEST(SolveReportIntegration, NodeRowsAreConsistent) {
    const CgRun run = run_small_cg();
    const SolveReport& r = run.report;
    ASSERT_EQ(r.nodes.size(), 2u);
    double node_busy = 0.0;
    for (const NodeStats& n : r.nodes) {
        node_busy += n.busy;
        const double expected =
            n.busy / (r.makespan * static_cast<double>(run.procs_per_node));
        EXPECT_NEAR(n.utilization, expected, 1e-12);
        EXPECT_GE(n.utilization, 0.0);
        EXPECT_LE(n.utilization, 1.0);
    }
    EXPECT_NEAR(node_busy, r.busy_total, 1e-9 * r.busy_total);
    EXPECT_GE(r.load_imbalance, 1.0);

    // Transfer matrix edges sum to the runtime's totals.
    double edge_bytes = 0.0;
    std::uint64_t edge_count = 0;
    for (const TransferEdge& e : r.transfers) {
        edge_bytes += e.bytes;
        edge_count += e.count;
    }
    EXPECT_DOUBLE_EQ(edge_bytes, r.transfer_bytes);
    EXPECT_EQ(edge_count, r.transfer_count);
    EXPECT_DOUBLE_EQ(r.transfer_bytes, run.runtime->transfer_bytes());
}

TEST(SolveReportIntegration, PhasesAndConvergenceAreRecorded) {
    const CgRun run = run_small_cg();
    const SolveReport& r = run.report;
    std::set<std::string> phase_names;
    for (const PhaseStats& p : r.phases) {
        phase_names.insert(p.name);
        EXPECT_GT(p.count, 0u);
        EXPECT_GE(p.total, 0.0);
    }
    EXPECT_TRUE(phase_names.count("spmv")) << "CG must record spmv phase spans";
    EXPECT_TRUE(phase_names.count("dot"));
    EXPECT_TRUE(phase_names.count("setup"));

    // Monitor records one sample at construction plus one per step.
    ASSERT_EQ(r.convergence.size(), static_cast<std::size_t>(run.iterations) + 1);
    EXPECT_LT(r.convergence.back().residual, r.convergence.front().residual);
    EXPECT_LE(r.convergence.back().residual, 1e-8);
    for (std::size_t i = 1; i < r.convergence.size(); ++i) {
        EXPECT_GE(r.convergence[i].virtual_time, r.convergence[i - 1].virtual_time);
    }
}

TEST(SolveReportIntegration, ChromeTraceCarriesPhaseTrackAndTaskRows) {
    const CgRun run = run_small_cg();
    ASSERT_FALSE(run.profiles.empty());
    ASSERT_FALSE(run.spans.empty());
    const std::string trace = rt::to_chrome_trace(run.profiles, run.spans);

    // The trace is valid JSON with both categories of slices present.
    const json::Value doc = json::Value::parse(trace);
    const json::Value& events = doc["traceEvents"];
    ASSERT_TRUE(events.is_array());
    bool saw_task = false, saw_phase = false, saw_track_meta = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value& e = events.at(i);
        if (e["ph"].as_string() == "M" && e["name"].as_string() == "process_name" &&
            e["args"]["name"].as_string() == "solver phases") {
            saw_track_meta = true;
            EXPECT_DOUBLE_EQ(e["pid"].as_number(), double{rt::kPhaseTrackPid});
        }
        if (!e.has("cat")) continue;
        if (e["cat"].as_string() == "task") {
            saw_task = true;
            EXPECT_LT(e["pid"].as_number(), double{rt::kPhaseTrackPid});
        }
        if (e["cat"].as_string() == "phase") {
            saw_phase = true;
            EXPECT_DOUBLE_EQ(e["pid"].as_number(), double{rt::kPhaseTrackPid});
        }
    }
    EXPECT_TRUE(saw_task) << "per-processor task slices missing";
    EXPECT_TRUE(saw_phase) << "solver-phase span slices missing";
    EXPECT_TRUE(saw_track_meta) << "phase track metadata missing";
}

} // namespace
} // namespace kdr::obs
