#include "obs/span.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace kdr::obs {
namespace {

/// Clock the tests advance by hand — spans record whatever it reads.
struct ManualClock {
    double now = 0.0;
    SpanTracker::Clock fn() {
        return [this] { return now; };
    }
};

TEST(SpanTracker, RecordsStartFinishAndNestingDepth) {
    ManualClock clk;
    SpanTracker tracker(clk.fn());
    const std::size_t outer = tracker.open("solve");
    clk.now = 1.0;
    const std::size_t inner = tracker.open("spmv");
    EXPECT_EQ(tracker.open_depth(), 2u);
    clk.now = 3.0;
    tracker.close(inner);
    clk.now = 5.0;
    tracker.close(outer);
    EXPECT_EQ(tracker.open_depth(), 0u);

    const auto& done = tracker.completed();
    ASSERT_EQ(done.size(), 2u);
    // Innermost closes first.
    EXPECT_EQ(done[0].name, "spmv");
    EXPECT_DOUBLE_EQ(done[0].start, 1.0);
    EXPECT_DOUBLE_EQ(done[0].finish, 3.0);
    EXPECT_EQ(done[0].depth, 1);
    EXPECT_EQ(done[1].name, "solve");
    EXPECT_DOUBLE_EQ(done[1].start, 0.0);
    EXPECT_DOUBLE_EQ(done[1].finish, 5.0);
    EXPECT_EQ(done[1].depth, 0);
}

TEST(SpanTracker, EnforcesLifoClosing) {
    ManualClock clk;
    SpanTracker tracker(clk.fn());
    const std::size_t outer = tracker.open("a");
    (void)tracker.open("b");
    EXPECT_THROW(tracker.close(outer), Error) << "outer may not close before inner";
    EXPECT_THROW(tracker.close(99), Error) << "token for a span that was never opened";
}

TEST(SpanTracker, DisabledTrackerRecordsNothing) {
    ManualClock clk;
    SpanTracker tracker(clk.fn());
    tracker.set_enabled(false);
    EXPECT_FALSE(tracker.enabled());
    const std::size_t token = tracker.open("ignored");
    tracker.close(token); // sentinel token: a no-op, never a LIFO violation
    EXPECT_EQ(tracker.open_depth(), 0u);
    EXPECT_TRUE(tracker.completed().empty());

    tracker.set_enabled(true);
    tracker.close(tracker.open("counted"));
    EXPECT_EQ(tracker.completed().size(), 1u);
}

TEST(SpanTracker, TakeDrainsCompletedOnly) {
    ManualClock clk;
    SpanTracker tracker(clk.fn());
    tracker.close(tracker.open("done"));
    const std::size_t open = tracker.open("still-open");
    const std::vector<SpanRecord> drained = tracker.take();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].name, "done");
    EXPECT_TRUE(tracker.completed().empty());
    EXPECT_EQ(tracker.open_depth(), 1u) << "take() must not disturb open spans";
    tracker.close(open);
    EXPECT_EQ(tracker.completed().size(), 1u);
}

TEST(SpanTracker, NullClockRejected) {
    EXPECT_THROW(SpanTracker(nullptr), Error);
}

TEST(Span, RaiiOpensAndCloses) {
    ManualClock clk;
    SpanTracker tracker(clk.fn());
    {
        const Span span(tracker, "phase");
        EXPECT_EQ(tracker.open_depth(), 1u);
        clk.now = 2.0;
    }
    EXPECT_EQ(tracker.open_depth(), 0u);
    ASSERT_EQ(tracker.completed().size(), 1u);
    EXPECT_EQ(tracker.completed()[0].name, "phase");
    EXPECT_DOUBLE_EQ(tracker.completed()[0].finish, 2.0);
}

TEST(Span, MoveTransfersOwnership) {
    ManualClock clk;
    SpanTracker tracker(clk.fn());
    {
        Span a(tracker, "moved");
        const Span b(std::move(a));
        // `a`'s destructor must not close the span a second time.
    }
    ASSERT_EQ(tracker.completed().size(), 1u);
    EXPECT_EQ(tracker.completed()[0].name, "moved");
}

} // namespace
} // namespace kdr::obs
