#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace kdr::obs {
namespace {

TEST(Counter, AccumulatesAndRejectsNegative) {
    Counter c;
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    c.inc();
    c.add(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    EXPECT_THROW(c.add(-1.0), Error);
    EXPECT_DOUBLE_EQ(c.value(), 3.5) << "failed add must not change the value";
}

TEST(Gauge, SetAndAdd) {
    Gauge g;
    g.set(4.0);
    g.add(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Histogram, ObservationsLandInFirstBucketWithValueLeBound) {
    Histogram h({1.0, 10.0, 100.0});
    h.observe(0.5);   // <= 1     -> bucket 0
    h.observe(1.0);   // == bound -> bucket 0 (le semantics)
    h.observe(5.0);   //          -> bucket 1
    h.observe(100.0); //          -> bucket 2
    h.observe(1e6);   // overflow -> bucket 3 (+inf)
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
    ASSERT_EQ(h.bucket_counts().size(), 4u);
    EXPECT_EQ(h.bucket_counts()[0], 2u);
    EXPECT_EQ(h.bucket_counts()[1], 1u);
    EXPECT_EQ(h.bucket_counts()[2], 1u);
    EXPECT_EQ(h.bucket_counts()[3], 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
    Histogram h({1.0, 2.0, 4.0});
    h.observe(0.5); // bucket (0, 1]
    h.observe(1.5); // bucket (1, 2]
    h.observe(1.6); // bucket (1, 2]
    h.observe(3.0); // bucket (2, 4]
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5) << "rank 2 lands mid-bucket (1, 2]";
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
    EXPECT_THROW((void)h.quantile(-0.1), Error);
    EXPECT_THROW((void)h.quantile(1.1), Error);
}

TEST(Histogram, QuantileIsLinearInsideOneBucket) {
    Histogram h({10.0});
    for (int i = 0; i < 10; ++i) h.observe(5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 9.0);
}

TEST(Histogram, QuantileClampsOverflowToLastBound) {
    Histogram h({1.0});
    h.observe(50.0); // overflow bucket
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 1.0)
        << "overflow observations clamp to the highest finite bound";
}

TEST(Histogram, QuantileOfEmptyIsZero) {
    const Histogram h({1.0});
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileRankOnBucketBoundaryReturnsTheBoundary) {
    Histogram h({1.0, 2.0, 4.0});
    for (const double v : {0.5, 0.6, 1.5, 1.6, 3.0, 3.5}) h.observe(v);
    // Ranks 2 and 4 land exactly on the bucket edges: no interpolation into
    // the next bucket.
    EXPECT_DOUBLE_EQ(h.quantile(1.0 / 3.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(2.0 / 3.0), 2.0);
}

TEST(Histogram, QuantileNeverInterpolatesBackwardsIntoNegativeBounds) {
    // All mass in the underflow bucket (-inf, -2]: there is no finite lower
    // edge, and interpolating down from 0 would produce values *above* the
    // bucket's upper bound. The quantile clamps to the bound instead.
    Histogram h({-2.0, 1.0});
    h.observe(-3.0);
    h.observe(-5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), -2.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), -2.0);
    // Positive-bound underflow buckets keep the historical interpolate-from-0
    // behavior.
    Histogram g({4.0});
    g.observe(1.0);
    g.observe(2.0);
    EXPECT_DOUBLE_EQ(g.quantile(0.5), 2.0);
}

TEST(Histogram, QuantileWithNoFiniteBoundsIsZero) {
    // A bounds-free histogram is one big +Inf overflow bucket: there is no
    // finite bound to clamp to, so every quantile degrades to 0.
    Histogram h(std::vector<double>{});
    h.observe(7.0);
    h.observe(9.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
    EXPECT_THROW(Histogram({1.0, 1.0}), Error);
    EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(Histogram, ExponentialBounds) {
    const auto b = Histogram::exponential_bounds(1e-6, 10.0, 3);
    ASSERT_EQ(b.size(), 3u);
    EXPECT_DOUBLE_EQ(b[0], 1e-6);
    EXPECT_DOUBLE_EQ(b[1], 1e-5);
    EXPECT_DOUBLE_EQ(b[2], 1e-4);
    EXPECT_THROW(Histogram::exponential_bounds(0.0, 10.0, 3), Error);
}

TEST(Registry, FindOrCreateReturnsStableReferences) {
    Registry reg;
    Counter& a = reg.counter("tasks");
    a.inc();
    Counter& b = reg.counter("tasks");
    EXPECT_EQ(&a, &b) << "same identity -> same metric";
    // Creating more metrics must not invalidate the first handle.
    for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
    a.inc();
    EXPECT_DOUBLE_EQ(reg.counter_value("tasks"), 2.0);
}

TEST(Registry, LabelOrderDoesNotMatterButValuesDo) {
    Registry reg;
    reg.counter("m", {{"a", "1"}, {"b", "2"}}).inc();
    reg.counter("m", {{"b", "2"}, {"a", "1"}}).inc(); // same metric, swapped order
    reg.counter("m", {{"a", "1"}, {"b", "3"}}).inc(); // different value -> new metric
    EXPECT_DOUBLE_EQ(reg.counter_value("m", {{"b", "2"}, {"a", "1"}}), 2.0);
    EXPECT_DOUBLE_EQ(reg.counter_value("m", {{"a", "1"}, {"b", "3"}}), 1.0);
    EXPECT_DOUBLE_EQ(reg.counter_total("m"), 3.0);
    EXPECT_EQ(reg.metric_count(), 2u);
}

TEST(Registry, RejectsDuplicateLabelKeys) {
    Registry reg;
    EXPECT_THROW(reg.counter("m", {{"a", "1"}, {"a", "2"}}), Error);
}

TEST(Registry, UnknownCounterReadsAsZero) {
    const Registry reg;
    EXPECT_DOUBLE_EQ(reg.counter_value("never_created"), 0.0);
    EXPECT_DOUBLE_EQ(reg.counter_total("never_created"), 0.0);
}

TEST(Registry, HistogramBoundsMustMatchOnReaccess) {
    Registry reg;
    reg.histogram("lat", {1.0, 2.0});
    EXPECT_NO_THROW(reg.histogram("lat", {1.0, 2.0}));
    EXPECT_THROW(reg.histogram("lat", {1.0, 3.0}), Error);
}

TEST(Registry, MetricsOfDifferentKindsShareNamespacesIndependently) {
    Registry reg;
    reg.counter("x").inc();
    reg.gauge("x").set(7.0);
    EXPECT_DOUBLE_EQ(reg.counter_value("x"), 1.0);
    EXPECT_EQ(reg.metric_count(), 2u);
}

TEST(Registry, ToJsonIsParseableAndComplete) {
    Registry reg;
    reg.counter("tasks", {{"proc", "gpu"}}).add(5.0);
    reg.gauge("occupancy").set(0.5);
    reg.histogram("dur", {1.0}, {}).observe(0.5);
    const json::Value doc = json::Value::parse(reg.to_json());
    ASSERT_EQ(doc["counters"].size(), 1u);
    EXPECT_EQ(doc["counters"].at(0)["name"].as_string(), "tasks");
    EXPECT_EQ(doc["counters"].at(0)["labels"]["proc"].as_string(), "gpu");
    EXPECT_DOUBLE_EQ(doc["counters"].at(0)["value"].as_number(), 5.0);
    ASSERT_EQ(doc["gauges"].size(), 1u);
    EXPECT_DOUBLE_EQ(doc["gauges"].at(0)["value"].as_number(), 0.5);
    ASSERT_EQ(doc["histograms"].size(), 1u);
    const json::Value& h = doc["histograms"].at(0);
    EXPECT_DOUBLE_EQ(h["count"].as_number(), 1.0);
    ASSERT_EQ(h["buckets"].size(), 2u);
    EXPECT_DOUBLE_EQ(h["buckets"].at(0)["count"].as_number(), 1.0);
    EXPECT_EQ(h["buckets"].at(1)["le"].as_string(), "+inf");
}

TEST(Registry, ResetDropsEverything) {
    Registry reg;
    reg.counter("a").inc();
    reg.gauge("b");
    reg.reset();
    EXPECT_EQ(reg.metric_count(), 0u);
    EXPECT_DOUBLE_EQ(reg.counter_value("a"), 0.0);
}

TEST(Registry, ForEachVisitsCanonicalLabelOrder) {
    Registry reg;
    reg.counter("m", {{"z", "1"}, {"a", "2"}});
    int visits = 0;
    reg.for_each_counter([&](const MetricId& id, const Counter&) {
        ++visits;
        ASSERT_EQ(id.labels.size(), 2u);
        EXPECT_EQ(id.labels[0].key, "a") << "labels canonicalized by key";
        EXPECT_EQ(id.labels[1].key, "z");
    });
    EXPECT_EQ(visits, 1);
}

} // namespace
} // namespace kdr::obs
