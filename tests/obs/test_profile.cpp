#include "obs/profile.hpp"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace kdr::obs {
namespace {

using ::testing::ElementsAre;

TEST(Profiler, LaneLayoutIsContiguous) {
    const Profiler p(2, 4);
    EXPECT_EQ(p.lane_cpu(), 0);
    EXPECT_EQ(p.lane_gpu(0), 1);
    EXPECT_EQ(p.lane_gpu(3), 4);
    EXPECT_EQ(p.lane_nic_send(), 5);
    EXPECT_EQ(p.lane_nic_recv(), 6);
    EXPECT_EQ(p.lane_handshake(), 7);
    EXPECT_EQ(p.lane_analysis(), 8);
    EXPECT_EQ(p.lane_collective(), 9);
    EXPECT_EQ(p.lane_count(), 10);
    EXPECT_TRUE(p.is_nic_lane(p.lane_nic_send()));
    EXPECT_TRUE(p.is_nic_lane(p.lane_nic_recv()));
    EXPECT_FALSE(p.is_nic_lane(p.lane_cpu()));
    EXPECT_EQ(p.lane_name(0), "cpu");
    EXPECT_EQ(p.lane_name(2), "gpu 1");
    EXPECT_EQ(p.lane_name(9), "collective");
}

TEST(Profiler, RecordRejectsReversedInterval) {
    Profiler p(1, 1);
    EXPECT_THROW(p.record(0, 0, EventCategory::Kernel, "bad", 2.0, 1.0), Error);
    EXPECT_THROW((void)p.record(2, 0, EventCategory::Kernel, "n", 0.0, 1.0), Error)
        << "node out of range";
}

/// Hand-built 3-node DAG with a closed-form critical path:
///
///   node 0 gpu:        A [0, 2]                      (kernel, 2s)
///   node 0 nic send:     send [2, 3]  deps = {A}     (transfer, 1s)
///   node 1 nic recv:       recv [3, 4]  deps = {send}(transfer, 1s)
///   node 1 gpu:              B [4, 7]  deps = {recv} (kernel, 3s)
///   node 0 collective:         allreduce [7, 8]      (allreduce, 1s)
///   node 1 gpu:                  D [8, 9.5]          (kernel, 1.5s)
///   node 2 gpu:        C [0, 5]                      (kernel, off-path)
///
/// The chain A -> send -> recv -> B -> allreduce -> D tiles [0, 9.5] exactly:
/// kernel 6.5s, transfer 2s, allreduce 1s, no idle.
class ProfilerDagTest : public ::testing::Test {
protected:
    ProfilerDagTest() : p(3, 1) {
        a = p.record(0, p.lane_gpu(0), EventCategory::Kernel, "A", 0.0, 2.0);
        c = p.record(2, p.lane_gpu(0), EventCategory::Kernel, "C", 0.0, 5.0);
        send = p.record(0, p.lane_nic_send(), EventCategory::Transfer, "send", 2.0, 3.0,
                        {a}, 4096.0, 1);
        recv = p.record(1, p.lane_nic_recv(), EventCategory::Transfer, "recv", 3.0, 4.0,
                        {send}, 4096.0, 0);
        b = p.record(1, p.lane_gpu(0), EventCategory::Kernel, "B", 4.0, 7.0, {recv});
        ar = p.record(0, p.lane_collective(), EventCategory::Allreduce, "allreduce", 7.0,
                      8.0, {b});
        d = p.record(1, p.lane_gpu(0), EventCategory::Kernel, "D", 8.0, 9.5, {ar});
    }

    Profiler p;
    EventId a = kNoEvent, b = kNoEvent, c = kNoEvent, d = kNoEvent;
    EventId send = kNoEvent, recv = kNoEvent, ar = kNoEvent;
};

TEST_F(ProfilerDagTest, CountersAndHorizon) {
    EXPECT_EQ(p.events_recorded(), 7u);
    EXPECT_EQ(p.events_dropped(), 0u);
    EXPECT_EQ(p.events_held(), 7u);
    EXPECT_DOUBLE_EQ(p.profiled_horizon(), 9.5);
}

TEST_F(ProfilerDagTest, CriticalPathMatchesClosedForm) {
    const CriticalPath path = p.critical_path();
    EXPECT_DOUBLE_EQ(path.total, 9.5);
    EXPECT_DOUBLE_EQ(path.category_sum(), path.total) << "segments tile [0, total]";
    EXPECT_DOUBLE_EQ(path.category_seconds(EventCategory::Kernel), 6.5);
    EXPECT_DOUBLE_EQ(path.category_seconds(EventCategory::Transfer), 2.0);
    EXPECT_DOUBLE_EQ(path.category_seconds(EventCategory::Allreduce), 1.0);
    EXPECT_DOUBLE_EQ(path.category_seconds(EventCategory::Handshake), 0.0);
    EXPECT_DOUBLE_EQ(path.category_seconds(EventCategory::Runtime), 0.0);
    EXPECT_DOUBLE_EQ(path.category_seconds(EventCategory::Idle), 0.0);

    ASSERT_EQ(path.segments.size(), 6u);
    std::vector<std::string> names;
    names.reserve(path.segments.size());
    double prev_end = 0.0;
    for (const PathSegment& s : path.segments) {
        EXPECT_DOUBLE_EQ(s.start, prev_end) << "segments are contiguous";
        prev_end = s.end;
        names.push_back(s.name);
    }
    EXPECT_DOUBLE_EQ(prev_end, 9.5);
    EXPECT_THAT(names, ElementsAre("A", "send", "recv", "B", "allreduce", "D"));

    // Kernel attribution by task kind: B (3) > A (2) > D (1.5); C is off-path.
    ASSERT_EQ(path.by_kind.size(), 3u);
    EXPECT_EQ(path.by_kind[0].name, "B");
    EXPECT_DOUBLE_EQ(path.by_kind[0].seconds, 3.0);
    EXPECT_EQ(path.by_kind[1].name, "A");
    EXPECT_DOUBLE_EQ(path.by_kind[1].seconds, 2.0);
    EXPECT_EQ(path.by_kind[2].name, "D");
    EXPECT_DOUBLE_EQ(path.by_kind[2].seconds, 1.5);
    EXPECT_EQ(path.by_kind[0].segments, 1u);
}

TEST_F(ProfilerDagTest, UtilizationSplitsBusyAndComm) {
    const std::vector<NodeUtilization> util = p.utilization();
    ASSERT_EQ(util.size(), 3u);
    // Horizon 9.5, 2 processors per node (cpu + 1 gpu).
    EXPECT_DOUBLE_EQ(util[0].busy_seconds, 2.0);  // A
    EXPECT_DOUBLE_EQ(util[0].comm_seconds, 1.0);  // send
    EXPECT_DOUBLE_EQ(util[1].busy_seconds, 4.5);  // B + D
    EXPECT_DOUBLE_EQ(util[1].comm_seconds, 1.0);  // recv
    EXPECT_DOUBLE_EQ(util[2].busy_seconds, 5.0);  // C
    EXPECT_DOUBLE_EQ(util[2].comm_seconds, 0.0);
    for (const NodeUtilization& u : util) {
        EXPECT_GE(u.busy_fraction, 0.0);
        EXPECT_LE(u.busy_fraction, 1.0);
        EXPECT_GE(u.comm_fraction, 0.0);
        EXPECT_LE(u.comm_fraction, 1.0);
        EXPECT_DOUBLE_EQ(u.idle_fraction, 1.0 - u.busy_fraction);
    }
    EXPECT_DOUBLE_EQ(util[0].busy_fraction, 2.0 / (9.5 * 2.0));
    EXPECT_DOUBLE_EQ(util[0].comm_fraction, 1.0 / (9.5 * 2.0));
}

TEST_F(ProfilerDagTest, CommMatrixCountsSendsOnce) {
    const std::vector<CommEdge> edges = p.comm_matrix();
    ASSERT_EQ(edges.size(), 1u) << "recv-lane events must not double-count";
    EXPECT_EQ(edges[0].src, 0);
    EXPECT_EQ(edges[0].dst, 1);
    EXPECT_DOUBLE_EQ(edges[0].bytes, 4096.0);
    EXPECT_EQ(edges[0].messages, 1u);
}

TEST_F(ProfilerDagTest, ChromeTraceSchemaIsWellFormed) {
    // Round-trip through the repo's own parser: dump -> parse.
    const json::Value doc = json::Value::parse(p.to_chrome_trace_json());
    ASSERT_TRUE(doc.has("traceEvents"));
    const json::Value& events = doc["traceEvents"];

    std::size_t complete = 0;
    std::size_t meta = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value& e = events.at(i);
        const std::string& ph = e["ph"].as_string();
        ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected phase " << ph;
        if (ph == "M") {
            ++meta;
            continue;
        }
        ++complete;
        EXPECT_GE(e["ts"].as_number(), 0.0);
        EXPECT_GE(e["dur"].as_number(), 0.0);
        EXPECT_GE(e["pid"].as_number(), 0.0);
        EXPECT_LT(e["pid"].as_number(), 3.0);
        EXPECT_GE(e["tid"].as_number(), 0.0);
        EXPECT_GT(e["args"]["id"].as_number(), 0.0);
    }
    EXPECT_EQ(complete, 7u);
    EXPECT_GT(meta, 0u) << "process/thread metadata must be present";

    // ts is monotone within each (pid, tid) lane — rings are chronological.
    std::map<std::pair<int, int>, double> last_ts;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value& e = events.at(i);
        if (e["ph"].as_string() != "X") continue;
        const auto key = std::make_pair(static_cast<int>(e["pid"].as_number()),
                                        static_cast<int>(e["tid"].as_number()));
        auto it = last_ts.find(key);
        if (it != last_ts.end()) {
            EXPECT_GE(e["ts"].as_number(), it->second)
                << "lane (" << key.first << ", " << key.second << ") not chronological";
        }
        last_ts[key] = e["ts"].as_number();
    }

    // Transfer events carry payload metadata; dependence edges survive export.
    bool saw_send = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const json::Value& e = events.at(i);
        if (e["ph"].as_string() != "X" || e["name"].as_string() != "send") continue;
        saw_send = true;
        EXPECT_EQ(e["cat"].as_string(), "transfer");
        EXPECT_DOUBLE_EQ(e["args"]["bytes"].as_number(), 4096.0);
        EXPECT_DOUBLE_EQ(e["args"]["peer"].as_number(), 1.0);
        ASSERT_TRUE(e["args"].has("deps"));
        EXPECT_DOUBLE_EQ(e["args"]["deps"].at(0).as_number(), static_cast<double>(a));
    }
    EXPECT_TRUE(saw_send);
}

TEST(Profiler, IdleGapsFillUnexplainedWaits) {
    Profiler p(1, 0);
    // Two kernels with a 2s gap nothing explains: [0,1] then [3,4].
    const EventId first = p.record(0, 0, EventCategory::Kernel, "first", 0.0, 1.0);
    p.record(0, 0, EventCategory::Kernel, "second", 3.0, 4.0, {first});
    const CriticalPath path = p.critical_path();
    EXPECT_DOUBLE_EQ(path.total, 4.0);
    EXPECT_DOUBLE_EQ(path.category_seconds(EventCategory::Idle), 2.0);
    EXPECT_DOUBLE_EQ(path.category_seconds(EventCategory::Kernel), 2.0);
    EXPECT_DOUBLE_EQ(path.category_sum(), 4.0);
}

TEST(Profiler, RingDropsOldestAtCapacity) {
    ProfilerOptions opts;
    opts.lane_capacity = 4;
    Profiler p(1, 0, opts);
    for (int i = 0; i < 10; ++i) {
        const double t = static_cast<double>(i);
        p.record(0, 0, EventCategory::Kernel, "k" + std::to_string(i), t, t + 1.0);
    }
    EXPECT_EQ(p.events_recorded(), 10u);
    EXPECT_EQ(p.events_dropped(), 6u);
    EXPECT_EQ(p.events_held(), 4u);

    std::vector<std::string> names;
    p.for_each_event([&names](const ProfileEvent& e) { names.push_back(e.name); });
    EXPECT_THAT(names, ElementsAre("k6", "k7", "k8", "k9"))
        << "retained suffix stays chronological";
    EXPECT_DOUBLE_EQ(p.profiled_horizon(), 10.0);

    // Analyses keep working on the suffix: the path walks the retained chain.
    const CriticalPath path = p.critical_path();
    EXPECT_DOUBLE_EQ(path.total, 10.0);
    EXPECT_DOUBLE_EQ(path.category_sum(), 10.0);
}

TEST(Profiler, CollectCapturesInterveningEvents) {
    Profiler p(1, 0);
    p.record(0, 0, EventCategory::Kernel, "before", 0.0, 1.0);
    p.begin_collect();
    const EventId x = p.record(0, 0, EventCategory::Kernel, "x", 1.0, 2.0);
    const EventId y = p.record(0, 0, EventCategory::Runtime, "y", 2.0, 3.0);
    const std::vector<EventId> got = p.end_collect();
    EXPECT_THAT(got, ElementsAre(x, y));
    EXPECT_THROW((void)p.end_collect(), Error) << "collect is not re-entrant";
}

TEST(Profiler, ContextDepsAttachToRecordedEvents) {
    Profiler p(1, 0);
    const EventId producer = p.record(0, 0, EventCategory::Kernel, "producer", 0.0, 1.0);
    p.push_context_dep(producer);
    p.record(0, 0, EventCategory::Transfer, "push", 1.0, 2.0);
    p.pop_context_dep();
    p.record(0, 0, EventCategory::Kernel, "after", 2.0, 3.0);

    std::vector<std::vector<EventId>> deps;
    p.for_each_event([&deps](const ProfileEvent& e) { deps.push_back(e.deps); });
    ASSERT_EQ(deps.size(), 3u);
    EXPECT_TRUE(deps[0].empty());
    EXPECT_THAT(deps[1], ElementsAre(producer));
    EXPECT_TRUE(deps[2].empty()) << "popped context deps stop applying";
    EXPECT_THROW(p.pop_context_dep(), Error);
}

TEST(Profiler, EmptyProfilerAnalysesAreBenign) {
    const Profiler p(2, 1);
    EXPECT_EQ(p.events_held(), 0u);
    EXPECT_DOUBLE_EQ(p.profiled_horizon(), 0.0);
    const CriticalPath path = p.critical_path();
    EXPECT_DOUBLE_EQ(path.total, 0.0);
    EXPECT_TRUE(path.segments.empty());
    EXPECT_TRUE(p.comm_matrix().empty());
    const json::Value doc = json::Value::parse(p.to_chrome_trace_json());
    EXPECT_TRUE(doc.has("traceEvents"));
}

} // namespace
} // namespace kdr::obs
