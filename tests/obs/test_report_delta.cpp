/// Per-solve report deltas: counters, histograms, busy timelines, profiles,
/// and spans on one Runtime all accumulate across solves, so a report built
/// for the second solve used to double-count the first (the "two solves, one
/// runtime" bug). These tests pin the snapshot/delta fix: a report built
/// against a baseline captured between the solves must describe only the
/// second solve.

#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.hpp"
#include "core/solvers.hpp"
#include "obs/report.hpp"
#include "runtime/runtime.hpp"
#include "stencil/stencil.hpp"

namespace kdr::obs {
namespace {

struct SolveResult {
    SolveReport report;
    int iterations = 0;
};

/// One small functional CG solve on an existing runtime. Each call builds its
/// own regions and planner, so back-to-back calls are structurally identical
/// workloads whose metrics land in the same shared registry.
SolveResult run_cg_on(rt::Runtime& runtime, const rt::Runtime::SolveBaseline* since) {
    SolveResult out;
    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, gidx{256});
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const IndexSpace R = IndexSpace::create(n, "R");
    const rt::RegionId xr = runtime.create_region(D, "x");
    const rt::RegionId br = runtime.create_region(R, "b");
    const rt::FieldId xf = runtime.add_field<double>(xr, "v");
    const rt::FieldId bf = runtime.add_field<double>(br, "v");
    const auto b = stencil::random_rhs(n, 7);
    auto bd = runtime.field_data<double>(br, bf);
    std::copy(b.begin(), b.end(), bd.begin());

    core::Planner<double> planner(runtime);
    planner.add_sol_vector(xr, xf, Partition::equal(D, 4));
    planner.add_rhs_vector(br, bf, Partition::equal(R, 4));
    planner.add_operator(
        std::make_shared<CsrMatrix<double>>(stencil::laplacian_csr(spec, D, R)), 0, 0);

    core::CgSolver<double> inner(planner);
    core::SolverMonitor<double> cg(inner);
    while (cg.get_convergence_measure().value > 1e-8 && out.iterations < 500) {
        cg.step();
        ++out.iterations;
    }
    out.report = runtime.build_solve_report(cg.report_samples(), "converged", since);
    return out;
}

TEST(SolveReportDelta, SecondSolveReportsOnlyItsOwnWork) {
    sim::MachineDesc m = sim::MachineDesc::lassen(2);
    m.gpus_per_node = 2;
    rt::Runtime runtime(m);
    runtime.set_profiling(true);

    const rt::Runtime::SolveBaseline base0 = runtime.capture_baseline();
    const SolveResult first = run_cg_on(runtime, &base0);
    const rt::Runtime::SolveBaseline base1 = runtime.capture_baseline();
    const SolveResult second = run_cg_on(runtime, &base1);

    ASSERT_GT(first.iterations, 0);
    EXPECT_EQ(second.iterations, first.iterations);

    // The regression: a cumulative report attributes both solves to the
    // second one. With the baseline, the two per-solve reports describe the
    // same workload.
    EXPECT_EQ(second.report.tasks, first.report.tasks);
    EXPECT_NEAR(second.report.busy_total, first.report.busy_total,
                1e-9 * first.report.busy_total);
    EXPECT_NEAR(second.report.transfer_bytes, first.report.transfer_bytes,
                1e-9 * first.report.transfer_bytes);
    EXPECT_EQ(second.report.transfer_count, first.report.transfer_count);

    // And the cumulative view is exactly the sum of the two deltas.
    const SolveReport whole = runtime.build_solve_report();
    EXPECT_EQ(whole.tasks, first.report.tasks + second.report.tasks);
    EXPECT_NEAR(whole.busy_total, first.report.busy_total + second.report.busy_total,
                1e-9 * whole.busy_total);
    EXPECT_NEAR(whole.makespan, first.report.makespan + second.report.makespan,
                1e-9 * whole.makespan);
}

TEST(SolveReportDelta, TaskKindRowsCoverOnlyTheDeltaWindow) {
    sim::MachineDesc m = sim::MachineDesc::lassen(2);
    m.gpus_per_node = 2;
    rt::Runtime runtime(m);
    runtime.set_profiling(true);

    const rt::Runtime::SolveBaseline base0 = runtime.capture_baseline();
    const SolveResult first = run_cg_on(runtime, &base0);
    const rt::Runtime::SolveBaseline base1 = runtime.capture_baseline();
    const SolveResult second = run_cg_on(runtime, &base1);

    ASSERT_FALSE(first.report.task_kinds.empty());
    ASSERT_EQ(second.report.task_kinds.size(), first.report.task_kinds.size());
    for (std::size_t i = 0; i < first.report.task_kinds.size(); ++i) {
        EXPECT_EQ(second.report.task_kinds[i].name, first.report.task_kinds[i].name);
        EXPECT_EQ(second.report.task_kinds[i].count, first.report.task_kinds[i].count);
    }

    // Per-node rows subtract the first solve's busy seconds too.
    ASSERT_EQ(second.report.nodes.size(), first.report.nodes.size());
    for (std::size_t i = 0; i < first.report.nodes.size(); ++i) {
        EXPECT_NEAR(second.report.nodes[i].busy, first.report.nodes[i].busy,
                    1e-9 * (first.report.nodes[i].busy + 1e-300));
    }

    // Phase spans: identical solves record identical phase counts.
    ASSERT_FALSE(first.report.phases.empty());
    ASSERT_EQ(second.report.phases.size(), first.report.phases.size());
    for (std::size_t i = 0; i < first.report.phases.size(); ++i) {
        EXPECT_EQ(second.report.phases[i].name, first.report.phases[i].name);
        EXPECT_EQ(second.report.phases[i].count, first.report.phases[i].count);
    }
}

TEST(SolveReportDelta, DurationQuantilesUseOnlyPostBaselineSamples) {
    Registry reg;
    Histogram& h = reg.histogram("latency_seconds", Histogram::exponential_bounds(1e-6, 2.0, 20));
    h.observe(1e-5);
    h.observe(1e-5);
    const RegistrySnapshot snap = reg.snapshot();
    h.observe(1.0);
    h.observe(1.0);
    h.observe(1.0);

    const HistogramBaseline* base = reg.histogram_baseline(snap, "latency_seconds");
    ASSERT_NE(base, nullptr);
    // Cumulative median straddles the small samples; the delta view sees only
    // the three large ones.
    EXPECT_LT(h.quantile(0.1), 1e-3);
    EXPECT_GE(h.quantile_since(0.1, base), 0.5);
    EXPECT_GE(h.quantile_since(0.5, base), 0.5);

    // A histogram created after the snapshot has no baseline.
    reg.histogram("late_arrival", Histogram::exponential_bounds(1e-6, 2.0, 4));
    EXPECT_EQ(reg.histogram_baseline(snap, "late_arrival"), nullptr);
}

TEST(SolveReportDelta, CounterDeltasByNameAndLabel) {
    Registry reg;
    Counter& a = reg.counter("jobs_total", {{"tenant", "a"}});
    Counter& b = reg.counter("jobs_total", {{"tenant", "b"}});
    a.add(3.0);
    const RegistrySnapshot snap = reg.snapshot();
    a.add(2.0);
    b.add(5.0);

    EXPECT_DOUBLE_EQ(reg.counter_value_since("jobs_total", snap, {{"tenant", "a"}}), 2.0);
    // A counter absent from the snapshot deltas against zero.
    EXPECT_DOUBLE_EQ(reg.counter_value_since("jobs_total", snap, {{"tenant", "b"}}), 5.0);
    EXPECT_DOUBLE_EQ(reg.counter_total_since("jobs_total", snap), 7.0);
}

} // namespace
} // namespace kdr::obs
