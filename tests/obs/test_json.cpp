#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace kdr::obs::json {
namespace {

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(Value::parse("null").is_null());
    EXPECT_TRUE(Value::parse("true").as_bool());
    EXPECT_FALSE(Value::parse("false").as_bool());
    EXPECT_DOUBLE_EQ(Value::parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(Value::parse("-1.5e3").as_number(), -1500.0);
    EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedContainers) {
    const Value v = Value::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
    ASSERT_TRUE(v.is_object());
    EXPECT_EQ(v.size(), 2u);
    EXPECT_TRUE(v.has("a"));
    EXPECT_FALSE(v.has("missing"));
    const Value& a = v["a"];
    ASSERT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a.at(0).as_number(), 1.0);
    EXPECT_TRUE(a.at(2)["b"].as_bool());
    EXPECT_EQ(v["c"].as_string(), "x");
}

TEST(Json, ParsesStringEscapes) {
    const Value v = Value::parse(R"("line\nquote\"back\\slash\ttabA")");
    EXPECT_EQ(v.as_string(), "line\nquote\"back\\slash\ttabA");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW((void)Value::parse(""), Error);
    EXPECT_THROW((void)Value::parse("{"), Error);
    EXPECT_THROW((void)Value::parse("[1,]"), Error);
    EXPECT_THROW((void)Value::parse("{\"a\" 1}"), Error);
    EXPECT_THROW((void)Value::parse("tru"), Error);
    EXPECT_THROW((void)Value::parse("1 2"), Error) << "trailing garbage";
    EXPECT_THROW((void)Value::parse("\"unterminated"), Error);
}

TEST(Json, AccessorsCheckTypes) {
    const Value v = Value::parse("[1]");
    EXPECT_THROW((void)v.as_object(), Error);
    EXPECT_THROW((void)v["k"], Error);
    EXPECT_THROW((void)v.at(5), Error);
    EXPECT_THROW((void)Value(true).as_number(), Error);
}

TEST(Json, DumpParseRoundTripPreservesDoubles) {
    Value doc;
    auto& obj = doc.object();
    obj.emplace("pi", Value(3.141592653589793));
    obj.emplace("tiny", Value(1.5e-300));
    obj.emplace("arr", Value(Value::Array{Value(1.0), Value("s"), Value(false)}));
    const Value back = Value::parse(doc.dump());
    EXPECT_DOUBLE_EQ(back["pi"].as_number(), 3.141592653589793);
    EXPECT_DOUBLE_EQ(back["tiny"].as_number(), 1.5e-300);
    EXPECT_EQ(back["arr"].at(1).as_string(), "s");
    EXPECT_FALSE(back["arr"].at(2).as_bool());
    EXPECT_EQ(back.dump(), doc.dump()) << "dump is a fixed point";
}

TEST(Json, EscapeHandlesSpecials) {
    EXPECT_EQ(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
    Value doc;
    auto& obj = doc.object();
    obj.emplace("nan", Value(std::nan("")));
    obj.emplace("inf", Value(std::numeric_limits<double>::infinity()));
    obj.emplace("ninf", Value(-std::numeric_limits<double>::infinity()));
    obj.emplace("ok", Value(2.5));
    EXPECT_EQ(doc.dump(), R"({"inf":null,"nan":null,"ninf":null,"ok":2.5})");
    const Value back = Value::parse(doc.dump());
    EXPECT_TRUE(back["nan"].is_null());
    EXPECT_TRUE(back["inf"].is_null());
    EXPECT_DOUBLE_EQ(back["ok"].as_number(), 2.5);
}

TEST(Json, BuildersPromoteNull) {
    Value v;
    v.array().emplace_back(Value(1.0));
    EXPECT_TRUE(v.is_array());
    Value o;
    o.object().emplace("k", Value("v"));
    EXPECT_TRUE(o.is_object());
    EXPECT_THROW((void)v.object(), Error) << "array cannot become an object";
}

} // namespace
} // namespace kdr::obs::json
