/// FaultModel unit tests: seeded determinism, independence of the task and
/// NIC sub-streams, rate calibration, and the inactive (all-zero) spec being
/// a true no-op for transfer timing.

#include <gtest/gtest.h>

#include <memory>

#include "simcluster/cluster.hpp"
#include "simcluster/fault_model.hpp"

namespace kdr::sim {
namespace {

FaultSpec spec_with(double fail, double slow, double degrade, double drop,
                    std::uint64_t seed = 99) {
    FaultSpec s;
    s.seed = seed;
    s.task_fail_prob = fail;
    s.slowdown_prob = slow;
    s.nic_degrade_prob = degrade;
    s.nic_drop_prob = drop;
    return s;
}

TEST(FaultModel, SameSeedSameFaultHistory) {
    FaultModel a(spec_with(0.3, 0.2, 0.1, 0.1));
    FaultModel b(spec_with(0.3, 0.2, 0.1, 0.1));
    for (int i = 0; i < 500; ++i) {
        const TaskFault fa = a.sample_task();
        const TaskFault fb = b.sample_task();
        EXPECT_EQ(fa.fail, fb.fail);
        EXPECT_DOUBLE_EQ(fa.waste_frac, fb.waste_frac);
        EXPECT_DOUBLE_EQ(fa.slowdown, fb.slowdown);
        const TransferFault ta = a.sample_transfer();
        const TransferFault tb = b.sample_transfer();
        EXPECT_DOUBLE_EQ(ta.degrade, tb.degrade);
        EXPECT_EQ(ta.retransmits, tb.retransmits);
    }
    EXPECT_EQ(a.task_faults(), b.task_faults());
    EXPECT_EQ(a.nic_retransmits(), b.nic_retransmits());
}

TEST(FaultModel, NicStreamIndependentOfTaskStream) {
    // Interleaving NIC sampling must not perturb the task-fault schedule.
    FaultModel task_only(spec_with(0.3, 0.2, 0.5, 0.5));
    FaultModel interleaved(spec_with(0.3, 0.2, 0.5, 0.5));
    for (int i = 0; i < 300; ++i) {
        const TaskFault fa = task_only.sample_task();
        (void)interleaved.sample_transfer(); // extra NIC draws
        const TaskFault fb = interleaved.sample_task();
        EXPECT_EQ(fa.fail, fb.fail);
        EXPECT_DOUBLE_EQ(fa.waste_frac, fb.waste_frac);
        EXPECT_DOUBLE_EQ(fa.slowdown, fb.slowdown);
    }
}

TEST(FaultModel, RatesAreHonoredApproximately) {
    FaultModel m(spec_with(0.25, 0.1, 0.0, 0.0));
    const int n = 4000;
    for (int i = 0; i < n; ++i) (void)m.sample_task();
    EXPECT_NEAR(static_cast<double>(m.task_faults()) / n, 0.25, 0.03);
    EXPECT_NEAR(static_cast<double>(m.stragglers()) / n, 0.10, 0.03);
}

TEST(FaultModel, WasteFractionStaysInConfiguredRange) {
    FaultSpec s = spec_with(1.0, 0.0, 0.0, 0.0);
    s.task_waste_min = 0.4;
    s.task_waste_max = 0.6;
    FaultModel m(s);
    for (int i = 0; i < 200; ++i) {
        const TaskFault f = m.sample_task();
        ASSERT_TRUE(f.fail);
        EXPECT_GE(f.waste_frac, 0.4);
        EXPECT_LE(f.waste_frac, 0.6);
    }
}

TEST(FaultModel, RetransmitCapBoundsConsecutiveDrops) {
    FaultSpec s = spec_with(0.0, 0.0, 0.0, 1.0); // every attempt drops
    s.nic_max_retransmits = 3;
    FaultModel m(s);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(m.sample_transfer().retransmits, 3);
    }
    EXPECT_EQ(m.nic_retransmits(), 150u);
}

TEST(FaultModel, InactiveSpecSamplesNothing) {
    FaultModel m(FaultSpec{});
    EXPECT_FALSE(m.active());
    for (int i = 0; i < 100; ++i) {
        const TaskFault f = m.sample_task();
        EXPECT_FALSE(f.fail);
        EXPECT_DOUBLE_EQ(f.slowdown, 1.0);
        const TransferFault t = m.sample_transfer();
        EXPECT_DOUBLE_EQ(t.degrade, 1.0);
        EXPECT_EQ(t.retransmits, 0);
    }
    EXPECT_EQ(m.task_faults(), 0u);
}

TEST(FaultModel, InactiveModelLeavesTransferTimingUnchanged) {
    const MachineDesc desc = MachineDesc::lassen(2);
    SimCluster plain(desc);
    SimCluster modeled(desc);
    modeled.set_fault_model(std::make_shared<FaultModel>(FaultSpec{}));
    const double a = plain.transfer(0, 1, 0.0, 1 << 20);
    const double b = modeled.transfer(0, 1, 0.0, 1 << 20);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(FaultModel, NicFaultsDelayTransfers) {
    const MachineDesc desc = MachineDesc::lassen(2);
    SimCluster plain(desc);
    SimCluster degraded(desc);
    FaultSpec s = spec_with(0.0, 0.0, 1.0, 0.0);
    s.nic_degrade_factor = 8.0;
    degraded.set_fault_model(std::make_shared<FaultModel>(s));
    EXPECT_GT(degraded.transfer(0, 1, 0.0, 1 << 20), plain.transfer(0, 1, 0.0, 1 << 20));

    SimCluster dropping(desc);
    FaultSpec d = spec_with(0.0, 0.0, 0.0, 1.0);
    d.nic_max_retransmits = 2;
    dropping.set_fault_model(std::make_shared<FaultModel>(d));
    EXPECT_GT(dropping.transfer(0, 1, 0.0, 1 << 20), plain.transfer(0, 1, 0.0, 1 << 20));
}

TEST(FaultModel, RejectsOutOfRangeSpecs) {
    EXPECT_THROW(FaultModel{spec_with(1.5, 0.0, 0.0, 0.0)}, Error);
    FaultSpec bad_waste = spec_with(0.1, 0.0, 0.0, 0.0);
    bad_waste.task_waste_min = 0.9;
    bad_waste.task_waste_max = 0.1;
    EXPECT_THROW(FaultModel{bad_waste}, Error);
    FaultSpec bad_factor = spec_with(0.0, 0.1, 0.0, 0.0);
    bad_factor.slowdown_factor = 0.5;
    EXPECT_THROW(FaultModel{bad_factor}, Error);
}

} // namespace
} // namespace kdr::sim
