#include "simcluster/cluster.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace kdr::sim {
namespace {

MachineDesc tiny() {
    MachineDesc m = MachineDesc::lassen(2);
    m.gpus_per_node = 2;
    return m;
}

TEST(MachineDesc, LassenPresetShape) {
    const MachineDesc m = MachineDesc::lassen(16);
    EXPECT_EQ(m.nodes, 16);
    EXPECT_EQ(m.gpus_per_node, 4);
    EXPECT_EQ(m.total_gpus(), 64);
    EXPECT_EQ(m.cpu_cores_per_node, 40);
    m.validate();
}

TEST(MachineDesc, RejectsBadNodeCount) { EXPECT_THROW(MachineDesc::lassen(0), Error); }

TEST(KernelCosts, SpmvScalesWithNnz) {
    const TaskCost small = KernelCosts::spmv(100, 10);
    const TaskCost big = KernelCosts::spmv(1000, 10);
    EXPECT_GT(big.flops, small.flops);
    EXPECT_GT(big.bytes, small.bytes);
    EXPECT_DOUBLE_EQ(big.flops, 2000.0);
}

TEST(SimCluster, RooflineDurationIsBandwidthBoundForSpmv) {
    SimCluster c(tiny());
    const ProcId gpu{0, ProcKind::GPU, 0};
    const TaskCost spmv = KernelCosts::spmv(1 << 20, 1 << 18);
    const double d = c.duration_of(gpu, spmv);
    // SpMV moves ~24 B/nonzero at 2 flops/nonzero: bandwidth dominates on V100.
    EXPECT_GT(d, spmv.flops / c.machine().gpu_flops);
    EXPECT_NEAR(d, spmv.bytes / c.machine().gpu_mem_bw + c.machine().gpu_launch_overhead,
                1e-12);
}

TEST(SimCluster, ExecSerializesPerProcessor) {
    SimCluster c(tiny());
    const ProcId gpu{0, ProcKind::GPU, 0};
    const double f1 = c.exec_duration(gpu, 0.0, 1.0);
    const double f2 = c.exec_duration(gpu, 0.0, 1.0); // ready at 0 but proc busy
    EXPECT_DOUBLE_EQ(f1, 1.0);
    EXPECT_DOUBLE_EQ(f2, 2.0);
}

TEST(SimCluster, DifferentProcessorsRunInParallel) {
    SimCluster c(tiny());
    const double f1 = c.exec_duration({0, ProcKind::GPU, 0}, 0.0, 1.0);
    const double f2 = c.exec_duration({0, ProcKind::GPU, 1}, 0.0, 1.0);
    const double f3 = c.exec_duration({1, ProcKind::GPU, 0}, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(f1, 1.0);
    EXPECT_DOUBLE_EQ(f2, 1.0);
    EXPECT_DOUBLE_EQ(f3, 1.0);
    EXPECT_DOUBLE_EQ(c.horizon(), 1.0);
}

TEST(SimCluster, ReadyTimeDelaysStart) {
    SimCluster c(tiny());
    const double f = c.exec_duration({0, ProcKind::GPU, 0}, 5.0, 1.0);
    EXPECT_DOUBLE_EQ(f, 6.0);
}

/// Arrival of a single inter-node message leaving an idle NIC pair at t=0:
/// per-message overhead, wire time, delivery latency, plus the rendezvous
/// handshake (2 x nic_latency) when the message exceeds the eager threshold.
double expected_arrival(const MachineDesc& m, double bytes) {
    const double wire = bytes / m.nic_bandwidth;
    const double handshake = bytes > m.nic_eager_threshold ? 2.0 * m.nic_latency : 0.0;
    return handshake + m.nic_message_overhead + wire + m.nic_latency;
}

TEST(SimCluster, TransferAddsLatencyAndWireTime) {
    SimCluster c(tiny());
    const double bytes = 1.25e10; // exactly 1 second of wire time
    const double arrival = c.transfer(0, 1, 0.0, bytes);
    EXPECT_NEAR(arrival, expected_arrival(c.machine(), bytes), 1e-9);
    EXPECT_GT(arrival, 1.0 + c.machine().nic_latency); // overhead + handshake on top
}

TEST(SimCluster, SmallMessagesSkipRendezvousHandshake) {
    SimCluster c(tiny());
    const MachineDesc& m = c.machine();
    const double small = m.nic_eager_threshold; // at threshold: still eager
    const double a = c.transfer(0, 1, 0.0, small);
    EXPECT_NEAR(a, m.nic_message_overhead + small / m.nic_bandwidth + m.nic_latency, 1e-12);
    // Just past the threshold the handshake kicks in: 2 extra latencies.
    SimCluster c2(tiny());
    const double b = c2.transfer(0, 1, 0.0, small + 1.0);
    EXPECT_NEAR(b - a, 2.0 * m.nic_latency + 1.0 / m.nic_bandwidth, 1e-12);
}

TEST(SimCluster, CoalescedMessageBeatsManySmall) {
    // The payoff for exchange-plan coalescing: one message pays the
    // per-message NIC overhead once, n messages pay it n times.
    const int n = 8;
    const double piece = 1024.0;
    SimCluster many(tiny());
    double last = 0.0;
    for (int i = 0; i < n; ++i) last = many.transfer(0, 1, 0.0, piece);
    SimCluster one(tiny());
    const double coalesced = one.transfer(0, 1, 0.0, n * piece);
    EXPECT_LT(coalesced, last);
    EXPECT_NEAR(last - coalesced, (n - 1) * many.machine().nic_message_overhead, 1e-9);
}

TEST(SimCluster, TransfersSerializeOnNic) {
    SimCluster c(tiny());
    const double bytes = 1.25e10;
    const double a1 = c.transfer(0, 1, 0.0, bytes);
    const double a2 = c.transfer(0, 1, 0.0, bytes); // same NICs: queued behind
    EXPECT_NEAR(a2 - a1, 1.0 + c.machine().nic_message_overhead, 1e-9);
}

TEST(SimCluster, IntraNodeTransferSkipsNic) {
    SimCluster c(tiny());
    const double arrival = c.transfer(0, 0, 0.0, 5.0e10);
    EXPECT_NEAR(arrival, 1.0, 1e-9); // intra_node_bandwidth = 5e10
    // NIC unaffected: a cross-node transfer still starts at 0.
    const double cross = c.transfer(0, 1, 0.0, 1.25e10);
    EXPECT_NEAR(cross, expected_arrival(c.machine(), 1.25e10), 1e-9);
}

TEST(SimCluster, TransferAndComputeOverlap) {
    // A transfer and an exec on the same node proceed concurrently — the
    // mechanism behind the paper's P1 (communication/computation overlap).
    SimCluster c(tiny());
    const double f = c.exec_duration({0, ProcKind::GPU, 0}, 0.0, 1.0);
    const double a = c.transfer(0, 1, 0.0, 1.25e10);
    EXPECT_DOUBLE_EQ(f, 1.0);
    EXPECT_NEAR(a, expected_arrival(c.machine(), 1.25e10), 1e-9);
    EXPECT_NEAR(c.horizon(), a, 1e-12);
}

TEST(SimCluster, CpuOccupancyScalesThroughput) {
    SimCluster c(tiny());
    const ProcId cpu{0, ProcKind::CPU, 0};
    const TaskCost work{1e9, 0.0};
    const double free_d = c.duration_of(cpu, work);
    c.set_cpu_occupancy(0, c.machine().cpu_cores_per_node / 2);
    const double half_d = c.duration_of(cpu, work);
    EXPECT_NEAR(half_d, 2.0 * free_d, 1e-9);
    // Full occupancy clamps to one core rather than dividing by zero.
    c.set_cpu_occupancy(0, c.machine().cpu_cores_per_node);
    const double worst = c.duration_of(cpu, work);
    EXPECT_NEAR(worst, free_d * c.machine().cpu_cores_per_node, 1e-9);
}

TEST(SimCluster, OccupancyIsPerNode) {
    SimCluster c(tiny());
    c.set_cpu_occupancy(0, 20);
    EXPECT_EQ(c.cpu_occupancy(0), 20);
    EXPECT_EQ(c.cpu_occupancy(1), 0);
    const TaskCost work{1e9, 0.0};
    EXPECT_GT(c.duration_of({0, ProcKind::CPU, 0}, work),
              c.duration_of({1, ProcKind::CPU, 0}, work));
}

TEST(SimCluster, OccupancyRejectsOutOfRange) {
    SimCluster c(tiny());
    EXPECT_THROW(c.set_cpu_occupancy(0, -1), Error);
    EXPECT_THROW(c.set_cpu_occupancy(0, 41), Error);
    EXPECT_THROW(c.set_cpu_occupancy(5, 1), Error);
}

TEST(SimCluster, ResetClearsTimelines) {
    SimCluster c(tiny());
    c.exec_duration({0, ProcKind::GPU, 0}, 0.0, 3.0);
    c.set_cpu_occupancy(0, 10);
    c.reset();
    EXPECT_DOUBLE_EQ(c.horizon(), 0.0);
    EXPECT_EQ(c.cpu_occupancy(0), 0);
    EXPECT_DOUBLE_EQ(c.proc_busy({0, ProcKind::GPU, 0}), 0.0);
}

TEST(SimCluster, BusyAccountingAccumulates) {
    SimCluster c(tiny());
    const ProcId gpu{1, ProcKind::GPU, 1};
    c.exec_duration(gpu, 0.0, 0.5);
    c.exec_duration(gpu, 0.0, 0.25);
    EXPECT_DOUBLE_EQ(c.proc_busy(gpu), 0.75);
}

TEST(SimCluster, RejectsInvalidProcessors) {
    SimCluster c(tiny());
    EXPECT_THROW(c.exec_duration({5, ProcKind::GPU, 0}, 0.0, 1.0), Error);
    EXPECT_THROW(c.exec_duration({0, ProcKind::GPU, 7}, 0.0, 1.0), Error);
    EXPECT_THROW(c.exec_duration({0, ProcKind::CPU, 1}, 0.0, 1.0), Error);
    EXPECT_THROW(c.transfer(0, 9, 0.0, 1.0), Error);
}

} // namespace
} // namespace kdr::sim
