/// Smoke tests for the benchmark harness helpers (bench/harness.hpp): the
/// Fig 8/9 system builder and the measurement loop must stay consistent with
/// the library — a broken harness silently invalidates every reported
/// number, so it gets tests like everything else.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string_view>

#include "harness.hpp"

namespace kdr::bench {
namespace {

/// KDR_VALIDATE pins traces to the full-analysis replay path, so fast-path
/// counters and timing comparisons do not apply under validation.
bool validation_forced() {
    const char* e = std::getenv("KDR_VALIDATE");
    return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

TEST(BenchHarness, BuildsTimingSystemForEveryStencil) {
    const sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    for (const stencil::Kind kind : {stencil::Kind::D1P3, stencil::Kind::D2P5,
                                     stencil::Kind::D3P7, stencil::Kind::D3P27}) {
        const stencil::Spec spec = stencil::Spec::cube(kind, 1 << 12);
        LegionStencilSystem sys = make_legion_stencil(spec, machine, 8);
        EXPECT_FALSE(sys.runtime->functional());
        EXPECT_TRUE(sys.planner->is_square());
        EXPECT_EQ(sys.planner->total_domain_size(), spec.unknowns());
        EXPECT_EQ(sys.planner->operator_count(), 1u);
    }
}

TEST(BenchHarness, TraceModeSelectsRuntimeAndPlannerOptions) {
    if (validation_forced()) GTEST_SKIP() << "validation disables the trace fast path";
    const sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 12);
    {
        LegionStencilSystem sys = make_legion_stencil(spec, machine, 8, TraceMode::None);
        EXPECT_FALSE(sys.planner->options().trace_solver_loops);
    }
    {
        LegionStencilSystem sys = make_legion_stencil(spec, machine, 8, TraceMode::Fast);
        EXPECT_TRUE(sys.planner->options().trace_solver_loops);
        auto solver = make_solver("cg", *sys.planner);
        for (int i = 0; i < 4; ++i) solver->step();
        EXPECT_GT(sys.runtime->metrics().counter_value("trace_depanalysis_skipped"), 0.0);
    }
    {
        LegionStencilSystem sys = make_legion_stencil(spec, machine, 8, TraceMode::Verify);
        EXPECT_TRUE(sys.planner->options().trace_solver_loops);
        auto solver = make_solver("cg", *sys.planner);
        for (int i = 0; i < 4; ++i) solver->step();
        EXPECT_DOUBLE_EQ(
            sys.runtime->metrics().counter_value("trace_depanalysis_skipped"), 0.0)
            << "verify-only mode must keep running dependence analysis";
    }
}

TEST(BenchHarness, SolverFactoryCoversTheFig8Trio) {
    const sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 12);
    for (const char* name : {"cg", "bicg", "bicgstab", "gmres", "minres"}) {
        LegionStencilSystem sys = make_legion_stencil(spec, machine, 8);
        auto solver = make_solver(name, *sys.planner);
        ASSERT_NE(solver, nullptr);
        EXPECT_STREQ(solver->name(), name);
        solver->step();
        EXPECT_GT(sys.runtime->current_time(), 0.0);
    }
    LegionStencilSystem sys = make_legion_stencil(spec, machine, 8);
    EXPECT_THROW(make_solver("nope", *sys.planner), Error);
}

TEST(BenchHarness, MeasureReturnsSteadyStatePerIteration) {
    const sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 14);
    LegionStencilSystem sys = make_legion_stencil(spec, machine, 8, TraceMode::None);
    auto solver = make_solver("cg", *sys.planner);
    const double a = measure_per_iteration(*sys.runtime, *solver, 3, 10);
    EXPECT_GT(a, 0.0);
    // A second measurement on the same warmed system agrees (steady state).
    const double b = measure_per_iteration(*sys.runtime, *solver, 1, 10);
    EXPECT_NEAR(a, b, a * 0.05);
}

TEST(BenchHarness, TracedMeasurementIsNoSlower) {
    if (validation_forced()) GTEST_SKIP() << "validation disables the trace fast path";
    const sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    auto measure = [&](const stencil::Spec& spec, TraceMode mode) {
        LegionStencilSystem sys = make_legion_stencil(spec, machine, 8, mode);
        auto solver = make_solver("cg", *sys.planner);
        return measure_per_iteration(*sys.runtime, *solver, 3, 10);
    };
    const stencil::Spec mid = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 14);
    EXPECT_LE(measure(mid, TraceMode::Verify), measure(mid, TraceMode::None));
    EXPECT_LE(measure(mid, TraceMode::Fast), measure(mid, TraceMode::None));
    // Verify-only replay still runs full dependence analysis, so it can never
    // beat untraced timing; where analysis is the per-iteration floor the
    // fast path — which actually skips it — must win outright.
    const stencil::Spec small = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 10);
    EXPECT_LT(measure(small, TraceMode::Fast), measure(small, TraceMode::Verify))
        << "fast path must beat verify-only replay when analysis is the floor";
}

TEST(BenchHarness, GmresTracePeriodCoversRestartCycle) {
    EXPECT_EQ(trace_period("gmres"), 10);
    EXPECT_EQ(trace_period("cg"), 1);
    // GMRES measured WITH tracing must complete without trace divergence
    // (the solver traces whole restart cycles).
    const sim::MachineDesc machine = sim::MachineDesc::lassen(2);
    const stencil::Spec spec = stencil::Spec::cube(stencil::Kind::D2P5, 1 << 12);
    LegionStencilSystem sys = make_legion_stencil(spec, machine, 8);
    auto solver = make_solver("gmres", *sys.planner);
    const double t =
        measure_per_iteration(*sys.runtime, *solver, 12, 25, trace_period("gmres"));
    EXPECT_GT(t, 0.0);
}

} // namespace
} // namespace kdr::bench
