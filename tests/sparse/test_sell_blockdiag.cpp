#include <gtest/gtest.h>

#include "partition/partition.hpp"
#include "sparse/block_diagonal.hpp"
#include "sparse/convert.hpp"
#include "sparse/sell.hpp"
#include "support/rng.hpp"

namespace kdr {
namespace {

std::vector<Triplet<double>> random_ts(gidx rows, gidx cols, double density,
                                       std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < rows; ++i)
        for (gidx j = 0; j < cols; ++j)
            if (rng.uniform() < density) ts.push_back({i, j, rng.uniform(-2, 2)});
    if (ts.empty()) ts.push_back({0, 0, 1.0});
    return ts;
}

// ------------------------------------------------------------------ SELL

class SellParamTest
    : public ::testing::TestWithParam<std::tuple<gidx /*C*/, gidx /*sigma*/>> {};

TEST_P(SellParamTest, MultiplyMatchesReference) {
    const auto [c, sigma] = GetParam();
    const IndexSpace D = IndexSpace::create(20, "D");
    const IndexSpace R = IndexSpace::create(17, "R");
    const auto ts = coalesce_triplets(random_ts(17, 20, 0.3, 99));
    const auto A = SellMatrix<double>::from_triplets(D, R, c, sigma, ts);
    Rng rng(5);
    std::vector<double> x(20);
    for (double& v : x) v = rng.uniform(-1, 1);
    std::vector<double> y(17, 0.0), y_ref(17, 0.0);
    A.multiply_add(x, y);
    reference_multiply_add(ts, x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
    EXPECT_EQ(coalesce_triplets(A.to_triplets()), ts);
}

TEST_P(SellParamTest, TransposeAndPiecesAgree) {
    const auto [c, sigma] = GetParam();
    const IndexSpace D = IndexSpace::create(12, "D");
    const IndexSpace R = IndexSpace::create(12, "R");
    const auto ts = coalesce_triplets(random_ts(12, 12, 0.4, 7));
    const auto A = SellMatrix<double>::from_triplets(D, R, c, sigma, ts);
    Rng rng(6);
    std::vector<double> x(12);
    for (double& v : x) v = rng.uniform(-1, 1);
    // Pieces sum to whole.
    std::vector<double> whole(12, 0.0), pieces(12, 0.0);
    A.multiply_add(x, whole);
    const Partition pk = Partition::equal(A.kernel(), 3);
    for (Color p = 0; p < 3; ++p) A.multiply_add_piece(pk.piece(p), x, pieces);
    for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(whole[i], pieces[i], 1e-12);
    // Adjoint identity <Ax, w> == <x, A^T w>.
    std::vector<double> w(12);
    for (double& v : w) v = rng.uniform(-1, 1);
    std::vector<double> atw(12, 0.0);
    A.multiply_add_transpose(w, atw);
    double lhs = 0, rhs = 0;
    for (std::size_t i = 0; i < 12; ++i) {
        lhs += whole[i] * w[i];
        rhs += x[i] * atw[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SellParamTest,
                         ::testing::Values(std::tuple<gidx, gidx>{1, 1},
                                           std::tuple<gidx, gidx>{4, 1},
                                           std::tuple<gidx, gidx>{4, 2},
                                           std::tuple<gidx, gidx>{8, 4},
                                           std::tuple<gidx, gidx>{32, 8}));

TEST(SellMatrix, SortingReducesPadding) {
    // One long row among short ones: with σ covering everything the long row
    // gets sorted into its own slice neighborhood, shrinking total storage.
    const IndexSpace D = IndexSpace::create(16, "D");
    const IndexSpace R = IndexSpace::create(16, "R");
    std::vector<Triplet<double>> ts;
    for (gidx j = 0; j < 16; ++j) ts.push_back({5, j, 1.0}); // dense row 5
    for (gidx i = 0; i < 16; ++i) ts.push_back({i, i, 2.0});
    const auto unsorted = SellMatrix<double>::from_triplets(D, R, 4, 1, ts);
    const auto sorted = SellMatrix<double>::from_triplets(D, R, 4, 4, ts);
    EXPECT_LE(sorted.kernel().size(), unsorted.kernel().size());
    // Both are the same matrix.
    EXPECT_EQ(coalesce_triplets(sorted.to_triplets()),
              coalesce_triplets(unsorted.to_triplets()));
}

TEST(SellMatrix, RelationsFeedProjections) {
    const IndexSpace D = IndexSpace::create(16, "D");
    const IndexSpace R = IndexSpace::create(16, "R");
    const auto A =
        SellMatrix<double>::from_triplets(D, R, 4, 2, random_ts(16, 16, 0.3, 3));
    EXPECT_EQ(A.row_relation()->source(), A.kernel());
    // image of the whole kernel covers exactly the nonempty rows.
    const IntervalSet rows = A.row_relation()->image_of(A.kernel().universe());
    std::vector<gidx> expect_rows;
    for (const auto& t : A.to_triplets()) expect_rows.push_back(t.row);
    EXPECT_EQ(rows, IntervalSet::from_points(std::move(expect_rows)));
}

TEST(SellMatrix, RejectsBadParameters) {
    const IndexSpace D = IndexSpace::create(4, "D");
    const IndexSpace R = IndexSpace::create(4, "R");
    EXPECT_THROW(SellMatrix<double>::from_triplets(D, R, 0, 1, {{0, 0, 1.0}}), Error);
    EXPECT_THROW(SellMatrix<double>::from_triplets(D, R, 4, 0, {{0, 0, 1.0}}), Error);
}

// ---------------------------------------------------------- dense inverse

TEST(InvertDense, InvertsKnownMatrix) {
    // [[4,7],[2,6]]^{-1} = [[0.6,-0.7],[-0.2,0.4]]
    std::vector<double> a{4, 7, 2, 6};
    invert_dense(a, 2);
    EXPECT_NEAR(a[0], 0.6, 1e-12);
    EXPECT_NEAR(a[1], -0.7, 1e-12);
    EXPECT_NEAR(a[2], -0.2, 1e-12);
    EXPECT_NEAR(a[3], 0.4, 1e-12);
}

TEST(InvertDense, NeedsPivoting) {
    std::vector<double> a{0, 1, 1, 0}; // permutation matrix: own inverse
    invert_dense(a, 2);
    EXPECT_NEAR(a[0], 0.0, 1e-12);
    EXPECT_NEAR(a[1], 1.0, 1e-12);
}

TEST(InvertDense, DetectsSingular) {
    std::vector<double> a{1, 2, 2, 4};
    EXPECT_THROW(invert_dense(a, 2), Error);
}

// ------------------------------------------------------- block diagonal

TEST(BlockDiagonal, MultiplyAppliesEachBlockOnItsSubset) {
    const IndexSpace D = IndexSpace::create(6, "D");
    // Block 1 on {0,1}; block 2 on the non-contiguous {2, 5}.
    BlockDiagonalOperator<double> P(
        D, {{IntervalSet(0, 2), {1.0, 2.0, 3.0, 4.0}},
            {IntervalSet::from_points({2, 5}), {5.0, 0.0, 0.0, 7.0}}});
    const std::vector<double> x{1, 1, 1, 9, 9, 1};
    std::vector<double> y(6, 0.0);
    P.multiply_add(x, y);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_DOUBLE_EQ(y[2], 5.0);
    EXPECT_DOUBLE_EQ(y[3], 0.0) << "uncovered index untouched";
    EXPECT_DOUBLE_EQ(y[5], 7.0);
}

TEST(BlockDiagonal, TripletsAndRelationsConsistent) {
    const IndexSpace D = IndexSpace::create(4, "D");
    BlockDiagonalOperator<double> P(D, {{IntervalSet(0, 2), {1, 2, 3, 4}},
                                        {IntervalSet(2, 4), {5, 6, 7, 8}}});
    EXPECT_EQ(P.kernel().size(), 8);
    EXPECT_EQ(P.block_count(), 2u);
    const auto ts = P.to_triplets();
    EXPECT_EQ(ts.size(), 8u);
    // Relations describe the same placements as the triplets.
    const IntervalSet rows = P.row_relation()->image_of(P.kernel().universe());
    EXPECT_EQ(rows, D.universe());
}

TEST(BlockDiagonal, ValidatesBlockShapes) {
    const IndexSpace D = IndexSpace::create(4, "D");
    EXPECT_THROW(BlockDiagonalOperator<double>(D, {{IntervalSet(0, 2), {1.0}}}), Error);
    EXPECT_THROW(BlockDiagonalOperator<double>(D, {{IntervalSet(2, 6), {1, 2, 3, 4}}}),
                 Error);
    EXPECT_THROW(BlockDiagonalOperator<double>(D, {{IntervalSet{}, {}}}), Error);
}

} // namespace
} // namespace kdr
