/// Property sweep: for every storage format in the catalog (and the analytic
/// stencil relations behind matrix-free operators), the three relation
/// surfaces must agree with each other — `image_of`/`preimage_of` computed by
/// the format's fast path must match the ground truth derived from
/// `enumerate()` on random interval sets. Dependent partitioning (and hence
/// privilege declarations) is built entirely on these projections, so a
/// mismatch here is a silent correctness bug everywhere above.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sparse/convert.hpp"
#include "sparse/described_formats.hpp"
#include "sparse/relations.hpp"
#include "sparse/sell.hpp"
#include "support/rng.hpp"

namespace {

using namespace kdr;

/// Random subset of [0, n): a mix of short runs and isolated points, ~30%
/// density, occasionally empty or full.
IntervalSet random_subset(gidx n, Rng& rng) {
    const std::uint64_t shape = rng.next() % 16;
    if (shape == 0) return {};
    if (shape == 1) return IntervalSet::full(n);
    std::vector<gidx> points;
    for (gidx i = 0; i < n; ++i) {
        if (rng.next() % 10 < 3) points.push_back(i);
    }
    // Add a couple of runs so interval-walk paths see more than singletons.
    for (int r = 0; r < 2; ++r) {
        const gidx lo = static_cast<gidx>(rng.next() % static_cast<std::uint64_t>(n));
        const gidx hi = std::min<gidx>(n, lo + 1 + static_cast<gidx>(rng.next() % 7));
        for (gidx i = lo; i < hi; ++i) points.push_back(i);
    }
    return IntervalSet::from_points(std::move(points));
}

/// Check one relation object against its own enumerate() on random subsets.
void check_relation(const Relation& rel, std::uint64_t seed, const std::string& what) {
    const auto pairs = rel.enumerate();
    for (const auto& [s, t] : pairs) {
        ASSERT_GE(s, 0) << what;
        ASSERT_LT(s, rel.source().size()) << what;
        ASSERT_GE(t, 0) << what;
        ASSERT_LT(t, rel.target().size()) << what;
    }

    // Whole-space and empty-set edges first.
    {
        std::vector<gidx> img, pre;
        for (const auto& [s, t] : pairs) {
            img.push_back(t);
            pre.push_back(s);
        }
        EXPECT_EQ(rel.image_of(rel.source().universe()), IntervalSet::from_points(img))
            << what << ": image of universe";
        EXPECT_EQ(rel.preimage_of(rel.target().universe()), IntervalSet::from_points(pre))
            << what << ": preimage of universe";
        EXPECT_TRUE(rel.image_of(IntervalSet()).empty()) << what;
        EXPECT_TRUE(rel.preimage_of(IntervalSet()).empty()) << what;
    }

    Rng rng(seed);
    for (int round = 0; round < 12; ++round) {
        const IntervalSet S = random_subset(rel.source().size(), rng);
        const IntervalSet T = random_subset(rel.target().size(), rng);
        std::vector<gidx> img, pre;
        for (const auto& [s, t] : pairs) {
            if (S.contains(s)) img.push_back(t);
            if (T.contains(t)) pre.push_back(s);
        }
        EXPECT_EQ(rel.image_of(S), IntervalSet::from_points(std::move(img)))
            << what << ": image mismatch, round " << round;
        EXPECT_EQ(rel.preimage_of(T), IntervalSet::from_points(std::move(pre)))
            << what << ": preimage mismatch, round " << round;
    }
}

void check_operator(const LinearOperator<double>& op, std::uint64_t seed,
                    const std::string& what) {
    check_relation(*op.row_relation(), seed, what + " row relation");
    check_relation(*op.col_relation(), seed ^ 0x9E3779B9ULL, what + " col relation");
}

/// Random rectangular triplets over r×d with block-friendly dimensions.
std::vector<Triplet<double>> random_triplets(gidx r, gidx d, Rng& rng) {
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < r; ++i) {
        for (gidx j = 0; j < d; ++j) {
            if (rng.next() % 100 < 18)
                ts.push_back({i, j, 1.0 + static_cast<double>(rng.next() % 7)});
        }
    }
    // Guarantee at least one entry so from_triplets never sees a fully empty
    // matrix (DIA with zero diagonals is degenerate).
    if (ts.empty()) ts.push_back({0, 0, 1.0});
    return ts;
}

TEST(RelationProperties, AllFormatsAgreeWithEnumerate) {
    // 24 is divisible by the 2/3/4 block sizes below.
    const gidx r = 24, d = 24;
    const IndexSpace R = IndexSpace::create(r, "R");
    const IndexSpace D = IndexSpace::create(d, "D");
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed * 7919);
        const auto ts = random_triplets(r, d, rng);
        const auto csr = CsrMatrix<double>::from_triplets(D, R, ts);
        check_operator(csr, seed, "csr");
        check_operator(to_coo(csr), seed, "coo");
        check_operator(to_csc(csr), seed, "csc");
        check_operator(to_dense(csr), seed, "dense");
        check_operator(to_ell(csr), seed, "ell");
        check_operator(to_ellt(csr), seed, "ellt");
        check_operator(to_dia(csr), seed, "dia");
        check_operator(to_bcsr(csr, 2, 3), seed, "bcsr 2x3");
        check_operator(to_bcsc(csr, 4, 2), seed, "bcsc 4x2");
        check_operator(SellMatrix<double>::from_triplets(D, R, /*slice_height=*/4,
                                                         /*sigma=*/8, ts),
                       seed, "sell-4-8");
    }
}

TEST(RelationProperties, DescribedCatalogAgreesWithEnumerate) {
    // The same projection-consistency sweep over every description-derived
    // format: the derived relations are *compositions* of the fast-path
    // relation classes, and this pins that the composition preserves their
    // image/preimage/enumerate agreement.
    const gidx r = 24, d = 24;
    const IndexSpace R = IndexSpace::create(r, "R");
    const IndexSpace D = IndexSpace::create(d, "D");
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed * 7919);
        const auto ts = random_triplets(r, d, rng);
        for (const sparse::FormatDesc& desc : sparse::described_catalog()) {
            auto op = sparse::make_described<double>(desc, D, R, ts);
            check_operator(*op, seed, "described " + desc.name);
        }
    }
}

/// Seeded fuzz: random valid level descriptions × random sparsity patterns.
/// Each draw builds a described operator, checks relation mutual consistency
/// (image/preimage vs enumerate) and SpMV/transpose agreement against the
/// dense triplet reference.
TEST(RelationProperties, FuzzRandomDescriptionsTimesRandomPatterns) {
    constexpr int kRounds = 60;
    Rng rng(0xF0124D5ULL);
    for (int round = 0; round < kRounds; ++round) {
        // Random dimensions (small enough that dense grids stay cheap).
        const gidx nr = 2 + static_cast<gidx>(rng.next() % 14);
        const gidx nd = 2 + static_cast<gidx>(rng.next() % 14);
        const IndexSpace R = IndexSpace::create(nr, "R");
        const IndexSpace D = IndexSpace::create(nd, "D");
        const auto ts = random_triplets(nr, nd, rng);

        // Random valid description: draw a layout family, then a legal
        // level-description pair for it (assembly always produces ordered
        // coordinates, so the ordered/unique flags must stay promises the
        // builder keeps).
        sparse::FormatDesc desc;
        const std::uint64_t fam = rng.next() % 5;
        const bool col_outer = rng.next() % 2 == 0;
        desc.outer = col_outer ? sparse::Axis::Col : sparse::Axis::Row;
        switch (fam) {
            case 0: // PointerOuter
                desc.outer_level = {sparse::LevelKind::Dense, true, true};
                desc.inner_level = {sparse::LevelKind::Compressed, true, true};
                break;
            case 1: // SortedCoords
                desc.outer_level = {sparse::LevelKind::Compressed, true, false};
                desc.inner_level = {sparse::LevelKind::Singleton, true, true};
                break;
            case 2: // FullGrid
                desc.outer_level = {sparse::LevelKind::Dense, true, true};
                desc.inner_level = {sparse::LevelKind::Dense, true, true};
                break;
            case 3: // PaddedFibers, sometimes with an explicit width
                desc.outer_level = {sparse::LevelKind::Dense, true, true};
                desc.inner_level = {sparse::LevelKind::Singleton, true, true};
                if (rng.next() % 2 == 0)
                    desc.padded_width = std::max<gidx>(col_outer ? nr : nd, 1);
                break;
            default: // SlicedFibers (row-outer only)
                desc.outer = sparse::Axis::Row;
                desc.outer_level = {sparse::LevelKind::Dense, false, true};
                desc.inner_level = {sparse::LevelKind::Singleton, true, true};
                desc.slice_height = 1 + static_cast<gidx>(rng.next() % 5);
                desc.sigma = 1 + static_cast<gidx>(rng.next() % 4);
                break;
        }
        desc.name = "fuzz-" + std::to_string(round);
        const std::string what =
            desc.name + " [" + sparse::describe_format(desc) + "]";

        auto op = sparse::make_described<double>(desc, D, R, ts);
        check_operator(*op, 1000 + static_cast<std::uint64_t>(round), what);

        // SpMV and transpose against the dense reference.
        std::vector<double> x(static_cast<std::size_t>(nd));
        for (double& v : x) v = -1.0 + static_cast<double>(rng.next() % 400) / 200.0;
        std::vector<double> y(static_cast<std::size_t>(nr), 0.0), y_ref = y;
        op->multiply_add(x, y);
        reference_multiply_add(coalesce_triplets(ts), x, y_ref);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], y_ref[i], 1e-12) << what << " row " << i;

        std::vector<double> xt(static_cast<std::size_t>(nr));
        for (double& v : xt) v = -1.0 + static_cast<double>(rng.next() % 400) / 200.0;
        std::vector<double> yt(static_cast<std::size_t>(nd), 0.0), yt_ref = yt;
        op->multiply_add_transpose(xt, yt);
        std::vector<Triplet<double>> tts;
        for (const auto& t : coalesce_triplets(ts)) tts.push_back({t.col, t.row, t.value});
        reference_multiply_add(tts, xt, yt_ref);
        for (std::size_t i = 0; i < yt.size(); ++i)
            EXPECT_NEAR(yt[i], yt_ref[i], 1e-12) << what << " col " << i;

        // Round-trip: the described operator stores exactly the coalesced
        // pattern (padding slots excluded).
        EXPECT_EQ(coalesce_triplets(op->to_triplets()), coalesce_triplets(ts)) << what;
    }
}

TEST(RelationProperties, StencilOffsetRelations) {
    struct Grid {
        std::array<gidx, 3> ext;
        std::vector<std::array<gidx, 3>> offsets;
        const char* name;
    };
    std::vector<Grid> grids;
    // 1D 3-point.
    grids.push_back({{7, 1, 1}, {{{-1, 0, 0}}, {{0, 0, 0}}, {{1, 0, 0}}}, "d1p3"});
    // 2D 5-point on a non-square grid.
    grids.push_back({{4, 5, 1},
                     {{{-1, 0, 0}}, {{0, -1, 0}}, {{0, 0, 0}}, {{0, 1, 0}}, {{1, 0, 0}}},
                     "d2p5"});
    // 3D 7-point, all extents distinct.
    grids.push_back({{3, 4, 5},
                     {{{-1, 0, 0}},
                      {{0, -1, 0}},
                      {{0, 0, -1}},
                      {{0, 0, 0}},
                      {{0, 0, 1}},
                      {{0, 1, 0}},
                      {{1, 0, 0}}},
                     "d3p7"});
    // 3D 27-point (every corner/edge offset exercises multi-axis clipping).
    {
        Grid g{{3, 3, 4}, {}, "d3p27"};
        for (gidx dx = -1; dx <= 1; ++dx)
            for (gidx dy = -1; dy <= 1; ++dy)
                for (gidx dz = -1; dz <= 1; ++dz) g.offsets.push_back({dx, dy, dz});
        grids.push_back(std::move(g));
    }
    // Wide shift: |dx| = 2, plus an offset clipped away entirely on one axis.
    grids.push_back({{5, 3, 1}, {{{-2, 0, 0}}, {{0, 0, 0}}, {{2, 2, 0}}, {{4, 0, 0}}},
                     "wide"});

    for (const Grid& g : grids) {
        const gidx n = g.ext[0] * g.ext[1] * g.ext[2];
        const gidx P = static_cast<gidx>(g.offsets.size());
        const IndexSpace K = IndexSpace::create(P * n, "K");
        const IndexSpace G = IndexSpace::create(n, "grid");
        const StencilOffsetRelation col(K, G, g.ext, g.offsets, /*shift_targets=*/true);
        const StencilOffsetRelation row(K, G, g.ext, g.offsets, /*shift_targets=*/false);
        check_relation(col, 42, std::string(g.name) + " col");
        check_relation(row, 43, std::string(g.name) + " row");
    }
}

} // namespace
