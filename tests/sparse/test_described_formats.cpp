/// Level-description engine unit suite (`ctest -L formats`): the description
/// catalog classifies to the right layout families, derives the right cost
/// models, assembles bitwise-identical storage to the legacy twin classes,
/// runs bitwise-identical SpMV/transpose kernels (whole and per piece), and
/// rejects malformed storage and malformed descriptions with structured
/// errors.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "partition/partition.hpp"
#include "sparse/convert.hpp"
#include "sparse/described_formats.hpp"
#include "sparse/sell.hpp"
#include "support/rng.hpp"

namespace kdr::sparse {
namespace {

std::vector<Triplet<double>> random_triplets(gidx rows, gidx cols, double density,
                                             std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < rows; ++i) {
        for (gidx j = 0; j < cols; ++j) {
            if (rng.uniform() < density) ts.push_back({i, j, rng.uniform(-2.0, 2.0)});
        }
    }
    if (ts.empty()) ts.push_back({0, 0, 1.0});
    return ts;
}

std::vector<double> random_vector(gidx n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    return v;
}

/// A catalog description plus the factory for its legacy twin class (null
/// for coot, which exists only as a description).
struct TwinCase {
    std::string name;
    FormatDesc desc;
    std::shared_ptr<LinearOperator<double>> legacy; // built in make_cases
};

std::vector<TwinCase> twin_cases(const IndexSpace& D, const IndexSpace& R,
                                 const std::vector<Triplet<double>>& ts) {
    std::vector<TwinCase> cases;
    cases.push_back({"csr", desc_csr(),
                     std::make_shared<CsrMatrix<double>>(
                         CsrMatrix<double>::from_triplets(D, R, ts))});
    cases.push_back({"csc", desc_csc(),
                     std::make_shared<CscMatrix<double>>(
                         CscMatrix<double>::from_triplets(D, R, ts))});
    cases.push_back({"coo", desc_coo(),
                     std::make_shared<CooMatrix<double>>(
                         CooMatrix<double>::from_triplets(D, R, coalesce_triplets(ts)))});
    cases.push_back({"coot", desc_coot(), nullptr});
    cases.push_back({"dense", desc_dense(),
                     std::make_shared<DenseMatrix<double>>(
                         DenseMatrix<double>::from_triplets(D, R, ts))});
    cases.push_back({"ell", desc_ell(),
                     std::make_shared<EllMatrix<double>>(
                         EllMatrix<double>::from_triplets(D, R, ts))});
    cases.push_back({"ellt", desc_ellt(),
                     std::make_shared<EllTransposedMatrix<double>>(
                         EllTransposedMatrix<double>::from_triplets(D, R, ts))});
    cases.push_back({"sell", desc_sell(4, 2),
                     std::make_shared<SellMatrix<double>>(
                         SellMatrix<double>::from_triplets(D, R, 4, 2, ts))});
    return cases;
}

class DescribedTwin : public ::testing::TestWithParam<std::string> {
protected:
    IndexSpace D = IndexSpace::create(10, "D");
    IndexSpace R = IndexSpace::create(12, "R");
    std::vector<Triplet<double>> ts = random_triplets(12, 10, 0.3, 42);

    TwinCase the_case() {
        for (TwinCase& c : twin_cases(D, R, ts)) {
            if (c.name == GetParam()) return c;
        }
        ADD_FAILURE() << "no case " << GetParam();
        return {};
    }
};

TEST_P(DescribedTwin, StorageMatchesLegacyBitwise) {
    TwinCase c = the_case();
    auto d = make_described<double>(c.desc, D, R, ts);
    EXPECT_EQ(std::string(d->format_name()), c.name);
    if (c.legacy == nullptr) return;
    // Same kernel space and same to_triplets stream: assembly placed every
    // value in the same slot.
    ASSERT_EQ(d->kernel().size(), c.legacy->kernel().size());
    const auto dt = d->to_triplets();
    const auto lt = c.legacy->to_triplets();
    ASSERT_EQ(dt.size(), lt.size());
    for (std::size_t i = 0; i < dt.size(); ++i) {
        EXPECT_EQ(dt[i].row, lt[i].row) << "slot " << i;
        EXPECT_EQ(dt[i].col, lt[i].col) << "slot " << i;
        EXPECT_EQ(dt[i].value, lt[i].value) << "slot " << i;
    }
}

TEST_P(DescribedTwin, RelationsMatchLegacyEnumeration) {
    TwinCase c = the_case();
    auto d = make_described<double>(c.desc, D, R, ts);
    EXPECT_EQ(d->col_relation()->source(), d->kernel());
    EXPECT_EQ(d->col_relation()->target(), D);
    EXPECT_EQ(d->row_relation()->source(), d->kernel());
    EXPECT_EQ(d->row_relation()->target(), R);
    if (c.legacy == nullptr) return;
    EXPECT_EQ(d->row_relation()->enumerate(), c.legacy->row_relation()->enumerate());
    EXPECT_EQ(d->col_relation()->enumerate(), c.legacy->col_relation()->enumerate());
}

TEST_P(DescribedTwin, SpmvIsBitwiseIdenticalWholeAndPerPiece) {
    TwinCase c = the_case();
    if (c.legacy == nullptr) return;
    auto d = make_described<double>(c.desc, D, R, ts);
    const auto x = random_vector(D.size(), 7);
    std::vector<double> yd(static_cast<std::size_t>(R.size()), 0.5);
    std::vector<double> yl = yd;
    d->multiply_add(x, yd);
    c.legacy->multiply_add(x, yl);
    for (std::size_t i = 0; i < yd.size(); ++i) EXPECT_EQ(yd[i], yl[i]) << "row " << i;

    for (Color pieces : {2, 3, 5}) {
        const Partition pk = Partition::equal(d->kernel(), pieces);
        for (Color p = 0; p < pieces; ++p) {
            std::vector<double> pd(static_cast<std::size_t>(R.size()), 0.0);
            std::vector<double> pl = pd;
            d->multiply_add_piece(pk.piece(p), x, pd);
            c.legacy->multiply_add_piece(pk.piece(p), x, pl);
            for (std::size_t i = 0; i < pd.size(); ++i)
                EXPECT_EQ(pd[i], pl[i]) << pieces << " pieces, piece " << p << ", row " << i;
        }
    }
}

TEST_P(DescribedTwin, TransposeIsBitwiseIdentical) {
    TwinCase c = the_case();
    if (c.legacy == nullptr) return;
    auto d = make_described<double>(c.desc, D, R, ts);
    const auto x = random_vector(R.size(), 9);
    std::vector<double> yd(static_cast<std::size_t>(D.size()), -1.25);
    std::vector<double> yl = yd;
    d->multiply_add_transpose(x, yd);
    c.legacy->multiply_add_transpose(x, yl);
    for (std::size_t i = 0; i < yd.size(); ++i) EXPECT_EQ(yd[i], yl[i]) << "col " << i;
}

TEST_P(DescribedTwin, MultiplyMatchesDenseReference) {
    TwinCase c = the_case();
    auto d = make_described<double>(c.desc, D, R, ts);
    const auto x = random_vector(D.size(), 11);
    std::vector<double> y(static_cast<std::size_t>(R.size()), 0.0);
    std::vector<double> y_ref = y;
    d->multiply_add(x, y);
    reference_multiply_add(coalesce_triplets(ts), x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, DescribedTwin,
    ::testing::Values("csr", "csc", "coo", "coot", "dense", "ell", "ellt", "sell"),
    [](const ::testing::TestParamInfo<std::string>& pi) { return pi.param; });

// ---- classification and description strings ----

TEST(LevelDesc, CatalogClassifiesToDocumentedFamilies) {
    EXPECT_EQ(classify_format(desc_csr()), LayoutFamily::PointerOuter);
    EXPECT_EQ(classify_format(desc_csc()), LayoutFamily::PointerOuter);
    EXPECT_EQ(classify_format(desc_coo()), LayoutFamily::SortedCoords);
    EXPECT_EQ(classify_format(desc_coot()), LayoutFamily::SortedCoords);
    EXPECT_EQ(classify_format(desc_dense()), LayoutFamily::FullGrid);
    EXPECT_EQ(classify_format(desc_ell()), LayoutFamily::PaddedFibers);
    EXPECT_EQ(classify_format(desc_ellt()), LayoutFamily::PaddedFibers);
    EXPECT_EQ(classify_format(desc_sell()), LayoutFamily::SlicedFibers);
}

TEST(LevelDesc, UnderivableDescriptionsAreStructuredErrors) {
    FormatDesc d = desc_csr();
    d.outer_level.kind = LevelKind::Singleton; // singleton outer: no loop nest
    EXPECT_THROW((void)classify_format(d), Error);

    FormatDesc unique_coo = desc_coo();
    unique_coo.outer_level.unique = true; // COO's outer level repeats; must say so
    EXPECT_THROW((void)classify_format(unique_coo), Error);

    FormatDesc sliced_csc = desc_sell();
    sliced_csc.outer = Axis::Col; // slicing is row-wise only
    EXPECT_THROW((void)classify_format(sliced_csc), Error);

    FormatDesc padded_csr = desc_csr();
    padded_csr.padded_width = 4; // compressed levels store no padding
    EXPECT_THROW((void)classify_format(padded_csr), Error);
}

TEST(LevelDesc, DescribeFormatNamesLevelsAndParameters) {
    EXPECT_EQ(describe_format(desc_csr()), "rows:dense x cols:compressed");
    EXPECT_EQ(describe_format(desc_coo()),
              "rows:compressed(nonunique) x cols:singleton");
    EXPECT_EQ(describe_format(desc_coot()),
              "cols:compressed(nonunique) x rows:singleton");
    EXPECT_EQ(describe_format(desc_sell(4, 2)),
              "rows:dense(unordered) x cols:singleton C=4 sigma=2");
}

TEST(LevelDesc, FindDescribedThrowsWithCatalogListing) {
    EXPECT_EQ(find_described("coot").name, "coot");
    try {
        find_described("hyper-csr");
        FAIL() << "expected a structured error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("hyper-csr"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("catalog"), std::string::npos);
    }
}

// ---- derived cost models and the calibration hook ----

TEST(LevelDesc, PointerOuterDerivesTheHistoricalCsrModel) {
    // {16, 8, 24} is the SpmvCostModel default every materialized legacy
    // class reports; the derivation must agree so routing planner paths
    // through described CSR leaves virtual time untouched.
    const SpmvCostModel m = derived_spmv_cost_model(desc_csr());
    const SpmvCostModel legacy;
    EXPECT_DOUBLE_EQ(m.matrix_bytes_per_entry, legacy.matrix_bytes_per_entry);
    EXPECT_DOUBLE_EQ(m.gather_bytes_per_entry, legacy.gather_bytes_per_entry);
    EXPECT_DOUBLE_EQ(m.bytes_per_row, legacy.bytes_per_row);
}

TEST(LevelDesc, DerivedModelsFollowStoredCoordinateStreams) {
    EXPECT_DOUBLE_EQ(derived_spmv_cost_model(desc_coo()).matrix_bytes_per_entry, 24.0);
    EXPECT_DOUBLE_EQ(derived_spmv_cost_model(desc_coo()).bytes_per_row, 16.0);
    EXPECT_DOUBLE_EQ(derived_spmv_cost_model(desc_dense()).matrix_bytes_per_entry, 8.0);
    EXPECT_DOUBLE_EQ(derived_spmv_cost_model(desc_ell()).matrix_bytes_per_entry, 16.0);
    EXPECT_DOUBLE_EQ(derived_spmv_cost_model(desc_sell()).matrix_bytes_per_entry, 24.0);
}

TEST(LevelDesc, CalibrationOverridesTheDerivedModel) {
    FormatDesc d = desc_coo();
    d.calibrated = SpmvCostModel{40.0, 4.0, 8.0};
    const SpmvCostModel m = derived_spmv_cost_model(d);
    EXPECT_DOUBLE_EQ(m.matrix_bytes_per_entry, 40.0);
    EXPECT_DOUBLE_EQ(m.gather_bytes_per_entry, 4.0);
    EXPECT_DOUBLE_EQ(m.bytes_per_row, 8.0);
}

TEST(DescribedFormat, CalibrateReplacesTheReportedModel) {
    const IndexSpace D = IndexSpace::create(4, "D");
    auto a = make_described<double>("coo", D, D, {{0, 0, 1.0}, {1, 2, 2.0}});
    EXPECT_DOUBLE_EQ(a->spmv_cost_model().matrix_bytes_per_entry, 24.0);
    a->calibrate(SpmvCostModel{32.0, 8.0, 16.0});
    EXPECT_DOUBLE_EQ(a->spmv_cost_model().matrix_bytes_per_entry, 32.0);
    EXPECT_DOUBLE_EQ(a->spmv_cost_model().bytes_per_row, 16.0);
}

// ---- structural validation rejects malformed storage ----

using Storage = DescribedFormat<double>::Storage;

DescribedFormat<double> build(const FormatDesc& d, gidx dn, gidx rn, Storage st) {
    return DescribedFormat<double>(d, IndexSpace::create(dn, "D"), IndexSpace::create(rn, "R"),
                                   std::move(st));
}

TEST(DescribedValidation, PointerArrayMustCoverTheKernel) {
    Storage st;
    st.fiber_ptr = {0, 1, 3}; // ends at 3 but there are 2 values
    st.inner_idx = {0, 1};
    st.values = {1.0, 2.0};
    EXPECT_THROW(build(desc_csr(), 2, 2, std::move(st)), Error);
}

TEST(DescribedValidation, PointerArrayMustBeMonotone) {
    Storage st;
    st.fiber_ptr = {0, 2, 1, 3};
    st.inner_idx = {0, 1, 0};
    st.values = {1.0, 2.0, 3.0};
    EXPECT_THROW(build(desc_csr(), 2, 3, std::move(st)), Error);
}

TEST(DescribedValidation, OrderedUniqueFibersRejectDuplicates) {
    Storage st;
    st.fiber_ptr = {0, 2};
    st.inner_idx = {1, 1}; // duplicate column in an ordered+unique fiber
    st.values = {1.0, 2.0};
    EXPECT_THROW(build(desc_csr(), 2, 1, std::move(st)), Error);
}

TEST(DescribedValidation, CoordinatesOutsideTheDimensionAreRejected) {
    Storage st;
    st.outer_idx = {0, 5}; // row 5 of a 3-row matrix
    st.inner_idx = {0, 1};
    st.values = {1.0, 2.0};
    EXPECT_THROW(build(desc_coo(), 4, 3, std::move(st)), Error);
}

TEST(DescribedValidation, PaddingSentinelIsOnlyLegalInPaddedLevels) {
    Storage st;
    st.outer_idx = {0, 1};
    st.inner_idx = {0, kNoTarget};
    st.values = {1.0, 0.0};
    EXPECT_THROW(build(desc_coo(), 4, 3, std::move(st)), Error);
}

TEST(DescribedValidation, PaddingSlotsMustCarryZeroAndPackTheTail) {
    FormatDesc d = desc_ell(2);
    { // nonzero value under a padding sentinel
        Storage st;
        st.width = 2;
        st.inner_idx = {0, kNoTarget};
        st.values = {1.0, 7.0};
        EXPECT_THROW(build(d, 2, 1, std::move(st)), Error);
    }
    { // an entry after the padding began
        Storage st;
        st.width = 2;
        st.inner_idx = {kNoTarget, 0};
        st.values = {0.0, 1.0};
        EXPECT_THROW(build(d, 2, 1, std::move(st)), Error);
    }
    { // well-formed
        Storage st;
        st.width = 2;
        st.inner_idx = {0, kNoTarget};
        st.values = {1.0, 0.0};
        EXPECT_NO_THROW(build(d, 2, 1, std::move(st)));
    }
}

TEST(DescribedValidation, SlicedPaddingMustAgreeAcrossCoordinateArrays) {
    FormatDesc d = desc_sell(2, 1);
    Storage st;
    st.slice_offsets = {0, 2};
    st.outer_idx = {0, kNoTarget};
    st.inner_idx = {0, 0}; // inner says occupied, outer says padding
    st.values = {1.0, 0.0};
    EXPECT_THROW(build(d, 1, 2, std::move(st)), Error);
}

TEST(DescribedValidation, PaddedAssemblyRejectsOverfullFibers) {
    const IndexSpace D = IndexSpace::create(3, "D");
    // Row 0 has three entries but the description fixes width 2.
    EXPECT_THROW(make_described<double>(desc_ell(2), D, D,
                                        {{0, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}}),
                 Error);
}

} // namespace
} // namespace kdr::sparse
