#include "sparse/adapters.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "partition/projection.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace kdr {
namespace {

std::shared_ptr<CsrMatrix<double>> test_matrix(IndexSpace& D, IndexSpace& R) {
    D = IndexSpace::create(6, "D");
    R = IndexSpace::create(5, "R");
    // Non-symmetric rectangular matrix.
    return std::make_shared<CsrMatrix<double>>(CsrMatrix<double>::from_triplets(
        D, R,
        {{0, 0, 2.0}, {0, 3, -1.0}, {1, 1, 4.0}, {2, 0, 1.5}, {2, 5, 3.0}, {4, 2, -2.5}}));
}

std::vector<double> rand_vec(gidx n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& x : v) x = rng.uniform(-1, 1);
    return v;
}

TEST(TransposeOperator, SwapsSpacesAndRelations) {
    IndexSpace D, R;
    auto A = test_matrix(D, R);
    TransposeOperator<double> At(A);
    EXPECT_EQ(At.domain(), R);
    EXPECT_EQ(At.range(), D);
    EXPECT_EQ(At.kernel(), A->kernel());
    EXPECT_EQ(At.row_relation(), A->col_relation());
    EXPECT_EQ(At.col_relation(), A->row_relation());
}

TEST(TransposeOperator, MultiplyIsBaseTranspose) {
    IndexSpace D, R;
    auto A = test_matrix(D, R);
    TransposeOperator<double> At(A);
    const auto x = rand_vec(R.size(), 1);
    std::vector<double> y1(static_cast<std::size_t>(D.size()), 0.0);
    std::vector<double> y2(static_cast<std::size_t>(D.size()), 0.0);
    At.multiply_add(x, y1);
    A->multiply_add_transpose(x, y2);
    for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(TransposeOperator, DoubleTransposeRoundTrips) {
    IndexSpace D, R;
    auto A = test_matrix(D, R);
    auto At = std::make_shared<TransposeOperator<double>>(A);
    TransposeOperator<double> Att(At);
    EXPECT_EQ(coalesce_triplets(Att.to_triplets()), coalesce_triplets(A->to_triplets()));
}

TEST(TransposeOperator, ProjectionsWorkThroughView) {
    // The view's relations are the base's, swapped — projections just work.
    IndexSpace D, R;
    auto A = test_matrix(D, R);
    TransposeOperator<double> At(A);
    const Partition rows = Partition::equal(At.range(), 2);
    const Partition pk = preimage(rows, *At.row_relation());
    const Partition needs = image(pk, *At.col_relation());
    EXPECT_EQ(pk.space(), At.kernel());
    EXPECT_EQ(needs.space(), At.domain());
}

TEST(ScaledOperator, ScalesMultiplyAndTriplets) {
    IndexSpace D, R;
    auto A = test_matrix(D, R);
    ScaledOperator<double> sA(A, -3.0);
    EXPECT_DOUBLE_EQ(sA.alpha(), -3.0);
    const auto x = rand_vec(D.size(), 2);
    std::vector<double> y1(static_cast<std::size_t>(R.size()), 0.0);
    std::vector<double> y2(static_cast<std::size_t>(R.size()), 0.0);
    sA.multiply_add(x, y1);
    A->multiply_add(x, y2);
    for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], -3.0 * y2[i], 1e-12);
    for (const auto& [t1, t2] :
         [&] {
             auto a = coalesce_triplets(sA.to_triplets());
             auto b = coalesce_triplets(A->to_triplets());
             std::vector<std::pair<Triplet<double>, Triplet<double>>> z;
             for (std::size_t i = 0; i < a.size(); ++i) z.emplace_back(a[i], b[i]);
             return z;
         }()) {
        EXPECT_DOUBLE_EQ(t1.value, -3.0 * t2.value);
    }
}

TEST(ScaledOperator, AccumulatesIntoExistingY) {
    IndexSpace D, R;
    auto A = test_matrix(D, R);
    ScaledOperator<double> sA(A, 2.0);
    const auto x = rand_vec(D.size(), 3);
    std::vector<double> y(static_cast<std::size_t>(R.size()), 7.0);
    std::vector<double> expect(static_cast<std::size_t>(R.size()), 7.0);
    sA.multiply_add(x, y);
    std::vector<double> ax(static_cast<std::size_t>(R.size()), 0.0);
    A->multiply_add(x, ax);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], 7.0 + 2.0 * ax[i], 1e-12);
}

TEST(ScaledOperator, PieceRestrictedMultiply) {
    IndexSpace D, R;
    auto A = test_matrix(D, R);
    ScaledOperator<double> sA(A, 0.5);
    const auto x = rand_vec(D.size(), 4);
    std::vector<double> whole(static_cast<std::size_t>(R.size()), 0.0);
    sA.multiply_add(x, whole);
    std::vector<double> pieces(static_cast<std::size_t>(R.size()), 0.0);
    const Partition pk = Partition::equal(sA.kernel(), 3);
    for (Color c = 0; c < 3; ++c) sA.multiply_add_piece(pk.piece(c), x, pieces);
    for (std::size_t i = 0; i < whole.size(); ++i) EXPECT_NEAR(whole[i], pieces[i], 1e-12);
}

TEST(ShiftedOperator, AddsSigmaOnDiagonal) {
    const IndexSpace D = IndexSpace::create(4, "D");
    const IndexSpace R = IndexSpace::create(4, "R");
    auto A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(D, R, {{0, 1, 1.0}, {2, 2, 3.0}}));
    ShiftedOperator<double> shifted(A, 5.0);
    EXPECT_EQ(shifted.kernel().size(), A->kernel().size() + 4);
    const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
    std::vector<double> y(4, 0.0);
    shifted.multiply_add(x, y);
    EXPECT_DOUBLE_EQ(y[0], 2.0 + 5.0);       // A(0,1)*x1 + sigma*x0
    EXPECT_DOUBLE_EQ(y[1], 10.0);            // sigma*x1
    EXPECT_DOUBLE_EQ(y[2], 9.0 + 15.0);      // 3*x2 + sigma*x2
    EXPECT_DOUBLE_EQ(y[3], 20.0);
}

TEST(ShiftedOperator, RelationsCoverDiagonalBlock) {
    const IndexSpace D = IndexSpace::create(4, "D");
    const IndexSpace R = IndexSpace::create(4, "R");
    auto A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(D, R, {{0, 1, 1.0}}));
    ShiftedOperator<double> shifted(A, 1.0);
    // Every range row is now reachable through the shifted kernel.
    EXPECT_EQ(shifted.row_relation()->image_of(shifted.kernel().universe()), R.universe());
    // Preimage of row 3 includes the diagonal slot (base had nothing there).
    const IntervalSet pre = shifted.row_relation()->preimage_of(IntervalSet(3, 4));
    EXPECT_TRUE(pre.contains(A->kernel().size() + 3));
}

TEST(ShiftedOperator, RequiresSquareBase) {
    const IndexSpace D = IndexSpace::create(4, "D");
    const IndexSpace R = IndexSpace::create(5, "R");
    auto A = std::make_shared<CsrMatrix<double>>(
        CsrMatrix<double>::from_triplets(D, R, {{0, 0, 1.0}}));
    EXPECT_THROW(ShiftedOperator<double>(A, 1.0), Error);
}

TEST(Adapters, ComposeTransposeOfScaled) {
    IndexSpace D, R;
    auto A = test_matrix(D, R);
    auto sA = std::make_shared<ScaledOperator<double>>(A, 2.0);
    TransposeOperator<double> view(sA);
    const auto x = rand_vec(R.size(), 5);
    std::vector<double> y1(static_cast<std::size_t>(D.size()), 0.0);
    std::vector<double> y2(static_cast<std::size_t>(D.size()), 0.0);
    view.multiply_add(x, y1);
    A->multiply_add_transpose(x, y2);
    for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], 2.0 * y2[i], 1e-12);
}

} // namespace
} // namespace kdr
