#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "partition/partition.hpp"
#include "sparse/convert.hpp"
#include "support/rng.hpp"

namespace kdr {
namespace {

/// Random sparse test matrix generator (fixed seed per case).
std::vector<Triplet<double>> random_triplets(gidx rows, gidx cols, double density,
                                             std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < rows; ++i) {
        for (gidx j = 0; j < cols; ++j) {
            if (rng.uniform() < density) ts.push_back({i, j, rng.uniform(-2.0, 2.0)});
        }
    }
    // Guarantee at least one entry so no format degenerates to empty.
    if (ts.empty()) ts.push_back({0, 0, 1.0});
    return ts;
}

std::vector<double> random_vector(gidx n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    return v;
}

/// Factory so the same battery runs over every format in the Fig 3 catalog.
using Factory = std::function<std::unique_ptr<LinearOperator<double>>(
    IndexSpace, IndexSpace, std::vector<Triplet<double>>)>;

struct FormatCase {
    std::string name;
    Factory make;
};

std::vector<FormatCase> all_formats() {
    return {
        {"dense",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<DenseMatrix<double>>(
                 DenseMatrix<double>::from_triplets(d, r, ts));
         }},
        {"coo",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CooMatrix<double>>(
                 CooMatrix<double>::from_triplets(d, r, ts));
         }},
        {"csr",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CsrMatrix<double>>(
                 CsrMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"csc",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CscMatrix<double>>(
                 CscMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"ell",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<EllMatrix<double>>(
                 EllMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"ellt",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<EllTransposedMatrix<double>>(
                 EllTransposedMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"dia",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<DiaMatrix<double>>(
                 DiaMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"bcsr",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<BcsrMatrix<double>>(
                 BcsrMatrix<double>::from_triplets(d, r, 2, 2, std::move(ts)));
         }},
        {"bcsc",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<BcscMatrix<double>>(
                 BcscMatrix<double>::from_triplets(d, r, 2, 2, std::move(ts)));
         }},
    };
}

class FormatTest : public ::testing::TestWithParam<FormatCase> {
protected:
    // 12x10 keeps block formats happy (divisible by 2x2 blocks).
    IndexSpace D = IndexSpace::create(10, "D");
    IndexSpace R = IndexSpace::create(12, "R");
    std::vector<Triplet<double>> ts = random_triplets(12, 10, 0.3, 42);

    std::unique_ptr<LinearOperator<double>> make() { return GetParam().make(D, R, ts); }
};

TEST_P(FormatTest, SpacesAreWired) {
    auto a = make();
    EXPECT_EQ(a->domain(), D);
    EXPECT_EQ(a->range(), R);
    EXPECT_GT(a->kernel().size(), 0);
    EXPECT_EQ(a->col_relation()->source(), a->kernel());
    EXPECT_EQ(a->col_relation()->target(), D);
    EXPECT_EQ(a->row_relation()->source(), a->kernel());
    EXPECT_EQ(a->row_relation()->target(), R);
}

TEST_P(FormatTest, MultiplyMatchesReference) {
    auto a = make();
    const auto x = random_vector(D.size(), 7);
    std::vector<double> y(static_cast<std::size_t>(R.size()), 0.0);
    std::vector<double> y_ref(static_cast<std::size_t>(R.size()), 0.0);
    a->multiply_add(x, y);
    reference_multiply_add(coalesce_triplets(ts), x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12) << "row " << i;
}

TEST_P(FormatTest, MultiplyAccumulatesIntoY) {
    auto a = make();
    const auto x = random_vector(D.size(), 8);
    std::vector<double> y(static_cast<std::size_t>(R.size()), 3.0);
    std::vector<double> y_ref(static_cast<std::size_t>(R.size()), 3.0);
    a->multiply_add(x, y);
    reference_multiply_add(coalesce_triplets(ts), x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST_P(FormatTest, TransposeMatchesReference) {
    auto a = make();
    const auto x = random_vector(R.size(), 9);
    std::vector<double> y(static_cast<std::size_t>(D.size()), 0.0);
    a->multiply_add_transpose(x, y);
    // Reference: multiply by the transposed triplets.
    std::vector<Triplet<double>> tts;
    for (const auto& t : coalesce_triplets(ts)) tts.push_back({t.col, t.row, t.value});
    std::vector<double> y_ref(static_cast<std::size_t>(D.size()), 0.0);
    reference_multiply_add(tts, x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST_P(FormatTest, PieceSumEqualsWhole) {
    // Partition the kernel space arbitrarily: the pieces' contributions must
    // sum to the whole product. This is the correctness property index-task
    // launches rely on.
    auto a = make();
    const auto x = random_vector(D.size(), 10);
    std::vector<double> y_whole(static_cast<std::size_t>(R.size()), 0.0);
    a->multiply_add(x, y_whole);
    for (Color pieces : {2, 3, 5}) {
        const Partition pk = Partition::equal(a->kernel(), pieces);
        std::vector<double> y(static_cast<std::size_t>(R.size()), 0.0);
        for (Color c = 0; c < pieces; ++c) a->multiply_add_piece(pk.piece(c), x, y);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], y_whole[i], 1e-12) << pieces << " pieces, row " << i;
    }
}

TEST_P(FormatTest, TripletsRoundTripThroughCsr) {
    auto a = make();
    const CsrMatrix<double> back = to_csr(*a);
    EXPECT_EQ(coalesce_triplets(a->to_triplets()), coalesce_triplets(ts));
    EXPECT_EQ(back.to_triplets(), coalesce_triplets(ts));
}

TEST_P(FormatTest, RelationsDescribePlacements) {
    // The (row, col) placement of every triplet must be recoverable from the
    // row/col relations: row(k) x col(k) over kernel points.
    auto a = make();
    const auto row_pairs = a->row_relation()->enumerate();
    const auto col_pairs = a->col_relation()->enumerate();
    std::map<gidx, std::vector<gidx>> row_of;
    std::map<gidx, std::vector<gidx>> col_of;
    for (const auto& [k, i] : row_pairs) row_of[k].push_back(i);
    for (const auto& [k, j] : col_pairs) col_of[k].push_back(j);
    std::vector<Triplet<double>> placed;
    for (const auto& t : a->to_triplets()) placed.push_back(t);
    // Each triplet's (row, col) must be a related pair of some kernel point.
    // (We verify via the reference multiply instead of exact pairing, since
    // kernel order is format-specific: build an indicator matrix.)
    const auto x = random_vector(D.size(), 11);
    std::vector<double> y_rel(static_cast<std::size_t>(R.size()), 0.0);
    std::vector<double> y_fmt(static_cast<std::size_t>(R.size()), 0.0);
    reference_multiply_add(coalesce_triplets(placed), x, y_rel);
    a->multiply_add(x, y_fmt);
    for (std::size_t i = 0; i < y_rel.size(); ++i) EXPECT_NEAR(y_rel[i], y_fmt[i], 1e-12);
}

TEST_P(FormatTest, MultiplyRejectsWrongSizes) {
    auto a = make();
    std::vector<double> short_x(static_cast<std::size_t>(D.size() - 1));
    std::vector<double> y(static_cast<std::size_t>(R.size()));
    EXPECT_THROW(a->multiply_add(short_x, y), Error);
    std::vector<double> x(static_cast<std::size_t>(D.size()));
    std::vector<double> short_y(static_cast<std::size_t>(R.size() - 1));
    EXPECT_THROW(a->multiply_add(x, short_y), Error);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatTest, ::testing::ValuesIn(all_formats()),
                         [](const ::testing::TestParamInfo<FormatCase>& pinfo) {
                             return pinfo.param.name;
                         });

// ---- square-matrix battery (diagonal extraction) ----

class SquareFormatTest : public ::testing::TestWithParam<FormatCase> {
protected:
    IndexSpace D = IndexSpace::create(8, "D");
    IndexSpace R = IndexSpace::create(8, "R");
    std::vector<Triplet<double>> ts = [] {
        auto t = random_triplets(8, 8, 0.4, 99);
        // Ensure a known diagonal presence.
        t.push_back({3, 3, 2.5});
        return t;
    }();
};

TEST_P(SquareFormatTest, DiagonalExtraction) {
    auto a = GetParam().make(D, R, ts);
    std::vector<double> diag(8, 0.0);
    a->add_diagonal(diag);
    std::vector<double> expect(8, 0.0);
    for (const auto& t : coalesce_triplets(ts))
        if (t.row == t.col) expect[static_cast<std::size_t>(t.row)] += t.value;
    for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(diag[i], expect[i], 1e-12) << i;
}

INSTANTIATE_TEST_SUITE_P(AllFormats, SquareFormatTest, ::testing::ValuesIn(all_formats()),
                         [](const ::testing::TestParamInfo<FormatCase>& pinfo) {
                             return pinfo.param.name;
                         });

// ---- format-specific details ----

TEST(CooMatrix, DuplicateEntriesSumInMultiply) {
    const IndexSpace D = IndexSpace::create(2);
    const IndexSpace R = IndexSpace::create(2);
    const CooMatrix<double> a(D, R, {0, 0}, {1, 1}, {2.0, 3.0}); // two entries at (0,1)
    std::vector<double> y(2, 0.0);
    const std::vector<double> x{1.0, 1.0};
    a.multiply_add(x, y);
    EXPECT_DOUBLE_EQ(y[0], 5.0);
    EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(EllMatrix, SlotsEqualMaxRowOccupancy) {
    const IndexSpace D = IndexSpace::create(4);
    const IndexSpace R = IndexSpace::create(3);
    const auto a = EllMatrix<double>::from_triplets(
        D, R, {{0, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}, {1, 0, 1.0}});
    EXPECT_EQ(a.slots_per_row(), 3);
    EXPECT_EQ(a.kernel().size(), 9); // 3 rows x 3 slots, padded
}

TEST(DiaMatrix, StoresOneSlotPerDiagonalColumn) {
    const IndexSpace D = IndexSpace::create(4);
    const IndexSpace R = IndexSpace::create(4);
    const auto a = DiaMatrix<double>::from_triplets(
        D, R, {{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, 5.0}});
    EXPECT_EQ(a.diagonal_offsets(), (std::vector<gidx>{0, 1}));
    EXPECT_EQ(a.kernel().size(), 8); // 2 diagonals x 4 columns
}

TEST(BcsrMatrix, BlockDimsMustDivideSpaces) {
    const IndexSpace D = IndexSpace::create(5);
    const IndexSpace R = IndexSpace::create(4);
    EXPECT_THROW(BcsrMatrix<double>::from_triplets(D, R, 2, 2, {{0, 0, 1.0}}), Error);
}

TEST(DenseMatrix, AtReadsRowMajorEntries) {
    const IndexSpace D = IndexSpace::create(2);
    const IndexSpace R = IndexSpace::create(2);
    const DenseMatrix<double> a(D, R, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(a.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
    EXPECT_EQ(a.kernel().size(), 4);
}

TEST(Conversions, EveryFormatRoundTripsThroughEveryOther) {
    const IndexSpace D = IndexSpace::create(6, "D");
    const IndexSpace R = IndexSpace::create(6, "R");
    const auto ts = coalesce_triplets(random_triplets(6, 6, 0.4, 5));
    const auto csr = CsrMatrix<double>::from_triplets(D, R, ts);
    EXPECT_EQ(coalesce_triplets(to_coo(csr).to_triplets()), ts);
    EXPECT_EQ(coalesce_triplets(to_csc(csr).to_triplets()), ts);
    EXPECT_EQ(coalesce_triplets(to_dense(csr).to_triplets()), ts);
    EXPECT_EQ(coalesce_triplets(to_ell(csr).to_triplets()), ts);
    EXPECT_EQ(coalesce_triplets(to_ellt(csr).to_triplets()), ts);
    EXPECT_EQ(coalesce_triplets(to_dia(csr).to_triplets()), ts);
    EXPECT_EQ(coalesce_triplets(to_bcsr(csr, 2, 3).to_triplets()), ts);
    EXPECT_EQ(coalesce_triplets(to_bcsc(csr, 3, 2).to_triplets()), ts);
}

} // namespace
} // namespace kdr
