/// The full conversion cross-product: every format converts to every other
/// format and the result is the same linear operator (verified by triplets
/// and by SpMV against a reference). 10 formats → 100 directed pairs.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sparse/adapters.hpp"
#include "sparse/block_diagonal.hpp"
#include "sparse/convert.hpp"
#include "sparse/sell.hpp"
#include "support/rng.hpp"

namespace kdr {
namespace {

using MakeFn = std::function<std::unique_ptr<LinearOperator<double>>(
    const IndexSpace&, const IndexSpace&, std::vector<Triplet<double>>)>;

struct FormatEntry {
    std::string name;
    MakeFn make;
};

std::vector<FormatEntry> catalog() {
    return {
        {"dense",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<DenseMatrix<double>>(
                 DenseMatrix<double>::from_triplets(d, r, ts));
         }},
        {"coo",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CooMatrix<double>>(
                 CooMatrix<double>::from_triplets(d, r, ts));
         }},
        {"csr",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CsrMatrix<double>>(
                 CsrMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"csc",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CscMatrix<double>>(
                 CscMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"ell",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<EllMatrix<double>>(
                 EllMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"ellt",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<EllTransposedMatrix<double>>(
                 EllTransposedMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"dia",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<DiaMatrix<double>>(
                 DiaMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"bcsr",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<BcsrMatrix<double>>(
                 BcsrMatrix<double>::from_triplets(d, r, 2, 2, std::move(ts)));
         }},
        {"bcsc",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<BcscMatrix<double>>(
                 BcscMatrix<double>::from_triplets(d, r, 2, 2, std::move(ts)));
         }},
        {"sell",
         [](const IndexSpace& d, const IndexSpace& r, std::vector<Triplet<double>> ts) {
             return std::make_unique<SellMatrix<double>>(
                 SellMatrix<double>::from_triplets(d, r, 4, 2, std::move(ts)));
         }},
    };
}

class ConversionMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ConversionMatrixTest, RoundTripsThroughTriplets) {
    const auto [from, to] = GetParam();
    const auto entries = catalog();
    const IndexSpace D = IndexSpace::create(8, "D");
    const IndexSpace R = IndexSpace::create(8, "R");
    Rng rng(17);
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < 8; ++i)
        for (gidx j = 0; j < 8; ++j)
            if (rng.uniform() < 0.35) ts.push_back({i, j, rng.uniform(-2, 2)});
    ts.push_back({0, 0, 1.0});
    ts = coalesce_triplets(std::move(ts));

    const auto src = entries[from].make(D, R, ts);
    const auto dst = entries[to].make(D, R, src->to_triplets());
    EXPECT_EQ(coalesce_triplets(dst->to_triplets()), ts)
        << entries[from].name << " -> " << entries[to].name;

    // SpMV agreement.
    std::vector<double> x(8);
    for (double& v : x) v = rng.uniform(-1, 1);
    std::vector<double> y1(8, 0.0), y2(8, 0.0);
    src->multiply_add(x, y1);
    dst->multiply_add(x, y2);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(y1[i], y2[i], 1e-12)
            << entries[from].name << " -> " << entries[to].name << " row " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ConversionMatrixTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 10),
                       ::testing::Range<std::size_t>(0, 10)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>& pinfo) {
        const auto entries = catalog();
        return entries[std::get<0>(pinfo.param)].name + "_to_" +
               entries[std::get<1>(pinfo.param)].name;
    });

} // namespace
} // namespace kdr
