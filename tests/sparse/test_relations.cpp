#include "sparse/relations.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/error.hpp"

namespace kdr {
namespace {

/// Cross-check a relation's fast-path image/preimage against the generic
/// MaterializedRelation built from its enumerated pairs, on a family of
/// probe subsets.
void check_against_materialized(const Relation& rel) {
    MaterializedRelation ref(rel.source(), rel.target(), rel.enumerate());
    const gidx ns = rel.source().size();
    const gidx nt = rel.target().size();
    std::vector<IntervalSet> src_probes = {
        IntervalSet{},
        rel.source().universe(),
        IntervalSet(0, std::min<gidx>(1, ns)),
        IntervalSet(ns / 2, ns),
        IntervalSet::from_intervals({{0, ns / 3}, {2 * ns / 3, ns}}),
    };
    for (const IntervalSet& probe : src_probes) {
        EXPECT_EQ(rel.image_of(probe), ref.image_of(probe)) << "image of " << probe;
    }
    std::vector<IntervalSet> dst_probes = {
        IntervalSet{},
        rel.target().universe(),
        IntervalSet(0, std::min<gidx>(1, nt)),
        IntervalSet(nt / 2, nt),
        IntervalSet::from_intervals({{0, nt / 3}, {2 * nt / 3, nt}}),
    };
    for (const IntervalSet& probe : dst_probes) {
        EXPECT_EQ(rel.preimage_of(probe), ref.preimage_of(probe)) << "preimage of " << probe;
    }
}

TEST(ArrayFunctionRelation, ImageGathersTargets) {
    const IndexSpace K = IndexSpace::create(5);
    const IndexSpace D = IndexSpace::create(4);
    const ArrayFunctionRelation rel(K, D, {2, 0, 2, kNoTarget, 3});
    EXPECT_EQ(rel.image_of(IntervalSet(0, 3)), IntervalSet::from_points({0, 2}));
    EXPECT_EQ(rel.image_of(IntervalSet(3, 4)), IntervalSet{}) << "sentinel relates to nothing";
    check_against_materialized(rel);
}

TEST(ArrayFunctionRelation, PreimageUsesLazyInverse) {
    const IndexSpace K = IndexSpace::create(6);
    const IndexSpace D = IndexSpace::create(3);
    const ArrayFunctionRelation rel(K, D, {0, 1, 0, 2, 1, 0});
    EXPECT_EQ(rel.preimage_of(IntervalSet(0, 1)), IntervalSet::from_points({0, 2, 5}));
    EXPECT_EQ(rel.preimage_of(IntervalSet(1, 3)), IntervalSet::from_points({1, 3, 4}));
    check_against_materialized(rel);
}

TEST(ArrayFunctionRelation, RejectsBadSizesAndIndices) {
    const IndexSpace K = IndexSpace::create(3);
    const IndexSpace D = IndexSpace::create(2);
    EXPECT_THROW(ArrayFunctionRelation(K, D, {0}), Error);         // wrong length
    EXPECT_THROW(ArrayFunctionRelation(K, D, {0, 1, 2}), Error);   // 2 out of range
    EXPECT_THROW(ArrayFunctionRelation(K, D, {0, -2, 1}), Error);  // bad sentinel
}

TEST(RowPtrRelation, IntervalLookups) {
    const IndexSpace K = IndexSpace::create(7);
    const IndexSpace R = IndexSpace::create(4);
    // rows own kernel intervals [0,2) [2,2) [2,5) [5,7) — row 1 is empty.
    const RowPtrRelation rel(K, R, {0, 2, 2, 5, 7});
    EXPECT_EQ(rel.preimage_of(IntervalSet(0, 1)), IntervalSet(0, 2));
    EXPECT_EQ(rel.preimage_of(IntervalSet(1, 2)), IntervalSet{}) << "empty row";
    EXPECT_EQ(rel.preimage_of(IntervalSet(2, 4)), IntervalSet(2, 7));
    EXPECT_EQ(rel.image_of(IntervalSet(0, 2)), IntervalSet(0, 1));
    EXPECT_EQ(rel.image_of(IntervalSet(1, 3)), IntervalSet::from_points({0, 2}));
    EXPECT_EQ(rel.image_of(IntervalSet(4, 6)), IntervalSet(2, 4));
    check_against_materialized(rel);
}

TEST(RowPtrRelation, RejectsMalformedOffsets) {
    const IndexSpace K = IndexSpace::create(4);
    const IndexSpace R = IndexSpace::create(2);
    EXPECT_THROW(RowPtrRelation(K, R, {0, 2}), Error);       // wrong length
    EXPECT_THROW(RowPtrRelation(K, R, {1, 2, 4}), Error);    // doesn't start at 0
    EXPECT_THROW(RowPtrRelation(K, R, {0, 2, 3}), Error);    // doesn't end at |K|
    EXPECT_THROW(RowPtrRelation(K, R, {0, 3, 2}), Error);    // not monotone... ends wrong too
}

TEST(QuotientRelation, DivRoundsToRows) {
    const IndexSpace K = IndexSpace::create(12);
    const IndexSpace R = IndexSpace::create(4);
    const QuotientRelation rel(K, R, 3);
    EXPECT_EQ(rel.image_of(IntervalSet(0, 3)), IntervalSet(0, 1));
    EXPECT_EQ(rel.image_of(IntervalSet(2, 4)), IntervalSet(0, 2));
    EXPECT_EQ(rel.preimage_of(IntervalSet(1, 3)), IntervalSet(3, 9));
    check_against_materialized(rel);
}

TEST(QuotientRelation, RejectsSizeMismatch) {
    const IndexSpace K = IndexSpace::create(10);
    const IndexSpace R = IndexSpace::create(4);
    EXPECT_THROW(QuotientRelation(K, R, 3), Error);
    EXPECT_THROW(QuotientRelation(K, R, 0), Error);
}

TEST(RemainderRelation, ModWrapsColumns) {
    const IndexSpace K = IndexSpace::create(12);
    const IndexSpace D = IndexSpace::create(4);
    const RemainderRelation rel(K, D, 4);
    EXPECT_EQ(rel.image_of(IntervalSet(0, 2)), IntervalSet(0, 2));
    EXPECT_EQ(rel.image_of(IntervalSet(3, 6)), IntervalSet::from_intervals({{3, 4}, {0, 2}}));
    EXPECT_EQ(rel.image_of(IntervalSet(0, 12)), D.universe());
    EXPECT_EQ(rel.preimage_of(IntervalSet(1, 2)), IntervalSet::from_points({1, 5, 9}));
    check_against_materialized(rel);
}

TEST(DiagonalRelation, MainAndOffDiagonals) {
    // 4x4 matrix with diagonals at offsets {-1, 0, +1}; d = 4.
    const IndexSpace K = IndexSpace::create(12);
    const IndexSpace R = IndexSpace::create(4);
    const DiagonalRelation rel(K, R, 4, {-1, 0, 1});
    // Diagonal 0 (offset -1): slot j holds row j+1 → rows 1..3 valid (j=0..2),
    // j=3 would be row 4: padding.
    EXPECT_EQ(rel.image_of(IntervalSet(0, 4)), IntervalSet(1, 4));
    // Diagonal 1 (offset 0): slots 4..7 are rows 0..3.
    EXPECT_EQ(rel.image_of(IntervalSet(4, 8)), IntervalSet(0, 4));
    // Diagonal 2 (offset +1): slot j holds row j-1 → j=0 is padding.
    EXPECT_EQ(rel.image_of(IntervalSet(8, 9)), IntervalSet{});
    EXPECT_EQ(rel.image_of(IntervalSet(9, 12)), IntervalSet(0, 3));
    check_against_materialized(rel);
}

TEST(DiagonalRelation, PreimageCollectsAllDiagonals) {
    const IndexSpace K = IndexSpace::create(12);
    const IndexSpace R = IndexSpace::create(4);
    const DiagonalRelation rel(K, R, 4, {-1, 0, 1});
    // Row 0 appears in: diag -1 at j where j+... : offset -1 → j = i + off = -1 (invalid);
    // diag 0 at j=0 → k=4; diag +1 at j=1 → k=9.
    EXPECT_EQ(rel.preimage_of(IntervalSet(0, 1)), IntervalSet::from_points({4, 9}));
    check_against_materialized(rel);
}

TEST(BlockExpandedRelation, LiftsBlockCsrRowRelation) {
    // 2 block rows, 3 block cols, blocks of 2x2; stored blocks:
    // (0,0), (0,2), (1,1) — block rowptr {0,2,3}, block cols {0,2,1}.
    const IndexSpace K0 = IndexSpace::create(3);
    const IndexSpace R0 = IndexSpace::create(2);
    const IndexSpace D0 = IndexSpace::create(3);
    const IndexSpace K = IndexSpace::create(12);
    const IndexSpace R = IndexSpace::create(4);
    const IndexSpace D = IndexSpace::create(6);
    auto base_row = std::make_shared<RowPtrRelation>(K0, R0, std::vector<gidx>{0, 2, 3});
    auto base_col =
        std::make_shared<ArrayFunctionRelation>(K0, D0, std::vector<gidx>{0, 2, 1});
    const BlockExpandedRelation row_rel(K, R, base_row, 2, 2, 2, /*use_row_block=*/true);
    const BlockExpandedRelation col_rel(K, D, base_col, 2, 2, 2, /*use_row_block=*/false);

    // First stored block (kernel 0..3) is in block row 0 → element rows 0..1.
    EXPECT_EQ(row_rel.image_of(IntervalSet(0, 4)), IntervalSet(0, 2));
    // Third stored block (kernel 8..11) is block row 1 → rows 2..3.
    EXPECT_EQ(row_rel.image_of(IntervalSet(8, 12)), IntervalSet(2, 4));
    // Block row 1 owns kernel block 2 → elements 8..11.
    EXPECT_EQ(row_rel.preimage_of(IntervalSet(2, 4)), IntervalSet(8, 12));
    // Second stored block (kernel 4..7) has block col 2 → domain cols 4..5.
    EXPECT_EQ(col_rel.image_of(IntervalSet(4, 8)), IntervalSet(4, 6));
    EXPECT_EQ(col_rel.preimage_of(IntervalSet(4, 6)), IntervalSet(4, 8));

    // The lift is exact on arbitrary (even block-misaligned) subsets.
    check_against_materialized(row_rel);
    check_against_materialized(col_rel);
}

} // namespace
} // namespace kdr
