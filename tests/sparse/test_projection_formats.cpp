/// Integration tests: the universal co-partitioning operators of paper §3.1
/// applied through each storage format's own relations. This is the paper's
/// central flexibility claim (P2/P3) — image/preimage work identically on
/// every format, so partitioning code never mentions the format.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "partition/projection.hpp"
#include "sparse/convert.hpp"
#include "support/rng.hpp"

namespace kdr {
namespace {

std::vector<Triplet<double>> tridiagonal(gidx n) {
    std::vector<Triplet<double>> ts;
    for (gidx i = 0; i < n; ++i) {
        if (i > 0) ts.push_back({i, i - 1, -1.0});
        ts.push_back({i, i, 2.0});
        if (i < n - 1) ts.push_back({i, i + 1, -1.0});
    }
    return ts;
}

using MakeOp = std::function<std::unique_ptr<LinearOperator<double>>(
    IndexSpace, IndexSpace, std::vector<Triplet<double>>)>;

struct ProjCase {
    std::string name;
    MakeOp make;
};

std::vector<ProjCase> projection_formats() {
    return {
        {"coo",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CooMatrix<double>>(
                 CooMatrix<double>::from_triplets(d, r, ts));
         }},
        {"csr",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CsrMatrix<double>>(
                 CsrMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"csc",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<CscMatrix<double>>(
                 CscMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"ell",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<EllMatrix<double>>(
                 EllMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"dia",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<DiaMatrix<double>>(
                 DiaMatrix<double>::from_triplets(d, r, std::move(ts)));
         }},
        {"bcsr",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<BcsrMatrix<double>>(
                 BcsrMatrix<double>::from_triplets(d, r, 2, 2, std::move(ts)));
         }},
        {"dense",
         [](IndexSpace d, IndexSpace r, std::vector<Triplet<double>> ts) {
             return std::make_unique<DenseMatrix<double>>(
                 DenseMatrix<double>::from_triplets(d, r, ts));
         }},
    };
}

class ProjectionFormatTest : public ::testing::TestWithParam<ProjCase> {
protected:
    static constexpr gidx kN = 16;
    IndexSpace D = IndexSpace::create(kN, "D");
    IndexSpace R = IndexSpace::create(kN, "R");
    std::unique_ptr<LinearOperator<double>> A = GetParam().make(D, R, tridiagonal(kN));
};

TEST_P(ProjectionFormatTest, RowPreimageEnablesIndependentPieces) {
    // The kernel partition row_{R→K}[P] must let each color compute exactly
    // its rows of y = A x: running piece c over the full x must reproduce the
    // restriction of y to P(c).
    const Partition pr = Partition::equal(R, 4);
    const Partition pk = preimage(pr, *A->row_relation());
    Rng rng(21);
    std::vector<double> x(static_cast<std::size_t>(kN));
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    std::vector<double> y_ref(static_cast<std::size_t>(kN), 0.0);
    A->multiply_add(x, y_ref);

    for (Color c = 0; c < 4; ++c) {
        std::vector<double> y(static_cast<std::size_t>(kN), 0.0);
        A->multiply_add_piece(pk.piece(c), x, y);
        // Inside P(c): full value. (Outside may hold spill only for formats
        // whose kernel pieces alias rows — none here, rows are disjoint.)
        pr.piece(c).for_each([&](gidx i) {
            EXPECT_NEAR(y[static_cast<std::size_t>(i)], y_ref[static_cast<std::size_t>(i)],
                        1e-12)
                << GetParam().name << " row " << i << " color " << c;
        });
    }
}

TEST_P(ProjectionFormatTest, ColImageIsSufficientInput) {
    // col_{K→D}[row_{R→K}[P]] names the domain points each color reads. If we
    // zero every other x entry, piece outputs must not change.
    const Partition pr = Partition::equal(R, 4);
    const Partition pk = preimage(pr, *A->row_relation());
    const Partition pd = image(pk, *A->col_relation());
    Rng rng(33);
    std::vector<double> x(static_cast<std::size_t>(kN));
    for (double& v : x) v = rng.uniform(-1.0, 1.0);

    for (Color c = 0; c < 4; ++c) {
        std::vector<double> x_masked(static_cast<std::size_t>(kN), 0.0);
        pd.piece(c).for_each(
            [&](gidx j) { x_masked[static_cast<std::size_t>(j)] = x[static_cast<std::size_t>(j)]; });
        std::vector<double> y_full(static_cast<std::size_t>(kN), 0.0);
        std::vector<double> y_masked(static_cast<std::size_t>(kN), 0.0);
        A->multiply_add_piece(pk.piece(c), x, y_full);
        A->multiply_add_piece(pk.piece(c), x_masked, y_masked);
        for (std::size_t i = 0; i < y_full.size(); ++i)
            EXPECT_NEAR(y_full[i], y_masked[i], 1e-12)
                << GetParam().name << " color " << c << " row " << i;
    }
}

TEST_P(ProjectionFormatTest, KernelPartitionFromDomainCoversAliasedColumns) {
    // col_{D→K}[Q]: kernel entries reading each domain piece. Complete since
    // every stored (non-padding) entry reads some column; pieces alias where
    // the stencil crosses piece boundaries.
    const Partition qd = Partition::equal(D, 4);
    const Partition pk = preimage(qd, *A->col_relation());
    EXPECT_EQ(pk.space(), A->kernel());
    // Union of pieces must cover all non-padding kernel points: check via the
    // col relation's preimage of the whole domain.
    IntervalSet covered;
    for (Color c = 0; c < 4; ++c) covered = covered.set_union(pk.piece(c));
    EXPECT_EQ(covered, A->col_relation()->preimage_of(D.universe()));
}

TEST_P(ProjectionFormatTest, UniversalOperatorIsFormatIndependent) {
    // The same projection pipeline executed through a MaterializedRelation
    // fallback (what a user-defined format would get for free) must agree
    // with the format's fast-path relations.
    const Partition pr = Partition::equal(R, 3);
    const MaterializedRelation generic_row(A->kernel(), R, A->row_relation()->enumerate());
    const MaterializedRelation generic_col(A->kernel(), D, A->col_relation()->enumerate());
    const Partition pk_fast = preimage(pr, *A->row_relation());
    const Partition pk_ref = preimage(pr, generic_row);
    for (Color c = 0; c < 3; ++c) {
        // Fast paths may include padding kernel points in row-owned intervals
        // (CSR/BCSR intervals are exact; ELL/DIA include padding slots of
        // covered rows). Compare after masking to related points.
        const IntervalSet related = generic_row.preimage_of(R.universe());
        EXPECT_EQ(pk_fast.piece(c).set_intersection(related), pk_ref.piece(c))
            << GetParam().name << " color " << c;
    }
    const Partition pd_fast = image(pk_ref, *A->col_relation());
    const Partition pd_ref = image(pk_ref, generic_col);
    for (Color c = 0; c < 3; ++c)
        EXPECT_EQ(pd_fast.piece(c), pd_ref.piece(c)) << GetParam().name << " color " << c;
}

INSTANTIATE_TEST_SUITE_P(Formats, ProjectionFormatTest,
                         ::testing::ValuesIn(projection_formats()),
                         [](const ::testing::TestParamInfo<ProjCase>& pinfo) {
                             return pinfo.param.name;
                         });

} // namespace
} // namespace kdr
