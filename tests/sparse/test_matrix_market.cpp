#include "sparse/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/csr.hpp"
#include "support/error.hpp"

namespace kdr::mm {
namespace {

TEST(MatrixMarket, ReadsGeneralRealCoordinate) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 4 3\n"
        "1 1 2.5\n"
        "2 3 -1.0\n"
        "3 4 7\n");
    const MatrixMarketData d = read_matrix_market(in);
    EXPECT_EQ(d.rows, 3);
    EXPECT_EQ(d.cols, 4);
    EXPECT_FALSE(d.was_symmetric);
    ASSERT_EQ(d.triplets.size(), 3u);
    EXPECT_EQ(d.triplets[0], (Triplet<double>{0, 0, 2.5}));
    EXPECT_EQ(d.triplets[1], (Triplet<double>{1, 2, -1.0}));
    EXPECT_EQ(d.triplets[2], (Triplet<double>{2, 3, 7.0}));
}

TEST(MatrixMarket, ExpandsSymmetricStorage) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 4.0\n"
        "2 1 -1.0\n"
        "3 2 -2.0\n");
    const MatrixMarketData d = read_matrix_market(in);
    EXPECT_TRUE(d.was_symmetric);
    EXPECT_EQ(d.triplets.size(), 5u) << "two off-diagonal entries mirrored";
    const auto cs = coalesce_triplets(d.triplets);
    EXPECT_EQ(cs.size(), 5u);
    // (0,1) mirror of (1,0)
    bool found = false;
    for (const auto& t : cs)
        if (t.row == 0 && t.col == 1) {
            EXPECT_DOUBLE_EQ(t.value, -1.0);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(MatrixMarket, ExpandsSkewSymmetric) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 3.0\n");
    const MatrixMarketData d = read_matrix_market(in);
    ASSERT_EQ(d.triplets.size(), 2u);
    EXPECT_EQ(d.triplets[0], (Triplet<double>{1, 0, 3.0}));
    EXPECT_EQ(d.triplets[1], (Triplet<double>{0, 1, -3.0}));
}

TEST(MatrixMarket, RejectsNonzeroSkewSymmetricDiagonal) {
    // A = -Aᵀ forces a zero diagonal; a nonzero entry means the file is
    // corrupt (and silently mirroring it would double it).
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 2\n"
        "1 1 0.5\n"
        "2 1 3.0\n");
    EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, AcceptsExplicitZeroSkewSymmetricDiagonal) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 2\n"
        "1 1 0.0\n"
        "2 1 3.0\n");
    const MatrixMarketData d = read_matrix_market(in);
    // The zero diagonal entry is kept once (not mirrored onto itself).
    ASSERT_EQ(d.triplets.size(), 3u);
}

TEST(MatrixMarket, PatternEntriesDefaultToOne) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n");
    const MatrixMarketData d = read_matrix_market(in);
    EXPECT_TRUE(d.was_pattern);
    EXPECT_DOUBLE_EQ(d.triplets[0].value, 1.0);
    EXPECT_DOUBLE_EQ(d.triplets[1].value, 1.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
    {
        std::istringstream in("not a banner\n1 1 0\n");
        EXPECT_THROW(read_matrix_market(in), Error);
    }
    {
        std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
        EXPECT_THROW(read_matrix_market(in), Error);
    }
    {
        std::istringstream in(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 3.0\n");
        EXPECT_THROW(read_matrix_market(in), Error) << "index out of bounds";
    }
    {
        std::istringstream in("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
        EXPECT_THROW(read_matrix_market(in), Error) << "fewer entries than declared";
    }
    {
        std::istringstream in("%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
        EXPECT_THROW(read_matrix_market(in), Error) << "complex unsupported";
    }
}

TEST(MatrixMarket, WriteReadRoundTrip) {
    const IndexSpace D = IndexSpace::create(5, "D");
    const IndexSpace R = IndexSpace::create(4, "R");
    const auto A = CsrMatrix<double>::from_triplets(
        D, R, {{0, 0, 1.25}, {1, 4, -2.5}, {3, 2, 1e-3}, {2, 2, 42.0}});
    std::stringstream io;
    write_matrix_market(io, A);
    const MatrixMarketData d = read_matrix_market(io);
    EXPECT_EQ(d.rows, 4);
    EXPECT_EQ(d.cols, 5);
    EXPECT_EQ(coalesce_triplets(d.triplets), A.to_triplets());
}

TEST(MatrixMarket, FileRoundTrip) {
    const IndexSpace D = IndexSpace::create(3, "D");
    const IndexSpace R = IndexSpace::create(3, "R");
    const auto A = CsrMatrix<double>::from_triplets(D, R, {{0, 1, 0.5}, {2, 0, -7.0}});
    const std::string path = ::testing::TempDir() + "/kdr_roundtrip.mtx";
    write_matrix_market_file(path, A);
    const MatrixMarketData d = read_matrix_market_file(path);
    EXPECT_EQ(coalesce_triplets(d.triplets), A.to_triplets());
    EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"), Error);
}

} // namespace
} // namespace kdr::mm
