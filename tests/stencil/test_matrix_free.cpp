/// Matrix-free stencil operators (functional layer): the computed kernel
/// must be indistinguishable from its materialized CSR twin — same triplets,
/// bitwise-identical multiply results (full, per-piece, transpose), same
/// diagonal — while reporting the collapsed SpMV byte profile and analytic
/// projections that agree with the CSR relations piece by piece.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "stencil/matrix_free.hpp"
#include "stencil/stencil.hpp"
#include "support/rng.hpp"

namespace kdr::stencil {
namespace {

std::vector<Spec> small_specs() {
    std::vector<Spec> specs;
    specs.push_back({Kind::D1P3, 17, 1, 1});
    specs.push_back({Kind::D2P5, 6, 7, 1});
    specs.push_back({Kind::D3P7, 3, 4, 5});
    specs.push_back({Kind::D3P27, 3, 4, 3});
    return specs;
}

std::vector<double> random_vec(gidx n, gidx seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double& x : v) x = static_cast<double>(rng.next() % 1000) / 999.0 - 0.5;
    return v;
}

MatrixFreeStencilOperator<double> make_mf(const Spec& spec, const IndexSpace& D,
                                          const IndexSpace& R) {
    return {spec, D, R, laplacian_coeffs(spec)};
}

TEST(MatrixFree, TripletsMatchMaterialized) {
    for (const Spec& spec : small_specs()) {
        SCOPED_TRACE(spec.describe());
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const IndexSpace R = IndexSpace::create(n, "R");
        const auto mf = make_mf(spec, D, R);
        EXPECT_EQ(mf.kernel().size(), static_cast<gidx>(spec.points()) * n);
        const auto got = coalesce_triplets(mf.to_triplets());
        const auto want = coalesce_triplets(laplacian_triplets(spec));
        ASSERT_EQ(got.size(), want.size());
        EXPECT_EQ(static_cast<gidx>(got.size()), spec.total_nnz());
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i], want[i]) << "triplet " << i;
        }
    }
}

TEST(MatrixFree, MultiplyBitwiseMatchesCsr) {
    for (const Spec& spec : small_specs()) {
        SCOPED_TRACE(spec.describe());
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const IndexSpace R = IndexSpace::create(n, "R");
        const auto mf = make_mf(spec, D, R);
        const CsrMatrix<double> csr = laplacian_csr(spec, D, R);

        const auto x = random_vec(n, 7 + n);
        // Nonzero initial y: += semantics must also agree.
        auto y_mf = random_vec(n, 11 + n);
        auto y_csr = y_mf;
        mf.multiply_add(x, y_mf);
        csr.multiply_add(x, y_csr);
        for (gidx i = 0; i < n; ++i) {
            ASSERT_EQ(y_mf[static_cast<std::size_t>(i)], y_csr[static_cast<std::size_t>(i)])
                << "row " << i << " not bitwise identical";
        }

        auto t_mf = random_vec(n, 13 + n);
        auto t_csr = t_mf;
        mf.multiply_add_transpose(x, t_mf);
        csr.multiply_add_transpose(x, t_csr);
        for (gidx i = 0; i < n; ++i) {
            ASSERT_EQ(t_mf[static_cast<std::size_t>(i)], t_csr[static_cast<std::size_t>(i)])
                << "transpose row " << i;
        }
    }
}

TEST(MatrixFree, PieceRestrictedMultiplySumsToFull) {
    for (const Spec& spec : small_specs()) {
        SCOPED_TRACE(spec.describe());
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const IndexSpace R = IndexSpace::create(n, "R");
        const auto mf = make_mf(spec, D, R);
        const auto x = random_vec(n, 3 + n);

        std::vector<double> full(static_cast<std::size_t>(n), 0.0);
        mf.multiply_add(x, full);

        // Kernel pieces induced by a 4-way row partition — exactly what the
        // planner launches per color.
        const Partition rows = Partition::equal(R, 4);
        std::vector<double> pieced(static_cast<std::size_t>(n), 0.0);
        const auto row_rel = mf.row_relation();
        gidx covered = 0;
        for (Color c = 0; c < rows.color_count(); ++c) {
            const IntervalSet kpiece = row_rel->preimage_of(rows.piece(c));
            covered += kpiece.volume();
            mf.multiply_add_piece(kpiece, x, pieced);
        }
        // Clipped boundary slots relate to no row (the relation is partial),
        // so the row pieces tile exactly the valid slots.
        EXPECT_EQ(covered, spec.total_nnz()) << "row pieces must tile the valid kernel";
        for (gidx i = 0; i < n; ++i) {
            ASSERT_EQ(pieced[static_cast<std::size_t>(i)], full[static_cast<std::size_t>(i)])
                << "row " << i;
        }
    }
}

TEST(MatrixFree, AddDiagonalMatchesCsr) {
    for (const Spec& spec : small_specs()) {
        SCOPED_TRACE(spec.describe());
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const IndexSpace R = IndexSpace::create(n, "R");
        const auto mf = make_mf(spec, D, R);
        const CsrMatrix<double> csr = laplacian_csr(spec, D, R);
        std::vector<double> d_mf(static_cast<std::size_t>(n), 0.5);
        std::vector<double> d_csr(static_cast<std::size_t>(n), 0.5);
        mf.add_diagonal(d_mf);
        csr.add_diagonal(d_csr);
        EXPECT_EQ(d_mf, d_csr);
    }
}

TEST(MatrixFree, AnalyticProjectionsMatchCsrRelations) {
    // The planner derives kernel pieces and domain needs purely from the
    // relations: row-preimage volumes (per-piece work) and the column image
    // of those preimages (halo coverage) must agree with the materialized
    // twin for every row piece.
    for (const Spec& spec : small_specs()) {
        SCOPED_TRACE(spec.describe());
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const IndexSpace R = IndexSpace::create(n, "R");
        const auto mf = make_mf(spec, D, R);
        const CsrMatrix<double> csr = laplacian_csr(spec, D, R);
        const Partition rows = Partition::equal(R, 3);
        for (Color c = 0; c < rows.color_count(); ++c) {
            const IntervalSet k_mf = mf.row_relation()->preimage_of(rows.piece(c));
            const IntervalSet k_csr = csr.row_relation()->preimage_of(rows.piece(c));
            EXPECT_EQ(k_mf.volume(), k_csr.volume()) << "piece " << c << " nnz";
            EXPECT_EQ(mf.col_relation()->image_of(k_mf),
                      csr.col_relation()->image_of(k_csr))
                << "piece " << c << " domain needs";
            EXPECT_EQ(mf.row_relation()->image_of(k_mf), rows.piece(c))
                << "piece " << c << " row coverage";
        }
    }
}

TEST(MatrixFree, CostModelCollapsesMatrixBytes) {
    Spec spec{Kind::D2P5, 8, 8, 1};
    const gidx n = spec.unknowns();
    const IndexSpace D = IndexSpace::create(n, "D");
    const IndexSpace R = IndexSpace::create(n, "R");
    const auto mf = make_mf(spec, D, R);
    const SpmvCostModel cm = mf.spmv_cost_model();
    EXPECT_EQ(cm.matrix_bytes_per_entry, 0.0);
    EXPECT_EQ(cm.gather_bytes_per_entry, 0.0);
    EXPECT_EQ(cm.bytes_per_row, 24.0);
    EXPECT_STREQ(mf.format_name(), "matfree");

    const CsrMatrix<double> csr = laplacian_csr(spec, D, R);
    const SpmvCostModel def = csr.spmv_cost_model();
    EXPECT_EQ(def.matrix_bytes_per_entry, 16.0);
    EXPECT_EQ(def.gather_bytes_per_entry, 8.0);
    EXPECT_EQ(def.bytes_per_row, 24.0);
}

TEST(MatrixFree, KroneckerDefaultFactorsAreLaplacians) {
    // tridiag(-1, 2, -1) factors: A_0 ⊕ … ⊕ A_{d-1} is the Dirichlet
    // Laplacian of the matching axis stencil.
    const std::vector<std::vector<gidx>> extent_sets = {{9}, {4, 5}, {3, 4, 5}};
    for (const auto& ext : extent_sets) {
        gidx n = 1;
        for (const gidx e : ext) n *= e;
        const IndexSpace D = IndexSpace::create(n, "D");
        const IndexSpace R = IndexSpace::create(n, "R");
        const std::vector<TridiagFactor> factors(ext.size());
        const auto kron = make_matrix_free_kronecker(factors, ext, D, R);
        SCOPED_TRACE(kron->spec().describe());
        const auto want = coalesce_triplets(laplacian_triplets(kron->spec()));
        const auto got = coalesce_triplets(kron->to_triplets());
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
    }
}

TEST(MatrixFree, KroneckerMatchesDenseReference) {
    // Non-symmetric tridiagonal factors on a 3×4 grid, checked against the
    // Kronecker sum assembled from first principles:
    //   A[(i,j), (i',j')] = A0[i][i']·[j=j'] + [i=i']·A1[j][j'].
    const gidx nx = 3, ny = 4, n = nx * ny;
    const TridiagFactor f0{-2.0, 5.0, -0.5};
    const TridiagFactor f1{1.5, 3.0, -1.0};
    const IndexSpace D = IndexSpace::create(n, "D");
    const IndexSpace R = IndexSpace::create(n, "R");
    const auto kron = make_matrix_free_kronecker({f0, f1}, {nx, ny}, D, R);

    auto band = [](const TridiagFactor& f, gidx a, gidx b) {
        if (a == b) return f.diag;
        if (b == a - 1) return f.sub;
        if (b == a + 1) return f.super;
        return 0.0;
    };
    std::vector<Triplet<double>> want;
    for (gidx i = 0; i < nx; ++i)
        for (gidx j = 0; j < ny; ++j)
            for (gidx i2 = 0; i2 < nx; ++i2)
                for (gidx j2 = 0; j2 < ny; ++j2) {
                    double v = 0.0;
                    if (j == j2) v += band(f0, i, i2);
                    if (i == i2) v += band(f1, j, j2);
                    if (v != 0.0) want.push_back({i * ny + j, i2 * ny + j2, v});
                }
    const auto got = coalesce_triplets(kron->to_triplets());
    const auto wantc = coalesce_triplets(std::move(want));
    ASSERT_EQ(got.size(), wantc.size());
    for (std::size_t i = 0; i < wantc.size(); ++i) EXPECT_EQ(got[i], wantc[i]);

    // And the applied kernel agrees with the reference multiply.
    const auto x = random_vec(n, 99);
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    std::vector<double> yref(static_cast<std::size_t>(n), 0.0);
    kron->multiply_add(x, y);
    reference_multiply_add(wantc, x, yref);
    for (gidx i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], yref[static_cast<std::size_t>(i)]);
    }
}

TEST(MatrixFree, RandomCoefficientsMatchTripletReference) {
    for (const Spec& spec : small_specs()) {
        SCOPED_TRACE(spec.describe());
        const gidx n = spec.unknowns();
        const IndexSpace D = IndexSpace::create(n, "D");
        const IndexSpace R = IndexSpace::create(n, "R");
        const auto coeffs = random_vec(static_cast<gidx>(spec.offsets().size()), 21);
        const MatrixFreeStencilOperator<double> op(spec, D, R, coeffs);
        const auto x = random_vec(n, 5 + n);
        std::vector<double> y(static_cast<std::size_t>(n), 0.0);
        std::vector<double> yref(static_cast<std::size_t>(n), 0.0);
        op.multiply_add(x, y);
        reference_multiply_add(op.to_triplets(), x, yref);
        for (gidx i = 0; i < n; ++i) {
            EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                             yref[static_cast<std::size_t>(i)]);
        }
    }
}

TEST(MatrixFree, RejectsMalformedConstruction) {
    Spec spec{Kind::D1P3, 8, 1, 1};
    const IndexSpace D = IndexSpace::create(8, "D");
    const IndexSpace Bad = IndexSpace::create(9, "bad");
    EXPECT_THROW(MatrixFreeStencilOperator<double>(spec, D, D, {1.0, 2.0}), Error);
    EXPECT_THROW(MatrixFreeStencilOperator<double>(spec, Bad, D, laplacian_coeffs(spec)),
                 Error);
    EXPECT_THROW(make_matrix_free_kronecker({}, {}, D, D), Error);
    EXPECT_THROW(make_matrix_free_kronecker({TridiagFactor{}}, {4, 2}, D, D), Error);
}

} // namespace
} // namespace kdr::stencil
