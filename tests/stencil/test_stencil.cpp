#include "stencil/stencil.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "partition/projection.hpp"

namespace kdr::stencil {
namespace {

TEST(Spec, PointsAndDims) {
    EXPECT_EQ(Spec{Kind::D1P3}.points(), 3);
    EXPECT_EQ(Spec{Kind::D2P5}.points(), 5);
    EXPECT_EQ(Spec{Kind::D3P7}.points(), 7);
    EXPECT_EQ(Spec{Kind::D3P27}.points(), 27);
    EXPECT_EQ(Spec{Kind::D1P3}.dims(), 1);
    EXPECT_EQ(Spec{Kind::D2P5}.dims(), 2);
    EXPECT_EQ(Spec{Kind::D3P27}.dims(), 3);
}

class StencilKindTest : public ::testing::TestWithParam<Kind> {
protected:
    Spec make_spec() const {
        Spec s;
        s.kind = GetParam();
        switch (s.dims()) {
            case 1: s.nx = 24; break;
            case 2: s.nx = 6; s.ny = 5; break;
            default: s.nx = 4; s.ny = 3; s.nz = 5; break;
        }
        return s;
    }
};

TEST_P(StencilKindTest, NnzFormulaMatchesEnumeration) {
    const Spec s = make_spec();
    EXPECT_EQ(static_cast<gidx>(laplacian_triplets(s).size()), s.total_nnz());
}

TEST_P(StencilKindTest, MatrixIsSymmetric) {
    const Spec s = make_spec();
    const auto ts = laplacian_triplets(s);
    std::map<std::pair<gidx, gidx>, double> entries;
    for (const auto& t : ts) entries[{t.row, t.col}] += t.value;
    for (const auto& [rc, v] : entries) {
        auto it = entries.find({rc.second, rc.first});
        ASSERT_NE(it, entries.end()) << "missing transpose of (" << rc.first << "," << rc.second
                                     << ")";
        EXPECT_DOUBLE_EQ(it->second, v);
    }
}

TEST_P(StencilKindTest, MatrixIsDiagonallyDominant) {
    // diag = points-1, off-diagonals are -1 and at most points-1 of them per
    // row exist => weak diagonal dominance, strict at boundaries => SPD.
    const Spec s = make_spec();
    const auto ts = laplacian_triplets(s);
    std::map<gidx, double> diag;
    std::map<gidx, double> offsum;
    for (const auto& t : ts) {
        if (t.row == t.col) {
            diag[t.row] += t.value;
        } else {
            offsum[t.row] += std::abs(t.value);
        }
    }
    bool strict_somewhere = false;
    for (const auto& [row, d] : diag) {
        EXPECT_GE(d, offsum[row]) << "row " << row;
        strict_somewhere |= (d > offsum[row]);
    }
    EXPECT_TRUE(strict_somewhere) << "boundary rows must be strictly dominant";
}

TEST_P(StencilKindTest, CsrAgreesWithTriplets) {
    const Spec s = make_spec();
    const IndexSpace D = IndexSpace::create(s.unknowns());
    const IndexSpace R = IndexSpace::create(s.unknowns());
    const auto csr = laplacian_csr(s, D, R);
    EXPECT_EQ(csr.to_triplets(), coalesce_triplets(laplacian_triplets(s)));
}

TEST_P(StencilKindTest, CoPartitionHaloCoversTrueNeeds) {
    // The analytic halo must contain (and for row blocks wider than the
    // bandwidth, exactly match) the dependent-partitioning image.
    const Spec s = make_spec();
    const IndexSpace D = IndexSpace::create(s.unknowns());
    const IndexSpace R = IndexSpace::create(s.unknowns());
    const auto csr = laplacian_csr(s, D, R);
    const CoPartition cp = co_partition(s, D, R, 3);
    const Partition pk = preimage(cp.rows, *csr.row_relation());
    const Partition pd = image(pk, *csr.col_relation());
    for (Color c = 0; c < 3; ++c) {
        EXPECT_TRUE(cp.halo.piece(c).contains_all(pd.piece(c))) << "color " << c;
    }
    EXPECT_TRUE(cp.halo.is_complete());
    EXPECT_TRUE(cp.rows.is_complete());
    EXPECT_TRUE(cp.rows.is_disjoint());
}

TEST_P(StencilKindTest, RowSumsVanishInInterior) {
    // Interior rows of a Laplacian sum to zero; Dirichlet boundary rows are
    // positive.
    const Spec s = make_spec();
    const auto ts = laplacian_triplets(s);
    std::map<gidx, double> row_sums;
    std::map<gidx, int> row_counts;
    for (const auto& t : ts) {
        row_sums[t.row] += t.value;
        ++row_counts[t.row];
    }
    for (const auto& [row, sum] : row_sums) {
        if (row_counts[row] == s.points()) {
            EXPECT_NEAR(sum, 0.0, 1e-12) << "interior row " << row;
        } else {
            EXPECT_GT(sum, 0.0) << "boundary row " << row;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, StencilKindTest,
                         ::testing::Values(Kind::D1P3, Kind::D2P5, Kind::D3P7, Kind::D3P27),
                         [](const ::testing::TestParamInfo<Kind>& pinfo) {
                             std::string n = kind_name(pinfo.param);
                             for (char& c : n)
                                 if (c == '-') c = '_';
                             return n;
                         });

TEST(SpecCube, HitsTargetWithPowerOfTwoExtents) {
    const Spec s1 = Spec::cube(Kind::D1P3, 4096);
    EXPECT_EQ(s1.unknowns(), 4096);
    EXPECT_EQ(s1.ny, 1);
    const Spec s2 = Spec::cube(Kind::D2P5, 4096);
    EXPECT_EQ(s2.unknowns(), 4096);
    EXPECT_EQ(s2.nx, 64);
    EXPECT_EQ(s2.ny, 64);
    const Spec s3 = Spec::cube(Kind::D3P7, 4096);
    EXPECT_EQ(s3.unknowns(), 4096);
    EXPECT_EQ(s3.nx, 16);
}

TEST(RandomRhs, EntriesInUnitIntervalAndReproducible) {
    const auto b1 = random_rhs(1000, 7);
    const auto b2 = random_rhs(1000, 7);
    EXPECT_EQ(b1, b2);
    for (double v : b1) {
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
    EXPECT_NE(random_rhs(10, 1), random_rhs(10, 2));
}

TEST(CoPartition, NnzRoughlyProportionalToRows) {
    Spec s;
    s.kind = Kind::D2P5;
    s.nx = 32;
    s.ny = 32;
    const IndexSpace D = IndexSpace::create(s.unknowns());
    const IndexSpace R = IndexSpace::create(s.unknowns());
    const CoPartition cp = co_partition(s, D, R, 4);
    gidx total = 0;
    for (gidx v : cp.nnz) total += v;
    EXPECT_NEAR(static_cast<double>(total), static_cast<double>(s.total_nnz()),
                static_cast<double>(s.total_nnz()) * 0.01);
}

} // namespace
} // namespace kdr::stencil
