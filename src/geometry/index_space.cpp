#include "geometry/index_space.hpp"

namespace kdr {

SpaceId IndexSpace::next_id() {
    static std::atomic<SpaceId> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

IndexSpace IndexSpace::create(gidx size, std::string name) {
    KDR_REQUIRE(size >= 0, "IndexSpace: negative size ", size);
    IndexSpace s;
    s.id_ = next_id();
    s.size_ = size;
    s.name_ = std::move(name);
    return s;
}

IndexSpace IndexSpace::create_grid(std::vector<gidx> extents, std::string name) {
    KDR_REQUIRE(!extents.empty() && extents.size() <= 3,
                "IndexSpace: grid must be 1-3 dimensional, got ", extents.size(), " dims");
    gidx size = 1;
    for (gidx e : extents) {
        KDR_REQUIRE(e > 0, "IndexSpace: nonpositive grid extent ", e);
        size *= e;
    }
    IndexSpace s;
    s.id_ = next_id();
    s.size_ = size;
    s.extents_ = std::move(extents);
    s.name_ = std::move(name);
    return s;
}

} // namespace kdr
