#pragma once

/// \file accessor.hpp
/// Privilege-checkable vector views. `VecView<T>` is the element-access type
/// every kernel body receives: in release mode it is a bare pointer + length
/// (indexing compiles down to exactly the raw-span loads and stores it
/// replaced), while under `RuntimeOptions::validate` the runtime attaches an
/// `AccessHook` that sees every element read, write, and read-modify-write
/// before it happens and can reject accesses that violate the task's declared
/// region requirement (subset + privilege).
///
/// The split lives at geometry level (below sparse and runtime) because both
/// `LinearOperator` kernel signatures and `TaskContext::accessor` traffic in
/// it; neither may depend on the other's library.

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "geometry/point.hpp"

namespace kdr {

/// Observer for element accesses through a `VecView`. Indices are *global*
/// (the view always spans the whole field). Implementations may throw to
/// reject an access; in that case the underlying memory is not touched for
/// writes (reads have no side effect to suppress).
class AccessHook {
public:
    virtual ~AccessHook() = default;
    /// Called before an element load.
    virtual void on_read(gidx i) = 0;
    /// Called before a blind store (no prior load of the element).
    virtual void on_write(gidx i) = 0;
    /// Called before a load-modify-store (`+=` and friends).
    virtual void on_rmw(gidx i) = 0;
};

/// Proxy returned by `VecView<T>::operator[]` for non-const `T`: conversion
/// to `T` is a read, `=` is a write, the compound assignments are RMWs. With
/// a null hook every operation inlines to the raw memory access.
template <typename T>
class ElemRef {
public:
    constexpr ElemRef(T* p, AccessHook* hook, gidx index) noexcept
        : p_(p), hook_(hook), index_(index) {}
    constexpr ElemRef(const ElemRef&) = default;

    constexpr operator T() const { // NOLINT(google-explicit-constructor)
        if (hook_ != nullptr) hook_->on_read(index_);
        return *p_;
    }
    constexpr ElemRef& operator=(T v) {
        if (hook_ != nullptr) hook_->on_write(index_);
        *p_ = v;
        return *this;
    }
    constexpr ElemRef& operator=(const ElemRef& other) { return *this = static_cast<T>(other); }
    constexpr ElemRef& operator+=(T v) {
        if (hook_ != nullptr) hook_->on_rmw(index_);
        *p_ += v;
        return *this;
    }
    constexpr ElemRef& operator-=(T v) {
        if (hook_ != nullptr) hook_->on_rmw(index_);
        *p_ -= v;
        return *this;
    }
    constexpr ElemRef& operator*=(T v) {
        if (hook_ != nullptr) hook_->on_rmw(index_);
        *p_ *= v;
        return *this;
    }
    constexpr ElemRef& operator/=(T v) {
        if (hook_ != nullptr) hook_->on_rmw(index_);
        *p_ /= v;
        return *this;
    }

private:
    T* p_;
    AccessHook* hook_;
    gidx index_;
};

/// A length-checkable, hook-able view of one field's storage. `T` may be
/// const-qualified; a `VecView<const T>` only reads. Implicitly constructible
/// from `std::span` and `std::vector` so host-side callers (tests, examples,
/// baselines) keep passing plain containers; those views carry no hook.
template <typename T>
class VecView {
public:
    using value_type = std::remove_const_t<T>;

    constexpr VecView() noexcept = default;
    constexpr VecView(T* data, std::size_t count, AccessHook* hook = nullptr) noexcept
        : data_(data), count_(count), hook_(hook) {}
    constexpr VecView(std::span<T> s) noexcept // NOLINT(google-explicit-constructor)
        : data_(s.data()), count_(s.size()) {}
    template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
    constexpr VecView(std::span<value_type> s) noexcept // NOLINT(google-explicit-constructor)
        : data_(s.data()), count_(s.size()) {}
    constexpr VecView(std::vector<value_type>& v) noexcept // NOLINT(google-explicit-constructor)
        : data_(v.data()), count_(v.size()) {}
    template <typename U = T, typename = std::enable_if_t<std::is_const_v<U>>>
    constexpr VecView(const std::vector<value_type>& v) noexcept // NOLINT
        : data_(v.data()), count_(v.size()) {}

    /// A mutable view decays to a read-only view (hook preserved).
    constexpr operator VecView<const value_type>() const noexcept // NOLINT
        requires(!std::is_const_v<T>)
    {
        return VecView<const value_type>(data_, count_, hook_);
    }

    [[nodiscard]] constexpr std::size_t size() const noexcept { return count_; }
    [[nodiscard]] constexpr bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] constexpr AccessHook* hook() const noexcept { return hook_; }
    /// Raw storage, bypassing the hook — for size/shape math only.
    [[nodiscard]] constexpr T* data_unchecked() const noexcept { return data_; }

    /// Read-only views load the element directly (one hook call, one load).
    [[nodiscard]] constexpr value_type operator[](std::size_t i) const
        requires std::is_const_v<T>
    {
        if (hook_ != nullptr) hook_->on_read(static_cast<gidx>(i));
        return data_[i];
    }

    /// Mutable views hand back a proxy that distinguishes read/write/RMW.
    [[nodiscard]] constexpr ElemRef<T> operator[](std::size_t i) const
        requires(!std::is_const_v<T>)
    {
        return ElemRef<T>(data_ + i, hook_, static_cast<gidx>(i));
    }

private:
    T* data_ = nullptr;
    std::size_t count_ = 0;
    AccessHook* hook_ = nullptr;
};

} // namespace kdr
