#include "geometry/interval_set.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace kdr {

IntervalSet::IntervalSet(gidx lo, gidx hi) {
    KDR_REQUIRE(lo <= hi, "IntervalSet: lo ", lo, " > hi ", hi);
    if (lo < hi) intervals_.push_back({lo, hi});
}

IntervalSet IntervalSet::from_intervals(std::vector<Interval> intervals) {
    IntervalSet s;
    s.intervals_ = std::move(intervals);
    s.normalize();
    return s;
}

IntervalSet IntervalSet::from_points(std::vector<gidx> points) {
    std::sort(points.begin(), points.end());
    IntervalSet s;
    for (gidx p : points) {
        if (!s.intervals_.empty() && s.intervals_.back().hi == p) {
            ++s.intervals_.back().hi;
        } else if (!s.intervals_.empty() && p < s.intervals_.back().hi) {
            // duplicate point, skip
        } else {
            s.intervals_.push_back({p, p + 1});
        }
    }
    return s;
}

void IntervalSet::normalize() {
    std::erase_if(intervals_, [](const Interval& iv) { return iv.empty(); });
    std::sort(intervals_.begin(), intervals_.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    std::vector<Interval> out;
    out.reserve(intervals_.size());
    for (const Interval& iv : intervals_) {
        if (!out.empty() && iv.lo <= out.back().hi) {
            out.back().hi = std::max(out.back().hi, iv.hi);
        } else {
            out.push_back(iv);
        }
    }
    intervals_ = std::move(out);
}

gidx IntervalSet::volume() const noexcept {
    gidx v = 0;
    for (const Interval& iv : intervals_) v += iv.size();
    return v;
}

bool IntervalSet::contains(gidx i) const noexcept {
    auto it = std::upper_bound(intervals_.begin(), intervals_.end(), i,
                               [](gidx x, const Interval& iv) { return x < iv.lo; });
    if (it == intervals_.begin()) return false;
    return std::prev(it)->contains(i);
}

bool IntervalSet::contains_all(const IntervalSet& other) const {
    return other.set_difference(*this).empty();
}

bool IntervalSet::intersects(const IntervalSet& other) const noexcept {
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < intervals_.size() && b < other.intervals_.size()) {
        const Interval& x = intervals_[a];
        const Interval& y = other.intervals_[b];
        if (x.hi <= y.lo) {
            ++a;
        } else if (y.hi <= x.lo) {
            ++b;
        } else {
            return true;
        }
    }
    return false;
}

Interval IntervalSet::bounds() const noexcept {
    if (intervals_.empty()) return {0, 0};
    return {intervals_.front().lo, intervals_.back().hi};
}

IntervalSet IntervalSet::set_union(const IntervalSet& other) const {
    std::vector<Interval> merged;
    merged.reserve(intervals_.size() + other.intervals_.size());
    merged.insert(merged.end(), intervals_.begin(), intervals_.end());
    merged.insert(merged.end(), other.intervals_.begin(), other.intervals_.end());
    return from_intervals(std::move(merged));
}

IntervalSet IntervalSet::set_intersection(const IntervalSet& other) const {
    IntervalSet out;
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < intervals_.size() && b < other.intervals_.size()) {
        const Interval& x = intervals_[a];
        const Interval& y = other.intervals_[b];
        const gidx lo = std::max(x.lo, y.lo);
        const gidx hi = std::min(x.hi, y.hi);
        if (lo < hi) out.intervals_.push_back({lo, hi});
        if (x.hi < y.hi) {
            ++a;
        } else {
            ++b;
        }
    }
    return out; // already sorted, disjoint, non-adjacent
}

IntervalSet IntervalSet::set_difference(const IntervalSet& other) const {
    IntervalSet out;
    std::size_t b = 0;
    for (Interval x : intervals_) {
        while (b < other.intervals_.size() && other.intervals_[b].hi <= x.lo) ++b;
        std::size_t bb = b;
        gidx cursor = x.lo;
        while (bb < other.intervals_.size() && other.intervals_[bb].lo < x.hi) {
            const Interval& y = other.intervals_[bb];
            if (y.lo > cursor) out.intervals_.push_back({cursor, y.lo});
            cursor = std::max(cursor, y.hi);
            if (cursor >= x.hi) break;
            ++bb;
        }
        if (cursor < x.hi) out.intervals_.push_back({cursor, x.hi});
    }
    return out;
}

IntervalSet IntervalSet::shifted(gidx delta) const {
    IntervalSet out;
    out.intervals_.reserve(intervals_.size());
    for (const Interval& iv : intervals_) out.intervals_.push_back({iv.lo + delta, iv.hi + delta});
    return out;
}

std::vector<gidx> IntervalSet::to_points() const {
    std::vector<gidx> pts;
    pts.reserve(static_cast<std::size_t>(volume()));
    for_each([&](gidx i) { pts.push_back(i); });
    return pts;
}

gidx IntervalSet::rank_of(gidx i) const {
    gidx rank = 0;
    for (const Interval& iv : intervals_) {
        if (i >= iv.hi) {
            rank += iv.size();
        } else {
            KDR_REQUIRE(i >= iv.lo, "rank_of: index ", i, " not in set");
            return rank + (i - iv.lo);
        }
    }
    KDR_REQUIRE(false, "rank_of: index ", i, " not in set");
    return -1;
}

gidx IntervalSet::select(gidx r) const {
    KDR_REQUIRE(r >= 0 && r < volume(), "select: rank ", r, " out of range [0,", volume(), ")");
    for (const Interval& iv : intervals_) {
        if (r < iv.size()) return iv.lo + r;
        r -= iv.size();
    }
    KDR_UNREACHABLE("select past end");
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
    os << "{";
    bool first = true;
    for (const Interval& iv : s.intervals_) {
        if (!first) os << ",";
        os << iv;
        first = false;
    }
    return os << "}";
}

} // namespace kdr
