#pragma once

/// \file point.hpp
/// Fixed-dimension integer points and half-open rectangles. These describe
/// structured (grid) index spaces; all storage-level indexing is linearized
/// to a 1-D global index (`gidx`) in row-major order.

#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>

#include "support/error.hpp"

namespace kdr {

/// Global linear index type used across the library (64-bit: the paper runs
/// up to 2^32 unknowns, which overflows 32-bit kernel spaces).
using gidx = std::int64_t;

template <int N>
struct Point {
    static_assert(N >= 1 && N <= 3, "KDRSolvers supports 1-3 dimensional grids");
    std::array<gidx, static_cast<std::size_t>(N)> x{};

    constexpr gidx& operator[](int i) { return x[static_cast<std::size_t>(i)]; }
    constexpr const gidx& operator[](int i) const { return x[static_cast<std::size_t>(i)]; }

    friend constexpr bool operator==(const Point& a, const Point& b) { return a.x == b.x; }
    friend constexpr bool operator!=(const Point& a, const Point& b) { return !(a == b); }

    friend constexpr Point operator+(Point a, const Point& b) {
        for (int i = 0; i < N; ++i) a[i] += b[i];
        return a;
    }
    friend constexpr Point operator-(Point a, const Point& b) {
        for (int i = 0; i < N; ++i) a[i] -= b[i];
        return a;
    }

    friend std::ostream& operator<<(std::ostream& os, const Point& p) {
        os << "(";
        for (int i = 0; i < N; ++i) os << (i ? "," : "") << p[i];
        return os << ")";
    }
};

/// Half-open axis-aligned box: contains p iff lo[i] <= p[i] < hi[i] for all i.
template <int N>
struct Rect {
    Point<N> lo{};
    Point<N> hi{};

    [[nodiscard]] constexpr bool empty() const {
        for (int i = 0; i < N; ++i)
            if (lo[i] >= hi[i]) return true;
        return false;
    }

    [[nodiscard]] constexpr gidx volume() const {
        if (empty()) return 0;
        gidx v = 1;
        for (int i = 0; i < N; ++i) v *= hi[i] - lo[i];
        return v;
    }

    [[nodiscard]] constexpr gidx extent(int i) const { return hi[i] - lo[i]; }

    [[nodiscard]] constexpr bool contains(const Point<N>& p) const {
        for (int i = 0; i < N; ++i)
            if (p[i] < lo[i] || p[i] >= hi[i]) return false;
        return true;
    }

    [[nodiscard]] constexpr Rect intersection(const Rect& other) const {
        Rect r;
        for (int i = 0; i < N; ++i) {
            r.lo[i] = lo[i] > other.lo[i] ? lo[i] : other.lo[i];
            r.hi[i] = hi[i] < other.hi[i] ? hi[i] : other.hi[i];
        }
        return r;
    }

    friend constexpr bool operator==(const Rect& a, const Rect& b) {
        return a.lo == b.lo && a.hi == b.hi;
    }

    friend std::ostream& operator<<(std::ostream& os, const Rect& r) {
        return os << "[" << r.lo << ".." << r.hi << ")";
    }
};

/// Row-major linearization of a point within a rect (C ordering; the last
/// coordinate varies fastest).
template <int N>
[[nodiscard]] constexpr gidx linearize(const Rect<N>& bounds, const Point<N>& p) {
    gidx idx = 0;
    for (int i = 0; i < N; ++i) {
        idx = idx * bounds.extent(i) + (p[i] - bounds.lo[i]);
    }
    return idx;
}

/// Inverse of `linearize`.
template <int N>
[[nodiscard]] constexpr Point<N> delinearize(const Rect<N>& bounds, gidx idx) {
    Point<N> p;
    for (int i = N - 1; i >= 0; --i) {
        const gidx e = bounds.extent(i);
        p[i] = bounds.lo[i] + idx % e;
        idx /= e;
    }
    return p;
}

/// Visit every point of a rect in row-major order.
template <int N, typename F>
void for_each_point(const Rect<N>& r, F&& f) {
    if (r.empty()) return;
    Point<N> p = r.lo;
    for (;;) {
        f(const_cast<const Point<N>&>(p));
        int i = N - 1;
        for (; i >= 0; --i) {
            if (++p[i] < r.hi[i]) break;
            p[i] = r.lo[i];
        }
        if (i < 0) return;
    }
}

using Point1 = Point<1>;
using Point2 = Point<2>;
using Point3 = Point<3>;
using Rect1 = Rect<1>;
using Rect2 = Rect<2>;
using Rect3 = Rect<3>;

} // namespace kdr
