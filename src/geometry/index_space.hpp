#pragma once

/// \file index_space.hpp
/// Index spaces — the `K`, `D`, `R` of the KDR abstraction (paper §3, Fig 1).
///
/// An index space is a finite set of identifiers. Here every space is a
/// linear range [0, size), optionally carrying a grid shape so structured
/// problems can address points multi-dimensionally; kernel spaces of sparse
/// matrices are plain 1-D spaces. Two spaces are *the same space* iff they
/// share an id — vectors and operators check space identity, not just size,
/// which catches domain/range mix-ups at API boundaries (paper P3).

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "geometry/interval_set.hpp"
#include "geometry/point.hpp"
#include "support/error.hpp"

namespace kdr {

using SpaceId = std::uint64_t;

class IndexSpace {
public:
    IndexSpace() = default; // invalid space (size 0, id 0)

    /// Unstructured linear space [0, size).
    static IndexSpace create(gidx size, std::string name = "");

    /// Structured grid space; size = product of extents, row-major order.
    static IndexSpace create_grid(std::vector<gidx> extents, std::string name = "");

    [[nodiscard]] SpaceId id() const noexcept { return id_; }
    [[nodiscard]] gidx size() const noexcept { return size_; }
    [[nodiscard]] bool valid() const noexcept { return id_ != 0; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    [[nodiscard]] int dims() const noexcept { return static_cast<int>(extents_.size()); }
    [[nodiscard]] bool structured() const noexcept { return !extents_.empty(); }
    [[nodiscard]] const std::vector<gidx>& extents() const noexcept { return extents_; }
    [[nodiscard]] gidx extent(int d) const {
        KDR_REQUIRE(d >= 0 && d < dims(), "extent: dim ", d, " out of range");
        return extents_[static_cast<std::size_t>(d)];
    }

    /// Whole space as an IntervalSet.
    [[nodiscard]] IntervalSet universe() const { return IntervalSet::full(size_); }

    /// Row-major linearization of a grid point.
    template <int N>
    [[nodiscard]] gidx linearize(const Point<N>& p) const {
        KDR_REQUIRE(N == dims(), "linearize: point dim ", N, " != space dim ", dims());
        gidx idx = 0;
        for (int d = 0; d < N; ++d) {
            const gidx e = extents_[static_cast<std::size_t>(d)];
            KDR_ASSERT(p[d] >= 0 && p[d] < e, "point coordinate out of bounds");
            idx = idx * e + p[d];
        }
        return idx;
    }

    template <int N>
    [[nodiscard]] Point<N> delinearize(gidx idx) const {
        KDR_REQUIRE(N == dims(), "delinearize: dim mismatch");
        Point<N> p;
        for (int d = N - 1; d >= 0; --d) {
            const gidx e = extents_[static_cast<std::size_t>(d)];
            p[d] = idx % e;
            idx /= e;
        }
        return p;
    }

    friend bool operator==(const IndexSpace& a, const IndexSpace& b) noexcept {
        return a.id_ == b.id_;
    }
    friend bool operator!=(const IndexSpace& a, const IndexSpace& b) noexcept {
        return !(a == b);
    }

    friend std::ostream& operator<<(std::ostream& os, const IndexSpace& s) {
        os << (s.name_.empty() ? "space" : s.name_) << "#" << s.id_ << "[" << s.size_ << "]";
        return os;
    }

private:
    static SpaceId next_id();

    SpaceId id_ = 0;
    gidx size_ = 0;
    std::vector<gidx> extents_;
    std::string name_;
};

} // namespace kdr
