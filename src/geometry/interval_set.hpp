#pragma once

/// \file interval_set.hpp
/// Sorted, coalesced lists of half-open intervals over the global linear
/// index type. `IntervalSet` is the universal representation of "a subset of
/// an index space": partition pieces, region-requirement footprints, images
/// and preimages of dependent-partitioning projections, and ghost regions are
/// all IntervalSets. Non-contiguous pieces (paper §4, P4) fall out for free.

#include <cstddef>
#include <ostream>
#include <vector>

#include "geometry/point.hpp"

namespace kdr {

/// One half-open interval [lo, hi).
struct Interval {
    gidx lo = 0;
    gidx hi = 0;

    [[nodiscard]] constexpr bool empty() const noexcept { return lo >= hi; }
    [[nodiscard]] constexpr gidx size() const noexcept { return empty() ? 0 : hi - lo; }
    [[nodiscard]] constexpr bool contains(gidx i) const noexcept { return i >= lo && i < hi; }

    friend constexpr bool operator==(const Interval& a, const Interval& b) noexcept {
        return a.lo == b.lo && a.hi == b.hi;
    }

    friend std::ostream& operator<<(std::ostream& os, const Interval& iv) {
        return os << "[" << iv.lo << "," << iv.hi << ")";
    }
};

/// A set of global indices stored as sorted, disjoint, non-adjacent intervals.
///
/// All mutating constructors normalize; all set-algebra operations run in
/// O(#intervals of both operands). Interval counts stay tiny in practice
/// (stencil ghost regions are a handful of runs), which is what makes
/// interval lists the right choice over bitmaps for 2^30-point spaces.
class IntervalSet {
public:
    IntervalSet() = default;

    /// Single interval [lo, hi).
    IntervalSet(gidx lo, gidx hi);

    /// From arbitrary (possibly unsorted/overlapping) intervals.
    static IntervalSet from_intervals(std::vector<Interval> intervals);

    /// From arbitrary (possibly unsorted/duplicated) points.
    static IntervalSet from_points(std::vector<gidx> points);

    /// The whole space [0, n).
    static IntervalSet full(gidx n) { return IntervalSet(0, n); }

    [[nodiscard]] bool empty() const noexcept { return intervals_.empty(); }
    [[nodiscard]] gidx volume() const noexcept;
    [[nodiscard]] std::size_t interval_count() const noexcept { return intervals_.size(); }
    [[nodiscard]] const std::vector<Interval>& intervals() const noexcept { return intervals_; }

    [[nodiscard]] bool contains(gidx i) const noexcept;
    [[nodiscard]] bool contains_all(const IntervalSet& other) const;
    [[nodiscard]] bool intersects(const IntervalSet& other) const noexcept;

    /// Smallest single interval covering the set ([0,0) if empty).
    [[nodiscard]] Interval bounds() const noexcept;

    [[nodiscard]] IntervalSet set_union(const IntervalSet& other) const;
    [[nodiscard]] IntervalSet set_intersection(const IntervalSet& other) const;
    [[nodiscard]] IntervalSet set_difference(const IntervalSet& other) const;

    /// Shift every index by `delta`.
    [[nodiscard]] IntervalSet shifted(gidx delta) const;

    /// Visit every member index in ascending order.
    template <typename F>
    void for_each(F&& f) const {
        for (const Interval& iv : intervals_)
            for (gidx i = iv.lo; i < iv.hi; ++i) f(i);
    }

    /// Visit every interval in ascending order.
    template <typename F>
    void for_each_interval(F&& f) const {
        for (const Interval& iv : intervals_) f(iv);
    }

    /// Materialize as a sorted vector of points (testing / tiny sets only).
    [[nodiscard]] std::vector<gidx> to_points() const;

    /// Rank of `i` within the set (number of members strictly below `i`).
    /// Precondition: contains(i). Used to pack subset data densely.
    [[nodiscard]] gidx rank_of(gidx i) const;

    /// The `r`-th smallest member. Precondition: 0 <= r < volume().
    [[nodiscard]] gidx select(gidx r) const;

    friend bool operator==(const IntervalSet& a, const IntervalSet& b) noexcept {
        return a.intervals_ == b.intervals_;
    }
    friend bool operator!=(const IntervalSet& a, const IntervalSet& b) noexcept {
        return !(a == b);
    }

    friend std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

private:
    void normalize();

    std::vector<Interval> intervals_; // sorted, disjoint, non-adjacent, non-empty
};

} // namespace kdr
