#pragma once

/// \file options.hpp
/// CommonOptions: the one-stop option surface shared by examples and
/// benchmarks. Aggregates every RuntimeOptions/PlannerOptions knob plus the
/// cross-cutting run controls (fault injection, reporting, trace export, the
/// NIC eager threshold) and binds them all to the unified `-flag` / `KDR_*`
/// surface of support/options.hpp. Binaries do
///
///   const core::CommonOptions opts = core::CommonOptions::parse(args);
///   sim::MachineDesc machine = sim::MachineDesc::lassen(nodes);
///   opts.apply(machine);
///   rt::Runtime runtime(machine, opts.runtime);
///   core::Planner<double> planner(runtime, opts.planner);
///
/// and every knob Just Works, identically spelled everywhere.

#include <memory>
#include <string>

#include "core/planner.hpp"
#include "runtime/runtime.hpp"
#include "simcluster/fault_model.hpp"
#include "simcluster/machine.hpp"
#include "support/cli.hpp"
#include "support/options.hpp"

namespace kdr::core {

struct CommonOptions {
    rt::RuntimeOptions runtime;
    PlannerOptions planner;

    /// Per-task transient-failure probability (0 = no fault model); the
    /// straggler probability rides along at half this rate, mirroring the
    /// quickstart convention.
    double fault_rate = 0.0;
    std::uint64_t fault_seed = 42;
    bool report = false;          ///< print the structured solve report
    std::string report_json;      ///< write the solve report as JSON here
    std::string trace_file;       ///< write a Chrome trace here
    /// Write the event profiler's Chrome trace here (task executions,
    /// transfers, handshakes, analysis intervals, with dependence edges);
    /// non-empty also turns the profiler on (RuntimeOptions::profile). The
    /// matching KDR_PROFILE env var carries the same path.
    std::string profile_file;
    /// Override of MachineDesc::nic_eager_threshold in bytes; negative keeps
    /// the machine default.
    double eager_threshold = -1.0;
    /// s-step block size for the communication-avoiding solvers (ca_cg,
    /// ca_gmres): one global sync per s iterations. 1 = bitwise-classic.
    int ca_s = 4;
    /// Power-basis flavor for the CA solvers: "monomial" or "newton"
    /// (Leja-ordered Chebyshev shifts; better conditioned at large s).
    std::string ca_basis = "monomial";
    /// Allreduce completion semantics: "nonblocking" (futures — only
    /// consumers of the reduced scalar wait) or "blocking" (MPI_Allreduce:
    /// every subsequent task waits). Timing-only; values are bitwise
    /// identical either way.
    std::string allreduce = "nonblocking";

    /// Bind every knob to `opts`. The CommonOptions object must outlive the
    /// OptionSet's apply calls.
    void bind(support::OptionSet& opts) {
        opts.add_flag("validate", runtime.validate,
                      "check every kernel element access against its declared subset "
                      "and privilege, run the shadow race detector, lint over-declared "
                      "requirements");
        opts.add_flag("validate_warn", runtime.validate_warn_only,
                      "record validation violations as warnings instead of throwing "
                      "(implies -validate)");
        opts.add_flag("trace_fast_path", runtime.trace_fast_path,
                      "replay captured trace schedules, skipping dependence analysis "
                      "(0 = verify-only replay)");
        opts.add_flag("profiling", runtime.profiling,
                      "record per-task virtual-time profiles");
        opts.add_int("retries", runtime.max_task_retries,
                     "retry budget for transiently failed task attempts");
        opts.add_flag("trace_loops", planner.trace_solver_loops,
                      "wrap solver steady-state loops in runtime traces");
        opts.add_flag("fused", planner.fused_kernels,
                      "use the fused update+reduction kernels (axpy_dot/xpay_norm2)");
        opts.add_flag("per_op_colors", planner.per_operator_task_colors,
                      "give each operator's matmul tasks their own color range "
                      "(matrix-tile-owner mappers)");
        opts.add_flag("comm_plan", planner.comm_plan,
                      "build halo-exchange plans for repeatedly-multiplied fields");
        opts.add_flag("comm_coalesce", planner.comm_coalesce,
                      "coalesce each (src,dst) node pair's halo elements into one "
                      "message");
        opts.add_flag("comm_eager", planner.comm_eager,
                      "push exchange messages when the producing write commits, "
                      "overlapping transfers with independent kernels");
        opts.add_double("fault_rate", fault_rate,
                        "per-task transient-failure probability (stragglers at half "
                        "this rate)");
        opts.add_uint("fault_seed", fault_seed, "fault-injection RNG seed");
        opts.add_flag("report", report, "print the structured solve report");
        opts.add_string("report_json", report_json, "write the solve report as JSON");
        opts.add_string("trace", trace_file, "write a Chrome trace (chrome://tracing)");
        opts.add_string("profile", profile_file,
                        "write the event profiler's Chrome trace (Perfetto) and enable "
                        "critical-path attribution");
        opts.add_double("eager_threshold", eager_threshold,
                        "NIC eager/rendezvous protocol threshold in bytes (negative = "
                        "machine default)");
        opts.add_int("ca_s", ca_s,
                     "s-step block size for the communication-avoiding solvers "
                     "(1 = bitwise-classic)");
        opts.add_string("ca_basis", ca_basis,
                        "CA power-basis flavor: monomial | newton");
        opts.add_string("allreduce", allreduce,
                        "allreduce completion semantics: nonblocking | blocking");
    }

    /// Parse environment + CLI into a fresh CommonOptions.
    [[nodiscard]] static CommonOptions parse(const CliArgs& args) {
        CommonOptions common;
        support::OptionSet opts;
        common.bind(opts);
        opts.parse(args);
        if (common.runtime.validate_warn_only) common.runtime.validate = true;
        if (!common.profile_file.empty()) common.runtime.profile = true;
        KDR_REQUIRE(common.ca_s >= 1, "-ca_s must be >= 1, got ", common.ca_s);
        KDR_REQUIRE(common.ca_basis == "monomial" || common.ca_basis == "newton",
                    "-ca_basis must be monomial or newton, got '", common.ca_basis, "'");
        KDR_REQUIRE(common.allreduce == "nonblocking" || common.allreduce == "blocking",
                    "-allreduce must be nonblocking or blocking, got '",
                    common.allreduce, "'");
        common.planner.allreduce = common.allreduce == "blocking"
                                       ? sim::AllreduceMode::blocking
                                       : sim::AllreduceMode::nonblocking;
        return common;
    }

    /// Help text for the common surface (binaries append their own flags).
    [[nodiscard]] static std::string help() {
        CommonOptions common;
        support::OptionSet opts;
        common.bind(opts);
        return opts.help();
    }

    /// Fold machine-level overrides into a MachineDesc.
    void apply(sim::MachineDesc& machine) const {
        if (eager_threshold >= 0.0) machine.nic_eager_threshold = eager_threshold;
    }

    /// The fault model these options ask for; null when fault_rate is 0.
    [[nodiscard]] std::shared_ptr<sim::FaultModel> make_fault_model() const {
        if (fault_rate <= 0.0) return nullptr;
        sim::FaultSpec fs;
        fs.seed = fault_seed;
        fs.task_fail_prob = fault_rate;
        fs.slowdown_prob = fault_rate / 2.0;
        return std::make_shared<sim::FaultModel>(fs);
    }

    /// True when any reporting/trace output was requested (profiling needed).
    [[nodiscard]] bool wants_profiling() const {
        return report || !report_json.empty() || !trace_file.empty();
    }
};

} // namespace kdr::core
