#pragma once

/// \file solvers_preconditioned.hpp
/// Preconditioned variants beyond PCG: flexible GMRES (FGMRES, Saad 1993)
/// with right preconditioning — the preconditioner may change between
/// iterations (e.g. the matrix-free Neumann psolve), which plain
/// right-preconditioned GMRES does not tolerate — and preconditioned
/// BiCGStab (van der Vorst's recommended form). Both consume the
/// preconditioner exclusively through `planner.psolve` (paper Fig 6), so
/// matrix preconditioners (Jacobi, DIA, any format) and matrix-free
/// callbacks work interchangeably.

#include <vector>

#include "core/solvers.hpp"

namespace kdr::core {

/// Flexible right-preconditioned restarted GMRES: x += Z_k y where
/// Z_j = P(V_j). Stores both the Krylov basis V and the preconditioned
/// basis Z (the price of flexibility).
template <typename T = double>
class FGmresSolver final : public Solver<T> {
public:
    explicit FGmresSolver(Planner<T>& planner, int restart = 10)
        : planner_(planner), m_(restart) {
        KDR_REQUIRE(planner_.is_square(), "FGMRES requires a square system");
        this->arm_guards(planner_.runtime().functional());
        KDR_REQUIRE(planner_.has_preconditioner(), "FGMRES requires a preconditioner");
        KDR_REQUIRE(m_ >= 1, "FGMRES restart length must be >= 1");
        for (int i = 0; i <= m_; ++i) v_.push_back(planner_.allocate_workspace_vector());
        for (int i = 0; i < m_; ++i) z_.push_back(planner_.allocate_workspace_vector());
        w_ = planner_.allocate_workspace_vector();
        h_.assign(static_cast<std::size_t>(m_ + 1) * static_cast<std::size_t>(m_), {});
        cs_.assign(static_cast<std::size_t>(m_), {});
        sn_.assign(static_cast<std::size_t>(m_), {});
        g_.assign(static_cast<std::size_t>(m_ + 1), {});
        begin_cycle();
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        const std::size_t j = static_cast<std::size_t>(j_);
        planner_.psolve(z_[j], v_[j]); // z_j = P v_j (flexible: P may vary)
        planner_.matmul(w_, z_[j]);
        for (std::size_t i = 0; i <= j; ++i) {
            h(i, j) = planner_.dot(w_, v_[i]);
            planner_.axpy(w_, -h(i, j), v_[i]);
        }
        h(j + 1, j) = sqrt(planner_.dot(w_, w_));
        if (this->nonfinite(h(j + 1, j).value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        // Happy breakdown: skip the 0/0 normalize and let the rotations
        // drive the residual to zero (see GmresSolver::step).
        const bool lucky = this->vanished(h(j + 1, j).value, res_norm_.value);
        if (lucky) {
            h(j + 1, j) = make_scalar(0.0);
        } else {
            planner_.copy(v_[j + 1], w_);
            planner_.scal(v_[j + 1], make_scalar(1.0) / h(j + 1, j));
        }
        for (std::size_t i = 0; i < j; ++i) {
            const Scalar tmp = cs_[i] * h(i, j) + sn_[i] * h(i + 1, j);
            h(i + 1, j) = -sn_[i] * h(i, j) + cs_[i] * h(i + 1, j);
            h(i, j) = tmp;
        }
        const Scalar denom = sqrt(h(j, j) * h(j, j) + h(j + 1, j) * h(j + 1, j));
        if (this->vanished(denom.value, 1.0) || this->nonfinite(denom.value)) {
            this->fail(std::isfinite(denom.value) ? SolveStatus::breakdown_pivot_zero
                                                  : SolveStatus::breakdown_nonfinite);
            return;
        }
        cs_[j] = h(j, j) / denom;
        sn_[j] = h(j + 1, j) / denom;
        h(j, j) = cs_[j] * h(j, j) + sn_[j] * h(j + 1, j);
        h(j + 1, j) = make_scalar(0.0);
        g_[j + 1] = -sn_[j] * g_[j];
        g_[j] = cs_[j] * g_[j];
        res_norm_ = Scalar{std::abs(g_[j + 1].value), g_[j + 1].ready_time};
        ++j_;
        if (j_ == m_) {
            update_solution(m_);
            begin_cycle();
        }
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return res_norm_; }
    [[nodiscard]] const char* name() const override { return "fgmres"; }

    /// Apply the current cycle's partial correction (stop mid-cycle). A
    /// broken-down cycle is abandoned: its partial correction is
    /// contaminated, so x stays at the last healthy state.
    void finalize() override {
        if (j_ > 0 && this->status() == SolveStatus::running) {
            update_solution(j_);
            begin_cycle();
        }
    }

private:
    Scalar& h(std::size_t i, std::size_t j) {
        return h_[i * static_cast<std::size_t>(m_) + j];
    }

    void begin_cycle() {
        planner_.matmul(w_, Planner<T>::SOL);
        planner_.copy(v_[0], Planner<T>::RHS);
        planner_.axpy(v_[0], make_scalar(-1.0), w_);
        const Scalar beta = sqrt(planner_.dot(v_[0], v_[0]));
        if (this->nonfinite(beta.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
        } else if (!this->vanished(beta.value, 1.0)) {
            planner_.scal(v_[0], make_scalar(1.0) / beta);
        } // else: zero residual — the driver stops before another step
        for (auto& gi : g_) gi = make_scalar(0.0);
        g_[0] = beta;
        res_norm_ = beta;
        j_ = 0;
    }

    /// x += Z_k y — the flexible update uses the preconditioned basis.
    void update_solution(int k) {
        std::vector<Scalar> y(static_cast<std::size_t>(k));
        for (int i = k - 1; i >= 0; --i) {
            Scalar sum = g_[static_cast<std::size_t>(i)];
            for (int l = i + 1; l < k; ++l) {
                sum = sum - h(static_cast<std::size_t>(i), static_cast<std::size_t>(l)) *
                                y[static_cast<std::size_t>(l)];
            }
            const Scalar hii = h(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
            if (this->vanished(hii.value, 1.0) || this->nonfinite(hii.value)) {
                this->fail(std::isfinite(hii.value) ? SolveStatus::breakdown_pivot_zero
                                                    : SolveStatus::breakdown_nonfinite);
                return;
            }
            y[static_cast<std::size_t>(i)] = sum / hii;
        }
        for (int i = 0; i < k; ++i) {
            planner_.axpy(Planner<T>::SOL, y[static_cast<std::size_t>(i)],
                          z_[static_cast<std::size_t>(i)]);
        }
    }

    Planner<T>& planner_;
    int m_;
    int j_ = 0;
    std::vector<VecId> v_, z_;
    VecId w_{};
    std::vector<Scalar> h_, cs_, sn_, g_;
    Scalar res_norm_;
};

/// Preconditioned BiCGStab (van der Vorst 1992, preconditioned form):
/// applies P to the search and stabilization directions.
template <typename T = double>
class PBiCgStabSolver final : public Solver<T> {
public:
    explicit PBiCgStabSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "PBiCGStab requires a square system");
        this->arm_guards(planner_.runtime().functional());
        KDR_REQUIRE(planner_.has_preconditioner(), "PBiCGStab requires a preconditioner");
        r_ = planner_.allocate_workspace_vector();
        rhat_ = planner_.allocate_workspace_vector();
        p_ = planner_.allocate_workspace_vector();
        phat_ = planner_.allocate_workspace_vector();
        v_ = planner_.allocate_workspace_vector();
        s_ = planner_.allocate_workspace_vector();
        shat_ = planner_.allocate_workspace_vector();
        t_ = planner_.allocate_workspace_vector();
        planner_.matmul(v_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), v_);
        planner_.copy(rhat_, r_);
        planner_.zero(p_);
        planner_.zero(v_);
        rho_ = alpha_ = omega_ = make_scalar(1.0);
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        const Scalar new_rho = planner_.dot(rhat_, r_);
        if (this->nonfinite(new_rho.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(new_rho.value, 1.0)) {
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        const Scalar beta = (new_rho / rho_) * (alpha_ / omega_);
        planner_.axpy(p_, -omega_, v_);
        planner_.xpay(p_, beta, r_);
        planner_.psolve(phat_, p_);
        planner_.matmul(v_, phat_);
        const Scalar rv = planner_.dot(rhat_, v_);
        if (this->vanished(rv.value, new_rho.value) || this->nonfinite(rv.value)) {
            this->fail(std::isfinite(rv.value) ? SolveStatus::breakdown_pivot_zero
                                               : SolveStatus::breakdown_nonfinite);
            return;
        }
        alpha_ = new_rho / rv;
        planner_.copy(s_, r_);
        planner_.axpy(s_, -alpha_, v_);
        planner_.psolve(shat_, s_);
        planner_.matmul(t_, shat_);
        const Scalar ts = planner_.dot(t_, s_);
        const Scalar tt = planner_.dot(t_, t_);
        if (this->nonfinite(tt.value) || this->nonfinite(ts.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(tt.value, 1.0)) {
            // As in BiCGStab: keep the alpha half-step, expose ‖s‖² as the
            // measure; a vanished s is convergence, not breakdown.
            planner_.axpy(Planner<T>::SOL, alpha_, phat_);
            planner_.copy(r_, s_);
            res_ = planner_.dot(r_, r_);
            rho_ = new_rho;
            if (!this->vanished(res_.value, 1.0)) {
                this->fail(SolveStatus::breakdown_omega_zero);
            }
            return;
        }
        omega_ = ts / tt;
        if (this->vanished(omega_.value, 1.0)) {
            planner_.axpy(Planner<T>::SOL, alpha_, phat_);
            planner_.copy(r_, s_);
            res_ = planner_.dot(r_, r_);
            rho_ = new_rho;
            this->fail(SolveStatus::breakdown_omega_zero);
            return;
        }
        planner_.axpy(Planner<T>::SOL, alpha_, phat_);
        planner_.axpy(Planner<T>::SOL, omega_, shat_);
        planner_.copy(r_, s_);
        planner_.axpy(r_, -omega_, t_);
        rho_ = new_rho;
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "pbicgstab"; }

private:
    Planner<T>& planner_;
    VecId r_{}, rhat_{}, p_{}, phat_{}, v_{}, s_{}, shat_{}, t_{};
    Scalar rho_, alpha_, omega_;
    Scalar res_;
};

} // namespace kdr::core
