#pragma once

/// \file solvers_ca.hpp
/// Communication-avoiding s-step Krylov methods (CA-CG, CA-GMRES). The
/// classic methods pay one global reduction per inner product — two per CG
/// iteration, O(j) per GMRES column — and past a node count the allreduce
/// tree latency, not bandwidth, bounds time per iteration. The s-step
/// reformulation [Chronopoulos-Gear; Hoemmen; Carson] builds an s-deep power
/// basis with matmuls only, assembles every needed inner product in ONE
/// fused Gram reduction (planner::gram_batch), runs s iterations as host
/// recurrences on basis coordinates, and commits the block with ONE fused
/// recombination kernel (planner::block_update): two global syncs per s
/// iterations instead of 2s.
///
/// Degenerate limit: at s = 1 both solvers execute the *literal* classic
/// update sequence — same kernels, same operand order, same guards — so
/// their histories are bitwise identical to CgSolver / GmresSolver. The
/// golden suite pins this.
///
/// Basis conditioning: the monomial basis [p, Ap, …, Aˢp] has condition
/// number growing like κ(A)^s; large s surfaces as a negative coordinate
/// ρ or a failed Cholesky pivot, classified as a breakdown (recovery
/// restarts from the last checkpoint, which lands on an s-block boundary by
/// construction). The Newton basis [(A−θ₁)p, (A−θ₂)(A−θ₁)p, …] with
/// Leja-ordered Chebyshev shifts on [0, λ_max] pushes the usable s higher at
/// the cost of one shift axpy per basis matmul.

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <utility>
#include <vector>

#include "core/planner.hpp"
#include "core/scalar.hpp"
#include "core/solve_status.hpp"
#include "core/solvers.hpp"
#include "core/solvers_extra.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"

namespace kdr::core {

/// Power-basis flavor for the s-step solvers.
enum class CaBasis {
    monomial, ///< z_k = A z_{k-1}: cheapest, conditioning grows like κ^s
    newton,   ///< z_k = (A - θ_k) z_{k-1}, Leja-ordered Chebyshev shifts
};

namespace detail {

/// Chebyshev points on [0, lmax], Leja-ordered (greedily maximizing the
/// product of distances to already-chosen points, largest first). The
/// ordering — not the point set — is what keeps intermediate Newton basis
/// vectors from under/overflowing at moderate s.
[[nodiscard]] inline std::vector<double> leja_chebyshev_shifts(double lmax, int s) {
    std::vector<double> pts(static_cast<std::size_t>(s));
    for (int i = 0; i < s; ++i) {
        const double angle = std::numbers::pi_v<double> *
                             (static_cast<double>(i) + 0.5) / static_cast<double>(s);
        pts[static_cast<std::size_t>(i)] = 0.5 * lmax * (1.0 - std::cos(angle));
    }
    std::vector<double> out;
    std::vector<bool> used(pts.size(), false);
    for (std::size_t n = 0; n < pts.size(); ++n) {
        std::size_t best = 0;
        double best_score = -1.0;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (used[i]) continue;
            double score = 1.0;
            if (out.empty()) {
                score = std::abs(pts[i]);
            } else {
                for (const double c : out) score *= std::abs(pts[i] - c);
            }
            if (score > best_score) {
                best_score = score;
                best = i;
            }
        }
        used[best] = true;
        out.push_back(pts[best]);
    }
    return out;
}

} // namespace detail

// ================================================================== CA-CG

/// s-step conjugate gradients. One step() advances a whole s-block:
///   basis    — 2s-1 matmuls extend [p, Ap, …, Aˢp] and [r, Ar, …, Aˢ⁻¹r]
///   gram     — every inner product the block needs, one fused reduction
///   recur    — s CG iterations as host recurrences on basis coordinates
///   commit   — x, r, p rewritten by one fused block_update kernel
/// Two global syncs per block (the Gram tree + nothing else — ρ_s is a
/// coordinate quantity) versus 2s for classic CG.
template <typename T = double>
class CaCgSolver final : public Solver<T> {
public:
    explicit CaCgSolver(Planner<T>& planner, int s = 4,
                        CaBasis basis = CaBasis::monomial)
        : planner_(planner), s_(s), newton_(basis == CaBasis::newton && s >= 2) {
        KDR_REQUIRE(planner_.is_square(), "CA-CG requires a square system");
        KDR_REQUIRE(s_ >= 1, "CA-CG block size must be >= 1");
        this->arm_guards(planner_.runtime().functional());
        const obs::Span span(planner_.runtime().spans(), "setup");
        p_ = planner_.allocate_workspace_vector();
        if (s_ == 1) q_ = planner_.allocate_workspace_vector();
        r_ = planner_.allocate_workspace_vector();
        if (s_ >= 2) {
            // Basis layout: column 0..s = z_0..z_s (z_0 ≡ p), column
            // s+1..2s = w_0..w_{s-1} (w_0 ≡ r).
            basis_.push_back(p_);
            for (int k = 1; k <= s_; ++k) {
                basis_.push_back(planner_.allocate_workspace_vector());
            }
            basis_.push_back(r_);
            for (int k = 1; k <= s_ - 1; ++k) {
                basis_.push_back(planner_.allocate_workspace_vector());
            }
            const int nb = 2 * s_ + 1;
            for (int a = 0; a < nb; ++a) {
                for (int b = a; b < nb; ++b) pairs_.push_back({a, b});
            }
            theta_.assign(static_cast<std::size_t>(s_) + 1, 0.0);
            if (newton_ && planner_.runtime().functional()) {
                const double lmax = estimate_lambda_max(planner_);
                const std::vector<double> shifts =
                    detail::leja_chebyshev_shifts(lmax, s_);
                for (int k = 1; k <= s_; ++k) {
                    theta_[static_cast<std::size_t>(k)] =
                        shifts[static_cast<std::size_t>(k - 1)];
                }
            }
        }
        // r = b - A x0; p = r. At s = 1 this is CgSolver's setup verbatim;
        // at s >= 2 the first basis slot doubles as the setup scratch.
        const VecId scratch = s_ == 1 ? q_ : basis_[1];
        planner_.matmul(scratch, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), scratch);
        planner_.copy(p_, r_);
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
        trace_id_ = detail::solver_trace_id(
            planner_, "ca_cg/" + std::to_string(s_) +
                          (newton_ ? "/newton" : "/monomial"));
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        if (this->vanished(res_.value, 1.0)) {
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        if (s_ == 1) {
            step_classic();
        } else {
            step_block();
        }
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "ca_cg"; }
    [[nodiscard]] int iterations_per_step() const noexcept override { return s_; }
    [[nodiscard]] int block_size() const noexcept { return s_; }

private:
    /// The s = 1 path IS classic CG — kernel for kernel, guard for guard —
    /// which is what makes CaCgSolver(planner, 1) bitwise-identical to
    /// CgSolver on the golden histories.
    void step_classic() {
        const detail::TraceScope trace(planner_.runtime(), trace_id_);
        planner_.matmul(q_, p_);
        const Scalar p_norm = planner_.dot(p_, q_);
        if (this->nonfinite(p_norm.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(p_norm.value, res_.value)) {
            this->fail(SolveStatus::breakdown_pivot_zero);
            return;
        }
        if (p_norm.value < 0.0) {
            this->fail(SolveStatus::breakdown_indefinite);
            return;
        }
        const Scalar alpha = res_ / p_norm;
        planner_.axpy(Planner<T>::SOL, alpha, p_);
        const Scalar new_res = planner_.axpy_dot(r_, -alpha, q_, r_);
        if (this->nonfinite(new_res.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        planner_.xpay(p_, new_res / res_, r_);
        res_ = new_res;
    }

    /// Coordinate index of z_k / w_k in the basis.
    [[nodiscard]] std::size_t zi(int k) const { return static_cast<std::size_t>(k); }
    [[nodiscard]] std::size_t wi(int k) const {
        return static_cast<std::size_t>(s_ + 1 + k);
    }

    void step_block() {
        const detail::TraceScope trace(planner_.runtime(), trace_id_);
        const std::size_t nb = static_cast<std::size_t>(2 * s_ + 1);

        // --- basis: z_k = (A - θ_k) z_{k-1}, w_k = (A - θ_k) w_{k-1}.
        // Shift axpys are launched iff the Newton flag is set — a
        // construction-time structural decision, never a value test — so the
        // block's launch stream is identical across blocks and traces replay.
        for (int k = 1; k <= s_; ++k) {
            planner_.matmul(basis_[zi(k)], basis_[zi(k - 1)]);
            if (newton_) {
                planner_.axpy(basis_[zi(k)],
                              make_scalar(-theta_[static_cast<std::size_t>(k)]),
                              basis_[zi(k - 1)]);
            }
        }
        for (int k = 1; k <= s_ - 1; ++k) {
            planner_.matmul(basis_[wi(k)], basis_[wi(k - 1)]);
            if (newton_) {
                planner_.axpy(basis_[wi(k)],
                              make_scalar(-theta_[static_cast<std::size_t>(k)]),
                              basis_[wi(k - 1)]);
            }
        }

        // --- gram: one fused reduction for every pairwise inner product.
        const std::vector<Scalar> gv = planner_.gram_batch(basis_, pairs_);
        const double gdone = gv.empty() ? 0.0 : gv[0].ready_time;
        std::vector<double> G(nb * nb);
        for (std::size_t p = 0; p < pairs_.size(); ++p) {
            const auto a = static_cast<std::size_t>(pairs_[p].first);
            const auto b = static_cast<std::size_t>(pairs_[p].second);
            G[a * nb + b] = gv[p].value;
            G[b * nb + a] = gv[p].value;
        }
        const auto gmul = [&](const std::vector<double>& x) {
            std::vector<double> y(nb, 0.0);
            for (std::size_t a = 0; a < nb; ++a) {
                double sum = 0.0;
                for (std::size_t b = 0; b < nb; ++b) sum += G[a * nb + b] * x[b];
                y[a] = sum;
            }
            return y;
        };
        const auto dotc = [&](const std::vector<double>& a,
                              const std::vector<double>& b) {
            double sum = 0.0;
            for (std::size_t i = 0; i < nb; ++i) sum += a[i] * b[i];
            return sum;
        };
        // Coordinates of A·v for v with z-degree < s and w-degree < s-1:
        // A z_k = z_{k+1} + θ_{k+1} z_k (and likewise for w).
        const auto shift_apply = [&](const std::vector<double>& x) {
            std::vector<double> y(nb, 0.0);
            for (int k = 0; k < s_; ++k) {
                y[zi(k + 1)] += x[zi(k)];
                if (newton_) y[zi(k)] += theta_[static_cast<std::size_t>(k + 1)] * x[zi(k)];
            }
            for (int k = 0; k < s_ - 1; ++k) {
                y[wi(k + 1)] += x[wi(k)];
                if (newton_) y[wi(k)] += theta_[static_cast<std::size_t>(k + 1)] * x[wi(k)];
            }
            return y;
        };

        // --- recurrences: s CG iterations on coordinates (no launches).
        std::vector<double> c(nb, 0.0), d(nb, 0.0), e(nb, 0.0);
        c[wi(0)] = 1.0;
        d[zi(0)] = 1.0;
        double rho = G[wi(0) * nb + wi(0)]; // ‖r‖², fresh from the Gram
        SolveStatus pending = SolveStatus::running;
        for (int j = 0; j < s_; ++j) {
            const std::vector<double> sd = shift_apply(d);
            const double mu = dotc(d, gmul(sd));
            if (this->nonfinite(mu)) {
                pending = SolveStatus::breakdown_nonfinite;
                break;
            }
            if (this->vanished(mu, rho)) {
                pending = SolveStatus::breakdown_pivot_zero;
                break;
            }
            if (mu < 0.0) {
                // <p_j, A p_j> < 0 in coordinates: either the operator is
                // not SPD or the basis has lost independence (the s-step
                // conditioning wall). Both end the run.
                pending = SolveStatus::breakdown_indefinite;
                break;
            }
            const double alpha = rho / mu;
            for (std::size_t i = 0; i < nb; ++i) {
                e[i] += alpha * d[i];
                c[i] -= alpha * sd[i];
            }
            const double rho_new = dotc(c, gmul(c));
            if (this->nonfinite(rho_new)) {
                pending = SolveStatus::breakdown_nonfinite;
                break;
            }
            if (rho_new < 0.0) {
                // ‖r‖² < 0 is impossible for an honest residual: the Gram
                // coordinates have gone inconsistent (basis conditioning).
                pending = SolveStatus::breakdown_indefinite;
                break;
            }
            if (this->vanished(rho_new, 1.0)) {
                // Lucky: residual vanished mid-block. Commit what we have;
                // the driver sees the (near-)zero measure and stops.
                rho = rho_new;
                break;
            }
            const double beta = rho_new / rho;
            for (std::size_t i = 0; i < nb; ++i) d[i] = c[i] + beta * d[i];
            rho = rho_new;
        }

        // --- commit: x += B·e, r = B·c, p = B·d, one fused kernel. The
        // coefficient values vary per block but the launch shape does not.
        const auto coeff_row = [&](const std::vector<double>& x) {
            std::vector<Scalar> row;
            row.reserve(nb);
            for (const double v : x) row.push_back({v, gdone});
            return row;
        };
        planner_.block_update(basis_, {Planner<T>::SOL, p_, r_},
                              {coeff_row(e), coeff_row(d), coeff_row(c)},
                              {true, false, false});
        res_ = Scalar{rho, gdone};
        if (pending != SolveStatus::running) this->fail(pending);
    }

    Planner<T>& planner_;
    int s_;
    bool newton_;
    VecId p_{}, q_{}, r_{};
    std::vector<VecId> basis_;                  // s >= 2 only
    std::vector<std::pair<int, int>> pairs_;    // Gram upper triangle
    std::vector<double> theta_;                 // Newton shifts, 1-based
    Scalar res_; ///< squared residual, as in CgSolver
    std::uint64_t trace_id_ = 0;
};

// =============================================================== CA-GMRES

/// s-step restarted GMRES(m). One step() advances min(s, m - j) Arnoldi
/// columns: s matmuls build the candidate block U = [A v_j, A²v_j, …], one
/// fused Gram reduction delivers C = QᵀU and UᵀU, a host Cholesky of
/// UᵀU − CᵀC factors the block (block classical Gram-Schmidt), and the new
/// orthonormal columns are materialized by axpys. Hessenberg entries are
/// reconstructed on the host from C and R — no further reductions — so the
/// block costs ONE global sync where classic MGS pays j+2 per column.
///
/// At s = 1 the block path is bypassed entirely: step() runs the literal
/// classic MGS column (bitwise-identical histories to GmresSolver).
template <typename T = double>
class CaGmresSolver final : public Solver<T> {
public:
    explicit CaGmresSolver(Planner<T>& planner, int restart = 10, int s = 4,
                           CaBasis basis = CaBasis::monomial)
        : planner_(planner), m_(restart), s_(std::min(s, restart)),
          newton_(basis == CaBasis::newton && std::min(s, restart) >= 2) {
        KDR_REQUIRE(planner_.is_square(), "CA-GMRES requires a square system");
        KDR_REQUIRE(m_ >= 1, "CA-GMRES restart length must be >= 1");
        KDR_REQUIRE(s >= 1, "CA-GMRES block size must be >= 1");
        this->arm_guards(planner_.runtime().functional());
        const obs::Span span(planner_.runtime().spans(), "setup");
        for (int i = 0; i <= m_; ++i) v_.push_back(planner_.allocate_workspace_vector());
        w_ = planner_.allocate_workspace_vector();
        if (s_ >= 2) {
            for (int k = 0; k < s_; ++k) {
                u_.push_back(planner_.allocate_workspace_vector());
            }
            theta_.assign(static_cast<std::size_t>(s_) + 1, 0.0);
            if (newton_ && planner_.runtime().functional()) {
                const double lmax = estimate_lambda_max(planner_);
                const std::vector<double> shifts =
                    detail::leja_chebyshev_shifts(lmax, s_);
                for (int k = 1; k <= s_; ++k) {
                    theta_[static_cast<std::size_t>(k)] =
                        shifts[static_cast<std::size_t>(k - 1)];
                }
            }
        }
        h_.assign(static_cast<std::size_t>(m_ + 1) * static_cast<std::size_t>(m_), {});
        hess_.assign(h_.size(), 0.0);
        cs_.assign(static_cast<std::size_t>(m_), {});
        sn_.assign(static_cast<std::size_t>(m_), {});
        g_.assign(static_cast<std::size_t>(m_ + 1), {});
        begin_cycle();
        trace_id_ = detail::solver_trace_id(
            planner_, "ca_gmres/" + std::to_string(m_) + "/" + std::to_string(s_) +
                          (newton_ ? "/newton" : "/monomial"));
    }

    ~CaGmresSolver() override {
        if (cycle_trace_open_) planner_.runtime().cancel_trace();
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        if (trace_id_ != 0 && j_ == 0 && !cycle_trace_open_) {
            planner_.runtime().begin_trace(trace_id_);
            cycle_trace_open_ = true;
        }
        if (s_ == 1) {
            step_classic_column();
        } else {
            step_block();
        }
        if (this->status() != SolveStatus::running) return;
        if (j_ == m_) {
            const obs::Span restart(planner_.runtime().spans(), "restart");
            update_solution(m_);
            begin_cycle();
            if (cycle_trace_open_) {
                planner_.runtime().end_trace();
                cycle_trace_open_ = false;
            }
        }
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return res_norm_; }
    [[nodiscard]] const char* name() const override { return "ca_gmres"; }
    [[nodiscard]] int iterations_per_step() const noexcept override { return s_; }
    [[nodiscard]] int restart_length() const noexcept { return m_; }
    [[nodiscard]] int block_size() const noexcept { return s_; }

    void finalize() override {
        if (cycle_trace_open_) {
            planner_.runtime().cancel_trace();
            cycle_trace_open_ = false;
        }
        if (j_ > 0 && this->status() == SolveStatus::running) {
            const obs::Span restart(planner_.runtime().spans(), "restart");
            update_solution(j_);
            begin_cycle();
        }
    }

private:
    Scalar& h(std::size_t i, std::size_t j) {
        return h_[i * static_cast<std::size_t>(m_) + j];
    }

    /// Raw (pre-rotation) Hessenberg values. apply_givens overwrites h_ in
    /// place with the rotated triangle, but the H-reconstruction recursion
    /// needs the original A v_i expansions — this shadow keeps them.
    double& hess(std::size_t i, std::size_t j) {
        return hess_[i * static_cast<std::size_t>(m_) + j];
    }

    void abandon_cycle_trace() {
        if (cycle_trace_open_) {
            planner_.runtime().cancel_trace();
            cycle_trace_open_ = false;
        }
    }

    /// Literal classic MGS Arnoldi column (GmresSolver::step body) — the
    /// bitwise s = 1 path.
    void step_classic_column() {
        const std::size_t j = static_cast<std::size_t>(j_);
        planner_.matmul(w_, v_[j]);
        for (std::size_t i = 0; i <= j; ++i) {
            h(i, j) = planner_.dot(w_, v_[i]);
            planner_.axpy(w_, -h(i, j), v_[i]);
        }
        h(j + 1, j) = sqrt(planner_.dot(w_, w_));
        if (this->nonfinite(h(j + 1, j).value)) {
            abandon_cycle_trace();
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        const bool lucky = this->vanished(h(j + 1, j).value, res_norm_.value);
        if (lucky) {
            h(j + 1, j) = make_scalar(0.0);
        } else {
            planner_.copy(v_[j + 1], w_);
            planner_.scal(v_[j + 1], make_scalar(1.0) / h(j + 1, j));
        }
        if (!apply_givens(j)) return;
        ++j_;
    }

    /// One s-block of Arnoldi columns via block classical Gram-Schmidt with
    /// Gram-matrix orthogonalization.
    void step_block() {
        const int j = j_;
        const int t = std::min(s_, m_ - j);
        const auto ju = static_cast<std::size_t>(j);

        // --- candidates: u_0 = (A - θ_1) v_j, u_k = (A - θ_{k+1}) u_{k-1}.
        planner_.matmul(u_[0], v_[ju]);
        if (newton_) planner_.axpy(u_[0], make_scalar(-theta_[1]), v_[ju]);
        for (int k = 1; k < t; ++k) {
            const auto ku = static_cast<std::size_t>(k);
            planner_.matmul(u_[ku], u_[ku - 1]);
            if (newton_) {
                planner_.axpy(u_[ku], make_scalar(-theta_[ku + 1]), u_[ku - 1]);
            }
        }

        // --- one fused Gram reduction: C = QᵀU and the UᵀU triangle.
        std::vector<VecId> vecs;
        for (int i = 0; i <= j; ++i) vecs.push_back(v_[static_cast<std::size_t>(i)]);
        for (int k = 0; k < t; ++k) vecs.push_back(u_[static_cast<std::size_t>(k)]);
        std::vector<std::pair<int, int>> pairs;
        for (int i = 0; i <= j; ++i) {
            for (int k = 0; k < t; ++k) pairs.push_back({i, j + 1 + k});
        }
        for (int k = 0; k < t; ++k) {
            for (int l = k; l < t; ++l) pairs.push_back({j + 1 + k, j + 1 + l});
        }
        const std::vector<Scalar> gv = planner_.gram_batch(vecs, pairs);
        const double gdone = gv.empty() ? 0.0 : gv[0].ready_time;
        const auto tu = static_cast<std::size_t>(t);
        std::vector<double> C((ju + 1) * tu);      // C(i,k) = v_i · u_k
        std::vector<double> S(tu * tu);            // S(k,l) = u_k · u_l
        {
            std::size_t p = 0;
            for (std::size_t i = 0; i <= ju; ++i) {
                for (std::size_t k = 0; k < tu; ++k) C[i * tu + k] = gv[p++].value;
            }
            for (std::size_t k = 0; k < tu; ++k) {
                for (std::size_t l = k; l < tu; ++l) {
                    S[k * tu + l] = gv[p].value;
                    S[l * tu + k] = gv[p].value;
                    ++p;
                }
            }
        }

        // --- host Cholesky of M = UᵀU − CᵀC = RᵀR (upper R). A failed
        // pivot is the block orthogonalization's breakdown signal: the
        // candidates are (numerically) dependent — either the happy case
        // (solution reached) or the s-step conditioning wall. Both are
        // classified and left to the driver / recovery.
        std::vector<double> R(tu * tu, 0.0);
        for (std::size_t k = 0; k < tu; ++k) {
            for (std::size_t l = k; l < tu; ++l) {
                double m = S[k * tu + l];
                for (std::size_t i = 0; i <= ju; ++i) {
                    m -= C[i * tu + k] * C[i * tu + l];
                }
                for (std::size_t i = 0; i < k; ++i) {
                    m -= R[i * tu + k] * R[i * tu + l];
                }
                if (l == k) {
                    if (this->nonfinite(m)) {
                        abandon_cycle_trace();
                        this->fail(SolveStatus::breakdown_nonfinite);
                        return;
                    }
                    if (m <= 0.0 && planner_.runtime().functional()) {
                        abandon_cycle_trace();
                        this->fail(SolveStatus::breakdown_pivot_zero);
                        return;
                    }
                    R[k * tu + k] = std::sqrt(m);
                } else {
                    R[k * tu + l] = m / R[k * tu + k];
                }
            }
        }

        // --- materialize the new orthonormal columns into v_[j+1 .. j+t]:
        // W = U − Q C, then columns of W R⁻¹ in place.
        for (std::size_t k = 0; k < tu; ++k) {
            planner_.copy(v_[ju + 1 + k], u_[k]);
            for (std::size_t i = 0; i <= ju; ++i) {
                planner_.axpy(v_[ju + 1 + k], Scalar{-C[i * tu + k], gdone}, v_[i]);
            }
        }
        for (std::size_t k = 0; k < tu; ++k) {
            for (std::size_t l = 0; l < k; ++l) {
                planner_.axpy(v_[ju + 1 + k], Scalar{-R[l * tu + k], gdone},
                              v_[ju + 1 + l]);
            }
            planner_.scal(v_[ju + 1 + k], Scalar{1.0 / R[k * tu + k], gdone});
        }

        // --- Hessenberg reconstruction (host only): column j directly from
        // (C, R); later columns from the recursion
        //   A v_{j+k} = [u_k + θ_{k+1} u_{k-1}
        //                − Σ_i C(i,k-1) A v_i − Σ_{l<k-1} R(l,k-1) A v_{j+1+l}]
        //               / R(k-1,k-1)
        // expanded in v-coordinates, where each u_m = Q C(:,m) + Q_new R(:,m).
        const std::size_t dim = ju + tu + 2; // coords over v_0 .. v_{j+t+1}
        std::vector<std::vector<double>> av(tu, std::vector<double>(dim, 0.0));
        const auto u_coords = [&](std::size_t mcol) {
            std::vector<double> x(dim, 0.0);
            for (std::size_t i = 0; i <= ju; ++i) x[i] = C[i * tu + mcol];
            for (std::size_t l = 0; l <= mcol; ++l) {
                x[ju + 1 + l] = R[l * tu + mcol];
            }
            return x;
        };
        // A v_j = u_0 + θ_1 v_j. Each column's raw coordinates land in
        // hess_ immediately: the k+1 recursion reads hess(·, i) for every
        // i <= j, including column j produced by this very block.
        av[0] = u_coords(0);
        if (newton_) av[0][ju] += theta_[1];
        for (std::size_t i = 0; i <= ju + 1; ++i) hess(i, ju) = av[0][i];
        for (std::size_t k = 1; k < tu; ++k) {
            std::vector<double> x = u_coords(k);
            if (newton_) {
                const std::vector<double> prev = u_coords(k - 1);
                for (std::size_t i = 0; i < dim; ++i) {
                    x[i] += theta_[k + 1] * prev[i];
                }
            }
            // Prior columns' A v images in v-coordinates.
            for (std::size_t i = 0; i <= ju; ++i) {
                const double ci = C[i * tu + (k - 1)];
                // A v_i = Σ_{i' <= i+1} hess(i', i) v_{i'} from the raw H.
                for (std::size_t ip = 0; ip <= i + 1; ++ip) {
                    x[ip] -= ci * hess(ip, i);
                }
            }
            for (std::size_t l = 0; l + 1 < k; ++l) {
                const double rl = R[l * tu + (k - 1)];
                for (std::size_t i = 0; i < dim; ++i) x[i] -= rl * av[l + 1][i];
            }
            const double rkk = R[(k - 1) * tu + (k - 1)];
            for (std::size_t i = 0; i < dim; ++i) x[i] /= rkk;
            av[k] = x;
            for (std::size_t i = 0; i <= ju + k + 1; ++i) hess(i, ju + k) = x[i];
        }
        for (std::size_t k = 0; k < tu; ++k) {
            const std::size_t col = ju + k;
            for (std::size_t i = 0; i <= col + 1; ++i) {
                h(i, col) = Scalar{av[k][i], gdone};
            }
            if (!apply_givens(col)) return;
            ++j_;
        }
    }

    /// Rotate the filled H column `j` and update the residual estimate —
    /// byte-for-byte the classic Givens tail.
    [[nodiscard]] bool apply_givens(std::size_t j) {
        for (std::size_t i = 0; i < j; ++i) {
            const Scalar tmp = cs_[i] * h(i, j) + sn_[i] * h(i + 1, j);
            h(i + 1, j) = -sn_[i] * h(i, j) + cs_[i] * h(i + 1, j);
            h(i, j) = tmp;
        }
        const Scalar denom = sqrt(h(j, j) * h(j, j) + h(j + 1, j) * h(j + 1, j));
        if (this->vanished(denom.value, 1.0) || this->nonfinite(denom.value)) {
            abandon_cycle_trace();
            this->fail(std::isfinite(denom.value) ? SolveStatus::breakdown_pivot_zero
                                                  : SolveStatus::breakdown_nonfinite);
            return false;
        }
        cs_[j] = h(j, j) / denom;
        sn_[j] = h(j + 1, j) / denom;
        h(j, j) = cs_[j] * h(j, j) + sn_[j] * h(j + 1, j);
        h(j + 1, j) = make_scalar(0.0);
        g_[j + 1] = -sn_[j] * g_[j];
        g_[j] = cs_[j] * g_[j];
        res_norm_ = Scalar{std::abs(g_[j + 1].value), g_[j + 1].ready_time};
        return true;
    }

    void begin_cycle() {
        planner_.matmul(w_, Planner<T>::SOL);
        planner_.copy(v_[0], Planner<T>::RHS);
        planner_.axpy(v_[0], make_scalar(-1.0), w_);
        const Scalar beta = sqrt(planner_.dot(v_[0], v_[0]));
        if (this->nonfinite(beta.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
        } else if (this->vanished(beta.value, 1.0)) {
            // Exact solution already; the zero residual stops the driver.
        } else {
            planner_.scal(v_[0], make_scalar(1.0) / beta);
        }
        for (auto& gi : g_) gi = make_scalar(0.0);
        std::fill(hess_.begin(), hess_.end(), 0.0);
        g_[0] = beta;
        res_norm_ = beta;
        j_ = 0;
    }

    void update_solution(int k) {
        std::vector<Scalar> y(static_cast<std::size_t>(k));
        for (int i = k - 1; i >= 0; --i) {
            Scalar sum = g_[static_cast<std::size_t>(i)];
            for (int l = i + 1; l < k; ++l) {
                sum = sum - h(static_cast<std::size_t>(i), static_cast<std::size_t>(l)) *
                                y[static_cast<std::size_t>(l)];
            }
            const Scalar hii = h(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
            if (this->vanished(hii.value, 1.0) || this->nonfinite(hii.value)) {
                this->fail(std::isfinite(hii.value) ? SolveStatus::breakdown_pivot_zero
                                                    : SolveStatus::breakdown_nonfinite);
                return;
            }
            y[static_cast<std::size_t>(i)] = sum / hii;
        }
        for (int i = 0; i < k; ++i) {
            planner_.axpy(Planner<T>::SOL, y[static_cast<std::size_t>(i)],
                          v_[static_cast<std::size_t>(i)]);
        }
    }

    Planner<T>& planner_;
    int m_;
    int s_;
    bool newton_;
    int j_ = 0;
    std::vector<VecId> v_;
    std::vector<VecId> u_; // candidate block, s >= 2 only
    VecId w_{};
    std::vector<double> theta_; // Newton shifts, 1-based
    std::vector<Scalar> h_, cs_, sn_, g_;
    std::vector<double> hess_; // raw Hessenberg (see hess())
    Scalar res_norm_;
    std::uint64_t trace_id_ = 0;
    bool cycle_trace_open_ = false;
};

} // namespace kdr::core
