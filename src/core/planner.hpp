#pragma once

/// \file planner.hpp
/// The KDRSolvers Planner (paper §5, Figs 5-6): sets up a multi-operator
/// system together with a data-partitioning strategy, and exposes the
/// mathematical operations solvers are written against. The planner/solver
/// split means solver code (Fig 7) never mentions storage formats, component
/// structure, partitions, or data movement.
///
/// Problem setup (Fig 5):
///   add_sol_vector / add_rhs_vector — register vector components; the total
///     domain/range spaces D_total = ⊔D_i, R_total = ⊔R_j are inferred.
///     Optional *canonical partitions* subdivide each component's operations
///     into index-launched piece tasks.
///   add_operator / add_preconditioner — register components
///     (K_ℓ, A_ℓ, i_ℓ, j_ℓ) of A_total and P_total. Operators may alias:
///     the same region/matrix may be added many times (multiple-RHS and
///     related-systems patterns, paper §4.2) without duplicating storage.
///
/// Solver interface (Fig 6): copy/scal/axpy/xpay/dot/matmul/psolve over
/// opaque vector ids, plus allocate_workspace_vector. Each operation
/// decomposes into per-component, per-piece tasks; matmul output pieces use
/// the runtime's commutative-reduction privilege, so component products
/// targeting the same output run concurrently once the (cached) interference
/// analysis shows they commute — the paper's §4.1 dispatch strategy.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/scalar.hpp"
#include "obs/span.hpp"
#include "partition/projection.hpp"
#include "runtime/runtime.hpp"
#include "simcluster/collective.hpp"
#include "sparse/linear_operator.hpp"
#include "support/error.hpp"

namespace kdr::core {

using VecId = std::size_t;
using CompId = std::size_t;

enum class VecKind : std::uint8_t { SOL, RHS };

struct PlannerOptions {
    sim::ProcKind proc_kind = sim::ProcKind::GPU;
    /// Give each operator's matmul tasks their own color range instead of the
    /// output owner's colors — required by mappers that place multiplication
    /// tasks by *matrix-tile* ownership (the Fig 10 load-balancing setup).
    bool per_operator_task_colors = false;
    /// Solvers built against this planner wrap their steady-state iteration
    /// loops in runtime traces automatically (GMRES uses the restart cycle as
    /// the trace unit). Opt out when the caller manages traces itself or
    /// wants untraced-baseline timings.
    bool trace_solver_loops = true;
    /// Use the fused update+reduction kernels (axpy_dot / xpay_norm2). Off =
    /// decompose into the separate axpy/xpay and dot launches; the numerics
    /// are bitwise-identical either way.
    bool fused_kernels = true;
    /// Build halo-exchange plans for repeatedly-multiplied vector fields and
    /// hand them to the runtime (paper §6 comm/compute overlap). A plan
    /// replaces per-piece on-demand fetches with precomputed messages;
    /// timing-only — numerics are bitwise-identical either way.
    bool comm_plan = true;
    /// Coalesce each (src node, dst node) pair's elements into one message
    /// (amortizing per-message NIC overhead). Off = one message per home
    /// piece, the per-piece ablation point.
    bool comm_coalesce = true;
    /// Issue plan messages eagerly when the producing write commits, so the
    /// wire time overlaps independent kernels. Off = plan messages are
    /// fetched lazily at consumer-ready time.
    bool comm_eager = true;
    /// First piece color this planner hands out. Under the round-robin
    /// mapper, colors select processors (color % total_gpus), so co-scheduled
    /// planners on one runtime claim disjoint processor slots by starting
    /// their color ranges at different offsets (the service layer's per-slot
    /// placement).
    Color color_offset = 0;
    /// Completion semantics of global scalar reductions (dot products, fused
    /// reductions, s-step Gram batches). `nonblocking` (default): reduced
    /// scalars are futures and only their consumers wait — tree latency
    /// overlaps independent kernels. `blocking` models MPI_Allreduce: every
    /// task launched after the reduction waits for it. Timing-only either
    /// way — reduction values are bitwise identical.
    sim::AllreduceMode allreduce = sim::AllreduceMode::nonblocking;
};

/// Precomputed partitioning plan for one operator component — either derived
/// from the operator's row/col relations via dependent partitioning, or
/// supplied analytically by timing-mode benchmarks.
struct OperatorPlan {
    Partition kernel_pieces; ///< partition of K_ℓ by output piece
    Partition domain_needs;  ///< per piece: the x subset read (image along col)
    Partition row_pieces;    ///< per piece: the y subset written
    /// Per piece: the y rows the kernel actually accumulates into (image of
    /// the kernel piece along the row relation) — a subset of `row_pieces`
    /// when the operator has structurally empty rows. Reduce-privilege
    /// launches declare this instead of the whole row piece, so sparse
    /// secondary operators neither over-declare nor write back untouched
    /// rows. Optional: when empty (analytic timing-mode plans), launches
    /// fall back to `row_pieces`.
    Partition row_touch;
    std::vector<gidx> nnz;   ///< stored entries per piece (cost model)
    /// SpMV byte streams (see kdr::SpmvCostModel; defaults are the CSR-like
    /// profile). `bytes_per_entry` is the matrix stream — it also sizes the
    /// phantom matrix region, so matrix-free operators (0 bytes per entry)
    /// place and move no matrix data at all.
    double bytes_per_entry = 16.0;        ///< matrix bytes moved per stored entry
    double gather_bytes_per_entry = 8.0;  ///< gathered-x bytes per stored entry
    double bytes_per_row = 24.0;          ///< row structure + y bytes per row
    /// Structurally symmetric operator: the adjoint multiply may reuse this
    /// plan verbatim. Lets timing-mode (relation-less) systems run adjoint
    /// solvers such as BiCG.
    bool symmetric = false;
};

template <typename T = double>
class Planner {
public:
    static constexpr VecId SOL = 0;
    static constexpr VecId RHS = 1;

    /// One registered vector component: where it lives, its index space, its
    /// canonical partition, and the global piece-color range it occupies.
    struct Component {
        rt::RegionId region = 0;
        rt::FieldId user_field = 0;
        IndexSpace space;
        Partition canonical;
        Color color_base = 0;
    };

    explicit Planner(rt::Runtime& runtime, PlannerOptions options = {})
        : rt_(runtime), opts_(options), next_color_(options.color_offset) {
        vecs_.resize(2); // SOL and RHS
        vecs_[SOL].kind = VecKind::SOL;
        vecs_[RHS].kind = VecKind::RHS;
    }

    Planner(const Planner&) = delete;
    Planner& operator=(const Planner&) = delete;

    // ================================================== Fig 5: problem setup

    /// Register one solution-vector component living in (region, field).
    CompId add_sol_vector(rt::RegionId region, rt::FieldId field,
                          std::optional<Partition> canonical = {}) {
        return add_component(sol_, VecKind::SOL, region, field, std::move(canonical));
    }

    /// Register one right-hand-side component.
    CompId add_rhs_vector(rt::RegionId region, rt::FieldId field,
                          std::optional<Partition> canonical = {}) {
        return add_component(rhs_, VecKind::RHS, region, field, std::move(canonical));
    }

    /// Register an operator component (K_ℓ, A_ℓ, i_ℓ=sol_comp, j_ℓ=rhs_comp).
    /// Without an explicit plan, one is derived from the operator's
    /// relations: kernel pieces are row_{R→K} preimages of the output's
    /// canonical partition, input needs are col_{K→D} images of those (paper
    /// §3.1; projections are memoized process-wide). An explicit `plan`
    /// (timing-mode benchmarks, or callers that precomputed projections)
    /// skips derivation, and `op` may then be null when the runtime is
    /// non-functional.
    void add_operator(std::shared_ptr<const LinearOperator<T>> op, CompId sol_comp,
                      CompId rhs_comp, std::optional<OperatorPlan> plan = {}) {
        if (!plan) {
            KDR_REQUIRE(op != nullptr, "add_operator: null operator (pass an explicit "
                                       "OperatorPlan for timing-mode systems)");
            check_operator_spaces(*op, sol_comp, rhs_comp);
            plan = derive_plan(*op, rhs_comp);
        } else {
            KDR_REQUIRE(op != nullptr || !rt_.functional(),
                        "add_operator: functional runtime requires an operator");
        }
        add_planned(operators_, std::move(op), std::move(*plan), sol_comp, rhs_comp, "A");
    }

    /// Register a preconditioner component (paper Fig 5). Same optional-plan
    /// contract as add_operator, except the plan is partitioned by the *sol*
    /// component (preconditioner output is SOL-shaped).
    void add_preconditioner(std::shared_ptr<const LinearOperator<T>> op, CompId sol_comp,
                            CompId rhs_comp, std::optional<OperatorPlan> plan = {}) {
        if (!plan) {
            KDR_REQUIRE(op != nullptr, "add_preconditioner: null operator (pass an explicit "
                                       "OperatorPlan for timing-mode systems)");
            plan = derive_precond_plan(*op, sol_comp);
        } else {
            KDR_REQUIRE(op != nullptr || !rt_.functional(),
                        "add_preconditioner: functional runtime requires an operator");
        }
        add_planned(preconditioners_, std::move(op), std::move(*plan), sol_comp, rhs_comp, "P");
    }

    // ============================================ Fig 6: solver-facing query

    /// Square means D_i and R_i agree component-wise — same size and same
    /// canonical piece structure. (Identity of the IndexSpace objects is not
    /// required: a user may register distinct-but-congruent spaces for x and
    /// b, as PETSc-style layouts do.)
    [[nodiscard]] bool is_square() const {
        if (sol_.size() != rhs_.size()) return false;
        for (std::size_t i = 0; i < sol_.size(); ++i) {
            if (sol_[i].space.size() != rhs_[i].space.size()) return false;
            if (sol_[i].canonical.pieces() != rhs_[i].canonical.pieces()) return false;
        }
        return true;
    }

    [[nodiscard]] bool has_preconditioner() const {
        return !preconditioners_.empty() || matrix_free_psolve_ != nullptr;
    }

    [[nodiscard]] gidx total_domain_size() const {
        gidx n = 0;
        for (const Component& c : sol_) n += c.space.size();
        return n;
    }
    [[nodiscard]] gidx total_range_size() const {
        gidx n = 0;
        for (const Component& c : rhs_) n += c.space.size();
        return n;
    }

    /// Allocate a workspace vector: one new field per component region,
    /// homed identically to the component (Fig 6). Workspaces released by
    /// rewind_workspaces() are reused in allocation order — same VecId, same
    /// backing fields, no region-structure change — so repeated solver
    /// builds on one planner replay byte-identical launch streams.
    VecId allocate_workspace_vector(VecKind kind = VecKind::SOL) {
        const std::size_t side = kind == VecKind::SOL ? 0 : 1;
        if (ws_live_[side] < ws_pool_[side].size()) {
            return ws_pool_[side][ws_live_[side]++];
        }
        const auto& comps = components(kind);
        KDR_REQUIRE(!comps.empty(), "allocate_workspace_vector: no ",
                    kind == VecKind::SOL ? "solution" : "rhs", " components registered");
        VecDesc v;
        v.kind = kind;
        for (const Component& c : comps) {
            const rt::FieldId f = rt_.add_field<T>(
                c.region, "ws" + std::to_string(vecs_.size()));
            rt_.set_home_from_partition(c.region, f, c.canonical, nodes_of(c));
            v.fields.push_back(f);
        }
        vecs_.push_back(std::move(v));
        ws_pool_[side].push_back(vecs_.size() - 1);
        ++ws_live_[side];
        return vecs_.size() - 1;
    }

    /// Return every workspace to the pool (between jobs on a shared service
    /// context). Ids stay valid — callers must not hold live solvers built
    /// on workspaces allocated before the rewind.
    void rewind_workspaces() noexcept {
        ws_live_[0] = 0;
        ws_live_[1] = 0;
    }

    // =========================================== Fig 6: vector operations

    /// dst ← src
    void copy(VecId dst, VecId src) {
        const obs::Span span = phase_span("copy");
        elementwise("copy", dst, {}, src,
                    [](ElemRef<T> d, T s, double) { d = s; },
                    /*dst_reads=*/false, sim::KernelCosts::copy(1));
    }

    /// dst ← α · dst
    void scal(VecId dst, const Scalar& alpha) {
        const obs::Span span = phase_span("scal");
        elementwise("scal", dst, alpha, dst,
                    [](ElemRef<T> d, T, double a) { d *= static_cast<T>(a); },
                    /*dst_reads=*/true, sim::KernelCosts::scal(1), /*unary=*/true);
    }

    /// dst ← dst + α · src
    void axpy(VecId dst, const Scalar& alpha, VecId src) {
        const obs::Span span = phase_span("axpy");
        elementwise("axpy", dst, alpha, src,
                    [](ElemRef<T> d, T s, double a) { d += static_cast<T>(a) * s; },
                    /*dst_reads=*/true, sim::KernelCosts::axpy(1));
    }

    /// dst ← src + α · dst
    void xpay(VecId dst, const Scalar& alpha, VecId src) {
        const obs::Span span = phase_span("xpay");
        elementwise("xpay", dst, alpha, src,
                    [](ElemRef<T> d, T s, double a) {
                        d = s + static_cast<T>(a) * static_cast<T>(d);
                    },
                    /*dst_reads=*/true, sim::KernelCosts::axpy(1));
    }

    /// dst ← 0
    void zero(VecId dst) {
        const obs::Span span = phase_span("zero");
        elementwise("zero", dst, {}, dst, [](ElemRef<T> d, T, double) { d = T{}; },
                    /*dst_reads=*/false, sim::TaskCost{0.0, 8.0}, /*unary=*/true);
    }

    /// return v · w (scalar future; tree-reduction latency modeled)
    [[nodiscard]] Scalar dot(VecId v, VecId w) {
        const obs::Span span = phase_span("dot");
        double ready = 0.0;
        int piece_count = 0;
        const double partial_sum = dot_partials(v, w, ready, piece_count);
        // One global sync: scalar tree-reduction across pieces.
        return {partial_sum, finish_global_reduction(piece_count, ready)};
    }

    /// Batched inner products with ONE global synchronization: every pair
    /// launches the same per-piece "dot" tasks as dot() would, but all the
    /// partials ride a single shared tree reduction (the s-step Gram-matrix
    /// assembly). The tree cost is the α-term of the latency model — a batch
    /// of n scalars moves 8n bytes per hop, negligible against the per-hop
    /// latency at any n the solvers produce — so batching is how CA methods
    /// trade s× syncs for one. A single-pair batch degenerates to dot()
    /// exactly (same launches, same Scalar), which is what makes the s=1
    /// CA solvers bitwise twins of their classics.
    [[nodiscard]] std::vector<Scalar> dot_batch(
        const std::vector<std::pair<VecId, VecId>>& pairs) {
        KDR_REQUIRE(!pairs.empty(), "dot_batch: empty pair list");
        if (pairs.size() == 1) return {dot(pairs[0].first, pairs[0].second)};
        const obs::Span span = phase_span("dot_batch");
        double ready = 0.0;
        std::vector<double> sums;
        sums.reserve(pairs.size());
        int piece_count = 0;
        for (const auto& [v, w] : pairs) {
            int pc = 0;
            sums.push_back(dot_partials(v, w, ready, pc));
            piece_count = pc; // identical partitioning for every pair
        }
        const double done = finish_global_reduction(piece_count, ready);
        std::vector<Scalar> out;
        out.reserve(sums.size());
        for (const double s : sums) out.push_back({s, done});
        return out;
    }

    /// Gram-matrix assembly: all inner products vecs[a] · vecs[b] for the
    /// requested index pairs, computed by ONE fused kernel launch per piece
    /// (each basis vector is streamed exactly once; every pair's partial
    /// accumulates from registers) and combined by ONE shared tree
    /// reduction. This is the s-step solvers' communication pattern: O(s²)
    /// scalars for the price of a single global synchronization, where the
    /// classic methods pay one sync per scalar. All returned Scalars share
    /// the reduction's completion time.
    [[nodiscard]] std::vector<Scalar> gram_batch(
        const std::vector<VecId>& vecs,
        const std::vector<std::pair<int, int>>& pairs) {
        KDR_REQUIRE(!vecs.empty(), "gram_batch: empty basis");
        KDR_REQUIRE(!pairs.empty(), "gram_batch: empty pair list");
        const obs::Span span = phase_span("gram");
        const std::size_t nv = vecs.size();
        const std::size_t np = pairs.size();
        for (const auto& [a, b] : pairs) {
            KDR_REQUIRE(a >= 0 && static_cast<std::size_t>(a) < nv && b >= 0 &&
                            static_cast<std::size_t>(b) < nv,
                        "gram_batch: pair index out of range");
        }
        const VecDesc& d0 = vec(vecs[0]);
        for (std::size_t k = 1; k < nv; ++k) {
            check_compatible(d0, vec(vecs[k]), "gram_batch");
        }
        std::vector<double> sums(np, 0.0);
        double ready = 0.0;
        int piece_count = 0;
        const auto& comps = components(d0.kind);
        for (std::size_t ci = 0; ci < comps.size(); ++ci) {
            const Component& comp = comps[ci];
            for (Color c = 0; c < comp.canonical.color_count(); ++c) {
                const IntervalSet piece = comp.canonical.piece(c);
                rt::TaskLaunch l;
                l.name = "gram";
                l.proc_kind = opts_.proc_kind;
                l.color = comp.color_base + c;
                for (std::size_t k = 0; k < nv; ++k) {
                    const VecDesc& dk = vec(vecs[k]);
                    const Component& kcomp = components(dk.kind)[ci];
                    l.requirements.push_back({kcomp.region, dk.fields[ci],
                                              rt::Privilege::ReadOnly, piece});
                }
                // Fused roofline: one streaming pass over the nv basis
                // vectors, 2 flops per element per pair.
                const double vol = static_cast<double>(piece.volume());
                l.cost = {2.0 * vol * static_cast<double>(np),
                          8.0 * vol * static_cast<double>(nv)};
                if (rt_.functional()) {
                    l.body = [piece, nv, pairs](rt::TaskContext& ctx) {
                        std::vector<VecView<const T>> views;
                        views.reserve(nv);
                        for (std::size_t k = 0; k < nv; ++k) {
                            views.push_back(
                                ctx.accessor<const T>(static_cast<std::uint32_t>(k)));
                        }
                        std::vector<double> acc(pairs.size(), 0.0);
                        piece.for_each_interval([&](const Interval& iv) {
                            for (gidx i = iv.lo; i < iv.hi; ++i) {
                                const auto e = static_cast<std::size_t>(i);
                                for (std::size_t p = 0; p < pairs.size(); ++p) {
                                    acc[p] += static_cast<double>(
                                        views[static_cast<std::size_t>(
                                            pairs[p].first)][e] *
                                        views[static_cast<std::size_t>(
                                            pairs[p].second)][e]);
                                }
                            }
                        });
                        for (const double a : acc) ctx.push_scalar(a);
                    };
                }
                const Scalar part = rt_.launch(std::move(l));
                const std::vector<double> partials = rt_.take_task_scalars();
                if (!partials.empty()) {
                    KDR_REQUIRE(partials.size() == np,
                                "gram_batch: partial count mismatch");
                    for (std::size_t p = 0; p < np; ++p) sums[p] += partials[p];
                }
                ready = std::max(ready, part.ready_time);
                ++piece_count;
            }
        }
        const double done = finish_global_reduction(piece_count, ready);
        std::vector<Scalar> out;
        out.reserve(np);
        for (const double s : sums) out.push_back({s, done});
        return out;
    }

    /// Fused block recombination (the s-step solvers' end-of-block update):
    /// for each output o, dst[o] ← Σ_k coeffs[o][k] · basis[k], evaluated
    /// elementwise from the basis values *before* any store, so outputs may
    /// alias basis members (CA-CG rewrites p and r, which ARE basis columns
    /// z₀ and w₀). An output listed in `accumulate` adds the combination to
    /// its current contents instead of replacing them (the x update). ONE
    /// kernel launch per piece replaces the O(s²) axpy launches the unfused
    /// form would need. Coefficient values do not shape the launches — zero
    /// coefficients still contribute a (numerically inert) term — so traced
    /// instances replay across blocks with different coefficients.
    void block_update(const std::vector<VecId>& basis,
                      const std::vector<VecId>& outputs,
                      const std::vector<std::vector<Scalar>>& coeffs,
                      const std::vector<bool>& accumulate) {
        KDR_REQUIRE(!basis.empty() && !outputs.empty(),
                    "block_update: empty basis or output list");
        KDR_REQUIRE(coeffs.size() == outputs.size() &&
                        accumulate.size() == outputs.size(),
                    "block_update: outputs/coeffs/accumulate size mismatch");
        const obs::Span span = phase_span("block_update");
        const std::size_t nb = basis.size();
        const std::size_t no = outputs.size();
        for (const auto& row : coeffs) {
            KDR_REQUIRE(row.size() == nb, "block_update: coefficient row size mismatch");
        }
        const VecDesc& d0 = vec(basis[0]);
        for (std::size_t k = 1; k < nb; ++k) {
            check_compatible(d0, vec(basis[k]), "block_update");
        }
        for (std::size_t o = 0; o < no; ++o) {
            check_compatible(d0, vec(outputs[o]), "block_update");
        }
        // Requirement layout: outputs first (ReadWrite), then the basis
        // vectors that are not themselves outputs (ReadOnly). `slot[k]`
        // maps basis index -> requirement index.
        std::vector<std::size_t> slot(nb);
        std::vector<std::size_t> extra; // basis indices needing own reqs
        for (std::size_t k = 0; k < nb; ++k) {
            slot[k] = no; // sentinel: not an output
            for (std::size_t o = 0; o < no; ++o) {
                if (basis[k] == outputs[o]) {
                    slot[k] = o;
                    break;
                }
            }
            if (slot[k] == no) {
                slot[k] = no + extra.size();
                extra.push_back(k);
            }
        }
        // Scalar dependences: the kernel consumes every coefficient.
        std::vector<double> coeff_deps;
        coeff_deps.reserve(no * nb);
        for (const auto& row : coeffs) {
            for (const Scalar& s : row) coeff_deps.push_back(s.ready_time);
        }
        // Host-side coefficient values for the functional body.
        std::vector<std::vector<double>> cval(no, std::vector<double>(nb));
        for (std::size_t o = 0; o < no; ++o) {
            for (std::size_t k = 0; k < nb; ++k) cval[o][k] = coeffs[o][k].value;
        }
        std::vector<bool> acc(accumulate);
        const auto& comps = components(d0.kind);
        for (std::size_t ci = 0; ci < comps.size(); ++ci) {
            const Component& comp = comps[ci];
            for (Color c = 0; c < comp.canonical.color_count(); ++c) {
                const IntervalSet piece = comp.canonical.piece(c);
                rt::TaskLaunch l;
                l.name = "block_update";
                l.proc_kind = opts_.proc_kind;
                l.color = comp.color_base + c;
                for (std::size_t o = 0; o < no; ++o) {
                    const VecDesc& dv = vec(outputs[o]);
                    const Component& ocomp = components(dv.kind)[ci];
                    l.requirements.push_back({ocomp.region, dv.fields[ci],
                                              rt::Privilege::ReadWrite, piece});
                }
                for (const std::size_t k : extra) {
                    const VecDesc& dv = vec(basis[k]);
                    const Component& kcomp = components(dv.kind)[ci];
                    l.requirements.push_back({kcomp.region, dv.fields[ci],
                                              rt::Privilege::ReadOnly, piece});
                }
                // Fused roofline: stream each distinct input once, write each
                // output once (accumulating outputs also re-read themselves —
                // already counted when they alias a basis column).
                const double vol = static_cast<double>(piece.volume());
                const double streams =
                    static_cast<double>(no + extra.size()) + static_cast<double>(no);
                l.cost = {2.0 * vol * static_cast<double>(nb) * static_cast<double>(no),
                          8.0 * vol * streams};
                l.scalar_deps = coeff_deps;
                if (rt_.functional()) {
                    l.body = [piece, nb, no, slot, cval, acc](rt::TaskContext& ctx) {
                        std::vector<VecView<T>> views;
                        const std::size_t nreq = ctx.launch().requirements.size();
                        views.reserve(nreq);
                        for (std::size_t k = 0; k < nreq; ++k) {
                            views.push_back(
                                ctx.accessor<T>(static_cast<std::uint32_t>(k)));
                        }
                        std::vector<double> b(nb);
                        std::vector<double> out(no);
                        piece.for_each_interval([&](const Interval& iv) {
                            for (gidx i = iv.lo; i < iv.hi; ++i) {
                                const auto e = static_cast<std::size_t>(i);
                                for (std::size_t k = 0; k < nb; ++k) {
                                    b[k] = static_cast<double>(views[slot[k]][e]);
                                }
                                for (std::size_t o = 0; o < no; ++o) {
                                    double sum =
                                        acc[o] ? static_cast<double>(views[o][e]) : 0.0;
                                    for (std::size_t k = 0; k < nb; ++k) {
                                        sum += cval[o][k] * b[k];
                                    }
                                    out[o] = sum;
                                }
                                for (std::size_t o = 0; o < no; ++o) {
                                    views[o][e] = static_cast<T>(out[o]);
                                }
                            }
                        });
                    };
                }
                (void)rt_.launch(std::move(l));
            }
        }
    }

    /// dst ← dst + α·src, returning dst·w. Fused update + partial reduction:
    /// one task per piece where the unfused form takes two, halving the
    /// launches the trace has to replay on the CG/BiCGStab hot path (the
    /// matrix-free fusion argument of the tensor-product solver literature).
    /// Bitwise-identical to axpy followed by dot.
    [[nodiscard]] Scalar axpy_dot(VecId dst, const Scalar& alpha, VecId src, VecId w) {
        if (!opts_.fused_kernels) {
            axpy(dst, alpha, src);
            return dot(dst, w);
        }
        return fused_update_reduce("axpy_dot", dst, alpha, src, w,
                                   [](ElemRef<T> d, T s, double a) {
                                       d += static_cast<T>(a) * s;
                                   });
    }

    /// dst ← src + α·dst, returning dst·dst (the update fused with ‖dst‖²).
    /// Bitwise-identical to xpay followed by dot(dst, dst).
    [[nodiscard]] Scalar xpay_norm2(VecId dst, const Scalar& alpha, VecId src) {
        if (!opts_.fused_kernels) {
            xpay(dst, alpha, src);
            return dot(dst, dst);
        }
        return fused_update_reduce("xpay_norm2", dst, alpha, src, dst,
                                   [](ElemRef<T> d, T s, double a) {
                                       d = s + static_cast<T>(a) * static_cast<T>(d);
                                   });
    }

    /// dst ← A_total(src): eq. (8) — zero dst, then one multiply-add task per
    /// (operator, piece) reducing into the output component.
    void matmul(VecId dst, VecId src) {
        const obs::Span span = phase_span("spmv");
        apply_slots(operators_, dst, src);
    }

    /// dst ← P_total(src) (paper Fig 6). Falls back to a matrix-free
    /// callback when one was installed.
    void psolve(VecId dst, VecId src) {
        KDR_REQUIRE(has_preconditioner(), "psolve: no preconditioner registered");
        const obs::Span span = phase_span("psolve");
        if (matrix_free_psolve_) {
            matrix_free_psolve_(dst, src);
            return;
        }
        apply_slots(preconditioners_, dst, src);
    }

    /// dst ← A_totalᵀ(src) — adjoint multiply (BiCG). Requires functional
    /// operators (transpose plans derive from the col relation lazily).
    void matmul_transpose(VecId dst, VecId src) {
        const obs::Span span = phase_span("spmvT");
        const VecDesc& dv = vec(dst);
        const VecDesc& sv = vec(src);
        if (dv.kind != VecKind::SOL || sv.kind != VecKind::RHS) {
            KDR_REQUIRE(is_square(),
                        "matmul_transpose: dst must be SOL-shaped and src RHS-shaped "
                        "unless square");
        }
        // Same primary/reducer dispatch as matmul, keyed on sol components.
        std::vector<const OperatorSlot*> primary(components(dv.kind).size(), nullptr);
        for (OperatorSlot& slot : operators_) {
            ensure_transpose_plan(slot);
            if (primary[slot.sol_comp] == nullptr &&
                slot.tplan->row_pieces.pieces() ==
                    components(dv.kind)[slot.sol_comp].canonical.pieces()) {
                primary[slot.sol_comp] = &slot;
            }
        }
        for (std::size_t j = 0; j < primary.size(); ++j) {
            if (primary[j] == nullptr) zero_component(dv, j);
        }
        ensure_exchange_plans(operators_, sv, /*transpose=*/true);
        for (int pass = 0; pass < 2; ++pass) {
            for (OperatorSlot& slot : operators_) {
                const bool is_primary = primary[slot.sol_comp] == &slot;
                if ((pass == 0) != is_primary) continue;
                // Output is the *solution* component; input the rhs component.
                const Component& in = component_of(sv, slot.rhs_comp);
                const Component& out = component_of(dv, slot.sol_comp);
                const rt::FieldId fin = field_for(sv, VecKind::RHS, slot.rhs_comp);
                const rt::FieldId fout = field_for(dv, VecKind::SOL, slot.sol_comp);
                launch_multiplies(slot, *slot.tplan, in, fin, out, fout, /*transpose=*/true,
                                  /*write_mode=*/is_primary);
            }
        }
    }

    /// Install a matrix-free preconditioner (Legion-style custom task; the
    /// paper notes LegionSolvers accepts "a user-provided preconditioning
    /// matrix (or matrix-free task)").
    void set_matrix_free_psolve(std::function<void(VecId, VecId)> fn) {
        matrix_free_psolve_ = std::move(fn);
    }

    /// Mark this planner as a reused service context: solver trace ids
    /// become stable per key (and pinned in the runtime), so the next
    /// structurally-identical job on this planner replays the captured
    /// schedule instead of re-recording. Pair with rewind_workspaces().
    void enable_context_reuse() noexcept { context_reuse_ = true; }
    [[nodiscard]] bool context_reuse() const noexcept { return context_reuse_; }

    /// Trace id for a solver iteration loop. Default: a fresh id per solver
    /// instance (the trace dies with the instance). Under context reuse the
    /// id is stable per `key` and pinned, surviving the inter-job staleness
    /// that would otherwise discard the captured schedule.
    [[nodiscard]] std::uint64_t solver_trace_id(const std::string& key) {
        if (!context_reuse_) return rt_.allocate_trace_id();
        auto it = solver_trace_ids_.find(key);
        if (it == solver_trace_ids_.end()) {
            const std::uint64_t id = rt_.allocate_trace_id();
            rt_.pin_trace(id);
            it = solver_trace_ids_.emplace(key, id).first;
        }
        return it->second;
    }

    // ------------------------------------------------------- introspection

    [[nodiscard]] rt::Runtime& runtime() noexcept { return rt_; }
    [[nodiscard]] const PlannerOptions& options() const noexcept { return opts_; }

    /// Field backing component `comp` of vector `v` (result inspection).
    [[nodiscard]] rt::FieldId vector_field(VecId v, CompId comp = 0) const {
        const VecDesc& d = vec(v);
        KDR_REQUIRE(comp < d.fields.size(), "vector_field: component ", comp, " out of range");
        return d.fields[comp];
    }
    [[nodiscard]] VecKind vector_kind(VecId v) const { return vec(v).kind; }
    [[nodiscard]] std::size_t operator_count() const noexcept { return operators_.size(); }
    [[nodiscard]] std::size_t sol_components() const noexcept { return sol_.size(); }
    [[nodiscard]] std::size_t rhs_components() const noexcept { return rhs_.size(); }

    /// Task color of (operator ℓ, piece c) matmul launches — what tile-owner
    /// mappers key on (requires per_operator_task_colors).
    [[nodiscard]] Color matmul_color(std::size_t op_index, Color piece) const {
        KDR_REQUIRE(op_index < operators_.size(), "matmul_color: bad operator index");
        return operators_[op_index].task_color_base + piece;
    }

    /// Matrix-data region of operator ℓ (for home migration / load balancing).
    [[nodiscard]] std::pair<rt::RegionId, rt::FieldId> operator_storage(
        std::size_t op_index) const {
        KDR_REQUIRE(op_index < operators_.size(), "operator_storage: bad operator index");
        KDR_REQUIRE(operators_[op_index].has_matrix,
                    "operator_storage: operator ", op_index,
                    " is matrix-free (no stored matrix to migrate)");
        return {operators_[op_index].mat_region, operators_[op_index].mat_field};
    }

    [[nodiscard]] const Component& sol_component(CompId i) const {
        KDR_REQUIRE(i < sol_.size(), "sol_component: bad id");
        return sol_[i];
    }
    [[nodiscard]] const Component& rhs_component(CompId j) const {
        KDR_REQUIRE(j < rhs_.size(), "rhs_component: bad id");
        return rhs_[j];
    }

    /// Node that piece `c` of a component maps to under the default
    /// round-robin convention (homes and owner-computes placement agree).
    [[nodiscard]] int node_of_color(Color color) const {
        const sim::MachineDesc& m = rt_.machine();
        if (opts_.proc_kind == sim::ProcKind::GPU && m.gpus_per_node > 0) {
            return static_cast<int>(color % m.total_gpus()) / m.gpus_per_node;
        }
        return static_cast<int>(color % m.nodes);
    }

private:
    struct VecDesc {
        VecKind kind = VecKind::SOL;
        std::vector<rt::FieldId> fields; // parallel to components(kind)
    };

    /// Open a solver-phase span on the runtime's tracker and count the op in
    /// its metrics registry (metric "planner_ops", label op=<name>).
    [[nodiscard]] obs::Span phase_span(const char* name) {
        rt_.metrics().counter("planner_ops", {{"op", name}}).inc();
        return {rt_.spans(), name};
    }

    /// Launch the per-piece partial-sum tasks of v · w (the body every inner
    /// product shares, whether it completes alone or inside a batch). Folds
    /// each piece's readiness into `ready`, reports the partition width in
    /// `piece_count`, and returns the summed partials.
    [[nodiscard]] double dot_partials(VecId v, VecId w, double& ready,
                                      int& piece_count) {
        const VecDesc& dv = vec(v);
        const VecDesc& dw = vec(w);
        check_compatible(dv, dw, "dot");
        double partial_sum = 0.0;
        const auto& comps = components(dv.kind);
        for (std::size_t ci = 0; ci < comps.size(); ++ci) {
            const Component& comp = comps[ci];
            const Component& wcomp = components(dw.kind)[ci];
            const rt::FieldId fv = dv.fields[ci];
            const rt::FieldId fw = dw.fields[ci];
            for (Color c = 0; c < comp.canonical.color_count(); ++c) {
                const IntervalSet piece = comp.canonical.piece(c);
                rt::TaskLaunch l;
                l.name = "dot";
                l.proc_kind = opts_.proc_kind;
                l.color = comp.color_base + c;
                l.requirements.push_back(
                    {comp.region, fv, rt::Privilege::ReadOnly, piece});
                l.requirements.push_back(
                    {wcomp.region, fw, rt::Privilege::ReadOnly, piece});
                l.cost = sim::KernelCosts::dot(piece.volume());
                if (rt_.functional()) {
                    l.body = [piece](rt::TaskContext& ctx) {
                        auto a = ctx.accessor<const T>(0);
                        auto b = ctx.accessor<const T>(1);
                        double s = 0.0;
                        piece.for_each_interval([&](const Interval& iv) {
                            for (gidx i = iv.lo; i < iv.hi; ++i) {
                                s += static_cast<double>(
                                    a[static_cast<std::size_t>(i)] *
                                    b[static_cast<std::size_t>(i)]);
                            }
                        });
                        ctx.set_scalar(s);
                    };
                }
                const Scalar part = rt_.launch(std::move(l));
                partial_sum += part.value;
                ready = std::max(ready, part.ready_time);
                ++piece_count;
            }
        }
        return partial_sum;
    }

    /// Complete one global scalar reduction whose last partial landed at
    /// `ready`: count the sync, charge the shared tree latency, and — under
    /// the blocking collective model — raise the runtime's collective front
    /// so every subsequent task waits too. Returns the completion time
    /// (futures: only consumers of the scalar wait for it by default).
    [[nodiscard]] double finish_global_reduction(int piece_count, double ready) {
        if (global_sync_ctr_ == nullptr) {
            global_sync_ctr_ = &rt_.metrics().counter("global_syncs");
        }
        global_sync_ctr_->inc();
        const sim::PendingAllreduce ar =
            sim::post_allreduce(rt_.machine(), piece_count, ready);
        if (opts_.allreduce == sim::AllreduceMode::blocking) {
            rt_.raise_collective_front(ar.done);
        }
        return ar.done;
    }

    struct OperatorSlot {
        std::shared_ptr<const LinearOperator<T>> op; // null in timing mode
        OperatorPlan plan;
        std::unique_ptr<OperatorPlan> tplan; // adjoint plan, lazy
        CompId sol_comp = 0;
        CompId rhs_comp = 0;
        rt::RegionId mat_region = 0;
        rt::FieldId mat_field = 0;
        /// False for computed (matrix-free) kernels: zero matrix bytes per
        /// entry means no phantom matrix region exists and matmul launches
        /// declare no matrix requirement at all.
        bool has_matrix = true;
        Color task_color_base = 0;
        std::string tag;
    };

    [[nodiscard]] std::vector<Component>& mutable_components(VecKind k) {
        return k == VecKind::SOL ? sol_ : rhs_;
    }
    [[nodiscard]] const std::vector<Component>& components(VecKind k) const {
        return k == VecKind::SOL ? sol_ : rhs_;
    }

    [[nodiscard]] const VecDesc& vec(VecId v) const {
        KDR_REQUIRE(v < vecs_.size(), "unknown vector id ", v);
        if (v == SOL) {
            KDR_REQUIRE(!sol_.empty(), "solution vector has no components yet");
        }
        if (v == RHS) {
            KDR_REQUIRE(!rhs_.empty(), "rhs vector has no components yet");
        }
        return vecs_[v];
    }

    /// Two vectors are op-compatible if they have the same kind, or the
    /// system is square (component spaces pairwise identical).
    void check_compatible(const VecDesc& a, const VecDesc& b, const char* what) const {
        if (a.kind == b.kind) return;
        KDR_REQUIRE(is_square(), what,
                    ": mixing SOL- and RHS-shaped vectors requires a square system");
    }

    /// Field of vector `v` for component `comp` of side `side`. For square
    /// systems a vector of the other kind is accessed through the paired
    /// component index.
    [[nodiscard]] rt::FieldId field_for(const VecDesc& v, VecKind /*side*/,
                                        CompId comp) const {
        KDR_REQUIRE(comp < v.fields.size(), "vector does not cover component ", comp);
        return v.fields[comp];
    }

    /// Region hosting component `comp` of vector `v`.
    [[nodiscard]] const Component& component_of(const VecDesc& v, CompId comp) const {
        return components(v.kind)[comp];
    }

    [[nodiscard]] std::vector<int> nodes_of(const Component& c) const {
        std::vector<int> nodes;
        nodes.reserve(static_cast<std::size_t>(c.canonical.color_count()));
        for (Color i = 0; i < c.canonical.color_count(); ++i) {
            nodes.push_back(node_of_color(c.color_base + i));
        }
        return nodes;
    }

    CompId add_component(std::vector<Component>& list, VecKind kind, rt::RegionId region,
                         rt::FieldId field, std::optional<Partition> canonical) {
        const IndexSpace& space = rt_.region(region).space();
        Component comp;
        comp.region = region;
        comp.user_field = field;
        comp.space = space;
        comp.canonical = canonical ? std::move(*canonical) : Partition::single(space);
        KDR_REQUIRE(comp.canonical.space() == space,
                    "canonical partition must partition the component's space");
        KDR_REQUIRE(comp.canonical.is_complete() && comp.canonical.is_disjoint(),
                    "canonical partitions must be complete and disjoint (paper §5)");
        // RHS components of a square pairing share piece colors with their
        // solution twins so aligned operations stay local.
        bool reused = false;
        if (kind == VecKind::RHS) {
            const std::size_t pair_index = rhs_.size();
            if (pair_index < sol_.size() &&
                sol_[pair_index].space.size() == space.size() &&
                sol_[pair_index].canonical.pieces() == comp.canonical.pieces()) {
                comp.color_base = sol_[pair_index].color_base;
                reused = true;
            }
        }
        if (!reused) {
            comp.color_base = next_color_;
            next_color_ += comp.canonical.color_count();
        }

        rt_.set_home_from_partition(region, field, comp.canonical, [&] {
            std::vector<int> nodes;
            for (Color i = 0; i < comp.canonical.color_count(); ++i)
                nodes.push_back(node_of_color(comp.color_base + i));
            return nodes;
        }());

        list.push_back(comp);
        vecs_[kind == VecKind::SOL ? SOL : RHS].fields.push_back(field);
        return list.size() - 1;
    }

    void check_operator_spaces(const LinearOperator<T>& op, CompId sol_comp,
                               CompId rhs_comp) const {
        KDR_REQUIRE(sol_comp < sol_.size(), "add_operator: unknown sol component ", sol_comp);
        KDR_REQUIRE(rhs_comp < rhs_.size(), "add_operator: unknown rhs component ", rhs_comp);
        KDR_REQUIRE(op.domain() == sol_[sol_comp].space,
                    "add_operator: operator domain space mismatch for component ", sol_comp);
        KDR_REQUIRE(op.range() == rhs_[rhs_comp].space,
                    "add_operator: operator range space mismatch for component ", rhs_comp);
    }

    /// Universal co-partitioning (paper §3.1): kernel pieces are preimages of
    /// the output partition along the row relation; input needs are images of
    /// the kernel pieces along the column relation. Works for any format.
    [[nodiscard]] OperatorPlan derive_plan(const LinearOperator<T>& op, CompId rhs_comp) const {
        const Partition& rows = rhs_[rhs_comp].canonical;
        OperatorPlan plan;
        plan.kernel_pieces = preimage_cached(rows, *op.row_relation());
        plan.domain_needs = image_cached(plan.kernel_pieces, *op.col_relation());
        plan.row_pieces = rows;
        plan.row_touch = image_cached(plan.kernel_pieces, *op.row_relation());
        plan.nnz.reserve(static_cast<std::size_t>(rows.color_count()));
        for (Color c = 0; c < rows.color_count(); ++c) {
            plan.nnz.push_back(plan.kernel_pieces.piece(c).volume());
        }
        apply_cost_model(plan, op);
        return plan;
    }

    [[nodiscard]] OperatorPlan derive_precond_plan(const LinearOperator<T>& op,
                                                   CompId sol_comp) const {
        // Preconditioner output is SOL-shaped: partition by the sol component.
        const Partition& rows = sol_[sol_comp].canonical;
        OperatorPlan plan;
        plan.kernel_pieces = preimage_cached(rows, *op.row_relation());
        plan.domain_needs = image_cached(plan.kernel_pieces, *op.col_relation());
        plan.row_pieces = rows;
        plan.row_touch = image_cached(plan.kernel_pieces, *op.row_relation());
        for (Color c = 0; c < rows.color_count(); ++c)
            plan.nnz.push_back(plan.kernel_pieces.piece(c).volume());
        apply_cost_model(plan, op);
        return plan;
    }

    static void apply_cost_model(OperatorPlan& plan, const LinearOperator<T>& op) {
        const SpmvCostModel cm = op.spmv_cost_model();
        plan.bytes_per_entry = cm.matrix_bytes_per_entry;
        plan.gather_bytes_per_entry = cm.gather_bytes_per_entry;
        plan.bytes_per_row = cm.bytes_per_row;
    }

    void add_planned(std::vector<OperatorSlot>& list,
                     std::shared_ptr<const LinearOperator<T>> op, OperatorPlan plan,
                     CompId sol_comp, CompId rhs_comp, std::string tag) {
        KDR_REQUIRE(sol_comp < sol_.size(), "operator: unknown sol component ", sol_comp);
        KDR_REQUIRE(rhs_comp < rhs_.size(), "operator: unknown rhs component ", rhs_comp);
        const Color pieces = plan.row_pieces.color_count();
        KDR_REQUIRE(plan.kernel_pieces.color_count() == pieces &&
                        plan.domain_needs.color_count() == pieces &&
                        static_cast<Color>(plan.nnz.size()) == pieces,
                    "operator plan: inconsistent piece counts");

        OperatorSlot slot;
        slot.op = std::move(op);
        slot.sol_comp = sol_comp;
        slot.rhs_comp = rhs_comp;
        slot.tag = std::move(tag);

        // Matrix data region: phantom field (kernels read the operator object
        // directly; the region models placement and movement of the bytes).
        // Matrix-free operators report zero matrix bytes per entry — there is
        // nothing to place or move, so no region is created and no launch
        // declares a matrix requirement.
        slot.has_matrix = plan.bytes_per_entry > 0.0;
        if (slot.has_matrix) {
            slot.mat_region =
                rt_.create_region(plan.kernel_pieces.space(),
                                  slot.tag + std::to_string(list.size()) + "_data");
            slot.mat_field = rt_.region(slot.mat_region)
                                 .add_field("entries", static_cast<std::size_t>(
                                                           plan.bytes_per_entry),
                                            /*materialize=*/false);
            // Home matrix pieces with the output owner (row-based placement,
            // the benchmarks' convention); load balancers may move them later.
            std::vector<rt::HomePiece> homes;
            const Component& out = rhs_[rhs_comp];
            for (Color c = 0; c < pieces; ++c) {
                homes.push_back({plan.kernel_pieces.piece(c),
                                 node_of_color(out.color_base + c)});
            }
            rt_.set_home(slot.mat_region, slot.mat_field, std::move(homes));
        }

        if (opts_.per_operator_task_colors) {
            slot.task_color_base = next_color_;
            next_color_ += pieces;
        } else {
            slot.task_color_base = rhs_[rhs_comp].color_base;
        }
        slot.plan = std::move(plan);
        list.push_back(std::move(slot));
    }

    void ensure_transpose_plan(OperatorSlot& slot) {
        if (slot.tplan) return;
        if (slot.plan.symmetric) {
            slot.tplan = std::make_unique<OperatorPlan>(slot.plan);
            return;
        }
        KDR_REQUIRE(slot.op != nullptr,
                    "matmul_transpose: operator relations unavailable (timing mode; set "
                    "OperatorPlan::symmetric for structurally symmetric operators)");
        const Partition& out_rows = sol_[slot.sol_comp].canonical;
        auto tp = std::make_unique<OperatorPlan>();
        tp->kernel_pieces = preimage_cached(out_rows, *slot.op->col_relation());
        tp->domain_needs = image_cached(tp->kernel_pieces, *slot.op->row_relation());
        tp->row_pieces = out_rows;
        tp->row_touch = image_cached(tp->kernel_pieces, *slot.op->col_relation());
        for (Color c = 0; c < out_rows.color_count(); ++c)
            tp->nnz.push_back(tp->kernel_pieces.piece(c).volume());
        tp->bytes_per_entry = slot.plan.bytes_per_entry;
        tp->gather_bytes_per_entry = slot.plan.gather_bytes_per_entry;
        tp->bytes_per_row = slot.plan.bytes_per_row;
        slot.tplan = std::move(tp);
    }

    /// Halo-exchange plan registration (the paper's comm/compute overlap).
    /// The *second* multiply that reads a vector field marks it as a live,
    /// repeatedly-exchanged input (CG's direction vector, preconditioner
    /// inputs, ...) and freezes its consumers' needs into a runtime
    /// ExchangePlan; one-shot inputs (the initial residual) never reach the
    /// threshold, so their writes are not burdened with eager pushes. The
    /// runtime drops plans when placement changes (set_home/move_home); the
    /// next multiply re-registers from the new homes.
    void ensure_exchange_plans(std::vector<OperatorSlot>& slots, const VecDesc& sv,
                               bool transpose) {
        if (!opts_.comm_plan) return;
        // All consuming pieces per input (region, field), across every slot
        // reading it in this multiply.
        std::map<std::pair<rt::RegionId, rt::FieldId>, std::vector<rt::ExchangeConsumer>>
            readers;
        for (OperatorSlot& slot : slots) {
            const OperatorPlan& plan = transpose ? *slot.tplan : slot.plan;
            const CompId in_comp = transpose ? slot.rhs_comp : slot.sol_comp;
            const Component& in = component_of(sv, in_comp);
            const rt::FieldId fin =
                field_for(sv, transpose ? VecKind::RHS : VecKind::SOL, in_comp);
            auto& list = readers[{in.region, fin}];
            for (Color c = 0; c < plan.row_pieces.color_count(); ++c) {
                list.push_back({node_of_color(slot.task_color_base + c),
                                plan.domain_needs.piece(c)});
            }
        }
        for (auto& [key, list] : readers) {
            if (++comm_uses_[key] < 2) continue;
            if (rt_.has_exchange_plan(key.first, key.second)) continue;
            rt_.set_exchange_plan(
                key.first, key.second,
                rt::build_exchange_plan(rt_.region(key.first).field(key.second).home, list,
                                        opts_.comm_coalesce, opts_.comm_eager));
        }
    }

    /// Shared machinery of matmul and psolve: dst ← Σ_ℓ slot_ℓ(src).
    /// Components are addressed through the *vectors'* own regions (a SOL-
    /// shaped workspace holds its data on the sol component regions even when
    /// it plays the RHS role in a square system).
    ///
    /// Dispatch strategy (paper §4.1): for each output component, the first
    /// operator whose pieces exactly cover the component's canonical pieces
    /// becomes the *primary* — its tasks write with β=0 fused (no separate
    /// zeroing pass, the standard SpMV idiom). Every other operator reduces
    /// with the commutative sum privilege, so contributions from different
    /// components overlap; the interference analysis is exactly the
    /// privilege-conflict rules of the runtime, cached in the task DAG.
    void apply_slots(std::vector<OperatorSlot>& slots, VecId dst, VecId src) {
        const VecDesc& dv = vec(dst);
        const VecDesc& sv = vec(src);
        if (dv.kind != VecKind::RHS || sv.kind != VecKind::SOL) {
            KDR_REQUIRE(is_square(),
                        "matmul: dst must be RHS-shaped and src SOL-shaped unless square");
        }
        // Pick primary slots and zero the components no slot fully covers.
        std::vector<const OperatorSlot*> primary(components(dv.kind).size(), nullptr);
        for (const OperatorSlot& slot : slots) {
            if (primary[slot.rhs_comp] == nullptr &&
                slot.plan.row_pieces.pieces() ==
                    components(dv.kind)[slot.rhs_comp].canonical.pieces()) {
                primary[slot.rhs_comp] = &slot;
            }
        }
        for (std::size_t j = 0; j < primary.size(); ++j) {
            if (primary[j] == nullptr) zero_component(dv, j);
        }
        ensure_exchange_plans(slots, sv, /*transpose=*/false);
        // Primaries launch first so reducers order after the β=0 write.
        for (int pass = 0; pass < 2; ++pass) {
            for (OperatorSlot& slot : slots) {
                const bool is_primary = primary[slot.rhs_comp] == &slot;
                if ((pass == 0) != is_primary) continue;
                const Component& in = component_of(sv, slot.sol_comp);
                const Component& out = component_of(dv, slot.rhs_comp);
                const rt::FieldId fin = field_for(sv, VecKind::SOL, slot.sol_comp);
                const rt::FieldId fout = field_for(dv, VecKind::RHS, slot.rhs_comp);
                launch_multiplies(slot, slot.plan, in, fin, out, fout, /*transpose=*/false,
                                  /*write_mode=*/is_primary);
            }
        }
    }

    /// Zero a single component of a vector (piece tasks).
    void zero_component(const VecDesc& dv, std::size_t comp) {
        const Component& dcomp = components(dv.kind)[comp];
        const rt::FieldId fd = dv.fields[comp];
        for (Color c = 0; c < dcomp.canonical.color_count(); ++c) {
            const IntervalSet piece = dcomp.canonical.piece(c);
            rt::TaskLaunch l;
            l.name = "zero";
            l.proc_kind = opts_.proc_kind;
            l.color = dcomp.color_base + c;
            l.requirements.push_back({dcomp.region, fd, rt::Privilege::WriteOnly, piece});
            l.cost = {0.0, 8.0 * static_cast<double>(piece.volume())};
            if (rt_.functional()) {
                l.body = [piece](rt::TaskContext& ctx) {
                    auto d = ctx.accessor<T>(0);
                    piece.for_each_interval([&](const Interval& iv) {
                        for (gidx i = iv.lo; i < iv.hi; ++i)
                            d[static_cast<std::size_t>(i)] = T{};
                    });
                };
            }
            rt_.launch(std::move(l));
        }
    }

    void launch_multiplies(OperatorSlot& slot, const OperatorPlan& plan, const Component& in,
                           rt::FieldId fin, const Component& out, rt::FieldId fout,
                           bool transpose, bool write_mode = false) {
        const bool have_touch = plan.row_touch.color_count() == plan.row_pieces.color_count();
        for (Color c = 0; c < plan.row_pieces.color_count(); ++c) {
            const IntervalSet& kpiece = plan.kernel_pieces.piece(c);
            const IntervalSet& xpiece = plan.domain_needs.piece(c);
            // A write-mode (primary) launch zero-initializes and so touches
            // its whole row piece; a Reduce launch touches only the rows the
            // kernel accumulates into.
            const IntervalSet& ypiece = (!write_mode && have_touch)
                                            ? plan.row_touch.piece(c)
                                            : plan.row_pieces.piece(c);
            if (kpiece.empty() && !write_mode) continue;
            rt::TaskLaunch l;
            l.name = transpose ? "matmulT" : "matmul";
            l.proc_kind = opts_.proc_kind;
            l.color = slot.task_color_base + c;
            // Matrix-free operators declare no matrix requirement: the
            // kernel is computed, so the x/y requirements shift down one.
            if (slot.has_matrix) {
                l.requirements.push_back(
                    {slot.mat_region, slot.mat_field, rt::Privilege::ReadOnly, kpiece});
            }
            l.requirements.push_back({in.region, fin, rt::Privilege::ReadOnly, xpiece});
            l.requirements.push_back({out.region, fout,
                                      write_mode ? rt::Privilege::WriteOnly
                                                 : rt::Privilege::Reduce,
                                      ypiece, rt::kSumReduction});
            l.cost = sim::KernelCosts::spmv(plan.nnz[static_cast<std::size_t>(c)],
                                            ypiece.volume(), plan.bytes_per_entry,
                                            plan.gather_bytes_per_entry, plan.bytes_per_row);
            if (rt_.functional()) {
                KDR_REQUIRE(slot.op != nullptr, "matmul: missing operator in functional mode");
                auto op = slot.op;
                const std::uint32_t xi = slot.has_matrix ? 1u : 0u;
                l.body = [op, kpiece, ypiece, transpose, write_mode,
                          xi](rt::TaskContext& ctx) {
                    auto x = ctx.accessor<const T>(xi);
                    auto y = ctx.accessor<T>(xi + 1);
                    if (write_mode) {
                        // β=0 fused: initialize this piece's output rows.
                        ypiece.for_each_interval([&](const Interval& iv) {
                            for (gidx i = iv.lo; i < iv.hi; ++i)
                                y[static_cast<std::size_t>(i)] = T{};
                        });
                    }
                    if (transpose) {
                        op->multiply_add_transpose_piece(kpiece, x, y);
                    } else {
                        op->multiply_add_piece(kpiece, x, y);
                    }
                };
            }
            rt_.launch(std::move(l));
        }
    }

    /// Shared machinery of copy/scal/axpy/xpay/zero: per-component,
    /// per-piece elementwise tasks. `per_element` cost is scaled by piece
    /// volume; `fn` applies one element.
    template <typename Fn>
    void elementwise(const char* name, VecId dst, std::optional<Scalar> alpha, VecId src,
                     Fn fn, bool dst_reads, sim::TaskCost per_element, bool unary = false) {
        const VecDesc& dv = vec(dst);
        const VecDesc& sv = vec(src);
        if (!unary) check_compatible(dv, sv, name);
        const auto& comps = components(dv.kind);
        for (std::size_t ci = 0; ci < comps.size(); ++ci) {
            const Component& dcomp = comps[ci];
            const Component& scomp = components(sv.kind)[ci];
            const rt::FieldId fd = dv.fields[ci];
            const rt::FieldId fs = sv.fields[ci];
            for (Color c = 0; c < dcomp.canonical.color_count(); ++c) {
                const IntervalSet piece = dcomp.canonical.piece(c);
                rt::TaskLaunch l;
                l.name = name;
                l.proc_kind = opts_.proc_kind;
                l.color = dcomp.color_base + c;
                l.requirements.push_back({dcomp.region, fd,
                                          dst_reads ? rt::Privilege::ReadWrite
                                                    : rt::Privilege::WriteOnly,
                                          piece});
                if (!unary) {
                    l.requirements.push_back(
                        {scomp.region, fs, rt::Privilege::ReadOnly, piece});
                }
                const double n = static_cast<double>(piece.volume());
                l.cost = {per_element.flops * n, per_element.bytes * n};
                if (alpha) l.scalar_deps.push_back(alpha->ready_time);
                if (rt_.functional()) {
                    const double a = alpha ? alpha->value : 0.0;
                    l.body = [piece, a, fn, unary](rt::TaskContext& ctx) {
                        auto d = ctx.accessor<T>(0);
                        if (unary) {
                            piece.for_each_interval([&](const Interval& iv) {
                                for (gidx i = iv.lo; i < iv.hi; ++i)
                                    fn(d[static_cast<std::size_t>(i)], T{}, a);
                            });
                        } else {
                            auto s = ctx.accessor<const T>(1);
                            piece.for_each_interval([&](const Interval& iv) {
                                for (gidx i = iv.lo; i < iv.hi; ++i)
                                    fn(d[static_cast<std::size_t>(i)],
                                       s[static_cast<std::size_t>(i)], a);
                            });
                        }
                    };
                }
                rt_.launch(std::move(l));
            }
        }
    }

    /// Shared machinery of axpy_dot / xpay_norm2: per-piece tasks that update
    /// dst in place and emit the piece's partial of dst·w, combined by the
    /// same scalar tree reduction as dot(). Reading w through its own
    /// requirement is skipped when it aliases dst or src (the common
    /// residual-norm case), which also drops the third memory stream from the
    /// roofline cost.
    template <typename Fn>
    [[nodiscard]] Scalar fused_update_reduce(const char* name, VecId dst, const Scalar& alpha,
                                             VecId src, VecId w, Fn update) {
        const obs::Span span = phase_span(name);
        const VecDesc& dv = vec(dst);
        const VecDesc& sv = vec(src);
        const VecDesc& wv = vec(w);
        check_compatible(dv, sv, name);
        check_compatible(dv, wv, name);
        double partial_sum = 0.0;
        double ready = 0.0;
        int piece_count = 0;
        const auto& comps = components(dv.kind);
        for (std::size_t ci = 0; ci < comps.size(); ++ci) {
            const Component& dcomp = comps[ci];
            const Component& scomp = components(sv.kind)[ci];
            const Component& wcomp = components(wv.kind)[ci];
            const rt::FieldId fd = dv.fields[ci];
            const rt::FieldId fs = sv.fields[ci];
            const rt::FieldId fw = wv.fields[ci];
            const bool w_alias_d = wcomp.region == dcomp.region && fw == fd;
            const bool w_alias_s =
                !w_alias_d && wcomp.region == scomp.region && fw == fs;
            const bool w_aliases = w_alias_d || w_alias_s;
            for (Color c = 0; c < dcomp.canonical.color_count(); ++c) {
                const IntervalSet piece = dcomp.canonical.piece(c);
                rt::TaskLaunch l;
                l.name = name;
                l.proc_kind = opts_.proc_kind;
                l.color = dcomp.color_base + c;
                l.requirements.push_back(
                    {dcomp.region, fd, rt::Privilege::ReadWrite, piece});
                l.requirements.push_back(
                    {scomp.region, fs, rt::Privilege::ReadOnly, piece});
                if (!w_aliases) {
                    l.requirements.push_back(
                        {wcomp.region, fw, rt::Privilege::ReadOnly, piece});
                }
                l.cost = sim::KernelCosts::fused_update_reduce(piece.volume(), !w_aliases);
                l.scalar_deps.push_back(alpha.ready_time);
                if (rt_.functional()) {
                    const double a = alpha.value;
                    l.body = [piece, a, update, w_alias_d,
                              w_alias_s](rt::TaskContext& ctx) {
                        auto d = ctx.accessor<T>(0);
                        auto s = ctx.accessor<const T>(1);
                        VecView<const T> wd;
                        if (!w_alias_d && !w_alias_s) wd = ctx.accessor<const T>(2);
                        double sum = 0.0;
                        piece.for_each_interval([&](const Interval& iv) {
                            for (gidx i = iv.lo; i < iv.hi; ++i) {
                                const auto k = static_cast<std::size_t>(i);
                                update(d[k], s[k], a);
                                // Read dst *after* the update, exactly as the
                                // aliased whole-field form did.
                                const T dval = d[k];
                                const T wval = w_alias_d ? dval
                                               : w_alias_s ? static_cast<T>(s[k])
                                                           : wd[k];
                                sum += static_cast<double>(dval * wval);
                            }
                        });
                        ctx.set_scalar(sum);
                    };
                }
                const Scalar part = rt_.launch(std::move(l));
                partial_sum += part.value;
                ready = std::max(ready, part.ready_time);
                ++piece_count;
            }
        }
        rt_.metrics()
            .counter("fused_kernel_launches", {{"kernel", name}})
            .add(piece_count);
        return {partial_sum, finish_global_reduction(piece_count, ready)};
    }

    rt::Runtime& rt_;
    PlannerOptions opts_;
    std::vector<Component> sol_;
    std::vector<Component> rhs_;
    std::vector<VecDesc> vecs_;
    std::vector<OperatorSlot> operators_;
    std::vector<OperatorSlot> preconditioners_;
    std::function<void(VecId, VecId)> matrix_free_psolve_;
    Color next_color_ = 0;
    /// Workspace pool per kind (SOL=0, RHS=1): every workspace ever created,
    /// in allocation order, plus how many are currently handed out.
    std::array<std::vector<VecId>, 2> ws_pool_;
    std::array<std::size_t, 2> ws_live_{};
    bool context_reuse_ = false;
    obs::Counter* global_sync_ctr_ = nullptr; // lazily bound "global_syncs"
    std::map<std::string, std::uint64_t> solver_trace_ids_;
    /// Multiply calls that read each (region, field) — the exchange-plan
    /// registration threshold (see ensure_exchange_plans).
    std::map<std::pair<rt::RegionId, rt::FieldId>, int> comm_uses_;
};

} // namespace kdr::core
