#pragma once

/// \file preconditioners.hpp
/// Preconditioning for multi-operator systems — the paper's §7 "future work"
/// direction ("extending classical preconditioning algorithms, such as
/// Jacobi preconditioning, to the context of multi-operator systems"),
/// implemented here as an extension.
///
/// * Jacobi: the inverse diagonal of A_total. For a multi-operator system the
///   diagonal of component pair (i, i) is the *sum of the diagonals of every
///   operator relating D_i to R_i* — aliased operators contribute once per
///   placement, matching eq. (8). Cross-component operators (i ≠ j) have no
///   diagonal; the result is the block-diagonal (component-wise) Jacobi
///   preconditioner, the natural multi-operator generalization.
/// * Polynomial (truncated Neumann series): a matrix-free preconditioner
///   built purely from planner operations — demonstrates the "matrix-free
///   task" preconditioning path (paper §5).

#include <map>
#include <memory>
#include <vector>

#include "core/planner.hpp"
#include "sparse/block_diagonal.hpp"
#include "sparse/dia.hpp"

namespace kdr::core {

/// Accumulate the diagonal of the (i, i) block of A_total across all
/// registered operators. Exposed separately for testing.
template <typename T>
std::vector<T> multi_operator_diagonal(
    const std::vector<std::shared_ptr<const LinearOperator<T>>>& ops) {
    KDR_REQUIRE(!ops.empty(), "multi_operator_diagonal: no operators");
    const gidx n = ops.front()->range().size();
    std::vector<T> diag(static_cast<std::size_t>(n), T{});
    for (const auto& op : ops) {
        KDR_REQUIRE(op->domain().size() == n && op->range().size() == n,
                    "multi_operator_diagonal: operators must be square over the same size");
        op->add_diagonal(diag);
    }
    return diag;
}

/// Build and register the Jacobi preconditioner for a square multi-operator
/// system: for each component pair (i, i), P_i = diag(Σ_ℓ A_ℓ)⁻¹.
/// `ops_by_component[i]` lists the operators registered on pair (i, i).
template <typename T>
void add_jacobi_preconditioner(
    Planner<T>& planner,
    const std::vector<std::vector<std::shared_ptr<const LinearOperator<T>>>>&
        ops_by_component) {
    KDR_REQUIRE(planner.is_square(), "Jacobi preconditioner requires a square system");
    KDR_REQUIRE(ops_by_component.size() == planner.sol_components(),
                "add_jacobi_preconditioner: need operator lists for every component");
    for (std::size_t i = 0; i < ops_by_component.size(); ++i) {
        const auto& ops = ops_by_component[i];
        KDR_REQUIRE(!ops.empty(), "add_jacobi_preconditioner: component ", i,
                    " has no diagonal-contributing operators");
        std::vector<T> diag = multi_operator_diagonal(ops);
        for (std::size_t k = 0; k < diag.size(); ++k) {
            KDR_REQUIRE(diag[k] != T{}, "Jacobi: zero diagonal entry at component ", i,
                        " index ", k);
            diag[k] = T{1} / diag[k];
        }
        // A diagonal matrix is the DIA format with the single offset {0}.
        auto inv_diag = std::make_shared<DiaMatrix<T>>(
            planner.sol_component(i).space, planner.rhs_component(i).space,
            std::vector<gidx>{0}, std::move(diag));
        planner.add_preconditioner(inv_diag, i, i);
    }
}

/// Block-Jacobi preconditioner at canonical-piece granularity: for each
/// component pair (i, i), the diagonal block of Σ_ℓ A_ℓ restricted to each
/// canonical piece is extracted, densely inverted, and the resulting
/// block-diagonal operator registered as the preconditioner. The natural
/// multi-operator extension of domain-decomposed Jacobi: blocks follow the
/// *partitioning strategy*, so re-partitioning re-shapes the preconditioner
/// with no code changes (P3). Dense inversion is O(b³) per block — intended
/// for modest piece sizes.
template <typename T>
void add_block_jacobi_preconditioner(
    Planner<T>& planner,
    const std::vector<std::vector<std::shared_ptr<const LinearOperator<T>>>>&
        ops_by_component) {
    KDR_REQUIRE(planner.is_square(), "block-Jacobi requires a square system");
    KDR_REQUIRE(ops_by_component.size() == planner.sol_components(),
                "add_block_jacobi_preconditioner: need operator lists for every component");
    for (std::size_t i = 0; i < ops_by_component.size(); ++i) {
        const auto& ops = ops_by_component[i];
        KDR_REQUIRE(!ops.empty(), "block-Jacobi: component ", i, " has no operators");
        const auto& comp = planner.sol_component(i);

        // Gather the component's entries once.
        std::map<std::pair<gidx, gidx>, T> entries;
        for (const auto& op : ops) {
            KDR_REQUIRE(op->domain().size() == comp.space.size() &&
                            op->range().size() == comp.space.size(),
                        "block-Jacobi: operators must be square over the component");
            for (const auto& t : op->to_triplets()) entries[{t.row, t.col}] += t.value;
        }

        std::vector<typename BlockDiagonalOperator<T>::Block> blocks;
        for (Color c = 0; c < comp.canonical.color_count(); ++c) {
            const IntervalSet& subset = comp.canonical.piece(c);
            const auto pts = subset.to_points();
            const gidx b = static_cast<gidx>(pts.size());
            std::vector<T> dense(static_cast<std::size_t>(b * b), T{});
            for (gidx r = 0; r < b; ++r) {
                for (gidx cc = 0; cc < b; ++cc) {
                    auto it = entries.find({pts[static_cast<std::size_t>(r)],
                                            pts[static_cast<std::size_t>(cc)]});
                    if (it != entries.end())
                        dense[static_cast<std::size_t>(r * b + cc)] = it->second;
                }
            }
            invert_dense(dense, b);
            blocks.push_back({subset, std::move(dense)});
        }
        auto inv = std::make_shared<BlockDiagonalOperator<T>>(comp.space, std::move(blocks));
        planner.add_preconditioner(inv, i, i);
    }
}

/// Matrix-free truncated-Neumann-series preconditioner:
///   P(r) ≈ ω Σ_{k=0}^{order} (I − ω A)^k r
/// for a damping factor ω. Installs a psolve callback that uses only planner
/// operations (matmul/axpy/copy), so it works unchanged on any storage
/// format or multi-operator structure.
template <typename T>
void add_neumann_preconditioner(Planner<T>& planner, int order, double omega) {
    KDR_REQUIRE(planner.is_square(), "Neumann preconditioner requires a square system");
    KDR_REQUIRE(order >= 0, "Neumann preconditioner: negative order");
    KDR_REQUIRE(omega > 0.0, "Neumann preconditioner: nonpositive damping");
    const VecId term = planner.allocate_workspace_vector();
    const VecId av = planner.allocate_workspace_vector(VecKind::RHS);
    planner.set_matrix_free_psolve([&planner, term, av, order, omega](VecId dst, VecId src) {
        // dst = omega * (src + (I - omega A) src + ...), built iteratively:
        // term_0 = src; term_{k+1} = term_k - omega A term_k; dst = Σ terms.
        planner.copy(term, src);
        planner.copy(dst, src);
        for (int k = 0; k < order; ++k) {
            planner.matmul(av, term);
            planner.axpy(term, make_scalar(-omega), av);
            planner.axpy(dst, make_scalar(1.0), term);
        }
        planner.scal(dst, make_scalar(omega));
    });
}

} // namespace kdr::core
