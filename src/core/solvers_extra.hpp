#pragma once

/// \file solvers_extra.hpp
/// Additional Krylov and stationary methods beyond the paper's core trio —
/// the "libraries of interchangeable KSMs" breadth §2.1 calls important
/// ("there is usually no principled approach besides trial and error to
/// know which KSM will perform best"). All share the drop-in Solver<T>
/// interface and touch only the planner API.
///
///  * CgsSolver        — Conjugate Gradient Squared (Sonneveld): transpose-
///                       free BiCG variant, two multiplies per step.
///  * PipelinedCgSolver — Ghysels-Vanroose pipelined CG: both reductions of
///                       an iteration are issued before the matvec, so their
///                       latency hides behind it. On a future-based runtime
///                       this overlap happens automatically — the method is
///                       the algorithmic twin of the paper's P1 claim.
///  * ChebyshevSolver  — Chebyshev semi-iteration for SPD systems with known
///                       spectral bounds; needs no inner products at all
///                       (communication-free iterations).
///  * RichardsonSolver — damped Richardson; the simplest smoother, also the
///                       baseline stationary method.
///
/// `estimate_lambda_max` provides a power-iteration bound for Chebyshev.

#include "core/solvers.hpp"

namespace kdr::core {

// ==================================================================== CGS

template <typename T = double>
class CgsSolver final : public Solver<T> {
public:
    explicit CgsSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "CGS requires a square system");
        this->arm_guards(planner_.runtime().functional());
        r_ = planner_.allocate_workspace_vector();
        rt_ = planner_.allocate_workspace_vector();
        u_ = planner_.allocate_workspace_vector();
        p_ = planner_.allocate_workspace_vector();
        q_ = planner_.allocate_workspace_vector();
        v_ = planner_.allocate_workspace_vector();
        t_ = planner_.allocate_workspace_vector();
        planner_.matmul(v_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), v_);
        planner_.copy(rt_, r_);
        planner_.zero(q_);
        planner_.zero(p_);
        rho_ = make_scalar(1.0);
        first_ = true;
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        const Scalar new_rho = planner_.dot(rt_, r_);
        if (this->nonfinite(new_rho.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(new_rho.value, 1.0)) {
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        if (first_) {
            planner_.copy(u_, r_);
            planner_.copy(p_, u_);
            first_ = false;
        } else {
            const Scalar beta = new_rho / rho_;
            // u = r + beta q
            planner_.copy(u_, r_);
            planner_.axpy(u_, beta, q_);
            // p = u + beta (q + beta p)
            planner_.xpay(p_, beta, q_); // p <- q + beta p
            planner_.xpay(p_, beta, u_); // p <- u + beta p  (= u + beta q + beta^2 p)
        }
        planner_.matmul(v_, p_);
        const Scalar rtv = planner_.dot(rt_, v_);
        if (this->vanished(rtv.value, new_rho.value) || this->nonfinite(rtv.value)) {
            this->fail(std::isfinite(rtv.value) ? SolveStatus::breakdown_pivot_zero
                                                : SolveStatus::breakdown_nonfinite);
            return;
        }
        const Scalar alpha = new_rho / rtv;
        // q = u - alpha v
        planner_.copy(q_, u_);
        planner_.axpy(q_, -alpha, v_);
        // t = u + q; x += alpha t; r -= alpha A t
        planner_.copy(t_, u_);
        planner_.axpy(t_, make_scalar(1.0), q_);
        planner_.axpy(Planner<T>::SOL, alpha, t_);
        planner_.matmul(v_, t_);
        planner_.axpy(r_, -alpha, v_);
        rho_ = new_rho;
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "cgs"; }

private:
    Planner<T>& planner_;
    VecId r_{}, rt_{}, u_{}, p_{}, q_{}, v_{}, t_{};
    Scalar rho_;
    Scalar res_;
    bool first_ = true;
};

// ============================================================ pipelined CG

template <typename T = double>
class PipelinedCgSolver final : public Solver<T> {
public:
    explicit PipelinedCgSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "pipelined CG requires a square system");
        this->arm_guards(planner_.runtime().functional());
        r_ = planner_.allocate_workspace_vector();
        w_ = planner_.allocate_workspace_vector();
        p_ = planner_.allocate_workspace_vector();
        s_ = planner_.allocate_workspace_vector();
        z_ = planner_.allocate_workspace_vector();
        q_ = planner_.allocate_workspace_vector();
        planner_.matmul(w_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), w_);
        planner_.matmul(w_, r_); // w = A r
        planner_.zero(p_);
        planner_.zero(s_);
        planner_.zero(z_);
        gamma_ = make_scalar(0.0);
        alpha_ = make_scalar(0.0);
        first_ = true;
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        // Both reductions issue back-to-back, then the matvec: the scalar
        // tree latency overlaps the SpMV in the task schedule.
        const Scalar gamma = planner_.dot(r_, r_);
        const Scalar delta = planner_.dot(w_, r_);
        if (this->nonfinite(gamma.value) || this->nonfinite(delta.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(gamma.value, 1.0)) {
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        planner_.matmul(q_, w_); // q = A w, overlapping the reductions
        Scalar beta = make_scalar(0.0);
        Scalar alpha;
        if (first_) {
            if (this->vanished(delta.value, gamma.value)) {
                this->fail(SolveStatus::breakdown_pivot_zero);
                return;
            }
            alpha = gamma / delta;
            first_ = false;
        } else {
            beta = gamma / gamma_;
            const Scalar pivot = delta - beta * gamma / alpha_;
            if (this->vanished(pivot.value, gamma.value) ||
                this->nonfinite(pivot.value)) {
                this->fail(std::isfinite(pivot.value)
                               ? SolveStatus::breakdown_pivot_zero
                               : SolveStatus::breakdown_nonfinite);
                return;
            }
            alpha = gamma / pivot;
        }
        // z = q + beta z; s = w + beta s; p = r + beta p.
        planner_.xpay(z_, beta, q_);
        planner_.xpay(s_, beta, w_);
        planner_.xpay(p_, beta, r_);
        planner_.axpy(Planner<T>::SOL, alpha, p_);
        planner_.axpy(r_, -alpha, s_);
        planner_.axpy(w_, -alpha, z_);
        gamma_ = gamma;
        alpha_ = alpha;
        res_ = gamma; // ‖r‖² from the just-computed reduction
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "pipecg"; }

private:
    Planner<T>& planner_;
    VecId r_{}, w_{}, p_{}, s_{}, z_{}, q_{};
    Scalar gamma_, alpha_;
    Scalar res_;
    bool first_ = true;
};

// ==================================================================== TFQMR

/// Transpose-free QMR [Freund 1993]: smooths CGS's erratic convergence with
/// a quasi-minimal-residual weighting, still without A^T. One matvec per
/// half-step (two per step(), like CGS/BiCGStab).
template <typename T = double>
class TfqmrSolver final : public Solver<T> {
public:
    explicit TfqmrSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "TFQMR requires a square system");
        this->arm_guards(planner_.runtime().functional());
        r_ = planner_.allocate_workspace_vector();
        rt_ = planner_.allocate_workspace_vector();
        w_ = planner_.allocate_workspace_vector();
        y1_ = planner_.allocate_workspace_vector();
        y2_ = planner_.allocate_workspace_vector();
        v_ = planner_.allocate_workspace_vector();
        d_ = planner_.allocate_workspace_vector();
        ay_ = planner_.allocate_workspace_vector();
        // r0 = b - A x0.
        planner_.matmul(v_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), v_);
        planner_.copy(rt_, r_);
        planner_.copy(w_, r_);
        planner_.copy(y1_, r_);
        planner_.matmul(v_, y1_);
        planner_.zero(d_);
        tau_ = sqrt(planner_.dot(r_, r_));
        theta_ = make_scalar(0.0);
        eta_ = make_scalar(0.0);
        rho_ = planner_.dot(rt_, r_);
        res_est_ = tau_;
        if (this->nonfinite(tau_.value)) this->fail(SolveStatus::breakdown_nonfinite);
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        if (this->vanished(rho_.value, 1.0)) {
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        const Scalar sigma = planner_.dot(rt_, v_);
        if (this->vanished(sigma.value, rho_.value) || this->nonfinite(sigma.value)) {
            this->fail(std::isfinite(sigma.value) ? SolveStatus::breakdown_pivot_zero
                                                  : SolveStatus::breakdown_nonfinite);
            return;
        }
        const Scalar alpha = rho_ / sigma;
        // y2 = y1 - alpha v.
        planner_.copy(y2_, y1_);
        planner_.axpy(y2_, -alpha, v_);
        for (int half = 0; half < 2; ++half) {
            const VecId y = half == 0 ? y1_ : y2_;
            // w -= alpha A y.
            planner_.matmul(ay_, y);
            planner_.axpy(w_, -alpha, ay_);
            // d = y + (theta^2 eta / alpha) d.
            const Scalar c = theta_ * theta_ * eta_ / alpha;
            planner_.xpay(d_, c, y);
            if (this->vanished(tau_.value, 1.0)) {
                // tau = 0 means the quasi-residual already vanished; dividing
                // by it would poison theta.
                this->fail(SolveStatus::breakdown_pivot_zero);
                return;
            }
            theta_ = sqrt(planner_.dot(w_, w_)) / tau_;
            if (this->nonfinite(theta_.value)) {
                this->fail(SolveStatus::breakdown_nonfinite);
                return;
            }
            const Scalar cfac =
                make_scalar(1.0) / sqrt(make_scalar(1.0) + theta_ * theta_);
            tau_ = tau_ * theta_ * cfac;
            eta_ = cfac * cfac * alpha;
            planner_.axpy(Planner<T>::SOL, eta_, d_);
            res_est_ = tau_;
        }
        const Scalar new_rho = planner_.dot(rt_, w_);
        if (this->nonfinite(new_rho.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        const Scalar beta = new_rho / rho_;
        // y1 = w + beta y2; v = A y1 + beta (A y2 + beta v).
        planner_.copy(y1_, w_);
        planner_.axpy(y1_, beta, y2_);
        planner_.matmul(ay_, y2_);
        planner_.xpay(v_, beta, ay_); // v <- A y2 + beta v
        planner_.matmul(ay_, y1_);
        planner_.xpay(v_, beta, ay_); // v <- A y1 + beta (A y2 + beta v)
        rho_ = new_rho;
    }

    /// Quasi-residual bound τ (an upper-bound surrogate for ‖r‖, standard
    /// TFQMR practice).
    [[nodiscard]] Scalar get_convergence_measure() const override { return res_est_; }
    [[nodiscard]] const char* name() const override { return "tfqmr"; }

private:
    Planner<T>& planner_;
    VecId r_{}, rt_{}, w_{}, y1_{}, y2_{}, v_{}, d_{}, ay_{};
    Scalar tau_, theta_, eta_, rho_;
    Scalar res_est_;
};

// ================================================================ Chebyshev

/// Chebyshev semi-iteration for SPD A with eigenvalues in [lambda_min,
/// lambda_max]. No inner products: every iteration is communication-free
/// apart from the halo exchange of the matvec. The residual norm is
/// refreshed only every `measure_every` steps (a dot is otherwise never
/// needed) — by default each step, to keep the Solver contract.
template <typename T = double>
class ChebyshevSolver final : public Solver<T> {
public:
    ChebyshevSolver(Planner<T>& planner, double lambda_min, double lambda_max,
                    int measure_every = 1)
        : planner_(planner), measure_every_(measure_every) {
        KDR_REQUIRE(planner_.is_square(), "Chebyshev requires a square system");
        this->arm_guards(planner_.runtime().functional());
        KDR_REQUIRE(0.0 < lambda_min && lambda_min < lambda_max,
                    "Chebyshev: need 0 < lambda_min < lambda_max, got [", lambda_min, ",",
                    lambda_max, "]");
        KDR_REQUIRE(measure_every_ >= 1, "Chebyshev: measure_every must be >= 1");
        theta_ = (lambda_max + lambda_min) / 2.0;
        delta_ = (lambda_max - lambda_min) / 2.0;
        sigma1_ = theta_ / delta_;
        rho_ = 1.0 / sigma1_;
        r_ = planner_.allocate_workspace_vector();
        p_ = planner_.allocate_workspace_vector();
        q_ = planner_.allocate_workspace_vector();
        planner_.matmul(q_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), q_);
        // d_0 = r_0 / θ (Saad, Alg. 12.1).
        planner_.copy(p_, r_);
        planner_.scal(p_, make_scalar(1.0 / theta_));
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
        k_ = 0;
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        // x += d;  r -= A d;  ρ' = 1/(2σ₁ − ρ);  d = ρ'ρ d + (2ρ'/δ) r.
        planner_.axpy(Planner<T>::SOL, make_scalar(1.0), p_);
        planner_.matmul(q_, p_);
        planner_.axpy(r_, make_scalar(-1.0), q_);
        const double rho_next = 1.0 / (2.0 * sigma1_ - rho_);
        planner_.scal(p_, make_scalar(rho_next * rho_));
        planner_.axpy(p_, make_scalar(2.0 * rho_next / delta_), r_);
        rho_ = rho_next;
        ++k_;
        if (k_ % measure_every_ == 0) {
            res_ = planner_.dot(r_, r_);
            if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
        }
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "chebyshev"; }

private:
    Planner<T>& planner_;
    int measure_every_;
    double theta_ = 0.0, delta_ = 0.0, sigma1_ = 0.0, rho_ = 0.0;
    VecId r_{}, p_{}, q_{};
    Scalar res_;
    int k_ = 0;
};

// ================================================================ Richardson

/// Damped Richardson iteration x ← x + ω r. Converges for SPD A when
/// 0 < ω < 2/λ_max; the classical smoother and simplest stationary method.
template <typename T = double>
class RichardsonSolver final : public Solver<T> {
public:
    RichardsonSolver(Planner<T>& planner, double omega)
        : planner_(planner), omega_(omega) {
        KDR_REQUIRE(planner_.is_square(), "Richardson requires a square system");
        this->arm_guards(planner_.runtime().functional());
        KDR_REQUIRE(omega_ > 0.0, "Richardson: damping must be positive");
        r_ = planner_.allocate_workspace_vector();
        q_ = planner_.allocate_workspace_vector();
        refresh_residual();
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        planner_.axpy(Planner<T>::SOL, make_scalar(omega_), r_);
        refresh_residual();
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "richardson"; }

private:
    void refresh_residual() {
        planner_.matmul(q_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), q_);
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
    }

    Planner<T>& planner_;
    double omega_;
    VecId r_{}, q_{};
    Scalar res_;
};

// ===================================================== spectral estimation

/// Power-iteration estimate of λ_max(A) using only planner operations; the
/// input for Chebyshev/Richardson parameter choices. Uses the RHS vector as
/// the starting direction (nonzero in any sensible problem).
template <typename T>
[[nodiscard]] double estimate_lambda_max(Planner<T>& planner, int iterations = 20) {
    KDR_REQUIRE(planner.is_square(), "estimate_lambda_max: square systems only");
    KDR_REQUIRE(iterations >= 1, "estimate_lambda_max: need at least one iteration");
    const VecId v = planner.allocate_workspace_vector();
    const VecId av = planner.allocate_workspace_vector();
    planner.copy(v, Planner<T>::RHS);
    const Scalar norm0 = sqrt(planner.dot(v, v));
    KDR_REQUIRE(norm0.value > 0.0, "estimate_lambda_max: zero starting vector");
    planner.scal(v, make_scalar(1.0) / norm0);
    double lambda = 0.0;
    for (int i = 0; i < iterations; ++i) {
        planner.matmul(av, v);
        lambda = planner.dot(v, av).value; // Rayleigh quotient
        const Scalar norm = sqrt(planner.dot(av, av));
        planner.copy(v, av);
        planner.scal(v, make_scalar(1.0) / norm);
    }
    return lambda;
}

} // namespace kdr::core
