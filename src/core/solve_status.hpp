#pragma once

/// \file solve_status.hpp
/// Classified solver outcomes. Krylov methods can terminate for many reasons
/// besides convergence: short recurrences break down when a pivot or inner
/// product vanishes, indefinite operators violate CG's assumptions, injected
/// faults can exhaust the runtime's retry budget mid-iteration. Every solver
/// run ends in exactly one of these states — never a silent NaN or a hang —
/// so recovery policies (core/recovery.hpp) and reports (obs) can act on it.

#include <cstdint>

namespace kdr::core {

enum class SolveStatus : std::uint8_t {
    running,             ///< iteration may continue
    converged,           ///< residual measure reached the tolerance
    max_iter,            ///< iteration budget exhausted without converging
    breakdown_rho_zero,  ///< Lanczos/BiCG rho = <rhat, r> vanished
    breakdown_omega_zero,///< BiCGStab stabilization denominator vanished
    breakdown_pivot_zero,///< recurrence pivot (pAp, H diagonal, ...) vanished
    breakdown_indefinite,///< CG pivot went negative: operator not SPD
    breakdown_nonfinite, ///< NaN/Inf appeared in a recurrence scalar
    diverged,            ///< residual grew past the divergence guard
    stagnated,           ///< no relative progress over the stagnation window
    fault_aborted,       ///< runtime retry budget exhausted (TaskFailedError)
};

[[nodiscard]] constexpr const char* to_string(SolveStatus s) noexcept {
    switch (s) {
        case SolveStatus::running: return "running";
        case SolveStatus::converged: return "converged";
        case SolveStatus::max_iter: return "max_iter";
        case SolveStatus::breakdown_rho_zero: return "breakdown_rho_zero";
        case SolveStatus::breakdown_omega_zero: return "breakdown_omega_zero";
        case SolveStatus::breakdown_pivot_zero: return "breakdown_pivot_zero";
        case SolveStatus::breakdown_indefinite: return "breakdown_indefinite";
        case SolveStatus::breakdown_nonfinite: return "breakdown_nonfinite";
        case SolveStatus::diverged: return "diverged";
        case SolveStatus::stagnated: return "stagnated";
        case SolveStatus::fault_aborted: return "fault_aborted";
    }
    return "unknown";
}

[[nodiscard]] constexpr bool is_breakdown(SolveStatus s) noexcept {
    return s == SolveStatus::breakdown_rho_zero || s == SolveStatus::breakdown_omega_zero ||
           s == SolveStatus::breakdown_pivot_zero ||
           s == SolveStatus::breakdown_indefinite || s == SolveStatus::breakdown_nonfinite;
}

/// Terminal states end the current solve attempt (a recovery controller may
/// still restart or fall back to another method).
[[nodiscard]] constexpr bool is_terminal(SolveStatus s) noexcept {
    return s != SolveStatus::running;
}

} // namespace kdr::core
