#pragma once

/// \file solver_registry.hpp
/// The single solver construction path. Every entry point — quickstart's
/// `-solver` flag, the service engine's request routing, recovery's fallback
/// selection, the bench harness — builds solvers through
/// `make_solver(name, planner, opts)` instead of naming solver classes;
/// adding a method means one `register_solver` call, visible to every layer
/// at once.
///
/// Names are parameterized specs, `base[/arg…]`:
///
///   cg | pcg | bicg | bicgstab | minres
///   gmres[/m]                       restart length (default 10)
///   ca_cg[/s[/basis]]               s-step block size, basis flavor
///   ca_gmres[/m[/s[/basis]]]
///
/// Unspecified CA parameters fall back to `CommonOptions::ca_s` /
/// `ca_basis` (the `-ca_s` / `-ca_basis` knobs), so a service request that
/// says just "ca_cg" picks up the deployment's configured block size. The
/// canonical name doubles as the registry-issued trace key: solvers built
/// from the same spec on a context-reusing planner share one pinned trace
/// id (see Planner::solver_trace_id), which is what makes service slots
/// replay each other's traces.

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/planner.hpp"
#include "core/solvers.hpp"
#include "core/solvers_ca.hpp"
#include "support/error.hpp"

namespace kdr::core {

/// Parameters a solver spec may leave open; filled from CommonOptions (the
/// -ca_s / -ca_basis knobs) or defaulted.
struct SolverParams {
    int gmres_restart = 10;
    int ca_s = 4;
    CaBasis ca_basis = CaBasis::monomial;

    [[nodiscard]] static SolverParams from(const CommonOptions& opts) {
        SolverParams p;
        p.ca_s = opts.ca_s;
        p.ca_basis = opts.ca_basis == "newton" ? CaBasis::newton : CaBasis::monomial;
        return p;
    }
};

namespace detail {

/// Split "base/arg1/arg2" into segments. Empty segments (leading, trailing,
/// or doubled slashes) are malformed: "ca_cg/4/" must not silently parse as
/// "ca_cg/4".
[[nodiscard]] inline std::vector<std::string> split_spec(const std::string& name) {
    std::vector<std::string> out;
    std::string seg;
    std::istringstream in(name);
    while (std::getline(in, seg, '/')) out.push_back(seg);
    if (!name.empty() && name.back() == '/') out.emplace_back();
    for (const std::string& s : out) {
        KDR_REQUIRE(!s.empty(), "solver spec: empty segment in '", name, "'");
    }
    return out;
}

[[nodiscard]] inline int parse_int_arg(const std::string& s, const char* what) {
    try {
        std::size_t pos = 0;
        const int v = std::stoi(s, &pos);
        KDR_REQUIRE(pos == s.size(), what, ": bad integer '", s, "'");
        return v;
    } catch (const Error&) {
        throw;
    } catch (const std::exception&) {
        KDR_REQUIRE(false, what, ": bad integer '", s, "'");
        return 0; // unreachable
    }
}

[[nodiscard]] inline CaBasis parse_basis_arg(const std::string& s) {
    if (s == "monomial") return CaBasis::monomial;
    if (s == "newton") return CaBasis::newton;
    KDR_REQUIRE(false, "solver spec: basis must be monomial or newton, got '", s, "'");
    return CaBasis::monomial; // unreachable
}

} // namespace detail

/// Registry mapping base solver names to builders. Extensible: layers (or
/// tests) may register additional methods; the built-ins are pre-registered.
template <typename T = double>
class SolverRegistry {
public:
    /// A builder receives the planner, the spec's arguments (segments after
    /// the base name), and the fallback parameters.
    using Builder = std::function<std::unique_ptr<Solver<T>>(
        Planner<T>&, const std::vector<std::string>&, const SolverParams&)>;

    [[nodiscard]] static SolverRegistry& instance() {
        static SolverRegistry reg = make_builtin();
        return reg;
    }

    void register_solver(const std::string& base, Builder builder) {
        KDR_REQUIRE(!base.empty() && base.find('/') == std::string::npos,
                    "register_solver: base name must be non-empty and '/'-free");
        builders_[base] = std::move(builder);
    }

    [[nodiscard]] bool known(const std::string& name) const {
        try {
            const std::vector<std::string> spec = detail::split_spec(name);
            return !spec.empty() && builders_.count(spec[0]) != 0;
        } catch (const Error&) {
            return false; // malformed spec (empty segment) — not a known solver
        }
    }

    [[nodiscard]] std::vector<std::string> names() const {
        std::vector<std::string> out;
        out.reserve(builders_.size());
        for (const auto& [k, v] : builders_) out.push_back(k);
        return out;
    }

    [[nodiscard]] std::unique_ptr<Solver<T>> build(const std::string& name,
                                                   Planner<T>& planner,
                                                   const SolverParams& params) const {
        const std::vector<std::string> spec = detail::split_spec(name);
        KDR_REQUIRE(!spec.empty(), "make_solver: empty solver name");
        const auto it = builders_.find(spec[0]);
        if (it == builders_.end()) {
            std::string all;
            for (const auto& [k, v] : builders_) {
                if (!all.empty()) all += ", ";
                all += k;
            }
            KDR_REQUIRE(false, "make_solver: unknown solver '", name,
                        "' (known: ", all, ")");
        }
        return it->second(
            planner, std::vector<std::string>(spec.begin() + 1, spec.end()), params);
    }

private:
    [[nodiscard]] static SolverRegistry make_builtin() {
        SolverRegistry reg;
        const auto no_args = [](const char* base, const std::vector<std::string>& args) {
            KDR_REQUIRE(args.empty(), "solver spec: '", base, "' takes no arguments");
        };
        reg.builders_["cg"] = [no_args](Planner<T>& p, const std::vector<std::string>& a,
                                        const SolverParams&) {
            no_args("cg", a);
            return std::make_unique<CgSolver<T>>(p);
        };
        reg.builders_["pcg"] = [no_args](Planner<T>& p, const std::vector<std::string>& a,
                                         const SolverParams&) {
            no_args("pcg", a);
            return std::make_unique<PcgSolver<T>>(p);
        };
        reg.builders_["bicg"] = [no_args](Planner<T>& p, const std::vector<std::string>& a,
                                          const SolverParams&) {
            no_args("bicg", a);
            return std::make_unique<BiCgSolver<T>>(p);
        };
        reg.builders_["bicgstab"] = [no_args](Planner<T>& p,
                                              const std::vector<std::string>& a,
                                              const SolverParams&) {
            no_args("bicgstab", a);
            return std::make_unique<BiCgStabSolver<T>>(p);
        };
        reg.builders_["minres"] = [no_args](Planner<T>& p,
                                            const std::vector<std::string>& a,
                                            const SolverParams&) {
            no_args("minres", a);
            return std::make_unique<MinresSolver<T>>(p);
        };
        reg.builders_["gmres"] = [](Planner<T>& p, const std::vector<std::string>& a,
                                    const SolverParams& params) {
            KDR_REQUIRE(a.size() <= 1, "solver spec: gmres takes at most gmres/<m>");
            const int m = a.empty() ? params.gmres_restart
                                    : detail::parse_int_arg(a[0], "gmres restart");
            return std::make_unique<GmresSolver<T>>(p, m);
        };
        reg.builders_["ca_cg"] = [](Planner<T>& p, const std::vector<std::string>& a,
                                    const SolverParams& params) {
            KDR_REQUIRE(a.size() <= 2,
                        "solver spec: ca_cg takes at most ca_cg/<s>/<basis>");
            const int s = a.empty() ? params.ca_s
                                    : detail::parse_int_arg(a[0], "ca_cg block size");
            const CaBasis basis =
                a.size() >= 2 ? detail::parse_basis_arg(a[1]) : params.ca_basis;
            return std::make_unique<CaCgSolver<T>>(p, s, basis);
        };
        reg.builders_["ca_gmres"] = [](Planner<T>& p, const std::vector<std::string>& a,
                                       const SolverParams& params) {
            KDR_REQUIRE(a.size() <= 3,
                        "solver spec: ca_gmres takes at most ca_gmres/<m>/<s>/<basis>");
            const int m = a.empty() ? params.gmres_restart
                                    : detail::parse_int_arg(a[0], "ca_gmres restart");
            const int s = a.size() >= 2 ? detail::parse_int_arg(a[1], "ca_gmres block size")
                                        : params.ca_s;
            const CaBasis basis =
                a.size() >= 3 ? detail::parse_basis_arg(a[2]) : params.ca_basis;
            return std::make_unique<CaGmresSolver<T>>(p, m, s, basis);
        };
        return reg;
    }

    std::map<std::string, Builder> builders_;
};

/// Build a solver from its spec — THE construction path for every layer.
template <typename T = double>
[[nodiscard]] std::unique_ptr<Solver<T>> make_solver(const std::string& name,
                                                     Planner<T>& planner,
                                                     const SolverParams& params = {}) {
    return SolverRegistry<T>::instance().build(name, planner, params);
}

/// Convenience overload: CA parameters from the option surface.
template <typename T = double>
[[nodiscard]] std::unique_ptr<Solver<T>> make_solver(const std::string& name,
                                                     Planner<T>& planner,
                                                     const CommonOptions& opts) {
    return SolverRegistry<T>::instance().build(name, planner, SolverParams::from(opts));
}

/// A reusable factory for the recovery layer's rebuild-on-restart loop and
/// the service engine's per-request construction.
template <typename T = double>
[[nodiscard]] std::function<std::unique_ptr<Solver<T>>(Planner<T>&)>
make_solver_factory(std::string name, SolverParams params = {}) {
    // Fail at factory-construction time, not first use: a bad spec inside a
    // recovery fallback would otherwise only surface mid-solve.
    KDR_REQUIRE(SolverRegistry<T>::instance().known(name),
                "make_solver_factory: unknown or malformed solver spec '", name, "'");
    return [name = std::move(name), params](Planner<T>& planner) {
        return make_solver<T>(name, planner, params);
    };
}

/// True when `name` parses to a registered solver base.
template <typename T = double>
[[nodiscard]] bool is_known_solver(const std::string& name) {
    return SolverRegistry<T>::instance().known(name);
}

} // namespace kdr::core
