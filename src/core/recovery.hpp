#pragma once

/// \file recovery.hpp
/// Policy-driven solver recovery on top of the classified SolveStatus layer:
///
///  * periodic lightweight checkpoints of the iterate (one planner copy of
///    SOL into a workspace vector — no matrix or basis state is saved, since
///    every Krylov method here can cold-start from an iterate);
///  * restart-from-checkpoint when an attempt ends in breakdown, divergence,
///    stagnation, or a fault-aborted task (bounded by max_restarts) — except
///    when the rerun would provably be identical (numerical failure, attempt
///    started at the checkpoint, no fault since), which escalates directly;
///  * fallback switching to a second, more robust method (typically GMRES
///    for a breakdown-prone short-recurrence method) once the restart budget
///    is spent, with a fresh restart budget of its own.
///
/// The controller is solver-agnostic: attempts are built through factories,
/// so it composes with any Solver<T>. Recovery actions are published as
/// counters (solver_checkpoints / restores / restarts / fallbacks) in the
/// runtime's metrics registry, which build_solve_report folds into the
/// report's fault block.

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/planner.hpp"
#include "core/solvers.hpp"
#include "obs/report.hpp"

namespace kdr::core {

struct RecoveryOptions {
    /// Checkpoint the iterate after this many consecutive healthy iterations.
    int checkpoint_every = 25;
    /// Restart-from-checkpoint budget per method.
    int max_restarts = 2;
    /// How many times the controller may switch to the fallback factory.
    int max_fallbacks = 1;
    /// Guards applied to every attempt (divergence + stagnation windows).
    SolveOptions solve;
};

template <typename T>
using SolverFactory = std::function<std::unique_ptr<Solver<T>>(Planner<T>&)>;

/// Outcome of a recovered solve: final classification plus what the
/// controller had to do to get there. `iterations` counts successful solver
/// steps across all attempts (the shared budget).
struct SolveOutcome {
    SolveStatus status = SolveStatus::running;
    int iterations = 0;
    double residual = 0.0;
    int checkpoints = 0;
    int restores = 0;
    int restarts = 0;
    int fallbacks = 0;
    std::vector<obs::ConvergenceSample> history;
};

/// Drive `primary` to convergence with checkpoint/restart/fallback recovery.
/// Terminal outcomes are converged, max_iter, or — once every recovery
/// budget is exhausted — the last attempt's classification. A fault that
/// strikes outside a solver step (during a checkpoint copy, a restore, or an
/// attempt's setup) ends the run as fault_aborted: the controller cannot
/// retry work whose effects it cannot roll back itself.
template <typename T>
SolveOutcome solve_with_recovery(Planner<T>& planner, SolverFactory<T> primary, double tol,
                                 int max_iterations, const RecoveryOptions& opts = {},
                                 SolverFactory<T> fallback = {}) {
    KDR_REQUIRE(primary != nullptr, "solve_with_recovery: null primary factory");
    KDR_REQUIRE(opts.checkpoint_every >= 1,
                "solve_with_recovery: checkpoint_every must be >= 1");
    obs::Registry& metrics = planner.runtime().metrics();
    obs::Counter& ckpt_ctr = metrics.counter("solver_checkpoints");
    obs::Counter& restore_ctr = metrics.counter("solver_restores");
    obs::Counter& restart_ctr = metrics.counter("solver_restarts");
    obs::Counter& fallback_ctr = metrics.counter("solver_fallbacks");

    SolveOutcome out;
    std::unique_ptr<Solver<T>> solver;
    bool on_fallback = false;
    int restarts_used = 0;
    int fallbacks_used = 0;
    double best = 0.0; // attempt-scoped stagnation state
    int since_best = 0;
    obs::Counter& fault_ctr = metrics.counter("task_faults_injected");
    double faults_at_ckpt = 0.0;
    // True while the current attempt started exactly from the iterate now in
    // ckpt (set at build, cleared by a mid-attempt checkpoint). When it holds
    // and no fault has struck since the checkpoint, a restart would restore
    // the very iterate this attempt began from and deterministically replay
    // the failure — burning restart budget on a guaranteed-identical rerun.
    bool attempt_at_ckpt = false;

    auto build_attempt = [&] {
        // Destroy the failed attempt first: a solver abandoned mid-cycle
        // (GMRES) holds an open trace that must not capture the replacement's
        // setup launches.
        solver.reset();
        solver = on_fallback ? fallback(planner) : primary(planner);
        best = solver->get_convergence_measure().value;
        since_best = 0;
        faults_at_ckpt = fault_ctr.value();
        attempt_at_ckpt = true;
    };
    auto record = [&] {
        const Scalar m = solver->get_convergence_measure();
        out.history.push_back({out.iterations, m.value, m.ready_time});
    };

    VecId ckpt{};
    auto checkpoint = [&] {
        planner.copy(ckpt, Planner<T>::SOL);
        faults_at_ckpt = fault_ctr.value();
        attempt_at_ckpt = false; // ckpt is now ahead of the attempt's start
        ++out.checkpoints;
        ckpt_ctr.inc();
    };
    /// Restore + rebuild for another attempt; false when every budget is out.
    /// `identical_rerun` marks failures where restarting would provably
    /// replay the same trajectory — those escalate straight past the restart
    /// budget to the fallback (or to a terminal classification).
    auto try_recover = [&](bool identical_rerun) -> bool {
        if (!identical_rerun && restarts_used < opts.max_restarts) {
            ++restarts_used;
            ++out.restarts;
            restart_ctr.inc();
        } else if (fallback != nullptr && fallbacks_used < opts.max_fallbacks) {
            on_fallback = true;
            ++fallbacks_used;
            ++out.fallbacks;
            fallback_ctr.inc();
            restarts_used = 0; // the fallback gets its own restart budget
        } else {
            return false;
        }
        planner.copy(Planner<T>::SOL, ckpt);
        ++out.restores;
        restore_ctr.inc();
        build_attempt();
        return true;
    };

    try {
        ckpt = planner.allocate_workspace_vector();
        checkpoint();
        build_attempt();
        record();
        const double r0 = std::max(solver->get_convergence_measure().value, 0.0);
        int healthy_since_ckpt = 0;

        for (;;) {
            // Classify the current state (mirrors solve(), plus recovery).
            SolveStatus st = solver->status();
            const double r = solver->get_convergence_measure().value;
            out.residual = r;
            if (st == SolveStatus::running) {
                if (!std::isfinite(r)) {
                    st = SolveStatus::breakdown_nonfinite;
                } else if (r <= tol) {
                    solver->finalize();
                    st = solver->status() == SolveStatus::running ? SolveStatus::converged
                                                                  : solver->status();
                } else if (out.iterations >= max_iterations) {
                    solver->finalize();
                    st = SolveStatus::max_iter;
                } else if (r > opts.solve.divergence_factor * std::max(r0, 1.0)) {
                    st = SolveStatus::diverged;
                } else if (opts.solve.stagnation_window > 0) {
                    if (r < best * (1.0 - opts.solve.stagnation_rtol)) {
                        best = r;
                        since_best = 0;
                    } else if (++since_best >= opts.solve.stagnation_window) {
                        st = SolveStatus::stagnated;
                    }
                }
            }
            if (st != SolveStatus::running) {
                // A numerically-classified failure of an attempt that began
                // at the checkpoint and saw no fault since replays move for
                // move on restart — don't spend restarts on it.
                const bool identical_rerun =
                    attempt_at_ckpt && fault_ctr.value() == faults_at_ckpt;
                if (st == SolveStatus::converged || st == SolveStatus::max_iter ||
                    !try_recover(identical_rerun)) {
                    out.status = st;
                    return out;
                }
                healthy_since_ckpt = 0;
                record();
                continue;
            }

            try {
                solver->step();
            } catch (const rt::TaskFailedError&) {
                // The failed task's writes were never committed, but the
                // attempt's control state is suspect: restore and rebuild.
                // Faults are not deterministic across reruns, so a restart is
                // always worth a try here.
                if (!try_recover(/*identical_rerun=*/false)) {
                    out.status = SolveStatus::fault_aborted;
                    return out;
                }
                healthy_since_ckpt = 0;
                record();
                continue;
            }
            out.iterations += solver->iterations_per_step();
            record();
            // checkpoint_every counts iterations, not steps: an s-step solver
            // advances s per step, so the cadence scales with it and every
            // checkpoint lands on an s-block boundary by construction.
            healthy_since_ckpt += solver->iterations_per_step();
            if (solver->status() == SolveStatus::running &&
                std::isfinite(solver->get_convergence_measure().value) &&
                healthy_since_ckpt >= opts.checkpoint_every) {
                checkpoint();
                healthy_since_ckpt = 0;
            }
        }
    } catch (const rt::TaskFailedError&) {
        out.status = SolveStatus::fault_aborted;
        return out;
    }
}

} // namespace kdr::core
