#pragma once

/// \file monitor.hpp
/// Convergence monitoring: wraps any Solver and records, per iteration, the
/// reported residual norm and the virtual time at which it became known.
/// Gives applications the convergence-history view every production solver
/// library exposes (PETSc's KSPMonitor, Belos's StatusTest printouts) and
/// makes "residual vs virtual time" plots one call away.

#include <ostream>
#include <vector>

#include "core/solvers.hpp"
#include "obs/report.hpp"

namespace kdr::core {

template <typename T = double>
class SolverMonitor final : public Solver<T> {
public:
    struct Sample {
        int iteration = 0;
        double residual = 0.0;
        double virtual_time = 0.0; ///< when this residual's value was ready
    };

    explicit SolverMonitor(Solver<T>& inner) : inner_(inner) { record(); }

    void step() override {
        inner_.step();
        iteration_ += inner_.iterations_per_step();
        record();
    }

    void finalize() override { inner_.finalize(); }

    [[nodiscard]] Scalar get_convergence_measure() const override {
        return inner_.get_convergence_measure();
    }
    [[nodiscard]] SolveStatus status() const noexcept override { return inner_.status(); }
    [[nodiscard]] const char* name() const override { return inner_.name(); }
    [[nodiscard]] int iterations_per_step() const noexcept override {
        return inner_.iterations_per_step();
    }

    [[nodiscard]] const std::vector<Sample>& history() const noexcept { return history_; }

    /// Iterations needed to reduce the initial residual by `factor` (or -1).
    /// A zero initial residual means the system started converged: every
    /// reduction target is met at iteration 0.
    [[nodiscard]] int iterations_to_reduction(double factor) const {
        KDR_REQUIRE(factor > 0.0 && factor < 1.0,
                    "iterations_to_reduction: factor must be in (0,1)");
        if (history_.front().residual == 0.0) return 0;
        const double target = history_.front().residual * factor;
        for (const Sample& s : history_) {
            if (s.residual <= target) return s.iteration;
        }
        return -1;
    }

    /// Average convergence rate: geometric mean of per-iteration residual
    /// ratios over the recorded history. 0 for an already-converged start
    /// (zero initial residual — there is no decay to measure).
    [[nodiscard]] double average_convergence_rate() const {
        const double first = history_.front().residual;
        if (first == 0.0) return 0.0;
        KDR_REQUIRE(history_.size() >= 2, "average_convergence_rate: need >= 2 samples");
        const double last = history_.back().residual;
        return std::pow(last / first,
                        1.0 / static_cast<double>(history_.size() - 1));
    }

    /// History converted to solve-report samples
    /// (for rt::Runtime::build_solve_report).
    [[nodiscard]] std::vector<obs::ConvergenceSample> report_samples() const {
        std::vector<obs::ConvergenceSample> out;
        out.reserve(history_.size());
        for (const Sample& s : history_) {
            out.push_back({s.iteration, s.residual, s.virtual_time});
        }
        return out;
    }

    /// Print "iter residual virtual_ms" rows.
    void print_history(std::ostream& os, int every = 1) const {
        for (const Sample& s : history_) {
            if (s.iteration % every == 0) {
                os << s.iteration << " " << s.residual << " " << s.virtual_time * 1e3
                   << "\n";
            }
        }
    }

private:
    void record() {
        const Scalar m = inner_.get_convergence_measure();
        history_.push_back({iteration_, m.value, m.ready_time});
    }

    Solver<T>& inner_;
    int iteration_ = 0;
    std::vector<Sample> history_;
};

} // namespace kdr::core
