#pragma once

/// \file load_balancer.hpp
/// Thermodynamic dynamic load balancing (paper §6.3): every rebalance
/// period, each node i compares its recent per-iteration execution time T_i
/// to a reference T₀ (the time under average background load) and gives away
/// each matrix tile it owns with probability min(e^{β(T_i − T₀)}, 1). Each
/// tile has exactly two potential owners — the node owning its input domain
/// piece and the node owning its output piece — so the giveaway target is
/// uniquely determined and no global communication is involved.
///
/// `TileTableMapper` is the Legion-style mapper that routes matmul tasks to
/// the node currently owning their tile; everything else falls back to the
/// round-robin owner-computes convention.

#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"
#include "runtime/mapper.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace kdr::core {

/// One migratable matrix tile and its two legal owners.
struct Tile {
    std::size_t op_index = 0; ///< planner operator slot
    Color task_color = 0;     ///< color its matmul tasks carry
    int owner_a = 0;          ///< node owning the output piece
    int owner_b = 0;          ///< node owning the input piece
    int current = 0;          ///< current owner (must be owner_a or owner_b)

    [[nodiscard]] int other_owner() const { return current == owner_a ? owner_b : owner_a; }
};

/// Mapper routing tile-tagged task colors through a shared ownership table;
/// unknown colors use the default round-robin rule.
class TileTableMapper final : public rt::Mapper {
public:
    TileTableMapper(std::shared_ptr<const std::unordered_map<Color, int>> node_of_color,
                    sim::ProcKind kind)
        : table_(std::move(node_of_color)), kind_(kind) {
        KDR_REQUIRE(table_ != nullptr, "TileTableMapper: null table");
    }

    [[nodiscard]] sim::ProcId select_processor(const rt::TaskLaunch& launch,
                                               const sim::MachineDesc& machine) override {
        if (auto it = table_->find(launch.color); it != table_->end()) {
            return {it->second, kind_, 0};
        }
        return fallback_.select_processor(launch, machine);
    }

private:
    std::shared_ptr<const std::unordered_map<Color, int>> table_;
    sim::ProcKind kind_;
    rt::RoundRobinMapper fallback_;
};

/// The giveaway rule. β is in 1/seconds here (the paper quotes
/// β = 10⁻³ ms⁻¹ = 1 s⁻¹).
class ThermodynamicBalancer {
public:
    ThermodynamicBalancer(double beta_per_second, double reference_time_seconds,
                          std::uint64_t seed)
        : beta_(beta_per_second), t0_(reference_time_seconds), rng_(seed) {
        KDR_REQUIRE(beta_ > 0.0, "ThermodynamicBalancer: nonpositive beta");
        KDR_REQUIRE(t0_ > 0.0, "ThermodynamicBalancer: nonpositive reference time");
    }

    [[nodiscard]] double giveaway_probability(double node_time_seconds) const {
        if (node_time_seconds <= t0_) return 0.0;
        return std::min(std::exp(beta_ * (node_time_seconds - t0_)) - 1.0, 1.0);
    }

    /// Apply the rule to every tile given per-node times; mutates tile
    /// ownership and returns the number of tiles that moved.
    int rebalance(std::vector<Tile>& tiles, const std::vector<double>& node_times) {
        int moved = 0;
        for (Tile& tile : tiles) {
            const double t =
                node_times[static_cast<std::size_t>(tile.current)];
            if (rng_.uniform() < giveaway_probability(t)) {
                tile.current = tile.other_owner();
                ++moved;
            }
        }
        if (metrics_ != nullptr) {
            metrics_->counter("rebalance_rounds").inc();
            metrics_->counter("rebalance_migrations").add(static_cast<double>(moved));
        }
        return moved;
    }

    [[nodiscard]] double reference_time() const noexcept { return t0_; }

    /// Report rebalance rounds and tile migrations into `registry` (counters
    /// `rebalance_rounds` / `rebalance_migrations`); pass the runtime's
    /// metrics() so balancer activity lands in the same solve report.
    /// nullptr disables reporting.
    void set_metrics(obs::Registry* registry) noexcept { metrics_ = registry; }

private:
    double beta_;
    double t0_;
    Rng rng_;
    obs::Registry* metrics_ = nullptr;
};

} // namespace kdr::core
