#pragma once

/// \file scalar.hpp
/// Scalar futures with arithmetic (paper §4.1: "arithmetic operations on
/// scalars"). A Scalar pairs a value (available immediately — functional
/// execution is eager) with the virtual time it becomes available on the
/// machine. Arithmetic combines values and takes the max of ready times, so
/// solver control scalars (α = res / pᵀq, …) carry correct dependence times
/// into downstream axpy/xpay launches without any global synchronization —
/// the future-based alternative to a blocking MPI_Allreduce.

#include <cmath>

#include "runtime/types.hpp"

namespace kdr::core {

using Scalar = rt::FutureScalar;

[[nodiscard]] inline Scalar make_scalar(double v) { return {v, 0.0}; }

[[nodiscard]] inline Scalar operator+(const Scalar& a, const Scalar& b) {
    return {a.value + b.value, std::max(a.ready_time, b.ready_time)};
}
[[nodiscard]] inline Scalar operator-(const Scalar& a, const Scalar& b) {
    return {a.value - b.value, std::max(a.ready_time, b.ready_time)};
}
[[nodiscard]] inline Scalar operator*(const Scalar& a, const Scalar& b) {
    return {a.value * b.value, std::max(a.ready_time, b.ready_time)};
}
[[nodiscard]] inline Scalar operator/(const Scalar& a, const Scalar& b) {
    return {a.value / b.value, std::max(a.ready_time, b.ready_time)};
}
[[nodiscard]] inline Scalar operator-(const Scalar& a) { return {-a.value, a.ready_time}; }

[[nodiscard]] inline Scalar sqrt(const Scalar& a) {
    return {std::sqrt(a.value), a.ready_time};
}

} // namespace kdr::core
