#pragma once

/// \file solvers.hpp
/// Krylov subspace methods written against the planner interface (paper §5,
/// Fig 7): a solver is an object constructible from a Planner& that exposes
/// step() and get_convergence_measure(). Solver code never mentions storage
/// formats, component structure, partitions, or data movement — that is the
/// planner/solver split the paper's flexibility claims rest on.
///
/// Provided methods (paper §2.1): CG [Hestenes-Stiefel], preconditioned CG,
/// BiCG, BiCGStab [van der Vorst], restarted GMRES(m) [Saad-Schultz], and
/// MINRES [Paige-Saunders]. All share a drop-in interface.
///
/// Unlike the paper's Fig 7 listing (which assumes x₀ = 0), these
/// implementations form the true initial residual r₀ = b − A x₀, so nonzero
/// initial guesses work; with x₀ = 0 they reduce to the listing exactly.

#include <algorithm>
#include <cmath>
#include <exception>
#include <vector>

#include "core/planner.hpp"
#include "core/scalar.hpp"
#include "core/solve_status.hpp"
#include "obs/span.hpp"
#include "runtime/types.hpp"
#include "support/error.hpp"

namespace kdr::core {

namespace detail {

/// Breakdown guard: `denom` has vanished relative to `ref` (pass 1.0 for an
/// absolute test). Scale-aware so that tiny-but-meaningful pivots on
/// well-conditioned problems never trip it — only true (near-)zeros do,
/// which is what makes fault-rate-0 runs bitwise identical to the pre-guard
/// histories.
inline constexpr double kBreakdownTiny = 1e-30;
[[nodiscard]] inline bool vanished(double denom, double ref) noexcept {
    return std::abs(denom) <= kBreakdownTiny * std::max(1.0, std::abs(ref));
}

/// Trace id for a solver's iteration loop: allocated through the planner so a
/// reused service context can hand the same pinned id to every solver built
/// with the same `key` (shared-trace cache), 0 (= disabled) when the planner
/// has solver-loop tracing off.
template <typename T>
[[nodiscard]] std::uint64_t solver_trace_id(Planner<T>& planner, const std::string& key) {
    return planner.options().trace_solver_loops ? planner.solver_trace_id(key) : 0;
}

/// RAII for one trace instance around a solver step. Ends the trace on
/// normal exit; cancels it when unwinding, so a step that throws mid-launch
/// neither poisons the recorded trace nor leaves the runtime mid-trace.
/// Id 0 means tracing is disabled and the scope is a no-op.
class TraceScope {
public:
    TraceScope(rt::Runtime& rtm, std::uint64_t id)
        : rt_(rtm), id_(id), exceptions_(std::uncaught_exceptions()) {
        if (id_ != 0) rt_.begin_trace(id_);
    }
    ~TraceScope() {
        if (id_ == 0) return;
        if (std::uncaught_exceptions() > exceptions_) {
            rt_.cancel_trace();
        } else {
            rt_.end_trace();
        }
    }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

private:
    rt::Runtime& rt_;
    std::uint64_t id_;
    int exceptions_;
};

} // namespace detail

/// Common drop-in interface (paper §5: "a common interface that allows
/// drop-in replacement").
template <typename T = double>
class Solver {
public:
    virtual ~Solver() = default;

    /// Perform one iteration.
    virtual void step() = 0;

    /// Progress measure: current residual norm ‖b − A x‖ (a future).
    [[nodiscard]] virtual Scalar get_convergence_measure() const = 0;

    /// Flush any pending solution update (restarted methods accumulate the
    /// cycle's correction and apply it at restart boundaries; stopping
    /// mid-cycle requires this). Default: nothing pending.
    virtual void finalize() {}

    /// Classified outcome of the run so far: `running` while iteration may
    /// continue; any other value is terminal and makes step() a no-op.
    /// Breakdown detection sets this *before* applying an update driven by a
    /// vanished or non-finite scalar, so the iterate and the recorded history
    /// stay at the last healthy state.
    [[nodiscard]] virtual SolveStatus status() const noexcept { return status_; }

    [[nodiscard]] virtual const char* name() const = 0;

    /// Mathematical iterations advanced by one step() call. Classic solvers
    /// step one iteration at a time; s-step (communication-avoiding) solvers
    /// advance a whole s-block per step, and everything that counts
    /// iterations — recovery budgets, monitors, per-iteration timing —
    /// must scale by this instead of assuming 1. Checkpoints taken between
    /// steps therefore land on s-block boundaries by construction.
    [[nodiscard]] virtual int iterations_per_step() const noexcept { return 1; }

protected:
    /// Record a terminal status; the first terminal status wins.
    void fail(SolveStatus s) noexcept {
        if (status_ == SolveStatus::running) status_ = s;
    }

    /// Arm or disarm value-based breakdown classification. Timing-only
    /// (non-materializing) runtimes leave every scalar at 0.0 — or NaN where
    /// a host-side ratio divides 0 by 0 — so solvers disarm the guards there
    /// and step purely for the virtual-time schedule, exactly as before the
    /// breakdown layer existed. Solver constructors call
    /// `arm_guards(planner.runtime().functional())`.
    void arm_guards(bool on) noexcept { guards_ = on; }

    /// Guarded form of detail::vanished — always false while disarmed.
    [[nodiscard]] bool vanished(double denom, double ref) const noexcept {
        return guards_ && detail::vanished(denom, ref);
    }

    /// Guarded non-finiteness test — always false while disarmed.
    [[nodiscard]] bool nonfinite(double v) const noexcept {
        return guards_ && !std::isfinite(v);
    }

private:
    SolveStatus status_ = SolveStatus::running;
    bool guards_ = true;
};

/// Outcome of one solve() attempt.
struct SolveResult {
    SolveStatus status = SolveStatus::running;
    int iterations = 0;
    double residual = 0.0; ///< last convergence measure observed
};

/// Safety guards for the solve() driver beyond plain tolerance/budget.
struct SolveOptions {
    /// Classify as diverged once the measure exceeds this multiple of
    /// max(initial measure, 1).
    double divergence_factor = 1e8;
    /// Classify as stagnated after this many consecutive iterations without
    /// relative progress; 0 disables the guard.
    int stagnation_window = 0;
    double stagnation_rtol = 1e-12;
};

/// Drive a solver until it converges, exhausts `max_iterations`, breaks
/// down, diverges, stagnates, or a task under fault injection exhausts its
/// retry budget. Every run ends with a classified terminal status — never a
/// silent NaN, hang, or escaped TaskFailedError.
template <typename T>
SolveResult solve(Solver<T>& solver, double tol, int max_iterations,
                  const SolveOptions& opts = {}) {
    SolveResult out;
    // finalize() may itself launch tasks (GMRES applies the pending cycle
    // correction), so it can also hit the retry-budget wall.
    const auto finish = [&](SolveStatus s) {
        try {
            solver.finalize();
            out.status = s;
        } catch (const rt::TaskFailedError&) {
            out.status = SolveStatus::fault_aborted;
        }
    };
    double r0 = 0.0;
    double best = 0.0;
    int since_best = 0;
    // `it` counts iterations, not steps: an s-step solver advances
    // iterations_per_step() = s of them per step, so budgets stay comparable
    // across classic and communication-avoiding methods.
    for (int it = 0;; it += solver.iterations_per_step()) {
        out.iterations = it;
        if (solver.status() != SolveStatus::running) {
            out.status = solver.status();
            out.residual = solver.get_convergence_measure().value;
            return out;
        }
        const double r = solver.get_convergence_measure().value;
        out.residual = r;
        if (!std::isfinite(r)) {
            out.status = SolveStatus::breakdown_nonfinite;
            return out;
        }
        if (it == 0) best = r0 = r;
        if (r <= tol) {
            finish(SolveStatus::converged);
            return out;
        }
        if (it >= max_iterations) {
            finish(SolveStatus::max_iter);
            return out;
        }
        if (r > opts.divergence_factor * std::max(r0, 1.0)) {
            out.status = SolveStatus::diverged;
            return out;
        }
        if (opts.stagnation_window > 0) {
            if (r < best * (1.0 - opts.stagnation_rtol)) {
                best = r;
                since_best = 0;
            } else if (++since_best >= opts.stagnation_window) {
                finish(SolveStatus::stagnated);
                return out;
            }
        }
        try {
            solver.step();
        } catch (const rt::TaskFailedError&) {
            out.status = SolveStatus::fault_aborted;
            return out;
        }
    }
}

/// Back-compatible driver: iterations performed until the measure dropped
/// below `tol` (or the budget ran out / the attempt ended otherwise).
template <typename T>
int solve_to_tolerance(Solver<T>& solver, double tol, int max_iterations) {
    return solve(solver, tol, max_iterations).iterations;
}

// ===================================================================== CG

/// Conjugate gradients (paper Fig 7).
template <typename T = double>
class CgSolver final : public Solver<T> {
public:
    explicit CgSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "CG requires a square system");
        this->arm_guards(planner_.runtime().functional());
        const obs::Span span(planner_.runtime().spans(), "setup");
        p_ = planner_.allocate_workspace_vector();
        q_ = planner_.allocate_workspace_vector();
        r_ = planner_.allocate_workspace_vector();
        // r = b - A x0; p = r.
        planner_.matmul(q_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), q_);
        planner_.copy(p_, r_);
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
        trace_id_ = detail::solver_trace_id(planner_, "cg");
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        if (this->vanished(res_.value, 1.0)) {
            // ‖r‖² = 0: already at the exact solution; stepping on would
            // divide by it forming beta.
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        const detail::TraceScope trace(planner_.runtime(), trace_id_);
        planner_.matmul(q_, p_);
        const Scalar p_norm = planner_.dot(p_, q_);
        if (this->nonfinite(p_norm.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(p_norm.value, res_.value)) {
            this->fail(SolveStatus::breakdown_pivot_zero);
            return;
        }
        if (p_norm.value < 0.0) {
            // <p, A p> < 0: the operator is not SPD; CG's recurrence is void.
            this->fail(SolveStatus::breakdown_indefinite);
            return;
        }
        const Scalar alpha = res_ / p_norm;
        planner_.axpy(Planner<T>::SOL, alpha, p_);
        // r -= alpha q fused with the new ‖r‖² partial.
        const Scalar new_res = planner_.axpy_dot(r_, -alpha, q_, r_);
        if (this->nonfinite(new_res.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        planner_.xpay(p_, new_res / res_, r_);
        res_ = new_res;
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "cg"; }

private:
    Planner<T>& planner_;
    VecId p_{}, q_{}, r_{};
    Scalar res_; ///< squared residual, as in Fig 7
    std::uint64_t trace_id_ = 0;
};

// ====================================================== preconditioned CG

/// CG with a preconditioner applied through planner.psolve (the paper's §7
/// future-work direction, realized for multi-operator systems).
template <typename T = double>
class PcgSolver final : public Solver<T> {
public:
    explicit PcgSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "PCG requires a square system");
        this->arm_guards(planner_.runtime().functional());
        KDR_REQUIRE(planner_.has_preconditioner(), "PCG requires a preconditioner");
        const obs::Span span(planner_.runtime().spans(), "setup");
        p_ = planner_.allocate_workspace_vector();
        q_ = planner_.allocate_workspace_vector();
        r_ = planner_.allocate_workspace_vector();
        z_ = planner_.allocate_workspace_vector();
        planner_.matmul(q_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), q_);
        planner_.psolve(z_, r_);
        planner_.copy(p_, z_);
        rz_ = planner_.dot(r_, z_);
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value) || this->nonfinite(rz_.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
        }
        trace_id_ = detail::solver_trace_id(planner_, "pcg");
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        if (this->vanished(rz_.value, 1.0)) {
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        const detail::TraceScope trace(planner_.runtime(), trace_id_);
        planner_.matmul(q_, p_);
        const Scalar pq = planner_.dot(p_, q_);
        if (this->nonfinite(pq.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(pq.value, rz_.value)) {
            this->fail(SolveStatus::breakdown_pivot_zero);
            return;
        }
        if (pq.value < 0.0) {
            this->fail(SolveStatus::breakdown_indefinite);
            return;
        }
        const Scalar alpha = rz_ / pq;
        planner_.axpy(Planner<T>::SOL, alpha, p_);
        // r -= alpha q fused with ‖r‖² (hoisted ahead of psolve; r does not
        // change afterwards, so the measure is the same).
        res_ = planner_.axpy_dot(r_, -alpha, q_, r_);
        if (this->nonfinite(res_.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        planner_.psolve(z_, r_);
        const Scalar new_rz = planner_.dot(r_, z_);
        if (this->nonfinite(new_rz.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        planner_.xpay(p_, new_rz / rz_, z_);
        rz_ = new_rz;
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "pcg"; }

private:
    Planner<T>& planner_;
    VecId p_{}, q_{}, r_{}, z_{};
    Scalar rz_;
    Scalar res_;
    std::uint64_t trace_id_ = 0;
};

// ==================================================================== BiCG

/// Biconjugate gradients — exercises the adjoint multiply A^T v (paper §4.1
/// lists adjoint matrix-vector multiplication among the KSM operations).
template <typename T = double>
class BiCgSolver final : public Solver<T> {
public:
    explicit BiCgSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "BiCG requires a square system");
        this->arm_guards(planner_.runtime().functional());
        const obs::Span span(planner_.runtime().spans(), "setup");
        r_ = planner_.allocate_workspace_vector();
        rt_ = planner_.allocate_workspace_vector();
        p_ = planner_.allocate_workspace_vector();
        pt_ = planner_.allocate_workspace_vector();
        q_ = planner_.allocate_workspace_vector();
        qt_ = planner_.allocate_workspace_vector();
        planner_.matmul(q_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), q_);
        planner_.copy(rt_, r_); // shadow residual = r0
        planner_.copy(p_, r_);
        planner_.copy(pt_, rt_);
        rho_ = planner_.dot(rt_, r_);
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
        trace_id_ = detail::solver_trace_id(planner_, "bicg");
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        if (this->vanished(rho_.value, 1.0)) {
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        const detail::TraceScope trace(planner_.runtime(), trace_id_);
        planner_.matmul(q_, p_);
        planner_.matmul_transpose(qt_, pt_);
        const Scalar ptq = planner_.dot(pt_, q_);
        if (this->nonfinite(ptq.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(ptq.value, rho_.value)) {
            this->fail(SolveStatus::breakdown_pivot_zero);
            return;
        }
        const Scalar alpha = rho_ / ptq;
        planner_.axpy(Planner<T>::SOL, alpha, p_);
        planner_.axpy(r_, -alpha, q_);
        planner_.axpy(rt_, -alpha, qt_);
        const Scalar new_rho = planner_.dot(rt_, r_);
        if (this->nonfinite(new_rho.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        const Scalar beta = new_rho / rho_;
        planner_.xpay(p_, beta, r_);
        planner_.xpay(pt_, beta, rt_);
        rho_ = new_rho;
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "bicg"; }

private:
    Planner<T>& planner_;
    VecId r_{}, rt_{}, p_{}, pt_{}, q_{}, qt_{};
    Scalar rho_;
    Scalar res_;
    std::uint64_t trace_id_ = 0;
};

// ================================================================ BiCGStab

/// Stabilized biconjugate gradients [van der Vorst 1992].
template <typename T = double>
class BiCgStabSolver final : public Solver<T> {
public:
    explicit BiCgStabSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "BiCGStab requires a square system");
        this->arm_guards(planner_.runtime().functional());
        const obs::Span span(planner_.runtime().spans(), "setup");
        r_ = planner_.allocate_workspace_vector();
        rhat_ = planner_.allocate_workspace_vector();
        p_ = planner_.allocate_workspace_vector();
        v_ = planner_.allocate_workspace_vector();
        s_ = planner_.allocate_workspace_vector();
        t_ = planner_.allocate_workspace_vector();
        planner_.matmul(v_, Planner<T>::SOL);
        planner_.copy(r_, Planner<T>::RHS);
        planner_.axpy(r_, make_scalar(-1.0), v_);
        planner_.copy(rhat_, r_);
        planner_.zero(p_);
        planner_.zero(v_);
        rho_ = make_scalar(1.0);
        alpha_ = make_scalar(1.0);
        omega_ = make_scalar(1.0);
        res_ = planner_.dot(r_, r_);
        if (this->nonfinite(res_.value)) this->fail(SolveStatus::breakdown_nonfinite);
        trace_id_ = detail::solver_trace_id(planner_, "bicgstab");
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        const detail::TraceScope trace(planner_.runtime(), trace_id_);
        const Scalar new_rho = planner_.dot(rhat_, r_);
        if (this->nonfinite(new_rho.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(new_rho.value, 1.0)) {
            // <rhat, r> = 0: the BiCG recurrence underlying BiCGStab is lost.
            this->fail(SolveStatus::breakdown_rho_zero);
            return;
        }
        const Scalar beta = (new_rho / rho_) * (alpha_ / omega_);
        // p = r + beta (p - omega v)
        planner_.axpy(p_, -omega_, v_);
        planner_.xpay(p_, beta, r_);
        planner_.matmul(v_, p_);
        const Scalar rv = planner_.dot(rhat_, v_);
        if (this->nonfinite(rv.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(rv.value, new_rho.value)) {
            this->fail(SolveStatus::breakdown_pivot_zero);
            return;
        }
        alpha_ = new_rho / rv;
        // s = r - alpha v
        planner_.copy(s_, r_);
        planner_.axpy(s_, -alpha_, v_);
        planner_.matmul(t_, s_);
        const Scalar ts = planner_.dot(t_, s_);
        const Scalar tt = planner_.dot(t_, t_);
        if (this->nonfinite(tt.value) || this->nonfinite(ts.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        if (this->vanished(tt.value, 1.0)) {
            // t = A s ~ 0: either s itself vanished (the alpha half-step
            // already reached the solution) or A annihilates s. Keep the
            // half-step so the iterate retains that progress and expose
            // ‖s‖² as the measure; a vanished s is convergence, not
            // breakdown — the driver's tolerance check picks it up.
            planner_.axpy(Planner<T>::SOL, alpha_, p_);
            planner_.copy(r_, s_);
            res_ = planner_.dot(r_, r_);
            rho_ = new_rho;
            if (!this->vanished(res_.value, 1.0)) {
                this->fail(SolveStatus::breakdown_omega_zero);
            }
            return;
        }
        omega_ = ts / tt;
        if (this->vanished(omega_.value, 1.0)) {
            // omega = 0 stalls the stabilization step and poisons the next
            // beta; keep the alpha half-step, classify before the s-step.
            planner_.axpy(Planner<T>::SOL, alpha_, p_);
            planner_.copy(r_, s_);
            res_ = planner_.dot(r_, r_);
            rho_ = new_rho;
            this->fail(SolveStatus::breakdown_omega_zero);
            return;
        }
        planner_.axpy(Planner<T>::SOL, alpha_, p_);
        planner_.axpy(Planner<T>::SOL, omega_, s_);
        // r = s - omega t, fused with the new ‖r‖² partial.
        planner_.copy(r_, t_);
        const Scalar new_res = planner_.xpay_norm2(r_, -omega_, s_);
        if (this->nonfinite(new_res.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        rho_ = new_rho;
        res_ = new_res;
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return sqrt(res_); }
    [[nodiscard]] const char* name() const override { return "bicgstab"; }

private:
    Planner<T>& planner_;
    VecId r_{}, rhat_{}, p_{}, v_{}, s_{}, t_{};
    Scalar rho_, alpha_, omega_;
    Scalar res_;
    std::uint64_t trace_id_ = 0;
};

// ================================================================== GMRES

/// Restarted GMRES(m) with a static restart schedule — the paper benchmarks
/// GMRES(10) and notes PETSc is excluded from the comparison because its
/// dynamic restart policy short-circuits iterations (§6.1 footnote).
template <typename T = double>
class GmresSolver final : public Solver<T> {
public:
    explicit GmresSolver(Planner<T>& planner, int restart = 10)
        : planner_(planner), m_(restart) {
        KDR_REQUIRE(planner_.is_square(), "GMRES requires a square system");
        this->arm_guards(planner_.runtime().functional());
        KDR_REQUIRE(m_ >= 1, "GMRES restart length must be >= 1");
        const obs::Span span(planner_.runtime().spans(), "setup");
        for (int i = 0; i <= m_; ++i) v_.push_back(planner_.allocate_workspace_vector());
        w_ = planner_.allocate_workspace_vector();
        h_.assign(static_cast<std::size_t>(m_ + 1) * static_cast<std::size_t>(m_), {});
        cs_.assign(static_cast<std::size_t>(m_), {});
        sn_.assign(static_cast<std::size_t>(m_), {});
        g_.assign(static_cast<std::size_t>(m_ + 1), {});
        begin_cycle();
        // The restart length shapes the cycle's launch signature, so it is
        // part of the shared-trace key.
        trace_id_ = detail::solver_trace_id(planner_, "gmres/" + std::to_string(m_));
    }

    ~GmresSolver() override {
        // A cycle trace left open by an abandoned mid-cycle solve must not
        // outlive the solver.
        if (cycle_trace_open_) planner_.runtime().cancel_trace();
    }

    /// One Arnoldi iteration; restarts automatically after m of them. The
    /// trace unit is the whole restart cycle (m Arnoldi steps + the restart),
    /// since the Gram-Schmidt launch sequence varies within a cycle but
    /// repeats exactly across cycles.
    void step() override {
        if (this->status() != SolveStatus::running) return;
        if (trace_id_ != 0 && j_ == 0 && !cycle_trace_open_) {
            planner_.runtime().begin_trace(trace_id_);
            cycle_trace_open_ = true;
        }
        const std::size_t j = static_cast<std::size_t>(j_);
        planner_.matmul(w_, v_[j]);
        // Modified Gram-Schmidt.
        for (std::size_t i = 0; i <= j; ++i) {
            h(i, j) = planner_.dot(w_, v_[i]);
            planner_.axpy(w_, -h(i, j), v_[i]);
        }
        h(j + 1, j) = sqrt(planner_.dot(w_, w_));
        if (this->nonfinite(h(j + 1, j).value)) {
            abandon_cycle_trace();
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        // "Happy" breakdown: w already lies in the Krylov subspace, so the
        // exact solution is in reach. Skip the normalization (the quotient
        // would be 0/0) and let the rotations drive the residual to zero —
        // the driver then finalizes and classifies the run converged.
        const bool lucky = this->vanished(h(j + 1, j).value, res_norm_.value);
        if (lucky) {
            h(j + 1, j) = make_scalar(0.0);
        } else {
            planner_.copy(v_[j + 1], w_);
            planner_.scal(v_[j + 1], make_scalar(1.0) / h(j + 1, j));
        }
        // Apply accumulated Givens rotations to the new column.
        for (std::size_t i = 0; i < j; ++i) {
            const Scalar tmp = cs_[i] * h(i, j) + sn_[i] * h(i + 1, j);
            h(i + 1, j) = -sn_[i] * h(i, j) + cs_[i] * h(i + 1, j);
            h(i, j) = tmp;
        }
        // New rotation annihilating h(j+1, j).
        const Scalar denom = sqrt(h(j, j) * h(j, j) + h(j + 1, j) * h(j + 1, j));
        if (this->vanished(denom.value, 1.0) || this->nonfinite(denom.value)) {
            abandon_cycle_trace();
            this->fail(std::isfinite(denom.value) ? SolveStatus::breakdown_pivot_zero
                                                  : SolveStatus::breakdown_nonfinite);
            return;
        }
        cs_[j] = h(j, j) / denom;
        sn_[j] = h(j + 1, j) / denom;
        h(j, j) = cs_[j] * h(j, j) + sn_[j] * h(j + 1, j);
        h(j + 1, j) = make_scalar(0.0);
        g_[j + 1] = -sn_[j] * g_[j];
        g_[j] = cs_[j] * g_[j];
        res_norm_ = Scalar{std::abs(g_[j + 1].value), g_[j + 1].ready_time};
        ++j_;
        if (j_ == m_) {
            const obs::Span restart(planner_.runtime().spans(), "restart");
            update_solution(m_);
            begin_cycle();
            if (cycle_trace_open_) {
                planner_.runtime().end_trace();
                cycle_trace_open_ = false;
            }
        }
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return res_norm_; }
    [[nodiscard]] const char* name() const override { return "gmres"; }

    /// Apply the current cycle's partial correction (stop mid-cycle). A
    /// partial cycle never matches the recorded trace, so the open instance
    /// is cancelled rather than ended.
    void finalize() override {
        if (cycle_trace_open_) {
            planner_.runtime().cancel_trace();
            cycle_trace_open_ = false;
        }
        // A broken-down cycle's partial correction is contaminated; leave x
        // at the last healthy state (checkpoint/restart recovers from there).
        if (j_ > 0 && this->status() == SolveStatus::running) {
            const obs::Span restart(planner_.runtime().spans(), "restart");
            update_solution(j_);
            begin_cycle();
        }
    }

    [[nodiscard]] int restart_length() const noexcept { return m_; }

private:
    Scalar& h(std::size_t i, std::size_t j) {
        return h_[i * static_cast<std::size_t>(m_) + j];
    }

    void abandon_cycle_trace() {
        if (cycle_trace_open_) {
            planner_.runtime().cancel_trace();
            cycle_trace_open_ = false;
        }
    }

    void begin_cycle() {
        // r = b - A x; v0 = r / ||r||; g = ||r|| e1.
        planner_.matmul(w_, Planner<T>::SOL);
        planner_.copy(v_[0], Planner<T>::RHS);
        planner_.axpy(v_[0], make_scalar(-1.0), w_);
        const Scalar beta = sqrt(planner_.dot(v_[0], v_[0]));
        if (this->nonfinite(beta.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
        } else if (this->vanished(beta.value, 1.0)) {
            // Exact solution already: leave v0 unnormalized (0/0); the zero
            // residual below stops the driver before another step runs.
        } else {
            planner_.scal(v_[0], make_scalar(1.0) / beta);
        }
        for (auto& gi : g_) gi = make_scalar(0.0);
        g_[0] = beta;
        res_norm_ = beta;
        j_ = 0;
    }

    /// x += V_k y where H y = g (back substitution on host scalars). A
    /// vanished diagonal entry means the least-squares system is singular:
    /// classify and leave x at the last healthy state instead of applying a
    /// correction contaminated by the division.
    void update_solution(int k) {
        std::vector<Scalar> y(static_cast<std::size_t>(k));
        for (int i = k - 1; i >= 0; --i) {
            Scalar sum = g_[static_cast<std::size_t>(i)];
            for (int l = i + 1; l < k; ++l) {
                sum = sum - h(static_cast<std::size_t>(i), static_cast<std::size_t>(l)) *
                                y[static_cast<std::size_t>(l)];
            }
            const Scalar hii = h(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
            if (this->vanished(hii.value, 1.0) || this->nonfinite(hii.value)) {
                this->fail(std::isfinite(hii.value) ? SolveStatus::breakdown_pivot_zero
                                                    : SolveStatus::breakdown_nonfinite);
                return;
            }
            y[static_cast<std::size_t>(i)] = sum / hii;
        }
        for (int i = 0; i < k; ++i) {
            planner_.axpy(Planner<T>::SOL, y[static_cast<std::size_t>(i)],
                          v_[static_cast<std::size_t>(i)]);
        }
    }

    Planner<T>& planner_;
    int m_;
    int j_ = 0;
    std::vector<VecId> v_;
    VecId w_{};
    std::vector<Scalar> h_, cs_, sn_, g_;
    Scalar res_norm_;
    std::uint64_t trace_id_ = 0;
    bool cycle_trace_open_ = false;
};

// ================================================================== MINRES

/// Minimum residual method [Paige-Saunders 1975] for symmetric (possibly
/// indefinite) systems; Lanczos-based three-term recurrences.
template <typename T = double>
class MinresSolver final : public Solver<T> {
public:
    explicit MinresSolver(Planner<T>& planner) : planner_(planner) {
        KDR_REQUIRE(planner_.is_square(), "MINRES requires a square system");
        this->arm_guards(planner_.runtime().functional());
        const obs::Span span(planner_.runtime().spans(), "setup");
        v_prev_ = planner_.allocate_workspace_vector();
        v_ = planner_.allocate_workspace_vector();
        v_next_ = planner_.allocate_workspace_vector();
        w_prev_ = planner_.allocate_workspace_vector();
        w_ = planner_.allocate_workspace_vector();
        w_next_ = planner_.allocate_workspace_vector();
        // v1 = r0 / beta1.
        planner_.matmul(v_next_, Planner<T>::SOL);
        planner_.copy(v_, Planner<T>::RHS);
        planner_.axpy(v_, make_scalar(-1.0), v_next_);
        beta_ = sqrt(planner_.dot(v_, v_));
        if (this->nonfinite(beta_.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
        } else if (!this->vanished(beta_.value, 1.0)) {
            planner_.scal(v_, make_scalar(1.0) / beta_);
        } // else: zero initial residual — the driver stops before a step
        planner_.zero(v_prev_);
        planner_.zero(w_prev_);
        planner_.zero(w_);
        eta_ = beta_;
        gamma_prev_ = make_scalar(1.0);
        gamma_ = make_scalar(1.0);
        sigma_prev_ = make_scalar(0.0);
        sigma_ = make_scalar(0.0);
        res_norm_ = beta_;
        for (std::size_t k = 0; k < 3; ++k) {
            trace_ids_[k] = detail::solver_trace_id(planner_, "minres/" + std::to_string(k));
        }
    }

    void step() override {
        if (this->status() != SolveStatus::running) return;
        // The workspace rotation below permutes the vector ids with period 3,
        // so the launch signature repeats every third step: three rotating
        // traces, each replayed once per period.
        const detail::TraceScope trace(planner_.runtime(),
                                       trace_ids_[static_cast<std::size_t>(step_count_ % 3)]);
        ++step_count_;
        // Lanczos: v_next = A v - alpha v - beta v_prev.
        planner_.matmul(v_next_, v_);
        const Scalar alpha = planner_.dot(v_, v_next_);
        if (this->nonfinite(alpha.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        planner_.axpy(v_next_, -alpha, v_);
        planner_.axpy(v_next_, -beta_, v_prev_);
        Scalar beta_next = sqrt(planner_.dot(v_next_, v_next_));
        if (this->nonfinite(beta_next.value)) {
            this->fail(SolveStatus::breakdown_nonfinite);
            return;
        }
        // "Lucky" Lanczos termination: the Krylov space is exhausted and the
        // rotation below drives the residual to zero. Skip the 0/0 normalize.
        if (this->vanished(beta_next.value, res_norm_.value)) {
            beta_next = make_scalar(0.0);
        } else {
            planner_.scal(v_next_, make_scalar(1.0) / beta_next);
        }

        // QR via Givens rotations.
        const Scalar delta = gamma_ * alpha - gamma_prev_ * sigma_ * beta_;
        const Scalar rho1 = sqrt(delta * delta + beta_next * beta_next);
        if (this->vanished(rho1.value, 1.0) || this->nonfinite(rho1.value)) {
            this->fail(std::isfinite(rho1.value) ? SolveStatus::breakdown_pivot_zero
                                                 : SolveStatus::breakdown_nonfinite);
            return;
        }
        const Scalar rho2 = sigma_ * alpha + gamma_prev_ * gamma_ * beta_;
        const Scalar rho3 = sigma_prev_ * beta_;
        const Scalar gamma_next = delta / rho1;
        const Scalar sigma_next = beta_next / rho1;

        // w_next = (v - rho3 w_prev - rho2 w) / rho1.
        planner_.copy(w_next_, v_);
        planner_.axpy(w_next_, -rho3, w_prev_);
        planner_.axpy(w_next_, -rho2, w_);
        planner_.scal(w_next_, make_scalar(1.0) / rho1);

        planner_.axpy(Planner<T>::SOL, gamma_next * eta_, w_next_);
        res_norm_ = Scalar{std::abs((sigma_next * eta_).value),
                           std::max(sigma_next.ready_time, eta_.ready_time)};
        eta_ = -sigma_next * eta_;

        // Rotate workspaces (vec-id swaps; no data motion).
        std::swap(v_prev_, v_);
        std::swap(v_, v_next_);
        std::swap(w_prev_, w_);
        std::swap(w_, w_next_);
        gamma_prev_ = gamma_;
        gamma_ = gamma_next;
        sigma_prev_ = sigma_;
        sigma_ = sigma_next;
        beta_ = beta_next;
    }

    [[nodiscard]] Scalar get_convergence_measure() const override { return res_norm_; }
    [[nodiscard]] const char* name() const override { return "minres"; }

private:
    Planner<T>& planner_;
    VecId v_prev_{}, v_{}, v_next_{}, w_prev_{}, w_{}, w_next_{};
    Scalar beta_, eta_, gamma_prev_, gamma_, sigma_prev_, sigma_;
    Scalar res_norm_;
    std::uint64_t trace_ids_[3] = {0, 0, 0};
    int step_count_ = 0;
};

} // namespace kdr::core
