#include "mpisim/bsp.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "support/error.hpp"

namespace kdr::bsp {

BspWorld::BspWorld(sim::SimCluster& cluster, sim::ProcKind kind)
    : cluster_(cluster), kind_(kind) {
    const sim::MachineDesc& m = cluster.machine();
    nranks_ = kind == sim::ProcKind::GPU ? m.total_gpus() : m.nodes;
    KDR_REQUIRE(nranks_ > 0, "BspWorld: machine has no processors of the requested kind");
    compute_phase_ctr_ = &metrics_.counter("bsp_compute_phases");
    exchange_msg_ctr_ = &metrics_.counter("bsp_exchange_messages");
    exchange_bytes_ctr_ = &metrics_.counter("bsp_exchange_bytes");
    collective_ctr_ = &metrics_.counter("bsp_collectives");
}

sim::ProcId BspWorld::proc_of(int rank) const {
    KDR_REQUIRE(rank >= 0 && rank < nranks_, "BspWorld: rank ", rank, " out of range [0,",
                nranks_, ")");
    const sim::MachineDesc& m = cluster_.machine();
    if (kind_ == sim::ProcKind::GPU) {
        return {rank / m.gpus_per_node, sim::ProcKind::GPU, rank % m.gpus_per_node};
    }
    return {rank, sim::ProcKind::CPU, 0};
}

double BspWorld::compute_at(double start, const std::vector<sim::TaskCost>& per_rank,
                            double per_rank_overhead) {
    KDR_REQUIRE(static_cast<int>(per_rank.size()) == nranks_, "BspWorld: got ",
                per_rank.size(), " costs for ", nranks_, " ranks");
    compute_phase_ctr_->inc();
    obs::Profiler* prof = cluster_.profiler();
    double finish = start;
    for (int r = 0; r < nranks_; ++r) {
        const sim::ProcId p = proc_of(r);
        const sim::TaskCost& cost = per_rank[static_cast<std::size_t>(r)];
        const double finish_r = cluster_.exec(p, start, cost, per_rank_overhead);
        if (prof != nullptr) {
            const double d = cluster_.duration_of(p, cost) + per_rank_overhead;
            const int lane = p.kind == sim::ProcKind::GPU ? prof->lane_gpu(p.index)
                                                          : prof->lane_cpu();
            prof->record(p.node, lane, obs::EventCategory::Kernel, "bsp_compute",
                         finish_r - d, finish_r);
        }
        finish = std::max(finish, finish_r);
    }
    return finish;
}

double BspWorld::compute_uniform_at(double start, const sim::TaskCost& cost,
                                    double per_rank_overhead) {
    return compute_at(start, std::vector<sim::TaskCost>(static_cast<std::size_t>(nranks_), cost),
                      per_rank_overhead);
}

double BspWorld::exchange_at(double start, const std::vector<Message>& msgs) {
    double arrival = start;
    for (const Message& m : msgs) {
        const int src = node_of(m.src_rank);
        const int dst = node_of(m.dst_rank);
        arrival = std::max(arrival, cluster_.transfer(src, dst, start, m.bytes));
        comm_bytes_ += m.bytes;
        exchange_msg_ctr_->inc();
        exchange_bytes_ctr_->add(m.bytes);
    }
    return arrival;
}

double BspWorld::allreduce_at(double start) const {
    collective_ctr_->inc();
    const double hops = std::ceil(std::log2(std::max(2, nranks_)));
    const double done = start + 2.0 * hops * cluster_.machine().collective_hop_latency;
    if (obs::Profiler* prof = cluster_.profiler(); prof != nullptr) {
        // All ranks participate; the event lives on rank 0's collective lane.
        prof->record(0, prof->lane_collective(), obs::EventCategory::Allreduce, "allreduce",
                     start, done);
    }
    return done;
}

double BspWorld::barrier_at(double start) const {
    collective_ctr_->inc();
    const double hops = std::ceil(std::log2(std::max(2, nranks_)));
    const double done = start + hops * cluster_.machine().collective_hop_latency;
    if (obs::Profiler* prof = cluster_.profiler(); prof != nullptr) {
        prof->record(0, prof->lane_collective(), obs::EventCategory::Allreduce, "barrier",
                     start, done);
    }
    return done;
}

void BspWorld::advance_to(double t) {
    KDR_REQUIRE(t >= now_, "BspWorld: clock must not go backwards (", t, " < ", now_, ")");
    now_ = t;
}

void BspWorld::compute_phase(const std::vector<sim::TaskCost>& per_rank, double overhead) {
    advance_to(compute_at(now_, per_rank, overhead));
}

void BspWorld::compute_uniform_phase(const sim::TaskCost& cost, double overhead) {
    advance_to(compute_uniform_at(now_, cost, overhead));
}

void BspWorld::exchange_phase(const std::vector<Message>& msgs) {
    advance_to(exchange_at(now_, msgs));
}

void BspWorld::allreduce_phase() { advance_to(allreduce_at(now_)); }

void BspWorld::barrier_phase() { advance_to(barrier_at(now_)); }

} // namespace kdr::bsp
