#pragma once

/// \file bsp.hpp
/// Bulk-synchronous SPMD world on the simulated cluster — the programming
/// model of the baseline libraries (paper §2.2: "PETSc and Trilinos operate
/// in the bulk-synchronous MPI programming model").
///
/// Ranks map 1:1 onto processors of one kind (GPU ranks for the Fig 8
/// benchmarks: 4 ranks/node like the paper's jsrun lines). Time advances
/// phase-wise: a compute phase ends when the slowest rank finishes, a
/// collective costs O(log₂ P) tree latency, and an exchange phase completes
/// when the last message lands. There is no cross-phase overlap unless a
/// baseline explicitly composes `*_at` primitives (PETSc's MatMult overlaps
/// its local product with ghost communication; Tpetra's doImport blocks) —
/// the contrast with the task runtime's dependence-driven overlap is the
/// paper's P1.

#include <cmath>
#include <vector>

#include "obs/registry.hpp"
#include "simcluster/cluster.hpp"

namespace kdr::bsp {

struct Message {
    int src_rank = 0;
    int dst_rank = 0;
    double bytes = 0.0;
};

class BspWorld {
public:
    /// Ranks over all processors of `kind` (GPU: node-major over all GPUs;
    /// CPU: one rank per node).
    BspWorld(sim::SimCluster& cluster, sim::ProcKind kind);

    [[nodiscard]] int nranks() const noexcept { return nranks_; }
    [[nodiscard]] sim::ProcId proc_of(int rank) const;
    [[nodiscard]] int node_of(int rank) const { return proc_of(rank).node; }
    [[nodiscard]] double now() const noexcept { return now_; }
    [[nodiscard]] sim::SimCluster& cluster() noexcept { return cluster_; }
    [[nodiscard]] double comm_bytes() const noexcept { return comm_bytes_; }

    /// Aggregate telemetry of the BSP substrate: counters
    /// `bsp_compute_phases`, `bsp_exchange_messages`, `bsp_exchange_bytes`,
    /// and `bsp_collectives`.
    [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
    [[nodiscard]] const obs::Registry& metrics() const noexcept { return metrics_; }

    // ------------- explicit primitives (no clock advance) -------------
    /// Run `cost[r]` on every rank starting at `start`; returns slowest finish.
    double compute_at(double start, const std::vector<sim::TaskCost>& per_rank,
                      double per_rank_overhead);
    double compute_uniform_at(double start, const sim::TaskCost& cost,
                              double per_rank_overhead);
    /// Deliver all messages starting at `start`; returns last arrival.
    double exchange_at(double start, const std::vector<Message>& msgs);
    /// Tree allreduce of a scalar: 2·log₂(P) hop latencies.
    [[nodiscard]] double allreduce_at(double start) const;
    [[nodiscard]] double barrier_at(double start) const;

    void advance_to(double t);

    // ------------- phase wrappers (advance the clock) -------------
    void compute_phase(const std::vector<sim::TaskCost>& per_rank, double overhead);
    void compute_uniform_phase(const sim::TaskCost& cost, double overhead);
    void exchange_phase(const std::vector<Message>& msgs);
    void allreduce_phase();
    void barrier_phase();

private:
    sim::SimCluster& cluster_;
    sim::ProcKind kind_;
    int nranks_;
    double now_ = 0.0;
    double comm_bytes_ = 0.0;

    // Counter handles cached at construction; non-const pointees so const
    // query primitives (allreduce_at) can still count through them.
    obs::Registry metrics_;
    obs::Counter* compute_phase_ctr_ = nullptr;
    obs::Counter* exchange_msg_ctr_ = nullptr;
    obs::Counter* exchange_bytes_ctr_ = nullptr;
    obs::Counter* collective_ctr_ = nullptr;
};

} // namespace kdr::bsp
