#pragma once

/// \file ksp.hpp
/// Baseline Krylov solvers over the BSP engine — the "KSP"/"Belos" layer of
/// the PETSc- and Trilinos-like comparators (paper artifacts A₂/A₃). The
/// algebra matches the KDRSolvers implementations exactly; only the
/// execution substrate differs. GMRES comes in two restart policies:
/// `GmresStatic` (Trilinos/Belos and LegionSolvers: fixed GMRES(10)) and
/// `GmresDynamic` (PETSc: restart work shrinks as the inner iteration
/// progresses and convergence short-circuits restarts — the reason the paper
/// excludes PETSc from the GMRES comparison, §6.1 footnote 2).

#include <memory>
#include <vector>

#include "baselines/stencil_baseline.hpp"

namespace kdr::baselines {

enum class Method { CG, BiCGStab, GmresStatic, GmresDynamic };

[[nodiscard]] const char* method_name(Method m);

class KspSolver {
public:
    KspSolver(StencilBaseline& engine, Method method, int restart = 10);

    /// One Krylov iteration (GMRES: one Arnoldi step, restarting as needed).
    void step();

    /// Flush a restarted method's pending partial update (call on stop).
    void finalize();

    /// Residual norm ‖b − A x‖ as of the last completed step.
    [[nodiscard]] double residual_norm() const { return res_norm_; }

    [[nodiscard]] Method method() const noexcept { return method_; }
    [[nodiscard]] double now() const { return engine_.now(); }

private:
    void init_cg();
    void init_bicgstab();
    void begin_gmres_cycle();
    void step_cg();
    void step_bicgstab();
    void step_gmres();
    void gmres_update_solution(int k);

    double& h(int i, int j) {
        return h_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
                  static_cast<std::size_t>(j)];
    }

    StencilBaseline& engine_;
    Method method_;
    int m_; ///< restart length
    int j_ = 0;

    // CG / BiCGStab state.
    StencilBaseline::VecId p_{}, q_{}, r_{}, rhat_{}, v_{}, s_{}, t_{};
    double res2_ = 0.0; ///< squared residual (CG recurrence)
    double rho_ = 1.0, alpha_ = 1.0, omega_ = 1.0;

    // GMRES state.
    std::vector<StencilBaseline::VecId> basis_;
    StencilBaseline::VecId w_{};
    std::vector<double> h_, cs_, sn_, g_;
    double cycle_beta_ = 0.0; ///< ‖r‖ at the start of the current cycle

    double res_norm_ = 0.0;
};

} // namespace kdr::baselines
