#include "baselines/ksp.hpp"

#include <cmath>

#include "support/error.hpp"

namespace kdr::baselines {

const char* method_name(Method m) {
    switch (m) {
        case Method::CG: return "cg";
        case Method::BiCGStab: return "bicgstab";
        case Method::GmresStatic: return "gmres";
        case Method::GmresDynamic: return "gmres-dynamic";
    }
    KDR_UNREACHABLE("bad method");
}

KspSolver::KspSolver(StencilBaseline& engine, Method method, int restart)
    : engine_(engine), method_(method), m_(restart) {
    KDR_REQUIRE(m_ >= 1, "KspSolver: restart length must be >= 1");
    switch (method_) {
        case Method::CG: init_cg(); break;
        case Method::BiCGStab: init_bicgstab(); break;
        case Method::GmresStatic:
        case Method::GmresDynamic: {
            for (int i = 0; i <= m_; ++i) basis_.push_back(engine_.allocate_vector());
            w_ = engine_.allocate_vector();
            h_.assign(static_cast<std::size_t>(m_ + 1) * static_cast<std::size_t>(m_), 0.0);
            cs_.assign(static_cast<std::size_t>(m_), 0.0);
            sn_.assign(static_cast<std::size_t>(m_), 0.0);
            g_.assign(static_cast<std::size_t>(m_ + 1), 0.0);
            begin_gmres_cycle();
            break;
        }
    }
}

void KspSolver::finalize() {
    if ((method_ == Method::GmresStatic || method_ == Method::GmresDynamic) && j_ > 0) {
        gmres_update_solution(j_);
        begin_gmres_cycle();
    }
}

void KspSolver::step() {
    switch (method_) {
        case Method::CG: step_cg(); break;
        case Method::BiCGStab: step_bicgstab(); break;
        case Method::GmresStatic:
        case Method::GmresDynamic: step_gmres(); break;
    }
}

// -------------------------------------------------------------------- CG

void KspSolver::init_cg() {
    p_ = engine_.allocate_vector();
    q_ = engine_.allocate_vector();
    r_ = engine_.allocate_vector();
    engine_.matvec(q_, StencilBaseline::X);
    engine_.copy(r_, StencilBaseline::B);
    engine_.axpy(r_, -1.0, q_);
    engine_.copy(p_, r_);
    res2_ = engine_.dot(r_, r_);
    res_norm_ = std::sqrt(res2_);
}

void KspSolver::step_cg() {
    engine_.matvec(q_, p_);
    const double p_norm = engine_.dot(p_, q_);
    const double alpha = res2_ / p_norm;
    engine_.axpy(StencilBaseline::X, alpha, p_);
    engine_.axpy(r_, -alpha, q_);
    const double new_res = engine_.dot(r_, r_);
    engine_.xpay(p_, new_res / res2_, r_);
    res2_ = new_res;
    res_norm_ = std::sqrt(res2_);
}

// -------------------------------------------------------------- BiCGStab

void KspSolver::init_bicgstab() {
    r_ = engine_.allocate_vector();
    rhat_ = engine_.allocate_vector();
    p_ = engine_.allocate_vector();
    v_ = engine_.allocate_vector();
    s_ = engine_.allocate_vector();
    t_ = engine_.allocate_vector();
    engine_.matvec(v_, StencilBaseline::X);
    engine_.copy(r_, StencilBaseline::B);
    engine_.axpy(r_, -1.0, v_);
    engine_.copy(rhat_, r_);
    engine_.zero(p_);
    engine_.zero(v_);
    rho_ = alpha_ = omega_ = 1.0;
    res_norm_ = std::sqrt(engine_.dot(r_, r_));
}

void KspSolver::step_bicgstab() {
    const double new_rho = engine_.dot(rhat_, r_);
    const double beta = (new_rho / rho_) * (alpha_ / omega_);
    engine_.axpy(p_, -omega_, v_);
    engine_.xpay(p_, beta, r_);
    engine_.matvec(v_, p_);
    alpha_ = new_rho / engine_.dot(rhat_, v_);
    engine_.copy(s_, r_);
    engine_.axpy(s_, -alpha_, v_);
    engine_.matvec(t_, s_);
    omega_ = engine_.dot(t_, s_) / engine_.dot(t_, t_);
    engine_.axpy(StencilBaseline::X, alpha_, p_);
    engine_.axpy(StencilBaseline::X, omega_, s_);
    engine_.copy(r_, s_);
    engine_.axpy(r_, -omega_, t_);
    rho_ = new_rho;
    res_norm_ = std::sqrt(engine_.dot(r_, r_));
}

// ----------------------------------------------------------------- GMRES

void KspSolver::begin_gmres_cycle() {
    engine_.matvec(w_, StencilBaseline::X);
    engine_.copy(basis_[0], StencilBaseline::B);
    engine_.axpy(basis_[0], -1.0, w_);
    const double beta = std::sqrt(engine_.dot(basis_[0], basis_[0]));
    engine_.scal(basis_[0], beta > 0.0 ? 1.0 / beta : 0.0);
    std::fill(g_.begin(), g_.end(), 0.0);
    g_[0] = beta;
    cycle_beta_ = beta;
    res_norm_ = beta;
    j_ = 0;
}

void KspSolver::step_gmres() {
    const int j = j_;
    engine_.matvec(w_, basis_[static_cast<std::size_t>(j)]);
    for (int i = 0; i <= j; ++i) {
        h(i, j) = engine_.dot(w_, basis_[static_cast<std::size_t>(i)]);
        engine_.axpy(w_, -h(i, j), basis_[static_cast<std::size_t>(i)]);
    }
    h(j + 1, j) = std::sqrt(engine_.dot(w_, w_));
    engine_.copy(basis_[static_cast<std::size_t>(j + 1)], w_);
    engine_.scal(basis_[static_cast<std::size_t>(j + 1)],
                 h(j + 1, j) > 0.0 ? 1.0 / h(j + 1, j) : 0.0);
    for (int i = 0; i < j; ++i) {
        const double tmp = cs_[static_cast<std::size_t>(i)] * h(i, j) +
                           sn_[static_cast<std::size_t>(i)] * h(i + 1, j);
        h(i + 1, j) = -sn_[static_cast<std::size_t>(i)] * h(i, j) +
                      cs_[static_cast<std::size_t>(i)] * h(i + 1, j);
        h(i, j) = tmp;
    }
    const double denom = std::sqrt(h(j, j) * h(j, j) + h(j + 1, j) * h(j + 1, j));
    cs_[static_cast<std::size_t>(j)] = denom > 0.0 ? h(j, j) / denom : 1.0;
    sn_[static_cast<std::size_t>(j)] = denom > 0.0 ? h(j + 1, j) / denom : 0.0;
    h(j, j) = cs_[static_cast<std::size_t>(j)] * h(j, j) +
              sn_[static_cast<std::size_t>(j)] * h(j + 1, j);
    h(j + 1, j) = 0.0;
    g_[static_cast<std::size_t>(j + 1)] = -sn_[static_cast<std::size_t>(j)] *
                                          g_[static_cast<std::size_t>(j)];
    g_[static_cast<std::size_t>(j)] =
        cs_[static_cast<std::size_t>(j)] * g_[static_cast<std::size_t>(j)];
    res_norm_ = std::abs(g_[static_cast<std::size_t>(j + 1)]);
    ++j_;

    const bool restart_now =
        j_ == m_ ||
        // Dynamic policy: short-circuit the cycle once the projected residual
        // has dropped by 10x — PETSc-style early restart (modeled).
        (method_ == Method::GmresDynamic && res_norm_ < 0.1 * cycle_beta_ && j_ >= 2);
    if (restart_now) {
        gmres_update_solution(j_);
        begin_gmres_cycle();
    }
}

void KspSolver::gmres_update_solution(int k) {
    std::vector<double> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
        double sum = g_[static_cast<std::size_t>(i)];
        for (int l = i + 1; l < k; ++l) sum -= h(i, l) * y[static_cast<std::size_t>(l)];
        // In timing mode every dot product is zero, so the Hessenberg matrix
        // is singular by construction; only functional runs may flag it.
        KDR_REQUIRE(h(i, i) != 0.0 || !engine_.functional(),
                    "GMRES: singular Hessenberg diagonal");
        y[static_cast<std::size_t>(i)] = h(i, i) != 0.0 ? sum / h(i, i) : 0.0;
    }
    for (int i = 0; i < k; ++i) {
        engine_.axpy(StencilBaseline::X, y[static_cast<std::size_t>(i)],
                     basis_[static_cast<std::size_t>(i)]);
    }
}

} // namespace kdr::baselines
