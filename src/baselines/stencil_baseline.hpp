#pragma once

/// \file stencil_baseline.hpp
/// Distributed row-partitioned CSR solve engine in the bulk-synchronous
/// model — the computational substrate of the PETSc- and Trilinos-like
/// baselines. Mirrors the paper's benchmark ports (artifacts A₂/A₃): the
/// stencil system is generated in place, partitioned by contiguous row
/// blocks across ranks (one rank per GPU), and each solver operation maps to
/// BSP phases whose costs follow the library profile.
///
/// In functional mode the engine also carries global arrays and executes
/// every operation's real math (sequentially — virtual time is tracked by
/// the BSP world), so baseline solvers can be verified to converge
/// identically to the KDRSolvers ones.

#include <memory>
#include <vector>

#include "baselines/profile.hpp"
#include "mpisim/bsp.hpp"
#include "stencil/stencil.hpp"

namespace kdr::baselines {

class StencilBaseline {
public:
    using VecId = std::size_t;
    static constexpr VecId X = 0; ///< solution vector
    static constexpr VecId B = 1; ///< right-hand side

    StencilBaseline(bsp::BspWorld& world, stencil::Spec spec, Profile profile,
                    bool functional);

    [[nodiscard]] const Profile& profile() const noexcept { return profile_; }
    [[nodiscard]] const stencil::Spec& spec() const noexcept { return spec_; }
    [[nodiscard]] bool functional() const noexcept { return functional_; }
    [[nodiscard]] double now() const noexcept { return world_.now(); }
    [[nodiscard]] gidx unknowns() const noexcept { return n_; }

    /// Allocate another distributed vector; returns its id.
    VecId allocate_vector();

    /// Host access to a vector's global data (functional mode only).
    [[nodiscard]] std::vector<double>& data(VecId v);
    [[nodiscard]] const std::vector<double>& data(VecId v) const;

    // ---- distributed operations (advance the BSP clock) ----
    void copy(VecId dst, VecId src);
    void zero(VecId dst);
    void scal(VecId dst, double alpha);
    void axpy(VecId dst, double alpha, VecId src);
    void xpay(VecId dst, double alpha, VecId src);
    [[nodiscard]] double dot(VecId v, VecId w); ///< includes allreduce
    void matvec(VecId dst, VecId src);          ///< halo exchange + SpMV

    /// Total bytes sent over the network so far (halo traffic).
    [[nodiscard]] double comm_bytes() const { return world_.comm_bytes(); }

private:
    struct RankMeta {
        Interval rows;       ///< owned row range
        gidx nnz = 0;        ///< stored entries in owned rows
        gidx offdiag_nnz = 0;///< entries referencing ghost columns
        gidx ghost_elems = 0;///< vector elements received per halo exchange
    };

    [[nodiscard]] std::vector<sim::TaskCost> uniform_costs(double flops_per_elem,
                                                           double bytes_per_elem) const;

    bsp::BspWorld& world_;
    stencil::Spec spec_;
    Profile profile_;
    bool functional_;
    gidx n_;
    std::vector<RankMeta> ranks_;
    std::vector<bsp::Message> halo_msgs_;
    double max_stage_bytes_ = 0.0; ///< largest per-rank staged ghost volume

    std::unique_ptr<CsrMatrix<double>> matrix_; ///< functional mode only
    std::vector<std::vector<double>> vecs_;     ///< global data per vector id
};

} // namespace kdr::baselines
