#pragma once

/// \file profile.hpp
/// Behavioral profiles of the baseline libraries (paper §6.1 comparators).
/// Both baselines run the same roofline kernels on the same simulated
/// machine; they differ in the programming-model properties the paper (and
/// their own documentation) attribute to them:
///
///  PETSc (MatMPIAIJ + VecScatter):
///   * splits the local matrix into diagonal block A_d and off-diagonal
///     block B_o; MatMult overlaps the local product A_d·x with ghost
///     communication (VecScatterBegin/End), then applies B_o to the ghosts;
///   * ghost values are packed/unpacked through staging buffers and cross
///     the PCIe bus to the host for MPI (no GPUDirect in the modeled
///     configuration);
///   * every operation that feeds MPI synchronizes the device stream.
///
///  Trilinos (Tpetra::CrsMatrix + Import, Belos solvers):
///   * doImport is blocking: communication completes before the (fused)
///     SpMV begins — no overlap;
///   * the Import copies through pack/permute/unpack buffers (higher pack
///     traffic than PETSc's scatter);
///   * per-operation host dispatch is heavier (Teuchos/Kokkos layers).
///
/// Both use a disjoint row-based CSR partition, the only GPU layout PETSc
/// supports (paper §6.1).

#include <string>

namespace kdr::baselines {

struct Profile {
    std::string name;

    /// Host-side dispatch per vector operation (s).
    double host_op_overhead = 2.0e-6;
    /// Device-stream synchronization before MPI touches data (s).
    double sync_overhead = 8.0e-6;
    /// Bytes of pack+unpack traffic per ghost byte moved.
    double pack_factor = 2.0;
    /// Overlap the local SpMV with ghost communication?
    bool overlap_spmv = false;
    /// Route ghost data through host memory (PCIe both directions)?
    bool staged_halo = true;
    /// PCIe bandwidth used for staged halos (bytes/s).
    double pcie_bandwidth = 1.2e10;
    /// Apply the off-diagonal block as a separate pass (PETSc A_d/B_o split)?
    bool split_offdiag = false;

    static Profile petsc() {
        Profile p;
        p.name = "petsc";
        p.host_op_overhead = 2.0e-6;
        p.sync_overhead = 8.0e-6;
        p.pack_factor = 2.0;
        p.overlap_spmv = true;
        p.staged_halo = true;
        p.split_offdiag = true;
        return p;
    }

    static Profile trilinos() {
        Profile p;
        p.name = "trilinos";
        p.host_op_overhead = 4.0e-6;
        p.sync_overhead = 8.0e-6;
        p.pack_factor = 3.0;
        p.overlap_spmv = false;
        // The paper's Trilinos build forces managed/device allocation
        // (CUDA_MANAGED_FORCE_DEVICE_ALLOC=1), so ghosts cross the wire
        // without a host staging hop.
        p.staged_halo = false;
        p.split_offdiag = false;
        return p;
    }
};

} // namespace kdr::baselines
