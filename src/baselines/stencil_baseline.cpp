#include "baselines/stencil_baseline.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace kdr::baselines {

StencilBaseline::StencilBaseline(bsp::BspWorld& world, stencil::Spec spec, Profile profile,
                                 bool functional)
    : world_(world),
      spec_(spec),
      profile_(std::move(profile)),
      functional_(functional),
      n_(spec.unknowns()) {
    const int P = world_.nranks();
    const gidx bw = spec_.bandwidth();
    const double nnz_per_row = static_cast<double>(spec_.total_nnz()) / static_cast<double>(n_);

    // Contiguous equal row blocks, one per rank.
    ranks_.resize(static_cast<std::size_t>(P));
    gidx lo = 0;
    for (int r = 0; r < P; ++r) {
        const gidx len = n_ / P + (r < static_cast<int>(n_ % P) ? 1 : 0);
        RankMeta& m = ranks_[static_cast<std::size_t>(r)];
        m.rows = {lo, lo + len};
        m.nnz = static_cast<gidx>(nnz_per_row * static_cast<double>(len));
        // Off-diagonal entries: per nonzero linear offset o, the rows whose
        // neighbor r+o escapes the owned block (clipped to the global range).
        for (const auto& off : spec_.offsets()) {
            const gidx o = (off[0] * spec_.ny + off[1]) * spec_.nz + off[2];
            if (o == 0) continue;
            if (o > 0) {
                const gidx first = std::max(m.rows.lo, m.rows.hi - o);
                const gidx last = std::min(m.rows.hi, n_ - o);
                m.offdiag_nnz += std::max<gidx>(0, last - first);
            } else {
                const gidx first = std::max(m.rows.lo, -o);
                const gidx last = std::min(m.rows.hi, m.rows.lo - o);
                m.offdiag_nnz += std::max<gidx>(0, last - first);
            }
        }
        // Ghost elements: rows ± bandwidth, clipped (exact for blocks wider
        // than the stencil bandwidth — see stencil.hpp).
        m.ghost_elems = (m.rows.lo - std::max<gidx>(0, m.rows.lo - bw)) +
                        (std::min<gidx>(n_, m.rows.hi + bw) - m.rows.hi);
        lo += len;
    }

    // Halo message plan: for each rank, the overlap of its ghost ranges with
    // every other rank's owned rows.
    for (int r = 0; r < P; ++r) {
        const RankMeta& m = ranks_[static_cast<std::size_t>(r)];
        const IntervalSet ghosts = IntervalSet::from_intervals(
            {{std::max<gidx>(0, m.rows.lo - bw), m.rows.lo},
             {m.rows.hi, std::min<gidx>(n_, m.rows.hi + bw)}});
        for (int s = 0; s < P; ++s) {
            if (s == r) continue;
            const RankMeta& owner = ranks_[static_cast<std::size_t>(s)];
            const gidx overlap =
                ghosts.set_intersection(IntervalSet(owner.rows.lo, owner.rows.hi)).volume();
            if (overlap > 0) {
                halo_msgs_.push_back({s, r, static_cast<double>(overlap) * 8.0});
            }
        }
        max_stage_bytes_ =
            std::max(max_stage_bytes_, static_cast<double>(m.ghost_elems) * 8.0);
    }

    if (functional_) {
        const IndexSpace D = IndexSpace::create(n_, "baseline_D");
        const IndexSpace R = IndexSpace::create(n_, "baseline_R");
        matrix_ = std::make_unique<CsrMatrix<double>>(stencil::laplacian_csr(spec_, D, R));
    }
    vecs_.resize(2);
    if (functional_) {
        vecs_[X].assign(static_cast<std::size_t>(n_), 0.0);
        vecs_[B].assign(static_cast<std::size_t>(n_), 0.0);
    }
}

StencilBaseline::VecId StencilBaseline::allocate_vector() {
    vecs_.emplace_back();
    if (functional_) vecs_.back().assign(static_cast<std::size_t>(n_), 0.0);
    return vecs_.size() - 1;
}

std::vector<double>& StencilBaseline::data(VecId v) {
    KDR_REQUIRE(v < vecs_.size(), "StencilBaseline: unknown vector ", v);
    KDR_REQUIRE(functional_, "StencilBaseline: data access requires functional mode");
    return vecs_[v];
}

const std::vector<double>& StencilBaseline::data(VecId v) const {
    KDR_REQUIRE(v < vecs_.size(), "StencilBaseline: unknown vector ", v);
    KDR_REQUIRE(functional_, "StencilBaseline: data access requires functional mode");
    return vecs_[v];
}

std::vector<sim::TaskCost> StencilBaseline::uniform_costs(double flops_per_elem,
                                                          double bytes_per_elem) const {
    std::vector<sim::TaskCost> costs;
    costs.reserve(ranks_.size());
    for (const RankMeta& m : ranks_) {
        const double e = static_cast<double>(m.rows.size());
        costs.push_back({flops_per_elem * e, bytes_per_elem * e});
    }
    return costs;
}

void StencilBaseline::copy(VecId dst, VecId src) {
    world_.compute_phase(uniform_costs(0.0, 16.0), profile_.host_op_overhead);
    if (functional_) data(dst) = data(src);
}

void StencilBaseline::zero(VecId dst) {
    world_.compute_phase(uniform_costs(0.0, 8.0), profile_.host_op_overhead);
    if (functional_) std::fill(data(dst).begin(), data(dst).end(), 0.0);
}

void StencilBaseline::scal(VecId dst, double alpha) {
    world_.compute_phase(uniform_costs(1.0, 16.0), profile_.host_op_overhead);
    if (functional_) {
        for (double& x : data(dst)) x *= alpha;
    }
}

void StencilBaseline::axpy(VecId dst, double alpha, VecId src) {
    world_.compute_phase(uniform_costs(2.0, 24.0), profile_.host_op_overhead);
    if (functional_) {
        auto& d = data(dst);
        const auto& s = data(src);
        for (std::size_t i = 0; i < d.size(); ++i) d[i] += alpha * s[i];
    }
}

void StencilBaseline::xpay(VecId dst, double alpha, VecId src) {
    world_.compute_phase(uniform_costs(2.0, 24.0), profile_.host_op_overhead);
    if (functional_) {
        auto& d = data(dst);
        const auto& s = data(src);
        for (std::size_t i = 0; i < d.size(); ++i) d[i] = s[i] + alpha * d[i];
    }
}

double StencilBaseline::dot(VecId v, VecId w) {
    // Partial dot on each rank, stream sync, then a blocking allreduce.
    world_.compute_phase(uniform_costs(2.0, 16.0), profile_.host_op_overhead);
    world_.advance_to(world_.now() + profile_.sync_overhead);
    world_.allreduce_phase();
    if (!functional_) return 0.0;
    const auto& a = data(v);
    const auto& b = data(w);
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

void StencilBaseline::matvec(VecId dst, VecId src) {
    const double start = world_.now() + profile_.host_op_overhead;

    // 1. Pack ghost values into send buffers (GPU pass over ghost bytes),
    //    then synchronize the stream so MPI may read them.
    std::vector<sim::TaskCost> pack;
    pack.reserve(ranks_.size());
    for (const RankMeta& m : ranks_) {
        const double gb = static_cast<double>(m.ghost_elems) * 8.0;
        pack.push_back({0.0, profile_.pack_factor * gb});
    }
    double t = world_.compute_at(start, pack, 0.0);
    t += profile_.sync_overhead;

    // 2. Ghost exchange, optionally staged through host memory (PCIe down,
    //    wire, PCIe up). Staging is modeled as a uniform per-rank delay of
    //    the largest staged volume on each side of the wire. The D2H copy
    //    shares the device stream with subsequent kernels, so it delays the
    //    local product as well (no GPUDirect in the modeled configuration).
    double stage = 0.0;
    if (profile_.staged_halo) stage = max_stage_bytes_ / profile_.pcie_bandwidth + 1.0e-5;
    const double comm_done = world_.exchange_at(t + stage, halo_msgs_) + stage;

    // 3. SpMV. PETSc-style: the purely-local product overlaps the wire time
    //    of the exchange (VecScatterBegin / local MatMult / VecScatterEnd),
    //    then the off-diagonal block is applied to the arrived ghosts
    //    (a second, smaller pass that re-reads and re-writes the boundary
    //    rows of y). Trilinos-style: blocking import, then one fused SpMV.
    double finish;
    if (profile_.overlap_spmv) {
        std::vector<sim::TaskCost> local;
        std::vector<sim::TaskCost> offdiag;
        for (const RankMeta& m : ranks_) {
            const double loc_nnz = static_cast<double>(m.nnz - m.offdiag_nnz);
            const double off_nnz = static_cast<double>(m.offdiag_nnz);
            local.push_back(
                {2.0 * loc_nnz, 24.0 * loc_nnz + 24.0 * static_cast<double>(m.rows.size())});
            offdiag.push_back({2.0 * off_nnz, 24.0 * off_nnz + 16.0 * off_nnz});
        }
        const double local_done = world_.compute_at(t + stage, local, 0.0);
        finish = world_.compute_at(std::max(local_done, comm_done), offdiag, 0.0);
    } else {
        std::vector<sim::TaskCost> full;
        for (const RankMeta& m : ranks_) {
            const double nnz = static_cast<double>(m.nnz);
            full.push_back(
                {2.0 * nnz, 24.0 * nnz + 24.0 * static_cast<double>(m.rows.size())});
        }
        finish = world_.compute_at(comm_done, full, 0.0);
    }

    // 4. Unpack ghosts into the local vector image (already counted in the
    //    pack factor) and move on.
    world_.advance_to(finish);

    if (functional_) {
        auto& y = data(dst);
        std::fill(y.begin(), y.end(), 0.0);
        matrix_->multiply_add(data(src), y);
    }
}

} // namespace kdr::baselines
