#include "partition/partition.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace kdr {

Partition::Partition(IndexSpace space, std::vector<IntervalSet> pieces)
    : space_(std::move(space)), pieces_(std::move(pieces)) {
    KDR_REQUIRE(space_.valid(), "Partition: invalid index space");
    for (const IntervalSet& p : pieces_) {
        const Interval b = p.bounds();
        KDR_REQUIRE(b.lo >= 0 && b.hi <= space_.size(), "Partition: piece ", p,
                    " exceeds space size ", space_.size());
    }
}

Partition Partition::equal(const IndexSpace& space, Color colors) {
    KDR_REQUIRE(colors > 0, "Partition::equal: need at least one color, got ", colors);
    const gidx n = space.size();
    const gidx base = n / colors;
    const gidx rem = n % colors;
    std::vector<IntervalSet> pieces;
    pieces.reserve(static_cast<std::size_t>(colors));
    gidx lo = 0;
    for (Color c = 0; c < colors; ++c) {
        const gidx len = base + (c < rem ? 1 : 0);
        pieces.emplace_back(lo, lo + len);
        lo += len;
    }
    return Partition(space, std::move(pieces));
}

Partition Partition::blocked(const IndexSpace& space, gidx block_size) {
    KDR_REQUIRE(block_size > 0, "Partition::blocked: nonpositive block size ", block_size);
    std::vector<IntervalSet> pieces;
    for (gidx lo = 0; lo < space.size(); lo += block_size) {
        pieces.emplace_back(lo, std::min(lo + block_size, space.size()));
    }
    if (pieces.empty()) pieces.emplace_back(); // empty space: one empty piece
    return Partition(space, std::move(pieces));
}

Partition Partition::tiles2d(const IndexSpace& space, gidx tx, gidx ty) {
    KDR_REQUIRE(space.dims() == 2, "tiles2d: space must be a 2-D grid");
    KDR_REQUIRE(tx > 0 && ty > 0, "tiles2d: nonpositive tile counts");
    const gidx nx = space.extent(0);
    const gidx ny = space.extent(1);
    KDR_REQUIRE(tx <= nx && ty <= ny, "tiles2d: more tiles than grid points");
    std::vector<IntervalSet> pieces;
    pieces.reserve(static_cast<std::size_t>(tx * ty));
    for (gidx bx = 0; bx < tx; ++bx) {
        const gidx xlo = bx * nx / tx;
        const gidx xhi = (bx + 1) * nx / tx;
        for (gidx by = 0; by < ty; ++by) {
            const gidx ylo = by * ny / ty;
            const gidx yhi = (by + 1) * ny / ty;
            std::vector<Interval> runs;
            runs.reserve(static_cast<std::size_t>(xhi - xlo));
            for (gidx x = xlo; x < xhi; ++x) {
                runs.push_back({x * ny + ylo, x * ny + yhi});
            }
            pieces.push_back(IntervalSet::from_intervals(std::move(runs)));
        }
    }
    return Partition(space, std::move(pieces));
}

Partition Partition::tiles3d(const IndexSpace& space, gidx tx, gidx ty, gidx tz) {
    KDR_REQUIRE(space.dims() == 3, "tiles3d: space must be a 3-D grid");
    KDR_REQUIRE(tx > 0 && ty > 0 && tz > 0, "tiles3d: nonpositive tile counts");
    const gidx nx = space.extent(0);
    const gidx ny = space.extent(1);
    const gidx nz = space.extent(2);
    KDR_REQUIRE(tx <= nx && ty <= ny && tz <= nz, "tiles3d: more tiles than grid points");
    std::vector<IntervalSet> pieces;
    pieces.reserve(static_cast<std::size_t>(tx * ty * tz));
    for (gidx bx = 0; bx < tx; ++bx) {
        const gidx xlo = bx * nx / tx;
        const gidx xhi = (bx + 1) * nx / tx;
        for (gidx by = 0; by < ty; ++by) {
            const gidx ylo = by * ny / ty;
            const gidx yhi = (by + 1) * ny / ty;
            for (gidx bz = 0; bz < tz; ++bz) {
                const gidx zlo = bz * nz / tz;
                const gidx zhi = (bz + 1) * nz / tz;
                std::vector<Interval> runs;
                runs.reserve(static_cast<std::size_t>((xhi - xlo) * (yhi - ylo)));
                for (gidx x = xlo; x < xhi; ++x) {
                    for (gidx y = ylo; y < yhi; ++y) {
                        const gidx rowbase = (x * ny + y) * nz;
                        runs.push_back({rowbase + zlo, rowbase + zhi});
                    }
                }
                pieces.push_back(IntervalSet::from_intervals(std::move(runs)));
            }
        }
    }
    return Partition(space, std::move(pieces));
}

Partition Partition::single(const IndexSpace& space) {
    std::vector<IntervalSet> pieces;
    pieces.push_back(space.universe());
    return Partition(space, std::move(pieces));
}

const IntervalSet& Partition::piece(Color c) const {
    KDR_REQUIRE(c >= 0 && c < color_count(), "Partition::piece: color ", c, " out of range [0,",
                color_count(), ")");
    return pieces_[static_cast<std::size_t>(c)];
}

bool Partition::is_complete() const {
    IntervalSet covered;
    for (const IntervalSet& p : pieces_) covered = covered.set_union(p);
    return covered == space_.universe();
}

bool Partition::is_disjoint() const {
    // Pairwise interval-sweep: merge all intervals and look for overlap.
    std::vector<Interval> all;
    for (const IntervalSet& p : pieces_)
        all.insert(all.end(), p.intervals().begin(), p.intervals().end());
    std::sort(all.begin(), all.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    for (std::size_t i = 1; i < all.size(); ++i) {
        if (all[i].lo < all[i - 1].hi) return false;
    }
    return true;
}

Partition Partition::piecewise_union(const Partition& other) const {
    KDR_REQUIRE(space_ == other.space_, "piecewise_union: different spaces");
    KDR_REQUIRE(color_count() == other.color_count(), "piecewise_union: color counts differ");
    std::vector<IntervalSet> out;
    out.reserve(pieces_.size());
    for (std::size_t c = 0; c < pieces_.size(); ++c)
        out.push_back(pieces_[c].set_union(other.pieces_[c]));
    return Partition(space_, std::move(out));
}

Partition Partition::piecewise_intersection(const Partition& other) const {
    KDR_REQUIRE(space_ == other.space_, "piecewise_intersection: different spaces");
    KDR_REQUIRE(color_count() == other.color_count(),
                "piecewise_intersection: color counts differ");
    std::vector<IntervalSet> out;
    out.reserve(pieces_.size());
    for (std::size_t c = 0; c < pieces_.size(); ++c)
        out.push_back(pieces_[c].set_intersection(other.pieces_[c]));
    return Partition(space_, std::move(out));
}

gidx Partition::total_assignments() const {
    gidx total = 0;
    for (const IntervalSet& p : pieces_) total += p.volume();
    return total;
}

std::ostream& operator<<(std::ostream& os, const Partition& p) {
    os << "Partition(" << p.space_ << ", " << p.pieces_.size() << " colors)";
    return os;
}

} // namespace kdr
