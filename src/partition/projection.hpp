#pragma once

/// \file projection.hpp
/// Dependent-partitioning projections (paper §3.1, Fig 2): lift a relation's
/// per-subset image/preimage to whole partitions, color by color. Together
/// with the row/col relations of a storage format these give the four
/// universal co-partitioning operators:
///
///   col_{K→D}[P] = image(P, col)        row_{K→R}[P] = image(P, row)
///   col_{D→K}[Q] = preimage(Q, col)     row_{R→K}[Q] = preimage(Q, row)
///
/// and arbitrary compositions such as eq. (5) for the finest partition of D
/// needed to compute A²x.

#include <cstdint>

#include "partition/partition.hpp"
#include "partition/relation.hpp"

namespace kdr {

/// Image of partition `p` (over rel.source()) along `rel`: a partition of
/// rel.target() with the same color space.
[[nodiscard]] Partition image(const Partition& p, const Relation& rel);

/// Preimage of partition `q` (over rel.target()) along `rel`: a partition of
/// rel.source() with the same color space.
[[nodiscard]] Partition preimage(const Partition& q, const Relation& rel);

/// Memoizing variants. Plan derivation projects the same canonical
/// partitions along the same row/col relations once per operator, per
/// preconditioner, and per transpose plan; the cache (keyed by the
/// relation's identity and the input partition) computes each projection
/// once per process. Entries are verified against the stored input
/// partition, so a hit is always exact. Not thread-safe (the runtime is
/// single-threaded; execution time is simulated).
[[nodiscard]] Partition image_cached(const Partition& p, const Relation& rel);
[[nodiscard]] Partition preimage_cached(const Partition& q, const Relation& rel);

struct ProjectionCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};
[[nodiscard]] ProjectionCacheStats projection_cache_stats() noexcept;
void clear_projection_cache() noexcept;

} // namespace kdr
