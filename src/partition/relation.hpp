#pragma once

/// \file relation.hpp
/// Binary relations between index spaces — the `row ⊆ K×R` and `col ⊆ K×D`
/// of the KDR abstraction (paper §3, eq. 2). A relation exposes exactly the
/// two queries dependent partitioning needs (paper §3.1, eqs. 3-4):
///
///   image_of(S)    = { j | ∃ i ∈ S : (i,j) ∈ rel }
///   preimage_of(T) = { i | ∃ j ∈ T : (i,j) ∈ rel }
///
/// Sparse-matrix formats implement this interface with format-specific fast
/// paths (e.g. CSR's rowptr relates ranges of R to *contiguous intervals* of
/// K, so projections are O(rows) interval arithmetic); `MaterializedRelation`
/// is the generic fallback for user-defined formats, requiring nothing beyond
/// an enumerable pair list (paper P2).

#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/index_space.hpp"
#include "geometry/interval_set.hpp"

namespace kdr {

class Relation {
public:
    Relation();
    virtual ~Relation() = default;

    /// Process-unique identity assigned at construction, keying the
    /// projection cache (projection.hpp). Copies keep the original's id —
    /// relations are immutable once built, so equal identity implies equal
    /// projections.
    [[nodiscard]] std::uint64_t relation_id() const noexcept { return id_; }

    /// The space of left elements (`I` in `rel ⊆ I × J`).
    [[nodiscard]] virtual const IndexSpace& source() const = 0;
    /// The space of right elements (`J`).
    [[nodiscard]] virtual const IndexSpace& target() const = 0;

    /// Image of a source subset in the target space.
    [[nodiscard]] virtual IntervalSet image_of(const IntervalSet& src) const = 0;
    /// Preimage of a target subset in the source space.
    [[nodiscard]] virtual IntervalSet preimage_of(const IntervalSet& dst) const = 0;

    /// Enumerate all pairs (testing / generic fallback; may be large).
    [[nodiscard]] virtual std::vector<std::pair<gidx, gidx>> enumerate() const = 0;

private:
    std::uint64_t id_;
};

/// A relation stored explicitly as a pair list with adjacency indexes in both
/// directions. This is the universal implementation any user-defined storage
/// format can fall back on: supply the pairs, get projections for free.
class MaterializedRelation final : public Relation {
public:
    MaterializedRelation(IndexSpace source, IndexSpace target,
                         std::vector<std::pair<gidx, gidx>> pairs);

    [[nodiscard]] const IndexSpace& source() const override { return source_; }
    [[nodiscard]] const IndexSpace& target() const override { return target_; }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override;
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override;

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

    [[nodiscard]] std::size_t pair_count() const noexcept { return forward_targets_.size(); }

private:
    IndexSpace source_;
    IndexSpace target_;
    // CSR-style adjacency in both directions.
    std::vector<gidx> forward_offsets_; // size source.size()+1
    std::vector<gidx> forward_targets_;
    std::vector<gidx> backward_offsets_; // size target.size()+1
    std::vector<gidx> backward_sources_;
};

/// The inverse view of a relation: swaps source/target and image/preimage.
class InverseRelation final : public Relation {
public:
    explicit InverseRelation(std::shared_ptr<const Relation> base) : base_(std::move(base)) {}

    [[nodiscard]] const IndexSpace& source() const override { return base_->target(); }
    [[nodiscard]] const IndexSpace& target() const override { return base_->source(); }

    [[nodiscard]] IntervalSet image_of(const IntervalSet& src) const override {
        return base_->preimage_of(src);
    }
    [[nodiscard]] IntervalSet preimage_of(const IntervalSet& dst) const override {
        return base_->image_of(dst);
    }

    [[nodiscard]] std::vector<std::pair<gidx, gidx>> enumerate() const override;

private:
    std::shared_ptr<const Relation> base_;
};

} // namespace kdr
