#include "partition/relation.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace kdr {

Relation::Relation() {
    static std::uint64_t next_id = 0;
    id_ = next_id++;
}

namespace {

/// Build CSR-style adjacency (offsets, values) from (key, value) pairs where
/// keys lie in [0, nkeys).
void build_adjacency(const std::vector<std::pair<gidx, gidx>>& pairs, gidx nkeys, bool by_first,
                     std::vector<gidx>& offsets, std::vector<gidx>& values) {
    offsets.assign(static_cast<std::size_t>(nkeys) + 1, 0);
    for (const auto& [a, b] : pairs) {
        const gidx key = by_first ? a : b;
        ++offsets[static_cast<std::size_t>(key) + 1];
    }
    for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
    values.resize(pairs.size());
    std::vector<gidx> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [a, b] : pairs) {
        const gidx key = by_first ? a : b;
        const gidx val = by_first ? b : a;
        values[static_cast<std::size_t>(cursor[static_cast<std::size_t>(key)]++)] = val;
    }
}

} // namespace

MaterializedRelation::MaterializedRelation(IndexSpace source, IndexSpace target,
                                           std::vector<std::pair<gidx, gidx>> pairs)
    : source_(std::move(source)), target_(std::move(target)) {
    for (const auto& [i, j] : pairs) {
        KDR_REQUIRE(i >= 0 && i < source_.size(), "relation pair source index ", i,
                    " out of range [0,", source_.size(), ")");
        KDR_REQUIRE(j >= 0 && j < target_.size(), "relation pair target index ", j,
                    " out of range [0,", target_.size(), ")");
    }
    build_adjacency(pairs, source_.size(), /*by_first=*/true, forward_offsets_, forward_targets_);
    build_adjacency(pairs, target_.size(), /*by_first=*/false, backward_offsets_,
                    backward_sources_);
}

IntervalSet MaterializedRelation::image_of(const IntervalSet& src) const {
    std::vector<gidx> hits;
    src.for_each([&](gidx i) {
        const auto lo = static_cast<std::size_t>(forward_offsets_[static_cast<std::size_t>(i)]);
        const auto hi =
            static_cast<std::size_t>(forward_offsets_[static_cast<std::size_t>(i) + 1]);
        hits.insert(hits.end(), forward_targets_.begin() + static_cast<std::ptrdiff_t>(lo),
                    forward_targets_.begin() + static_cast<std::ptrdiff_t>(hi));
    });
    return IntervalSet::from_points(std::move(hits));
}

IntervalSet MaterializedRelation::preimage_of(const IntervalSet& dst) const {
    std::vector<gidx> hits;
    dst.for_each([&](gidx j) {
        const auto lo = static_cast<std::size_t>(backward_offsets_[static_cast<std::size_t>(j)]);
        const auto hi =
            static_cast<std::size_t>(backward_offsets_[static_cast<std::size_t>(j) + 1]);
        hits.insert(hits.end(), backward_sources_.begin() + static_cast<std::ptrdiff_t>(lo),
                    backward_sources_.begin() + static_cast<std::ptrdiff_t>(hi));
    });
    return IntervalSet::from_points(std::move(hits));
}

std::vector<std::pair<gidx, gidx>> MaterializedRelation::enumerate() const {
    std::vector<std::pair<gidx, gidx>> pairs;
    pairs.reserve(forward_targets_.size());
    for (gidx i = 0; i < source_.size(); ++i) {
        const auto lo = static_cast<std::size_t>(forward_offsets_[static_cast<std::size_t>(i)]);
        const auto hi =
            static_cast<std::size_t>(forward_offsets_[static_cast<std::size_t>(i) + 1]);
        for (std::size_t k = lo; k < hi; ++k) pairs.emplace_back(i, forward_targets_[k]);
    }
    return pairs;
}

std::vector<std::pair<gidx, gidx>> InverseRelation::enumerate() const {
    auto pairs = base_->enumerate();
    for (auto& [a, b] : pairs) std::swap(a, b);
    return pairs;
}

} // namespace kdr
