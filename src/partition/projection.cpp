#include "partition/projection.hpp"

#include "support/error.hpp"

namespace kdr {

Partition image(const Partition& p, const Relation& rel) {
    KDR_REQUIRE(p.space() == rel.source(), "image: partition is over ", p.space(),
                " but relation's source is ", rel.source());
    std::vector<IntervalSet> pieces;
    pieces.reserve(static_cast<std::size_t>(p.color_count()));
    for (Color c = 0; c < p.color_count(); ++c) pieces.push_back(rel.image_of(p.piece(c)));
    return Partition(rel.target(), std::move(pieces));
}

Partition preimage(const Partition& q, const Relation& rel) {
    KDR_REQUIRE(q.space() == rel.target(), "preimage: partition is over ", q.space(),
                " but relation's target is ", rel.target());
    std::vector<IntervalSet> pieces;
    pieces.reserve(static_cast<std::size_t>(q.color_count()));
    for (Color c = 0; c < q.color_count(); ++c) pieces.push_back(rel.preimage_of(q.piece(c)));
    return Partition(rel.source(), std::move(pieces));
}

} // namespace kdr
