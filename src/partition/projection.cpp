#include "partition/projection.hpp"

#include "support/error.hpp"

namespace kdr {

Partition image(const Partition& p, const Relation& rel) {
    KDR_REQUIRE(p.space() == rel.source(), "image: partition is over ", p.space(),
                " but relation's source is ", rel.source());
    std::vector<IntervalSet> pieces;
    pieces.reserve(static_cast<std::size_t>(p.color_count()));
    for (Color c = 0; c < p.color_count(); ++c) pieces.push_back(rel.image_of(p.piece(c)));
    return Partition(rel.target(), std::move(pieces));
}

Partition preimage(const Partition& q, const Relation& rel) {
    KDR_REQUIRE(q.space() == rel.target(), "preimage: partition is over ", q.space(),
                " but relation's target is ", rel.target());
    std::vector<IntervalSet> pieces;
    pieces.reserve(static_cast<std::size_t>(q.color_count()));
    for (Color c = 0; c < q.color_count(); ++c) pieces.push_back(rel.preimage_of(q.piece(c)));
    return Partition(rel.source(), std::move(pieces));
}

namespace {

struct CacheEntry {
    std::uint64_t relation = 0;
    bool forward = true; ///< image (source → target) vs preimage
    Partition input;
    Partition output;
};

struct ProjectionCache {
    std::vector<CacheEntry> entries;
    ProjectionCacheStats stats;
    /// Projection results are small (interval lists), but a runaway producer
    /// of one-off partitions should not grow the cache without bound.
    static constexpr std::size_t kMaxEntries = 1024;

    Partition lookup(const Partition& in, const Relation& rel, bool forward) {
        for (const CacheEntry& e : entries) {
            if (e.relation == rel.relation_id() && e.forward == forward && e.input == in) {
                ++stats.hits;
                return e.output;
            }
        }
        ++stats.misses;
        Partition out = forward ? image(in, rel) : preimage(in, rel);
        if (entries.size() >= kMaxEntries) entries.clear();
        entries.push_back({rel.relation_id(), forward, in, out});
        return out;
    }
};

ProjectionCache& cache() {
    static ProjectionCache c;
    return c;
}

} // namespace

Partition image_cached(const Partition& p, const Relation& rel) {
    return cache().lookup(p, rel, true);
}

Partition preimage_cached(const Partition& q, const Relation& rel) {
    return cache().lookup(q, rel, false);
}

ProjectionCacheStats projection_cache_stats() noexcept { return cache().stats; }

void clear_projection_cache() noexcept {
    cache().entries.clear();
    cache().stats = {};
}

} // namespace kdr
