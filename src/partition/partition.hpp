#pragma once

/// \file partition.hpp
/// Partitions of index spaces (paper §3.1): a function `P : C → 2^I` from a
/// finite color space to subsets of an index space. Partitions need not be
/// complete (some points uncolored) or disjoint (points may be multi-colored)
/// — both generalities are load-bearing: image partitions of stencil pieces
/// alias at the halos, and that aliasing is exactly what co-partitioning
/// computes for the communication analysis.

#include <cstdint>
#include <ostream>
#include <vector>

#include "geometry/index_space.hpp"
#include "geometry/interval_set.hpp"

namespace kdr {

using Color = std::int64_t;

class Partition {
public:
    Partition() = default;

    /// A partition of `space` with explicit pieces, indexed by color 0..C-1.
    Partition(IndexSpace space, std::vector<IntervalSet> pieces);

    /// C equal contiguous blocks (Legion's equal partition). Remainder points
    /// are distributed one-per-color to the leading colors.
    static Partition equal(const IndexSpace& space, Color colors);

    /// Blocks of a fixed size (last block may be short).
    static Partition blocked(const IndexSpace& space, gidx block_size);

    /// Tile a structured 2-D grid space into tx × ty rectangular tiles;
    /// each tile is a strided set of row-runs in the linearization. Colors
    /// are assigned row-major over tiles.
    static Partition tiles2d(const IndexSpace& space, gidx tx, gidx ty);

    /// Tile a structured 3-D grid space into tx × ty × tz tiles.
    static Partition tiles3d(const IndexSpace& space, gidx tx, gidx ty, gidx tz);

    /// Everything in one color (the trivial partition).
    static Partition single(const IndexSpace& space);

    [[nodiscard]] bool valid() const noexcept { return space_.valid(); }
    [[nodiscard]] const IndexSpace& space() const noexcept { return space_; }
    [[nodiscard]] Color color_count() const noexcept {
        return static_cast<Color>(pieces_.size());
    }
    [[nodiscard]] const IntervalSet& piece(Color c) const;
    [[nodiscard]] const std::vector<IntervalSet>& pieces() const noexcept { return pieces_; }

    /// True iff every point of the space has at least one color (paper §3.1).
    [[nodiscard]] bool is_complete() const;
    /// True iff no point has more than one color (paper §3.1).
    [[nodiscard]] bool is_disjoint() const;

    /// Per-color union / intersection with another partition over the same
    /// space and color count.
    [[nodiscard]] Partition piecewise_union(const Partition& other) const;
    [[nodiscard]] Partition piecewise_intersection(const Partition& other) const;

    /// Total number of (point, color) assignments — volume() of the space for
    /// complete disjoint partitions, larger when pieces alias.
    [[nodiscard]] gidx total_assignments() const;

    friend bool operator==(const Partition& a, const Partition& b) {
        return a.space_ == b.space_ && a.pieces_ == b.pieces_;
    }

    friend std::ostream& operator<<(std::ostream& os, const Partition& p);

private:
    IndexSpace space_;
    std::vector<IntervalSet> pieces_;
};

} // namespace kdr
