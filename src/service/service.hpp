#pragma once

/// \file service.hpp
/// Solver-as-a-service: a throughput engine that admits a stream of
/// heterogeneous solve requests (size, solver, tolerance, deadline, tenant)
/// onto one simulated cluster and drives them through the task runtime.
///
/// The engine models the serving layer a long-running solver deployment
/// needs on top of the per-solve machinery the rest of the repo provides:
///
///  * **Co-scheduling.** `slots` independent solve lanes share the machine.
///    Each lane owns a disjoint color range (`PlannerOptions::color_offset`),
///    so the round-robin mapper places concurrent small systems on disjoint
///    processors when capacity allows and interleaves them per-processor
///    when it does not — many small solves per node, per the paper's
///    "overhead hidden by spare cycles" regime.
///  * **Shared-trace cache.** Solve contexts (regions + planner + operator)
///    are pooled per (structure, lane). A job whose structure matches a
///    pooled context reuses it with `enable_context_reuse()` +
///    `rewind_workspaces()`: its solver loop replays the captured dependence
///    schedule of the previous structurally-identical job (one pin-verified
///    instance, then the analysis-skipping fast path) instead of re-running
///    dependence analysis from scratch. Numerics are bitwise unaffected —
///    replay is a scheduling optimization only.
///  * **Admission control.** Arrivals enter a bounded queue; when it is
///    full, the job is rejected immediately (load shedding) rather than
///    queued unboundedly.
///  * **Weighted fair ordering.** Queued jobs are dispatched to free lanes
///    by attained service: the job whose tenant minimizes
///    attained_service / weight runs next, FIFO within a tenant.
///  * **Per-job SLO classification.** Each job runs under
///    `core::solve_with_recovery` (checkpoint / restart / fallback) and
///    classifies as completed, recovered (converged but needed restores),
///    deadline_miss (converged after its latency SLO), aborted (any
///    non-converged terminal state, including fault_aborted), or rejected.
///
/// Virtual-time semantics: jobs execute host-serially (the runtime is
/// eager-functional) but occupy overlapping spans of virtual time. A job's
/// admit task carries `not_before = start`, gating the whole solve — via
/// data dependence on the solution/rhs regions — behind both the arrival
/// time and the lane's previous job.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/recovery.hpp"
#include "core/solver_registry.hpp"
#include "core/solvers.hpp"
#include "obs/service_report.hpp"
#include "sparse/csr.hpp"
#include "stencil/stencil.hpp"
#include "support/error.hpp"

namespace kdr::service {

/// One solve job in the request stream.
struct SolveRequest {
    std::uint64_t id = 0;          ///< caller-chosen correlation id
    std::string tenant = "default";
    double arrival = 0.0;          ///< virtual submission time (seconds)
    stencil::Spec spec{};          ///< system structure (the trace-cache key)
    std::string solver = "cg";     ///< registry spec (cg, gmres/30, ca_cg/4, ...)
    std::uint64_t rhs_seed = 1;
    double tol = 1e-8;
    int max_iterations = 200;
    double deadline = 0.0;         ///< latency SLO in virtual seconds; 0 = none
};

/// Terminal classification of a job (see file comment for the SLO rules).
enum class JobState : std::uint8_t {
    completed,
    recovered,
    deadline_miss,
    aborted,
    rejected,
};

[[nodiscard]] constexpr const char* to_string(JobState s) {
    switch (s) {
    case JobState::completed: return "completed";
    case JobState::recovered: return "recovered";
    case JobState::deadline_miss: return "deadline_miss";
    case JobState::aborted: return "aborted";
    case JobState::rejected: return "rejected";
    }
    return "unknown";
}

/// Everything the engine knows about one finished (or rejected) job.
struct JobResult {
    SolveRequest request;
    JobState state = JobState::rejected;
    int slot = -1;                 ///< lane the job ran on (-1 = rejected)
    double start = 0.0;            ///< virtual admission onto the lane
    double finish = 0.0;           ///< final convergence measure ready time
    double latency = 0.0;          ///< finish - arrival
    core::SolveOutcome outcome;    ///< status, iterations, residual history
    /// The job re-used a captured dependence schedule: no task recording
    /// happened during the job, and at least one launch replayed.
    bool trace_cache_hit = false;
    double analysis_seconds = 0.0; ///< analysis-pipeline stall charged to the job
};

struct ServiceOptions {
    int slots = 4;                 ///< concurrent solve lanes
    Color pieces = 2;              ///< partition pieces per job
    std::size_t max_queue = 16;    ///< bounded admission queue (excl. running)
    /// Pool solve contexts per (structure, lane) — the shared-trace cache.
    /// false = a fresh context per job: every job re-records its schedule
    /// and pays full dependence analysis (the cold-cache baseline).
    bool share_contexts = true;
    std::string fallback_solver;   ///< recovery fallback ("" = none)
    /// Defaults for solver-spec parameters requests leave open (CA block
    /// size/basis, GMRES restart).
    core::SolverParams solver_params;
    core::RecoveryOptions recovery;
    /// Base planner configuration; `color_offset` is overwritten per lane.
    core::PlannerOptions planner;
    /// Tenant weight for fair ordering (absent tenants weigh 1.0).
    std::map<std::string, double> tenant_weights;
};

/// Construct a solver factory from its service name. Requests route through
/// the core solver registry, so any spec it accepts — including the
/// communication-avoiding methods, e.g. "ca_cg/4/newton" or "ca_gmres" —
/// is servable; `params` fills in unspecified CA block size/basis.
[[nodiscard]] inline core::SolverFactory<double>
solver_factory(const std::string& name, const core::SolverParams& params = {}) {
    KDR_REQUIRE(core::is_known_solver<double>(name), "service: unknown solver '", name,
                "'");
    return core::make_solver_factory<double>(name, params);
}

/// Pre-registry construction path.
[[deprecated("use solver_factory(name, SolverParams) — registry-backed")]]
[[nodiscard]] inline core::SolverFactory<double>
make_service_solver(const std::string& name) {
    return solver_factory(name);
}

class ServiceEngine {
public:
    explicit ServiceEngine(rt::Runtime& runtime, ServiceOptions options = {})
        : rt_(runtime), opts_(std::move(options)), base_(runtime.capture_baseline()) {
        KDR_REQUIRE(opts_.slots >= 1, "service: need at least one slot");
        KDR_REQUIRE(opts_.pieces >= 1, "service: need at least one piece");
        KDR_REQUIRE(opts_.max_queue >= 1, "service: need a queue of at least one");
    }

    ServiceEngine(const ServiceEngine&) = delete;
    ServiceEngine& operator=(const ServiceEngine&) = delete;

    void submit(SolveRequest req) { pending_.push_back(std::move(req)); }

    /// Drain every submitted request through admission, fair ordering, and
    /// execution. Returns all results so far (execution order).
    const std::vector<JobResult>& run() {
        std::stable_sort(pending_.begin(), pending_.end(),
                         [](const SolveRequest& a, const SolveRequest& b) {
                             return a.arrival < b.arrival;
                         });
        if (slot_free_.empty()) {
            slot_free_.assign(static_cast<std::size_t>(opts_.slots), rt_.current_time());
        }
        std::size_t next = 0;
        std::deque<SolveRequest> queue;
        while (next < pending_.size() || !queue.empty()) {
            // Next scheduling instant: the earliest-free lane — advanced to
            // the next arrival when nothing is waiting.
            std::size_t s = 0;
            for (std::size_t i = 1; i < slot_free_.size(); ++i) {
                if (slot_free_[i] < slot_free_[s]) s = i;
            }
            double now = slot_free_[s];
            if (queue.empty()) now = std::max(now, pending_[next].arrival);
            // Admission: arrivals at or before `now` enter the bounded queue
            // in arrival order; a full queue sheds the job immediately.
            while (next < pending_.size() && pending_[next].arrival <= now) {
                if (queue.size() >= opts_.max_queue) {
                    JobResult r;
                    r.request = pending_[next];
                    r.state = JobState::rejected;
                    results_.push_back(std::move(r));
                } else {
                    queue.push_back(pending_[next]);
                }
                ++next;
            }
            if (queue.empty()) continue;
            // Weighted fair ordering: dispatch the job whose tenant has the
            // least attained service per unit weight; ties resolve to the
            // oldest queued job, which also gives FIFO within a tenant.
            std::size_t pick = 0;
            double best = wfq_score(queue[0].tenant);
            for (std::size_t i = 1; i < queue.size(); ++i) {
                const double score = wfq_score(queue[i].tenant);
                if (score < best) {
                    best = score;
                    pick = i;
                }
            }
            SolveRequest req = std::move(queue[pick]);
            queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
            const double start = std::max(now, req.arrival);
            JobResult r = run_job(req, static_cast<int>(s), start);
            slot_free_[s] = std::max(r.finish, start);
            attained_[req.tenant] += std::max(0.0, r.finish - start);
            results_.push_back(std::move(r));
        }
        pending_.clear();
        return results_;
    }

    [[nodiscard]] const std::vector<JobResult>& results() const noexcept { return results_; }

    /// Summarize every result so far into a ServiceReport.
    [[nodiscard]] obs::ServiceReport report() const {
        obs::ServiceReport rep;
        rep.submitted = results_.size();
        double first_arrival = 0.0;
        double last_finish = 0.0;
        bool any = false;
        std::vector<double> latencies;
        std::uint64_t hits = 0;
        double analysis = 0.0;
        struct Acc {
            std::uint64_t jobs = 0;
            std::uint64_t rejected = 0;
            double service = 0.0;
            double latency = 0.0;
        };
        std::map<std::string, Acc> tenants;
        for (const JobResult& r : results_) {
            Acc& acc = tenants[r.request.tenant];
            switch (r.state) {
            case JobState::completed: ++rep.completed; break;
            case JobState::recovered: ++rep.recovered; break;
            case JobState::deadline_miss: ++rep.deadline_misses; break;
            case JobState::aborted: ++rep.aborted; break;
            case JobState::rejected:
                ++rep.rejected;
                ++acc.rejected;
                continue;
            }
            ++acc.jobs;
            acc.service += std::max(0.0, r.finish - r.start);
            acc.latency += r.latency;
            latencies.push_back(r.latency);
            if (r.trace_cache_hit) ++hits;
            analysis += r.analysis_seconds;
            first_arrival = any ? std::min(first_arrival, r.request.arrival)
                                : r.request.arrival;
            last_finish = any ? std::max(last_finish, r.finish) : r.finish;
            any = true;
        }
        const std::uint64_t executed = rep.submitted - rep.rejected;
        rep.makespan = any ? last_finish - first_arrival : 0.0;
        if (rep.makespan > 0.0) {
            rep.solves_per_second = static_cast<double>(executed) / rep.makespan;
        }
        if (!latencies.empty()) {
            std::sort(latencies.begin(), latencies.end());
            rep.latency_p50 = quantile(latencies, 0.5);
            rep.latency_p99 = quantile(latencies, 0.99);
        }
        if (executed > 0) {
            rep.trace_cache_hit_rate =
                static_cast<double>(hits) / static_cast<double>(executed);
            rep.analysis_seconds_per_job = analysis / static_cast<double>(executed);
        }
        rep.utilization = utilization(rep.makespan);
        double total_service = 0.0;
        for (const auto& [name, acc] : tenants) total_service += acc.service;
        for (const auto& [name, acc] : tenants) {
            obs::TenantStats t;
            t.tenant = name;
            t.weight = weight(name);
            t.jobs = acc.jobs;
            t.rejected = acc.rejected;
            t.service_seconds = acc.service;
            t.share = total_service > 0.0 ? acc.service / total_service : 0.0;
            t.mean_latency = acc.jobs > 0 ? acc.latency / static_cast<double>(acc.jobs) : 0.0;
            rep.tenants.push_back(std::move(t));
        }
        return rep;
    }

private:
    /// One pooled solve context: regions + planner + operator for a fixed
    /// structure on a fixed lane, reused across structurally-identical jobs.
    struct Context {
        std::unique_ptr<core::Planner<double>> planner;
        rt::RegionId xr = 0;
        rt::RegionId br = 0;
        rt::FieldId xf = 0;
        rt::FieldId bf = 0;
        gidx n = 0;
        std::uint64_t jobs = 0;
    };

    [[nodiscard]] double weight(const std::string& tenant) const {
        const auto it = opts_.tenant_weights.find(tenant);
        const double w = it == opts_.tenant_weights.end() ? 1.0 : it->second;
        return w > 0.0 ? w : 1.0;
    }

    [[nodiscard]] double wfq_score(const std::string& tenant) const {
        const auto it = attained_.find(tenant);
        return (it == attained_.end() ? 0.0 : it->second) / weight(tenant);
    }

    static double quantile(const std::vector<double>& sorted, double q) {
        // Nearest-rank on the sorted sample (exact, no interpolation).
        const auto n = static_cast<double>(sorted.size());
        auto rank = static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
        rank = std::min(rank, sorted.size());
        return sorted[rank - 1];
    }

    [[nodiscard]] double utilization(double makespan) const {
        if (makespan <= 0.0) return 0.0;
        const sim::MachineDesc& m = rt_.machine();
        double busy = 0.0;
        for (int n = 0; n < m.nodes; ++n) {
            double node = rt_.cluster().proc_busy({n, sim::ProcKind::CPU, 0});
            for (int g = 0; g < m.gpus_per_node; ++g) {
                node += rt_.cluster().proc_busy({n, sim::ProcKind::GPU, g});
            }
            const auto idx = static_cast<std::size_t>(n);
            busy += node - (idx < base_.node_busy.size() ? base_.node_busy[idx] : 0.0);
        }
        const double procs = static_cast<double>(m.nodes) *
                             (1.0 + static_cast<double>(m.gpus_per_node));
        return busy / (makespan * procs);
    }

    [[nodiscard]] std::string context_key(const stencil::Spec& spec, int slot) {
        std::string key = std::to_string(static_cast<int>(spec.kind)) + "/" +
                          std::to_string(spec.nx) + "x" + std::to_string(spec.ny) + "x" +
                          std::to_string(spec.nz) + "/s" + std::to_string(slot);
        // Cold-cache mode: a unique key per job defeats pooling on purpose.
        if (!opts_.share_contexts) key += "#" + std::to_string(cold_serial_++);
        return key;
    }

    Context& context_for(const SolveRequest& req, int slot) {
        const std::string key = context_key(req.spec, slot);
        const auto it = contexts_.find(key);
        if (it != contexts_.end()) return it->second;

        Context cx;
        cx.n = req.spec.unknowns();
        const IndexSpace D = IndexSpace::create(cx.n, "svc");
        cx.xr = rt_.create_region(D, "svc_x");
        cx.br = rt_.create_region(D, "svc_b");
        cx.xf = rt_.add_field<double>(cx.xr, "v");
        cx.bf = rt_.add_field<double>(cx.br, "v");
        core::PlannerOptions popts = opts_.planner;
        // Disjoint color range per lane: the round-robin mapper turns colors
        // into processors, so lanes land on disjoint processor slots when
        // the machine has capacity for slots * pieces of them.
        popts.color_offset = static_cast<Color>(slot) * opts_.pieces;
        cx.planner = std::make_unique<core::Planner<double>>(rt_, popts);
        cx.planner->add_sol_vector(cx.xr, cx.xf, Partition::equal(D, opts_.pieces));
        cx.planner->add_rhs_vector(cx.br, cx.bf, Partition::equal(D, opts_.pieces));
        cx.planner->add_operator(std::make_shared<CsrMatrix<double>>(
                                     stencil::laplacian_csr(req.spec, D, D)),
                                 0, 0);
        if (opts_.share_contexts) cx.planner->enable_context_reuse();
        return contexts_.emplace(key, std::move(cx)).first->second;
    }

    /// Reset the context's data to the job's problem and gate the solve at
    /// `start`: one admit task write-fences both vectors (so the solve also
    /// waits for the lane's previous job) and seeds the virtual clock.
    void admit_job(Context& cx, const SolveRequest& req, int slot, double start) {
        const std::vector<double> rhs = stencil::random_rhs(cx.n, req.rhs_seed);
        rt::TaskLaunch t;
        t.name = "svc_admit";
        t.color = static_cast<Color>(slot) * opts_.pieces;
        t.not_before = start;
        t.cost = {0.0, 16.0 * static_cast<double>(cx.n)};
        t.requirements = {{cx.xr, cx.xf, rt::Privilege::WriteOnly, IntervalSet::full(cx.n)},
                          {cx.br, cx.bf, rt::Privilege::WriteOnly, IntervalSet::full(cx.n)}};
        t.body = [rhs](rt::TaskContext& ctx) {
            auto x = ctx.accessor<double>(0);
            auto b = ctx.accessor<double>(1);
            for (std::size_t i = 0; i < rhs.size(); ++i) {
                x[i] = 0.0;
                b[i] = rhs[i];
            }
        };
        rt_.launch(t);
    }

    JobResult run_job(const SolveRequest& req, int slot, double start) {
        JobResult r;
        r.request = req;
        r.slot = slot;
        r.start = start;

        Context& cx = context_for(req, slot);
        cx.planner->rewind_workspaces();

        const obs::Registry& m = rt_.metrics();
        const double rec0 = m.counter_value("trace_recorded_tasks");
        const double replay0 = m.counter_value("trace_replayed_tasks");
        const double skip0 = m.counter_value("trace_depanalysis_skipped");
        const double stall0 = m.counter_value("analysis_stall_seconds");

        bool faulted_outside = false;
        try {
            admit_job(cx, req, slot, start);
            r.outcome = core::solve_with_recovery<double>(
                *cx.planner, solver_factory(req.solver, opts_.solver_params), req.tol,
                req.max_iterations, opts_.recovery,
                opts_.fallback_solver.empty()
                    ? core::SolverFactory<double>{}
                    : solver_factory(opts_.fallback_solver, opts_.solver_params));
        } catch (const rt::TaskFailedError&) {
            // A fault killed the admit task itself (before any recovery
            // scope existed): the job aborts with whatever history it has.
            faulted_outside = true;
            r.outcome.status = core::SolveStatus::fault_aborted;
        }
        ++cx.jobs;

        r.finish = start;
        for (const obs::ConvergenceSample& s : r.outcome.history) {
            r.finish = std::max(r.finish, s.virtual_time);
        }
        r.latency = r.finish - req.arrival;
        r.analysis_seconds = m.counter_value("analysis_stall_seconds") - stall0;
        const double recorded = m.counter_value("trace_recorded_tasks") - rec0;
        const double replayed = (m.counter_value("trace_replayed_tasks") - replay0) +
                                (m.counter_value("trace_depanalysis_skipped") - skip0);
        r.trace_cache_hit = recorded == 0.0 && replayed > 0.0;

        if (faulted_outside || r.outcome.status != core::SolveStatus::converged) {
            r.state = JobState::aborted;
        } else if (req.deadline > 0.0 && r.latency > req.deadline) {
            r.state = JobState::deadline_miss;
        } else if (r.outcome.restores > 0) {
            r.state = JobState::recovered;
        } else {
            r.state = JobState::completed;
        }
        return r;
    }

    rt::Runtime& rt_;
    ServiceOptions opts_;
    rt::Runtime::SolveBaseline base_;
    std::vector<SolveRequest> pending_;
    std::vector<JobResult> results_;
    std::vector<double> slot_free_;
    std::map<std::string, double> attained_;
    std::map<std::string, Context> contexts_;
    std::uint64_t cold_serial_ = 0;
};

} // namespace kdr::service
