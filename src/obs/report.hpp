#pragma once

/// \file report.hpp
/// Structured solve reports: the single artifact that answers "where did the
/// virtual time go?" after a solve or benchmark run. Aggregates per-task-kind
/// busy time, per-node utilization and load imbalance, the node-to-node
/// transfer matrix, solver-phase totals, and the convergence history.
/// Serializable to JSON (round-trippable via obs::json) and renderable as
/// aligned tables via support/table.hpp — the reproduction's analogue of
/// PETSc's `-log_view` summary.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace kdr::obs {

/// Virtual-time statistics of one task kind (grouped by task name).
struct TaskKindStats {
    std::string name;
    std::uint64_t count = 0;
    double total = 0.0; ///< summed busy seconds
    double mean = 0.0;
    double max = 0.0;
};

/// Busy time and utilization of one node (all processors of the node).
struct NodeStats {
    int node = 0;
    double busy = 0.0;        ///< summed busy seconds across the node's processors
    double utilization = 0.0; ///< busy / (makespan * processors on node)
    double comm_seconds = 0.0; ///< summed NIC occupancy (send + recv directions)
    double comm_fraction = 0.0; ///< comm_seconds / (makespan * 2 NIC directions)
    double idle_fraction = 0.0; ///< 1 - utilization
};

/// One directed edge of the transfer matrix.
struct TransferEdge {
    int src = 0;
    int dst = 0;
    double bytes = 0.0;
    std::uint64_t count = 0;
};

/// Aggregate of one solver phase (spans grouped by name).
struct PhaseStats {
    std::string name;
    std::uint64_t count = 0;
    double total = 0.0; ///< summed span durations (virtual seconds)
};

/// One convergence-history sample (SolverMonitor's view).
struct ConvergenceSample {
    int iteration = 0;
    double residual = 0.0;
    double virtual_time = 0.0;
};

/// Fault-injection and recovery tallies for one run. All zero when no fault
/// model was attached and no recovery controller ran.
struct FaultStats {
    std::uint64_t task_faults = 0;      ///< transient task failures injected
    std::uint64_t task_retries = 0;     ///< failed attempts retried in place
    std::uint64_t retries_exhausted = 0;///< tasks that ran out of retries
    std::uint64_t rollbacks = 0;        ///< write-holding tasks rolled back
    std::uint64_t stragglers = 0;       ///< slowed (but successful) attempts
    std::uint64_t nic_degraded = 0;     ///< transfers on a degraded link
    std::uint64_t nic_retransmits = 0;  ///< dropped-and-resent transfers
    std::uint64_t checkpoints = 0;      ///< recovery controller checkpoints
    std::uint64_t restores = 0;         ///< iterate restores from checkpoint
    std::uint64_t restarts = 0;         ///< same-method restarts
    std::uint64_t fallbacks = 0;        ///< switches to the fallback method

    [[nodiscard]] bool any() const noexcept {
        return (task_faults | task_retries | retries_exhausted | rollbacks | stragglers |
                nic_degraded | nic_retransmits | checkpoints | restores | restarts |
                fallbacks) != 0;
    }
};

/// Validation-mode tallies for one run (see runtime/validation.hpp). All
/// zero — and `enabled` false — when `RuntimeOptions::validate` was off.
struct ValidationStats {
    bool enabled = false;               ///< validation mode was on for the run
    std::uint64_t tasks_checked = 0;    ///< bodies run under accessor checking
    std::uint64_t violations = 0;       ///< privilege/subset contract breaches
    std::uint64_t race_pairs = 0;       ///< unordered conflicting task pairs
    std::uint64_t overdeclared = 0;     ///< requirements with untouched subsets

    [[nodiscard]] bool any() const noexcept {
        return (violations | race_pairs | overdeclared) != 0;
    }
};

/// Cost of one task kind on the critical path (kernel segments only).
struct CriticalPathKind {
    std::string name;
    std::uint64_t segments = 0;
    double seconds = 0.0;
};

/// Critical-path attribution from the event profiler: the longest dependent
/// chain through the recorded event DAG, ending at the profiled horizon,
/// split by cost category. Category seconds (incl. idle) sum to `total`.
/// All zero — and `enabled` false — when no profiler was attached.
struct CriticalPathStats {
    bool enabled = false;
    double total = 0.0;   ///< end time of the chain (the profiled horizon)
    double kernel = 0.0;
    double transfer = 0.0;
    double handshake = 0.0;
    double allreduce = 0.0;
    double runtime_overhead = 0.0; ///< dependence-analysis pipeline intervals
    double idle = 0.0;             ///< gaps the event DAG does not explain
    std::vector<CriticalPathKind> by_kind; ///< sorted by seconds, descending
    std::uint64_t events = 0;         ///< events recorded over the run
    std::uint64_t events_dropped = 0; ///< evicted from full ring buffers

    [[nodiscard]] double category_sum() const noexcept {
        return kernel + transfer + handshake + allreduce + runtime_overhead + idle;
    }
};

/// Task-duration quantiles from the runtime's task_duration_seconds
/// histogram (bucket-interpolated — see Histogram::quantile).
struct TaskDurationQuantiles {
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

struct SolveReport {
    double makespan = 0.0;     ///< virtual time at which all work completed
    std::uint64_t tasks = 0;   ///< tasks launched
    double busy_total = 0.0;   ///< summed processor busy seconds
    std::vector<TaskKindStats> task_kinds; ///< sorted by total, descending
    std::vector<NodeStats> nodes;
    double load_imbalance = 1.0; ///< max node busy / mean node busy
    std::vector<TransferEdge> transfers;
    double transfer_bytes = 0.0;
    std::uint64_t transfer_count = 0;
    std::vector<PhaseStats> phases; ///< sorted by total, descending
    /// Global synchronization points the solve paid for: one per completed
    /// allreduce (every dot/dot_batch/gram/fused-reduce tail). The headline
    /// communication-avoiding metric — CA-CG(s) performs 1/s of classic CG's.
    std::uint64_t global_syncs = 0;
    /// Virtual seconds tasks spent blocked on reduced scalars beyond their
    /// data/analysis readiness (the non-overlapped part of allreduce
    /// latency). 0 when every reduction hid behind independent work.
    double allreduce_wait_seconds = 0.0;
    std::vector<ConvergenceSample> convergence;
    std::string status = "unknown"; ///< core::to_string of the SolveStatus
    FaultStats faults;
    ValidationStats validation;
    CriticalPathStats critical_path;
    TaskDurationQuantiles task_duration;

    [[nodiscard]] std::string to_json() const;
    [[nodiscard]] static SolveReport from_json(const std::string& text);

    /// Render as aligned tables (summary, task kinds, nodes, transfers,
    /// phases, convergence endpoints).
    void print(std::ostream& os) const;
};

/// Write `report.to_json()` to a file (throws kdr::Error on I/O failure).
void write_solve_report(const std::string& path, const SolveReport& report);

} // namespace kdr::obs
