#pragma once

/// \file json.hpp
/// Minimal JSON document model used by the observability layer: parse,
/// build, and serialize. Exists so solve reports and metric dumps round-trip
/// without an external dependency; not a general-purpose JSON library
/// (numbers are doubles, objects are lexicographically ordered).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace kdr::obs::json {

class Value {
public:
    enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };
    using Array = std::vector<Value>;
    using Object = std::map<std::string, Value>;

    Value() = default;
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(double d) : type_(Type::Number), num_(d) {}
    Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Value(const char* s) : type_(Type::String), str_(s) {}
    Value(Array a) : type_(Type::Array), arr_(std::move(a)) {}
    Value(Object o) : type_(Type::Object), obj_(std::move(o)) {}

    [[nodiscard]] Type type() const noexcept { return type_; }
    [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
    [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
    [[nodiscard]] bool is_number() const noexcept { return type_ == Type::Number; }
    [[nodiscard]] bool is_string() const noexcept { return type_ == Type::String; }
    [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
    [[nodiscard]] bool is_object() const noexcept { return type_ == Type::Object; }

    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] const Object& as_object() const;

    /// Object member access; requires an object holding `key`.
    [[nodiscard]] const Value& operator[](const std::string& key) const;
    /// Array element access; requires an array with `i` in range.
    [[nodiscard]] const Value& at(std::size_t i) const;
    [[nodiscard]] bool has(const std::string& key) const;
    [[nodiscard]] std::size_t size() const;

    /// Mutable builders (switch the value to the requested type if null).
    Array& array();
    Object& object();

    /// Serialize; doubles use enough digits to round-trip exactly.
    [[nodiscard]] std::string dump() const;

    /// Parse a complete document (throws kdr::Error on malformed input or
    /// trailing garbage).
    [[nodiscard]] static Value parse(std::string_view text);

private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/// Escape a string for embedding in a JSON document (without quotes).
[[nodiscard]] std::string escape(const std::string& s);

} // namespace kdr::obs::json
