#include "obs/profile.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "support/error.hpp"

namespace kdr::obs {

const char* to_string(EventCategory c) {
    switch (c) {
    case EventCategory::Kernel: return "kernel";
    case EventCategory::Transfer: return "transfer";
    case EventCategory::Handshake: return "handshake";
    case EventCategory::Allreduce: return "allreduce";
    case EventCategory::Runtime: return "runtime";
    case EventCategory::Idle: return "idle";
    }
    return "unknown";
}

double CriticalPath::category_sum() const {
    double sum = 0.0;
    for (double v : by_category) sum += v;
    return sum;
}

Profiler::Profiler(int nodes, int gpus_per_node, ProfilerOptions options)
    : nodes_(nodes), gpus_(gpus_per_node), options_(options) {
    KDR_REQUIRE(nodes_ >= 1, "Profiler: need at least one node, got ", nodes_);
    KDR_REQUIRE(gpus_ >= 0, "Profiler: negative gpus_per_node ", gpus_);
    KDR_REQUIRE(options_.lane_capacity >= 1, "Profiler: lane_capacity must be >= 1");
    lanes_.resize(static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(lane_count()));
}

std::string Profiler::lane_name(int lane) const {
    if (lane == lane_cpu()) return "cpu";
    if (lane >= 1 && lane <= gpus_) return "gpu " + std::to_string(lane - 1);
    if (lane == lane_nic_send()) return "nic send";
    if (lane == lane_nic_recv()) return "nic recv";
    if (lane == lane_handshake()) return "nic handshake";
    if (lane == lane_analysis()) return "analysis";
    if (lane == lane_collective()) return "collective";
    return "lane " + std::to_string(lane);
}

std::size_t Profiler::lane_slot(int node, int lane) const {
    KDR_REQUIRE(node >= 0 && node < nodes_, "Profiler: node ", node, " out of range [0, ",
                nodes_, ")");
    KDR_REQUIRE(lane >= 0 && lane < lane_count(), "Profiler: lane ", lane,
                " out of range [0, ", lane_count(), ")");
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(lane_count()) +
           static_cast<std::size_t>(lane);
}

EventId Profiler::record(int node, int lane, EventCategory category, std::string name,
                         double start, double end, std::vector<EventId> deps, double bytes,
                         int peer) {
    KDR_REQUIRE(end >= start, "Profiler: event '", name, "' ends (", end,
                ") before it starts (", start, ")");
    Lane& l = lanes_[lane_slot(node, lane)];

    ProfileEvent ev;
    ev.id = next_id_++;
    ev.node = node;
    ev.lane = lane;
    ev.category = category;
    ev.name = std::move(name);
    ev.start = start;
    ev.end = end;
    ev.bytes = bytes;
    ev.peer = peer;
    ev.deps = std::move(deps);
    for (EventId d : context_deps_) {
        if (d != kNoEvent) ev.deps.push_back(d);
    }

    if (l.ring.size() < options_.lane_capacity) {
        l.ring.push_back(std::move(ev));
    } else {
        // Full: overwrite the oldest slot. The ring stays chronological when
        // read from head.
        l.ring[l.head] = std::move(ev);
        l.head = (l.head + 1) % l.ring.size();
        ++dropped_;
    }
    ++recorded_;
    const EventId id = next_id_ - 1;
    if (collecting_) collected_.push_back(id);
    return id;
}

void Profiler::begin_collect() {
    KDR_REQUIRE(!collecting_, "Profiler: begin_collect while already collecting");
    collecting_ = true;
    collected_.clear();
}

std::vector<EventId> Profiler::end_collect() {
    KDR_REQUIRE(collecting_, "Profiler: end_collect without begin_collect");
    collecting_ = false;
    return std::move(collected_);
}

void Profiler::push_context_dep(EventId id) { context_deps_.push_back(id); }

void Profiler::pop_context_dep() {
    KDR_REQUIRE(!context_deps_.empty(), "Profiler: pop_context_dep on empty stack");
    context_deps_.pop_back();
}

std::uint64_t Profiler::events_held() const noexcept {
    std::uint64_t held = 0;
    for (const Lane& l : lanes_) held += l.ring.size();
    return held;
}

double Profiler::profiled_horizon() const noexcept {
    double horizon = 0.0;
    for (const Lane& l : lanes_) {
        for (const ProfileEvent& e : l.ring) horizon = std::max(horizon, e.end);
    }
    return horizon;
}

void Profiler::for_each_in_lane(const Lane& l,
                                const std::function<void(const ProfileEvent&)>& fn) const {
    for (std::size_t i = 0; i < l.ring.size(); ++i) {
        fn(l.ring[(l.head + i) % l.ring.size()]);
    }
}

void Profiler::for_each_event(const std::function<void(const ProfileEvent&)>& fn) const {
    for (const Lane& l : lanes_) for_each_in_lane(l, fn);
}

// ------------------------------------------------------------ critical path

namespace {

/// Comparator for the end-sorted event index.
bool ends_before(const ProfileEvent* a, const ProfileEvent* b) { return a->end < b->end; }

} // namespace

CriticalPath Profiler::critical_path() const {
    CriticalPath path;

    std::vector<const ProfileEvent*> events;
    events.reserve(static_cast<std::size_t>(events_held()));
    for_each_event([&events](const ProfileEvent& e) { events.push_back(&e); });
    if (events.empty()) return path;

    std::sort(events.begin(), events.end(), ends_before);
    std::unordered_map<EventId, const ProfileEvent*> by_id;
    by_id.reserve(events.size());
    for (const ProfileEvent* e : events) by_id.emplace(e->id, e);

    // Walk backwards from the horizon event. Every event's start time in the
    // simulator is a max() over the finish times of whatever it waited on
    // (dependence finishes, analysis completion, lane free_at, transfer
    // arrivals), so at each step some recorded event ends *exactly* at the
    // current event's start; preferring exact end-time matches (declared deps
    // first, then same-lane predecessors, then any) reconstructs the chain
    // without the simulator having to thread explicit edges everywhere. Gaps
    // with no explanation become Idle segments.
    const ProfileEvent* cur = events.back();
    path.total = cur->end;
    std::unordered_set<EventId> visited;
    std::vector<PathSegment> rev; // latest first

    double frontier = path.total;
    while (cur != nullptr) {
        visited.insert(cur->id);
        if (cur->end < frontier) {
            rev.push_back({EventCategory::Idle, "idle", cur->end, frontier, -1, -1});
        }
        rev.push_back({cur->category, cur->name, cur->start, cur->end, cur->node, cur->lane});
        frontier = cur->start;
        if (frontier <= 0.0) break;

        // Candidate 1: the latest-ending unvisited declared dependence.
        const ProfileEvent* best_dep = nullptr;
        for (EventId d : cur->deps) {
            auto it = by_id.find(d);
            if (it == by_id.end()) continue; // evicted from a full ring
            const ProfileEvent* p = it->second;
            if (p->end > frontier || visited.count(p->id) != 0) continue;
            if (best_dep == nullptr || p->end > best_dep->end) best_dep = p;
        }
        if (best_dep != nullptr && best_dep->end == frontier) {
            cur = best_dep;
            continue;
        }

        // Candidate 2: scan the end-sorted index downward from the frontier
        // for exact matches (same lane preferred — that is the free_at chain)
        // and the latest-ending unvisited event overall.
        ProfileEvent probe;
        probe.end = frontier;
        auto ub = std::upper_bound(events.begin(), events.end(), &probe, ends_before);
        const ProfileEvent* exact_same_lane = nullptr;
        const ProfileEvent* exact_any = nullptr;
        const ProfileEvent* global_best = nullptr;
        for (auto it = ub; it != events.begin();) {
            --it;
            const ProfileEvent* p = *it;
            if (visited.count(p->id) != 0) continue;
            if (global_best == nullptr) global_best = p;
            if (p->end != frontier) break; // sorted: no more exact matches below
            if (exact_any == nullptr) exact_any = p;
            if (p->node == cur->node && p->lane == cur->lane) {
                exact_same_lane = p;
                break;
            }
        }

        const ProfileEvent* next = exact_same_lane != nullptr ? exact_same_lane : exact_any;
        if (next == nullptr) {
            next = best_dep;
            if (global_best != nullptr &&
                (next == nullptr || global_best->end > next->end)) {
                next = global_best;
            }
        }
        if (next == nullptr) {
            rev.push_back({EventCategory::Idle, "idle", 0.0, frontier, -1, -1});
            break;
        }
        cur = next;
    }

    std::reverse(rev.begin(), rev.end());
    path.segments = std::move(rev);

    std::map<std::string, CriticalPath::KindCost> kinds;
    for (const PathSegment& s : path.segments) {
        path.by_category[static_cast<std::size_t>(s.category)] += s.end - s.start;
        if (s.category == EventCategory::Kernel) {
            CriticalPath::KindCost& k = kinds[s.name];
            k.name = s.name;
            ++k.segments;
            k.seconds += s.end - s.start;
        }
    }
    path.by_kind.reserve(kinds.size());
    for (auto& [name, cost] : kinds) path.by_kind.push_back(std::move(cost));
    std::sort(path.by_kind.begin(), path.by_kind.end(),
              [](const CriticalPath::KindCost& a, const CriticalPath::KindCost& b) {
                  if (a.seconds != b.seconds) return a.seconds > b.seconds;
                  return a.name < b.name;
              });
    return path;
}

// ------------------------------------------------------------- utilization

std::vector<NodeUtilization> Profiler::utilization() const {
    std::vector<NodeUtilization> out(static_cast<std::size_t>(nodes_));
    const double horizon = profiled_horizon();
    const double procs = static_cast<double>(1 + gpus_);
    for (int n = 0; n < nodes_; ++n) {
        NodeUtilization& u = out[static_cast<std::size_t>(n)];
        u.node = n;
        for (int lane = 0; lane < lane_count(); ++lane) {
            const bool proc_lane = lane <= gpus_; // cpu + gpus
            const bool nic = is_nic_lane(lane);
            if (!proc_lane && !nic) continue;
            for_each_in_lane(lanes_[lane_slot(n, lane)], [&u, proc_lane](const ProfileEvent& e) {
                if (proc_lane) {
                    u.busy_seconds += e.duration();
                } else {
                    u.comm_seconds += e.duration();
                }
            });
        }
        if (horizon > 0.0) {
            u.busy_fraction = u.busy_seconds / (horizon * procs);
            u.comm_fraction = u.comm_seconds / (horizon * 2.0);
            u.idle_fraction = 1.0 - u.busy_fraction;
        }
    }
    return out;
}

std::vector<CommEdge> Profiler::comm_matrix() const {
    // Send-lane Transfer events carry (src = node, dst = peer); counting only
    // those sees each message exactly once.
    std::map<std::pair<int, int>, CommEdge> edges;
    for (int n = 0; n < nodes_; ++n) {
        for_each_in_lane(lanes_[lane_slot(n, lane_nic_send())],
                         [&edges, n](const ProfileEvent& e) {
                             if (e.category != EventCategory::Transfer || e.peer < 0) return;
                             CommEdge& edge = edges[{n, e.peer}];
                             edge.src = n;
                             edge.dst = e.peer;
                             edge.bytes += e.bytes;
                             ++edge.messages;
                         });
    }
    std::vector<CommEdge> out;
    out.reserve(edges.size());
    for (auto& [key, edge] : edges) out.push_back(edge);
    return out;
}

// ------------------------------------------------------------ trace export

json::Value Profiler::chrome_trace() const {
    json::Value doc;
    auto& root = doc.object();
    root.emplace("displayTimeUnit", json::Value("ns"));

    json::Value events;
    auto& arr = events.array();

    const auto meta = [](const char* what, int pid, json::Value::Object args) {
        json::Value::Object o;
        o.emplace("ph", json::Value("M"));
        o.emplace("name", json::Value(what));
        o.emplace("pid", json::Value(static_cast<double>(pid)));
        json::Value a;
        a.object() = std::move(args);
        o.emplace("args", std::move(a));
        return o;
    };

    for (int n = 0; n < nodes_; ++n) {
        {
            json::Value::Object args;
            args.emplace("name", json::Value("node " + std::to_string(n)));
            arr.emplace_back(meta("process_name", n, std::move(args)));
        }
        {
            json::Value::Object args;
            args.emplace("sort_index", json::Value(static_cast<double>(n)));
            arr.emplace_back(meta("process_sort_index", n, std::move(args)));
        }
        for (int lane = 0; lane < lane_count(); ++lane) {
            if (lanes_[lane_slot(n, lane)].ring.empty()) continue;
            json::Value::Object name_args;
            name_args.emplace("name", json::Value(lane_name(lane)));
            json::Value::Object named = meta("thread_name", n, std::move(name_args));
            named.emplace("tid", json::Value(static_cast<double>(lane)));
            arr.emplace_back(std::move(named));

            json::Value::Object sort_args;
            sort_args.emplace("sort_index", json::Value(static_cast<double>(lane)));
            json::Value::Object sorted = meta("thread_sort_index", n, std::move(sort_args));
            sorted.emplace("tid", json::Value(static_cast<double>(lane)));
            arr.emplace_back(std::move(sorted));
        }
    }

    for_each_event([&arr](const ProfileEvent& e) {
        json::Value::Object o;
        o.emplace("name", json::Value(e.name));
        o.emplace("cat", json::Value(to_string(e.category)));
        o.emplace("ph", json::Value("X"));
        o.emplace("ts", json::Value(e.start * 1e6));  // virtual microseconds
        o.emplace("dur", json::Value(e.duration() * 1e6));
        o.emplace("pid", json::Value(static_cast<double>(e.node)));
        o.emplace("tid", json::Value(static_cast<double>(e.lane)));

        json::Value::Object args;
        args.emplace("id", json::Value(static_cast<double>(e.id)));
        if (!e.deps.empty()) {
            json::Value deps;
            auto& darr = deps.array();
            darr.reserve(e.deps.size());
            for (EventId d : e.deps) darr.emplace_back(static_cast<double>(d));
            args.emplace("deps", std::move(deps));
        }
        if (e.category == EventCategory::Transfer || e.category == EventCategory::Handshake) {
            args.emplace("bytes", json::Value(e.bytes));
            args.emplace("peer", json::Value(static_cast<double>(e.peer)));
        }
        json::Value a;
        a.object() = std::move(args);
        o.emplace("args", std::move(a));
        arr.emplace_back(std::move(o));
    });

    root.emplace("traceEvents", std::move(events));
    return doc;
}

void Profiler::write_chrome_trace(const std::string& path) const {
    const std::string text = to_chrome_trace_json();
    // Self-check: the emitted document must survive our own parser before it
    // is handed to Perfetto.
    const json::Value parsed = json::Value::parse(text);
    KDR_REQUIRE(parsed.has("traceEvents"), "profiler trace round-trip lost traceEvents");
    std::ofstream out(path);
    KDR_REQUIRE(out.good(), "write_chrome_trace: cannot open '", path, "'");
    out << text << "\n";
    KDR_REQUIRE(out.good(), "write_chrome_trace: write to '", path, "' failed");
}

} // namespace kdr::obs
