#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace kdr::obs::json {

bool Value::as_bool() const {
    KDR_REQUIRE(is_bool(), "json: value is not a bool");
    return bool_;
}

double Value::as_number() const {
    KDR_REQUIRE(is_number(), "json: value is not a number");
    return num_;
}

const std::string& Value::as_string() const {
    KDR_REQUIRE(is_string(), "json: value is not a string");
    return str_;
}

const Value::Array& Value::as_array() const {
    KDR_REQUIRE(is_array(), "json: value is not an array");
    return arr_;
}

const Value::Object& Value::as_object() const {
    KDR_REQUIRE(is_object(), "json: value is not an object");
    return obj_;
}

const Value& Value::operator[](const std::string& key) const {
    KDR_REQUIRE(is_object(), "json: member '", key, "' requested from a non-object");
    auto it = obj_.find(key);
    KDR_REQUIRE(it != obj_.end(), "json: missing member '", key, "'");
    return it->second;
}

const Value& Value::at(std::size_t i) const {
    KDR_REQUIRE(is_array(), "json: element ", i, " requested from a non-array");
    KDR_REQUIRE(i < arr_.size(), "json: element ", i, " out of range [0,", arr_.size(), ")");
    return arr_[i];
}

bool Value::has(const std::string& key) const {
    return is_object() && obj_.count(key) != 0;
}

std::size_t Value::size() const {
    if (is_array()) return arr_.size();
    if (is_object()) return obj_.size();
    return 0;
}

Value::Array& Value::array() {
    if (is_null()) type_ = Type::Array;
    KDR_REQUIRE(is_array(), "json: array() on a non-array value");
    return arr_;
}

Value::Object& Value::object() {
    if (is_null()) type_ = Type::Object;
    KDR_REQUIRE(is_object(), "json: object() on a non-object value");
    return obj_;
}

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

namespace {

void format_number(std::string& out, double v) {
    // JSON has no NaN/Inf literals. Non-finite values (rates from
    // zero-duration phases, diverged-solve residuals) serialize as null
    // rather than aborting mid-report; readers treat the null as NaN.
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void dump_value(std::string& out, const Value& v) {
    switch (v.type()) {
        case Value::Type::Null: out += "null"; break;
        case Value::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
        case Value::Type::Number: format_number(out, v.as_number()); break;
        case Value::Type::String:
            out += '"';
            out += escape(v.as_string());
            out += '"';
            break;
        case Value::Type::Array: {
            out += '[';
            bool first = true;
            for (const Value& e : v.as_array()) {
                if (!first) out += ',';
                first = false;
                dump_value(out, e);
            }
            out += ']';
            break;
        }
        case Value::Type::Object: {
            out += '{';
            bool first = true;
            for (const auto& [k, e] : v.as_object()) {
                if (!first) out += ',';
                first = false;
                out += '"';
                out += escape(k);
                out += "\":";
                dump_value(out, e);
            }
            out += '}';
            break;
        }
    }
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value run() {
        Value v = parse_value();
        skip_ws();
        KDR_REQUIRE(pos_ == text_.size(), "json: trailing characters at offset ", pos_);
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    [[nodiscard]] char peek() {
        skip_ws();
        KDR_REQUIRE(pos_ < text_.size(), "json: unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        KDR_REQUIRE(peek() == c, "json: expected '", c, "' at offset ", pos_, ", got '",
                    text_[pos_], "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Value parse_value() {
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Value(parse_string());
            case 't':
                KDR_REQUIRE(consume_literal("true"), "json: bad literal at offset ", pos_);
                return Value(true);
            case 'f':
                KDR_REQUIRE(consume_literal("false"), "json: bad literal at offset ", pos_);
                return Value(false);
            case 'n':
                KDR_REQUIRE(consume_literal("null"), "json: bad literal at offset ", pos_);
                return Value();
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Value::Object obj;
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(obj));
        }
        while (true) {
            std::string key = parse_string();
            expect(':');
            obj.emplace(std::move(key), parse_value());
            const char c = peek();
            ++pos_;
            if (c == '}') break;
            KDR_REQUIRE(c == ',', "json: expected ',' or '}' at offset ", pos_ - 1);
        }
        return Value(std::move(obj));
    }

    Value parse_array() {
        expect('[');
        Value::Array arr;
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            const char c = peek();
            ++pos_;
            if (c == ']') break;
            KDR_REQUIRE(c == ',', "json: expected ',' or ']' at offset ", pos_ - 1);
        }
        return Value(std::move(arr));
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            KDR_REQUIRE(pos_ < text_.size(), "json: unterminated string");
            const char c = text_[pos_++];
            if (c == '"') break;
            if (c != '\\') {
                out += c;
                continue;
            }
            KDR_REQUIRE(pos_ < text_.size(), "json: unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    KDR_REQUIRE(pos_ + 4 <= text_.size(), "json: truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else KDR_REQUIRE(false, "json: bad hex digit in \\u escape");
                    }
                    // The observability layer only emits ASCII control escapes;
                    // reject surrogate pairs rather than mis-decode them.
                    KDR_REQUIRE(code < 0x80, "json: non-ASCII \\u escape unsupported");
                    out += static_cast<char>(code);
                    break;
                }
                default: KDR_REQUIRE(false, "json: bad escape '\\", e, "'");
            }
        }
        return out;
    }

    Value parse_number() {
        const std::size_t start = pos_;
        // Build a bounded, NUL-terminated copy for strtod.
        std::string buf;
        auto take = [&](auto pred) {
            while (pos_ < text_.size() && pred(text_[pos_])) buf += text_[pos_++];
        };
        if (pos_ < text_.size() && text_[pos_] == '-') buf += text_[pos_++];
        take([](char c) { return c >= '0' && c <= '9'; });
        if (pos_ < text_.size() && text_[pos_] == '.') {
            buf += text_[pos_++];
            take([](char c) { return c >= '0' && c <= '9'; });
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            buf += text_[pos_++];
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
                buf += text_[pos_++];
            take([](char c) { return c >= '0' && c <= '9'; });
        }
        char* end = nullptr;
        const double v = std::strtod(buf.c_str(), &end);
        KDR_REQUIRE(!buf.empty() && end == buf.c_str() + buf.size(),
                    "json: malformed number at offset ", start);
        return Value(v);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string Value::dump() const {
    std::string out;
    dump_value(out, *this);
    return out;
}

Value Value::parse(std::string_view text) { return Parser(text).run(); }

} // namespace kdr::obs::json
