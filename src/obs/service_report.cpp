#include "obs/service_report.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace kdr::obs {

namespace {

json::Value to_value(const ServiceReport& r) {
    json::Value doc;
    auto& root = doc.object();
    const auto num = [](std::uint64_t v) { return json::Value(static_cast<double>(v)); };
    root.emplace("submitted", num(r.submitted));
    root.emplace("completed", num(r.completed));
    root.emplace("recovered", num(r.recovered));
    root.emplace("deadline_misses", num(r.deadline_misses));
    root.emplace("aborted", num(r.aborted));
    root.emplace("rejected", num(r.rejected));
    root.emplace("makespan_seconds", json::Value(r.makespan));
    root.emplace("solves_per_second", json::Value(r.solves_per_second));
    root.emplace("latency_p50_seconds", json::Value(r.latency_p50));
    root.emplace("latency_p99_seconds", json::Value(r.latency_p99));
    root.emplace("utilization", json::Value(r.utilization));
    root.emplace("trace_cache_hit_rate", json::Value(r.trace_cache_hit_rate));
    root.emplace("analysis_seconds_per_job", json::Value(r.analysis_seconds_per_job));

    json::Value tenants;
    tenants.array();
    for (const TenantStats& t : r.tenants) {
        json::Value::Object o;
        o.emplace("tenant", json::Value(t.tenant));
        o.emplace("weight", json::Value(t.weight));
        o.emplace("jobs", num(t.jobs));
        o.emplace("rejected", num(t.rejected));
        o.emplace("service_seconds", json::Value(t.service_seconds));
        o.emplace("share", json::Value(t.share));
        o.emplace("mean_latency_seconds", json::Value(t.mean_latency));
        tenants.array().emplace_back(std::move(o));
    }
    root.emplace("tenants", std::move(tenants));
    return doc;
}

} // namespace

std::string ServiceReport::to_json() const { return to_value(*this).dump(); }

ServiceReport ServiceReport::from_json(const std::string& text) {
    const json::Value doc = json::Value::parse(text);
    ServiceReport r;
    const auto u64 = [&doc](const char* key) {
        return doc.has(key) ? static_cast<std::uint64_t>(doc[key].as_number()) : 0;
    };
    r.submitted = u64("submitted");
    r.completed = u64("completed");
    r.recovered = u64("recovered");
    r.deadline_misses = u64("deadline_misses");
    r.aborted = u64("aborted");
    r.rejected = u64("rejected");
    r.makespan = doc["makespan_seconds"].as_number();
    r.solves_per_second = doc["solves_per_second"].as_number();
    r.latency_p50 = doc["latency_p50_seconds"].as_number();
    r.latency_p99 = doc["latency_p99_seconds"].as_number();
    r.utilization = doc["utilization"].as_number();
    r.trace_cache_hit_rate = doc["trace_cache_hit_rate"].as_number();
    r.analysis_seconds_per_job = doc["analysis_seconds_per_job"].as_number();
    if (doc.has("tenants")) {
        for (const json::Value& v : doc["tenants"].as_array()) {
            TenantStats t;
            t.tenant = v["tenant"].as_string();
            t.weight = v["weight"].as_number();
            t.jobs = static_cast<std::uint64_t>(v["jobs"].as_number());
            t.rejected = static_cast<std::uint64_t>(v["rejected"].as_number());
            t.service_seconds = v["service_seconds"].as_number();
            t.share = v["share"].as_number();
            t.mean_latency = v["mean_latency_seconds"].as_number();
            r.tenants.push_back(std::move(t));
        }
    }
    return r;
}

void ServiceReport::print(std::ostream& os) const {
    os << "=== service report ===\n"
       << "jobs: " << submitted << " submitted; " << completed << " completed, " << recovered
       << " recovered, " << deadline_misses << " deadline misses, " << aborted
       << " aborted, " << rejected << " rejected\n"
       << "throughput: " << Table::num(solves_per_second, 2) << " solves/s over "
       << Table::num(makespan * 1e3, 3) << " ms virtual, utilization "
       << Table::num(utilization * 100.0, 1) << "%\n"
       << "latency: p50 " << Table::num(latency_p50 * 1e3, 3) << " ms, p99 "
       << Table::num(latency_p99 * 1e3, 3) << " ms\n"
       << "trace cache: " << Table::num(trace_cache_hit_rate * 100.0, 1)
       << "% hit rate, analysis " << Table::num(analysis_seconds_per_job * 1e6, 2)
       << " us/job\n";
    if (!tenants.empty()) {
        Table t({"tenant", "weight", "jobs", "rejected", "service ms", "share %",
                 "mean latency ms"});
        for (const TenantStats& s : tenants) {
            t.add_row({s.tenant, Table::num(s.weight, 2), std::to_string(s.jobs),
                       std::to_string(s.rejected), Table::num(s.service_seconds * 1e3, 3),
                       Table::num(s.share * 100.0, 1), Table::num(s.mean_latency * 1e3, 3)});
        }
        t.print(os);
    }
}

void write_service_report(const std::string& path, const ServiceReport& report) {
    std::ofstream out(path);
    KDR_REQUIRE(out.good(), "write_service_report: cannot open '", path, "'");
    out << report.to_json() << "\n";
    KDR_REQUIRE(out.good(), "write_service_report: write to '", path, "' failed");
}

} // namespace kdr::obs
