#include "obs/report.hpp"

#include <fstream>
#include <limits>

#include "obs/json.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace kdr::obs {

namespace {

/// Non-finite numbers serialize as null (obs::json); reading one back yields
/// NaN so a diverged-solve report round-trips instead of throwing.
double number_or_nan(const json::Value& v) {
    return v.is_null() ? std::numeric_limits<double>::quiet_NaN() : v.as_number();
}

json::Value to_value(const SolveReport& r) {
    json::Value doc;
    auto& root = doc.object();
    root.emplace("makespan_seconds", json::Value(r.makespan));
    root.emplace("tasks_launched", json::Value(static_cast<double>(r.tasks)));
    root.emplace("busy_seconds_total", json::Value(r.busy_total));
    root.emplace("load_imbalance", json::Value(r.load_imbalance));
    root.emplace("transfer_bytes_total", json::Value(r.transfer_bytes));
    root.emplace("transfer_count_total", json::Value(static_cast<double>(r.transfer_count)));
    root.emplace("global_syncs", json::Value(static_cast<double>(r.global_syncs)));
    root.emplace("allreduce_wait_seconds", json::Value(r.allreduce_wait_seconds));
    root.emplace("status", json::Value(r.status));

    {
        json::Value::Object o;
        const auto num = [](std::uint64_t v) { return json::Value(static_cast<double>(v)); };
        o.emplace("task_faults", num(r.faults.task_faults));
        o.emplace("task_retries", num(r.faults.task_retries));
        o.emplace("retries_exhausted", num(r.faults.retries_exhausted));
        o.emplace("rollbacks", num(r.faults.rollbacks));
        o.emplace("stragglers", num(r.faults.stragglers));
        o.emplace("nic_degraded", num(r.faults.nic_degraded));
        o.emplace("nic_retransmits", num(r.faults.nic_retransmits));
        o.emplace("checkpoints", num(r.faults.checkpoints));
        o.emplace("restores", num(r.faults.restores));
        o.emplace("restarts", num(r.faults.restarts));
        o.emplace("fallbacks", num(r.faults.fallbacks));
        json::Value faults;
        faults.object() = std::move(o);
        root.emplace("faults", std::move(faults));
    }

    {
        json::Value::Object o;
        const auto num = [](std::uint64_t v) { return json::Value(static_cast<double>(v)); };
        o.emplace("enabled", json::Value(r.validation.enabled));
        o.emplace("tasks_checked", num(r.validation.tasks_checked));
        o.emplace("violations", num(r.validation.violations));
        o.emplace("race_pairs", num(r.validation.race_pairs));
        o.emplace("overdeclared", num(r.validation.overdeclared));
        json::Value validation;
        validation.object() = std::move(o);
        root.emplace("validation", std::move(validation));
    }

    json::Value kinds;
    kinds.array();
    for (const TaskKindStats& k : r.task_kinds) {
        json::Value::Object o;
        o.emplace("name", json::Value(k.name));
        o.emplace("count", json::Value(static_cast<double>(k.count)));
        o.emplace("total_seconds", json::Value(k.total));
        o.emplace("mean_seconds", json::Value(k.mean));
        o.emplace("max_seconds", json::Value(k.max));
        kinds.array().emplace_back(std::move(o));
    }
    root.emplace("task_kinds", std::move(kinds));

    json::Value nodes;
    nodes.array();
    for (const NodeStats& n : r.nodes) {
        json::Value::Object o;
        o.emplace("node", json::Value(static_cast<double>(n.node)));
        o.emplace("busy_seconds", json::Value(n.busy));
        o.emplace("utilization", json::Value(n.utilization));
        o.emplace("comm_seconds", json::Value(n.comm_seconds));
        o.emplace("comm_fraction", json::Value(n.comm_fraction));
        o.emplace("idle_fraction", json::Value(n.idle_fraction));
        nodes.array().emplace_back(std::move(o));
    }
    root.emplace("nodes", std::move(nodes));

    if (r.critical_path.enabled) {
        json::Value::Object o;
        o.emplace("total_seconds", json::Value(r.critical_path.total));
        o.emplace("kernel_seconds", json::Value(r.critical_path.kernel));
        o.emplace("transfer_seconds", json::Value(r.critical_path.transfer));
        o.emplace("handshake_seconds", json::Value(r.critical_path.handshake));
        o.emplace("allreduce_seconds", json::Value(r.critical_path.allreduce));
        o.emplace("runtime_seconds", json::Value(r.critical_path.runtime_overhead));
        o.emplace("idle_seconds", json::Value(r.critical_path.idle));
        o.emplace("events", json::Value(static_cast<double>(r.critical_path.events)));
        o.emplace("events_dropped",
                  json::Value(static_cast<double>(r.critical_path.events_dropped)));
        json::Value kinds_on_path;
        kinds_on_path.array();
        for (const CriticalPathKind& k : r.critical_path.by_kind) {
            json::Value::Object ko;
            ko.emplace("name", json::Value(k.name));
            ko.emplace("segments", json::Value(static_cast<double>(k.segments)));
            ko.emplace("seconds", json::Value(k.seconds));
            kinds_on_path.array().emplace_back(std::move(ko));
        }
        o.emplace("by_kind", std::move(kinds_on_path));
        json::Value cp;
        cp.object() = std::move(o);
        root.emplace("critical_path", std::move(cp));
    }

    {
        json::Value::Object o;
        o.emplace("p50_seconds", json::Value(r.task_duration.p50));
        o.emplace("p90_seconds", json::Value(r.task_duration.p90));
        o.emplace("p99_seconds", json::Value(r.task_duration.p99));
        json::Value q;
        q.object() = std::move(o);
        root.emplace("task_duration_quantiles", std::move(q));
    }

    json::Value transfers;
    transfers.array();
    for (const TransferEdge& t : r.transfers) {
        json::Value::Object o;
        o.emplace("src", json::Value(static_cast<double>(t.src)));
        o.emplace("dst", json::Value(static_cast<double>(t.dst)));
        o.emplace("bytes", json::Value(t.bytes));
        o.emplace("count", json::Value(static_cast<double>(t.count)));
        transfers.array().emplace_back(std::move(o));
    }
    root.emplace("transfers", std::move(transfers));

    json::Value phases;
    phases.array();
    for (const PhaseStats& p : r.phases) {
        json::Value::Object o;
        o.emplace("name", json::Value(p.name));
        o.emplace("count", json::Value(static_cast<double>(p.count)));
        o.emplace("total_seconds", json::Value(p.total));
        phases.array().emplace_back(std::move(o));
    }
    root.emplace("phases", std::move(phases));

    json::Value convergence;
    convergence.array();
    for (const ConvergenceSample& s : r.convergence) {
        json::Value::Object o;
        o.emplace("iteration", json::Value(static_cast<double>(s.iteration)));
        o.emplace("residual", json::Value(s.residual));
        o.emplace("virtual_time", json::Value(s.virtual_time));
        convergence.array().emplace_back(std::move(o));
    }
    root.emplace("convergence", std::move(convergence));

    return doc;
}

} // namespace

std::string SolveReport::to_json() const { return to_value(*this).dump(); }

SolveReport SolveReport::from_json(const std::string& text) {
    const json::Value doc = json::Value::parse(text);
    SolveReport r;
    r.makespan = doc["makespan_seconds"].as_number();
    r.tasks = static_cast<std::uint64_t>(doc["tasks_launched"].as_number());
    r.busy_total = doc["busy_seconds_total"].as_number();
    r.load_imbalance = doc["load_imbalance"].as_number();
    r.transfer_bytes = doc["transfer_bytes_total"].as_number();
    r.transfer_count = static_cast<std::uint64_t>(doc["transfer_count_total"].as_number());
    // status/faults are has()-guarded: reports written before the fault layer
    // (or by trimmed-down tools) still parse.
    if (doc.has("global_syncs")) {
        r.global_syncs = static_cast<std::uint64_t>(doc["global_syncs"].as_number());
    }
    if (doc.has("allreduce_wait_seconds")) {
        r.allreduce_wait_seconds = doc["allreduce_wait_seconds"].as_number();
    }
    if (doc.has("status")) r.status = doc["status"].as_string();
    if (doc.has("faults")) {
        const json::Value& f = doc["faults"];
        const auto u64 = [&f](const char* key) {
            return f.has(key) ? static_cast<std::uint64_t>(f[key].as_number()) : 0;
        };
        r.faults.task_faults = u64("task_faults");
        r.faults.task_retries = u64("task_retries");
        r.faults.retries_exhausted = u64("retries_exhausted");
        r.faults.rollbacks = u64("rollbacks");
        r.faults.stragglers = u64("stragglers");
        r.faults.nic_degraded = u64("nic_degraded");
        r.faults.nic_retransmits = u64("nic_retransmits");
        r.faults.checkpoints = u64("checkpoints");
        r.faults.restores = u64("restores");
        r.faults.restarts = u64("restarts");
        r.faults.fallbacks = u64("fallbacks");
    }
    if (doc.has("validation")) {
        const json::Value& v = doc["validation"];
        const auto u64 = [&v](const char* key) {
            return v.has(key) ? static_cast<std::uint64_t>(v[key].as_number()) : 0;
        };
        r.validation.enabled = v.has("enabled") && v["enabled"].as_bool();
        r.validation.tasks_checked = u64("tasks_checked");
        r.validation.violations = u64("violations");
        r.validation.race_pairs = u64("race_pairs");
        r.validation.overdeclared = u64("overdeclared");
    }
    for (const json::Value& v : doc["task_kinds"].as_array()) {
        r.task_kinds.push_back({v["name"].as_string(),
                                static_cast<std::uint64_t>(v["count"].as_number()),
                                v["total_seconds"].as_number(), v["mean_seconds"].as_number(),
                                v["max_seconds"].as_number()});
    }
    for (const json::Value& v : doc["nodes"].as_array()) {
        NodeStats n;
        n.node = static_cast<int>(v["node"].as_number());
        n.busy = v["busy_seconds"].as_number();
        n.utilization = v["utilization"].as_number();
        // Newer fields, has()-guarded for reports written before this layer.
        if (v.has("comm_seconds")) n.comm_seconds = v["comm_seconds"].as_number();
        if (v.has("comm_fraction")) n.comm_fraction = v["comm_fraction"].as_number();
        if (v.has("idle_fraction")) n.idle_fraction = v["idle_fraction"].as_number();
        r.nodes.push_back(n);
    }
    if (doc.has("critical_path")) {
        const json::Value& c = doc["critical_path"];
        const auto num = [&c](const char* key) {
            return c.has(key) ? c[key].as_number() : 0.0;
        };
        r.critical_path.enabled = true;
        r.critical_path.total = num("total_seconds");
        r.critical_path.kernel = num("kernel_seconds");
        r.critical_path.transfer = num("transfer_seconds");
        r.critical_path.handshake = num("handshake_seconds");
        r.critical_path.allreduce = num("allreduce_seconds");
        r.critical_path.runtime_overhead = num("runtime_seconds");
        r.critical_path.idle = num("idle_seconds");
        r.critical_path.events = static_cast<std::uint64_t>(num("events"));
        r.critical_path.events_dropped = static_cast<std::uint64_t>(num("events_dropped"));
        if (c.has("by_kind")) {
            for (const json::Value& v : c["by_kind"].as_array()) {
                r.critical_path.by_kind.push_back(
                    {v["name"].as_string(),
                     static_cast<std::uint64_t>(v["segments"].as_number()),
                     v["seconds"].as_number()});
            }
        }
    }
    if (doc.has("task_duration_quantiles")) {
        const json::Value& q = doc["task_duration_quantiles"];
        if (q.has("p50_seconds")) r.task_duration.p50 = q["p50_seconds"].as_number();
        if (q.has("p90_seconds")) r.task_duration.p90 = q["p90_seconds"].as_number();
        if (q.has("p99_seconds")) r.task_duration.p99 = q["p99_seconds"].as_number();
    }
    for (const json::Value& v : doc["transfers"].as_array()) {
        r.transfers.push_back({static_cast<int>(v["src"].as_number()),
                               static_cast<int>(v["dst"].as_number()),
                               v["bytes"].as_number(),
                               static_cast<std::uint64_t>(v["count"].as_number())});
    }
    for (const json::Value& v : doc["phases"].as_array()) {
        r.phases.push_back({v["name"].as_string(),
                            static_cast<std::uint64_t>(v["count"].as_number()),
                            v["total_seconds"].as_number()});
    }
    for (const json::Value& v : doc["convergence"].as_array()) {
        r.convergence.push_back({static_cast<int>(v["iteration"].as_number()),
                                 number_or_nan(v["residual"]),
                                 v["virtual_time"].as_number()});
    }
    return r;
}

void SolveReport::print(std::ostream& os) const {
    os << "=== solve report ===\n"
       << "status: " << status << "\n"
       << "makespan: " << Table::num(makespan * 1e3, 3) << " ms virtual, " << tasks
       << " tasks, busy " << Table::num(busy_total * 1e3, 3) << " ms, load imbalance "
       << Table::num(load_imbalance, 3) << "x\n"
       << "transfers: " << Table::eng(transfer_bytes, 2) << "B in " << transfer_count
       << " messages\n";
    if (global_syncs > 0) {
        os << "global syncs: " << global_syncs << " allreduces, "
           << Table::num(allreduce_wait_seconds * 1e3, 3) << " ms non-overlapped wait\n";
    }
    if (faults.any()) {
        os << "faults: " << faults.task_faults << " injected, " << faults.task_retries
           << " retried, " << faults.retries_exhausted << " exhausted, " << faults.rollbacks
           << " rollbacks, " << faults.stragglers << " stragglers; nic "
           << faults.nic_degraded << " degraded / " << faults.nic_retransmits
           << " retransmits; recovery " << faults.checkpoints << " ckpt / "
           << faults.restores << " restore / " << faults.restarts << " restart / "
           << faults.fallbacks << " fallback\n";
    }
    if (validation.enabled) {
        os << "validation: " << validation.tasks_checked << " tasks checked, "
           << validation.violations << " privilege violations, " << validation.race_pairs
           << " race pairs, " << validation.overdeclared << " over-declared requirements"
           << (validation.any() ? "" : " (clean)") << "\n";
    }

    if (!task_kinds.empty()) {
        Table t({"task kind", "count", "total ms", "mean us", "max us", "% busy"});
        for (const TaskKindStats& k : task_kinds) {
            t.add_row({k.name, std::to_string(k.count), Table::num(k.total * 1e3, 3),
                       Table::num(k.mean * 1e6, 2), Table::num(k.max * 1e6, 2),
                       Table::num(busy_total > 0.0 ? 100.0 * k.total / busy_total : 0.0, 1)});
        }
        t.print(os);
    }

    if (task_duration.p50 > 0.0 || task_duration.p99 > 0.0) {
        os << "task duration: p50 " << Table::num(task_duration.p50 * 1e6, 2) << " us, p90 "
           << Table::num(task_duration.p90 * 1e6, 2) << " us, p99 "
           << Table::num(task_duration.p99 * 1e6, 2) << " us\n";
    }

    if (!nodes.empty()) {
        Table t({"node", "busy ms", "utilization", "comm ms", "comm", "idle"});
        for (const NodeStats& n : nodes) {
            t.add_row({std::to_string(n.node), Table::num(n.busy * 1e3, 3),
                       Table::num(n.utilization * 100.0, 1) + "%",
                       Table::num(n.comm_seconds * 1e3, 3),
                       Table::num(n.comm_fraction * 100.0, 1) + "%",
                       Table::num(n.idle_fraction * 100.0, 1) + "%"});
        }
        t.print(os);
    }

    if (critical_path.enabled) {
        os << "critical path: " << Table::num(critical_path.total * 1e3, 3)
           << " ms virtual (kernel " << Table::num(critical_path.kernel * 1e3, 3)
           << ", transfer " << Table::num(critical_path.transfer * 1e3, 3) << ", handshake "
           << Table::num(critical_path.handshake * 1e3, 3) << ", allreduce "
           << Table::num(critical_path.allreduce * 1e3, 3) << ", runtime "
           << Table::num(critical_path.runtime_overhead * 1e3, 3) << ", idle "
           << Table::num(critical_path.idle * 1e3, 3) << " ms); " << critical_path.events
           << " events recorded, " << critical_path.events_dropped << " dropped\n";
        if (!critical_path.by_kind.empty()) {
            Table t({"task kind on path", "segments", "ms on path", "% of path"});
            for (const CriticalPathKind& k : critical_path.by_kind) {
                t.add_row({k.name, std::to_string(k.segments), Table::num(k.seconds * 1e3, 3),
                           Table::num(critical_path.total > 0.0
                                          ? 100.0 * k.seconds / critical_path.total
                                          : 0.0,
                                      1)});
            }
            t.print(os);
        }
    }

    if (!transfers.empty()) {
        Table t({"src", "dst", "bytes", "messages"});
        for (const TransferEdge& e : transfers) {
            t.add_row({std::to_string(e.src), std::to_string(e.dst), Table::eng(e.bytes, 2),
                       std::to_string(e.count)});
        }
        t.print(os);
    }

    if (!phases.empty()) {
        Table t({"phase", "count", "total ms"});
        for (const PhaseStats& p : phases) {
            t.add_row({p.name, std::to_string(p.count), Table::num(p.total * 1e3, 3)});
        }
        t.print(os);
    }

    if (!convergence.empty()) {
        const ConvergenceSample& first = convergence.front();
        const ConvergenceSample& last = convergence.back();
        os << "convergence: residual " << first.residual << " -> " << last.residual << " over "
           << (last.iteration - first.iteration) << " iterations ("
           << Table::num(last.virtual_time * 1e3, 3) << " ms virtual)\n";
    }
}

void write_solve_report(const std::string& path, const SolveReport& report) {
    std::ofstream out(path);
    KDR_REQUIRE(out.good(), "write_solve_report: cannot open '", path, "'");
    out << report.to_json() << "\n";
    KDR_REQUIRE(out.good(), "write_solve_report: write to '", path, "' failed");
}

} // namespace kdr::obs
