#pragma once

/// \file service_report.hpp
/// Throughput-level observability for the solver-as-a-service engine: one
/// report per service run summarizing the whole request stream rather than a
/// single solve. Pure data + (de)serialization — populated by
/// service::ServiceEngine, kept here so reporting tools depend only on obs.
///
/// The headline numbers mirror what a real multi-tenant solver service would
/// export: throughput (solves per virtual second over the stream makespan),
/// job latency quantiles (arrival to final convergence measure), machine
/// utilization, the shared-trace-cache hit rate (jobs that replayed a
/// structurally-identical job's captured schedule instead of re-running
/// dependence analysis), and the attained-service share per tenant.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace kdr::obs {

/// Per-tenant accounting under weighted fair ordering.
struct TenantStats {
    std::string tenant;
    double weight = 1.0;
    std::uint64_t jobs = 0;         ///< executed jobs (any terminal state)
    std::uint64_t rejected = 0;     ///< jobs dropped by admission control
    double service_seconds = 0.0;   ///< attained slot-occupancy (virtual)
    double share = 0.0;             ///< service_seconds / total service
    double mean_latency = 0.0;      ///< mean arrival-to-finish (virtual)
};

/// Summary of one service run (a drained request stream).
struct ServiceReport {
    // ----------------------------------------------------- job accounting
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;       ///< converged within deadline, no restores
    std::uint64_t recovered = 0;       ///< converged but needed checkpoint restores
    std::uint64_t deadline_misses = 0; ///< converged after the latency SLO
    std::uint64_t aborted = 0;         ///< any non-converged terminal classification
    std::uint64_t rejected = 0;        ///< dropped by bounded-queue admission

    // ----------------------------------------------------------- headline
    double makespan = 0.0;         ///< first arrival to last finish (virtual s)
    double solves_per_second = 0.0;///< executed jobs / makespan
    double latency_p50 = 0.0;      ///< arrival-to-finish quantiles (virtual s)
    double latency_p99 = 0.0;
    double utilization = 0.0;      ///< busy fraction of all processors

    // ------------------------------------------------- shared-trace cache
    /// Fraction of executed jobs that re-used another job's captured
    /// dependence schedule (no task recording during the job).
    double trace_cache_hit_rate = 0.0;
    /// Mean dependence-analysis pipeline stall charged per executed job;
    /// the number the trace cache exists to drive toward zero.
    double analysis_seconds_per_job = 0.0;

    std::vector<TenantStats> tenants;

    [[nodiscard]] std::string to_json() const;
    [[nodiscard]] static ServiceReport from_json(const std::string& text);

    /// Human-readable summary (service header + per-tenant table).
    void print(std::ostream& os) const;
};

/// Write `report.to_json()` to a file (throws kdr::Error on I/O failure).
void write_service_report(const std::string& path, const ServiceReport& report);

} // namespace kdr::obs
