#pragma once

/// \file span.hpp
/// Solver-phase spans: lightweight intervals of *virtual* time that name why
/// the underlying tasks ran (spmv, dot, axpy, psolve, restart, ...). Spans
/// nest with strict LIFO discipline and are recorded by a SpanTracker whose
/// clock is supplied by the owner (the Runtime reads its cluster horizon).
/// The Chrome-trace exporter renders completed spans as a separate track
/// above the per-processor task rows, one row per nesting depth.

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace kdr::obs {

/// One completed span in virtual time; depth 0 is outermost.
struct SpanRecord {
    std::string name;
    double start = 0.0;
    double finish = 0.0;
    int depth = 0;
};

class SpanTracker {
public:
    using Clock = std::function<double()>;

    explicit SpanTracker(Clock clock) : clock_(std::move(clock)) {
        KDR_REQUIRE(clock_ != nullptr, "SpanTracker: null clock");
    }

    SpanTracker(const SpanTracker&) = delete;
    SpanTracker& operator=(const SpanTracker&) = delete;

    /// Open a span; returns a token to pass to close(). When disabled,
    /// returns a sentinel close() ignores.
    std::size_t open(std::string name) {
        if (!enabled_) return kDisabledToken;
        const std::size_t token = stack_.size();
        stack_.push_back({std::move(name), clock_()});
        return token;
    }

    /// Close the innermost open span (tokens enforce LIFO nesting).
    void close(std::size_t token) {
        if (token == kDisabledToken) return;
        KDR_REQUIRE(!stack_.empty() && token == stack_.size() - 1,
                    "SpanTracker: spans must close innermost-first (token ", token,
                    ", open depth ", stack_.size(), ")");
        OpenSpan& top = stack_.back();
        completed_.push_back({std::move(top.name), top.start, clock_(),
                              static_cast<int>(token)});
        stack_.pop_back();
    }

    [[nodiscard]] std::size_t open_depth() const noexcept { return stack_.size(); }
    [[nodiscard]] const std::vector<SpanRecord>& completed() const noexcept {
        return completed_;
    }

    /// Drain completed spans (open spans are unaffected).
    [[nodiscard]] std::vector<SpanRecord> take() {
        std::vector<SpanRecord> out;
        out.swap(completed_);
        return out;
    }

    void set_enabled(bool on) noexcept { enabled_ = on; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

private:
    static constexpr std::size_t kDisabledToken = static_cast<std::size_t>(-1);

    struct OpenSpan {
        std::string name;
        double start = 0.0;
    };

    Clock clock_;
    std::vector<OpenSpan> stack_;
    std::vector<SpanRecord> completed_;
    bool enabled_ = true;
};

/// RAII span: opens on construction, closes on destruction.
class Span {
public:
    Span(SpanTracker& tracker, std::string name)
        : tracker_(&tracker), token_(tracker.open(std::move(name))) {}

    Span(Span&& other) noexcept : tracker_(other.tracker_), token_(other.token_) {
        other.tracker_ = nullptr;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;

    ~Span() {
        if (tracker_ != nullptr) tracker_->close(token_);
    }

private:
    SpanTracker* tracker_;
    std::size_t token_;
};

} // namespace kdr::obs
