#include "obs/registry.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace kdr::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        KDR_REQUIRE(bounds_[i - 1] < bounds_[i],
                    "Histogram: bounds must be strictly increasing");
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    sum_ += v;
    ++count_;
}

/// Defined edge behavior: an empty histogram (or one with no bounds at all)
/// returns 0.0; a rank landing exactly on a bucket boundary returns that
/// boundary; ranks falling in the +Inf overflow bucket clamp to the largest
/// finite bound (no extrapolation past the observed range).
double Histogram::quantile(double q) const {
    return quantile_over(q, counts_, count_);
}

double Histogram::quantile_since(double q, const HistogramBaseline* since) const {
    if (since == nullptr) return quantile(q);
    KDR_REQUIRE(since->counts.size() == counts_.size() && since->count <= count_,
                "Histogram::quantile_since: baseline from a different histogram");
    std::vector<std::uint64_t> delta(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) delta[i] = counts_[i] - since->counts[i];
    return quantile_over(q, delta, count_ - since->count);
}

double Histogram::quantile_over(double q, const std::vector<std::uint64_t>& counts,
                                std::uint64_t total) const {
    KDR_REQUIRE(q >= 0.0 && q <= 1.0, "Histogram::quantile: q ", q, " outside [0, 1]");
    if (total == 0) return 0.0;
    const double rank = q * static_cast<double>(total);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double c = static_cast<double>(counts[i]);
        if (c == 0.0 || cum + c < rank) {
            cum += c;
            continue;
        }
        if (i == counts.size() - 1) break; // +Inf overflow bucket: clamp below
        const double hi = bounds_[i];
        // The underflow bucket (-inf, bounds_[0]] has no finite lower edge:
        // interpolate from 0 when the bucket spans it, and clamp to the
        // bucket's upper bound when that bound is itself negative — never
        // interpolate from 0 *down* to a negative bound (backwards).
        const double lo = i == 0 ? std::min(0.0, hi) : bounds_[i - 1];
        const double frac = std::clamp((rank - cum) / c, 0.0, 1.0);
        return lo + (hi - lo) * frac;
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::exponential_bounds(double start, double factor, int count) {
    KDR_REQUIRE(start > 0.0 && factor > 1.0 && count >= 1,
                "Histogram::exponential_bounds: need start > 0, factor > 1, count >= 1");
    std::vector<double> bounds;
    bounds.reserve(static_cast<std::size_t>(count));
    double b = start;
    for (int i = 0; i < count; ++i) {
        bounds.push_back(b);
        b *= factor;
    }
    return bounds;
}

namespace {

/// Canonical key: name + labels sorted by key ("name{a=1,b=2}").
std::pair<std::string, MetricId> canonicalize(const std::string& name, const Labels& labels) {
    MetricId id{name, labels};
    std::sort(id.labels.begin(), id.labels.end(),
              [](const Label& a, const Label& b) { return a.key < b.key; });
    for (std::size_t i = 1; i < id.labels.size(); ++i) {
        KDR_REQUIRE(id.labels[i - 1].key != id.labels[i].key, "Registry: duplicate label key '",
                    id.labels[i].key, "' on metric '", name, "'");
    }
    std::string key = name;
    key += '{';
    for (std::size_t i = 0; i < id.labels.size(); ++i) {
        if (i > 0) key += ',';
        key += id.labels[i].key;
        key += '=';
        key += id.labels[i].value;
    }
    key += '}';
    return {std::move(key), std::move(id)};
}

json::Value labels_json(const Labels& labels) {
    json::Value::Object obj;
    for (const Label& l : labels) obj.emplace(l.key, json::Value(l.value));
    return json::Value(std::move(obj));
}

} // namespace

Counter& Registry::counter(const std::string& name, const Labels& labels) {
    auto [key, id] = canonicalize(name, labels);
    auto it = counters_.find(key);
    if (it == counters_.end()) {
        it = counters_.emplace(std::move(key), Entry<Counter>{std::move(id), Counter{}}).first;
    }
    return it->second.metric;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
    auto [key, id] = canonicalize(name, labels);
    auto it = gauges_.find(key);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::move(key), Entry<Gauge>{std::move(id), Gauge{}}).first;
    }
    return it->second.metric;
}

Histogram& Registry::histogram(const std::string& name, const std::vector<double>& bounds,
                               const Labels& labels) {
    auto [key, id] = canonicalize(name, labels);
    auto it = histograms_.find(key);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::move(key), Entry<Histogram>{std::move(id), Histogram(bounds)})
                 .first;
    } else {
        KDR_REQUIRE(it->second.metric.bounds() == bounds,
                    "Registry: histogram '", name, "' re-registered with different bounds");
    }
    return it->second.metric;
}

double Registry::counter_value(const std::string& name, const Labels& labels) const {
    const auto [key, id] = canonicalize(name, labels);
    const auto it = counters_.find(key);
    return it == counters_.end() ? 0.0 : it->second.metric.value();
}

double Registry::counter_total(const std::string& name) const {
    double total = 0.0;
    for (const auto& [key, entry] : counters_) {
        if (entry.id.name == name) total += entry.metric.value();
    }
    return total;
}

RegistrySnapshot Registry::snapshot() const {
    RegistrySnapshot s;
    for (const auto& [key, entry] : counters_) s.counters.emplace(key, entry.metric.value());
    for (const auto& [key, entry] : histograms_) {
        s.histograms.emplace(key, HistogramBaseline{entry.metric.bucket_counts(),
                                                    entry.metric.sum(),
                                                    entry.metric.count()});
    }
    return s;
}

double Registry::counter_value_since(const std::string& name, const RegistrySnapshot& base,
                                     const Labels& labels) const {
    const auto [key, id] = canonicalize(name, labels);
    const auto it = counters_.find(key);
    const double now = it == counters_.end() ? 0.0 : it->second.metric.value();
    const auto bit = base.counters.find(key);
    return now - (bit == base.counters.end() ? 0.0 : bit->second);
}

double Registry::counter_total_since(const std::string& name,
                                     const RegistrySnapshot& base) const {
    double total = 0.0;
    for (const auto& [key, entry] : counters_) {
        if (entry.id.name != name) continue;
        const auto bit = base.counters.find(key);
        total += entry.metric.value() - (bit == base.counters.end() ? 0.0 : bit->second);
    }
    return total;
}

const HistogramBaseline* Registry::histogram_baseline(const RegistrySnapshot& base,
                                                      const std::string& name,
                                                      const Labels& labels) const {
    const auto [key, id] = canonicalize(name, labels);
    const auto it = base.histograms.find(key);
    return it == base.histograms.end() ? nullptr : &it->second;
}

void Registry::for_each_counter(
    const std::function<void(const MetricId&, const Counter&)>& fn) const {
    for (const auto& [key, entry] : counters_) fn(entry.id, entry.metric);
}

void Registry::for_each_gauge(
    const std::function<void(const MetricId&, const Gauge&)>& fn) const {
    for (const auto& [key, entry] : gauges_) fn(entry.id, entry.metric);
}

void Registry::for_each_histogram(
    const std::function<void(const MetricId&, const Histogram&)>& fn) const {
    for (const auto& [key, entry] : histograms_) fn(entry.id, entry.metric);
}

std::string Registry::to_json() const {
    json::Value doc;
    auto& root = doc.object();

    json::Value counters;
    counters.array();
    for (const auto& [key, entry] : counters_) {
        json::Value::Object o;
        o.emplace("name", json::Value(entry.id.name));
        o.emplace("labels", labels_json(entry.id.labels));
        o.emplace("value", json::Value(entry.metric.value()));
        counters.array().emplace_back(std::move(o));
    }
    root.emplace("counters", std::move(counters));

    json::Value gauges;
    gauges.array();
    for (const auto& [key, entry] : gauges_) {
        json::Value::Object o;
        o.emplace("name", json::Value(entry.id.name));
        o.emplace("labels", labels_json(entry.id.labels));
        o.emplace("value", json::Value(entry.metric.value()));
        gauges.array().emplace_back(std::move(o));
    }
    root.emplace("gauges", std::move(gauges));

    json::Value histograms;
    histograms.array();
    for (const auto& [key, entry] : histograms_) {
        const Histogram& h = entry.metric;
        json::Value::Object o;
        o.emplace("name", json::Value(entry.id.name));
        o.emplace("labels", labels_json(entry.id.labels));
        o.emplace("count", json::Value(static_cast<double>(h.count())));
        o.emplace("sum", json::Value(h.sum()));
        json::Value buckets;
        buckets.array();
        for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
            json::Value::Object b;
            if (i < h.bounds().size()) {
                b.emplace("le", json::Value(h.bounds()[i]));
            } else {
                b.emplace("le", json::Value("+inf"));
            }
            b.emplace("count", json::Value(static_cast<double>(h.bucket_counts()[i])));
            buckets.array().emplace_back(std::move(b));
        }
        o.emplace("buckets", std::move(buckets));
        histograms.array().emplace_back(std::move(o));
    }
    root.emplace("histograms", std::move(histograms));

    return doc.dump();
}

void Registry::reset() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace kdr::obs
