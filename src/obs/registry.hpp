#pragma once

/// \file registry.hpp
/// The library-wide metrics registry: named counters, gauges, and
/// fixed-bucket histograms, each optionally qualified by labels (task name,
/// processor kind, node pair, ...). The Runtime, Planner, load balancer, and
/// BSP simulator all report into a Registry, giving every layer a common
/// place to publish what happened — the same role `-log_view` plays in PETSc
/// and the metrics endpoint plays in a production service.
///
/// Identity follows the Prometheus convention: a metric is (name, label
/// set); label order does not matter (labels are canonicalized by key).
/// Returned metric references stay valid for the registry's lifetime, so hot
/// paths look a handle up once and update it thereafter.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace kdr::obs {

struct Label {
    std::string key;
    std::string value;
};
using Labels = std::vector<Label>;

/// Monotonically increasing value (counts, accumulated seconds or bytes).
class Counter {
public:
    void add(double v) {
        KDR_REQUIRE(v >= 0.0, "Counter: negative increment ", v);
        value_ += v;
    }
    void inc() noexcept { value_ += 1.0; }
    [[nodiscard]] double value() const noexcept { return value_; }

private:
    double value_ = 0.0;
};

/// Point-in-time value (queue depths, occupancy, current imbalance).
class Gauge {
public:
    void set(double v) noexcept { value_ = v; }
    void add(double v) noexcept { value_ += v; }
    [[nodiscard]] double value() const noexcept { return value_; }

private:
    double value_ = 0.0;
};

/// Frozen tallies of one histogram inside a RegistrySnapshot.
struct HistogramBaseline {
    std::vector<std::uint64_t> counts; // bounds().size() + 1 entries
    double sum = 0.0;
    std::uint64_t count = 0;
};

/// Point-in-time copy of every counter's and histogram's tallies, keyed by
/// the canonical (name, sorted-labels) identity. Subtracting a snapshot from
/// the live registry turns cumulative metrics into per-interval values — how
/// the second solve on a shared runtime stops attributing the first solve's
/// work to itself. Gauges are point-in-time already and are not snapshotted.
struct RegistrySnapshot {
    std::map<std::string, double> counters;
    std::map<std::string, HistogramBaseline> histograms;
};

/// Fixed-bucket histogram: `bounds` are strictly increasing upper bounds; an
/// implicit +inf bucket catches the overflow. Observation `v` lands in the
/// first bucket with v <= bound.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
    /// bounds().size() + 1 entries; the last is the overflow bucket.
    [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
        return counts_;
    }

    /// Estimated q-quantile (q in [0, 1]) by linear interpolation within the
    /// bucket holding the target rank — the Prometheus histogram_quantile
    /// convention: the first bucket interpolates from 0, and ranks landing in
    /// the +inf overflow bucket clamp to the largest finite bound. Returns 0
    /// for an empty histogram. Feeds the p50/p99 task-duration rows in
    /// SolveReport (service-latency SLO groundwork).
    [[nodiscard]] double quantile(double q) const;

    /// Quantile over only the observations made after `since` was frozen
    /// (a baseline captured from this histogram by Registry::snapshot()).
    /// nullptr — no baseline — reproduces quantile(q).
    [[nodiscard]] double quantile_since(double q, const HistogramBaseline* since) const;

    /// Convenience: `count` geometrically spaced bounds from `start`.
    [[nodiscard]] static std::vector<double> exponential_bounds(double start, double factor,
                                                                int count);

private:
    [[nodiscard]] double quantile_over(double q, const std::vector<std::uint64_t>& counts,
                                       std::uint64_t total) const;

    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/// A metric's identity: name plus canonicalized (key-sorted) labels.
struct MetricId {
    std::string name;
    Labels labels;
};

class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Find-or-create. References remain valid for the registry's lifetime.
    Counter& counter(const std::string& name, const Labels& labels = {});
    Gauge& gauge(const std::string& name, const Labels& labels = {});
    /// `bounds` must match the existing histogram's bounds on re-access.
    Histogram& histogram(const std::string& name, const std::vector<double>& bounds,
                         const Labels& labels = {});

    /// Value of one counter (0 if never created) / sum across all label sets.
    [[nodiscard]] double counter_value(const std::string& name,
                                       const Labels& labels = {}) const;
    [[nodiscard]] double counter_total(const std::string& name) const;

    /// Freeze the current tallies of every counter and histogram.
    [[nodiscard]] RegistrySnapshot snapshot() const;

    /// Counter increase since `base`. Metrics absent from the snapshot count
    /// from zero (they were created after it was taken).
    [[nodiscard]] double counter_value_since(const std::string& name,
                                             const RegistrySnapshot& base,
                                             const Labels& labels = {}) const;
    [[nodiscard]] double counter_total_since(const std::string& name,
                                             const RegistrySnapshot& base) const;

    /// Baseline `base` froze for one histogram, or nullptr if the histogram
    /// was created after the snapshot. Feed to Histogram::quantile_since.
    [[nodiscard]] const HistogramBaseline* histogram_baseline(
        const RegistrySnapshot& base, const std::string& name,
        const Labels& labels = {}) const;

    void for_each_counter(
        const std::function<void(const MetricId&, const Counter&)>& fn) const;
    void for_each_gauge(const std::function<void(const MetricId&, const Gauge&)>& fn) const;
    void for_each_histogram(
        const std::function<void(const MetricId&, const Histogram&)>& fn) const;

    [[nodiscard]] std::size_t metric_count() const noexcept {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// Serialize every metric (deterministic order) as a JSON document.
    [[nodiscard]] std::string to_json() const;

    /// Drop all metrics (new benchmark repetition). Invalidates references.
    void reset();

private:
    template <typename M>
    struct Entry {
        MetricId id;
        M metric;
    };

    std::map<std::string, Entry<Counter>> counters_;
    std::map<std::string, Entry<Gauge>> gauges_;
    std::map<std::string, Entry<Histogram>> histograms_;
};

} // namespace kdr::obs
