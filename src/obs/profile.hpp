#pragma once

/// \file profile.hpp
/// The task-level event profiler: an opt-in, low-overhead recorder of *what
/// occupied every simulated resource and when* on the virtual clock. Where
/// the metrics registry answers "how much" and spans answer "which solver
/// phase", the profiler keeps the full event timeline — every task
/// execution, transfer message (send/recv NIC occupancy plus rendezvous
/// handshakes), dependence-analysis interval, and allreduce phase — as
/// `(node, lane, category, name, t_start, t_end, deps)` records, the role
/// Legion Prof and PETSc's `-log_view -log_trace` play for the systems the
/// paper builds on.
///
/// Recording is observation-only by construction: instrumented layers hand
/// the profiler times they already computed, so enabling it cannot move a
/// single virtual-time event or residual bit. Events land in bounded
/// per-lane ring buffers (oldest dropped first), so 10^4+-task runs profile
/// at a fixed memory ceiling.
///
/// On top of the event log the profiler derives
///  * a Chrome-trace JSON export (one pid per node, one tid per processor /
///    NIC lane / analysis pipeline; loadable in Perfetto or
///    chrome://tracing), built with the obs::json document model;
///  * the critical path: the longest dependent chain ending at the profiled
///    horizon, with cost attribution by category (kernel / transfer /
///    handshake / allreduce / runtime overhead / idle) and by task kind;
///  * per-node utilization (busy / comm / idle fractions) and the
///    node-to-node communication matrix (bytes + messages per (src,dst)).

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace kdr::obs {

/// What an event's interval was spent on. `Idle` is only produced by the
/// critical-path analysis (gaps between chained events), never recorded.
enum class EventCategory : std::uint8_t {
    Kernel,    ///< task execution on a processor
    Transfer,  ///< NIC occupancy of one message direction (send or recv)
    Handshake, ///< rendezvous request/grant preceding a large payload
    Allreduce, ///< collective phase (BSP substrate)
    Runtime,   ///< dependence-analysis pipeline occupancy
    Idle,      ///< critical-path gap (no recorded event explains the wait)
};
inline constexpr std::size_t kEventCategoryCount = 6;

[[nodiscard]] const char* to_string(EventCategory c);

using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// One recorded interval on one resource lane.
struct ProfileEvent {
    EventId id = kNoEvent;
    std::int32_t node = 0; ///< Chrome-trace pid
    std::int32_t lane = 0; ///< Chrome-trace tid (see Profiler lane helpers)
    EventCategory category = EventCategory::Kernel;
    std::string name;
    double start = 0.0;
    double end = 0.0;
    double bytes = 0.0;     ///< transfer payload; 0 for non-transfer events
    std::int32_t peer = -1; ///< transfer peer node; -1 for non-transfer events
    std::vector<EventId> deps; ///< producing events (best effort)

    [[nodiscard]] double duration() const noexcept { return end - start; }
};

struct ProfilerOptions {
    /// Ring capacity per (node, lane). When a lane fills, its oldest events
    /// are dropped (counted in events_dropped()); analyses keep working on
    /// the retained suffix.
    std::size_t lane_capacity = std::size_t{1} << 18;
};

/// One step of the critical path, earliest first. Segments tile [0, total]
/// with no overlap; `Idle` segments fill gaps the event DAG does not explain.
struct PathSegment {
    EventCategory category = EventCategory::Idle;
    std::string name;
    double start = 0.0;
    double end = 0.0;
    std::int32_t node = -1; ///< -1 for idle gaps
    std::int32_t lane = -1;
};

/// Longest dependent chain through the recorded events, ending at the
/// profiled horizon. Category costs (plus Idle gaps) sum to `total` exactly.
struct CriticalPath {
    double total = 0.0; ///< end time of the chain's final event
    std::vector<PathSegment> segments;
    std::array<double, kEventCategoryCount> by_category{};

    struct KindCost {
        std::string name;
        std::uint64_t segments = 0;
        double seconds = 0.0;
    };
    std::vector<KindCost> by_kind; ///< kernel segments per task name, descending

    [[nodiscard]] double category_seconds(EventCategory c) const {
        return by_category[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] double category_sum() const;
};

/// Busy / communication / idle split of one node over the profiled horizon.
struct NodeUtilization {
    int node = 0;
    double busy_seconds = 0.0; ///< summed kernel time across the node's processors
    double comm_seconds = 0.0; ///< summed NIC-lane occupancy (send + recv)
    double busy_fraction = 0.0; ///< busy / (horizon * processors)
    double comm_fraction = 0.0; ///< comm / (horizon * 2 NIC lanes)
    double idle_fraction = 0.0; ///< 1 - busy_fraction
};

/// One directed edge of the communication matrix (from send-lane events, so
/// each message is counted exactly once).
struct CommEdge {
    int src = 0;
    int dst = 0;
    double bytes = 0.0;
    std::uint64_t messages = 0;
};

class Profiler {
public:
    Profiler(int nodes, int gpus_per_node, ProfilerOptions options = {});
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    // ------------------------------------------------------------- lanes
    // Fixed per-node lane layout (Chrome-trace tids): the CPU, each GPU,
    // then the NIC directions, rendezvous handshakes, the dependence-
    // analysis pipeline, and collectives.
    [[nodiscard]] int lane_cpu() const noexcept { return 0; }
    [[nodiscard]] int lane_gpu(int index) const noexcept { return 1 + index; }
    [[nodiscard]] int lane_nic_send() const noexcept { return 1 + gpus_; }
    [[nodiscard]] int lane_nic_recv() const noexcept { return 2 + gpus_; }
    [[nodiscard]] int lane_handshake() const noexcept { return 3 + gpus_; }
    [[nodiscard]] int lane_analysis() const noexcept { return 4 + gpus_; }
    [[nodiscard]] int lane_collective() const noexcept { return 5 + gpus_; }
    [[nodiscard]] int lane_count() const noexcept { return 6 + gpus_; }
    [[nodiscard]] bool is_nic_lane(int lane) const noexcept {
        return lane == lane_nic_send() || lane == lane_nic_recv();
    }
    [[nodiscard]] std::string lane_name(int lane) const;
    [[nodiscard]] int nodes() const noexcept { return nodes_; }

    // --------------------------------------------------------- recording
    /// Record one event; returns its id. `deps` lists producing event ids
    /// the caller knows about; any active context deps (below) are appended.
    /// Requires end >= start.
    EventId record(int node, int lane, EventCategory category, std::string name,
                   double start, double end, std::vector<EventId> deps = {},
                   double bytes = 0.0, int peer = -1);

    /// Collect the ids of every event recorded between begin and end — how
    /// the Runtime captures the transfer/analysis events a lower layer
    /// records on its behalf, to wire them up as the consuming task's deps.
    void begin_collect();
    [[nodiscard]] std::vector<EventId> end_collect();

    /// While a context dep is pushed, every recorded event additionally
    /// depends on it — how producer-commit-time eager pushes and write-backs
    /// get their producing task as a dependence without the cluster layer
    /// knowing about tasks.
    void push_context_dep(EventId id);
    void pop_context_dep();

    // --------------------------------------------------------- inspection
    [[nodiscard]] std::uint64_t events_recorded() const noexcept { return recorded_; }
    [[nodiscard]] std::uint64_t events_dropped() const noexcept { return dropped_; }
    /// Events currently held in the ring buffers.
    [[nodiscard]] std::uint64_t events_held() const noexcept;
    /// Latest end time over all held events (0 when empty).
    [[nodiscard]] double profiled_horizon() const noexcept;
    /// Visit every held event, lane-major, chronological within a lane.
    void for_each_event(const std::function<void(const ProfileEvent&)>& fn) const;

    // ----------------------------------------------------------- analyses
    [[nodiscard]] CriticalPath critical_path() const;
    [[nodiscard]] std::vector<NodeUtilization> utilization() const;
    [[nodiscard]] std::vector<CommEdge> comm_matrix() const;

    // ------------------------------------------------------ trace export
    /// The event log as a Chrome trace-event document: "traceEvents" holds
    /// one complete ("X") event per record (ts/dur in virtual microseconds,
    /// pid = node, tid = lane) plus process/thread metadata naming every
    /// populated lane.
    [[nodiscard]] json::Value chrome_trace() const;
    [[nodiscard]] std::string to_chrome_trace_json() const { return chrome_trace().dump(); }
    /// Serialize, validate the emitted text with the obs::json parser, and
    /// write it to `path` (throws kdr::Error on I/O or round-trip failure).
    void write_chrome_trace(const std::string& path) const;

private:
    struct Lane {
        std::vector<ProfileEvent> ring;
        std::size_t head = 0; ///< index of the oldest event once wrapped
    };

    [[nodiscard]] std::size_t lane_slot(int node, int lane) const;
    /// Chronological visit of one lane's ring.
    void for_each_in_lane(const Lane& l,
                          const std::function<void(const ProfileEvent&)>& fn) const;

    int nodes_;
    int gpus_;
    ProfilerOptions options_;
    std::vector<Lane> lanes_; ///< node-major, lane_count() per node
    EventId next_id_ = 1;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    bool collecting_ = false;
    std::vector<EventId> collected_;
    std::vector<EventId> context_deps_;
};

} // namespace kdr::obs
