#pragma once

/// \file matrix_free.hpp
/// Matrix-free structured operators: the kernel space is *computed*, not
/// stored. A `MatrixFreeStencilOperator` holds one coefficient per stencil
/// offset and applies y += A·x directly from those P numbers — no entries
/// array, no column indices, no rowptr. It sits behind the ordinary
/// `LinearOperator`/`Relation` interface:
///
///  * kernel space K = P × n laid out offset-major (slot k = p·n + i), so a
///    kernel piece is still an interval set and index-task launches dispatch
///    matrix-free piece kernels per color unchanged;
///  * col/row relations are `StencilOffsetRelation`s whose projections are
///    closed-form interval shifts clipped to per-offset validity boxes —
///    `derive_plan` gets exact privilege subsets without enumerating a single
///    nonzero, and `ProjectionCache` keys them like any other relation;
///  * `spmv_cost_model()` reports zero matrix bytes per entry, so SimCluster
///    timing reflects the collapsed roofline (only x gathers and y traffic).
///
/// Per-row accumulation order is offset-ascending, the same order
/// `laplacian_csr` stores entries in, so residual histories are bitwise
/// identical to the materialized CSR twin built from the same coefficients.
///
/// Tensor-product (Kronecker-sum) operators A_x ⊕ A_y ⊕ A_z of tridiagonal
/// 1-D factors linearize to exactly this offset form (the mixed Kronecker
/// terms are identities), so `make_matrix_free_kronecker` reuses the stencil
/// machinery; with factors tridiag(−1, 2, −1) it reproduces the Dirichlet
/// Laplacians of stencil.hpp.

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "sparse/linear_operator.hpp"
#include "sparse/relations.hpp"
#include "stencil/stencil.hpp"

namespace kdr::stencil {

template <typename T>
class MatrixFreeStencilOperator final : public LinearOperator<T> {
public:
    /// `coeffs[p]` is the coefficient applied at offset `spec.offsets()[p]`
    /// (uniform across the grid; boundary clipping drops out-of-grid
    /// neighbors, matching the materialized Laplacian's structure).
    MatrixFreeStencilOperator(const Spec& spec, IndexSpace domain, IndexSpace range,
                              std::vector<T> coeffs)
        : spec_(spec),
          domain_(std::move(domain)),
          range_(std::move(range)),
          coeffs_(std::move(coeffs)) {
        const auto offsets = spec_.offsets();
        KDR_REQUIRE(coeffs_.size() == offsets.size(), "MatrixFreeStencilOperator: ",
                    coeffs_.size(), " coefficients for ", offsets.size(), " offsets");
        const gidx n = spec_.unknowns();
        KDR_REQUIRE(domain_.size() == n && range_.size() == n,
                    "MatrixFreeStencilOperator: spaces must match spec unknowns ", n);
        kernel_ = IndexSpace::create(static_cast<gidx>(offsets.size()) * n, "matfree_kernel");
        const std::array<gidx, 3> ext = {spec_.nx, spec_.ny, spec_.nz};
        col_rel_ = std::make_shared<StencilOffsetRelation>(kernel_, domain_, ext, offsets,
                                                           /*shift_targets=*/true);
        row_rel_ = std::make_shared<StencilOffsetRelation>(kernel_, range_, ext, offsets,
                                                           /*shift_targets=*/false);
    }

    [[nodiscard]] const IndexSpace& domain() const override { return domain_; }
    [[nodiscard]] const IndexSpace& range() const override { return range_; }
    [[nodiscard]] const IndexSpace& kernel() const override { return kernel_; }

    [[nodiscard]] std::shared_ptr<const Relation> col_relation() const override {
        return col_rel_;
    }
    [[nodiscard]] std::shared_ptr<const Relation> row_relation() const override {
        return row_rel_;
    }

    [[nodiscard]] const char* format_name() const override { return "matfree"; }

    /// Zero per-entry bytes: a structured stencil kernel has no stored
    /// matrix and no indexed gather — its operand streams (the SimCluster
    /// roofline convention counts each stream once) are x in and y
    /// read/write, 8 + 16 = 24 B per row. This is the "No 3D Matrices"
    /// stencil roofline; the materialized formats keep per-entry charges
    /// because a column-index gather has no stream structure. A measured
    /// profile installed via calibrate() overrides the analytic model —
    /// the same calibration hook FormatDesc gives described formats.
    [[nodiscard]] SpmvCostModel spmv_cost_model() const override {
        if (calibrated_) return *calibrated_;
        return {/*matrix_bytes_per_entry=*/0.0, /*gather_bytes_per_entry=*/0.0,
                /*bytes_per_row=*/24.0};
    }

    /// Replace the analytic stencil roofline with a measured byte-stream
    /// profile; numerics are unchanged, only planner timing charges move.
    void calibrate(SpmvCostModel measured) { calibrated_ = measured; }

    void multiply_add_piece(const IntervalSet& piece, VecView<const T> x,
                            VecView<T> y) const override {
        this->check_vectors(x, y);
        const gidx n = spec_.unknowns();
        piece.for_each_interval([&](const Interval& iv) {
            gidx lo = iv.lo;
            while (lo < iv.hi) {
                const gidx p = lo / n;
                const gidx seg_hi = std::min(iv.hi, (p + 1) * n);
                const T c = coeffs_[static_cast<std::size_t>(p)];
                const gidx d = col_rel_->block_delta(p);
                col_rel_->for_each_valid(p, {lo - p * n, seg_hi - p * n}, [&](Interval run) {
                    for (gidx i = run.lo; i < run.hi; ++i)
                        y[static_cast<std::size_t>(i)] +=
                            c * x[static_cast<std::size_t>(i + d)];
                });
                lo = seg_hi;
            }
        });
    }

    void multiply_add_transpose_piece(const IntervalSet& piece, VecView<const T> x,
                                      VecView<T> y) const override {
        this->check_vectors_transpose(x, y);
        const gidx n = spec_.unknowns();
        // CSR's transpose scatters in kernel (= source-row-ascending) order,
        // so a target slot j accumulates its addends with δ *descending*
        // (row i = j − δ). Walk the offset blocks high-to-low to keep the
        // per-slot addend sequence — and hence the floating-point result —
        // bitwise identical to the materialized twin.
        std::vector<Interval> ivs;
        piece.for_each_interval([&](const Interval& iv) { ivs.push_back(iv); });
        for (auto it = ivs.rbegin(); it != ivs.rend(); ++it) {
            gidx hi = it->hi;
            while (hi > it->lo) {
                const gidx p = (hi - 1) / n;
                const gidx seg_lo = std::max(it->lo, p * n);
                const T c = coeffs_[static_cast<std::size_t>(p)];
                const gidx d = col_rel_->block_delta(p);
                col_rel_->for_each_valid(p, {seg_lo - p * n, hi - p * n}, [&](Interval run) {
                    for (gidx i = run.lo; i < run.hi; ++i)
                        y[static_cast<std::size_t>(i + d)] +=
                            c * x[static_cast<std::size_t>(i)];
                });
                hi = seg_lo;
            }
        }
    }

    [[nodiscard]] std::vector<Triplet<T>> to_triplets() const override {
        std::vector<Triplet<T>> out;
        out.reserve(static_cast<std::size_t>(spec_.total_nnz()));
        const gidx n = spec_.unknowns();
        for (gidx p = 0; p < col_rel_->block_count(); ++p) {
            const T c = coeffs_[static_cast<std::size_t>(p)];
            const gidx d = col_rel_->block_delta(p);
            col_rel_->for_each_valid(p, {0, n}, [&](Interval run) {
                for (gidx i = run.lo; i < run.hi; ++i) out.push_back({i, i + d, c});
            });
        }
        return out;
    }

    void add_diagonal(std::span<T> diag) const override {
        KDR_REQUIRE(static_cast<gidx>(diag.size()) == range_.size(),
                    "add_diagonal: diag size mismatch");
        // The center offset is the only one with δ = 0 and it is never
        // clipped, so the diagonal is the center coefficient everywhere.
        for (gidx p = 0; p < col_rel_->block_count(); ++p) {
            if (col_rel_->block_delta(p) != 0) continue;
            for (auto& v : diag) v += coeffs_[static_cast<std::size_t>(p)];
        }
    }

    [[nodiscard]] const Spec& spec() const noexcept { return spec_; }
    [[nodiscard]] const std::vector<T>& coeffs() const noexcept { return coeffs_; }

private:
    Spec spec_;
    IndexSpace domain_;
    IndexSpace range_;
    IndexSpace kernel_;
    std::vector<T> coeffs_;
    std::optional<SpmvCostModel> calibrated_;
    std::shared_ptr<StencilOffsetRelation> col_rel_;
    std::shared_ptr<StencilOffsetRelation> row_rel_;
};

/// Coefficients of the Dirichlet Laplacian for `spec`, in offsets() order:
/// (points − 1) at the center, −1 at every neighbor — the same numbers
/// `laplacian_csr` materializes.
[[nodiscard]] inline std::vector<double> laplacian_coeffs(const Spec& spec) {
    const auto offsets = spec.offsets();
    std::vector<double> c(offsets.size(), -1.0);
    for (std::size_t p = 0; p < offsets.size(); ++p)
        if (offsets[p] == std::array<gidx, 3>{0, 0, 0})
            c[p] = static_cast<double>(spec.points() - 1);
    return c;
}

/// Matrix-free twin of `laplacian_csr(spec, domain, range)`.
[[nodiscard]] inline std::shared_ptr<MatrixFreeStencilOperator<double>>
make_matrix_free_laplacian(const Spec& spec, IndexSpace domain, IndexSpace range) {
    return std::make_shared<MatrixFreeStencilOperator<double>>(
        spec, std::move(domain), std::move(range), laplacian_coeffs(spec));
}

/// One tridiagonal 1-D factor of a Kronecker-sum operator.
struct TridiagFactor {
    double sub = -1.0;   ///< coefficient of neighbor at coordinate − 1
    double diag = 2.0;   ///< diagonal coefficient
    double super = -1.0; ///< coefficient of neighbor at coordinate + 1
};

/// Tensor-product operator A = A_0 ⊕ A_1 ⊕ … = Σ_a I ⊗ … ⊗ A_a ⊗ … ⊗ I over
/// a row-major grid with the given per-axis extents (1–3 axes), where each
/// A_a is the tridiagonal Toeplitz factor `factors[a]`. The Kronecker sum of
/// tridiagonal factors has one axis-neighbor offset per factor band, so it
/// linearizes to an axis stencil (D1P3/D2P5/D3P7) with center = Σ_a diag_a. With
/// default factors tridiag(−1, 2, −1) this is exactly the Dirichlet
/// Laplacian of the matching `stencil::Kind`.
[[nodiscard]] inline std::shared_ptr<MatrixFreeStencilOperator<double>>
make_matrix_free_kronecker(const std::vector<TridiagFactor>& factors,
                           const std::vector<gidx>& extents, IndexSpace domain,
                           IndexSpace range) {
    KDR_REQUIRE(!factors.empty() && factors.size() <= 3,
                "make_matrix_free_kronecker: need 1-3 factors, got ", factors.size());
    KDR_REQUIRE(factors.size() == extents.size(),
                "make_matrix_free_kronecker: ", factors.size(), " factors vs ",
                extents.size(), " extents");
    Spec spec;
    spec.kind = factors.size() == 1   ? Kind::D1P3
                : factors.size() == 2 ? Kind::D2P5
                                      : Kind::D3P7;
    spec.nx = extents[0];
    spec.ny = extents.size() > 1 ? extents[1] : 1;
    spec.nz = extents.size() > 2 ? extents[2] : 1;
    const auto offsets = spec.offsets();
    std::vector<double> coeffs(offsets.size(), 0.0);
    for (std::size_t p = 0; p < offsets.size(); ++p) {
        const auto& o = offsets[p];
        if (o == std::array<gidx, 3>{0, 0, 0}) {
            for (const TridiagFactor& f : factors) coeffs[p] += f.diag;
            continue;
        }
        for (std::size_t a = 0; a < factors.size(); ++a) {
            if (o[a] == -1) coeffs[p] = factors[a].sub;
            if (o[a] == 1) coeffs[p] = factors[a].super;
        }
    }
    return std::make_shared<MatrixFreeStencilOperator<double>>(spec, std::move(domain),
                                                              std::move(range),
                                                              std::move(coeffs));
}

} // namespace kdr::stencil
