#include "stencil/stencil.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace kdr::stencil {

const char* kind_name(Kind k) {
    switch (k) {
        case Kind::D1P3: return "3pt-1D";
        case Kind::D2P5: return "5pt-2D";
        case Kind::D3P7: return "7pt-3D";
        case Kind::D3P27: return "27pt-3D";
    }
    KDR_UNREACHABLE("bad stencil kind");
}

int Spec::dims() const {
    switch (kind) {
        case Kind::D1P3: return 1;
        case Kind::D2P5: return 2;
        case Kind::D3P7:
        case Kind::D3P27: return 3;
    }
    KDR_UNREACHABLE("bad stencil kind");
}

gidx Spec::unknowns() const { return nx * ny * nz; }

int Spec::points() const {
    switch (kind) {
        case Kind::D1P3: return 3;
        case Kind::D2P5: return 5;
        case Kind::D3P7: return 7;
        case Kind::D3P27: return 27;
    }
    KDR_UNREACHABLE("bad stencil kind");
}

gidx Spec::total_nnz() const {
    switch (kind) {
        case Kind::D1P3: return 3 * nx - 2;
        case Kind::D2P5: return 5 * nx * ny - 2 * nx - 2 * ny;
        case Kind::D3P7:
            return nx * ny * nz + 2 * ((nx - 1) * ny * nz + nx * (ny - 1) * nz +
                                       nx * ny * (nz - 1));
        case Kind::D3P27: return (3 * nx - 2) * (3 * ny - 2) * (3 * nz - 2);
    }
    KDR_UNREACHABLE("bad stencil kind");
}

gidx Spec::bandwidth() const {
    switch (kind) {
        case Kind::D1P3: return 1;
        case Kind::D2P5: return ny;
        case Kind::D3P7: return ny * nz;
        case Kind::D3P27: return ny * nz + nz + 1;
    }
    KDR_UNREACHABLE("bad stencil kind");
}

std::vector<std::array<gidx, 3>> Spec::offsets() const {
    std::vector<std::array<gidx, 3>> out;
    switch (kind) {
        case Kind::D1P3:
            out = {{{-1, 0, 0}}, {{0, 0, 0}}, {{1, 0, 0}}};
            break;
        case Kind::D2P5:
            out = {{{-1, 0, 0}}, {{0, -1, 0}}, {{0, 0, 0}}, {{0, 1, 0}}, {{1, 0, 0}}};
            break;
        case Kind::D3P7:
            out = {{{-1, 0, 0}}, {{0, -1, 0}}, {{0, 0, -1}}, {{0, 0, 0}},
                   {{0, 0, 1}},  {{0, 1, 0}},  {{1, 0, 0}}};
            break;
        case Kind::D3P27:
            for (gidx dx = -1; dx <= 1; ++dx)
                for (gidx dy = -1; dy <= 1; ++dy)
                    for (gidx dz = -1; dz <= 1; ++dz) out.push_back({{dx, dy, dz}});
            break;
    }
    return out;
}

std::vector<gidx> Spec::extents() const {
    switch (dims()) {
        case 1: return {nx};
        case 2: return {nx, ny};
        default: return {nx, ny, nz};
    }
}

std::string Spec::describe() const {
    std::ostringstream os;
    os << kind_name(kind) << " " << nx;
    if (dims() >= 2) os << "x" << ny;
    if (dims() >= 3) os << "x" << nz;
    os << " (" << unknowns() << " unknowns)";
    return os.str();
}

Spec Spec::cube(Kind kind, gidx target_unknowns) {
    KDR_REQUIRE(target_unknowns > 0, "Spec::cube: nonpositive target");
    Spec s;
    s.kind = kind;
    const int d = s.dims();
    // Pick power-of-two extents whose product is >= target and near-cubic.
    gidx ext[3] = {1, 1, 1};
    gidx total = 1;
    int axis = 0;
    while (total < target_unknowns) {
        ext[axis] *= 2;
        total *= 2;
        axis = (axis + 1) % d;
    }
    s.nx = ext[0];
    s.ny = ext[1];
    s.nz = ext[2];
    return s;
}

namespace {

/// Visit every (row, col) placement of the stencil with boundary clipping.
template <typename F>
void for_each_entry(const Spec& spec, F&& f) {
    const auto offs = spec.offsets();
    const gidx nx = spec.nx;
    const gidx ny = spec.ny;
    const gidx nz = spec.nz;
    for (gidx x = 0; x < nx; ++x) {
        for (gidx y = 0; y < ny; ++y) {
            for (gidx z = 0; z < nz; ++z) {
                const gidx i = (x * ny + y) * nz + z;
                for (const auto& o : offs) {
                    const gidx xx = x + o[0];
                    const gidx yy = y + o[1];
                    const gidx zz = z + o[2];
                    if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz)
                        continue;
                    const gidx j = (xx * ny + yy) * nz + zz;
                    const double v =
                        (i == j) ? static_cast<double>(spec.points() - 1) : -1.0;
                    f(i, j, v);
                }
            }
        }
    }
}

} // namespace

std::vector<Triplet<double>> laplacian_triplets(const Spec& spec) {
    std::vector<Triplet<double>> ts;
    ts.reserve(static_cast<std::size_t>(spec.total_nnz()));
    for_each_entry(spec, [&](gidx i, gidx j, double v) { ts.push_back({i, j, v}); });
    return ts;
}

CsrMatrix<double> laplacian_csr(const Spec& spec, const IndexSpace& domain,
                                const IndexSpace& range) {
    const gidx n = spec.unknowns();
    KDR_REQUIRE(domain.size() == n && range.size() == n, "laplacian_csr: spaces must have ", n,
                " points");
    std::vector<gidx> rowptr(static_cast<std::size_t>(n) + 1, 0);
    std::vector<gidx> cols;
    std::vector<double> vals;
    cols.reserve(static_cast<std::size_t>(spec.total_nnz()));
    vals.reserve(static_cast<std::size_t>(spec.total_nnz()));
    // Entries are generated row-major and columns ascending per row because
    // offsets() is lexicographically sorted and linearization is row-major.
    gidx last_row = -1;
    for_each_entry(spec, [&](gidx i, gidx j, double v) {
        KDR_ASSERT(i >= last_row, "stencil entries must arrive row-major");
        last_row = i;
        ++rowptr[static_cast<std::size_t>(i) + 1];
        cols.push_back(j);
        vals.push_back(v);
    });
    for (std::size_t i = 1; i < rowptr.size(); ++i) rowptr[i] += rowptr[i - 1];
    KDR_ASSERT(static_cast<gidx>(vals.size()) == spec.total_nnz(),
               "nnz formula disagrees with enumeration");
    return CsrMatrix<double>(domain, range, std::move(rowptr), std::move(cols),
                             std::move(vals));
}

std::vector<double> random_rhs(gidx n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> b(static_cast<std::size_t>(n));
    for (double& v : b) v = rng.uniform();
    return b;
}

CoPartition co_partition(const Spec& spec, const IndexSpace& domain, const IndexSpace& range,
                         Color pieces) {
    const gidx n = spec.unknowns();
    KDR_REQUIRE(domain.size() == n && range.size() == n, "co_partition: spaces must have ", n,
                " points");
    CoPartition out{Partition::equal(range, pieces), Partition(), {}};
    const gidx bw = spec.bandwidth();
    std::vector<IntervalSet> halo_pieces;
    halo_pieces.reserve(static_cast<std::size_t>(pieces));
    out.nnz.reserve(static_cast<std::size_t>(pieces));
    const double nnz_per_row =
        static_cast<double>(spec.total_nnz()) / static_cast<double>(n);
    for (Color c = 0; c < pieces; ++c) {
        const Interval rows = out.rows.piece(c).bounds();
        halo_pieces.emplace_back(std::max<gidx>(0, rows.lo - bw), std::min<gidx>(n, rows.hi + bw));
        out.nnz.push_back(static_cast<gidx>(nnz_per_row * static_cast<double>(rows.size())));
    }
    out.halo = Partition(domain, std::move(halo_pieces));
    return out;
}

} // namespace kdr::stencil
