#pragma once

/// \file stencil.hpp
/// The paper's benchmark workloads (§6.1): double-precision linear systems
/// from finite-difference discretizations of Poisson's equation on Cartesian
/// meshes — 3-point 1D, 5-point 2D, 7-point 3D, and 27-point 3D Laplacians.
/// Matrices use Dirichlet boundary conditions: diagonal = (#stencil points −
/// 1), off-diagonals = −1 where the neighbor exists, making every system
/// symmetric positive definite.
///
/// Two construction paths:
///  * exact materialization (triplets / CSR) for functional-mode tests,
///    examples, and small benchmark sizes;
///  * analytic metadata (`co_partition`, nnz counts) for timing-mode
///    benchmark sizes that exceed host memory, where only the virtual-time
///    schedule is needed. Halos use the closed form rows ± bandwidth, the
///    same ghost-region shape a row-partitioned stencil exchange has in
///    practice (edge clipping changes byte counts negligibly; see DESIGN.md).

#include <array>
#include <string>
#include <vector>

#include "partition/partition.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace kdr::stencil {

enum class Kind {
    D1P3,  ///< 3-point 1D
    D2P5,  ///< 5-point 2D
    D3P7,  ///< 7-point 3D
    D3P27, ///< 27-point 3D
};

[[nodiscard]] const char* kind_name(Kind k);

struct Spec {
    Kind kind = Kind::D2P5;
    gidx nx = 1;
    gidx ny = 1;
    gidx nz = 1;

    [[nodiscard]] int dims() const;
    [[nodiscard]] gidx unknowns() const;
    /// Number of stencil points (3, 5, 7, 27); diagonal entry = points-1.
    [[nodiscard]] int points() const;
    /// Exact stored-nonzero count with boundary clipping.
    [[nodiscard]] gidx total_nnz() const;
    /// Max |linearized offset| — the halo width of a row-block partition.
    [[nodiscard]] gidx bandwidth() const;
    /// Coordinate offsets of the stencil (excluding no-op center? no —
    /// including center).
    [[nodiscard]] std::vector<std::array<gidx, 3>> offsets() const;
    /// Grid extents as a vector sized dims().
    [[nodiscard]] std::vector<gidx> extents() const;

    [[nodiscard]] std::string describe() const;

    /// Square spec with ~`target` unknowns for a given kind (powers of two).
    static Spec cube(Kind kind, gidx target_unknowns);
};

/// Exact triplets (small scale: O(points · unknowns) memory).
[[nodiscard]] std::vector<Triplet<double>> laplacian_triplets(const Spec& spec);

/// Exact CSR matrix over the given spaces (must match spec.unknowns()).
[[nodiscard]] CsrMatrix<double> laplacian_csr(const Spec& spec, const IndexSpace& domain,
                                              const IndexSpace& range);

/// The paper's right-hand side: entries uniform in [0, 1].
[[nodiscard]] std::vector<double> random_rhs(gidx n, std::uint64_t seed);

/// Analytic co-partition of a row-block decomposition: `rows` is the equal
/// partition of R, `halo` the corresponding domain coverage (rows ±
/// bandwidth, clipped — aliased and complete), `nnz` the per-piece stored
/// nonzero count (rows × points, the timing-mode cost input).
struct CoPartition {
    Partition rows;
    Partition halo;
    std::vector<gidx> nnz;
};

[[nodiscard]] CoPartition co_partition(const Spec& spec, const IndexSpace& domain,
                                       const IndexSpace& range, Color pieces);

} // namespace kdr::stencil
