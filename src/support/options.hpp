#pragma once

/// \file options.hpp
/// The unified option surface: every knob registered with an OptionSet gets,
/// from one declaration,
///
///   * a `KDR_<NAME>` environment override (uppercased name), and
///   * a matching `-<name> <value>` CLI flag (CliArgs syntax), and
///   * a line in the generated help text,
///
/// applied in that order, so the CLI wins over the environment which wins
/// over the compiled-in default. This replaces per-binary ad-hoc flag
/// handling: binaries bind their RuntimeOptions/PlannerOptions fields once
/// (core/options.hpp does it for the common set) and call parse().

#include <cstdint>
#include <string>
#include <vector>

#include "support/cli.hpp"

namespace kdr::support {

class OptionSet {
public:
    /// Bind one knob. `name` is the CLI flag (without the dash); the env
    /// variable is KDR_ + uppercase(name). The bound object must outlive
    /// apply_env/apply_cli. Registration throws a structured error on a
    /// duplicate name, on two names colliding on the same KDR_* key (names
    /// differing only in case), and on re-binding an already-bound variable
    /// under a second name — each of those would otherwise make overrides
    /// silently last-wins.
    void add_flag(const std::string& name, bool& target, std::string help);
    void add_int(const std::string& name, int& target, std::string help);
    void add_int(const std::string& name, std::int64_t& target, std::string help);
    void add_uint(const std::string& name, std::uint64_t& target, std::string help);
    void add_double(const std::string& name, double& target, std::string help);
    void add_string(const std::string& name, std::string& target, std::string help);

    /// Apply KDR_* environment overrides to every bound knob. Empty and "0"
    /// mean false for flags; other values parse per the knob's type.
    void apply_env() const;
    /// Apply `-name value` CLI overrides.
    void apply_cli(const CliArgs& args) const;
    /// Environment first, then CLI (CLI wins).
    void parse(const CliArgs& args) const {
        apply_env();
        apply_cli(args);
    }

    /// One "-name (env KDR_NAME, default X)  help" line per knob.
    [[nodiscard]] std::string help() const;

private:
    enum class Kind : std::uint8_t { Flag, Int32, Int, Uint, Double, String };
    struct Opt {
        std::string name;
        std::string env; ///< KDR_<NAME>
        std::string help;
        Kind kind;
        void* target;
        std::string default_value; ///< captured at add time, for help()
    };
    void add(const std::string& name, Kind kind, void* target, std::string help,
             std::string default_value);
    static void set_from(const Opt& o, const std::string& value, const char* source);

    std::vector<Opt> opts_;
};

} // namespace kdr::support
