#pragma once

/// \file error.hpp
/// Error handling primitives shared by every KDRSolvers module.
///
/// The library distinguishes two classes of failure:
///  * `kdr::Error`     — user-visible misuse of the public API (bad sizes,
///                       incompatible spaces, malformed formats). Raised by
///                       `KDR_REQUIRE`, carries a formatted message.
///  * internal defects — checked by `KDR_ASSERT`, which compiles to a cheap
///                       check in all build types (solver state machines are
///                       inexpensive relative to the numerical kernels).

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace kdr {

/// Exception thrown on misuse of the public API.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

template <typename... Args>
[[nodiscard]] std::string concat_message(Args&&... args) {
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] inline void throw_error(std::string_view file, int line, std::string msg) {
    std::ostringstream os;
    os << "kdr error [" << file << ":" << line << "]: " << msg;
    throw Error(os.str());
}

} // namespace detail

} // namespace kdr

/// Validate a user-facing precondition; throws kdr::Error with context.
#define KDR_REQUIRE(cond, ...)                                                         \
    do {                                                                               \
        if (!(cond)) {                                                                 \
            ::kdr::detail::throw_error(__FILE__, __LINE__,                             \
                                       ::kdr::detail::concat_message(__VA_ARGS__));    \
        }                                                                              \
    } while (0)

/// Internal invariant check. Enabled in all build types; these guards sit on
/// control paths, not inner numerical loops.
#define KDR_ASSERT(cond, ...)                                                          \
    do {                                                                               \
        if (!(cond)) {                                                                 \
            ::kdr::detail::throw_error(__FILE__, __LINE__,                             \
                                       ::kdr::detail::concat_message(                  \
                                           "internal invariant violated: ",           \
                                           #cond, " — ", __VA_ARGS__));                \
        }                                                                              \
    } while (0)

/// Marks unreachable control flow.
#define KDR_UNREACHABLE(msg)                                                           \
    ::kdr::detail::throw_error(__FILE__, __LINE__,                                     \
                               ::kdr::detail::concat_message("unreachable: ", msg))
